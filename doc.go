// Package repro is a from-scratch Go reproduction of "Supporting the
// Global Arrays PGAS Model Using MPI One-Sided Communication" (Dinan,
// Balaji, Hammond, Krishnamoorthy, Tipparaju — IPDPS/IPPS 2012): the
// ARMCI-MPI runtime, its native-ARMCI baseline, the MPI RMA substrate,
// the Global Arrays layer, an NWChem CCSD(T) proxy application, and a
// deterministic simulated-cluster fabric for the paper's four
// platforms, plus a benchmark harness regenerating every table and
// figure of the evaluation. See README.md, DESIGN.md and
// EXPERIMENTS.md.
package repro
