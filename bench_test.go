package repro

// One testing.B benchmark per table and figure of the paper's
// evaluation, plus the ablations DESIGN.md calls out. Each iteration
// performs a reduced but complete regeneration of the experiment in
// deterministic virtual time; the custom metrics report the
// virtual-time results (bandwidths in GB/s, phase times in virtual
// milliseconds), while ns/op measures the simulator's host cost.
//
// Full sweeps (the paper's exact axes) are produced by the CLIs:
//
//	go run ./cmd/platforms            # Table II
//	go run ./cmd/armci-bench -fig 3   # Figure 3
//	go run ./cmd/armci-bench -fig 4   # Figure 4
//	go run ./cmd/armci-bench -fig 5   # Figure 5
//	go run ./cmd/nwchem-bench         # Figure 6

import (
	"io"
	"testing"

	"repro/internal/bench"
	"repro/internal/harness"
	"repro/internal/platform"
)

// BenchmarkTable2 regenerates Table II (platform characteristics).
func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.Table2(io.Discard)
	}
}

// fig3Bench regenerates one platform's Figure 3 panel (contiguous
// get/put/acc bandwidth, native vs ARMCI-MPI) on a reduced sweep and
// reports the large-transfer get bandwidths.
func fig3Bench(b *testing.B, name string) {
	plat := platform.Get(name)
	cfg := bench.Fig3Config{MinExp: 6, MaxExp: 20, Iters: 2}
	for i := 0; i < b.N; i++ {
		fig, err := bench.Fig3(plat, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(fig.Get("get (Nat.)").Last(), "native-GB/s")
			b.ReportMetric(fig.Get("get (MPI)").Last(), "mpi-GB/s")
		}
	}
}

func BenchmarkFig3BlueGeneP(b *testing.B)  { fig3Bench(b, platform.BlueGeneP) }
func BenchmarkFig3InfiniBand(b *testing.B) { fig3Bench(b, platform.InfiniBand) }
func BenchmarkFig3CrayXT5(b *testing.B)    { fig3Bench(b, platform.CrayXT5) }
func BenchmarkFig3CrayXE6(b *testing.B)    { fig3Bench(b, platform.CrayXE6) }

// fig4Bench regenerates one platform's Figure 4 panel (strided put
// bandwidth across methods) at the paper's 1 KiB segment size.
func fig4Bench(b *testing.B, name string) {
	plat := platform.Get(name)
	cfg := bench.Fig4Config{SegSizes: []int{1024}, MaxSegs: 256, Iters: 2}
	for i := 0; i < b.N; i++ {
		fig, err := bench.Fig4(plat, bench.OpPut, 1024, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(fig.Get("Native").Last(), "native-GB/s")
			b.ReportMetric(fig.Get("Direct").Last(), "direct-GB/s")
			b.ReportMetric(fig.Get("IOV-Batched").Last(), "batched-GB/s")
			b.ReportMetric(fig.Get("IOV-Consrv").Last(), "consrv-GB/s")
		}
	}
}

func BenchmarkFig4BlueGeneP(b *testing.B)  { fig4Bench(b, platform.BlueGeneP) }
func BenchmarkFig4InfiniBand(b *testing.B) { fig4Bench(b, platform.InfiniBand) }
func BenchmarkFig4CrayXT5(b *testing.B)    { fig4Bench(b, platform.CrayXT5) }
func BenchmarkFig4CrayXE6(b *testing.B)    { fig4Bench(b, platform.CrayXE6) }

// BenchmarkFig5Interop regenerates Figure 5 (registration
// interoperability on InfiniBand) and reports the four curves' large-
// transfer bandwidths.
func BenchmarkFig5Interop(b *testing.B) {
	cfg := bench.QuickFig5()
	for i := 0; i < b.N; i++ {
		fig, err := bench.Fig5(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(fig.Get("ARMCI-IB, ARMCI Alloc").Last(), "armci+own-GB/s")
			b.ReportMetric(fig.Get("MPI, MPI Touch").Last(), "mpi+touch-GB/s")
			b.ReportMetric(fig.Get("ARMCI-IB, MPI Touch").Last(), "armci+mpi-GB/s")
			b.ReportMetric(fig.Get("MPI, ARMCI Alloc").Last(), "mpi+cold-GB/s")
		}
	}
}

// fig6Bench regenerates one platform's Figure 6 panel (CCSD proxy time
// at a fixed scale, both runtimes) and reports virtual milliseconds.
func fig6Bench(b *testing.B, name string) {
	plat := platform.Get(name)
	cfg := bench.QuickFig6()
	params := cfg.ParamsFor(plat)
	for i := 0; i < b.N; i++ {
		nat, err := bench.NWChemPhase(plat, harness.ImplNative, 16, params, false)
		if err != nil {
			b.Fatal(err)
		}
		mpi, err := bench.NWChemPhase(plat, harness.ImplARMCIMPI, 16, params, false)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(nat.Seconds()*1e3, "native-vms")
			b.ReportMetric(mpi.Seconds()*1e3, "mpi-vms")
		}
	}
}

func BenchmarkFig6BlueGeneP(b *testing.B)  { fig6Bench(b, platform.BlueGeneP) }
func BenchmarkFig6InfiniBand(b *testing.B) { fig6Bench(b, platform.InfiniBand) }
func BenchmarkFig6CrayXT5(b *testing.B)    { fig6Bench(b, platform.CrayXT5) }
func BenchmarkFig6CrayXE6(b *testing.B)    { fig6Bench(b, platform.CrayXE6) }

// BenchmarkFig6Triples runs the (T) phase on the two platforms the
// paper reports it for.
func BenchmarkFig6Triples(b *testing.B) {
	cfg := bench.QuickFig6()
	for i := 0; i < b.N; i++ {
		ib, err := bench.NWChemPhase(platform.Get(platform.InfiniBand), harness.ImplARMCIMPI, 8, cfg.Params, true)
		if err != nil {
			b.Fatal(err)
		}
		xe, err := bench.NWChemPhase(platform.Get(platform.CrayXE6), harness.ImplARMCIMPI, 8, cfg.Params, true)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(ib.Seconds()*1e3, "ib-vms")
			b.ReportMetric(xe.Seconds()*1e3, "xe-vms")
		}
	}
}

// BenchmarkAblationRmw compares native atomics, MPI-3 fetch-and-op,
// and the MPI-2 mutex emulation (SectionV.D / SectionVIII.B).
func BenchmarkAblationRmw(b *testing.B) {
	plat := platform.Get(platform.InfiniBand)
	for i := 0; i < b.N; i++ {
		out, err := bench.AblationRmw(plat, 8)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(out["native-atomic"], "native-us")
			b.ReportMetric(out["mpi3-fetchop"], "mpi3-us")
			b.ReportMetric(out["mpi2-mutex"], "mpi2-us")
		}
	}
}

// BenchmarkAblationAccessModes measures the SectionVIII.A access-mode
// extension (shared vs exclusive lock epochs).
func BenchmarkAblationAccessModes(b *testing.B) {
	plat := platform.Get(platform.InfiniBand)
	for i := 0; i < b.N; i++ {
		out, err := bench.AblationAccessModes(plat, 4, 4, 1<<16)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(out["conflicting"], "exclusive-us")
			b.ReportMetric(out["read-only"], "shared-us")
		}
	}
}

// BenchmarkAblationStridedMethods summarizes the per-method strided
// bandwidths behind Figure 4's method selection.
func BenchmarkAblationStridedMethods(b *testing.B) {
	plat := platform.Get(platform.InfiniBand)
	for i := 0; i < b.N; i++ {
		out, err := bench.AblationStridedMethods(plat, 1024, 128, 2)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(out["Direct"], "direct-GB/s")
			b.ReportMetric(out["IOV-Batched"], "batched-GB/s")
			b.ReportMetric(out["IOV-Consrv"], "consrv-GB/s")
		}
	}
}

// BenchmarkAblationBatchSize sweeps the batched method's B parameter
// (SectionVI.A).
func BenchmarkAblationBatchSize(b *testing.B) {
	plat := platform.Get(platform.InfiniBand)
	for i := 0; i < b.N; i++ {
		out, err := bench.AblationBatchSize(plat, 256, 64, []int{1, 16, 0}, 2)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(out[1], "B1-GB/s")
			b.ReportMetric(out[16], "B16-GB/s")
			b.ReportMetric(out[0], "Bunlimited-GB/s")
		}
	}
}

// BenchmarkAblationAsyncProgress measures SectionV.F's asynchronous
// progress requirement (enabled vs a 20us target service delay).
func BenchmarkAblationAsyncProgress(b *testing.B) {
	plat := platform.Get(platform.InfiniBand)
	for i := 0; i < b.N; i++ {
		out, err := bench.AblationAsyncProgress(plat, 20000, 8)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(out["async-progress"], "async-us")
			b.ReportMetric(out["no-async-progress"], "noasync-us")
		}
	}
}

// BenchmarkAblationMPI3 compares the paper's MPI-2 design against the
// SectionVIII.B MPI-3 lock-all backend on the CCSD proxy.
func BenchmarkAblationMPI3(b *testing.B) {
	plat := platform.Get(platform.InfiniBand)
	for i := 0; i < b.N; i++ {
		out, err := bench.AblationMPI3Backend(plat, 8)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(out["mpi2-epochs"], "mpi2-vms")
			b.ReportMetric(out["mpi3-lockall"], "mpi3-vms")
		}
	}
}

// BenchmarkAblationDataServer compares the SectionIX two-sided
// data-server ARMCI against the one-sided stacks (aggregate bandwidth
// under contention and CCSD proxy time).
func BenchmarkAblationDataServer(b *testing.B) {
	plat := platform.Get(platform.InfiniBand)
	for i := 0; i < b.N; i++ {
		out, err := bench.AblationDataServer(plat, 4, 3, 1<<20)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(out["native"], "native-GB/s")
			b.ReportMetric(out["armci-mpi"], "mpi-GB/s")
			b.ReportMetric(out["armci-ds"], "ds-GB/s")
		}
	}
}

// BenchmarkAblationConflictTree compares the SectionVI.B AVL conflict
// tree against the naive O(N^2) scan it replaces (the data-structure
// microbenchmarks live in internal/conflicttree).
func BenchmarkAblationConflictTree(b *testing.B) {
	// Exercised through the auto method: an IOV scan of many segments.
	plat := platform.Get(platform.InfiniBand)
	cfg := bench.Fig4Config{SegSizes: []int{64}, MaxSegs: 512, Iters: 1}
	for i := 0; i < b.N; i++ {
		if _, err := bench.Fig4(plat, bench.OpPut, 64, cfg); err != nil {
			b.Fatal(err)
		}
	}
}
