package armci

import "fmt"

// Strided describes a noncontiguous transfer in GA/ARMCI strided
// notation (Table I):
//
//	Src, Dst    source and destination base addresses
//	StrideLevels (sl) = dimensionality - 1
//	Count       number of units in each dimension, length sl+1;
//	            Count[0] is the contiguous segment length in bytes
//	SrcStride   source stride array in bytes, length sl
//	DstStride   destination stride array in bytes, length sl
type Strided struct {
	Src       Addr
	Dst       Addr
	SrcStride []int
	DstStride []int
	Count     []int
}

// Levels returns the stride level count sl.
func (s *Strided) Levels() int { return len(s.Count) - 1 }

// SegBytes returns the contiguous segment length.
func (s *Strided) SegBytes() int { return s.Count[0] }

// Segments returns the number of contiguous segments transferred.
func (s *Strided) Segments() int {
	n := 1
	for _, c := range s.Count[1:] {
		n *= c
	}
	return n
}

// TotalBytes returns the total payload size.
func (s *Strided) TotalBytes() int { return s.SegBytes() * s.Segments() }

// Validate reports the first structural problem with the descriptor.
func (s *Strided) Validate() error {
	sl := s.Levels()
	if sl < 0 {
		return fmt.Errorf("armci: strided descriptor with empty count array")
	}
	if len(s.SrcStride) != sl || len(s.DstStride) != sl {
		return fmt.Errorf("armci: stride arrays have lengths %d/%d, want %d",
			len(s.SrcStride), len(s.DstStride), sl)
	}
	if s.Count[0] <= 0 {
		return fmt.Errorf("armci: contiguous segment length %d must be positive", s.Count[0])
	}
	for i, c := range s.Count[1:] {
		if c <= 0 {
			return fmt.Errorf("armci: count[%d] = %d must be positive", i+1, c)
		}
	}
	// Strides must cover the previous level's span or segments overlap.
	prevSrc, prevDst := s.Count[0], s.Count[0]
	for i := 0; i < sl; i++ {
		if s.SrcStride[i] < prevSrc {
			return fmt.Errorf("armci: src stride[%d]=%d smaller than inner span %d (overlap)",
				i, s.SrcStride[i], prevSrc)
		}
		if s.DstStride[i] < prevDst {
			return fmt.Errorf("armci: dst stride[%d]=%d smaller than inner span %d (overlap)",
				i, s.DstStride[i], prevDst)
		}
		prevSrc = s.SrcStride[i] * s.Count[i+1]
		prevDst = s.DstStride[i] * s.Count[i+1]
	}
	if s.Src.Nil() || s.Dst.Nil() {
		return fmt.Errorf("armci: strided transfer with NULL base address")
	}
	return nil
}

// Iterate enumerates the (srcOff, dstOff) byte displacements of every
// contiguous segment, in the order of the paper's Algorithm 1 (an
// odometer over the stride levels, innermost level fastest). Each
// segment is SegBytes() long.
func (s *Strided) Iterate(fn func(srcOff, dstOff int)) {
	sl := s.Levels()
	if sl == 0 {
		fn(0, 0)
		return
	}
	idx := make([]int, sl)
	for idx[sl-1] < s.Count[sl] {
		srcDisp, dstDisp := 0, 0
		for i := 0; i < sl; i++ {
			srcDisp += s.SrcStride[i] * idx[i]
			dstDisp += s.DstStride[i] * idx[i]
		}
		fn(srcDisp, dstDisp)
		// Increment the innermost index and propagate the carry.
		idx[0]++
		for i := 0; i < sl-1; i++ {
			if idx[i] >= s.Count[i+1] {
				idx[i] = 0
				idx[i+1]++
			}
		}
	}
}

// SrcSpan returns one past the highest source byte touched, relative
// to Src.
func (s *Strided) SrcSpan() int { return span(s.SrcStride, s.Count) }

// DstSpan returns one past the highest destination byte touched,
// relative to Dst.
func (s *Strided) DstSpan() int { return span(s.DstStride, s.Count) }

func span(stride, count []int) int {
	hi := count[0]
	for i, st := range stride {
		hi += st * (count[i+1] - 1)
	}
	return hi
}

// subarrayArgs performs the paper's SectionVI.C backward translation
// from strided notation to MPI subarray dimensions (C order, byte
// elements), for the side with the given stride array. It requires
// each stride to be a multiple of the next-inner stride; ok reports
// whether the translation applies.
func subarrayArgs(stride, count []int) (sizes, subsizes, starts []int, ok bool) {
	sl := len(count) - 1
	nd := sl + 1
	sizes = make([]int, nd)
	subsizes = make([]int, nd)
	starts = make([]int, nd)
	// Innermost dimension: stride[0] bytes wide, count[0] selected.
	if sl == 0 {
		return []int{count[0]}, []int{count[0]}, []int{0}, true
	}
	sizes[nd-1] = stride[0]
	subsizes[nd-1] = count[0]
	if count[0] > stride[0] {
		return nil, nil, nil, false
	}
	for i := 1; i < sl; i++ {
		if stride[i]%stride[i-1] != 0 {
			return nil, nil, nil, false
		}
		dim := stride[i] / stride[i-1]
		d := nd - 1 - i
		sizes[d] = dim
		subsizes[d] = count[i]
		if count[i] > dim {
			return nil, nil, nil, false
		}
	}
	// Outermost dimension: exactly the selected count.
	sizes[0] = count[sl]
	subsizes[0] = count[sl]
	return sizes, subsizes, starts, true
}

// SrcSubarray returns the subarray description of the source layout.
func (s *Strided) SrcSubarray() (sizes, subsizes, starts []int, ok bool) {
	return subarrayArgs(s.SrcStride, s.Count)
}

// DstSubarray returns the subarray description of the destination
// layout.
func (s *Strided) DstSubarray() (sizes, subsizes, starts []int, ok bool) {
	return subarrayArgs(s.DstStride, s.Count)
}

// ToGIOV converts the strided descriptor into the generalized I/O
// vector representation (the paper's Algorithm 1 application).
func (s *Strided) ToGIOV() GIOV {
	g := GIOV{Bytes: s.SegBytes()}
	n := s.Segments()
	g.Src = make([]Addr, 0, n)
	g.Dst = make([]Addr, 0, n)
	s.Iterate(func(so, do int) {
		g.Src = append(g.Src, s.Src.Add(so))
		g.Dst = append(g.Dst, s.Dst.Add(do))
	})
	return g
}
