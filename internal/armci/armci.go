// Package armci defines the ARMCI (Aggregate Remote Memory Copy
// Interface) API surface of the paper: global addresses, contiguous and
// noncontiguous (strided and generalized I/O vector) one-sided
// operations, read-modify-write, mutexes, fences, processor groups, and
// the paper's two API extensions (direct local access and access
// modes).
//
// Two implementations satisfy Runtime: internal/native (the
// vendor-tuned baseline built directly on the fabric) and
// internal/armcimpi (the paper's contribution, built on MPI one-sided
// communication). Global Arrays (internal/ga) runs unchanged on either.
package armci

import (
	"fmt"

	"repro/internal/fabric"
	"repro/internal/sim"
)

// Addr is an ARMCI global address: <process id, address> (SectionIV).
type Addr = fabric.Addr

// AccOp selects the accumulate element type/operation. The paper's
// workloads use double-precision accumulate (ARMCI_ACC_DBL).
type AccOp int

const (
	AccDbl AccOp = iota // double-precision: dst += scale * src
)

// RmwOp selects the atomic read-modify-write operation (SectionV.D).
type RmwOp int

const (
	FetchAndAdd RmwOp = iota // returns old value, adds operand
	Swap                     // returns old value, stores operand
)

func (op RmwOp) String() string {
	if op == Swap {
		return "swap"
	}
	return "fetch-and-add"
}

// AccessMode is the paper's SectionVIII.A extension: application-level
// hints about how an allocation will be accessed during a program
// phase, enabling relaxed locking.
type AccessMode int

const (
	// ModeConflicting is the default: any mix of operations may occur,
	// so ARMCI-MPI must use exclusive-lock epochs.
	ModeConflicting AccessMode = iota
	// ModeReadOnly promises only get operations until the mode changes.
	ModeReadOnly
	// ModeAccOnly promises only (same-op) accumulate operations.
	ModeAccOnly
)

func (m AccessMode) String() string {
	switch m {
	case ModeReadOnly:
		return "read-only"
	case ModeAccOnly:
		return "accumulate-only"
	default:
		return "conflicting"
	}
}

// Group is an ARMCI processor group. Communication operations always
// use absolute process ids (world ranks); group ids must be translated
// via AbsoluteID, mirroring ARMCI_Absolute_id (SectionIV).
type Group struct {
	Ranks []int       // group rank -> world rank, ascending creation order
	Impl  interface{} // runtime-private state (e.g. an MPI communicator)
}

// Size returns the number of members.
func (g *Group) Size() int { return len(g.Ranks) }

// AbsoluteID translates a group rank to a world rank.
func (g *Group) AbsoluteID(rank int) int { return g.Ranks[rank] }

// RankOf translates a world rank to a group rank, or -1.
func (g *Group) RankOf(world int) int {
	for i, r := range g.Ranks {
		if r == world {
			return i
		}
	}
	return -1
}

// Handle is a nonblocking-operation handle; Wait blocks until the
// operation is locally complete (ARMCI's local completion semantics,
// SectionIV.A). Wait is idempotent: waiting an already-complete handle
// returns immediately.
type Handle interface {
	Wait()
}

// Tester is optionally implemented by handles that can report local
// completion without blocking (ARMCI_Test).
type Tester interface {
	Test() bool
}

// WaitAll waits for local completion of every handle. Nil handles are
// permitted and skipped, and handles may appear (or the whole set be
// waited) more than once — Wait is idempotent.
func WaitAll(hs ...Handle) {
	for _, h := range hs {
		if h != nil {
			h.Wait()
		}
	}
}

// TestAll reports whether every handle in the set is locally complete,
// without blocking. Every handle is polled (completion may release the
// handle's resources); handles that do not implement Tester are
// conservatively treated as incomplete.
func TestAll(hs ...Handle) bool {
	all := true
	for _, h := range hs {
		if h == nil {
			continue
		}
		t, ok := h.(Tester)
		if !ok || !t.Test() {
			all = false
		}
	}
	return all
}

// Mutexes is a set of ARMCI mutexes created by CreateMutexes. Mutex i
// of the set lives on the process that hosts it per the creating
// runtime's distribution (ARMCI hosts mutex i on process i % nprocs
// unless created with an explicit count per process; we follow the
// simple convention that CreateMutexes(n) places all n on the calling
// group's rank-cyclic hosts).
type Mutexes interface {
	// Lock acquires mutex mtx hosted on process proc (world rank).
	Lock(mtx, proc int)
	// Unlock releases mutex mtx on proc.
	Unlock(mtx, proc int)
	// Destroy collectively frees the set.
	Destroy() error
}

// Runtime is one rank's handle to an ARMCI implementation. All calls
// are made from that rank's goroutine. Operations on global memory use
// absolute process ids embedded in Addr.
type Runtime interface {
	// Name identifies the implementation ("native" or "armci-mpi").
	Name() string
	// Rank returns the calling process id (world rank).
	Rank() int
	// Nprocs returns the world size.
	Nprocs() int
	// Proc returns the rank's simulation context.
	Proc() *sim.Proc

	// Malloc collectively allocates bytes of globally accessible memory
	// on every process of the world and returns the address vector
	// (ARMCI_Malloc). A process may pass 0 and receives a Nil address.
	Malloc(bytes int) ([]Addr, error)
	// MallocGroup is Malloc over a group (only members call).
	MallocGroup(g *Group, bytes int) ([]Addr, error)
	// Free collectively releases an allocation; processes that received
	// a Nil address pass Nil (SectionV.B's leader-election case).
	Free(addr Addr) error
	// FreeGroup releases a group allocation.
	FreeGroup(g *Group, addr Addr) error
	// MallocLocal allocates local buffer memory from the runtime's
	// (pinned, if applicable) allocator (ARMCI_Malloc_local).
	MallocLocal(bytes int) Addr
	// FreeLocal releases local buffer memory.
	FreeLocal(addr Addr) error
	// LocalBytes exposes the raw bytes of a local buffer on the calling
	// process. For memory inside a GMR, direct access must instead be
	// bracketed by AccessBegin/AccessEnd.
	LocalBytes(addr Addr, n int) ([]byte, error)

	// Put copies n bytes from the local address src to the global
	// address dst; blocking (locally complete on return).
	Put(src, dst Addr, n int) error
	// Get copies n bytes from the global address src to the local
	// address dst; blocking (data available on return).
	Get(src, dst Addr, n int) error
	// Acc atomically applies dst += scale*src elementwise on float64
	// (ARMCI_Acc with ARMCI_ACC_DBL); blocking local completion.
	Acc(op AccOp, scale float64, src, dst Addr, n int) error

	// PutS/GetS/AccS perform strided transfers (Table I notation).
	PutS(s *Strided) error
	GetS(s *Strided) error
	AccS(op AccOp, scale float64, s *Strided) error

	// PutV/GetV/AccV perform generalized I/O vector transfers to/from a
	// single process (SectionVI.A).
	PutV(iov []GIOV, proc int) error
	GetV(iov []GIOV, proc int) error
	AccV(op AccOp, scale float64, iov []GIOV, proc int) error

	// Nb* are the nonblocking variants of every data-movement
	// operation; the handle's Wait provides local completion, and
	// Fence/AllFence provide remote completion.
	NbPut(src, dst Addr, n int) (Handle, error)
	NbGet(src, dst Addr, n int) (Handle, error)
	NbAcc(op AccOp, scale float64, src, dst Addr, n int) (Handle, error)
	NbPutS(s *Strided) (Handle, error)
	NbGetS(s *Strided) (Handle, error)
	NbAccS(op AccOp, scale float64, s *Strided) (Handle, error)
	NbPutV(iov []GIOV, proc int) (Handle, error)
	NbGetV(iov []GIOV, proc int) (Handle, error)
	NbAccV(op AccOp, scale float64, iov []GIOV, proc int) (Handle, error)

	// Fence blocks until all operations this process issued to proc
	// have completed remotely (ARMCI_Fence).
	Fence(proc int)
	// AllFence fences every process (ARMCI_AllFence).
	AllFence()
	// Barrier synchronizes all processes and fences all communication.
	Barrier()

	// Rmw performs an atomic read-modify-write on the int64 at the
	// global address: FetchAndAdd returns old and adds operand; Swap
	// returns old and stores operand (SectionV.D).
	Rmw(op RmwOp, addr Addr, operand int64) (int64, error)

	// CreateMutexes collectively creates n mutexes hosted on the
	// calling process (every process may pass a different n; mutex m of
	// process p is addressed as (m, p)).
	CreateMutexes(n int) (Mutexes, error)

	// AccessBegin/AccessEnd bracket direct load/store access to local
	// global memory (the paper's DLA extension, SectionV.E). The
	// returned slice aliases the exposed memory and is valid until
	// AccessEnd.
	AccessBegin(addr Addr, n int) ([]byte, error)
	AccessEnd(addr Addr) error

	// SetAccessMode applies the SectionVIII.A access-mode hint to the
	// allocation containing addr on every process (collective).
	SetAccessMode(mode AccessMode, addr Addr) error

	// GroupCreateCollective creates a group from world ranks; all world
	// processes must call (members and non-members alike). Non-members
	// receive nil.
	GroupCreateCollective(members []int) (*Group, error)
	// GroupCreate creates a group noncollectively: only members call
	// (SectionV.A / the recursive intercommunicator algorithm).
	GroupCreate(members []int) (*Group, error)
}

// CheckContig validates a contiguous transfer request.
func CheckContig(src, dst Addr, n int) error {
	if n < 0 {
		return fmt.Errorf("armci: negative transfer size %d", n)
	}
	if src.Nil() || dst.Nil() {
		return fmt.Errorf("armci: transfer with NULL address (src=%v dst=%v)", src, dst)
	}
	return nil
}
