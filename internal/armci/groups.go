package armci

import (
	"sort"

	"repro/internal/mpi"
)

// MPIColl adapts an MPI rank handle to the collective-bootstrap
// interface both ARMCI runtimes use for process management. In the
// paper's software stacks (Figure 1) MPI is present alongside ARMCI in
// both configurations, providing process management and collectives.
type MPIColl struct {
	R *mpi.Rank
}

// Barrier synchronizes the world.
func (c MPIColl) Barrier() { c.R.CommWorld().Barrier() }

// AllgatherI64 gathers one vector per rank over the world.
func (c MPIColl) AllgatherI64(vals []int64) []int64 {
	return c.R.CommWorld().AllgatherI64(vals)
}

// BcastI64 broadcasts from root over the world.
func (c MPIColl) BcastI64(root int, vals []int64) []int64 {
	return c.R.CommWorld().BcastI64(root, vals)
}

// groupTagBase reserves a tag range for noncollective group formation.
const groupTagBase = 1 << 22

// GroupComm builds a communicator for the given sorted member list.
// In collective mode every world rank must call (non-members receive
// nil); in noncollective mode only members call, using the recursive
// intercommunicator algorithm.
func (c MPIColl) GroupComm(members []int, collective bool) interface{} {
	world := c.R.CommWorld()
	if collective {
		color := -1
		key := 0
		if i := sort.SearchInts(members, c.R.ID()); i < len(members) && members[i] == c.R.ID() {
			color = 0
			key = i
		}
		comm := world.Split(color, key)
		if comm == nil {
			return nil
		}
		return comm
	}
	return mpi.CommCreateGroup(world, members, groupTagBase)
}

// GroupAllgatherI64 gathers over a group communicator.
func (c MPIColl) GroupAllgatherI64(g interface{}, vals []int64) []int64 {
	return g.(*mpi.Comm).AllgatherI64(vals)
}

// GroupBarrier synchronizes a group.
func (c MPIColl) GroupBarrier(g interface{}) { g.(*mpi.Comm).Barrier() }

// GroupBcastI64 broadcasts within a group.
func (c MPIColl) GroupBcastI64(g interface{}, root int, vals []int64) []int64 {
	return g.(*mpi.Comm).BcastI64(root, vals)
}

// GroupCommOf extracts the MPI communicator backing a group.
func GroupCommOf(g *Group) *mpi.Comm {
	if g == nil || g.Impl == nil {
		return nil
	}
	return g.Impl.(*mpi.Comm)
}
