package armci

import "fmt"

// GIOV mirrors armci_giov_t (SectionVI.A): a series of equal-sized
// data segments. For put/acc, Src entries are local addresses and Dst
// entries remote; for get, Src entries are remote and Dst local.
type GIOV struct {
	Src   []Addr // source address of each segment
	Dst   []Addr // destination address of each segment
	Bytes int    // length of each segment in bytes
}

// Len returns the number of segments (ptr_array_len).
func (g *GIOV) Len() int { return len(g.Src) }

// TotalBytes returns the total payload of the descriptor.
func (g *GIOV) TotalBytes() int { return g.Bytes * g.Len() }

// Validate reports the first structural problem.
func (g *GIOV) Validate() error {
	if len(g.Src) != len(g.Dst) {
		return fmt.Errorf("armci: giov src/dst length mismatch: %d vs %d", len(g.Src), len(g.Dst))
	}
	if g.Bytes <= 0 && len(g.Src) > 0 {
		return fmt.Errorf("armci: giov segment length %d must be positive", g.Bytes)
	}
	return nil
}

// ValidateIOV checks a full IOV operation descriptor array and that
// the remote side targets a single process.
func ValidateIOV(iov []GIOV, proc int, remoteIsSrc bool) error {
	for i := range iov {
		g := &iov[i]
		if err := g.Validate(); err != nil {
			return fmt.Errorf("armci: iov[%d]: %w", i, err)
		}
		remote, local := g.Dst, g.Src
		if remoteIsSrc {
			remote, local = g.Src, g.Dst
		}
		for j := range remote {
			if remote[j].Rank != proc {
				return fmt.Errorf("armci: iov[%d] segment %d targets rank %d, want %d",
					i, j, remote[j].Rank, proc)
			}
			if remote[j].Nil() || local[j].Nil() {
				return fmt.Errorf("armci: iov[%d] segment %d has NULL address", i, j)
			}
		}
	}
	return nil
}
