package armci

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func addr(rank int, va int64) Addr { return Addr{Rank: rank, VA: va} }

func TestStridedBasics(t *testing.T) {
	s := &Strided{
		Src: addr(0, 0x1000), Dst: addr(1, 0x2000),
		SrcStride: []int{32}, DstStride: []int{64},
		Count: []int{16, 4},
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.Levels() != 1 || s.SegBytes() != 16 || s.Segments() != 4 || s.TotalBytes() != 64 {
		t.Errorf("descriptor accessors wrong: %d/%d/%d/%d",
			s.Levels(), s.SegBytes(), s.Segments(), s.TotalBytes())
	}
	if s.SrcSpan() != 3*32+16 || s.DstSpan() != 3*64+16 {
		t.Errorf("spans: %d/%d", s.SrcSpan(), s.DstSpan())
	}
}

func TestStridedIterateAlgorithm1(t *testing.T) {
	// The paper's Algorithm 1: innermost index fastest, carry outward.
	s := &Strided{
		Src: addr(0, 0), Dst: addr(1, 0),
		SrcStride: []int{10, 100}, DstStride: []int{20, 200},
		Count: []int{5, 2, 3},
	}
	var src, dst []int
	s.Iterate(func(so, do int) {
		src = append(src, so)
		dst = append(dst, do)
	})
	wantSrc := []int{0, 10, 100, 110, 200, 210}
	wantDst := []int{0, 20, 200, 220, 400, 420}
	if len(src) != 6 {
		t.Fatalf("iterated %d segments, want 6", len(src))
	}
	for i := range wantSrc {
		if src[i] != wantSrc[i] || dst[i] != wantDst[i] {
			t.Fatalf("segment %d = (%d,%d), want (%d,%d)", i, src[i], dst[i], wantSrc[i], wantDst[i])
		}
	}
}

func TestStridedZeroLevels(t *testing.T) {
	s := &Strided{Src: addr(0, 8), Dst: addr(1, 8), Count: []int{128}}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	n := 0
	s.Iterate(func(so, do int) {
		if so != 0 || do != 0 {
			t.Errorf("0-level iterate gave offsets %d/%d", so, do)
		}
		n++
	})
	if n != 1 {
		t.Errorf("0-level iterate ran %d times", n)
	}
}

func TestStridedValidateRejects(t *testing.T) {
	bad := []*Strided{
		{Src: addr(0, 1), Dst: addr(1, 1), Count: []int{}},                                                // empty count
		{Src: addr(0, 1), Dst: addr(1, 1), SrcStride: []int{8}, DstStride: []int{8}, Count: []int{0, 2}},  // zero seg
		{Src: addr(0, 1), Dst: addr(1, 1), SrcStride: []int{4}, DstStride: []int{16}, Count: []int{8, 2}}, // src overlap
		{Src: addr(0, 1), Dst: addr(1, 1), SrcStride: []int{16}, DstStride: []int{4}, Count: []int{8, 2}}, // dst overlap
		{Src: addr(0, 1), Dst: addr(1, 1), SrcStride: []int{16}, Count: []int{8, 2}},                      // stride len
		{Src: Addr{}, Dst: addr(1, 1), SrcStride: []int{16}, DstStride: []int{16}, Count: []int{8, 2}},    // NULL base
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("case %d accepted: %+v", i, s)
		}
	}
}

func TestStridedToGIOVMatchesIterate(t *testing.T) {
	check := func(seg, c1, c2, pad1, pad2 uint8) bool {
		segBytes := int(seg%64) + 1
		n1, n2 := int(c1%5)+1, int(c2%5)+1
		s := &Strided{
			Src: addr(0, 0x100), Dst: addr(2, 0x900),
			SrcStride: []int{segBytes + int(pad1%16)},
			DstStride: []int{segBytes + int(pad2%16)},
			Count:     []int{segBytes, n1},
		}
		_ = n2
		if s.Validate() != nil {
			return true // skip invalid shapes
		}
		g := s.ToGIOV()
		if g.Bytes != segBytes || g.Len() != s.Segments() {
			return false
		}
		i := 0
		ok := true
		s.Iterate(func(so, do int) {
			if g.Src[i] != s.Src.Add(so) || g.Dst[i] != s.Dst.Add(do) {
				ok = false
			}
			i++
		})
		return ok && i == g.Len()
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestStridedSubarrayTranslation(t *testing.T) {
	// SectionVI.C: strides that nest evenly translate to subarrays.
	s := &Strided{
		Src: addr(0, 0), Dst: addr(1, 0),
		SrcStride: []int{64, 640}, DstStride: []int{128, 1280},
		Count: []int{32, 5, 3},
	}
	sizes, subsizes, starts, ok := s.SrcSubarray()
	if !ok {
		t.Fatal("evenly nested strides should translate")
	}
	// Innermost: 64-byte rows with 32 selected; middle: 640/64=10 rows
	// with 5 selected; outermost: exactly 3.
	want := [][3]int{{3, 3, 0}, {10, 5, 0}, {64, 32, 0}}
	for d := range want {
		if sizes[d] != want[d][0] || subsizes[d] != want[d][1] || starts[d] != want[d][2] {
			t.Errorf("dim %d: (%d,%d,%d), want %v", d, sizes[d], subsizes[d], starts[d], want[d])
		}
	}
	// Unevenly nested strides must refuse.
	s2 := &Strided{
		Src: addr(0, 0), Dst: addr(1, 0),
		SrcStride: []int{64, 650}, DstStride: []int{64, 650},
		Count: []int{32, 5, 3},
	}
	if _, _, _, ok := s2.SrcSubarray(); ok {
		t.Error("uneven stride nesting translated to a subarray")
	}
}

func TestGIOVValidate(t *testing.T) {
	g := GIOV{
		Src:   []Addr{addr(0, 1), addr(0, 2)},
		Dst:   []Addr{addr(1, 1), addr(1, 2)},
		Bytes: 8,
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.Len() != 2 || g.TotalBytes() != 16 {
		t.Error("giov accessors wrong")
	}
	mismatch := GIOV{Src: []Addr{addr(0, 1)}, Dst: nil, Bytes: 8}
	if err := mismatch.Validate(); err == nil {
		t.Error("src/dst length mismatch accepted")
	}
	zero := GIOV{Src: []Addr{addr(0, 1)}, Dst: []Addr{addr(1, 1)}, Bytes: 0}
	if err := zero.Validate(); err == nil {
		t.Error("zero segment length accepted")
	}
}

func TestValidateIOV(t *testing.T) {
	good := []GIOV{{
		Src:   []Addr{addr(0, 1)},
		Dst:   []Addr{addr(3, 1)},
		Bytes: 4,
	}}
	if err := ValidateIOV(good, 3, false); err != nil {
		t.Fatal(err)
	}
	// Remote side on the wrong process.
	if err := ValidateIOV(good, 2, false); err == nil {
		t.Error("wrong target process accepted")
	}
	// For a get, the remote side is Src.
	if err := ValidateIOV(good, 0, true); err != nil {
		t.Errorf("get orientation: %v", err)
	}
	nullAddr := []GIOV{{Src: []Addr{{}}, Dst: []Addr{addr(3, 1)}, Bytes: 4}}
	if err := ValidateIOV(nullAddr, 3, false); err == nil {
		t.Error("NULL address accepted")
	}
}

func TestGroupTranslation(t *testing.T) {
	g := &Group{Ranks: []int{2, 5, 9}}
	if g.Size() != 3 || g.AbsoluteID(1) != 5 || g.RankOf(9) != 2 || g.RankOf(3) != -1 {
		t.Error("group translation wrong")
	}
}

func TestAccessModeStrings(t *testing.T) {
	for m, want := range map[AccessMode]string{
		ModeConflicting: "conflicting", ModeReadOnly: "read-only", ModeAccOnly: "accumulate-only",
	} {
		if m.String() != want {
			t.Errorf("%d.String() = %q", int(m), m.String())
		}
	}
	if FetchAndAdd.String() != "fetch-and-add" || Swap.String() != "swap" {
		t.Error("rmw op strings wrong")
	}
}

func TestCheckContig(t *testing.T) {
	if err := CheckContig(addr(0, 1), addr(1, 1), 8); err != nil {
		t.Error(err)
	}
	if err := CheckContig(addr(0, 1), addr(1, 1), -1); err == nil {
		t.Error("negative size accepted")
	}
	if err := CheckContig(Addr{}, addr(1, 1), 8); err == nil {
		t.Error("NULL src accepted")
	}
}

func TestStridedIteratePropertyCoverage(t *testing.T) {
	// Property: Iterate enumerates exactly Segments() disjoint source
	// offsets for valid descriptors of 2-3 levels.
	check := func(seed int64) bool {
		rnd := rand.New(rand.NewSource(seed))
		sl := 1 + rnd.Intn(2)
		seg := 1 + rnd.Intn(32)
		count := make([]int, sl+1)
		count[0] = seg
		srcStride := make([]int, sl)
		dstStride := make([]int, sl)
		prevS, prevD := seg, seg
		for i := 0; i < sl; i++ {
			count[i+1] = 1 + rnd.Intn(4)
			srcStride[i] = prevS + rnd.Intn(8)
			dstStride[i] = prevD + rnd.Intn(8)
			prevS = srcStride[i] * count[i+1]
			prevD = dstStride[i] * count[i+1]
		}
		s := &Strided{
			Src: addr(0, 0x10), Dst: addr(1, 0x10),
			SrcStride: srcStride, DstStride: dstStride, Count: count,
		}
		if s.Validate() != nil {
			return false
		}
		seen := map[int]bool{}
		n := 0
		bad := false
		s.Iterate(func(so, do int) {
			for k := so; k < so+seg; k++ {
				if seen[k] {
					bad = true // overlapping source coverage
				}
				seen[k] = true
			}
			if so+seg > s.SrcSpan() || do+seg > s.DstSpan() {
				bad = true
			}
			n++
		})
		return !bad && n == s.Segments() && len(seen) == n*seg
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
