package mpi

// Collectives over a communicator. All are implemented with real
// point-to-point messages so their virtual-time cost reflects the
// algorithm (dissemination barrier, binomial broadcast, recursive
// doubling, ring allgather). Tag isolation uses a per-rank collective
// sequence number: all ranks call collectives on a communicator in the
// same order, so the sequence numbers agree.

const collTagBase = 1 << 24

// collTag derives the tag for round `round` of the current collective.
func (c *Comm) collTag(round int) int {
	return collTagBase | ((c.collSeq & 0x3FFF) << 8) | (round & 0xFF)
}

// Barrier blocks until all ranks of the communicator have entered it
// (dissemination algorithm, ceil(log2 n) rounds).
func (c *Comm) Barrier() {
	c.collSeq++
	n := c.Size()
	if n == 1 {
		return
	}
	for k, round := 1, 0; k < n; k, round = k*2, round+1 {
		to := (c.rank + k) % n
		from := (c.rank - k + n) % n
		c.Send(to, c.collTag(round), nil)
		c.Recv(from, c.collTag(round))
	}
}

// Bcast distributes root's buffer to all ranks (binomial tree) and
// returns it. Non-root callers pass a buffer of the correct size (its
// contents are replaced); passing nil is allowed if root's size is
// unknown, in which case the returned slice carries the data.
func (c *Comm) Bcast(root int, data []byte) []byte {
	c.collSeq++
	n := c.Size()
	if n == 1 {
		return data
	}
	// Rotate so the root is virtual rank 0.
	vrank := (c.rank - root + n) % n
	tag := c.collTag(0)
	if vrank != 0 {
		// Receive from parent.
		parent := vrank & (vrank - 1) // clear lowest set bit
		data, _ = c.Recv((parent+root)%n, tag)
	}
	// Forward to children: bits above my lowest set bit.
	for bit := 1; bit < n; bit *= 2 {
		if vrank&(bit-1) != 0 || vrank&bit != 0 {
			continue
		}
		child := vrank | bit
		if child < n {
			c.Send((child+root)%n, tag, data)
		}
	}
	return data
}

// bcastI64 broadcasts int64s from root.
func (c *Comm) bcastI64(root int, vals []int64) []int64 {
	out := c.Bcast(root, i64sToBytes(vals))
	return bytesToI64s(out)
}

// BcastI64 broadcasts a vector of int64 from root.
func (c *Comm) BcastI64(root int, vals []int64) []int64 { return c.bcastI64(root, vals) }

// BcastF64 broadcasts a vector of float64 from root.
func (c *Comm) BcastF64(root int, vals []float64) []float64 {
	return bytesToF64s(c.Bcast(root, f64sToBytes(vals)))
}

// Allgather concatenates every rank's equal-sized contribution in rank
// order (ring algorithm, n-1 steps).
func (c *Comm) Allgather(mine []byte) [][]byte {
	c.collSeq++
	n := c.Size()
	out := make([][]byte, n)
	out[c.rank] = append([]byte(nil), mine...)
	if n == 1 {
		return out
	}
	right := (c.rank + 1) % n
	left := (c.rank - 1 + n) % n
	cur := c.rank
	for step := 0; step < n-1; step++ {
		tag := c.collTag(step)
		data, _ := c.Sendrecv(right, tag, out[cur], left, tag)
		cur = (cur - 1 + n) % n
		out[cur] = data
	}
	return out
}

// allgatherI64 gathers equal-length int64 vectors, concatenated in
// rank order.
func (c *Comm) allgatherI64(mine []int64) []int64 {
	parts := c.Allgather(i64sToBytes(mine))
	var out []int64
	for _, p := range parts {
		out = append(out, bytesToI64s(p)...)
	}
	return out
}

// AllgatherI64 gathers equal-length int64 vectors in rank order.
func (c *Comm) AllgatherI64(mine []int64) []int64 { return c.allgatherI64(mine) }

// Gather collects every rank's contribution at root (in rank order);
// non-root ranks receive nil.
func (c *Comm) Gather(root int, mine []byte) [][]byte {
	c.collSeq++
	tag := c.collTag(0)
	if c.rank != root {
		c.Send(root, tag, mine)
		return nil
	}
	out := make([][]byte, c.Size())
	out[root] = append([]byte(nil), mine...)
	for i := 0; i < c.Size()-1; i++ {
		data, st := c.Recv(AnySource, tag)
		out[st.Source] = data
	}
	return out
}

// AllreduceF64 reduces float64 vectors elementwise across all ranks
// (recursive doubling for power-of-two sizes, with a fold-in step for
// the remainder) and returns the result on every rank.
func (c *Comm) AllreduceF64(op Op, vals []float64) []float64 {
	c.collSeq++
	acc := append([]float64(nil), vals...)
	n := c.Size()
	if n == 1 {
		return acc
	}
	pow2 := 1
	for pow2*2 <= n {
		pow2 *= 2
	}
	rem := n - pow2
	tagR := c.collTag(254)
	// Fold the remainder ranks into their partners.
	if c.rank >= pow2 {
		c.Send(c.rank-pow2, tagR, f64sToBytes(acc))
	} else if c.rank < rem {
		data, _ := c.Recv(c.rank+pow2, tagR)
		reduceF64(op, acc, bytesToF64s(data))
	}
	if c.rank < pow2 {
		for k, round := 1, 0; k < pow2; k, round = k*2, round+1 {
			peer := c.rank ^ k
			tag := c.collTag(round)
			data, _ := c.Sendrecv(peer, tag, f64sToBytes(acc), peer, tag)
			reduceF64(op, acc, bytesToF64s(data))
		}
	}
	// Send results back to the remainder ranks.
	tagB := c.collTag(255)
	if c.rank < rem {
		c.Send(c.rank+pow2, tagB, f64sToBytes(acc))
	} else if c.rank >= pow2 {
		data, _ := c.Recv(c.rank-pow2, tagB)
		acc = bytesToF64s(data)
	}
	return acc
}

// AllreduceI64 reduces int64 vectors elementwise across all ranks.
func (c *Comm) AllreduceI64(op Op, vals []int64) []int64 {
	c.collSeq++
	acc := append([]int64(nil), vals...)
	n := c.Size()
	if n == 1 {
		return acc
	}
	pow2 := 1
	for pow2*2 <= n {
		pow2 *= 2
	}
	rem := n - pow2
	tagR := c.collTag(254)
	if c.rank >= pow2 {
		c.Send(c.rank-pow2, tagR, i64sToBytes(acc))
	} else if c.rank < rem {
		data, _ := c.Recv(c.rank+pow2, tagR)
		reduceI64(op, acc, bytesToI64s(data))
	}
	if c.rank < pow2 {
		for k, round := 1, 0; k < pow2; k, round = k*2, round+1 {
			peer := c.rank ^ k
			tag := c.collTag(round)
			data, _ := c.Sendrecv(peer, tag, i64sToBytes(acc), peer, tag)
			reduceI64(op, acc, bytesToI64s(data))
		}
	}
	tagB := c.collTag(255)
	if c.rank < rem {
		c.Send(c.rank+pow2, tagB, i64sToBytes(acc))
	} else if c.rank >= pow2 {
		data, _ := c.Recv(c.rank-pow2, tagB)
		acc = bytesToI64s(data)
	}
	return acc
}

// ReduceF64 reduces to root only (implemented as allreduce cost-wise
// is unfair; use a binomial gather-reduce).
func (c *Comm) ReduceF64(root int, op Op, vals []float64) []float64 {
	c.collSeq++
	n := c.Size()
	acc := append([]float64(nil), vals...)
	if n == 1 {
		return acc
	}
	vrank := (c.rank - root + n) % n
	tag := c.collTag(0)
	for bit := 1; bit < n; bit *= 2 {
		if vrank&bit != 0 {
			// Send my partial to the parent and exit.
			c.Send(((vrank^bit)+root)%n, tag, f64sToBytes(acc))
			return nil
		}
		peer := vrank | bit
		if peer < n {
			data, _ := c.Recv((peer+root)%n, tag)
			reduceF64(op, acc, bytesToF64s(data))
		}
	}
	return acc
}
