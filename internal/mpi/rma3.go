package mpi

import (
	"encoding/binary"
	"fmt"
	"sort"

	"repro/internal/fabric"
	"repro/internal/obs"
	"repro/internal/obs/profile"
	"repro/internal/sim"
)

// MPI-3 RMA extensions (paper SectionVIII.B). The MPI Forum's MPI-3
// proposal addressed the four gaps this paper identified in MPI-2:
// conflicting operations relaxed from erroneous to undefined, an
// epochless passive mode (lock_all + flush), request-based operations,
// and atomic read-modify-write. These are implemented here behind
// World.MPI3 so the ARMCI-MPI runtime can be ablated against the
// MPI-2-only design the paper shipped with.

// EnableMPI3 switches the world into MPI-3 mode.
func (w *World) EnableMPI3() { w.MPI3 = true }

// LockedAll reports whether the window is in lock-all mode.
func (w *Win) LockedAll() bool { return w.all != nil }

// LockAll opens an epochless shared access epoch to every target. In
// MPI-3 implementations on cache-coherent hardware this performs no
// communication (locks are acquired lazily), which is how it is
// modeled here.
func (w *Win) LockAll() error {
	if !w.comm.r.W.MPI3 {
		return errMPI3(w, "Win_lock_all")
	}
	if w.cur != nil {
		return fmt.Errorf("mpi: LockAll with an MPI-2 epoch open on target %d", w.cur.target)
	}
	if w.all != nil {
		return fmt.Errorf("mpi: LockAll: already in lock-all mode")
	}
	w.comm.r.opOverhead()
	w.all = map[int]*epoch{}
	return nil
}

// UnlockAll flushes all pending operations and leaves lock-all mode.
func (w *Win) UnlockAll() error {
	if w.all == nil {
		return fmt.Errorf("mpi: UnlockAll without LockAll")
	}
	if err := w.FlushAll(); err != nil {
		return err
	}
	w.all = nil
	return w.state.err
}

// Flush blocks until every operation issued to target since the last
// flush has completed remotely (one control round trip after the last
// completion). For a same-node target of a shared window all issued
// operations were synchronous memcpys: the flush degenerates to a local
// memory fence and pays no round trip.
func (w *Win) Flush(target int) error {
	if w.all == nil {
		return fmt.Errorf("mpi: Flush outside lock-all mode")
	}
	r := w.comm.r
	t0 := r.P.Now()
	r.opOverhead()
	if ep := w.all[target]; ep != nil {
		for {
			horizon := ep.completeAt
			r.W.M.SleepUntil(r.P, horizon)
			if ep.completeAt <= horizon {
				break
			}
		}
		if !w.shmFast(target) {
			r.P.Elapse(r.W.M.RoundTripTime(r.ID(), w.state.group[target]))
		}
	}
	o := r.W.Obs
	o.Inc(r.ID(), obs.CEpochFlush)
	if pr := o.Prof(); pr != nil {
		pr.PhaseAt(r.ID(), profile.PhaseEpochWait, t0, r.P.Now())
	}
	if o.Tracing() {
		o.Span(r.ID(), "epoch", "flush", t0, r.P.Now(), obs.A("target", w.state.group[target]))
	}
	return w.state.err
}

// FlushAll flushes every target with pending operations.
func (w *Win) FlushAll() error {
	if w.all == nil {
		return fmt.Errorf("mpi: FlushAll outside lock-all mode")
	}
	r := w.comm.r
	t0 := r.P.Now()
	r.opOverhead()
	// Iterate targets in rank order so ties on completeAt resolve
	// deterministically.
	targets := make([]int, 0, len(w.all))
	for t := range w.all {
		targets = append(targets, t)
	}
	sort.Ints(targets)
	rtt := sim.Time(0)
	for {
		var last sim.Time
		for _, t := range targets {
			if ep := w.all[t]; ep.completeAt > last {
				last = ep.completeAt
				if w.shmFast(t) {
					rtt = 0 // shm targets need no completion round trip
				} else {
					rtt = r.W.M.RoundTripTime(r.ID(), w.state.group[t])
				}
			}
		}
		if last <= r.P.Now() {
			break
		}
		r.W.M.SleepUntil(r.P, last)
	}
	r.P.Elapse(rtt)
	o := r.W.Obs
	o.Inc(r.ID(), obs.CEpochFlush)
	if pr := o.Prof(); pr != nil {
		pr.PhaseAt(r.ID(), profile.PhaseEpochWait, t0, r.P.Now())
	}
	o.Span(r.ID(), "epoch", "flush_all", t0, r.P.Now())
	return w.state.err
}

// lockAllEpoch returns (creating on demand) the per-target accounting
// epoch used in lock-all mode.
func (w *Win) lockAllEpoch(target int) *epoch {
	ep := w.all[target]
	if ep == nil {
		r := w.comm.r
		ep = &epoch{target: target, ltype: LockShared, relaxed: true,
			openedAt: r.P.Now(), completeAt: r.P.Now()}
		w.all[target] = ep
		r.W.Epochs++
		r.W.Obs.Inc(r.ID(), obs.CEpochs)
	}
	return ep
}

func errMPI3(w *Win, call string) error {
	return fmt.Errorf("mpi: %s requires MPI-3 mode (MPI 2.2 provides no such operation)", call)
}

// RMAReq is a request handle for an MPI-3 request-based operation.
type RMAReq struct {
	r      *Rank
	doneAt sim.Time
	ep     *epoch // when set, Wait tracks the epoch's (refinable) horizon
}

// Wait blocks until the operation has completed locally. Get-style
// requests track their epoch's completion horizon, which the fabric
// refines once the request reaches the target (NIC occupancy there is
// unknown at issue time).
func (q *RMAReq) Wait() {
	for {
		t := q.doneAt
		if q.ep != nil && q.ep.completeAt > t {
			t = q.ep.completeAt
		}
		q.r.W.M.SleepUntil(q.r.P, t)
		if q.ep == nil || q.ep.completeAt <= t {
			return
		}
	}
}

// Test reports whether the operation has completed.
func (q *RMAReq) Test() bool {
	t := q.doneAt
	if q.ep != nil && q.ep.completeAt > t {
		t = q.ep.completeAt
	}
	return q.r.P.Now() >= t
}

// WaitAllRMA blocks until every request in reqs has completed locally
// (MPI_Waitall over request-based RMA operations). Nil requests are
// permitted and skipped, and requests may be waited more than once.
func WaitAllRMA(reqs []*RMAReq) {
	for _, q := range reqs {
		if q != nil {
			q.Wait()
		}
	}
}

// TestAllRMA reports whether every request in reqs has completed
// locally, without blocking (MPI_Testall).
func TestAllRMA(reqs []*RMAReq) bool {
	for _, q := range reqs {
		if q != nil && !q.Test() {
			return false
		}
	}
	return true
}

// RPut is a request-based Put (MPI_Rput): valid in lock-all mode; the
// returned request completes when the origin buffer is reusable.
func (w *Win) RPut(buf LocalBuf, target, tdisp int, ttype Datatype) (*RMAReq, error) {
	if w.all == nil {
		return nil, fmt.Errorf("mpi: RPut outside lock-all mode")
	}
	before := w.cur
	w.cur = w.lockAllEpoch(target)
	err := w.Put(buf, target, tdisp, ttype)
	ep := w.cur
	w.cur = before
	if err != nil {
		return nil, err
	}
	// Local completion: the origin buffer was snapshotted at issue, so
	// the request is complete as soon as the synchronous injection
	// overheads (already charged) are done.
	_ = ep
	return &RMAReq{r: w.comm.r, doneAt: w.comm.r.P.Now()}, nil
}

// RAccumulate is a request-based Accumulate (MPI_Raccumulate): valid
// in lock-all mode; local completion on return (origin snapshotted).
func (w *Win) RAccumulate(buf LocalBuf, op Op, target, tdisp int, ttype Datatype) (*RMAReq, error) {
	if w.all == nil {
		return nil, fmt.Errorf("mpi: RAccumulate outside lock-all mode")
	}
	before := w.cur
	w.cur = w.lockAllEpoch(target)
	err := w.Accumulate(buf, op, target, tdisp, ttype)
	w.cur = before
	if err != nil {
		return nil, err
	}
	return &RMAReq{r: w.comm.r, doneAt: w.comm.r.P.Now()}, nil
}

// RGet is a request-based Get (MPI_Rget); the request completes when
// the data has landed in the origin buffer.
func (w *Win) RGet(buf LocalBuf, target, tdisp int, ttype Datatype) (*RMAReq, error) {
	if w.all == nil {
		return nil, fmt.Errorf("mpi: RGet outside lock-all mode")
	}
	before := w.cur
	w.cur = w.lockAllEpoch(target)
	err := w.Get(buf, target, tdisp, ttype)
	ep := w.cur
	w.cur = before
	if err != nil {
		return nil, err
	}
	return &RMAReq{r: w.comm.r, doneAt: ep.completeAt, ep: ep}, nil
}

const amoProcessNs = 120 // target-side atomic execution cost

// amoShmProf records the profiler attribution of a same-node atomic:
// serialization behind the target's accumulate engine, the atomic
// execution, and the 8-byte matrix entry (send and receive together —
// the shm path completes synchronously).
func (w *Win) amoShmProf(target int, t0q, start, fin sim.Time) {
	pr := w.comm.r.W.Obs.Prof()
	if pr == nil {
		return
	}
	rank := w.comm.r.ID()
	pr.PhaseAt(rank, profile.PhaseTargetQueue, t0q, start)
	pr.PhaseAt(rank, profile.PhaseTargetProc, start, fin)
	targetWorld := w.state.group[target]
	pr.Send(rank, targetWorld, profile.MsgAmo, profile.RouteShm, 8)
	pr.Recv(rank, targetWorld, profile.MsgAmo, profile.RouteShm, 8)
}

// FetchAndOp atomically applies op to the int64 at (target, tdisp) with
// operand `operand` and returns the previous value (MPI_Fetch_and_op
// with MPI_INT64_T). OpNoOp reads without modifying; OpReplace swaps.
// Requires MPI-3 mode and an open epoch or lock-all on the target.
func (w *Win) FetchAndOp(op Op, operand int64, target, tdisp int) (int64, error) {
	r := w.comm.r
	t0 := r.P.Now()
	if !r.W.MPI3 {
		return 0, errMPI3(w, "Fetch_and_op")
	}
	var ep *epoch
	switch {
	case w.cur != nil && w.cur.target == target:
		ep = w.cur
	case w.all != nil:
		ep = w.lockAllEpoch(target)
	default:
		return 0, fmt.Errorf("mpi: FetchAndOp on target %d without epoch or lock-all", target)
	}
	w.chargeRMAOverheads(ep)
	m := r.W.M
	eng := m.Eng
	p := r.P
	targetWorld := w.state.group[target]
	treg := w.state.regions[target]
	tl := w.state.lockAt(target)
	ws := w.state
	var old int64
	if w.shmFast(target) {
		// Same-node atomic: a CPU atomic on the shared segment. Still
		// serialized with accumulate processing on this target, but no
		// control messages.
		t0q := p.Now()
		start := t0q
		if tl.accBusy > start {
			start = tl.accBusy
		}
		fin := start + sim.Time(amoProcessNs)
		tl.accBusy = fin
		w.amoShmProf(target, t0q, start, fin)
		m.SleepUntil(p, fin)
		if err := w.shmApply(func() {
			b := treg.Bytes(treg.VA+int64(tdisp), 8)
			old = int64(binary.LittleEndian.Uint64(b))
			if op != OpNoOp {
				nv := []int64{old}
				reduceI64(op, nv, []int64{operand})
				binary.LittleEndian.PutUint64(b, uint64(nv[0]))
			}
		}, "FetchAndOp"); err != nil {
			return 0, err
		}
		if ep.completeAt < p.Now() {
			ep.completeAt = p.Now()
		}
		o := r.W.Obs
		o.Inc(r.ID(), obs.COpsAmo)
		if o.Tracing() {
			o.Span(r.ID(), "rma", "fetch_and_op("+op.String()+").shm", t0, p.Now(), obs.A("target", targetWorld))
		}
		return old, ws.err
	}
	done := false
	pr := r.W.Obs.Prof()
	origin := r.ID()
	if pr != nil {
		pr.Send(origin, targetWorld, profile.MsgAmo, profile.RouteRMA, 8)
	}
	arrive := r.control(targetWorld)
	eng.At(arrive, func() {
		// Atomics serialize through the target agent.
		t0q := eng.Now()
		start := t0q
		if tl.accBusy > start {
			start = tl.accBusy
		}
		fin := start + sim.Time(amoProcessNs)
		tl.accBusy = fin
		if pr != nil {
			pr.PhaseAt(origin, profile.PhaseTargetQueue, t0q, start)
			pr.PhaseAt(origin, profile.PhaseTargetProc, start, fin)
		}
		eng.At(fin, func() {
			if pr != nil {
				pr.Recv(origin, targetWorld, profile.MsgAmo, profile.RouteRMA, 8)
			}
			defer func() {
				if rec := recover(); rec != nil {
					ws.setErr(fmt.Errorf("mpi: FetchAndOp apply failed: %v", rec))
					done = true
					eng.Unpark(p)
				}
			}()
			b := treg.Bytes(treg.VA+int64(tdisp), 8)
			old = int64(binary.LittleEndian.Uint64(b))
			if op != OpNoOp {
				nv := []int64{old}
				reduceI64(op, nv, []int64{operand})
				binary.LittleEndian.PutUint64(b, uint64(nv[0]))
			}
			back := m.SendDataAsync(targetWorld, r.ID(), 0, fabric.XferOpt{NoNIC: true})
			eng.At(back, func() {
				done = true
				eng.Unpark(p)
			})
		})
	})
	for !done {
		p.Park("mpi.FetchAndOp")
	}
	if ep.completeAt < p.Now() {
		ep.completeAt = p.Now()
	}
	o := r.W.Obs
	o.Inc(r.ID(), obs.COpsAmo)
	if o.Tracing() {
		o.Span(r.ID(), "rma", "fetch_and_op("+op.String()+")", t0, p.Now(), obs.A("target", targetWorld))
	}
	return old, ws.err
}

// CompareAndSwap atomically replaces the int64 at (target, tdisp) with
// swapv if it equals compare, returning the previous value.
func (w *Win) CompareAndSwap(compare, swapv int64, target, tdisp int) (int64, error) {
	r := w.comm.r
	t0 := r.P.Now()
	if !r.W.MPI3 {
		return 0, errMPI3(w, "Compare_and_swap")
	}
	var ep *epoch
	switch {
	case w.cur != nil && w.cur.target == target:
		ep = w.cur
	case w.all != nil:
		ep = w.lockAllEpoch(target)
	default:
		return 0, fmt.Errorf("mpi: CompareAndSwap on target %d without epoch or lock-all", target)
	}
	w.chargeRMAOverheads(ep)
	m := r.W.M
	eng := m.Eng
	p := r.P
	targetWorld := w.state.group[target]
	treg := w.state.regions[target]
	tl := w.state.lockAt(target)
	ws := w.state
	var old int64
	if w.shmFast(target) {
		t0q := p.Now()
		start := t0q
		if tl.accBusy > start {
			start = tl.accBusy
		}
		fin := start + sim.Time(amoProcessNs)
		tl.accBusy = fin
		w.amoShmProf(target, t0q, start, fin)
		m.SleepUntil(p, fin)
		if err := w.shmApply(func() {
			b := treg.Bytes(treg.VA+int64(tdisp), 8)
			old = int64(binary.LittleEndian.Uint64(b))
			if old == compare {
				binary.LittleEndian.PutUint64(b, uint64(swapv))
			}
		}, "CompareAndSwap"); err != nil {
			return 0, err
		}
		if ep.completeAt < p.Now() {
			ep.completeAt = p.Now()
		}
		o := r.W.Obs
		o.Inc(r.ID(), obs.COpsAmo)
		if o.Tracing() {
			o.Span(r.ID(), "rma", "compare_and_swap.shm", t0, p.Now(), obs.A("target", targetWorld))
		}
		return old, ws.err
	}
	done := false
	pr := r.W.Obs.Prof()
	origin := r.ID()
	if pr != nil {
		pr.Send(origin, targetWorld, profile.MsgAmo, profile.RouteRMA, 8)
	}
	arrive := r.control(targetWorld)
	eng.At(arrive, func() {
		t0q := eng.Now()
		start := t0q
		if tl.accBusy > start {
			start = tl.accBusy
		}
		fin := start + sim.Time(amoProcessNs)
		tl.accBusy = fin
		if pr != nil {
			pr.PhaseAt(origin, profile.PhaseTargetQueue, t0q, start)
			pr.PhaseAt(origin, profile.PhaseTargetProc, start, fin)
		}
		eng.At(fin, func() {
			if pr != nil {
				pr.Recv(origin, targetWorld, profile.MsgAmo, profile.RouteRMA, 8)
			}
			defer func() {
				if rec := recover(); rec != nil {
					ws.setErr(fmt.Errorf("mpi: CompareAndSwap apply failed: %v", rec))
					done = true
					eng.Unpark(p)
				}
			}()
			b := treg.Bytes(treg.VA+int64(tdisp), 8)
			old = int64(binary.LittleEndian.Uint64(b))
			if old == compare {
				binary.LittleEndian.PutUint64(b, uint64(swapv))
			}
			back := m.SendDataAsync(targetWorld, r.ID(), 0, fabric.XferOpt{NoNIC: true})
			eng.At(back, func() {
				done = true
				eng.Unpark(p)
			})
		})
	})
	for !done {
		p.Park("mpi.CompareAndSwap")
	}
	if ep.completeAt < p.Now() {
		ep.completeAt = p.Now()
	}
	o := r.W.Obs
	o.Inc(r.ID(), obs.COpsAmo)
	if o.Tracing() {
		o.Span(r.ID(), "rma", "compare_and_swap", t0, p.Now(), obs.A("target", targetWorld))
	}
	return old, ws.err
}
