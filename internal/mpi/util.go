package mpi

import (
	"encoding/binary"
	"math"
)

// Byte-level codecs for the typed collectives. The simulation charges
// time by byte count, so the encoding itself is just a convenience for
// moving typed data through []byte messages.

func i64sToBytes(xs []int64) []byte {
	b := make([]byte, 8*len(xs))
	for i, x := range xs {
		binary.LittleEndian.PutUint64(b[8*i:], uint64(x))
	}
	return b
}

func bytesToI64s(b []byte) []int64 {
	xs := make([]int64, len(b)/8)
	for i := range xs {
		xs[i] = int64(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return xs
}

func f64sToBytes(xs []float64) []byte {
	b := make([]byte, 8*len(xs))
	for i, x := range xs {
		binary.LittleEndian.PutUint64(b[8*i:], math.Float64bits(x))
	}
	return b
}

func bytesToF64s(b []byte) []float64 {
	xs := make([]float64, len(b)/8)
	for i := range xs {
		xs[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return xs
}

// F64sToBytes encodes float64s little-endian (exported for layers that
// move typed data through byte buffers).
func F64sToBytes(xs []float64) []byte { return f64sToBytes(xs) }

// BytesToF64s decodes float64s little-endian.
func BytesToF64s(b []byte) []float64 { return bytesToF64s(b) }

// I64sToBytes encodes int64s little-endian.
func I64sToBytes(xs []int64) []byte { return i64sToBytes(xs) }

// BytesToI64s decodes int64s little-endian.
func BytesToI64s(b []byte) []int64 { return bytesToI64s(b) }

func reduceF64(op Op, dst, src []float64) {
	for i := range dst {
		switch op {
		case OpSum:
			dst[i] += src[i]
		case OpMin:
			if src[i] < dst[i] {
				dst[i] = src[i]
			}
		case OpMax:
			if src[i] > dst[i] {
				dst[i] = src[i]
			}
		case OpProd:
			dst[i] *= src[i]
		case OpReplace:
			dst[i] = src[i]
		default:
			panic("mpi: unsupported float64 reduction op " + op.String())
		}
	}
}

func reduceI64(op Op, dst, src []int64) {
	for i := range dst {
		switch op {
		case OpSum:
			dst[i] += src[i]
		case OpMin:
			if src[i] < dst[i] {
				dst[i] = src[i]
			}
		case OpMax:
			if src[i] > dst[i] {
				dst[i] = src[i]
			}
		case OpProd:
			dst[i] *= src[i]
		case OpBOR:
			dst[i] |= src[i]
		case OpReplace:
			dst[i] = src[i]
		default:
			panic("mpi: unsupported int64 reduction op " + op.String())
		}
	}
}
