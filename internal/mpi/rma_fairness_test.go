package mpi

import (
	"testing"

	"repro/internal/fabric"
	"repro/internal/sim"
)

// TestLockQueueFIFOExclusive checks that exclusive lock requests are
// granted in arrival order: contenders stagger their requests while the
// first holder keeps the lock, and the grant order must match the
// request order.
func TestLockQueueFIFOExclusive(t *testing.T) {
	var order []int
	withWin(t, 5, 64, func(r *Rank, win *Win, reg *fabric.Region) {
		// Target is rank 0; ranks 1..4 contend with staggered arrivals.
		win.Comm().Barrier()
		switch r.ID() {
		case 1:
			must(t, win.Lock(LockExclusive, 0))
			order = append(order, 1)
			r.P.Elapse(sim.FromSeconds(300e-6)) // hold while the others queue
			must(t, win.Unlock(0))
		case 2, 3, 4:
			r.P.Elapse(sim.FromSeconds(float64(r.ID()-1) * 30e-6))
			must(t, win.Lock(LockExclusive, 0))
			order = append(order, r.ID())
			r.P.Elapse(sim.FromSeconds(10e-6))
			must(t, win.Unlock(0))
		}
		win.Comm().Barrier()
	})
	want := []int{1, 2, 3, 4}
	if len(order) != len(want) {
		t.Fatalf("grant order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("grant order = %v, want %v (queue is not FIFO)", order, want)
		}
	}
}

// TestLockQueueNoSharedOvertake checks the anti-starvation rule: a
// shared request arriving while the lock is shared-held must NOT jump
// ahead of an exclusive request already queued. The late shared reader
// waits until the writer has had its turn.
func TestLockQueueNoSharedOvertake(t *testing.T) {
	var order []int
	withWin(t, 4, 64, func(r *Rank, win *Win, reg *fabric.Region) {
		win.Comm().Barrier()
		switch r.ID() {
		case 1: // first shared holder
			must(t, win.Lock(LockShared, 0))
			order = append(order, 1)
			r.P.Elapse(sim.FromSeconds(200e-6))
			must(t, win.Unlock(0))
		case 2: // exclusive writer, queued behind the shared holder
			r.P.Elapse(sim.FromSeconds(30e-6))
			must(t, win.Lock(LockExclusive, 0))
			order = append(order, 2)
			r.P.Elapse(sim.FromSeconds(50e-6))
			must(t, win.Unlock(0))
		case 3: // late shared reader: lock is shared-held on arrival, but
			// the queued writer must go first.
			r.P.Elapse(sim.FromSeconds(60e-6))
			must(t, win.Lock(LockShared, 0))
			order = append(order, 3)
			must(t, win.Unlock(0))
		}
		win.Comm().Barrier()
	})
	want := []int{1, 2, 3}
	if len(order) != len(want) {
		t.Fatalf("grant order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("grant order = %v, want %v (shared request overtook a queued exclusive)", order, want)
		}
	}
}
