package mpi

import (
	"fmt"
	"sort"
)

// Comm is one rank's view of a communicator: an ordered group of world
// ranks, this rank's position in it, and a context id that isolates
// its point-to-point traffic. Comm values are per-rank; ranks of the
// same communicator share only the context id.
type Comm struct {
	r     *Rank
	cid   int
	group []int // comm rank -> world rank
	rank  int   // this rank's comm rank

	collSeq int // per-rank collective sequence number for tag isolation
}

// Size returns the number of ranks in the communicator.
func (c *Comm) Size() int { return len(c.group) }

// Rank returns the calling rank's rank within the communicator.
func (c *Comm) Rank() int { return c.rank }

// WorldRank translates a communicator rank to a world rank.
func (c *Comm) WorldRank(r int) int { return c.group[r] }

// Group returns a copy of the communicator's world-rank group.
func (c *Comm) Group() []int { return append([]int(nil), c.group...) }

// GroupShared returns the communicator's world-rank group without
// copying. The slice is shared (for CommWorld, by every rank of the
// job) and must be treated as read-only; use it where a per-rank copy
// of an N-entry table would multiply to N² at scale.
func (c *Comm) GroupShared() []int { return c.group }

// ContextID returns the communicator's context id (diagnostics only).
func (c *Comm) ContextID() int { return c.cid }

// RankOfWorld translates a world rank to a rank in this communicator,
// or -1 when the process is not a member.
func (c *Comm) RankOfWorld(world int) int { return c.rankOfWorld(world) }

const selfCidBase = 1 << 28

// Self returns a single-member communicator containing only the
// calling rank (MPI_COMM_SELF). Its context id is derived from the
// world rank, so no allocation handshake is needed.
func (r *Rank) Self() *Comm {
	return &Comm{r: r, cid: selfCidBase + r.ID(), group: []int{r.ID()}, rank: 0}
}

// allocCids hands out n fresh context ids from the world counter. The
// cooperative scheduler makes the increment race-free; consistency
// across ranks is achieved by having one rank allocate and broadcast.
func (w *World) allocCids(n int) int {
	base := w.nextCid
	w.nextCid += n
	return base
}

// Dup returns a new communicator with the same group and a fresh
// context id. Collective over the communicator.
func (c *Comm) Dup() *Comm {
	return c.Split(0, c.rank)
}

// BigCommThreshold is the communicator size at which collective
// metadata exchanges (Split, window creation, allocation address
// tables) switch from symmetric allgather algorithms to
// gather-at-root: with every rank lock-stepped through the same
// collective, an allgather materializes an N-vector on all N ranks
// simultaneously (N² aggregate), which is what capped earlier sweeps
// at a few hundred ranks. The threshold sits above every guarded
// figure configuration, so existing artifacts stay byte-identical.
const BigCommThreshold = 4096

// Split partitions the communicator by color; ranks passing the same
// color form a new communicator ordered by (key, rank). A negative
// color (MPI_UNDEFINED) yields a nil communicator for that rank.
// Collective over the communicator.
func (c *Comm) Split(color, key int) *Comm {
	if c.Size() >= BigCommThreshold {
		return c.splitBig(color, key)
	}
	type ck struct{ color, key, rank int }
	// Exchange (color,key) with everyone.
	mine := []int64{int64(color), int64(key)}
	all := c.allgatherI64(mine)
	pairs := make([]ck, c.Size())
	for i := 0; i < c.Size(); i++ {
		pairs[i] = ck{color: int(all[2*i]), key: int(all[2*i+1]), rank: i}
	}
	// Identify the distinct non-negative colors in ascending order.
	colorSet := map[int]bool{}
	for _, p := range pairs {
		if p.color >= 0 {
			colorSet[p.color] = true
		}
	}
	colors := make([]int, 0, len(colorSet))
	for col := range colorSet {
		colors = append(colors, col)
	}
	sort.Ints(colors)
	// Rank 0 allocates one context id per color and broadcasts the base.
	var base int
	if c.rank == 0 {
		base = c.r.W.allocCids(len(colors))
	}
	base = int(c.bcastI64(0, []int64{int64(base)})[0])
	if color < 0 {
		return nil
	}
	// Build my color's group ordered by (key, rank).
	var members []ck
	for _, p := range pairs {
		if p.color == color {
			members = append(members, p)
		}
	}
	sort.Slice(members, func(i, j int) bool {
		if members[i].key != members[j].key {
			return members[i].key < members[j].key
		}
		return members[i].rank < members[j].rank
	})
	group := make([]int, len(members))
	myRank := -1
	for i, m := range members {
		group[i] = c.group[m.rank]
		if m.rank == c.rank {
			myRank = i
		}
	}
	colorIdx := sort.SearchInts(colors, color)
	return &Comm{r: c.r, cid: base + colorIdx, group: group, rank: myRank}
}

// splitBig is Split for communicators at or above BigCommThreshold:
// rank 0 gathers every (color, key) pair, computes the partition once,
// and scatters each member its (cid, rank, group) — so the full
// N-entry pair table exists on one rank instead of all N. The common
// identity partition (every rank, parent order — what Dup produces) is
// detected and answered with a broadcast alone, sharing the parent's
// group slice.
func (c *Comm) splitBig(color, key int) *Comm {
	n := c.Size()
	type ck struct{ color, key, rank int }
	parts := c.Gather(0, i64sToBytes([]int64{int64(color), int64(key)}))
	var pairs []ck
	var colors []int
	hdr := make([]int64, 2)
	if c.rank == 0 {
		pairs = make([]ck, n)
		colorSet := map[int]bool{}
		for i, p := range parts {
			v := bytesToI64s(p)
			pairs[i] = ck{color: int(v[0]), key: int(v[1]), rank: i}
			if pairs[i].color >= 0 {
				colorSet[pairs[i].color] = true
			}
		}
		colors = make([]int, 0, len(colorSet))
		for col := range colorSet {
			colors = append(colors, col)
		}
		sort.Ints(colors)
		base := c.r.W.allocCids(len(colors))
		identity := int64(0)
		if len(colors) == 1 && pairs[0].color >= 0 {
			identity = 1
			for i := range pairs {
				if pairs[i].color != pairs[0].color || (i > 0 && pairs[i].key < pairs[i-1].key) {
					identity = 0
					break
				}
			}
		}
		hdr[0], hdr[1] = int64(base), identity
	}
	hdr = c.bcastI64(0, hdr)
	base, identity := int(hdr[0]), hdr[1] == 1
	if identity {
		return &Comm{r: c.r, cid: base, group: c.group, rank: c.rank}
	}
	c.collSeq++
	tag := c.collTag(0)
	if c.rank != 0 {
		data, _ := c.Recv(0, tag)
		v := bytesToI64s(data)
		if v[0] < 0 {
			return nil
		}
		return &Comm{r: c.r, cid: int(v[0]), group: i64sToInts(v[2:]), rank: int(v[1])}
	}
	// Root: build each color's group ordered by (key, rank) and send
	// every member its view.
	byColor := map[int][]ck{}
	for _, p := range pairs {
		if p.color >= 0 {
			byColor[p.color] = append(byColor[p.color], p)
		}
	}
	var mine *Comm
	if color < 0 {
		mine = nil
	}
	for idx, col := range colors {
		members := byColor[col]
		sort.Slice(members, func(i, j int) bool {
			if members[i].key != members[j].key {
				return members[i].key < members[j].key
			}
			return members[i].rank < members[j].rank
		})
		group := make([]int, len(members))
		for i, m := range members {
			group[i] = c.group[m.rank]
		}
		for i, m := range members {
			if m.rank == 0 {
				mine = &Comm{r: c.r, cid: base + idx, group: group, rank: i}
				continue
			}
			msg := make([]int64, 2+len(group))
			msg[0], msg[1] = int64(base+idx), int64(i)
			for j, g := range group {
				msg[2+j] = int64(g)
			}
			c.Send(m.rank, tag, i64sToBytes(msg))
		}
	}
	for _, p := range pairs {
		if p.color < 0 && p.rank != 0 {
			c.Send(p.rank, tag, i64sToBytes([]int64{-1}))
		}
	}
	return mine
}

// Intercomm is one rank's view of an intercommunicator: a local
// intracommunicator plus the remote side's world-rank group.
type Intercomm struct {
	local  *Comm
	remote []int // remote group as world ranks
	cid    int   // context id agreed between the two sides
	low    bool  // whether the local group orders first in a merge
}

// IntercommCreate builds an intercommunicator between the group of
// local (an intracommunicator of the caller) and the group of the
// remote leader, using peer (a communicator containing both leaders)
// for the leader handshake. localLeader is a rank in local;
// remoteLeader is a rank in peer. Collective over local on both sides.
func IntercommCreate(local *Comm, localLeader int, peer *Comm, remoteLeader, tag int) *Intercomm {
	if local == nil {
		panic("mpi: IntercommCreate with nil local comm")
	}
	var remoteGroup []int
	var remoteCid int
	if local.rank == localLeader {
		// Leaders exchange groups and agree on a context id: the leader
		// with the smaller world rank allocates.
		myWorld := peer.group[peer.rank]
		otherWorld := peer.group[remoteLeader]
		var cid int
		if myWorld < otherWorld {
			cid = local.r.W.allocCids(1)
			peer.Send(remoteLeader, tag, i64sToBytes([]int64{int64(cid)}))
		} else {
			data, _ := peer.Recv(remoteLeader, tag)
			cid = int(bytesToI64s(data)[0])
		}
		peer.Send(remoteLeader, tag+1, i64sToBytes(intsToI64s(local.group)))
		data, _ := peer.Recv(remoteLeader, tag+1)
		remoteGroup = i64sToInts(bytesToI64s(data))
		remoteCid = cid
	}
	// Broadcast (cid, remote group) within the local comm.
	var hdr []int64
	if local.rank == localLeader {
		hdr = []int64{int64(remoteCid), int64(len(remoteGroup))}
	} else {
		hdr = make([]int64, 2)
	}
	hdr = local.bcastI64(localLeader, hdr)
	remoteCid = int(hdr[0])
	n := int(hdr[1])
	var rg []int64
	if local.rank == localLeader {
		rg = intsToI64s(remoteGroup)
	} else {
		rg = make([]int64, n)
	}
	rg = local.bcastI64(localLeader, rg)
	remoteGroup = i64sToInts(rg)
	// The side whose leader has the smaller world rank is "low".
	low := local.group[0] < remoteGroup[0] ||
		(local.group[0] == remoteGroup[0] && len(local.group) < len(remoteGroup))
	return &Intercomm{local: local, remote: remoteGroup, cid: remoteCid, low: low}
}

// Merge combines the two sides of an intercommunicator into one
// intracommunicator (MPI_Intercomm_merge). The low group orders first.
// Collective over both sides; the context id of the merged
// communicator is derived from the intercomm's agreed id.
func (ic *Intercomm) Merge() *Comm {
	var group []int
	if ic.low {
		group = append(append([]int(nil), ic.local.group...), ic.remote...)
	} else {
		group = append(append([]int(nil), ic.remote...), ic.local.group...)
	}
	myWorld := ic.local.group[ic.local.rank]
	myRank := -1
	for i, g := range group {
		if g == myWorld {
			myRank = i
		}
	}
	// Reuse the agreed intercomm cid, offset to a distinct space so the
	// merged comm does not collide with intercomm leader traffic.
	return &Comm{r: ic.local.r, cid: ic.cid + (1 << 27), group: group, rank: myRank}
}

// CommCreateGroup builds a communicator over an arbitrary subset of
// parent's ranks without participation of non-members — the recursive
// intercommunicator create-and-merge algorithm of Dinan et al.
// (EuroMPI'11) that the paper uses for ARMCI's noncollective group
// creation (SectionV.A). members lists parent ranks in the desired
// order; duplicates are invalid. Only members may call; the result's
// rank order follows members sorted ascending.
func CommCreateGroup(parent *Comm, members []int, tag int) *Comm {
	ms := append([]int(nil), members...)
	sort.Ints(ms)
	for i := 1; i < len(ms); i++ {
		if ms[i] == ms[i-1] {
			panic(fmt.Sprintf("mpi: CommCreateGroup with duplicate member %d", ms[i]))
		}
	}
	me := sort.SearchInts(ms, parent.rank)
	if me >= len(ms) || ms[me] != parent.rank {
		panic("mpi: CommCreateGroup called by non-member")
	}
	comm := parent.r.Self()
	// Merge subgroups pairwise: after round k, each surviving comm
	// spans a contiguous run of 2^(k+1) members (the tail run may be
	// shorter or skip a round when no partner exists).
	for size := 1; size < len(ms); size *= 2 {
		base := (me / (2 * size)) * (2 * size)
		left, right := base, base+size
		if right >= len(ms) {
			continue // lone subgroup this round; passes through
		}
		iAmLeft := me < right
		var remoteLeaderParent int
		var localLeader = 0
		if iAmLeft {
			remoteLeaderParent = ms[right]
		} else {
			remoteLeaderParent = ms[left]
		}
		ic := IntercommCreate(comm, localLeader, parent, remoteLeaderParent, tag)
		comm = ic.Merge()
	}
	return comm
}

func intsToI64s(xs []int) []int64 {
	ys := make([]int64, len(xs))
	for i, x := range xs {
		ys[i] = int64(x)
	}
	return ys
}

func i64sToInts(xs []int64) []int {
	ys := make([]int, len(xs))
	for i, x := range xs {
		ys[i] = int(x)
	}
	return ys
}
