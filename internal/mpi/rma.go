package mpi

import (
	"fmt"

	"repro/internal/fabric"
	"repro/internal/obs"
	"repro/internal/obs/profile"
	"repro/internal/sim"
)

// LockType selects the passive-target access mode.
type LockType int

const (
	LockShared LockType = iota
	LockExclusive
)

func (lt LockType) String() string {
	if lt == LockExclusive {
		return "exclusive"
	}
	return "shared"
}

type opKind int

const (
	opGet opKind = iota
	opPut
	opAcc
)

func (k opKind) writes() bool { return k != opGet }

// rng is a byte range [Lo,Hi) touched at a target, with the access kind.
type rng struct {
	lo, hi int
	kind   opKind
	op     Op // for opAcc: same-op accumulates may overlap
}

func (a rng) overlaps(b rng) bool { return a.lo < b.hi && b.lo < a.hi }

func (a rng) conflicts(b rng) bool {
	if !a.overlaps(b) {
		return false
	}
	if !a.kind.writes() && !b.kind.writes() {
		return false // concurrent reads are fine
	}
	if a.kind == opAcc && b.kind == opAcc && a.op == b.op {
		return false // same-op accumulates may overlap (MPI-2 7.4.2)
	}
	return true
}

// activeEpoch is the target-side record of one origin's open epoch,
// used for cross-origin conflict detection under shared locks.
type activeEpoch struct {
	originWorld int
	ltype       LockType
	ranges      []rng
}

type lockWaiter struct {
	originWorld int
	ltype       LockType
	// grant hands the lock over at time at; by is the world rank whose
	// release made the grant possible (-1 for an uncontended direct
	// grant), feeding the critical-path wait-chain attribution.
	grant func(at sim.Time, by int)
}

// targetLock arbitrates passive-target access to one window rank.
type targetLock struct {
	holders []*activeEpoch // currently granted epochs
	queue   []lockWaiter   // FIFO waiters
	// accBusy serializes target-side accumulate processing, modeling
	// the agent/NIC that applies reductions.
	accBusy sim.Time
}

func (t *targetLock) heldExclusive() bool {
	return len(t.holders) == 1 && t.holders[0].ltype == LockExclusive
}

func (t *targetLock) grantable(lt LockType) bool {
	if len(t.holders) == 0 {
		return len(t.queue) == 0
	}
	if t.heldExclusive() || lt == LockExclusive {
		return false
	}
	// Shared request with shared holders: grant only if no exclusive
	// request is queued ahead (prevents writer starvation).
	return len(t.queue) == 0
}

func (t *targetLock) find(originWorld int) *activeEpoch {
	for _, h := range t.holders {
		if h.originWorld == originWorld {
			return h
		}
	}
	return nil
}

// winState is the shared (cross-rank) state of one window.
type winState struct {
	id      int
	w       *World
	group   []int // window rank -> world rank
	regions []*fabric.Region
	sizes   []int
	locks   []*targetLock
	err     error // first asynchronous semantic violation
	freed   bool

	// Win_allocate_shared flavor: same-node ranks map each other's
	// regions directly and RMA to them degenerates to memcpys.
	shared bool
	segs   map[int]*fabric.ShmSegment // node -> segment
}

func (ws *winState) setErr(err error) {
	if ws.err == nil {
		ws.err = err
	}
}

// lockAt returns target's arbitration state, materializing it on first
// use — most targets of a large window are never locked by anyone.
func (ws *winState) lockAt(target int) *targetLock {
	if ws.locks[target] == nil {
		ws.locks[target] = &targetLock{}
	}
	return ws.locks[target]
}

// Win is one rank's handle on a window.
type Win struct {
	state *winState
	comm  *Comm
	rank  int // window rank

	cur *epoch         // at most one open epoch per window per origin (MPI-2)
	all map[int]*epoch // lock-all mode accounting (MPI-3); nil when inactive

	// Active-target (fence) mode state.
	fenced   bool
	fenceEps map[int]*epoch
}

// epoch is the origin-side record of an open access epoch.
type epoch struct {
	target     int // window rank
	ltype      LockType
	nops       int
	openedAt   sim.Time // grant time, for epoch trace spans
	completeAt sim.Time
	ranges     []rng // target ranges touched, for same-epoch checking
	active     *activeEpoch
	relaxed    bool // MPI-3 lock-all: conflicts are undefined, not errors
}

// LocalBuf names an origin-side buffer for RMA: a region, a byte
// offset into it, and a datatype describing the layout from there.
type LocalBuf struct {
	Region *fabric.Region
	Off    int
	Type   Datatype
}

// WinCreate collectively creates a window over comm; each rank exposes
// region (which may be nil or zero-length for no local exposure). The
// window's memory is registered with the interconnect at creation, as
// MPI_Win_create does.
func WinCreate(comm *Comm, region *fabric.Region) (*Win, error) {
	return winCreate(comm, region, false)
}

// WinCreateShared creates a window with MPI_Win_allocate_shared
// semantics: ranks sharing a node attach their regions to a per-node
// shared segment, so RMA between them degenerates to direct load/store
// (see SharedQuery), while cross-node access keeps the ordinary RMA
// path. Creation cost is identical to WinCreate — the memory is still
// exposed (and registered) for remote ranks.
func WinCreateShared(comm *Comm, region *fabric.Region) (*Win, error) {
	return winCreate(comm, region, true)
}

func winCreate(comm *Comm, region *fabric.Region, shared bool) (*Win, error) {
	r := comm.r
	w := r.W
	var sz int64
	if region != nil {
		sz = int64(region.Len)
	}
	var id int
	if comm.Size() >= BigCommThreshold {
		// Large windows: gather the sizes at rank 0 instead of
		// allgathering — the N-entry size table exists once, on the rank
		// that builds the shared window state, not on all N lock-stepped
		// ranks at once. Rank 0 must build the state before broadcasting
		// the id, since peers look it up as soon as the id arrives.
		parts := comm.Gather(0, i64sToBytes([]int64{sz}))
		if comm.rank == 0 {
			id = w.nextWin
			w.nextWin++
			ws := newWinState(id, w, comm, shared)
			for i, p := range parts {
				ws.sizes[i] = int(bytesToI64s(p)[0])
			}
			w.wins[id] = ws
		}
		id = int(comm.bcastI64(0, []int64{int64(id)})[0])
	} else {
		// Rank 0 allocates the window id; bcast carries real cost.
		if comm.rank == 0 {
			id = w.nextWin
			w.nextWin++
		}
		id = int(comm.bcastI64(0, []int64{int64(id)})[0])
		// Exchange sizes (the allgather is part of MPI_Win_create's cost).
		sizes := comm.allgatherI64([]int64{sz})
		if _, ok := w.wins[id]; !ok {
			ws := newWinState(id, w, comm, shared)
			for i := range ws.sizes {
				ws.sizes[i] = int(sizes[i])
			}
			w.wins[id] = ws
		}
	}
	ws := w.wins[id]
	ws.regions[comm.rank] = region
	if ws.shared && region != nil && region.Len > 0 {
		node := w.M.NodeOf(r.ID())
		seg := ws.segs[node]
		if seg == nil {
			seg = w.M.NewShmSegment(node)
			ws.segs[node] = seg
		}
		if err := seg.Attach(r.ID(), region); err != nil {
			return nil, err
		}
	}
	// Register the exposed memory with the device (charged here).
	if region != nil && region.Len > 0 {
		r.P.Elapse(w.M.PinCost(region, fabric.DomainMPI))
	}
	comm.Barrier()
	return &Win{state: ws, comm: comm, rank: comm.rank}, nil
}

// newWinState builds the shared window state skeleton. The group slice
// is shared with the creating communicator (window groups are
// immutable); target locks materialize lazily via lockAt.
func newWinState(id int, w *World, comm *Comm, shared bool) *winState {
	ws := &winState{
		id:      id,
		w:       w,
		group:   comm.group,
		regions: make([]*fabric.Region, comm.Size()),
		sizes:   make([]int, comm.Size()),
		locks:   make([]*targetLock, comm.Size()),
		shared:  shared,
	}
	if shared {
		ws.segs = map[int]*fabric.ShmSegment{}
	}
	return ws
}

// Shared reports whether the window was created with
// Win_allocate_shared semantics.
func (w *Win) Shared() bool { return w.state.shared }

// SharedQuery returns the directly-addressable region of a same-node
// target in a shared window (MPI_Win_shared_query). The second result
// is false for cross-node targets, non-shared windows, or targets
// exposing no memory.
func (w *Win) SharedQuery(target int) (*fabric.Region, bool) {
	ws := w.state
	if !ws.shared || target < 0 || target >= len(ws.group) {
		return nil, false
	}
	tw := ws.group[target]
	me := w.comm.r.ID()
	if !ws.w.M.SameNode(me, tw) {
		return nil, false
	}
	seg := ws.segs[ws.w.M.NodeOf(me)]
	if seg == nil {
		return nil, false
	}
	reg := seg.RegionOf(tw)
	if reg == nil {
		return nil, false
	}
	return reg, true
}

// shmFast reports whether ops on target can take the intra-node
// shared-memory path.
func (w *Win) shmFast(target int) bool {
	_, ok := w.SharedQuery(target)
	return ok
}

// shmLatency is the cost of one shared-segment synchronization step
// (lock-word CAS, release store): a node-local memory round trip.
func (w *Win) shmLatency() sim.Time {
	return sim.FromSeconds(w.state.w.M.Par.LocalLatencyNs / 1e9)
}

// Free collectively destroys the window. All epochs must be closed.
func (w *Win) Free() error {
	if w.cur != nil {
		return fmt.Errorf("mpi: Win.Free with open epoch on target %d", w.cur.target)
	}
	w.comm.Barrier()
	if w.rank == 0 {
		w.state.freed = true
	}
	err := w.state.err
	return err
}

// Size returns the exposed byte count of the given window rank.
func (w *Win) Size(rank int) int { return w.state.sizes[rank] }

// LocalRegion returns the memory this rank exposes in the window.
func (w *Win) LocalRegion() *fabric.Region { return w.state.regions[w.rank] }

// Comm returns the communicator the window was created over.
func (w *Win) Comm() *Comm { return w.comm }

// control returns the arrival time of a minimal control message from
// the calling rank to a world rank, charging per-message overhead.
// When the MPI library runs without asynchronous progress, the target
// only services the request once it re-enters the library; the average
// wait is modeled by the tuning's NoProgressDelayNs (SectionV.F).
func (r *Rank) control(toWorld int) sim.Time {
	m := r.W.M
	at := m.SendDataAsync(r.ID(), toWorld, 0, fabric.XferOpt{NoNIC: true})
	return at + r.progressDelay()
}

// progressDelay is the target-side service delay without async progress.
func (r *Rank) progressDelay() sim.Time {
	return sim.FromSeconds(r.W.Tun.NoProgressDelayNs / 1e9)
}

// Lock opens a passive-target access epoch on target (a window rank).
// MPI-2 permits at most one epoch per window per origin; violating
// that returns an error (the restriction ARMCI-MPI's global-buffer
// staging exists to respect).
func (w *Win) Lock(lt LockType, target int) error {
	if w.cur != nil {
		return fmt.Errorf("mpi: Win.Lock(%v,%d): window already locked (target %d); MPI-2 forbids multiple epochs per window",
			lt, target, w.cur.target)
	}
	if w.all != nil {
		return fmt.Errorf("mpi: Win.Lock(%v,%d) while in lock-all mode is erroneous", lt, target)
	}
	if w.fenced {
		return fmt.Errorf("mpi: Win.Lock(%v,%d) inside an active fence epoch is erroneous", lt, target)
	}
	if target < 0 || target >= len(w.state.group) {
		return fmt.Errorf("mpi: Win.Lock: bad target %d", target)
	}
	r := w.comm.r
	reqAt := r.P.Now()
	r.opOverhead()
	ws := w.state
	tl := ws.lockAt(target)
	targetWorld := ws.group[target]
	eng := r.W.M.Eng
	p := r.P

	shm := w.shmFast(target)
	notify := r.W.M.RoundTripTime(targetWorld, r.ID()) / 2
	if shm {
		// The lock word lives in the shared segment: acquiring it is a
		// node-local CAS, with no control message and no target-side
		// progress needed. Arbitration (shared/exclusive, FIFO queue) is
		// unchanged.
		notify = w.shmLatency()
	}
	ep := &epoch{target: target, ltype: lt}
	w.cur = ep
	granted := false
	grant := func(at sim.Time, by int) {
		ae := &activeEpoch{originWorld: r.ID(), ltype: lt}
		ep.active = ae
		tl.holders = append(tl.holders, ae)
		// Grant notification travels back to the origin.
		eng.At(at+notify, func() {
			granted = true
			if by >= 0 {
				// A queued grant: name the releasing rank as the edge
				// that ends the origin's lock wait.
				if c := r.W.Obs.Crit(); c != nil {
					c.WakeGrant(p.ID(), by, at)
				}
			}
			eng.Unpark(p)
		})
	}
	arrive := p.Now()
	if !shm {
		arrive = r.control(targetWorld)
	}
	eng.At(arrive, func() {
		if tl.grantable(lt) {
			grant(eng.Now(), -1)
		} else {
			tl.queue = append(tl.queue, lockWaiter{originWorld: r.ID(), ltype: lt, grant: grant})
		}
	})
	for !granted {
		p.Park("mpi.WinLock")
	}
	ep.openedAt = p.Now()
	ep.completeAt = p.Now()
	r.W.Epochs++
	if lt == LockShared {
		r.W.SharedEpochs++
	} else {
		r.W.ExclEpochs++
	}
	o := r.W.Obs
	wait := p.Now() - reqAt
	if lt == LockShared {
		o.AddTime(r.ID(), obs.TLockWaitShared, wait)
	} else {
		o.AddTime(r.ID(), obs.TLockWaitExcl, wait)
	}
	o.Observe(r.ID(), obs.HLockWait, wait)
	o.Inc(r.ID(), obs.CEpochs)
	if pr := o.Prof(); pr != nil {
		pr.PhaseAt(r.ID(), profile.PhaseLockWait, reqAt, p.Now())
	}
	if o.Tracing() {
		o.Span(r.ID(), "mpi", "lock("+lt.String()+")", reqAt, p.Now(), obs.A("target", targetWorld))
	}
	return nil
}

// release drops the epoch's hold at the target and hands the lock to
// eligible waiters. Runs in event context at the target; by is the
// world rank performing the release (the grant chain's blocking rank).
func (ws *winState) release(tl *targetLock, ae *activeEpoch, now sim.Time, by int) {
	for i, h := range tl.holders {
		if h == ae {
			tl.holders = append(tl.holders[:i], tl.holders[i+1:]...)
			break
		}
	}
	// Grant queued waiters: an exclusive waiter needs an empty holder
	// set; shared waiters can be granted together until an exclusive
	// waiter is reached.
	for len(tl.queue) > 0 {
		next := tl.queue[0]
		if next.ltype == LockExclusive {
			if len(tl.holders) != 0 {
				return
			}
			tl.queue = tl.queue[1:]
			next.grant(now, by)
			return
		}
		if tl.heldExclusive() {
			return
		}
		tl.queue = tl.queue[1:]
		next.grant(now, by)
	}
}

// Unlock closes the epoch on target, blocking until every operation
// issued in the epoch has completed at the target (MPI_Win_unlock
// guarantees both local and remote completion).
func (w *Win) Unlock(target int) error {
	ep := w.cur
	if ep == nil || ep.target != target {
		return fmt.Errorf("mpi: Win.Unlock(%d): no epoch open on that target", target)
	}
	r := w.comm.r
	r.opOverhead()
	ws := w.state
	tl := ws.lockAt(target)
	targetWorld := ws.group[target]
	eng := r.W.M.Eng
	p := r.P
	tU := p.Now()

	// Wait for the slowest operation of the epoch to complete remotely.
	// completeAt can advance while we sleep (get return paths are timed
	// when their request reaches the target), so re-check until stable.
	for {
		horizon := ep.completeAt
		r.W.M.SleepUntil(p, horizon)
		if ep.completeAt <= horizon {
			break
		}
	}
	// Unlock handshake: release at the target, ack back to the origin.
	// On the shared-memory path the release is a node-local store on the
	// lock word — no control message, no target-side progress.
	done := false
	if w.shmFast(target) {
		eng.At(p.Now()+w.shmLatency(), func() {
			ws.release(tl, ep.active, eng.Now(), r.ID())
			done = true
			eng.Unpark(p)
		})
	} else {
		arrive := r.control(targetWorld)
		eng.At(arrive, func() {
			ws.release(tl, ep.active, eng.Now(), r.ID())
			eng.At(eng.Now()+r.W.M.RoundTripTime(targetWorld, r.ID())/2, func() {
				done = true
				eng.Unpark(p)
			})
		})
	}
	for !done {
		p.Park("mpi.WinUnlock")
	}
	if pr := r.W.Obs.Prof(); pr != nil {
		pr.PhaseAt(r.ID(), profile.PhaseEpochWait, tU, p.Now())
	}
	if o := r.W.Obs; o.Tracing() {
		o.Span(r.ID(), "epoch", "epoch("+ep.ltype.String()+")", ep.openedAt, p.Now(),
			obs.A("target", targetWorld), obs.A("ops", ep.nops))
	}
	w.cur = nil
	return ws.err
}

// effRateFor returns the MPI transfer rate on this machine for a
// message of n bytes, honouring a poorly tuned large-transfer path.
func (r *Rank) effRateFor(n int) float64 {
	frac := r.W.Tun.BandwidthFrac
	if r.W.Tun.LargeFrac > 0 && n >= r.W.Tun.LargeAt {
		frac = r.W.Tun.LargeFrac
	}
	return r.W.M.Par.Bandwidth * frac
}

// chargeRMAOverheads charges per-op software overhead, including the
// long-epoch queue slowdown defect, and bumps counters.
func (w *Win) chargeRMAOverheads(ep *epoch) {
	r := w.comm.r
	tun := r.W.Tun
	over := tun.OpOverheadNs
	if tun.QueueSlowdownNs > 0 && ep.nops > tun.QueueThreshold {
		over += tun.QueueSlowdownNs * float64(ep.nops-tun.QueueThreshold)
	}
	if tun.ScalePenaltyNs > 0 {
		over += tun.ScalePenaltyNs * log2f(len(w.state.group))
	}
	r.P.Elapse(sim.FromSeconds(over / 1e9))
	r.W.RMAOps++
	ep.nops++
}

func log2f(n int) float64 {
	f := 0.0
	for n > 1 {
		f++
		n >>= 1
	}
	return f
}

// originXferRate decides the data rate for moving bytes between the
// origin buffer and the network, applying the registration model: an
// unregistered origin buffer either goes through bounce buffers (small
// transfers) or pays on-demand registration (large transfers).
func (w *Win) originXferRate(buf LocalBuf, nbytes int) float64 {
	r := w.comm.r
	m := r.W.M
	full := r.effRateFor(nbytes)
	if m.Par.PinPageNs <= 0 {
		return full
	}
	if buf.Region.PinnedFor(fabric.DomainMPI) {
		return full
	}
	if nbytes <= m.Par.BounceThreshold {
		if m.Par.BounceRate < full {
			return m.Par.BounceRate
		}
		return full
	}
	// On-demand registration: pay the pin cost now, then run at full rate.
	r.P.Elapse(m.PinCost(buf.Region, fabric.DomainMPI))
	return full
}

// checkEpochOp validates an op's target range against the same epoch's
// previous ops and records it; also records into the target-side
// active epoch for cross-origin checking (done at issue time — the
// simulation's cooperative scheduling makes issue order a valid
// serialization of the real concurrency).
func (w *Win) checkEpochOp(ep *epoch, target int, newRng rng) error {
	ws := w.state
	if !w.comm.r.W.Checked {
		return nil
	}
	if newRng.lo < 0 || newRng.hi > ws.sizes[target] {
		return fmt.Errorf("mpi: RMA access [%d,%d) outside window of size %d at rank %d",
			newRng.lo, newRng.hi, ws.sizes[target], target)
	}
	if ep.relaxed {
		return nil // MPI-3: conflicting outcomes are undefined, not erroneous
	}
	for _, old := range ep.ranges {
		if old.conflicts(newRng) {
			return fmt.Errorf("mpi: conflicting RMA operations in one epoch at target %d: [%d,%d) %v vs [%d,%d) %v",
				target, old.lo, old.hi, kindName(old.kind), newRng.lo, newRng.hi, kindName(newRng.kind))
		}
	}
	ep.ranges = append(ep.ranges, newRng)
	tl := ws.lockAt(target)
	for _, h := range tl.holders {
		if h == ep.active {
			continue
		}
		for _, old := range h.ranges {
			if old.conflicts(newRng) {
				return fmt.Errorf("mpi: conflicting RMA operations from origins %d and %d at target %d (shared-lock data race)",
					h.originWorld, w.comm.r.ID(), target)
			}
		}
	}
	if ep.active != nil {
		ep.active.ranges = append(ep.active.ranges, newRng)
	}
	return nil
}

func kindName(k opKind) string {
	switch k {
	case opGet:
		return "get"
	case opPut:
		return "put"
	default:
		return "accumulate"
	}
}

func (w *Win) opPrologue(buf LocalBuf, target, tdisp int, ttype Datatype, kind opKind, op Op) (*epoch, error) {
	ep := w.cur
	if ep == nil || ep.target != target {
		return nil, fmt.Errorf("mpi: RMA op on target %d without an open epoch", target)
	}
	if buf.Type.Size() != ttype.Size() {
		return nil, fmt.Errorf("mpi: RMA origin/target size mismatch: %d vs %d bytes",
			buf.Type.Size(), ttype.Size())
	}
	if err := w.checkEpochOp(ep, target, rng{lo: tdisp, hi: tdisp + ttype.Span(), kind: kind, op: op}); err != nil {
		return nil, err
	}
	w.chargeRMAOverheads(ep)
	return ep, nil
}

// pack serializes the origin datatype's bytes into a dense buffer,
// charging copy time for noncontiguous layouts.
func (w *Win) pack(buf LocalBuf) []byte {
	r := w.comm.r
	src := buf.Region.Bytes(buf.Region.VA+int64(buf.Off), buf.Type.Span())
	if buf.Type.Contig() {
		out := make([]byte, buf.Type.Size())
		copy(out, src[:buf.Type.Size()])
		return out
	}
	t0 := r.P.Now()
	r.W.M.CopyLocal(r.P, buf.Type.Size()) // pack cost
	o := r.W.Obs
	o.Add(r.ID(), obs.CPackBytes, int64(buf.Type.Size()))
	o.AddTime(r.ID(), obs.TPack, r.P.Now()-t0)
	if pr := o.Prof(); pr != nil {
		pr.PhaseAt(r.ID(), profile.PhasePack, t0, r.P.Now())
	}
	if o.Tracing() {
		o.Span(r.ID(), "dt", "pack", t0, r.P.Now(), obs.A("bytes", buf.Type.Size()))
	}
	return Pack(buf.Type, src)
}

// unpackInto scatters dense data into dst (a slice covering the
// datatype's extent) following the datatype layout, through the
// flatten-cache kernel.
func unpackInto(dst []byte, t Datatype, data []byte) {
	Unpack(t, dst, data)
}

// packFrom gathers the datatype's bytes out of src (covering its
// extent) into a dense buffer, through the flatten-cache kernel.
func packFrom(src []byte, t Datatype) []byte {
	return Pack(t, src)
}

// Put transfers the origin buffer into the target window at byte
// displacement tdisp with layout ttype. Nonblocking: completion is
// guaranteed by Unlock.
func (w *Win) Put(buf LocalBuf, target, tdisp int, ttype Datatype) error {
	t0 := w.comm.r.P.Now()
	ep, err := w.opPrologue(buf, target, tdisp, ttype, opPut, OpReplace)
	if err != nil {
		return err
	}
	if w.shmFast(target) {
		return w.shmPut(buf, target, tdisp, ttype, ep, t0)
	}
	r := w.comm.r
	m := r.W.M
	data := w.pack(buf) // snapshot origin bytes at issue time
	rate := w.originXferRate(buf, len(data))
	targetWorld := w.state.group[target]
	arrive := m.SendDataAsync(r.ID(), targetWorld, len(data), fabric.XferOpt{Rate: rate}) + r.progressDelay()
	origin := r.ID()
	pr := r.W.Obs.Prof()
	if pr != nil {
		base, xs, xa := m.LastXfer()
		pr.PhaseAt(origin, profile.PhaseWireQueue, base, xs)
		pr.PhaseAt(origin, profile.PhaseWire, xs, xa)
		pr.Send(origin, targetWorld, profile.MsgPut, profile.RouteRMA, len(data))
	}
	treg := w.state.regions[target]
	ws := w.state
	m.Eng.At(arrive, func() {
		if pr != nil {
			pr.Recv(origin, targetWorld, profile.MsgPut, profile.RouteRMA, len(data))
		}
		if !ttype.Contig() {
			// Target-side unpack cost is borne by the NIC/agent; modeled
			// as arriving-data processing latency folded into arrive via
			// CopyTime.
		}
		defer func() {
			if rec := recover(); rec != nil {
				ws.setErr(fmt.Errorf("mpi: Put apply failed: %v", rec))
			}
		}()
		dst := treg.Bytes(treg.VA+int64(tdisp), ttype.Span())
		unpackInto(dst, ttype, data)
	})
	done := arrive
	if !ttype.Contig() {
		done += m.CopyTime(len(data))
	}
	if done > ep.completeAt {
		ep.completeAt = done
	}
	o := r.W.Obs
	o.Inc(r.ID(), obs.COpsPut)
	o.Add(r.ID(), bytesMetric(buf.Type, ttype), int64(len(data)))
	if o.Tracing() {
		o.Span(r.ID(), "rma", "put", t0, done, obs.A("target", targetWorld), obs.A("bytes", len(data)))
	}
	return nil
}

// bytesMetric classifies an op's payload: contiguous on both sides, or
// moved through a datatype pack/unpack path on either side.
func bytesMetric(origin, target Datatype) string {
	if origin.Contig() && target.Contig() {
		return obs.CBytesContig
	}
	return obs.CBytesPacked
}

// shmPut is Put over the shared segment: one direct (possibly strided)
// copy by the origin CPU, complete on return. No NIC, no registration.
func (w *Win) shmPut(buf LocalBuf, target, tdisp int, ttype Datatype, ep *epoch, t0 sim.Time) error {
	r := w.comm.r
	m := r.W.M
	treg, _ := w.SharedQuery(target)
	src := buf.Region.Bytes(buf.Region.VA+int64(buf.Off), buf.Type.Span())
	data := packFrom(src, buf.Type)
	t0c := r.P.Now()
	m.ShmCopy(r.P, len(data))
	if pr := r.W.Obs.Prof(); pr != nil {
		pr.PhaseAt(r.ID(), profile.PhaseShmCopy, t0c, r.P.Now())
	}
	if err := w.shmApply(func() {
		dst := treg.Bytes(treg.VA+int64(tdisp), ttype.Span())
		unpackInto(dst, ttype, data)
	}, "Put"); err != nil {
		return err
	}
	if now := r.P.Now(); now > ep.completeAt {
		ep.completeAt = now
	}
	w.shmOpObs(obs.COpsPut, "put.shm", target, len(data), t0)
	return nil
}

// shmApply runs a direct store into the shared segment, converting
// panics (bad displacements with checking off) into window errors.
func (w *Win) shmApply(apply func(), op string) (err error) {
	defer func() {
		if rec := recover(); rec != nil {
			err = fmt.Errorf("mpi: %s apply failed: %v", op, rec)
			w.state.setErr(err)
		}
	}()
	apply()
	return nil
}

// shmOpObs records counters, the comm-matrix entry, and the trace span
// of one shm-path op.
func (w *Win) shmOpObs(opMetric, span string, target, nbytes int, t0 sim.Time) {
	r := w.comm.r
	o := r.W.Obs
	o.Inc(r.ID(), opMetric)
	o.Add(r.ID(), obs.CBytesShm, int64(nbytes))
	o.Inc(r.ID(), obs.CShmCopies)
	if pr := o.Prof(); pr != nil {
		class := profile.MsgAcc
		switch opMetric {
		case obs.COpsPut:
			class = profile.MsgPut
		case obs.COpsGet:
			class = profile.MsgGet
		}
		src, dst := r.ID(), w.state.group[target]
		if class == profile.MsgGet {
			src, dst = dst, src
		}
		// The shm path completes synchronously at the origin CPU, so the
		// send and receive sides of the matrix are recorded together.
		pr.Send(src, dst, class, profile.RouteShm, nbytes)
		pr.Recv(src, dst, class, profile.RouteShm, nbytes)
	}
	if o.Tracing() {
		o.Span(r.ID(), "rma", span, t0, r.P.Now(),
			obs.A("target", w.state.group[target]), obs.A("bytes", nbytes))
	}
}

// Get transfers from the target window into the origin buffer.
// Nonblocking: the origin buffer holds the data only after Unlock.
func (w *Win) Get(buf LocalBuf, target, tdisp int, ttype Datatype) error {
	t0 := w.comm.r.P.Now()
	ep, err := w.opPrologue(buf, target, tdisp, ttype, opGet, OpNoOp)
	if err != nil {
		return err
	}
	if w.shmFast(target) {
		return w.shmGet(buf, target, tdisp, ttype, ep, t0)
	}
	r := w.comm.r
	m := r.W.M
	nbytes := ttype.Size()
	rate := w.originXferRate(buf, nbytes)
	targetWorld := w.state.group[target]
	treg := w.state.regions[target]
	ws := w.state
	// Request travels to the target; at arrival the data is read and
	// streamed back, landing in the origin buffer. The true return time
	// depends on NIC occupancy at request arrival, so the epoch's
	// completion horizon is updated from inside the event; Unlock
	// re-checks completeAt after sleeping so it never closes the epoch
	// before the data has landed.
	origin := r.ID()
	pr := r.W.Obs.Prof()
	reqArrive := r.control(targetWorld)
	m.Eng.At(reqArrive, func() {
		src := treg.Bytes(treg.VA+int64(tdisp), ttype.Span())
		data := packFrom(src, ttype)
		back := m.SendDataAsync(targetWorld, origin, len(data), fabric.XferOpt{Rate: rate})
		if pr != nil {
			base, xs, xa := m.LastXfer()
			pr.PhaseAt(origin, profile.PhaseWireQueue, base, xs)
			pr.PhaseAt(origin, profile.PhaseWire, xs, xa)
			pr.Send(targetWorld, origin, profile.MsgGet, profile.RouteRMA, len(data))
		}
		back0 := back
		if !ttype.Contig() || !buf.Type.Contig() {
			back += m.CopyTime(nbytes)
		}
		if pr != nil && back > back0 {
			pr.PhaseAt(origin, profile.PhasePack, back0, back)
		}
		if back > ep.completeAt {
			ep.completeAt = back
		}
		// The true return time is known only here (it depends on NIC
		// occupancy at the target), so the span is recorded from inside
		// the event.
		if o := r.W.Obs; o.Tracing() {
			o.Span(origin, "rma", "get", t0, back, obs.A("target", targetWorld), obs.A("bytes", nbytes))
		}
		m.Eng.At(back, func() {
			if pr != nil {
				pr.Recv(targetWorld, origin, profile.MsgGet, profile.RouteRMA, len(data))
			}
			defer func() {
				if rec := recover(); rec != nil {
					ws.setErr(fmt.Errorf("mpi: Get apply failed: %v", rec))
				}
			}()
			dst := buf.Region.Bytes(buf.Region.VA+int64(buf.Off), buf.Type.Span())
			unpackInto(dst, buf.Type, data)
		})
	})
	// Lower bound available at issue time; refined inside the event.
	done := reqArrive + sim.FromSeconds(float64(nbytes)/rate) +
		sim.FromSeconds(m.Par.LatencyNs/1e9)
	if done > ep.completeAt {
		ep.completeAt = done
	}
	o := r.W.Obs
	o.Inc(r.ID(), obs.COpsGet)
	o.Add(r.ID(), bytesMetric(buf.Type, ttype), int64(nbytes))
	return nil
}

// shmGet is Get over the shared segment: a direct read by the origin
// CPU. Unlike the RMA path, the data is in the origin buffer on return.
func (w *Win) shmGet(buf LocalBuf, target, tdisp int, ttype Datatype, ep *epoch, t0 sim.Time) error {
	r := w.comm.r
	m := r.W.M
	treg, _ := w.SharedQuery(target)
	var data []byte
	if err := w.shmApply(func() {
		src := treg.Bytes(treg.VA+int64(tdisp), ttype.Span())
		data = packFrom(src, ttype)
	}, "Get"); err != nil {
		return err
	}
	t0c := r.P.Now()
	m.ShmCopy(r.P, len(data))
	if pr := r.W.Obs.Prof(); pr != nil {
		pr.PhaseAt(r.ID(), profile.PhaseShmCopy, t0c, r.P.Now())
	}
	if err := w.shmApply(func() {
		dst := buf.Region.Bytes(buf.Region.VA+int64(buf.Off), buf.Type.Span())
		unpackInto(dst, buf.Type, data)
	}, "Get"); err != nil {
		return err
	}
	if now := r.P.Now(); now > ep.completeAt {
		ep.completeAt = now
	}
	w.shmOpObs(obs.COpsGet, "get.shm", target, len(data), t0)
	return nil
}

// Accumulate applies the origin buffer into the target window with the
// reduction op (element type float64 for arithmetic ops; OpReplace
// behaves like Put with element granularity). Nonblocking.
func (w *Win) Accumulate(buf LocalBuf, op Op, target, tdisp int, ttype Datatype) error {
	t0 := w.comm.r.P.Now()
	ep, err := w.opPrologue(buf, target, tdisp, ttype, opAcc, op)
	if err != nil {
		return err
	}
	if w.shmFast(target) {
		return w.shmAccumulate(buf, op, target, tdisp, ttype, ep, t0)
	}
	r := w.comm.r
	m := r.W.M
	data := w.pack(buf)
	rate := w.originXferRate(buf, len(data))
	targetWorld := w.state.group[target]
	treg := w.state.regions[target]
	ws := w.state
	tl := w.state.lockAt(target)
	arrive := m.SendDataAsync(r.ID(), targetWorld, len(data), fabric.XferOpt{Rate: rate}) + r.progressDelay()
	origin := r.ID()
	pr := r.W.Obs.Prof()
	if pr != nil {
		base, xs, xa := m.LastXfer()
		pr.PhaseAt(origin, profile.PhaseWireQueue, base, xs)
		pr.PhaseAt(origin, profile.PhaseWire, xs, xa)
		pr.Send(origin, targetWorld, profile.MsgAcc, profile.RouteRMA, len(data))
	}
	// The target agent applies the reduction at the accumulate rate,
	// serialized per target.
	accRate := m.Par.AccumRate
	if r.W.Tun.AccumRate > 0 {
		accRate = r.W.Tun.AccumRate
	}
	start := arrive
	if tl.accBusy > start {
		start = tl.accBusy
	}
	applyDone := start + sim.FromSeconds(float64(len(data))/accRate)
	tl.accBusy = applyDone
	if pr != nil {
		pr.PhaseAt(origin, profile.PhaseTargetQueue, arrive, start)
		pr.PhaseAt(origin, profile.PhaseTargetProc, start, applyDone)
	}
	m.Eng.At(applyDone, func() {
		if pr != nil {
			pr.Recv(origin, targetWorld, profile.MsgAcc, profile.RouteRMA, len(data))
		}
		defer func() {
			if rec := recover(); rec != nil {
				ws.setErr(fmt.Errorf("mpi: Accumulate apply failed: %v", rec))
			}
		}()
		dst := treg.Bytes(treg.VA+int64(tdisp), ttype.Span())
		applyReduction(dst, ttype, data, op)
	})
	if applyDone > ep.completeAt {
		ep.completeAt = applyDone
	}
	o := r.W.Obs
	o.Inc(r.ID(), obs.COpsAcc)
	o.Add(r.ID(), bytesMetric(buf.Type, ttype), int64(len(data)))
	if o.Tracing() {
		o.Span(r.ID(), "rma", "acc("+op.String()+")", t0, applyDone,
			obs.A("target", targetWorld), obs.A("bytes", len(data)))
		o.SpanLane(obs.LaneServer(m.NodeOf(targetWorld)), "agent", "apply("+op.String()+")",
			start, applyDone, obs.A("origin", r.ID()), obs.A("bytes", len(data)))
	}
	return nil
}

// shmAccumulate applies a reduction through the shared segment. The
// read-modify-write is done by the origin CPU, but applications to one
// target stay serialized (the accBusy horizon the RMA agent also uses):
// concurrent same-op accumulates under shared locks must not interleave
// elementwise.
func (w *Win) shmAccumulate(buf LocalBuf, op Op, target, tdisp int, ttype Datatype, ep *epoch, t0 sim.Time) error {
	r := w.comm.r
	m := r.W.M
	src := buf.Region.Bytes(buf.Region.VA+int64(buf.Off), buf.Type.Span())
	data := packFrom(src, buf.Type)
	treg, _ := w.SharedQuery(target)
	tl := w.state.lockAt(target)
	t0q := r.P.Now()
	start := t0q
	if tl.accBusy > start {
		start = tl.accBusy
	}
	fin := start + m.ShmCopyTime(len(data))
	tl.accBusy = fin
	m.ShmAccount(len(data))
	if pr := r.W.Obs.Prof(); pr != nil {
		pr.PhaseAt(r.ID(), profile.PhaseTargetQueue, t0q, start)
		pr.PhaseAt(r.ID(), profile.PhaseTargetProc, start, fin)
	}
	m.SleepUntil(r.P, fin)
	if err := w.shmApply(func() {
		dst := treg.Bytes(treg.VA+int64(tdisp), ttype.Span())
		applyReduction(dst, ttype, data, op)
	}, "Accumulate"); err != nil {
		return err
	}
	if fin > ep.completeAt {
		ep.completeAt = fin
	}
	w.shmOpObs(obs.COpsAcc, "acc.shm("+op.String()+")", target, len(data), t0)
	return nil
}

// applyReduction folds dense data into dst following the datatype
// layout, elementwise on float64 for arithmetic ops.
func applyReduction(dst []byte, t Datatype, data []byte, op Op) {
	if op == OpReplace {
		unpackInto(dst, t, data)
		return
	}
	pos := 0
	t.Segments(func(off, n int) {
		if n%8 != 0 || off%8 != 0 {
			panic(fmt.Sprintf("mpi: accumulate segment not float64-aligned (off=%d n=%d)", off, n))
		}
		cur := bytesToF64s(dst[off : off+n])
		inc := bytesToF64s(data[pos : pos+n])
		reduceF64(op, cur, inc)
		copy(dst[off:off+n], f64sToBytes(cur))
		pos += n
	})
}
