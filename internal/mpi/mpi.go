// Package mpi implements the subset of the Message Passing Interface
// needed to host the ARMCI-MPI runtime, on top of the simulated fabric:
//
//   - communicators and groups (dup, split, translate), including
//     intercommunicator creation and merging;
//   - two-sided point-to-point with tag matching and wildcards;
//   - collectives (barrier, bcast, reduce, allreduce, allgather, ...);
//   - derived datatypes (contiguous, vector, indexed, subarray);
//   - passive-target one-sided RMA: window creation, shared/exclusive
//     lock arbitration at the target, put/get/accumulate with
//     datatypes, and MPI-2 conflicting-access detection;
//   - MPI-3 extensions behind an option: lock-all/flush epochless
//     passive mode, request-based operations, and atomic
//     read-modify-write (fetch-and-op, compare-and-swap).
//
// The package enforces MPI-2 RMA semantics (one epoch per window per
// origin, conflicting accesses are errors) because ARMCI-MPI's design
// is precisely about living within those rules.
package mpi

import (
	"fmt"

	"repro/internal/fabric"
	"repro/internal/obs"
	"repro/internal/platform"
	"repro/internal/sim"
)

// Wildcards for Recv matching.
const (
	AnySource = -1
	AnyTag    = -1
)

// Reduction operations.
type Op int

const (
	OpSum Op = iota
	OpMin
	OpMax
	OpProd
	OpBOR
	OpReplace // RMA-only: MPI_REPLACE
	OpNoOp    // RMA-only: MPI_NO_OP (MPI-3 fetch)
)

func (o Op) String() string {
	switch o {
	case OpSum:
		return "SUM"
	case OpMin:
		return "MIN"
	case OpMax:
		return "MAX"
	case OpProd:
		return "PROD"
	case OpBOR:
		return "BOR"
	case OpReplace:
		return "REPLACE"
	case OpNoOp:
		return "NO_OP"
	default:
		return fmt.Sprintf("Op(%d)", int(o))
	}
}

// message kinds on the fabric (fabric.Msg.Kind).
const (
	kindP2P = iota
	kindRendezvousRTS
	kindRendezvousCTS
	kindRendezvousData
)

// DefaultEagerLimit is the eager/rendezvous protocol switch point.
const DefaultEagerLimit = 64 << 10

// World is the shared state of one MPI job on a machine. It is created
// once (before Engine.Run) and shared by all ranks; the cooperative
// scheduler guarantees at most one goroutine touches it at a time.
type World struct {
	M   *fabric.Machine
	Tun *platform.Tuning // MPI software tuning for this platform
	N   int

	nextCid int
	nextWin int
	wins    map[int]*winState
	rvSeq   int // rendezvous transfer ids

	// EagerLimit is the largest message sent eagerly (buffered);
	// larger sends use the RTS/CTS rendezvous protocol.
	EagerLimit int

	// Checked enables MPI-2 semantic checking (conflicting accesses,
	// double locks). ARMCI-MPI is designed to pass with checking on.
	Checked bool
	// MPI3 enables the MPI-3 RMA extensions (lock-all/flush,
	// request-based ops, atomic read-modify-write).
	MPI3 bool

	// Counters.
	Epochs       int64
	SharedEpochs int64
	ExclEpochs   int64
	RMAOps       int64

	// Obs, when non-nil, receives per-rank RMA metrics and trace spans
	// (lock waits, epochs, op issue→remote-complete, datatype packs).
	// All hooks are nil-safe no-ops.
	Obs *obs.Recorder

	// worldGroup is the identity group [0..N) shared by every rank's
	// CommWorld — one slice for the job, not one per rank, which
	// matters at 16k ranks (a per-rank copy would be N² ints).
	worldGroup []int
}

// NewWorld creates MPI state for all ranks of machine m with the given
// software tuning. Checked semantics default to on.
func NewWorld(m *fabric.Machine, tun *platform.Tuning) *World {
	return &World{
		M:          m,
		Tun:        tun,
		N:          m.NRanks,
		nextCid:    1,
		wins:       map[int]*winState{},
		EagerLimit: DefaultEagerLimit,
		Checked:    true,
	}
}

// Rank is one rank's handle on the MPI world; all MPI calls go through
// it. Obtain it at the top of the rank body via w.Rank(p).
type Rank struct {
	W *World
	P *sim.Proc

	world *Comm
}

// Rank binds the calling rank's sim context to the world and returns
// its MPI handle, with CommWorld ready. All ranks share one immutable
// world-group slice.
func (w *World) Rank(p *sim.Proc) *Rank {
	if w.worldGroup == nil {
		g := make([]int, w.N)
		for i := range g {
			g[i] = i
		}
		w.worldGroup = g
	}
	r := &Rank{W: w, P: p}
	r.world = &Comm{r: r, cid: 0, group: w.worldGroup, rank: p.ID()}
	return r
}

// CommWorld returns the communicator spanning all ranks.
func (r *Rank) CommWorld() *Comm { return r.world }

// ID returns the rank's world rank.
func (r *Rank) ID() int { return r.P.ID() }

// opOverhead charges the per-operation MPI software overhead.
func (r *Rank) opOverhead() {
	r.P.Elapse(sim.FromSeconds(r.W.Tun.OpOverheadNs / 1e9))
}

// AllocMem allocates n bytes of memory through MPI_Alloc_mem. Whether
// the memory is pre-registered with the interconnect depends on the
// MPI library (MVAPICH2 does not pre-pin; see Figure 5 discussion).
func (r *Rank) AllocMem(n int) *fabric.Region {
	return r.W.M.Space(r.ID()).Alloc(n, fabric.DomainMPI, r.W.Tun.PrepinAlloc)
}

// FreeMem releases memory allocated with AllocMem.
func (r *Rank) FreeMem(reg *fabric.Region) error {
	return r.W.M.Space(r.ID()).Free(reg.VA)
}
