package mpi

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// collect returns the segment list of a datatype.
func collect(t Datatype) [][2]int {
	var segs [][2]int
	t.Segments(func(o, n int) { segs = append(segs, [2]int{o, n}) })
	return segs
}

// checkInvariants verifies Size/NumSegs/Extent against the segment list.
func checkInvariants(t *testing.T, dt Datatype) {
	t.Helper()
	segs := collect(dt)
	if len(segs) != dt.NumSegs() {
		t.Fatalf("%v: NumSegs=%d but Segments yielded %d", dt, dt.NumSegs(), len(segs))
	}
	size, hi := 0, 0
	for _, s := range segs {
		if s[1] <= 0 {
			t.Fatalf("%v: zero/negative segment %v", dt, s)
		}
		if s[0] < 0 {
			t.Fatalf("%v: negative offset %v", dt, s)
		}
		size += s[1]
		if s[0]+s[1] > hi {
			hi = s[0] + s[1]
		}
	}
	if size != dt.Size() {
		t.Fatalf("%v: Size=%d but segments sum to %d", dt, dt.Size(), size)
	}
	if hi > dt.Extent() {
		t.Fatalf("%v: segment reaches %d beyond extent %d", dt, hi, dt.Extent())
	}
	if dt.Contig() && len(segs) > 1 {
		t.Fatalf("%v: Contig but %d segments", dt, len(segs))
	}
}

func TestContiguous(t *testing.T) {
	dt := TypeContiguous(16)
	checkInvariants(t, dt)
	if !dt.Contig() || dt.Size() != 16 || dt.Extent() != 16 {
		t.Errorf("contig: %v", dt)
	}
	zero := TypeContiguous(0)
	checkInvariants(t, zero)
	if zero.NumSegs() != 0 {
		t.Error("zero-length contig should have no segments")
	}
}

func TestVector(t *testing.T) {
	dt := TypeVector(3, 4, 10)
	checkInvariants(t, dt)
	want := [][2]int{{0, 4}, {10, 4}, {20, 4}}
	segs := collect(dt)
	for i := range want {
		if segs[i] != want[i] {
			t.Fatalf("vector segments = %v, want %v", segs, want)
		}
	}
	if dt.Size() != 12 || dt.Extent() != 24 {
		t.Errorf("vector size/extent = %d/%d", dt.Size(), dt.Extent())
	}
}

func TestVectorCollapsesToContig(t *testing.T) {
	if !TypeVector(5, 8, 8).Contig() {
		t.Error("stride==blocklen should collapse to contiguous")
	}
	if !TypeVector(1, 100, 9999).Contig() {
		t.Error("count==1 should collapse")
	}
	if !TypeVector(0, 4, 10).Contig() {
		t.Error("count==0 should collapse to empty contig")
	}
	if TypeVector(0, 4, 10).Size() != 0 {
		t.Error("count==0 size should be 0")
	}
}

func TestVectorOverlapPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("overlapping vector accepted")
		}
	}()
	TypeVector(2, 10, 5)
}

func TestIndexed(t *testing.T) {
	dt := TypeIndexed([]int{20, 0, 50}, []int{5, 10, 1})
	checkInvariants(t, dt)
	if dt.Size() != 16 {
		t.Errorf("size = %d", dt.Size())
	}
	if dt.Extent() != 51 {
		t.Errorf("extent = %d, want 51", dt.Extent())
	}
}

func TestIndexedCollapsesToContig(t *testing.T) {
	dt := TypeIndexed([]int{0, 4, 8}, []int{4, 4, 4})
	if !dt.Contig() || dt.Size() != 12 {
		t.Errorf("adjacent runs should collapse: %v", dt)
	}
	empty := TypeIndexed(nil, nil)
	if empty.Size() != 0 {
		t.Error("empty indexed size != 0")
	}
	withZeros := TypeIndexed([]int{0, 100}, []int{8, 0})
	if !withZeros.Contig() {
		t.Errorf("zero-length blocks should be dropped: %v", withZeros)
	}
}

func TestSubarray2D(t *testing.T) {
	// 4x6 array of 8-byte elements; select rows 1-2, cols 2-4.
	dt := TypeSubarray([]int{4, 6}, []int{2, 3}, []int{1, 2}, 8)
	checkInvariants(t, dt)
	if dt.Size() != 2*3*8 {
		t.Errorf("size = %d", dt.Size())
	}
	segs := collect(dt)
	want := [][2]int{{(1*6 + 2) * 8, 24}, {(2*6 + 2) * 8, 24}}
	if len(segs) != 2 || segs[0] != want[0] || segs[1] != want[1] {
		t.Errorf("segments = %v, want %v", segs, want)
	}
}

func TestSubarray3D(t *testing.T) {
	dt := TypeSubarray([]int{3, 4, 5}, []int{2, 2, 3}, []int{1, 1, 1}, 1)
	checkInvariants(t, dt)
	if dt.Size() != 12 {
		t.Errorf("size = %d", dt.Size())
	}
	if dt.NumSegs() != 4 { // 2x2 rows of 3 bytes
		t.Errorf("segs = %d, want 4", dt.NumSegs())
	}
}

func TestSubarrayFullTrailingDimsFold(t *testing.T) {
	// Selecting full rows should fold into longer runs.
	dt := TypeSubarray([]int{4, 6}, []int{2, 6}, []int{1, 0}, 8)
	if dt.NumSegs() != 1 {
		t.Errorf("full-row subarray should be one run, got %d", dt.NumSegs())
	}
	if dt.Size() != 2*6*8 {
		t.Errorf("size = %d", dt.Size())
	}
}

func TestSubarrayWholeArrayIsContig(t *testing.T) {
	dt := TypeSubarray([]int{4, 6}, []int{4, 6}, []int{0, 0}, 8)
	if !dt.Contig() {
		t.Errorf("whole-array subarray should be contiguous, got %v", dt)
	}
}

func TestSubarrayBoundsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("out-of-bounds subarray accepted")
		}
	}()
	TypeSubarray([]int{4}, []int{3}, []int{2}, 1)
}

func TestSubarray1D(t *testing.T) {
	dt := TypeSubarray([]int{10}, []int{4}, []int{3}, 8)
	checkInvariants(t, dt)
	segs := collect(dt)
	if len(segs) != 1 || segs[0] != [2]int{24, 32} {
		t.Errorf("segments = %v", segs)
	}
}

func TestPackUnpackRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	types := []Datatype{
		TypeContiguous(64),
		TypeVector(5, 8, 20),
		TypeIndexed([]int{0, 30, 90}, []int{10, 20, 5}),
		TypeSubarray([]int{4, 8}, []int{3, 4}, []int{1, 2}, 2),
	}
	for _, dt := range types {
		src := make([]byte, dt.Extent())
		rng.Read(src)
		packed := packFrom(src, dt)
		if len(packed) != dt.Size() {
			t.Fatalf("%v: packed %d bytes, want %d", dt, len(packed), dt.Size())
		}
		dst := make([]byte, dt.Extent())
		unpackInto(dst, dt, packed)
		// Every byte inside a segment must match; bytes outside stay 0.
		inSeg := make([]bool, dt.Extent())
		dt.Segments(func(o, n int) {
			for i := o; i < o+n; i++ {
				inSeg[i] = true
			}
		})
		for i := range dst {
			if inSeg[i] && dst[i] != src[i] {
				t.Fatalf("%v: byte %d corrupted", dt, i)
			}
			if !inSeg[i] && dst[i] != 0 {
				t.Fatalf("%v: byte %d outside segments written", dt, i)
			}
		}
	}
}

func TestSubarrayPropertySegmentsMatchNaive(t *testing.T) {
	// Property: subarray segments enumerate exactly the elements a
	// naive nested loop would select.
	check := func(s0, s1, b0, b1, o0, o1 uint8) bool {
		sizes := []int{int(s0%6) + 1, int(s1%6) + 1}
		sub := []int{int(b0)%sizes[0] + 1, int(b1)%sizes[1] + 1}
		starts := []int{int(o0) % (sizes[0] - sub[0] + 1), int(o1) % (sizes[1] - sub[1] + 1)}
		dt := TypeSubarray(sizes, sub, starts, 1)
		want := map[int]bool{}
		for i := starts[0]; i < starts[0]+sub[0]; i++ {
			for j := starts[1]; j < starts[1]+sub[1]; j++ {
				want[i*sizes[1]+j] = true
			}
		}
		got := map[int]bool{}
		dt.Segments(func(o, n int) {
			for k := o; k < o+n; k++ {
				if got[k] {
					return // duplicate coverage
				}
				got[k] = true
			}
		})
		if len(got) != len(want) {
			return false
		}
		for k := range want {
			if !got[k] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestVectorPropertySizeConsistency(t *testing.T) {
	check := func(count, blocklen uint8, extra uint8) bool {
		c, b := int(count%20)+1, int(blocklen%20)+1
		stride := b + int(extra%10)
		dt := TypeVector(c, b, stride)
		checkOk := dt.Size() == c*b
		segs := 0
		total := 0
		dt.Segments(func(o, n int) { segs++; total += n })
		return checkOk && total == dt.Size() && segs == dt.NumSegs()
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
