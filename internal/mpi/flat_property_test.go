package mpi

import (
	"math/rand"
	"testing"
)

// collectSegs enumerates a type through the closure path.
func collectSegs(t Datatype) []Segment {
	var segs []Segment
	t.Segments(func(off, n int) {
		segs = append(segs, Segment{Off: off, N: n})
	})
	return segs
}

// checkFlatMatches asserts that Flatten(dt) is observationally
// identical to the closure enumeration: same segments in the same
// order, and aggregate properties consistent with both the segments and
// the type's own accessors.
func checkFlatMatches(t *testing.T, dt Datatype) {
	t.Helper()
	want := collectSegs(dt)
	f := Flatten(dt)
	if len(f.Segs) != len(want) {
		t.Fatalf("%v: flat has %d segs, closure path %d", dt, len(f.Segs), len(want))
	}
	size, span := 0, 0
	for i, s := range want {
		if f.Segs[i] != s {
			t.Fatalf("%v: seg %d = %+v, closure path %+v", dt, i, f.Segs[i], s)
		}
		size += s.N
		if s.Off+s.N > span {
			span = s.Off + s.N
		}
	}
	if f.Size() != size || f.Size() != dt.Size() {
		t.Errorf("%v: flat size %d, segments sum %d, type %d", dt, f.Size(), size, dt.Size())
	}
	if f.Span() != span {
		t.Errorf("%v: flat span %d, segments span %d", dt, f.Span(), span)
	}
	if dt.Span() < span {
		t.Errorf("%v: type span %d below last touched byte %d", dt, dt.Span(), span)
	}
	if f.NumSegs() != dt.NumSegs() {
		t.Errorf("%v: flat NumSegs %d, type %d", dt, f.NumSegs(), dt.NumSegs())
	}
	// The memo must be stable: a second Flatten returns the same object
	// for caching types and an equal value otherwise.
	g := Flatten(dt)
	if len(g.Segs) != len(f.Segs) {
		t.Fatalf("%v: repeated Flatten changed seg count %d -> %d", dt, len(f.Segs), len(g.Segs))
	}
	for i := range f.Segs {
		if g.Segs[i] != f.Segs[i] {
			t.Fatalf("%v: repeated Flatten changed seg %d", dt, i)
		}
	}
}

// randomType builds one random datatype, deliberately including
// degenerate shapes: zero counts, zero block lengths, stride ==
// blocklen (collapses to contiguous), empty indexed lists, and
// subarrays that are dense in memory.
func randomType(rng *rand.Rand) Datatype {
	switch rng.Intn(4) {
	case 0:
		return TypeContiguous(rng.Intn(256))
	case 1:
		count := rng.Intn(16)
		blocklen := rng.Intn(32)
		stride := blocklen + rng.Intn(32) // >= blocklen, == sometimes
		return TypeVector(count, blocklen, stride)
	case 2:
		n := rng.Intn(12)
		offs := make([]int, n)
		lens := make([]int, n)
		next := 0
		for i := 0; i < n; i++ {
			next += rng.Intn(8) // 0 keeps runs adjacent (collapsible)
			offs[i] = next
			lens[i] = rng.Intn(16) // 0-length blocks allowed
			next += lens[i]
		}
		return TypeIndexed(offs, lens)
	default:
		nd := 1 + rng.Intn(3)
		sizes := make([]int, nd)
		subsizes := make([]int, nd)
		starts := make([]int, nd)
		for d := 0; d < nd; d++ {
			sizes[d] = 1 + rng.Intn(8)
			subsizes[d] = rng.Intn(sizes[d] + 1) // may be 0 or the full dim
			if subsizes[d] < sizes[d] {
				starts[d] = rng.Intn(sizes[d] - subsizes[d] + 1)
			}
		}
		return TypeSubarray(sizes, subsizes, starts, 1+rng.Intn(8))
	}
}

// TestFlattenMatchesClosurePathRandom is the flatten-cache property
// test: for a large sample of random datatypes (including zero-length
// and collapsed-to-contiguous shapes), the cached flat form must be
// observationally identical to the closure enumeration path.
func TestFlattenMatchesClosurePathRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(42)) // deterministic corpus
	for i := 0; i < 2000; i++ {
		checkFlatMatches(t, randomType(rng))
	}
}

// TestFlattenDegenerateShapes nails the specific edge cases by hand.
func TestFlattenDegenerateShapes(t *testing.T) {
	cases := []Datatype{
		TypeContiguous(0),
		TypeContiguous(1),
		TypeVector(0, 8, 16),                                   // zero count -> empty contig
		TypeVector(4, 0, 16),                                   // zero blocklen -> empty contig
		TypeVector(4, 8, 8),                                    // stride == blocklen -> contig
		TypeVector(1, 8, 64),                                   // single block -> contig
		TypeIndexed(nil, nil),                                  // empty lists
		TypeIndexed([]int{0}, []int{0}),                        // single zero-length block
		TypeIndexed([]int{0, 8}, []int{8, 8}),                  // adjacent -> contig
		TypeIndexed([]int{8, 0}, []int{4, 4}),                  // unsorted runs
		TypeIndexed([]int{0, 16, 8}, []int{4, 4, 4}),           // interleaved order
		TypeSubarray([]int{4, 4}, []int{4, 4}, []int{0, 0}, 8), // full array
		TypeSubarray([]int{4, 4}, []int{0, 4}, []int{0, 0}, 8), // empty
		TypeSubarray([]int{4, 4}, []int{2, 4}, []int{1, 0}, 8), // dense rows
		TypeSubarray([]int{4, 4}, []int{2, 2}, []int{1, 1}, 8), // strided
		TypeSubarray([]int{3, 3, 3}, []int{2, 2, 2}, []int{1, 1, 1}, 4),
	}
	for _, dt := range cases {
		checkFlatMatches(t, dt)
	}
}

// TestPackUnpackMatchesFlat checks the copy kernels against a manual
// closure-path pack for random types: PackInto must gather exactly the
// bytes the closure enumeration would, and Unpack must scatter them
// back to the same places.
func TestPackUnpackMatchesFlat(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 500; i++ {
		dt := randomType(rng)
		span := dt.Span()
		src := make([]byte, span)
		rng.Read(src)

		// Closure-path gather.
		var want []byte
		dt.Segments(func(off, n int) {
			want = append(want, src[off:off+n]...)
		})

		got := Pack(dt, src)
		if len(got) != dt.Size() {
			t.Fatalf("%v: packed %d bytes, want %d", dt, len(got), dt.Size())
		}
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("%v: packed byte %d = %d, closure path %d", dt, j, got[j], want[j])
			}
		}

		// Scatter back into a fresh buffer and compare the touched bytes.
		dst := make([]byte, span)
		Unpack(dt, dst, got)
		dt.Segments(func(off, n int) {
			for j := off; j < off+n; j++ {
				if dst[j] != src[j] {
					t.Fatalf("%v: unpacked byte %d = %d, want %d", dt, j, dst[j], src[j])
				}
			}
		})
	}
}
