package mpi

import "fmt"

// Datatype describes a (possibly noncontiguous) byte layout relative to
// a base address, in the spirit of MPI derived datatypes. All datatypes
// here are byte-granular: element width is folded into lengths, which
// keeps the typemap machinery simple while preserving the layout and
// cost structure (segment counts, pack sizes) that matters to RMA.
type Datatype interface {
	// Size is the number of data bytes the type describes.
	Size() int
	// Extent is the MPI extent: one past the end of the layout's
	// footprint, padding included (for a subarray, the whole parent
	// array). Use Span for the bytes actually touched.
	Extent() int
	// Span is one past the highest byte the type actually touches —
	// MPI's "true extent". Memory access uses Span, never Extent.
	Span() int
	// Contig reports whether the type is a single dense run.
	Contig() bool
	// NumSegs is the number of contiguous runs.
	NumSegs() int
	// Segments calls fn for every contiguous run as (offset, length)
	// relative to the base address, in ascending offset order for
	// well-formed types. Hot paths should prefer ranging over
	// Flatten(t).Segs, which enumerates at most once per type.
	Segments(fn func(off, n int))
	// String describes the type for diagnostics.
	String() string
}

// contigType is a single dense run of n bytes.
type contigType struct{ n int }

// TypeContiguous returns a datatype of n contiguous bytes.
func TypeContiguous(n int) Datatype {
	if n < 0 {
		panic("mpi: TypeContiguous with negative length")
	}
	return contigType{n: n}
}

func (t contigType) Size() int    { return t.n }
func (t contigType) Extent() int  { return t.n }
func (t contigType) Span() int    { return t.n }
func (t contigType) Contig() bool { return true }
func (t contigType) NumSegs() int {
	if t.n == 0 {
		return 0
	}
	return 1
}
func (t contigType) Segments(fn func(o, n int)) {
	if t.n > 0 {
		fn(0, t.n)
	}
}
func (t contigType) String() string { return fmt.Sprintf("contig(%dB)", t.n) }

// vectorType is count blocks of blocklen bytes, with stride bytes
// between block starts.
type vectorType struct {
	count, blocklen, stride int
	fl                      *Flat // lazily built flatten cache
}

// TypeVector returns a strided datatype: count blocks of blocklen
// bytes whose starts are stride bytes apart. stride >= blocklen is
// required so runs do not overlap.
func TypeVector(count, blocklen, stride int) Datatype {
	if count < 0 || blocklen < 0 {
		panic("mpi: TypeVector with negative count/blocklen")
	}
	if count > 1 && stride < blocklen {
		panic("mpi: TypeVector with overlapping blocks")
	}
	if count <= 1 || blocklen == 0 {
		return contigType{n: count * blocklen}
	}
	if stride == blocklen {
		return contigType{n: count * blocklen}
	}
	return &vectorType{count: count, blocklen: blocklen, stride: stride}
}

func (t *vectorType) Size() int    { return t.count * t.blocklen }
func (t *vectorType) Extent() int  { return (t.count-1)*t.stride + t.blocklen }
func (t *vectorType) Span() int    { return (t.count-1)*t.stride + t.blocklen }
func (t *vectorType) Contig() bool { return false }
func (t *vectorType) NumSegs() int { return t.count }
func (t *vectorType) Segments(fn func(o, n int)) {
	for i := 0; i < t.count; i++ {
		fn(i*t.stride, t.blocklen)
	}
}
func (t *vectorType) flat() *Flat {
	if t.fl == nil {
		t.fl = buildFlat(t)
	}
	return t.fl
}
func (t *vectorType) String() string {
	return fmt.Sprintf("vector(%dx%dB/%d)", t.count, t.blocklen, t.stride)
}

// indexedType is an explicit list of (displacement, length) runs —
// MPI_Type_indexed with byte displacements (hindexed).
type indexedType struct {
	offs, lens []int
	size, ext  int
	nsegs      int
	fl         *Flat // lazily built flatten cache
}

// TypeIndexed returns a datatype with explicit byte displacements and
// block lengths. The lists must have equal length. Runs need not be
// sorted but must not overlap; overlap is not checked here (MPI
// declares communication with overlapping target runs erroneous, and
// the RMA layer detects it when checking is enabled).
func TypeIndexed(offs, lens []int) Datatype {
	if len(offs) != len(lens) {
		panic("mpi: TypeIndexed length mismatch")
	}
	t := &indexedType{offs: append([]int(nil), offs...), lens: append([]int(nil), lens...)}
	lo, hi := 0, 0
	first := true
	for i, n := range t.lens {
		if n < 0 {
			panic("mpi: TypeIndexed with negative block length")
		}
		if n == 0 {
			continue
		}
		t.size += n
		t.nsegs++
		o := t.offs[i]
		if first || o < lo {
			lo = o
		}
		if first || o+n > hi {
			hi = o + n
		}
		first = false
	}
	if first {
		return contigType{n: 0}
	}
	if lo < 0 {
		panic("mpi: TypeIndexed with negative displacement")
	}
	// Extent is measured from the base address (offset 0), so a type
	// whose first run starts at a positive displacement still spans it.
	t.ext = hi
	if t.size == t.ext && lo == 0 && contiguousRuns(t.offs, t.lens) {
		return contigType{n: t.size}
	}
	return t
}

func contiguousRuns(offs, lens []int) bool {
	next := -1
	for i := range offs {
		if lens[i] == 0 {
			continue
		}
		if next >= 0 && offs[i] != next {
			return false
		}
		if next < 0 && offs[i] != 0 {
			return false
		}
		next = offs[i] + lens[i]
	}
	return true
}

func (t *indexedType) Size() int    { return t.size }
func (t *indexedType) Extent() int  { return t.ext }
func (t *indexedType) Span() int    { return t.ext }
func (t *indexedType) Contig() bool { return false }
func (t *indexedType) NumSegs() int { return t.nsegs }
func (t *indexedType) Segments(fn func(o, n int)) {
	for i := range t.offs {
		if t.lens[i] > 0 {
			fn(t.offs[i], t.lens[i])
		}
	}
}
func (t *indexedType) flat() *Flat {
	if t.fl == nil {
		t.fl = buildFlat(t)
	}
	return t.fl
}
func (t *indexedType) String() string {
	return fmt.Sprintf("indexed(%d segs, %dB)", t.nsegs, t.size)
}

// subarrayType selects an n-dimensional subarray out of a larger array,
// in C (row-major) order, with elem bytes per element.
//
// The run decomposition is computed once at construction: lead is the
// number of leading dimensions the segment odometer iterates (trailing
// fully selected dimensions fold into one run), runBytes the length of
// each contiguous run, runs the run count, and span the analytic
// last-touched-byte bound — so Span and NumSegs are O(1) instead of
// re-enumerating every run on every call.
type subarrayType struct {
	sizes, subsizes, starts []int
	elem                    int
	size                    int

	lead     int
	runBytes int
	runs     int
	span     int
	fl       *Flat // lazily built flatten cache
}

// TypeSubarray returns an MPI_Type_create_subarray-style datatype in C
// order: sizes are the full array dimensions (outermost first),
// subsizes the selected block, starts the per-dimension origin, and
// elem the element size in bytes.
func TypeSubarray(sizes, subsizes, starts []int, elem int) Datatype {
	nd := len(sizes)
	if len(subsizes) != nd || len(starts) != nd {
		panic("mpi: TypeSubarray dimension mismatch")
	}
	if elem <= 0 {
		panic("mpi: TypeSubarray with non-positive element size")
	}
	size := elem
	for d := 0; d < nd; d++ {
		if subsizes[d] < 0 || starts[d] < 0 || starts[d]+subsizes[d] > sizes[d] {
			panic(fmt.Sprintf("mpi: TypeSubarray dim %d out of bounds: size=%d sub=%d start=%d",
				d, sizes[d], subsizes[d], starts[d]))
		}
		size *= subsizes[d]
	}
	if nd == 0 {
		return contigType{n: elem}
	}
	t := &subarrayType{
		sizes:    append([]int(nil), sizes...),
		subsizes: append([]int(nil), subsizes...),
		starts:   append([]int(nil), starts...),
		elem:     elem,
		size:     size,
	}
	t.precompute()
	// Collapse to contiguous when the subarray is dense in memory.
	if t.runs <= 1 {
		off, n := t.onlySegment()
		if off == 0 {
			return contigType{n: n}
		}
		return TypeIndexed([]int{off}, []int{n})
	}
	return t
}

// precompute derives the run decomposition and analytic span.
func (t *subarrayType) precompute() {
	nd := len(t.sizes)
	// Fold trailing dimensions that are fully selected into the run.
	d := nd - 1
	runBytes := t.subsizes[nd-1] * t.elem
	for d > 0 && t.subsizes[d] == t.sizes[d] && t.starts[d] == 0 {
		d--
		runBytes = t.subsizes[d] * rowStride(t.sizes, d+1) * t.elem
	}
	t.lead = d
	t.runBytes = runBytes
	t.runs = 1
	for i := 0; i < d; i++ {
		t.runs *= t.subsizes[i]
	}
	if t.size == 0 {
		t.runs = 0
		return
	}
	// The highest run starts at the last index of every leading
	// dimension; its end is the span.
	off := 0
	for i := 0; i < d; i++ {
		off += (t.starts[i] + t.subsizes[i] - 1) * rowStride(t.sizes, i+1)
	}
	off += t.starts[d] * rowStride(t.sizes, d+1)
	t.span = off*t.elem + runBytes
}

func (t *subarrayType) Size() int { return t.size }

// Span is the last touched byte + 1, precomputed analytically at
// construction.
func (t *subarrayType) Span() int { return t.span }

func (t *subarrayType) Extent() int {
	ext := t.elem
	for _, s := range t.sizes {
		ext *= s
	}
	return ext
}
func (t *subarrayType) Contig() bool { return false }

func rowStride(sizes []int, from int) int {
	s := 1
	for i := from; i < len(sizes); i++ {
		s *= sizes[i]
	}
	return s
}

func (t *subarrayType) NumSegs() int { return t.runs }

func (t *subarrayType) onlySegment() (off, n int) {
	got := false
	t.Segments(func(o, l int) {
		if !got {
			off, n = o, l
			got = true
		} else {
			n += l // only called when NumSegs()<=1, so this is unreachable
		}
	})
	return off, n
}

func (t *subarrayType) Segments(fn func(o, n int)) {
	if t.size == 0 {
		return
	}
	d := t.lead
	idx := make([]int, d)
	for {
		off := 0
		for i := 0; i < d; i++ {
			off += (t.starts[i] + idx[i]) * rowStride(t.sizes, i+1)
		}
		off += t.starts[d] * rowStride(t.sizes, d+1)
		fn(off*t.elem, t.runBytes)
		// Odometer increment over the leading dims.
		i := d - 1
		for ; i >= 0; i-- {
			idx[i]++
			if idx[i] < t.subsizes[i] {
				break
			}
			idx[i] = 0
		}
		if i < 0 {
			return
		}
	}
}

func (t *subarrayType) flat() *Flat {
	if t.fl == nil {
		t.fl = buildFlat(t)
	}
	return t.fl
}

func (t *subarrayType) String() string {
	return fmt.Sprintf("subarray(%v of %v @%v, elem=%dB)", t.subsizes, t.sizes, t.starts, t.elem)
}
