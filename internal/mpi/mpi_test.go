package mpi

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"repro/internal/fabric"
	"repro/internal/platform"
	"repro/internal/sim"
)

// runMPI executes body on n ranks of a small test machine and fails the
// test on deadlock or panic. It returns the world for counter checks.
func runMPI(t *testing.T, n int, body func(r *Rank)) *World {
	t.Helper()
	eng := sim.NewEngine()
	par := fabric.Params{
		Name: "test", Nodes: (n + 1) / 2, CoresPerNode: 2,
		LatencyNs: 1000, Bandwidth: 1e9, MsgOverhead: 100,
		LocalLatencyNs: 100, LocalBandwidth: 4e9,
		CopyRate: 4e9, Flops: 1e9,
		PageSize: 4096, PinPageNs: 0, BounceThreshold: 0,
		BounceRate: 1e9, UnpinnedRate: 0.5e9, AccumRate: 1e9,
	}
	m, err := fabric.NewMachine(eng, par, n)
	if err != nil {
		t.Fatal(err)
	}
	tun := &platform.Tuning{BandwidthFrac: 1.0, OpOverheadNs: 200}
	w := NewWorld(m, tun)
	if err := eng.Run(n, func(p *sim.Proc) { body(w.Rank(p)) }); err != nil {
		t.Fatal(err)
	}
	return w
}

func TestSendRecvBasic(t *testing.T) {
	runMPI(t, 2, func(r *Rank) {
		c := r.CommWorld()
		if c.Rank() == 0 {
			c.Send(1, 7, []byte("hello"))
		} else {
			data, st := c.Recv(0, 7)
			if string(data) != "hello" {
				t.Errorf("payload = %q", data)
			}
			if st.Source != 0 || st.Tag != 7 || st.Size != 5 {
				t.Errorf("status = %+v", st)
			}
		}
	})
}

func TestRecvWildcards(t *testing.T) {
	runMPI(t, 3, func(r *Rank) {
		c := r.CommWorld()
		switch c.Rank() {
		case 0:
			// Two messages with different tags from different sources.
			got := map[string]bool{}
			for i := 0; i < 2; i++ {
				data, st := c.Recv(AnySource, AnyTag)
				got[fmt.Sprintf("%s/%d/%d", data, st.Source, st.Tag)] = true
			}
			if !got["a/1/10"] || !got["b/2/20"] {
				t.Errorf("wildcard recv got %v", got)
			}
		case 1:
			c.Send(0, 10, []byte("a"))
		case 2:
			r.P.Elapse(10_000)
			c.Send(0, 20, []byte("b"))
		}
	})
}

func TestRecvFiltersByTagAndSource(t *testing.T) {
	runMPI(t, 2, func(r *Rank) {
		c := r.CommWorld()
		if c.Rank() == 0 {
			c.Send(1, 5, []byte("five"))
			c.Send(1, 6, []byte("six"))
		} else {
			// Receive tag 6 first even though 5 arrived earlier.
			data, _ := c.Recv(0, 6)
			if string(data) != "six" {
				t.Errorf("tag-6 recv got %q", data)
			}
			data, _ = c.Recv(0, 5)
			if string(data) != "five" {
				t.Errorf("tag-5 recv got %q", data)
			}
		}
	})
}

func TestSendCopiesData(t *testing.T) {
	runMPI(t, 2, func(r *Rank) {
		c := r.CommWorld()
		if c.Rank() == 0 {
			buf := []byte("abc")
			c.Send(1, 1, buf)
			buf[0] = 'X' // must not affect the delivered message
		} else {
			data, _ := c.Recv(0, 1)
			if string(data) != "abc" {
				t.Errorf("payload = %q, want abc (send must copy)", data)
			}
		}
	})
}

func TestIsendIrecvWait(t *testing.T) {
	runMPI(t, 2, func(r *Rank) {
		c := r.CommWorld()
		if c.Rank() == 0 {
			req := c.Isend(1, 3, []byte("x"))
			if !req.Test() {
				t.Error("eager Isend should be complete")
			}
		} else {
			req := c.Irecv(0, 3)
			data, st := req.Wait()
			if string(data) != "x" || st.Source != 0 {
				t.Errorf("Irecv got %q from %d", data, st.Source)
			}
		}
	})
}

func TestBarrierSynchronizes(t *testing.T) {
	var after [4]sim.Time
	runMPI(t, 4, func(r *Rank) {
		c := r.CommWorld()
		r.P.Elapse(sim.Time(1000 * (r.ID() + 1) * 1000)) // staggered arrival
		c.Barrier()
		after[r.ID()] = r.P.Now()
	})
	// Everyone leaves the barrier no earlier than the slowest arrival.
	for i, tm := range after {
		if tm < 4_000_000 {
			t.Errorf("rank %d left the barrier at %v, before the slowest arrival", i, tm)
		}
	}
}

func TestBcastDeliversToAll(t *testing.T) {
	for _, root := range []int{0, 2} {
		root := root
		t.Run(fmt.Sprintf("root%d", root), func(t *testing.T) {
			runMPI(t, 5, func(r *Rank) {
				c := r.CommWorld()
				var data []byte
				if c.Rank() == root {
					data = []byte("payload")
				}
				out := c.Bcast(root, data)
				if string(out) != "payload" {
					t.Errorf("rank %d got %q", c.Rank(), out)
				}
			})
		})
	}
}

func TestAllgatherOrdersByRank(t *testing.T) {
	runMPI(t, 4, func(r *Rank) {
		c := r.CommWorld()
		out := c.Allgather([]byte{byte('A' + c.Rank())})
		var all []byte
		for _, p := range out {
			all = append(all, p...)
		}
		if string(all) != "ABCD" {
			t.Errorf("allgather = %q", all)
		}
	})
}

func TestGather(t *testing.T) {
	runMPI(t, 4, func(r *Rank) {
		c := r.CommWorld()
		out := c.Gather(1, []byte{byte(c.Rank())})
		if c.Rank() == 1 {
			for i, p := range out {
				if len(p) != 1 || p[0] != byte(i) {
					t.Errorf("gather[%d] = %v", i, p)
				}
			}
		} else if out != nil {
			t.Error("non-root got gather data")
		}
	})
}

func TestAllreduceSumAndMax(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 5, 8} {
		n := n
		t.Run(fmt.Sprintf("n%d", n), func(t *testing.T) {
			runMPI(t, n, func(r *Rank) {
				c := r.CommWorld()
				sum := c.AllreduceF64(OpSum, []float64{float64(c.Rank() + 1), 1})
				wantSum := float64(n*(n+1)) / 2
				if sum[0] != wantSum || sum[1] != float64(n) {
					t.Errorf("rank %d: sum = %v, want [%v %v]", c.Rank(), sum, wantSum, n)
				}
				mx := c.AllreduceI64(OpMax, []int64{int64(c.Rank())})
				if mx[0] != int64(n-1) {
					t.Errorf("max = %d, want %d", mx[0], n-1)
				}
			})
		})
	}
}

func TestReduceToRoot(t *testing.T) {
	runMPI(t, 6, func(r *Rank) {
		c := r.CommWorld()
		out := c.ReduceF64(2, OpSum, []float64{1})
		if c.Rank() == 2 {
			if out == nil || out[0] != 6 {
				t.Errorf("reduce at root = %v, want [6]", out)
			}
		} else if out != nil {
			t.Error("non-root received reduce result")
		}
	})
}

func TestCommSplitAndIsolation(t *testing.T) {
	runMPI(t, 6, func(r *Rank) {
		c := r.CommWorld()
		sub := c.Split(c.Rank()%2, c.Rank())
		if sub.Size() != 3 {
			t.Errorf("split size = %d, want 3", sub.Size())
		}
		wantRank := c.Rank() / 2
		if sub.Rank() != wantRank {
			t.Errorf("split rank = %d, want %d", sub.Rank(), wantRank)
		}
		// Traffic on sub must not leak across colors.
		sum := sub.AllreduceI64(OpSum, []int64{int64(c.Rank())})
		want := int64(0 + 2 + 4)
		if c.Rank()%2 == 1 {
			want = 1 + 3 + 5
		}
		if sum[0] != want {
			t.Errorf("rank %d: subcomm sum = %d, want %d", c.Rank(), sum[0], want)
		}
	})
}

func TestCommSplitUndefinedColor(t *testing.T) {
	runMPI(t, 4, func(r *Rank) {
		c := r.CommWorld()
		color := 0
		if c.Rank() == 3 {
			color = -1
		}
		sub := c.Split(color, 0)
		if c.Rank() == 3 {
			if sub != nil {
				t.Error("undefined color should give nil comm")
			}
			return
		}
		if sub.Size() != 3 {
			t.Errorf("split size = %d, want 3", sub.Size())
		}
	})
}

func TestCommDup(t *testing.T) {
	runMPI(t, 3, func(r *Rank) {
		c := r.CommWorld()
		d := c.Dup()
		if d.Size() != c.Size() || d.Rank() != c.Rank() {
			t.Error("dup changed shape")
		}
		if d.ContextID() == c.ContextID() {
			t.Error("dup shares a context id")
		}
		// Message sent on the dup must not match a recv on world.
		if c.Rank() == 0 {
			d.Send(1, 5, []byte("dup"))
			c.Send(1, 5, []byte("world"))
		} else if c.Rank() == 1 {
			data, _ := c.Recv(0, 5)
			if string(data) != "world" {
				t.Errorf("world recv matched %q", data)
			}
			data, _ = d.Recv(0, 5)
			if string(data) != "dup" {
				t.Errorf("dup recv matched %q", data)
			}
		}
	})
}

func TestCommCreateGroupSubset(t *testing.T) {
	runMPI(t, 8, func(r *Rank) {
		c := r.CommWorld()
		members := []int{1, 3, 4, 6} // only these call
		in := false
		for _, m := range members {
			if m == c.Rank() {
				in = true
			}
		}
		if !in {
			return // noncollective: non-members do not participate
		}
		sub := CommCreateGroup(c, members, 500)
		if sub.Size() != 4 {
			t.Fatalf("group comm size = %d, want 4", sub.Size())
		}
		// Rank order follows sorted members.
		want := map[int]int{1: 0, 3: 1, 4: 2, 6: 3}
		if sub.Rank() != want[c.Rank()] {
			t.Errorf("world %d: group rank = %d, want %d", c.Rank(), sub.Rank(), want[c.Rank()])
		}
		sum := sub.AllreduceI64(OpSum, []int64{int64(c.Rank())})
		if sum[0] != 1+3+4+6 {
			t.Errorf("group allreduce = %d", sum[0])
		}
	})
}

func TestCommCreateGroupSingle(t *testing.T) {
	runMPI(t, 4, func(r *Rank) {
		if r.ID() != 2 {
			return
		}
		sub := CommCreateGroup(r.CommWorld(), []int{2}, 600)
		if sub.Size() != 1 || sub.Rank() != 0 {
			t.Errorf("singleton group: size=%d rank=%d", sub.Size(), sub.Rank())
		}
	})
}

func TestCommCreateGroupOddSizes(t *testing.T) {
	for _, k := range []int{2, 3, 5, 7} {
		k := k
		t.Run(fmt.Sprintf("k%d", k), func(t *testing.T) {
			runMPI(t, 8, func(r *Rank) {
				members := make([]int, k)
				for i := range members {
					members[i] = i // first k ranks
				}
				if r.ID() >= k {
					return
				}
				sub := CommCreateGroup(r.CommWorld(), members, 700)
				if sub.Size() != k || sub.Rank() != r.ID() {
					t.Errorf("size=%d rank=%d, want %d/%d", sub.Size(), sub.Rank(), k, r.ID())
				}
				sum := sub.AllreduceI64(OpSum, []int64{1})
				if sum[0] != int64(k) {
					t.Errorf("allreduce over group = %d, want %d", sum[0], k)
				}
			})
		})
	}
}

func TestSelfComm(t *testing.T) {
	runMPI(t, 3, func(r *Rank) {
		s := r.Self()
		if s.Size() != 1 || s.Rank() != 0 {
			t.Error("self comm shape wrong")
		}
		out := s.AllreduceF64(OpSum, []float64{3.5})
		if out[0] != 3.5 {
			t.Errorf("self allreduce = %v", out)
		}
	})
}

func TestCodecsRoundTrip(t *testing.T) {
	f := []float64{0, -1.5, 3.25e10, -7}
	if got := bytesToF64s(f64sToBytes(f)); !floatsEq(got, f) {
		t.Errorf("f64 roundtrip = %v", got)
	}
	i := []int64{0, -1, 1 << 40, -(1 << 62)}
	got := bytesToI64s(i64sToBytes(i))
	for k := range i {
		if got[k] != i[k] {
			t.Errorf("i64 roundtrip = %v", got)
		}
	}
}

func floatsEq(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestReduceOps(t *testing.T) {
	d := []float64{1, 5}
	reduceF64(OpMin, d, []float64{3, 2})
	if d[0] != 1 || d[1] != 2 {
		t.Errorf("min: %v", d)
	}
	x := []int64{0b1010}
	reduceI64(OpBOR, x, []int64{0b0101})
	if x[0] != 0b1111 {
		t.Errorf("bor: %v", x)
	}
	y := []int64{7}
	reduceI64(OpReplace, y, []int64{9})
	if y[0] != 9 {
		t.Errorf("replace: %v", y)
	}
}

func TestCollectiveCostGrowsWithSize(t *testing.T) {
	// A barrier over 8 ranks must take longer than over 2.
	timeFor := func(n int) sim.Time {
		eng := sim.NewEngine()
		par := fabric.Params{
			Name: "t", Nodes: n, CoresPerNode: 1,
			LatencyNs: 1000, Bandwidth: 1e9, MsgOverhead: 100,
			LocalLatencyNs: 100, LocalBandwidth: 4e9,
			CopyRate: 4e9, Flops: 1e9, PageSize: 4096,
			BounceRate: 1e9, UnpinnedRate: 1e9, AccumRate: 1e9,
		}
		m, _ := fabric.NewMachine(eng, par, n)
		w := NewWorld(m, &platform.Tuning{BandwidthFrac: 1, OpOverheadNs: 200})
		if err := eng.Run(n, func(p *sim.Proc) {
			w.Rank(p).CommWorld().Barrier()
		}); err != nil {
			t.Fatal(err)
		}
		return eng.Stats().FinalTime
	}
	if t2, t8 := timeFor(2), timeFor(8); t8 <= t2 {
		t.Errorf("barrier(8)=%v should exceed barrier(2)=%v", t8, t2)
	}
}

func TestOpString(t *testing.T) {
	for op, want := range map[Op]string{OpSum: "SUM", OpMin: "MIN", OpMax: "MAX",
		OpProd: "PROD", OpBOR: "BOR", OpReplace: "REPLACE", OpNoOp: "NO_OP"} {
		if op.String() != want {
			t.Errorf("%d.String() = %q", int(op), op.String())
		}
	}
	if !strings.Contains(Op(99).String(), "99") {
		t.Error("unknown op should include its number")
	}
}

func TestAllgatherLargePayloadIntegrity(t *testing.T) {
	runMPI(t, 4, func(r *Rank) {
		c := r.CommWorld()
		mine := bytes.Repeat([]byte{byte(c.Rank())}, 10000)
		out := c.Allgather(mine)
		for i, p := range out {
			if len(p) != 10000 || p[0] != byte(i) || p[9999] != byte(i) {
				t.Errorf("chunk %d corrupted", i)
			}
		}
	})
}

func TestRendezvousLargeMessages(t *testing.T) {
	runMPI(t, 2, func(r *Rank) {
		c := r.CommWorld()
		big := bytes.Repeat([]byte{0xCD}, r.W.EagerLimit*3)
		big[0], big[len(big)-1] = 0x01, 0x02
		if c.Rank() == 0 {
			c.Send(1, 9, big)
		} else {
			data, st := c.Recv(0, 9)
			if st.Size != len(big) || data[0] != 0x01 || data[len(data)-1] != 0x02 {
				t.Errorf("rendezvous payload corrupted: size=%d", st.Size)
			}
		}
	})
}

func TestRendezvousSenderWaitsForReceiver(t *testing.T) {
	// The rendezvous body may only fly once the receiver posts: if the
	// receiver is late, the blocking send completes after it arrives.
	runMPI(t, 2, func(r *Rank) {
		c := r.CommWorld()
		big := make([]byte, r.W.EagerLimit*2)
		if c.Rank() == 0 {
			c.Send(1, 1, big)
			if r.P.Now() < 400*sim.Microsecond {
				t.Errorf("rendezvous send returned at %v, before the receiver posted at 400us", r.P.Now())
			}
		} else {
			r.P.Elapse(400 * sim.Microsecond)
			c.Recv(0, 1)
		}
	})
}

func TestSymmetricLargeSendrecvNoDeadlock(t *testing.T) {
	// Everyone sends a rendezvous-sized message around a ring using
	// Sendrecv — the pattern the collectives rely on.
	runMPI(t, 4, func(r *Rank) {
		c := r.CommWorld()
		big := bytes.Repeat([]byte{byte(c.Rank())}, r.W.EagerLimit+1)
		right := (c.Rank() + 1) % 4
		left := (c.Rank() + 3) % 4
		data, st := c.Sendrecv(right, 5, big, left, 5)
		if st.Size != len(big) || data[0] != byte(left) {
			t.Errorf("ring exchange got %d bytes from wrong source (%d)", st.Size, data[0])
		}
	})
}

func TestLargeCollectives(t *testing.T) {
	// Collectives must survive rendezvous-sized payloads.
	runMPI(t, 5, func(r *Rank) {
		c := r.CommWorld()
		mine := bytes.Repeat([]byte{byte('a' + c.Rank())}, r.W.EagerLimit+100)
		out := c.Allgather(mine)
		for i, part := range out {
			if len(part) != len(mine) || part[0] != byte('a'+i) {
				t.Fatalf("allgather chunk %d corrupted", i)
			}
		}
		big := make([]byte, r.W.EagerLimit*2)
		if c.Rank() == 2 {
			for i := range big {
				big[i] = byte(i % 251)
			}
		}
		got := c.Bcast(2, big)
		if got[100] != byte(100%251) || got[len(got)-1] != byte((len(got)-1)%251) {
			t.Error("large bcast corrupted")
		}
	})
}

func TestEagerLimitBoundary(t *testing.T) {
	runMPI(t, 2, func(r *Rank) {
		c := r.CommWorld()
		if c.Rank() == 0 {
			c.Send(1, 1, make([]byte, r.W.EagerLimit))   // eager
			c.Send(1, 2, make([]byte, r.W.EagerLimit+1)) // rendezvous
		} else {
			// Receive in reverse tag order: the rendezvous message can
			// only complete when its Recv posts, while the eager one is
			// already queued.
			d2, _ := c.Recv(0, 2)
			d1, _ := c.Recv(0, 1)
			if len(d2) != r.W.EagerLimit+1 || len(d1) != r.W.EagerLimit {
				t.Errorf("boundary sizes wrong: %d/%d", len(d1), len(d2))
			}
		}
	})
}

func TestRendezvousCheaperLatencyEagerHigherBandwidthAccounting(t *testing.T) {
	// Sanity: a rendezvous transfer costs at least one extra round trip
	// over an eager transfer of the same (hypothetical) size.
	var eagerT, rvT sim.Time
	runMPI(t, 2, func(r *Rank) {
		c := r.CommWorld()
		if c.Rank() == 0 {
			small := make([]byte, 1024)
			start := r.P.Now()
			c.Send(1, 1, small)
			// eager send returns immediately; measure at receiver side instead
			_ = start
		} else {
			start := r.P.Now()
			c.Recv(0, 1)
			eagerT = r.P.Now() - start
			start = r.P.Now()
			c.Recv(0, 2)
			rvT = r.P.Now() - start
		}
		if c.Rank() == 0 {
			c.Send(1, 2, make([]byte, r.W.EagerLimit*2))
		}
	})
	if rvT <= eagerT {
		t.Errorf("rendezvous recv (%v) should cost more than eager recv (%v)", rvT, eagerT)
	}
}
