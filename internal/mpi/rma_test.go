package mpi

import (
	"strings"
	"testing"

	"repro/internal/fabric"
	"repro/internal/sim"
)

// withWin runs body on n ranks after collectively creating a window of
// winBytes bytes per rank.
func withWin(t *testing.T, n, winBytes int, body func(r *Rank, win *Win, reg *fabric.Region)) *World {
	t.Helper()
	return runMPI(t, n, func(r *Rank) {
		reg := r.AllocMem(winBytes)
		win, err := WinCreate(r.CommWorld(), reg)
		if err != nil {
			t.Errorf("WinCreate: %v", err)
			return
		}
		body(r, win, reg)
		if err := win.Free(); err != nil {
			t.Errorf("Win.Free: %v", err)
		}
	})
}

func must(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}

func TestPutThenGetRoundTrip(t *testing.T) {
	withWin(t, 2, 64, func(r *Rank, win *Win, reg *fabric.Region) {
		if r.ID() == 0 {
			src := r.AllocMem(16)
			copy(src.Backing(), []byte("hello, window!!!"))
			must(t, win.Lock(LockExclusive, 1))
			must(t, win.Put(LocalBuf{Region: src, Off: 0, Type: TypeContiguous(16)}, 1, 8, TypeContiguous(16)))
			must(t, win.Unlock(1))

			dst := r.AllocMem(16)
			must(t, win.Lock(LockExclusive, 1))
			must(t, win.Get(LocalBuf{Region: dst, Off: 0, Type: TypeContiguous(16)}, 1, 8, TypeContiguous(16)))
			must(t, win.Unlock(1))
			if string(dst.Backing()) != "hello, window!!!" {
				t.Errorf("round trip got %q", dst.Backing())
			}
		}
		win.Comm().Barrier()
		if r.ID() == 1 && string(reg.Backing()[8:24]) != "hello, window!!!" {
			t.Errorf("target memory = %q", reg.Backing()[8:24])
		}
	})
}

func TestGetNotVisibleBeforeUnlock(t *testing.T) {
	withWin(t, 2, 8, func(r *Rank, win *Win, reg *fabric.Region) {
		if r.ID() == 1 {
			copy(reg.Backing(), []byte("ABCDEFGH"))
		}
		win.Comm().Barrier()
		if r.ID() == 0 {
			dst := r.AllocMem(8)
			must(t, win.Lock(LockShared, 1))
			must(t, win.Get(LocalBuf{Region: dst, Off: 0, Type: TypeContiguous(8)}, 1, 0, TypeContiguous(8)))
			// Nonblocking: data need not be here yet (it isn't, since
			// delivery takes latency).
			if string(dst.Backing()) == "ABCDEFGH" {
				t.Log("data arrived early; acceptable but unexpected with nonzero latency")
			}
			must(t, win.Unlock(1))
			if string(dst.Backing()) != "ABCDEFGH" {
				t.Errorf("after unlock: %q", dst.Backing())
			}
		}
	})
}

func TestAccumulateSums(t *testing.T) {
	withWin(t, 3, 32, func(r *Rank, win *Win, reg *fabric.Region) {
		// All ranks accumulate 4 float64s of value rank+1 into rank 0.
		src := r.AllocMem(32)
		vals := []float64{float64(r.ID() + 1), 1, 2, 3}
		copy(src.Backing(), f64sToBytes(vals))
		must(t, win.Lock(LockExclusive, 0))
		must(t, win.Accumulate(LocalBuf{Region: src, Off: 0, Type: TypeContiguous(32)}, OpSum, 0, 0, TypeContiguous(32)))
		must(t, win.Unlock(0))
		win.Comm().Barrier()
		if r.ID() == 0 {
			got := bytesToF64s(reg.Backing())
			if got[0] != 1+2+3 || got[1] != 3 || got[3] != 9 {
				t.Errorf("accumulated = %v", got)
			}
		}
	})
}

func TestAccumulateReplaceActsAsPut(t *testing.T) {
	withWin(t, 2, 16, func(r *Rank, win *Win, reg *fabric.Region) {
		if r.ID() == 0 {
			src := r.AllocMem(16)
			copy(src.Backing(), f64sToBytes([]float64{4.5, -2}))
			must(t, win.Lock(LockExclusive, 1))
			must(t, win.Accumulate(LocalBuf{Region: src, Off: 0, Type: TypeContiguous(16)}, OpReplace, 1, 0, TypeContiguous(16)))
			must(t, win.Unlock(1))
		}
		win.Comm().Barrier()
		if r.ID() == 1 {
			got := bytesToF64s(reg.Backing())
			if got[0] != 4.5 || got[1] != -2 {
				t.Errorf("replace = %v", got)
			}
		}
	})
}

func TestStridedPutWithDatatypes(t *testing.T) {
	withWin(t, 2, 100, func(r *Rank, win *Win, reg *fabric.Region) {
		if r.ID() == 0 {
			// Origin: 3 blocks of 4 bytes, stride 8. Target: 3 blocks of
			// 4 bytes, stride 10, at displacement 5.
			src := r.AllocMem(24)
			for i := range src.Backing() {
				src.Backing()[i] = byte(i)
			}
			ot := TypeVector(3, 4, 8)
			tt := TypeVector(3, 4, 10)
			must(t, win.Lock(LockExclusive, 1))
			must(t, win.Put(LocalBuf{Region: src, Off: 0, Type: ot}, 1, 5, tt))
			must(t, win.Unlock(1))
		}
		win.Comm().Barrier()
		if r.ID() == 1 {
			// Origin bytes at 0-3, 8-11, 16-19 land at 5-8, 15-18, 25-28.
			wantPairs := [][2]int{{5, 0}, {15, 8}, {25, 16}}
			for _, wp := range wantPairs {
				for k := 0; k < 4; k++ {
					if reg.Backing()[wp[0]+k] != byte(wp[1]+k) {
						t.Fatalf("byte at %d = %d, want %d", wp[0]+k, reg.Backing()[wp[0]+k], wp[1]+k)
					}
				}
			}
			if reg.Backing()[9] != 0 || reg.Backing()[4] != 0 {
				t.Error("gap bytes were written")
			}
		}
	})
}

func TestLockRequiresNoOpenEpoch(t *testing.T) {
	withWin(t, 3, 16, func(r *Rank, win *Win, reg *fabric.Region) {
		if r.ID() == 0 {
			must(t, win.Lock(LockExclusive, 1))
			if err := win.Lock(LockExclusive, 2); err == nil {
				t.Error("second lock on the same window accepted (MPI-2 forbids)")
			}
			must(t, win.Unlock(1))
		}
	})
}

func TestOpsRequireEpoch(t *testing.T) {
	withWin(t, 2, 16, func(r *Rank, win *Win, reg *fabric.Region) {
		if r.ID() == 0 {
			src := r.AllocMem(8)
			err := win.Put(LocalBuf{Region: src, Off: 0, Type: TypeContiguous(8)}, 1, 0, TypeContiguous(8))
			if err == nil {
				t.Error("Put without epoch accepted")
			}
		}
	})
}

func TestUnlockWithoutLockFails(t *testing.T) {
	withWin(t, 2, 16, func(r *Rank, win *Win, reg *fabric.Region) {
		if r.ID() == 0 {
			if err := win.Unlock(1); err == nil {
				t.Error("Unlock without Lock accepted")
			}
		}
	})
}

func TestExclusiveLockSerializesAccess(t *testing.T) {
	// Both ranks 0 and 1 increment a counter at rank 2 under exclusive
	// locks using get+put in separate epochs... that is racy; instead
	// they each do read-modify-write *within one* exclusive epoch using
	// separate non-overlapping slots and we verify lock wait times
	// serialize.
	var holds [2][2]sim.Time
	withWin(t, 3, 16, func(r *Rank, win *Win, reg *fabric.Region) {
		if r.ID() < 2 {
			src := r.AllocMem(8)
			must(t, win.Lock(LockExclusive, 2))
			start := r.P.Now()
			r.P.Elapse(50 * sim.Microsecond) // hold the lock a while
			must(t, win.Put(LocalBuf{Region: src, Off: 0, Type: TypeContiguous(8)}, 2, r.ID()*8, TypeContiguous(8)))
			must(t, win.Unlock(2))
			holds[r.ID()] = [2]sim.Time{start, r.P.Now()}
		}
	})
	a, b := holds[0], holds[1]
	if a[0] > b[0] {
		a, b = b, a
	}
	if b[0] < a[1]-sim.Microsecond*5 {
		t.Errorf("exclusive epochs overlap: [%v,%v] and [%v,%v]", a[0], a[1], b[0], b[1])
	}
}

func TestSharedLocksOverlap(t *testing.T) {
	// Two shared-lock readers should hold epochs concurrently.
	var start, end [2]sim.Time
	withWin(t, 3, 16, func(r *Rank, win *Win, reg *fabric.Region) {
		if r.ID() < 2 {
			dst := r.AllocMem(8)
			must(t, win.Lock(LockShared, 2))
			start[r.ID()] = r.P.Now()
			r.P.Elapse(100 * sim.Microsecond)
			must(t, win.Get(LocalBuf{Region: dst, Off: 0, Type: TypeContiguous(8)}, 2, 0, TypeContiguous(8)))
			must(t, win.Unlock(2))
			end[r.ID()] = r.P.Now()
		}
	})
	// Overlap: each started before the other ended.
	if !(start[0] < end[1] && start[1] < end[0]) {
		t.Errorf("shared epochs did not overlap: [%v,%v] vs [%v,%v]", start[0], end[0], start[1], end[1])
	}
}

func TestConflictingOpsInEpochRejected(t *testing.T) {
	withWin(t, 2, 64, func(r *Rank, win *Win, reg *fabric.Region) {
		if r.ID() != 0 {
			return
		}
		src := r.AllocMem(16)
		must(t, win.Lock(LockExclusive, 1))
		must(t, win.Put(LocalBuf{Region: src, Off: 0, Type: TypeContiguous(16)}, 1, 0, TypeContiguous(16)))
		// Overlapping put in the same epoch: conflicting.
		err := win.Put(LocalBuf{Region: src, Off: 0, Type: TypeContiguous(16)}, 1, 8, TypeContiguous(16))
		if err == nil || !strings.Contains(err.Error(), "conflicting") {
			t.Errorf("overlapping puts accepted: %v", err)
		}
		// Get overlapping the put: also conflicting.
		err = win.Get(LocalBuf{Region: src, Off: 0, Type: TypeContiguous(16)}, 1, 4, TypeContiguous(16))
		if err == nil {
			t.Error("get overlapping put accepted")
		}
		must(t, win.Unlock(1))
	})
}

func TestNonConflictingOpsInEpochAllowed(t *testing.T) {
	withWin(t, 2, 64, func(r *Rank, win *Win, reg *fabric.Region) {
		if r.ID() != 0 {
			return
		}
		src := r.AllocMem(32)
		must(t, win.Lock(LockExclusive, 1))
		must(t, win.Put(LocalBuf{Region: src, Off: 0, Type: TypeContiguous(8)}, 1, 0, TypeContiguous(8)))
		must(t, win.Put(LocalBuf{Region: src, Off: 8, Type: TypeContiguous(8)}, 1, 8, TypeContiguous(8)))
		must(t, win.Get(LocalBuf{Region: src, Off: 16, Type: TypeContiguous(8)}, 1, 16, TypeContiguous(8)))
		must(t, win.Unlock(1))
	})
}

func TestSameOpAccumulatesMayOverlap(t *testing.T) {
	withWin(t, 2, 16, func(r *Rank, win *Win, reg *fabric.Region) {
		if r.ID() != 0 {
			return
		}
		src := r.AllocMem(16)
		copy(src.Backing(), f64sToBytes([]float64{1, 1}))
		must(t, win.Lock(LockExclusive, 1))
		must(t, win.Accumulate(LocalBuf{Region: src, Off: 0, Type: TypeContiguous(16)}, OpSum, 1, 0, TypeContiguous(16)))
		must(t, win.Accumulate(LocalBuf{Region: src, Off: 0, Type: TypeContiguous(16)}, OpSum, 1, 0, TypeContiguous(16)))
		must(t, win.Unlock(1))
		dst := r.AllocMem(16)
		must(t, win.Lock(LockShared, 1))
		must(t, win.Get(LocalBuf{Region: dst, Off: 0, Type: TypeContiguous(16)}, 1, 0, TypeContiguous(16)))
		must(t, win.Unlock(1))
		got := bytesToF64s(dst.Backing())
		if got[0] != 2 || got[1] != 2 {
			t.Errorf("double accumulate = %v", got)
		}
	})
}

func TestAccessOutsideWindowRejected(t *testing.T) {
	withWin(t, 2, 16, func(r *Rank, win *Win, reg *fabric.Region) {
		if r.ID() != 0 {
			return
		}
		src := r.AllocMem(32)
		must(t, win.Lock(LockExclusive, 1))
		if err := win.Put(LocalBuf{Region: src, Off: 0, Type: TypeContiguous(32)}, 1, 0, TypeContiguous(32)); err == nil {
			t.Error("put past window end accepted")
		}
		must(t, win.Unlock(1))
	})
}

func TestSizeMismatchRejected(t *testing.T) {
	withWin(t, 2, 64, func(r *Rank, win *Win, reg *fabric.Region) {
		if r.ID() != 0 {
			return
		}
		src := r.AllocMem(32)
		must(t, win.Lock(LockExclusive, 1))
		if err := win.Put(LocalBuf{Region: src, Off: 0, Type: TypeContiguous(16)}, 1, 0, TypeContiguous(8)); err == nil {
			t.Error("origin/target size mismatch accepted")
		}
		must(t, win.Unlock(1))
	})
}

func TestEpochCompletionSemantics(t *testing.T) {
	// Unlock must not return before the transferred data is in place.
	withWin(t, 2, 1<<20, func(r *Rank, win *Win, reg *fabric.Region) {
		if r.ID() == 0 {
			src := r.AllocMem(1 << 20)
			for i := range src.Backing() {
				src.Backing()[i] = byte(i * 31)
			}
			must(t, win.Lock(LockExclusive, 1))
			must(t, win.Put(LocalBuf{Region: src, Off: 0, Type: TypeContiguous(1 << 20)}, 1, 0, TypeContiguous(1<<20)))
			must(t, win.Unlock(1))
			// Immediately after unlock the remote memory is final:
			// verify through a fresh get.
			dst := r.AllocMem(1 << 20)
			must(t, win.Lock(LockShared, 1))
			must(t, win.Get(LocalBuf{Region: dst, Off: 0, Type: TypeContiguous(1 << 20)}, 1, 0, TypeContiguous(1<<20)))
			must(t, win.Unlock(1))
			for i := 0; i < len(dst.Backing()); i += 4097 {
				if dst.Backing()[i] != byte(i*31) {
					t.Fatalf("byte %d = %d, want %d", i, dst.Backing()[i], byte(i*31))
				}
			}
		}
	})
}

func TestWindowCountersAdvance(t *testing.T) {
	w := withWin(t, 2, 64, func(r *Rank, win *Win, reg *fabric.Region) {
		if r.ID() == 0 {
			src := r.AllocMem(8)
			must(t, win.Lock(LockExclusive, 1))
			must(t, win.Put(LocalBuf{Region: src, Off: 0, Type: TypeContiguous(8)}, 1, 0, TypeContiguous(8)))
			must(t, win.Unlock(1))
		}
	})
	if w.Epochs == 0 || w.RMAOps == 0 {
		t.Errorf("counters: epochs=%d rmaops=%d", w.Epochs, w.RMAOps)
	}
}

func TestMPI3RequiresEnable(t *testing.T) {
	withWin(t, 2, 16, func(r *Rank, win *Win, reg *fabric.Region) {
		if r.ID() != 0 {
			return
		}
		if err := win.LockAll(); err == nil {
			t.Error("LockAll without MPI-3 accepted")
		}
		if _, err := win.FetchAndOp(OpSum, 1, 1, 0); err == nil {
			t.Error("FetchAndOp without MPI-3 accepted")
		}
	})
}

func TestMPI3FetchAndOp(t *testing.T) {
	runMPI(t, 3, func(r *Rank) {
		r.W.EnableMPI3()
		reg := r.AllocMem(16)
		win, err := WinCreate(r.CommWorld(), reg)
		must(t, err)
		must(t, win.LockAll())
		// All ranks add their (rank+1) to the counter at rank 0.
		old, err := win.FetchAndOp(OpSum, int64(r.ID()+1), 0, 0)
		must(t, err)
		if old < 0 || old > 6 {
			t.Errorf("old value out of range: %d", old)
		}
		must(t, win.UnlockAll())
		win.Comm().Barrier()
		if r.ID() == 0 {
			got := bytesToI64s(reg.Backing()[:8])[0]
			if got != 1+2+3 {
				t.Errorf("counter = %d, want 6", got)
			}
		}
		must(t, win.Free())
	})
}

func TestMPI3FetchAndOpAtomicity(t *testing.T) {
	// Every rank increments by 1 repeatedly; the set of observed old
	// values must be exactly 0..total-1 (each seen once).
	const per = 5
	seen := map[int64]int{}
	runMPI(t, 4, func(r *Rank) {
		r.W.EnableMPI3()
		reg := r.AllocMem(8)
		win, err := WinCreate(r.CommWorld(), reg)
		must(t, err)
		must(t, win.LockAll())
		for i := 0; i < per; i++ {
			old, err := win.FetchAndOp(OpSum, 1, 0, 0)
			must(t, err)
			seen[old]++
		}
		must(t, win.UnlockAll())
		must(t, win.Free())
	})
	if len(seen) != 4*per {
		t.Fatalf("observed %d distinct old values, want %d", len(seen), 4*per)
	}
	for v, n := range seen {
		if n != 1 || v < 0 || v >= 4*per {
			t.Fatalf("old value %d seen %d times", v, n)
		}
	}
}

func TestMPI3CompareAndSwap(t *testing.T) {
	runMPI(t, 2, func(r *Rank) {
		r.W.EnableMPI3()
		reg := r.AllocMem(8)
		win, err := WinCreate(r.CommWorld(), reg)
		must(t, err)
		if r.ID() == 0 {
			must(t, win.LockAll())
			old, err := win.CompareAndSwap(0, 42, 1, 0)
			must(t, err)
			if old != 0 {
				t.Errorf("first CAS old = %d", old)
			}
			old, err = win.CompareAndSwap(0, 99, 1, 0) // should fail: value is 42
			must(t, err)
			if old != 42 {
				t.Errorf("second CAS old = %d, want 42", old)
			}
			must(t, win.UnlockAll())
		}
		win.Comm().Barrier()
		if r.ID() == 1 {
			got := bytesToI64s(reg.Backing())[0]
			if got != 42 {
				t.Errorf("value = %d, want 42 (failed CAS must not write)", got)
			}
		}
		must(t, win.Free())
	})
}

func TestMPI3RPutRGetFlush(t *testing.T) {
	runMPI(t, 2, func(r *Rank) {
		r.W.EnableMPI3()
		reg := r.AllocMem(64)
		win, err := WinCreate(r.CommWorld(), reg)
		must(t, err)
		if r.ID() == 0 {
			src := r.AllocMem(8)
			copy(src.Backing(), []byte("RMA3!!!!"))
			must(t, win.LockAll())
			req, err := win.RPut(LocalBuf{Region: src, Off: 0, Type: TypeContiguous(8)}, 1, 0, TypeContiguous(8))
			must(t, err)
			req.Wait()
			must(t, win.Flush(1))
			dst := r.AllocMem(8)
			greq, err := win.RGet(LocalBuf{Region: dst, Off: 0, Type: TypeContiguous(8)}, 1, 0, TypeContiguous(8))
			must(t, err)
			greq.Wait()
			must(t, win.Flush(1))
			if string(dst.Backing()) != "RMA3!!!!" {
				t.Errorf("rget = %q", dst.Backing())
			}
			must(t, win.UnlockAll())
		}
		win.Comm().Barrier()
		must(t, win.Free())
	})
}

func TestExclusiveQueueFairness(t *testing.T) {
	// Many contenders for one exclusive lock all eventually get it.
	const n = 6
	counts := 0
	withWin(t, n, 8, func(r *Rank, win *Win, reg *fabric.Region) {
		src := r.AllocMem(8)
		must(t, win.Lock(LockExclusive, 0))
		must(t, win.Put(LocalBuf{Region: src, Off: 0, Type: TypeContiguous(8)}, 0, 0, TypeContiguous(8)))
		must(t, win.Unlock(0))
		counts++
	})
	if counts != n {
		t.Errorf("only %d ranks completed", counts)
	}
}

func TestWinCreateZeroSizeRank(t *testing.T) {
	runMPI(t, 3, func(r *Rank) {
		var reg *fabric.Region
		if r.ID() != 1 {
			reg = r.AllocMem(32)
		} // rank 1 exposes nothing
		win, err := WinCreate(r.CommWorld(), reg)
		must(t, err)
		if win.Size(1) != 0 || win.Size(0) != 32 {
			t.Errorf("sizes: %d %d", win.Size(0), win.Size(1))
		}
		if r.ID() == 0 {
			src := r.AllocMem(8)
			must(t, win.Lock(LockExclusive, 2))
			must(t, win.Put(LocalBuf{Region: src, Off: 0, Type: TypeContiguous(8)}, 2, 0, TypeContiguous(8)))
			must(t, win.Unlock(2))
		}
		must(t, win.Free())
	})
}

func TestCrossOriginSharedConflictDetected(t *testing.T) {
	// Two origins hold shared locks on one target and issue overlapping
	// puts: MPI-2 declares this erroneous, and the checking mode must
	// detect it (SectionIII).
	withWin(t, 3, 64, func(r *Rank, win *Win, reg *fabric.Region) {
		if r.ID() == 2 {
			return
		}
		src := r.AllocMem(16)
		must(t, win.Lock(LockShared, 2))
		// Rank 0 issues early and holds its epoch open long enough for
		// rank 1's overlapping put to be issued while both are active.
		if r.ID() == 0 {
			must(t, win.Put(LocalBuf{Region: src, Off: 0, Type: TypeContiguous(16)}, 2, 4, TypeContiguous(16)))
			r.P.Elapse(100 * sim.Microsecond)
			must(t, win.Unlock(2))
			return
		}
		r.P.Elapse(30 * sim.Microsecond)
		err := win.Put(LocalBuf{Region: src, Off: 0, Type: TypeContiguous(16)}, 2, 4, TypeContiguous(16))
		err2 := win.Unlock(2)
		if err == nil && err2 == nil {
			t.Error("overlapping shared-lock puts from two origins were not detected")
		}
	})
}

func TestCrossOriginSharedReadsAllowed(t *testing.T) {
	withWin(t, 3, 64, func(r *Rank, win *Win, reg *fabric.Region) {
		if r.ID() == 2 {
			return
		}
		dst := r.AllocMem(16)
		must(t, win.Lock(LockShared, 2))
		r.P.Elapse(sim.Time(10+r.ID()) * sim.Microsecond)
		must(t, win.Get(LocalBuf{Region: dst, Off: 0, Type: TypeContiguous(16)}, 2, 4, TypeContiguous(16)))
		must(t, win.Unlock(2))
	})
}

func TestCrossOriginSharedAccumulatesAllowed(t *testing.T) {
	// Same-op accumulates may overlap even from different origins.
	withWin(t, 3, 16, func(r *Rank, win *Win, reg *fabric.Region) {
		if r.ID() == 2 {
			return
		}
		src := r.AllocMem(16)
		copy(src.Backing(), f64sToBytes([]float64{1, 2}))
		must(t, win.Lock(LockShared, 2))
		r.P.Elapse(sim.Time(10+r.ID()) * sim.Microsecond)
		must(t, win.Accumulate(LocalBuf{Region: src, Off: 0, Type: TypeContiguous(16)}, OpSum, 2, 0, TypeContiguous(16)))
		must(t, win.Unlock(2))
	})
}

func TestActiveTargetFenceEpochs(t *testing.T) {
	// SectionIII's active mode: collective fences bracket access
	// epochs; everyone may put without locks, and data is visible
	// after the closing fence.
	withWin(t, 4, 64, func(r *Rank, win *Win, reg *fabric.Region) {
		must(t, win.FenceSync()) // open the epoch
		src := r.AllocMem(8)
		copy(src.Backing(), []byte{byte(r.ID() + 1)})
		next := (r.ID() + 1) % 4
		must(t, win.FPut(LocalBuf{Region: src, Off: 0, Type: TypeContiguous(8)}, next, 0, TypeContiguous(8)))
		must(t, win.FenceSync()) // complete the epoch
		prev := byte((r.ID()+3)%4 + 1)
		if reg.Backing()[0] != prev {
			t.Errorf("rank %d: window byte = %d, want %d after fence", r.ID(), reg.Backing()[0], prev)
		}
		// Second epoch: everyone accumulates into rank 0.
		fsrc := r.AllocMem(8)
		copy(fsrc.Backing(), f64sToBytes([]float64{1}))
		must(t, win.FAccumulate(LocalBuf{Region: fsrc, Off: 0, Type: TypeContiguous(8)}, OpSum, 0, 8, TypeContiguous(8)))
		must(t, win.FenceExit())
		if r.ID() == 0 {
			if got := bytesToF64s(reg.Backing()[8:16])[0]; got != 4 {
				t.Errorf("fenced accumulate = %v, want 4", got)
			}
		}
	})
}

func TestActiveModeExclusions(t *testing.T) {
	withWin(t, 2, 16, func(r *Rank, win *Win, reg *fabric.Region) {
		src := r.AllocMem(8)
		if err := win.FPut(LocalBuf{Region: src, Off: 0, Type: TypeContiguous(8)}, 1, 0, TypeContiguous(8)); err == nil {
			t.Error("FPut outside a fence epoch accepted")
		}
		must(t, win.FenceSync())
		if err := win.Lock(LockExclusive, 1); err == nil {
			t.Error("passive lock inside an active epoch accepted")
			must(t, win.Unlock(1))
		}
		must(t, win.FenceExit())
		// After leaving active mode, passive locks work again.
		must(t, win.Lock(LockExclusive, 1))
		must(t, win.Unlock(1))
	})
}

func TestFenceVsLockAllExclusion(t *testing.T) {
	runMPI(t, 2, func(r *Rank) {
		r.W.EnableMPI3()
		reg := r.AllocMem(16)
		win, err := WinCreate(r.CommWorld(), reg)
		must(t, err)
		must(t, win.LockAll())
		if err := win.FenceSync(); err == nil {
			t.Error("Win_fence while in lock-all accepted")
		}
		must(t, win.UnlockAll())
		must(t, win.Free())
	})
}
