package mpi

import (
	"fmt"

	"repro/internal/fabric"
	"repro/internal/sim"
)

// Status describes a completed receive.
type Status struct {
	Source int // rank in the receiving communicator
	Tag    int
	Size   int
}

// p2pPayload carries a point-to-point message body plus its matching
// context id.
type p2pPayload struct {
	cid  int
	data []byte
}

// rtsPayload announces a rendezvous send (request-to-send).
type rtsPayload struct {
	cid  int
	rvID int
	size int
}

// ctsPayload grants a rendezvous send (clear-to-send).
type ctsPayload struct{ rvID int }

// rvDataPayload carries the rendezvous body.
type rvDataPayload struct {
	cid  int
	rvID int
	data []byte
}

// rvState is the sender-side state of one rendezvous transfer.
type rvState struct {
	done   bool
	waiter *sim.Proc
}

// Send transmits data to rank `to` of the communicator with the given
// tag. Messages up to the world's eager limit are buffered (the call
// returns once the message is handed to the NIC; data is copied).
// Larger messages use the rendezvous protocol: a request-to-send, the
// receiver's clear-to-send once a matching receive is posted, then the
// body — the blocking call returns when the body has been handed off.
func (c *Comm) Send(to, tag int, data []byte) {
	if to < 0 || to >= c.Size() {
		panic(fmt.Sprintf("mpi: Send to bad rank %d of comm size %d", to, c.Size()))
	}
	if tag < 0 {
		panic("mpi: Send with negative tag")
	}
	c.r.opOverhead()
	if len(data) <= c.r.W.EagerLimit {
		c.sendEager(to, tag, data)
		return
	}
	st := c.sendRendezvous(to, tag, data)
	// Blocking semantics: wait for local completion (body handed off).
	for !st.done {
		st.waiter = c.r.P
		c.r.P.Park("mpi.SendRendezvous")
	}
}

func (c *Comm) sendEager(to, tag int, data []byte) {
	body := append([]byte(nil), data...)
	msg := &fabric.Msg{
		From:    c.r.ID(),
		Kind:    kindP2P,
		Tag:     tag,
		Size:    len(data),
		Payload: &p2pPayload{cid: c.cid, data: body},
	}
	c.r.W.M.Deliver(c.group[to], msg, fabric.XferOpt{})
}

// sendRendezvous starts the event-driven rendezvous state machine and
// returns its state; completion is independent of the calling rank's
// control flow, so symmetric exchanges (everyone sending large
// messages at once) cannot deadlock.
func (c *Comm) sendRendezvous(to, tag int, data []byte) *rvState {
	w := c.r.W
	m := w.M
	me := c.r.ID()
	dest := c.group[to]
	body := append([]byte(nil), data...)
	w.rvSeq++
	rvID := w.rvSeq
	st := &rvState{}
	// Request to send (control message).
	m.Deliver(dest, &fabric.Msg{
		From: me, Kind: kindRendezvousRTS, Tag: tag, Size: 0,
		Payload: &rtsPayload{cid: c.cid, rvID: rvID, size: len(body)},
	}, fabric.XferOpt{NoNIC: true})
	// When the clear-to-send arrives, ship the body (event context).
	m.OnRecv(me, func(msg *fabric.Msg) bool {
		pl, ok := msg.Payload.(*ctsPayload)
		return ok && msg.Kind == kindRendezvousCTS && pl.rvID == rvID
	}, func(*fabric.Msg) {
		m.Deliver(dest, &fabric.Msg{
			From: me, Kind: kindRendezvousData, Tag: tag, Size: len(body),
			Payload: &rvDataPayload{cid: c.cid, rvID: rvID, data: body},
		}, fabric.XferOpt{})
		st.done = true
		if st.waiter != nil {
			// The blocked sender is released by the clear-to-send whose
			// handler this is: its delivery edge is the wake cause.
			if cr := m.Obs.Crit(); cr != nil {
				cr.WakeAmbient(st.waiter.ID())
			}
			m.Eng.Unpark(st.waiter)
			st.waiter = nil
		}
	})
	return st
}

// match builds a predicate for (cid, src, tag) with wildcard support;
// it matches eager bodies and, when includeRTS is set, rendezvous
// announcements. src is a communicator rank or AnySource.
func (c *Comm) match(src, tag int, includeRTS bool) func(*fabric.Msg) bool {
	var worldSrc int
	if src != AnySource {
		if src < 0 || src >= c.Size() {
			panic(fmt.Sprintf("mpi: Recv from bad rank %d of comm size %d", src, c.Size()))
		}
		worldSrc = c.group[src]
	}
	return func(m *fabric.Msg) bool {
		var cid int
		switch pl := m.Payload.(type) {
		case *p2pPayload:
			if m.Kind != kindP2P {
				return false
			}
			cid = pl.cid
		case *rtsPayload:
			if !includeRTS {
				return false
			}
			cid = pl.cid
		default:
			return false
		}
		if cid != c.cid {
			return false
		}
		if src != AnySource && m.From != worldSrc {
			return false
		}
		if tag != AnyTag && m.Tag != tag {
			return false
		}
		return true
	}
}

// Recv blocks until a message from src (or AnySource) with tag (or
// AnyTag) arrives on this communicator, and returns its payload. A
// matched rendezvous announcement triggers the clear-to-send and waits
// for the body.
func (c *Comm) Recv(src, tag int) ([]byte, Status) {
	c.r.opOverhead()
	m := c.r.W.M.Recv(c.r.P, c.match(src, tag, true))
	switch pl := m.Payload.(type) {
	case *p2pPayload:
		return pl.data, Status{Source: c.rankOfWorld(m.From), Tag: m.Tag, Size: m.Size}
	case *rtsPayload:
		return c.completeRendezvous(m, pl)
	default:
		panic("mpi: Recv matched an unexpected payload")
	}
}

// completeRendezvous answers an RTS with a CTS and receives the body.
func (c *Comm) completeRendezvous(rts *fabric.Msg, pl *rtsPayload) ([]byte, Status) {
	machine := c.r.W.M
	machine.Deliver(rts.From, &fabric.Msg{
		From: c.r.ID(), Kind: kindRendezvousCTS, Size: 0,
		Payload: &ctsPayload{rvID: pl.rvID},
	}, fabric.XferOpt{NoNIC: true})
	data := machine.Recv(c.r.P, func(m *fabric.Msg) bool {
		dp, ok := m.Payload.(*rvDataPayload)
		return ok && m.Kind == kindRendezvousData && dp.rvID == pl.rvID
	})
	dp := data.Payload.(*rvDataPayload)
	return dp.data, Status{Source: c.rankOfWorld(data.From), Tag: data.Tag, Size: data.Size}
}

// TryRecv receives a matching *eager* message if one is already
// queued. Rendezvous transfers require the blocking Recv (or a Wait on
// an Irecv request), since completing one entails a handshake.
func (c *Comm) TryRecv(src, tag int) ([]byte, Status, bool) {
	m, ok := c.r.W.M.TryRecv(c.r.P, c.match(src, tag, false))
	if !ok {
		return nil, Status{}, false
	}
	pl := m.Payload.(*p2pPayload)
	return pl.data, Status{Source: c.rankOfWorld(m.From), Tag: m.Tag, Size: m.Size}, true
}

// Sendrecv performs a combined send and receive, safe against cyclic
// patterns: the send's completion is event-driven, so posting the
// receive below lets a symmetric large-message exchange progress.
func (c *Comm) Sendrecv(to, sendTag int, data []byte, from, recvTag int) ([]byte, Status) {
	c.r.opOverhead()
	var st *rvState
	if len(data) <= c.r.W.EagerLimit {
		c.sendEager(to, sendTag, data)
	} else {
		st = c.sendRendezvous(to, sendTag, data)
	}
	out, status := c.Recv(from, recvTag)
	if st != nil {
		for !st.done {
			st.waiter = c.r.P
			c.r.P.Park("mpi.SendrecvFlush")
		}
	}
	return out, status
}

// Request is a handle for a nonblocking receive; sends complete
// immediately under the buffered-eager model.
type Request struct {
	c    *Comm
	src  int
	tag  int
	done bool
	data []byte
	st   Status
}

// Irecv posts a nonblocking receive.
func (c *Comm) Irecv(src, tag int) *Request {
	return &Request{c: c, src: src, tag: tag}
}

// Isend starts a buffered send; the returned request is already
// complete (local completion for an eager send).
func (c *Comm) Isend(to, tag int, data []byte) *Request {
	c.Send(to, tag, data)
	return &Request{c: c, done: true}
}

// Test polls for completion without blocking.
func (r *Request) Test() bool {
	if r.done {
		return true
	}
	if data, st, ok := r.c.TryRecv(r.src, r.tag); ok {
		r.data, r.st, r.done = data, st, true
	}
	return r.done
}

// Wait blocks until the request completes and returns the received
// payload (nil for send requests).
func (r *Request) Wait() ([]byte, Status) {
	if !r.done {
		r.data, r.st = r.c.Recv(r.src, r.tag)
		r.done = true
	}
	return r.data, r.st
}

// WaitAll completes a set of requests.
func WaitAll(reqs ...*Request) {
	for _, r := range reqs {
		r.Wait()
	}
}

// rankOfWorld translates a world rank into this communicator's rank,
// or -1 when the rank is not a member.
func (c *Comm) rankOfWorld(world int) int {
	for i, g := range c.group {
		if g == world {
			return i
		}
	}
	return -1
}
