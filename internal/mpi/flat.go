package mpi

// The datatype flatten cache. MPICH-class MPI implementations do not
// re-walk a derived datatype's typemap on every use: the first use
// flattens the type into a dense (offset, length) run list that every
// later pack, unpack, span check, and segment count reads directly.
// This file is the simulator's version of that optimization. Each
// noncontiguous datatype lazily builds one Flat — a value-typed
// []Segment plus cached Size/Span/NumSegs — and memoizes it on the
// type, so the closure-odometer enumeration in Segments runs at most
// once per datatype instance. Iterating f.Segs is allocation-free, and
// the pack/unpack kernels in pack.go are plain copy loops over it.
//
// The cooperative scheduler guarantees at most one goroutine touches a
// datatype at a time (rank handoffs go through channels, so the lazy
// build is ordered by happens-before edges), which keeps the memo a
// plain field rather than a sync.Once.

// Segment is one contiguous run of a flattened datatype, relative to
// the base address.
type Segment struct {
	Off, N int
}

// Flat is the flattened form of a datatype: every contiguous run in
// ascending enumeration order, with the aggregate properties cached.
type Flat struct {
	// Segs holds every contiguous run. Range over it directly for
	// allocation-free iteration.
	Segs []Segment

	size int
	span int
}

// Size is the number of data bytes the flattened type describes.
func (f *Flat) Size() int { return f.size }

// Span is one past the highest byte touched.
func (f *Flat) Span() int { return f.span }

// NumSegs is the number of contiguous runs.
func (f *Flat) NumSegs() int { return len(f.Segs) }

// flattener is implemented by datatypes that memoize their Flat.
type flattener interface {
	flat() *Flat
}

// Flatten returns the flattened form of t, memoized on the datatype
// when it supports caching (all noncontiguous types built by this
// package do) and built fresh otherwise.
func Flatten(t Datatype) *Flat {
	if f, ok := t.(flattener); ok {
		return f.flat()
	}
	return buildFlat(t)
}

// buildFlat enumerates t's segments once into a Flat.
func buildFlat(t Datatype) *Flat {
	f := &Flat{Segs: make([]Segment, 0, t.NumSegs())}
	t.Segments(func(off, n int) {
		f.Segs = append(f.Segs, Segment{Off: off, N: n})
		f.size += n
		if off+n > f.span {
			f.span = off + n
		}
	})
	return f
}
