package mpi

import (
	"fmt"

	"repro/internal/sim"
)

// Active-target synchronization (SectionIII): MPI_Win_fence separates
// collective access epochs in which every rank may issue RMA to every
// other without locks. The paper's ARMCI-MPI cannot use this mode —
// active-target synchronization requires the target's participation,
// which breaks ARMCI's asynchronous one-sided model — but it completes
// the MPI RMA surface and lets tests contrast the two modes.

// FenceSync is MPI_Win_fence: collective over the window's
// communicator. The first call opens an active access epoch; each
// subsequent call completes all operations issued since the previous
// fence (locally and remotely) and opens the next epoch. Active epochs
// cannot be mixed with passive-target locks or lock-all.
func (w *Win) FenceSync() error {
	if w.cur != nil {
		return fmt.Errorf("mpi: Win_fence while a passive epoch is open on target %d", w.cur.target)
	}
	if w.all != nil {
		return fmt.Errorf("mpi: Win_fence while in lock-all mode")
	}
	r := w.comm.r
	r.opOverhead()
	// Complete everything issued in the closing epoch.
	var last sim.Time
	for _, ep := range w.fenceEps {
		for {
			horizon := ep.completeAt
			if horizon <= last && horizon <= r.P.Now() {
				break
			}
			r.W.M.SleepUntil(r.P, horizon)
			if ep.completeAt <= horizon {
				break
			}
		}
		if ep.completeAt > last {
			last = ep.completeAt
		}
	}
	r.W.M.SleepUntil(r.P, last)
	w.fenceEps = nil
	// The fence is collective: no rank enters the next epoch until all
	// have completed the previous one.
	w.comm.Barrier()
	w.fenced = true
	return w.state.err
}

// FenceExit leaves active-target mode (a final MPI_Win_fence with
// MPI_MODE_NOSUCCEED); collective.
func (w *Win) FenceExit() error {
	if err := w.FenceSync(); err != nil {
		return err
	}
	w.fenced = false
	return nil
}

// fenceEpoch returns the per-target accounting epoch of the current
// active access epoch, creating it on demand.
func (w *Win) fenceEpoch(target int) *epoch {
	if w.fenceEps == nil {
		w.fenceEps = map[int]*epoch{}
	}
	ep := w.fenceEps[target]
	if ep == nil {
		// Conflict rules within an active epoch match passive mode:
		// overlapping updates from one origin are erroneous, so the
		// epoch is not relaxed.
		ep = &epoch{target: target, ltype: LockShared, completeAt: w.comm.r.P.Now()}
		w.fenceEps[target] = ep
		w.comm.r.W.Epochs++
	}
	return ep
}

// FPut is a put inside an active (fence) epoch.
func (w *Win) FPut(buf LocalBuf, target, tdisp int, ttype Datatype) error {
	if !w.fenced {
		return fmt.Errorf("mpi: FPut outside an active fence epoch")
	}
	before := w.cur
	w.cur = w.fenceEpoch(target)
	err := w.Put(buf, target, tdisp, ttype)
	w.cur = before
	return err
}

// FGet is a get inside an active (fence) epoch; the data is guaranteed
// only after the closing FenceSync.
func (w *Win) FGet(buf LocalBuf, target, tdisp int, ttype Datatype) error {
	if !w.fenced {
		return fmt.Errorf("mpi: FGet outside an active fence epoch")
	}
	before := w.cur
	w.cur = w.fenceEpoch(target)
	err := w.Get(buf, target, tdisp, ttype)
	w.cur = before
	return err
}

// FAccumulate is an accumulate inside an active (fence) epoch.
func (w *Win) FAccumulate(buf LocalBuf, op Op, target, tdisp int, ttype Datatype) error {
	if !w.fenced {
		return fmt.Errorf("mpi: FAccumulate outside an active fence epoch")
	}
	before := w.cur
	w.cur = w.fenceEpoch(target)
	err := w.Accumulate(buf, op, target, tdisp, ttype)
	w.cur = before
	return err
}
