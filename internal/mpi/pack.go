package mpi

// Dense pack/unpack kernels shared by the RMA layer (rma.go, rma3.go),
// the armcimpi staging paths, and the wall-clock benchmark suite. All
// host-side data movement for derived datatypes funnels through these
// three functions, so the flatten cache (flat.go) accelerates every
// user at once.

// Pack gathers the datatype's bytes out of src (a slice covering the
// type's span) into a freshly allocated dense buffer of t.Size() bytes.
func Pack(t Datatype, src []byte) []byte {
	out := make([]byte, t.Size())
	PackInto(out, t, src)
	return out
}

// PackInto gathers the datatype's bytes out of src into the dense
// buffer dst, which must hold at least t.Size() bytes. It returns the
// number of bytes packed.
func PackInto(dst []byte, t Datatype, src []byte) int {
	if t.Contig() {
		return copy(dst[:t.Size()], src[:t.Size()])
	}
	pos := 0
	for _, s := range Flatten(t).Segs {
		pos += copy(dst[pos:pos+s.N], src[s.Off:s.Off+s.N])
	}
	return pos
}

// Unpack scatters dense data into dst (a slice covering the datatype's
// span) following the type's layout, returning bytes consumed.
func Unpack(t Datatype, dst, data []byte) int {
	if t.Contig() {
		return copy(dst[:t.Size()], data[:t.Size()])
	}
	pos := 0
	for _, s := range Flatten(t).Segs {
		copy(dst[s.Off:s.Off+s.N], data[pos:pos+s.N])
		pos += s.N
	}
	return pos
}
