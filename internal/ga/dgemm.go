package ga

import (
	"fmt"

	"repro/internal/fabric"
)

// Dgemm computes C = alpha * A x B + beta * C for 2-D double arrays
// (GA_Dgemm, no transposition), using the owner-computes formulation:
// each process produces its own block of C from panels of A and B
// fetched one-sidedly in chunks of kblk columns. When m is non-nil the
// local arithmetic is charged to virtual time at 2mnk flops.
// Collective.
func Dgemm(alpha float64, a, b *Array, beta float64, c *Array, kblk int, m *fabric.Machine) error {
	if len(a.dist.Dims) != 2 || len(b.dist.Dims) != 2 || len(c.dist.Dims) != 2 {
		return fmt.Errorf("ga: Dgemm needs 2-D arrays")
	}
	M, K := a.dist.Dims[0], a.dist.Dims[1]
	K2, N := b.dist.Dims[0], b.dist.Dims[1]
	if K != K2 || c.dist.Dims[0] != M || c.dist.Dims[1] != N {
		return fmt.Errorf("ga: Dgemm shape mismatch: A %dx%d, B %dx%d, C %dx%d",
			M, K, K2, N, c.dist.Dims[0], c.dist.Dims[1])
	}
	if kblk <= 0 {
		kblk = 64
	}
	c.sync() // A, B, C stable before the contraction
	idx := c.myOwnerIdx()
	if idx >= 0 && idx < c.dist.OwnerCount() {
		lo, hi, ok := c.dist.Block(idx)
		if ok {
			rows := hi[0] - lo[0] + 1
			cols := hi[1] - lo[1] + 1
			acc := make([]float64, rows*cols)
			apanel := make([]float64, rows*kblk)
			bpanel := make([]float64, kblk*cols)
			for k0 := 0; k0 < K; k0 += kblk {
				k1 := k0 + kblk - 1
				if k1 >= K {
					k1 = K - 1
				}
				kw := k1 - k0 + 1
				ap := apanel[:rows*kw]
				bp := bpanel[:kw*cols]
				if err := a.Get([]int{lo[0], k0}, []int{hi[0], k1}, ap); err != nil {
					return err
				}
				if err := b.Get([]int{k0, lo[1]}, []int{k1, hi[1]}, bp); err != nil {
					return err
				}
				for i := 0; i < rows; i++ {
					for k := 0; k < kw; k++ {
						av := ap[i*kw+k]
						if av == 0 {
							continue
						}
						brow := bp[k*cols:]
						out := acc[i*cols:]
						for j := 0; j < cols; j++ {
							out[j] += av * brow[j]
						}
					}
				}
				if m != nil {
					m.Compute(c.env.Rt.Proc(), 2*float64(rows)*float64(kw)*float64(cols))
				}
			}
			blk, err := c.Access()
			if err != nil {
				return err
			}
			for i := range acc {
				cur := f64get(blk.mem[8*i:])
				f64put(blk.mem[8*i:], alpha*acc[i]+beta*cur)
			}
			if err := blk.Release(); err != nil {
				return err
			}
		}
	}
	c.sync()
	return nil
}

// Transpose computes B = A^T for 2-D arrays of matching transposed
// shape (GA_Transpose). Each process reads the patch of A that maps to
// its B block and writes it locally; the reads are strided one-sided
// gets. Collective.
func Transpose(a, b *Array) error {
	if len(a.dist.Dims) != 2 || len(b.dist.Dims) != 2 {
		return fmt.Errorf("ga: Transpose needs 2-D arrays")
	}
	if a.dist.Dims[0] != b.dist.Dims[1] || a.dist.Dims[1] != b.dist.Dims[0] {
		return fmt.Errorf("ga: Transpose shape mismatch: A %v, B %v", a.dist.Dims, b.dist.Dims)
	}
	b.sync()
	idx := b.myOwnerIdx()
	if idx >= 0 && idx < b.dist.OwnerCount() {
		lo, hi, ok := b.dist.Block(idx)
		if ok {
			rows := hi[0] - lo[0] + 1
			cols := hi[1] - lo[1] + 1
			// B[i][j] = A[j][i]: fetch A[lo1..hi1][lo0..hi0].
			src := make([]float64, cols*rows)
			if err := a.Get([]int{lo[1], lo[0]}, []int{hi[1], hi[0]}, src); err != nil {
				return err
			}
			blk, err := b.Access()
			if err != nil {
				return err
			}
			for i := 0; i < rows; i++ {
				for j := 0; j < cols; j++ {
					f64put(blk.mem[8*(i*cols+j):], src[j*rows+i])
				}
			}
			if err := blk.Release(); err != nil {
				return err
			}
		}
	}
	b.sync()
	return nil
}
