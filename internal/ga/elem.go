package ga

import (
	"fmt"
	"math"

	"repro/internal/armci"
	"repro/internal/mpi"
)

// issueIOV issues one owner bucket's generalized I/O vector operation:
// nonblocking by default, blocking under the BlockingFanout baseline
// (nil handle).
func (a *Array) issueIOV(kind fanKind, alpha float64, iov []armci.GIOV, proc int) (armci.Handle, error) {
	rt := a.env.Rt
	if a.env.BlockingFanout {
		var err error
		switch kind {
		case fanPut:
			err = rt.PutV(iov, proc)
		case fanGet:
			err = rt.GetV(iov, proc)
		default:
			err = rt.AccV(armci.AccDbl, alpha, iov, proc)
		}
		return nil, err
	}
	switch kind {
	case fanPut:
		return rt.NbPutV(iov, proc)
	case fanGet:
		return rt.NbGetV(iov, proc)
	default:
		return rt.NbAccV(armci.AccDbl, alpha, iov, proc)
	}
}

// Gather reads the elements at the given subscripts into vals
// (NGA_Gather). The subscripts may be scattered arbitrarily; one
// generalized I/O vector operation is issued per owning process
// (SectionVI.A's workload), all owners nonblocking with a single
// WaitAll before the copy-out.
func (a *Array) Gather(subs [][]int, vals []float64) error {
	if len(vals) != len(subs) {
		return fmt.Errorf("ga: Gather: %d subscripts but %d values", len(subs), len(vals))
	}
	groups, order, err := a.iovByOwner(subs)
	if err != nil {
		return err
	}
	scratch := a.env.scratch(len(subs) * elemBytes)
	var handles []armci.Handle
	pos := 0
	for _, bkt := range groups {
		g := armci.GIOV{Bytes: elemBytes}
		for _, k := range bkt.idxs {
			addr, _ := a.blockAddr(bkt.owner, subs[k])
			g.Src = append(g.Src, addr)
			g.Dst = append(g.Dst, scratch.Add(pos*elemBytes))
			order[k] = pos
			pos++
		}
		h, err := a.issueIOV(fanGet, 1, []armci.GIOV{g}, a.worldRankOfOwner(bkt.owner))
		if err != nil {
			armci.WaitAll(handles...)
			return fmt.Errorf("ga: Gather %q: %w", a.name, err)
		}
		if h != nil {
			handles = append(handles, h)
		}
	}
	armci.WaitAll(handles...)
	b, err := a.env.Rt.LocalBytes(scratch, len(subs)*elemBytes)
	if err != nil {
		return err
	}
	for k := range subs {
		vals[k] = f64get(b[8*order[k]:])
	}
	return nil
}

// Scatter writes vals to the elements at the given subscripts
// (NGA_Scatter).
func (a *Array) Scatter(subs [][]int, vals []float64) error {
	if len(vals) != len(subs) {
		return fmt.Errorf("ga: Scatter: %d subscripts but %d values", len(subs), len(vals))
	}
	groups, _, err := a.iovByOwner(subs)
	if err != nil {
		return err
	}
	scratch := a.env.scratch(len(subs) * elemBytes)
	b, err := a.env.Rt.LocalBytes(scratch, len(subs)*elemBytes)
	if err != nil {
		return err
	}
	var handles []armci.Handle
	pos := 0
	for _, bkt := range groups {
		g := armci.GIOV{Bytes: elemBytes}
		for _, k := range bkt.idxs {
			f64put(b[8*pos:], vals[k])
			addr, _ := a.blockAddr(bkt.owner, subs[k])
			g.Src = append(g.Src, scratch.Add(pos*elemBytes))
			g.Dst = append(g.Dst, addr)
			pos++
		}
		h, err := a.issueIOV(fanPut, 1, []armci.GIOV{g}, a.worldRankOfOwner(bkt.owner))
		if err != nil {
			armci.WaitAll(handles...)
			return fmt.Errorf("ga: Scatter %q: %w", a.name, err)
		}
		if h != nil {
			handles = append(handles, h)
		}
	}
	armci.WaitAll(handles...)
	return nil
}

// ScatterAcc accumulates vals into the elements at the subscripts
// (NGA_Scatter_acc).
func (a *Array) ScatterAcc(subs [][]int, vals []float64, alpha float64) error {
	if len(vals) != len(subs) {
		return fmt.Errorf("ga: ScatterAcc: %d subscripts but %d values", len(subs), len(vals))
	}
	if a.elem != F64 {
		return fmt.Errorf("ga: ScatterAcc on non-double array %q", a.name)
	}
	groups, _, err := a.iovByOwner(subs)
	if err != nil {
		return err
	}
	scratch := a.env.scratch(len(subs) * elemBytes)
	b, err := a.env.Rt.LocalBytes(scratch, len(subs)*elemBytes)
	if err != nil {
		return err
	}
	var handles []armci.Handle
	pos := 0
	for _, bkt := range groups {
		g := armci.GIOV{Bytes: elemBytes}
		for _, k := range bkt.idxs {
			f64put(b[8*pos:], vals[k])
			addr, _ := a.blockAddr(bkt.owner, subs[k])
			g.Src = append(g.Src, scratch.Add(pos*elemBytes))
			g.Dst = append(g.Dst, addr)
			pos++
		}
		h, err := a.issueIOV(fanAcc, alpha, []armci.GIOV{g}, a.worldRankOfOwner(bkt.owner))
		if err != nil {
			armci.WaitAll(handles...)
			return fmt.Errorf("ga: ScatterAcc %q: %w", a.name, err)
		}
		if h != nil {
			handles = append(handles, h)
		}
	}
	armci.WaitAll(handles...)
	return nil
}

// ownerBucket is one owner's share of a gather/scatter.
type ownerBucket struct {
	owner int
	idxs  []int
}

// iovByOwner buckets subscripts by owning process in ascending owner
// order (map iteration would make virtual time nondeterministic),
// plus an index map so gathered values land in input order.
func (a *Array) iovByOwner(subs [][]int) ([]ownerBucket, []int, error) {
	groups := map[int][]int{}
	var owners []int
	for k, sub := range subs {
		if err := checkRange(a.dist.Dims, sub, sub); err != nil {
			return nil, nil, err
		}
		owner := a.dist.OwnerOfIndex(sub)
		if _, seen := groups[owner]; !seen {
			owners = append(owners, owner)
		}
		groups[owner] = append(groups[owner], k)
	}
	sortInts(owners)
	out := make([]ownerBucket, len(owners))
	for i, o := range owners {
		out[i] = ownerBucket{owner: o, idxs: groups[o]}
	}
	return out, make([]int, len(subs)), nil
}

func sortInts(xs []int) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// Duplicate creates a new array with the same shape, type, and
// distribution (GA_Duplicate); contents are zero.
func (a *Array) Duplicate(name string) (*Array, error) {
	if a.group == nil {
		return a.env.Create(name, a.elem, a.dist.Dims)
	}
	return a.env.CreateOnGroup(a.group, name, a.elem, a.dist.Dims)
}

// Scale multiplies every element by alpha (GA_Scale); collective.
func (a *Array) Scale(alpha float64) error {
	if a.elem != F64 {
		return fmt.Errorf("ga: Scale on non-double array %q", a.name)
	}
	if idx := a.myOwnerIdx(); idx >= 0 && idx < a.dist.OwnerCount() {
		b, err := a.Access()
		if err != nil {
			return err
		}
		n := len(b.mem) / elemBytes
		for i := 0; i < n; i++ {
			f64put(b.mem[8*i:], alpha*f64get(b.mem[8*i:]))
		}
		if err := b.Release(); err != nil {
			return err
		}
	}
	a.sync()
	return nil
}

// Add computes c = alpha*a + beta*b elementwise (GA_Add); all three
// arrays must share shape and distribution. Collective.
func Add(alpha float64, a *Array, beta float64, b *Array, c *Array) error {
	for _, pair := range [][2]*Array{{a, b}, {a, c}} {
		x, y := pair[0], pair[1]
		if len(x.dist.Dims) != len(y.dist.Dims) {
			return fmt.Errorf("ga: Add: rank mismatch %q/%q", x.name, y.name)
		}
		for d := range x.dist.Dims {
			if x.dist.Dims[d] != y.dist.Dims[d] {
				return fmt.Errorf("ga: Add: extent mismatch in dim %d", d)
			}
		}
	}
	// Each process combines the patches covering its c block.
	if idx := c.myOwnerIdx(); idx >= 0 && idx < c.dist.OwnerCount() {
		lo, hi, ok := c.dist.Block(idx)
		if ok {
			n := c.reqLen(lo, hi)
			av := make([]float64, n)
			bv := make([]float64, n)
			if err := a.Get(lo, hi, av); err != nil {
				return err
			}
			if err := b.Get(lo, hi, bv); err != nil {
				return err
			}
			blk, err := c.Access()
			if err != nil {
				return err
			}
			for i := 0; i < n; i++ {
				f64put(blk.mem[8*i:], alpha*av[i]+beta*bv[i])
			}
			if err := blk.Release(); err != nil {
				return err
			}
		}
	}
	c.sync()
	return nil
}

// Dot returns the global dot product sum(a .* b) (GA_Ddot); collective.
func Dot(a, b *Array) (float64, error) {
	if len(a.dist.Dims) != len(b.dist.Dims) {
		return 0, fmt.Errorf("ga: Dot: rank mismatch")
	}
	for d := range a.dist.Dims {
		if a.dist.Dims[d] != b.dist.Dims[d] {
			return 0, fmt.Errorf("ga: Dot: extent mismatch in dim %d", d)
		}
	}
	local := 0.0
	if idx := a.myOwnerIdx(); idx >= 0 && idx < a.dist.OwnerCount() {
		lo, hi, ok := a.dist.Block(idx)
		if ok {
			n := a.reqLen(lo, hi)
			av := make([]float64, n)
			bv := make([]float64, n)
			if err := a.Get(lo, hi, av); err != nil {
				return 0, err
			}
			if err := b.Get(lo, hi, bv); err != nil {
				return 0, err
			}
			for i := range av {
				local += av[i] * bv[i]
			}
		}
	}
	out := a.env.GopF64(mpi.OpSum, []float64{local})
	return out[0], nil
}

// Norm2 returns the Frobenius norm of the array; collective.
func (a *Array) Norm2() (float64, error) {
	d, err := Dot(a, a)
	if err != nil {
		return 0, err
	}
	return math.Sqrt(d), nil
}

// MaxElem returns the largest absolute element value and its
// subscripts (GA_Select_elem with "max"); collective.
func (a *Array) MaxElem() (float64, []int, error) {
	best := math.Inf(-1)
	var bestIdx []int
	if idx := a.myOwnerIdx(); idx >= 0 && idx < a.dist.OwnerCount() {
		blk, err := a.Access()
		if err != nil {
			return 0, nil, err
		}
		d := blk.Dims()
		n := len(blk.mem) / elemBytes
		for i := 0; i < n; i++ {
			v := math.Abs(f64get(blk.mem[8*i:]))
			if v > best {
				best = v
				// Unflatten i into block-relative then global indices.
				rem := i
				bestIdx = make([]int, len(d))
				for dd := len(d) - 1; dd >= 0; dd-- {
					bestIdx[dd] = rem%d[dd] + blk.Lo[dd]
					rem /= d[dd]
				}
			}
		}
		if err := blk.Release(); err != nil {
			return 0, nil, err
		}
	}
	// Reduce (value, flattened index) pairs: max on value, with the
	// winner's coordinates broadcast by encoding them alongside.
	nd := len(a.dist.Dims)
	enc := make([]float64, 1+nd)
	enc[0] = best
	for d := 0; d < nd; d++ {
		if bestIdx != nil {
			enc[1+d] = float64(bestIdx[d])
		} else {
			enc[1+d] = -1
		}
	}
	// Owner of the global max wins: allgather and scan (world order
	// breaks ties deterministically).
	flat := a.env.Mpi.CommWorld().Allgather(mpi.F64sToBytes(enc))
	winVal := math.Inf(-1)
	var winIdx []int
	for _, part := range flat {
		dec := mpi.BytesToF64s(part)
		if len(dec) != 1+nd {
			continue
		}
		if dec[0] > winVal {
			winVal = dec[0]
			winIdx = make([]int, nd)
			for d := 0; d < nd; d++ {
				winIdx[d] = int(dec[1+d])
			}
		}
	}
	return winVal, winIdx, nil
}
