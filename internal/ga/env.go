// Package ga implements the Global Arrays PGAS programming model on
// top of the ARMCI runtime interface (SectionII.B): distributed,
// shared, multidimensional arrays accessed through one-sided
// GA_Get/GA_Put/GA_Accumulate operations on high-level index ranges,
// plus locality queries, direct local access, atomic read-increment
// (the NXTVAL dynamic load-balancing counter), and collective helpers.
//
// A GA operation on an index range fans out into one noncontiguous
// (strided) ARMCI operation per owning process, exactly as in the
// paper's Figure 2. The package is oblivious to which ARMCI
// implementation is underneath — native or ARMCI-MPI.
package ga

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/armci"
	"repro/internal/mpi"
)

// Elem identifies the element type of an array.
type Elem int

const (
	// F64 is double precision (GA's C_DBL), 8 bytes.
	F64 Elem = iota
	// I64 is a 64-bit integer (GA's C_LONG), 8 bytes.
	I64
)

const elemBytes = 8

func (e Elem) String() string {
	if e == I64 {
		return "i64"
	}
	return "f64"
}

// Env is one rank's Global Arrays environment: the ARMCI runtime and
// the MPI rank used for GA's collective operations (GA_Brdcst, GA_Dgop).
type Env struct {
	Rt   armci.Runtime
	Mpi  *mpi.Rank
	next int // per-rank array id counter; identical across ranks

	// BlockingFanout forces per-owner fan-outs (Put/Get/Acc and
	// Gather/Scatter/ScatterAcc) to issue one blocking ARMCI operation
	// per owner instead of issuing all owners nonblocking and waiting
	// once — the baseline the ablation-nbfanout figure compares against.
	BlockingFanout bool

	// scratch is the reusable local transfer buffer. Reuse matters: a
	// registration cache only pays off if buffers are stable, exactly
	// as GA's MA-pool buffers behave on the real systems (Figure 5's
	// on-demand registration discussion).
	scratchAddr armci.Addr
	scratchLen  int
}

// scratch returns a local buffer of at least n bytes, growing (and
// re-registering) geometrically.
func (e *Env) scratch(n int) armci.Addr {
	if n <= e.scratchLen {
		return e.scratchAddr
	}
	if e.scratchLen > 0 {
		if err := e.Rt.FreeLocal(e.scratchAddr); err != nil {
			panic(err)
		}
	}
	size := e.scratchLen * 2
	if size < n {
		size = n
	}
	if size < 4096 {
		size = 4096
	}
	e.scratchAddr = e.Rt.MallocLocal(size)
	e.scratchLen = size
	return e.scratchAddr
}

// NewEnv creates the per-rank GA environment.
func NewEnv(rt armci.Runtime, r *mpi.Rank) *Env {
	return &Env{Rt: rt, Mpi: r}
}

// Nprocs returns the world size.
func (e *Env) Nprocs() int { return e.Rt.Nprocs() }

// Me returns the calling world rank.
func (e *Env) Me() int { return e.Rt.Rank() }

// Sync synchronizes all processes and completes all outstanding GA
// communication (GA_Sync).
func (e *Env) Sync() { e.Rt.Barrier() }

// GopF64 performs the GA_Dgop collective: elementwise reduction of a
// double vector across all processes; the result replaces vals on
// every process.
func (e *Env) GopF64(op mpi.Op, vals []float64) []float64 {
	return e.Mpi.CommWorld().AllreduceF64(op, vals)
}

// GopI64 is GA_Igop for 64-bit integers.
func (e *Env) GopI64(op mpi.Op, vals []int64) []int64 {
	return e.Mpi.CommWorld().AllreduceI64(op, vals)
}

// BrdcstF64 broadcasts doubles from root (GA_Brdcst).
func (e *Env) BrdcstF64(root int, vals []float64) []float64 {
	return e.Mpi.CommWorld().BcastF64(root, vals)
}

// f64get reads a float64 from region bytes.
func f64get(b []byte) float64 { return math.Float64frombits(binary.LittleEndian.Uint64(b)) }

// f64put writes a float64 into region bytes.
func f64put(b []byte, v float64) { binary.LittleEndian.PutUint64(b, math.Float64bits(v)) }

// i64get reads an int64 from region bytes.
func i64get(b []byte) int64 { return int64(binary.LittleEndian.Uint64(b)) }

// i64put writes an int64 into region bytes.
func i64put(b []byte, v int64) { binary.LittleEndian.PutUint64(b, uint64(v)) }

// checkRange validates a patch against array bounds (inclusive hi, GA
// convention).
func checkRange(dims, lo, hi []int) error {
	if len(lo) != len(dims) || len(hi) != len(dims) {
		return fmt.Errorf("ga: patch dimensionality %d/%d, array has %d", len(lo), len(hi), len(dims))
	}
	for d := range dims {
		if lo[d] < 0 || hi[d] >= dims[d] || lo[d] > hi[d] {
			return fmt.Errorf("ga: bad range [%d,%d] in dim %d of extent %d", lo[d], hi[d], d, dims[d])
		}
	}
	return nil
}
