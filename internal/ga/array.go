package ga

import (
	"fmt"

	"repro/internal/armci"
)

// Array is one rank's handle to a global array. Handles are created
// collectively and contain identical metadata on every rank.
type Array struct {
	env  *Env
	id   int
	name string
	elem Elem
	dist *Distribution

	group *armci.Group // nil means the world
	addrs []armci.Addr // base address per owner index
	freed bool
}

// Create collectively creates a global array distributed over all
// processes (GA_Create with regular distribution).
func (e *Env) Create(name string, elem Elem, dims []int) (*Array, error) {
	return e.createOn(nil, name, elem, dims)
}

// CreateOnGroup creates an array distributed over a processor group;
// only members call.
func (e *Env) CreateOnGroup(g *armci.Group, name string, elem Elem, dims []int) (*Array, error) {
	if g == nil {
		return nil, fmt.Errorf("ga: CreateOnGroup with nil group")
	}
	return e.createOn(g, name, elem, dims)
}

func (e *Env) createOn(g *armci.Group, name string, elem Elem, dims []int) (*Array, error) {
	if len(dims) == 0 {
		return nil, fmt.Errorf("ga: Create(%q): no dimensions", name)
	}
	for d, x := range dims {
		if x <= 0 {
			return nil, fmt.Errorf("ga: Create(%q): dim %d extent %d", name, d, x)
		}
	}
	nprocs := e.Nprocs()
	if g != nil {
		nprocs = g.Size()
	}
	dist := newDistribution(dims, nprocs)
	// My owner index: my position among the group's processes.
	myIdx := e.Me()
	if g != nil {
		myIdx = g.RankOf(e.Me())
	}
	mine := 0
	if myIdx < dist.OwnerCount() {
		bd := dist.BlockDims(myIdx)
		if bd != nil {
			mine = elemBytes
			for _, x := range bd {
				mine *= x
			}
		}
	}
	var addrs []armci.Addr
	var err error
	if g == nil {
		addrs, err = e.Rt.Malloc(mine)
	} else {
		addrs, err = e.Rt.MallocGroup(g, mine)
	}
	if err != nil {
		return nil, fmt.Errorf("ga: Create(%q): %w", name, err)
	}
	a := &Array{env: e, id: e.next, name: name, elem: elem, dist: dist, group: g, addrs: addrs}
	e.next++
	// Regions are born zeroed in the simulation (GA arrays start
	// zeroed); the sync establishes GA_Create's barrier semantics over
	// the array's group.
	a.sync()
	return a, nil
}

// Destroy collectively releases the array (GA_Destroy).
func (a *Array) Destroy() error {
	if a.freed {
		return fmt.Errorf("ga: %q already destroyed", a.name)
	}
	a.freed = true
	my := a.myAddr()
	if a.group == nil {
		return a.env.Rt.Free(my)
	}
	return a.env.Rt.FreeGroup(a.group, my)
}

// sync synchronizes the processes of the array's group (the world for
// ordinary arrays), fencing outstanding communication.
func (a *Array) sync() {
	a.env.Rt.AllFence()
	if a.group == nil {
		a.env.Mpi.CommWorld().Barrier()
	} else {
		armci.GroupCommOf(a.group).Barrier()
	}
}

// myAddr returns the calling rank's base address (Nil if it owns no
// block).
func (a *Array) myAddr() armci.Addr {
	idx := a.myOwnerIdx()
	if idx < 0 || idx >= len(a.addrs) {
		return armci.Addr{}
	}
	return a.addrs[idx]
}

func (a *Array) myOwnerIdx() int {
	if a.group == nil {
		return a.env.Me()
	}
	return a.group.RankOf(a.env.Me())
}

// worldRankOfOwner translates an owner index to a world rank.
func (a *Array) worldRankOfOwner(owner int) int {
	if a.group == nil {
		return owner
	}
	return a.group.AbsoluteID(owner)
}

// Name returns the array's name.
func (a *Array) Name() string { return a.name }

// Dims returns the array extents.
func (a *Array) Dims() []int { return append([]int(nil), a.dist.Dims...) }

// Elem returns the element type.
func (a *Array) Elem() Elem { return a.elem }

// Handle returns the array id (GA handle).
func (a *Array) Handle() int { return a.id }

// Distribution returns the inclusive bounds of the block owned by the
// given process (world rank); ok is false when it owns nothing
// (GA_Distribution).
func (a *Array) Distribution(world int) (lo, hi []int, ok bool) {
	owner := world
	if a.group != nil {
		owner = a.group.RankOf(world)
		if owner < 0 {
			return nil, nil, false
		}
	}
	if owner >= a.dist.OwnerCount() {
		return nil, nil, false
	}
	return a.dist.Block(owner)
}

// Locate returns the world rank owning the element at idx (GA_Locate).
func (a *Array) Locate(idx []int) (int, error) {
	if err := checkRange(a.dist.Dims, idx, idx); err != nil {
		return -1, err
	}
	return a.worldRankOfOwner(a.dist.OwnerOfIndex(idx)), nil
}

// LocateRegion returns the per-owner patches of [lo, hi] with owner
// expressed as world rank (GA_Locate_region).
func (a *Array) LocateRegion(lo, hi []int) ([]Patch, error) {
	if err := checkRange(a.dist.Dims, lo, hi); err != nil {
		return nil, err
	}
	ps := a.dist.Intersect(lo, hi)
	out := make([]Patch, len(ps))
	for i, p := range ps {
		out[i] = Patch{Owner: a.worldRankOfOwner(p.Owner), Lo: p.Lo, Hi: p.Hi}
	}
	return out, nil
}

// blockAddr returns the remote address of element `idx` inside the
// block of the given owner index, plus the owner's block dims.
func (a *Array) blockAddr(owner int, idx []int) (armci.Addr, []int) {
	bLo, _, _ := a.dist.Block(owner)
	bd := a.dist.BlockDims(owner)
	off := 0
	for d := range idx {
		off = off*bd[d] + (idx[d] - bLo[d])
	}
	return a.addrs[owner].Add(off * elemBytes), bd
}

// Access grants direct access to the calling process's local block
// (GA_Access): the returned floats alias the block's memory until
// Release. The block's extents come from Distribution.
func (a *Array) Access() (*LocalBlock, error) {
	idx := a.myOwnerIdx()
	if idx < 0 || idx >= a.dist.OwnerCount() {
		return nil, fmt.Errorf("ga: Access: rank %d owns no block of %q", a.env.Me(), a.name)
	}
	bd := a.dist.BlockDims(idx)
	n := elemBytes
	for _, x := range bd {
		n *= x
	}
	mem, err := a.env.Rt.AccessBegin(a.addrs[idx], n)
	if err != nil {
		return nil, err
	}
	lo, hi, _ := a.dist.Block(idx)
	return &LocalBlock{a: a, mem: mem, dims: bd, Lo: lo, Hi: hi}, nil
}

// Release ends direct access (GA_Release / GA_Release_update).
func (b *LocalBlock) Release() error {
	return b.a.env.Rt.AccessEnd(b.a.addrs[b.a.myOwnerIdx()])
}

// LocalBlock is a directly accessible local block of a global array.
type LocalBlock struct {
	a      *Array
	mem    []byte
	dims   []int
	Lo, Hi []int // inclusive global bounds of the block
}

// Dims returns the block extents.
func (b *LocalBlock) Dims() []int { return append([]int(nil), b.dims...) }

// offset computes the byte offset of local (block-relative) indices.
func (b *LocalBlock) offset(idx []int) int {
	off := 0
	for d := range idx {
		off = off*b.dims[d] + idx[d]
	}
	return off * elemBytes
}

// F64 reads the float64 at block-relative indices.
func (b *LocalBlock) F64(idx ...int) float64 { return f64get(b.mem[b.offset(idx):]) }

// SetF64 writes the float64 at block-relative indices.
func (b *LocalBlock) SetF64(v float64, idx ...int) { f64put(b.mem[b.offset(idx):], v) }

// I64 reads the int64 at block-relative indices.
func (b *LocalBlock) I64(idx ...int) int64 { return i64get(b.mem[b.offset(idx):]) }

// SetI64 writes the int64 at block-relative indices.
func (b *LocalBlock) SetI64(v int64, idx ...int) { i64put(b.mem[b.offset(idx):], v) }
