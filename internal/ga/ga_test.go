package ga

import (
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/armcimpi"
	"repro/internal/harness"
	"repro/internal/mpi"
	"repro/internal/sim"
)

// runGA executes body under all ARMCI implementations.
func runGA(t *testing.T, n int, body func(t *testing.T, e *Env)) {
	t.Helper()
	for _, impl := range []harness.Impl{harness.ImplNative, harness.ImplARMCIMPI, harness.ImplDataServer} {
		impl := impl
		t.Run(string(impl), func(t *testing.T) {
			j, err := harness.NewJob(harness.TestPlatform(), n, impl, armcimpi.DefaultOptions())
			if err != nil {
				t.Fatal(err)
			}
			err = j.Eng.Run(n, func(p *sim.Proc) {
				rt := j.Runtime(p)
				body(t, NewEnv(rt, j.MpiWorld.Rank(p)))
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

func must(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}

func TestDistributionCoversArray(t *testing.T) {
	check := func(d0, d1 uint8, np uint8) bool {
		dims := []int{int(d0%40) + 1, int(d1%40) + 1}
		nprocs := int(np%16) + 1
		dist := newDistribution(dims, nprocs)
		seen := make(map[[2]int]int)
		for o := 0; o < dist.OwnerCount(); o++ {
			lo, hi, ok := dist.Block(o)
			if !ok {
				continue
			}
			for i := lo[0]; i <= hi[0]; i++ {
				for j := lo[1]; j <= hi[1]; j++ {
					seen[[2]int{i, j}]++
					if dist.OwnerOfIndex([]int{i, j}) != o {
						return false
					}
				}
			}
		}
		if len(seen) != dims[0]*dims[1] {
			return false
		}
		for _, c := range seen {
			if c != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestIntersectMatchesNaive(t *testing.T) {
	check := func(d0, d1, np, l0, l1, h0, h1 uint8) bool {
		dims := []int{int(d0%30) + 1, int(d1%30) + 1}
		dist := newDistribution(dims, int(np%12)+1)
		lo := []int{int(l0) % dims[0], int(l1) % dims[1]}
		hi := []int{lo[0] + int(h0)%(dims[0]-lo[0]), lo[1] + int(h1)%(dims[1]-lo[1])}
		patches := dist.Intersect(lo, hi)
		// Every element of [lo,hi] must appear in exactly one patch,
		// owned by the right process.
		count := 0
		for _, p := range patches {
			for i := p.Lo[0]; i <= p.Hi[0]; i++ {
				for j := p.Lo[1]; j <= p.Hi[1]; j++ {
					if dist.OwnerOfIndex([]int{i, j}) != p.Owner {
						return false
					}
					count++
				}
			}
		}
		return count == (hi[0]-lo[0]+1)*(hi[1]-lo[1]+1)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestFactorGridRespectsDims(t *testing.T) {
	grid := factorGrid(8, []int{2, 100})
	if grid[0] > 2 {
		t.Errorf("grid %v splits dim of extent 2 into %d", grid, grid[0])
	}
	p := grid[0] * grid[1]
	if p > 8 {
		t.Errorf("grid %v exceeds process count", grid)
	}
	grid1 := factorGrid(6, []int{50})
	if grid1[0] != 6 {
		t.Errorf("1-D grid = %v, want [6]", grid1)
	}
}

func TestPutGetRoundTrip2D(t *testing.T) {
	runGA(t, 4, func(t *testing.T, e *Env) {
		a, err := e.Create("A", F64, []int{17, 23})
		must(t, err)
		if e.Me() == 0 {
			lo, hi := []int{2, 3}, []int{12, 19}
			n := (12 - 2 + 1) * (19 - 3 + 1)
			vals := make([]float64, n)
			for i := range vals {
				vals[i] = float64(i) + 0.5
			}
			must(t, a.Put(lo, hi, vals))
			out := make([]float64, n)
			must(t, a.Get(lo, hi, out))
			for i := range out {
				if out[i] != vals[i] {
					t.Fatalf("elem %d = %v, want %v", i, out[i], vals[i])
				}
			}
			// Single elements are retrievable too.
			one := make([]float64, 1)
			must(t, a.Get([]int{5, 7}, []int{5, 7}, one))
			want := float64((5-2)*17+(7-3)) + 0.5
			if one[0] != want {
				t.Fatalf("element (5,7) = %v, want %v", one[0], want)
			}
		}
		e.Sync()
		must(t, a.Destroy())
	})
}

func TestPutSpansMultipleOwners(t *testing.T) {
	runGA(t, 4, func(t *testing.T, e *Env) {
		a, err := e.Create("A", F64, []int{16, 16})
		must(t, err)
		// Figure 2: a patch touching all four blocks.
		if e.Me() == 1 {
			patches, err := a.LocateRegion([]int{0, 0}, []int{15, 15})
			must(t, err)
			if len(patches) != 4 {
				t.Errorf("full-range fan-out = %d patches, want 4", len(patches))
			}
			vals := make([]float64, 256)
			for i := range vals {
				vals[i] = float64(i)
			}
			must(t, a.Put([]int{0, 0}, []int{15, 15}, vals))
		}
		e.Sync()
		// Every rank verifies its own block through direct access.
		blk, err := a.Access()
		if err == nil {
			d := blk.Dims()
			for i := 0; i < d[0]; i++ {
				for j := 0; j < d[1]; j++ {
					want := float64((blk.Lo[0]+i)*16 + blk.Lo[1] + j)
					if got := blk.F64(i, j); got != want {
						t.Fatalf("rank %d block (%d,%d) = %v, want %v", e.Me(), i, j, got, want)
					}
				}
			}
			must(t, blk.Release())
		}
		e.Sync()
		must(t, a.Destroy())
	})
}

func TestAccumulateConcurrent(t *testing.T) {
	runGA(t, 4, func(t *testing.T, e *Env) {
		a, err := e.Create("acc", F64, []int{8, 8})
		must(t, err)
		vals := make([]float64, 64)
		for i := range vals {
			vals[i] = 1
		}
		// All ranks accumulate 2x ones over the whole array.
		must(t, a.Acc([]int{0, 0}, []int{7, 7}, vals, 2))
		e.Sync()
		out := make([]float64, 64)
		must(t, a.Get([]int{0, 0}, []int{7, 7}, out))
		for i, v := range out {
			if v != 8 { // 4 ranks x alpha 2
				t.Fatalf("elem %d = %v, want 8", i, v)
			}
		}
		e.Sync()
		must(t, a.Destroy())
	})
}

func Test3DArray(t *testing.T) {
	runGA(t, 8, func(t *testing.T, e *Env) {
		a, err := e.Create("T", F64, []int{6, 10, 14})
		must(t, err)
		if e.Me() == 3 {
			lo, hi := []int{1, 2, 3}, []int{4, 8, 11}
			n := 4 * 7 * 9
			vals := make([]float64, n)
			for i := range vals {
				vals[i] = float64(i * 2)
			}
			must(t, a.Put(lo, hi, vals))
			out := make([]float64, n)
			must(t, a.Get(lo, hi, out))
			for i := range out {
				if out[i] != vals[i] {
					t.Fatalf("3D elem %d = %v, want %v", i, out[i], vals[i])
				}
			}
		}
		e.Sync()
		must(t, a.Destroy())
	})
}

func TestReadIncCounter(t *testing.T) {
	runGA(t, 4, func(t *testing.T, e *Env) {
		c, err := e.Create("nxtval", I64, []int{1})
		must(t, err)
		must(t, c.FillI64(0))
		// The NXTVAL pattern: every rank draws task ids.
		seen := map[int64]bool{}
		for i := 0; i < 5; i++ {
			v, err := c.ReadInc([]int{0}, 1)
			must(t, err)
			if seen[v] {
				t.Errorf("task id %d drawn twice by rank %d", v, e.Me())
			}
			seen[v] = true
			if v < 0 || v >= 20 {
				t.Errorf("task id %d out of range", v)
			}
		}
		e.Sync()
		must(t, c.Destroy())
	})
}

func TestFillZeroCopy(t *testing.T) {
	runGA(t, 4, func(t *testing.T, e *Env) {
		a, err := e.Create("src", F64, []int{12, 9})
		must(t, err)
		b, err := e.Create("dst", F64, []int{12, 9})
		must(t, err)
		must(t, a.Fill(3.25))
		must(t, a.CopyTo(b))
		if e.Me() == 2 {
			out := make([]float64, 12*9)
			must(t, b.Get([]int{0, 0}, []int{11, 8}, out))
			for i, v := range out {
				if v != 3.25 {
					t.Fatalf("copied elem %d = %v", i, v)
				}
			}
		}
		must(t, a.Zero())
		if e.Me() == 1 {
			out := make([]float64, 12*9)
			must(t, a.Get([]int{0, 0}, []int{11, 8}, out))
			for i, v := range out {
				if v != 0 {
					t.Fatalf("zeroed elem %d = %v", i, v)
				}
			}
		}
		e.Sync()
		must(t, a.Destroy())
		must(t, b.Destroy())
	})
}

func TestDistributionQueries(t *testing.T) {
	runGA(t, 4, func(t *testing.T, e *Env) {
		a, err := e.Create("A", F64, []int{20, 20})
		must(t, err)
		covered := 0
		for r := 0; r < e.Nprocs(); r++ {
			lo, hi, ok := a.Distribution(r)
			if !ok {
				continue
			}
			covered += (hi[0] - lo[0] + 1) * (hi[1] - lo[1] + 1)
			owner, err := a.Locate(lo)
			must(t, err)
			if owner != r {
				t.Errorf("Locate(%v) = %d, want %d", lo, owner, r)
			}
		}
		if covered != 400 {
			t.Errorf("blocks cover %d elements, want 400", covered)
		}
		e.Sync()
		must(t, a.Destroy())
	})
}

func TestGroupArray(t *testing.T) {
	runGA(t, 6, func(t *testing.T, e *Env) {
		g, err := e.Rt.GroupCreateCollective([]int{1, 3, 5})
		must(t, err)
		if g == nil {
			e.Sync()
			return
		}
		a, err := e.CreateOnGroup(g, "grp", F64, []int{9, 9})
		must(t, err)
		if e.Me() == 1 {
			vals := make([]float64, 81)
			for i := range vals {
				vals[i] = float64(i)
			}
			must(t, a.Put([]int{0, 0}, []int{8, 8}, vals))
			out := make([]float64, 81)
			must(t, a.Get([]int{0, 0}, []int{8, 8}, out))
			for i := range out {
				if out[i] != vals[i] {
					t.Fatalf("group array elem %d", i)
				}
			}
		}
		must(t, a.Destroy())
		e.Sync()
	})
}

func TestCollectives(t *testing.T) {
	runGA(t, 5, func(t *testing.T, e *Env) {
		sum := e.GopF64(mpi.OpSum, []float64{float64(e.Me() + 1)})
		if sum[0] != 15 {
			t.Errorf("Dgop sum = %v", sum[0])
		}
		var data []float64
		if e.Me() == 2 {
			data = []float64{1.5, -2}
		} else {
			data = make([]float64, 2)
		}
		out := e.BrdcstF64(2, data)
		if out[0] != 1.5 || out[1] != -2 {
			t.Errorf("Brdcst = %v", out)
		}
	})
}

func TestErrorPaths(t *testing.T) {
	runGA(t, 2, func(t *testing.T, e *Env) {
		if _, err := e.Create("bad", F64, []int{0}); err == nil {
			t.Error("zero-extent array accepted")
		}
		a, err := e.Create("A", F64, []int{4, 4})
		must(t, err)
		if err := a.Put([]int{0, 0}, []int{4, 4}, make([]float64, 25)); err == nil {
			t.Error("out-of-bounds put accepted")
		}
		if err := a.Put([]int{0, 0}, []int{1, 1}, make([]float64, 3)); err == nil {
			t.Error("wrong buffer length accepted")
		}
		if _, err := a.ReadInc([]int{0, 0}, 1); err == nil {
			t.Error("ReadInc on double array accepted")
		}
		e.Sync()
		must(t, a.Destroy())
		if err := a.Destroy(); err == nil {
			t.Error("double destroy accepted")
		}
	})
}

func TestUnevenDims(t *testing.T) {
	// Dims that do not divide evenly among processes.
	runGA(t, 3, func(t *testing.T, e *Env) {
		a, err := e.Create("odd", F64, []int{7, 5})
		must(t, err)
		if e.Me() == 0 {
			vals := make([]float64, 35)
			for i := range vals {
				vals[i] = float64(i + 1)
			}
			must(t, a.Put([]int{0, 0}, []int{6, 4}, vals))
			out := make([]float64, 35)
			must(t, a.Get([]int{0, 0}, []int{6, 4}, out))
			for i := range out {
				if out[i] != vals[i] {
					t.Fatalf("uneven elem %d = %v", i, out[i])
				}
			}
		}
		e.Sync()
		must(t, a.Destroy())
	})
}

func TestMoreRanksThanElements(t *testing.T) {
	runGA(t, 8, func(t *testing.T, e *Env) {
		a, err := e.Create("tiny", F64, []int{2, 2})
		must(t, err)
		if e.Me() == 7 {
			must(t, a.Put([]int{0, 0}, []int{1, 1}, []float64{1, 2, 3, 4}))
			out := make([]float64, 4)
			must(t, a.Get([]int{0, 0}, []int{1, 1}, out))
			for i, v := range out {
				if v != float64(i+1) {
					t.Fatalf("tiny elem %d = %v", i, v)
				}
			}
		}
		e.Sync()
		must(t, a.Destroy())
	})
}

var _ = fmt.Sprintf
