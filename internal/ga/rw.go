package ga

import (
	"fmt"

	"repro/internal/armci"
)

// rowStrides returns the byte stride of each dimension of a row-major
// array with the given extents.
func rowStrides(dims []int) []int {
	nd := len(dims)
	rs := make([]int, nd)
	rs[nd-1] = elemBytes
	for d := nd - 2; d >= 0; d-- {
		rs[d] = rs[d+1] * dims[d+1]
	}
	return rs
}

// patchStrided builds the ARMCI strided descriptor moving the patch
// [p.Lo, p.Hi] between the remote block of owner and a local row-major
// buffer holding the full request [lo..hi]. dir selects orientation:
// for a put/acc the local buffer is the source; for a get it is the
// destination. Trailing dimensions that are contiguous on both sides
// are collapsed, as GA's runtime does before calling ARMCI.
func (a *Array) patchStrided(owner int, p Patch, lo, hi []int, local armci.Addr, isPut bool) *armci.Strided {
	nd := len(a.dist.Dims)
	bd := a.dist.BlockDims(owner)
	remoteBase, _ := a.blockAddr(owner, p.Lo)
	reqDims := make([]int, nd)
	for d := 0; d < nd; d++ {
		reqDims[d] = hi[d] - lo[d] + 1
	}
	rsLocal := rowStrides(reqDims)
	rsRemote := rowStrides(bd)
	// Local base offset of the patch corner within the request buffer.
	off := 0
	for d := 0; d < nd; d++ {
		off += (p.Lo[d] - lo[d]) * rsLocal[d]
	}
	localBase := local.Add(off)
	// Patch extents.
	pl := make([]int, nd)
	for d := 0; d < nd; d++ {
		pl[d] = p.Hi[d] - p.Lo[d] + 1
	}
	// Collapse trailing dims that are dense on both sides.
	inner := nd - 1
	seg := pl[inner] * elemBytes
	for inner > 0 && seg == rsLocal[inner-1] && seg == rsRemote[inner-1] {
		inner--
		seg *= pl[inner]
	}
	// Build Table I notation: count[0] = seg bytes; levels walk outward.
	sl := inner
	count := make([]int, sl+1)
	count[0] = seg
	localStride := make([]int, sl)
	remoteStride := make([]int, sl)
	for i := 0; i < sl; i++ {
		dim := inner - 1 - i
		count[i+1] = pl[dim]
		localStride[i] = rsLocal[dim]
		remoteStride[i] = rsRemote[dim]
	}
	s := &armci.Strided{Count: count}
	if isPut {
		s.Src, s.Dst = localBase, remoteBase
		s.SrcStride, s.DstStride = localStride, remoteStride
	} else {
		s.Src, s.Dst = remoteBase, localBase
		s.SrcStride, s.DstStride = remoteStride, localStride
	}
	return s
}

// scratchFrom marshals host floats into a local runtime buffer. The
// copy is host-language marshalling, not simulated work: in the C
// implementation the user buffer is used directly.
func (a *Array) scratchFromF64(vals []float64) armci.Addr {
	addr := a.env.scratch(len(vals) * elemBytes)
	b, err := a.env.Rt.LocalBytes(addr, len(vals)*elemBytes)
	if err != nil {
		panic(err)
	}
	for i, v := range vals {
		f64put(b[8*i:], v)
	}
	return addr
}

func (a *Array) scratchToF64(addr armci.Addr, vals []float64) {
	b, err := a.env.Rt.LocalBytes(addr, len(vals)*elemBytes)
	if err != nil {
		panic(err)
	}
	for i := range vals {
		vals[i] = f64get(b[8*i:])
	}
}

func (a *Array) reqLen(lo, hi []int) int {
	n := 1
	for d := range lo {
		n *= hi[d] - lo[d] + 1
	}
	return n
}

func (a *Array) checkOp(lo, hi []int, vals []float64) error {
	if a.freed {
		return fmt.Errorf("ga: operation on destroyed array %q", a.name)
	}
	if err := checkRange(a.dist.Dims, lo, hi); err != nil {
		return err
	}
	if want := a.reqLen(lo, hi); len(vals) != want {
		return fmt.Errorf("ga: buffer has %d elements, patch needs %d", len(vals), want)
	}
	return nil
}

// fanKind selects the ARMCI operation family of a fan-out.
type fanKind int

const (
	fanPut fanKind = iota
	fanGet
	fanAcc
)

// issuePatch issues one owner's share of a fan-out: nonblocking by
// default, blocking when the environment forces the per-owner baseline
// (BlockingFanout). The handle is nil on the blocking path.
func (a *Array) issuePatch(kind fanKind, alpha float64, s *armci.Strided) (armci.Handle, error) {
	rt := a.env.Rt
	if a.env.BlockingFanout {
		var err error
		switch {
		case kind == fanPut && s.Levels() == 0:
			err = rt.Put(s.Src, s.Dst, s.SegBytes())
		case kind == fanPut:
			err = rt.PutS(s)
		case kind == fanGet && s.Levels() == 0:
			err = rt.Get(s.Src, s.Dst, s.SegBytes())
		case kind == fanGet:
			err = rt.GetS(s)
		case s.Levels() == 0:
			err = rt.Acc(armci.AccDbl, alpha, s.Src, s.Dst, s.SegBytes())
		default:
			err = rt.AccS(armci.AccDbl, alpha, s)
		}
		return nil, err
	}
	switch {
	case kind == fanPut && s.Levels() == 0:
		return rt.NbPut(s.Src, s.Dst, s.SegBytes())
	case kind == fanPut:
		return rt.NbPutS(s)
	case kind == fanGet && s.Levels() == 0:
		return rt.NbGet(s.Src, s.Dst, s.SegBytes())
	case kind == fanGet:
		return rt.NbGetS(s)
	case s.Levels() == 0:
		return rt.NbAcc(armci.AccDbl, alpha, s.Src, s.Dst, s.SegBytes())
	default:
		return rt.NbAccS(armci.AccDbl, alpha, s)
	}
}

// fanout is Figure 2 with per-owner aggregation: one strided ARMCI
// operation per owning process, all owners issued nonblocking, then a
// single WaitAll for local completion. On an issue error the handles
// already in flight are waited before reporting, so the shared scratch
// buffer is never left with outstanding operations.
func (a *Array) fanout(kind fanKind, alpha float64, lo, hi []int, local armci.Addr) error {
	var handles []armci.Handle
	for _, p := range a.dist.Intersect(lo, hi) {
		s := a.patchStrided(p.Owner, p, lo, hi, local, kind != fanGet)
		h, err := a.issuePatch(kind, alpha, s)
		if err != nil {
			armci.WaitAll(handles...)
			return err
		}
		if h != nil {
			handles = append(handles, h)
		}
	}
	armci.WaitAll(handles...)
	return nil
}

// Put writes vals (row-major over the inclusive range [lo, hi]) into
// the array (GA_Put / NGA_Put). One strided ARMCI put is issued per
// owning process (Figure 2), all owners nonblocking.
func (a *Array) Put(lo, hi []int, vals []float64) error {
	if err := a.checkOp(lo, hi, vals); err != nil {
		return err
	}
	scratch := a.scratchFromF64(vals)
	if err := a.fanout(fanPut, 1, lo, hi, scratch); err != nil {
		return fmt.Errorf("ga: Put %q: %w", a.name, err)
	}
	return nil
}

// Get reads the inclusive range [lo, hi] into vals (row-major)
// (GA_Get / NGA_Get). The per-owner gets overlap; the copy-out happens
// after all of them complete locally.
func (a *Array) Get(lo, hi []int, vals []float64) error {
	if err := a.checkOp(lo, hi, vals); err != nil {
		return err
	}
	scratch := a.env.scratch(len(vals) * elemBytes)
	if err := a.fanout(fanGet, 1, lo, hi, scratch); err != nil {
		return fmt.Errorf("ga: Get %q: %w", a.name, err)
	}
	a.scratchToF64(scratch, vals)
	return nil
}

// Acc atomically accumulates alpha*vals into the range [lo, hi]
// (GA_Acc / NGA_Acc).
func (a *Array) Acc(lo, hi []int, vals []float64, alpha float64) error {
	if err := a.checkOp(lo, hi, vals); err != nil {
		return err
	}
	if a.elem != F64 {
		return fmt.Errorf("ga: Acc on non-double array %q", a.name)
	}
	scratch := a.scratchFromF64(vals)
	if err := a.fanout(fanAcc, alpha, lo, hi, scratch); err != nil {
		return fmt.Errorf("ga: Acc %q: %w", a.name, err)
	}
	return nil
}

// ReadInc atomically adds inc to the int64 element at idx and returns
// its previous value (GA_Read_inc — NWChem's NXTVAL dynamic
// load-balancing counter).
func (a *Array) ReadInc(idx []int, inc int64) (int64, error) {
	if a.elem != I64 {
		return 0, fmt.Errorf("ga: ReadInc on non-integer array %q", a.name)
	}
	if err := checkRange(a.dist.Dims, idx, idx); err != nil {
		return 0, err
	}
	owner := a.dist.OwnerOfIndex(idx)
	addr, _ := a.blockAddr(owner, idx)
	return a.env.Rt.Rmw(armci.FetchAndAdd, addr, inc)
}

// Fill sets every element to v (GA_Fill); collective.
func (a *Array) Fill(v float64) error {
	if idx := a.myOwnerIdx(); idx >= 0 && idx < a.dist.OwnerCount() {
		b, err := a.Access()
		if err != nil {
			return err
		}
		n := len(b.mem) / elemBytes
		for i := 0; i < n; i++ {
			f64put(b.mem[8*i:], v)
		}
		if err := b.Release(); err != nil {
			return err
		}
	}
	a.sync()
	return nil
}

// FillI64 sets every element of an integer array to v; collective.
func (a *Array) FillI64(v int64) error {
	if a.elem != I64 {
		return fmt.Errorf("ga: FillI64 on non-integer array %q", a.name)
	}
	if idx := a.myOwnerIdx(); idx >= 0 && idx < a.dist.OwnerCount() {
		b, err := a.Access()
		if err != nil {
			return err
		}
		n := len(b.mem) / elemBytes
		for i := 0; i < n; i++ {
			i64put(b.mem[8*i:], v)
		}
		if err := b.Release(); err != nil {
			return err
		}
	}
	a.sync()
	return nil
}

// Zero clears the array (GA_Zero); collective.
func (a *Array) Zero() error { return a.Fill(0) }

// CopyTo copies this array into dst, which must have identical shape
// and element type (GA_Copy); collective. Each process gathers the
// range its dst block covers from the source.
func (a *Array) CopyTo(dst *Array) error {
	if len(a.dist.Dims) != len(dst.dist.Dims) || a.elem != dst.elem {
		return fmt.Errorf("ga: Copy shape/type mismatch %q -> %q", a.name, dst.name)
	}
	for d := range a.dist.Dims {
		if a.dist.Dims[d] != dst.dist.Dims[d] {
			return fmt.Errorf("ga: Copy extent mismatch in dim %d", d)
		}
	}
	a.sync()
	if idx := dst.myOwnerIdx(); idx >= 0 && idx < dst.dist.OwnerCount() {
		lo, hi, ok := dst.dist.Block(idx)
		if ok {
			vals := make([]float64, dst.reqLen(lo, hi))
			if err := a.Get(lo, hi, vals); err != nil {
				return err
			}
			blk, err := dst.Access()
			if err != nil {
				return err
			}
			for i, v := range vals {
				f64put(blk.mem[8*i:], v)
			}
			if err := blk.Release(); err != nil {
				return err
			}
		}
	}
	a.sync()
	return nil
}

// scratchFromI64 marshals host int64s into the scratch buffer.
func (a *Array) scratchFromI64(vals []int64) armci.Addr {
	addr := a.env.scratch(len(vals) * elemBytes)
	b, err := a.env.Rt.LocalBytes(addr, len(vals)*elemBytes)
	if err != nil {
		panic(err)
	}
	for i, v := range vals {
		i64put(b[8*i:], v)
	}
	return addr
}

// PutI64 writes int64 values over the inclusive range [lo, hi] of an
// integer array.
func (a *Array) PutI64(lo, hi []int, vals []int64) error {
	if a.elem != I64 {
		return fmt.Errorf("ga: PutI64 on non-integer array %q", a.name)
	}
	if err := checkRange(a.dist.Dims, lo, hi); err != nil {
		return err
	}
	if want := a.reqLen(lo, hi); len(vals) != want {
		return fmt.Errorf("ga: buffer has %d elements, patch needs %d", len(vals), want)
	}
	scratch := a.scratchFromI64(vals)
	if err := a.fanout(fanPut, 1, lo, hi, scratch); err != nil {
		return fmt.Errorf("ga: PutI64 %q: %w", a.name, err)
	}
	return nil
}

// GetI64 reads int64 values over the inclusive range [lo, hi].
func (a *Array) GetI64(lo, hi []int, vals []int64) error {
	if a.elem != I64 {
		return fmt.Errorf("ga: GetI64 on non-integer array %q", a.name)
	}
	if err := checkRange(a.dist.Dims, lo, hi); err != nil {
		return err
	}
	if want := a.reqLen(lo, hi); len(vals) != want {
		return fmt.Errorf("ga: buffer has %d elements, patch needs %d", len(vals), want)
	}
	scratch := a.env.scratch(len(vals) * elemBytes)
	if err := a.fanout(fanGet, 1, lo, hi, scratch); err != nil {
		return fmt.Errorf("ga: GetI64 %q: %w", a.name, err)
	}
	b, err := a.env.Rt.LocalBytes(scratch, len(vals)*elemBytes)
	if err != nil {
		return err
	}
	for i := range vals {
		vals[i] = i64get(b[8*i:])
	}
	return nil
}
