package ga

import (
	"testing"

	"repro/internal/armcimpi"
	"repro/internal/harness"
	"repro/internal/sim"
)

// runGAOpt is runGA pinned to the ARMCI-MPI implementation with
// explicit runtime options.
func runGAOpt(t *testing.T, n int, opt armcimpi.Options, body func(t *testing.T, e *Env)) {
	t.Helper()
	j, err := harness.NewJob(harness.TestPlatform(), n, harness.ImplARMCIMPI, opt)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Eng.Run(n, func(p *sim.Proc) {
		rt := j.Runtime(p)
		body(t, NewEnv(rt, j.MpiWorld.Rank(p)))
	}); err != nil {
		t.Fatal(err)
	}
}

func TestGAResultsUnchangedByShmPath(t *testing.T) {
	// The intra-node shared-memory fast path must be invisible to GA
	// data semantics: a mixed put/acc/dot workload over 4 ranks (two
	// nodes on the test platform, so both intra- and inter-node traffic)
	// yields bit-identical numbers with the path on and off.
	workload := func(noShm bool) (dot, norm float64) {
		opt := armcimpi.DefaultOptions()
		opt.NoShm = noShm
		runGAOpt(t, 4, opt, func(t *testing.T, e *Env) {
			a, err := e.Create("a", F64, []int{16, 16})
			must(t, err)
			b, err := e.Create("b", F64, []int{16, 16})
			must(t, err)
			if e.Me() == 0 {
				vals := make([]float64, 256)
				for i := range vals {
					vals[i] = float64(i%17) * 0.5
				}
				must(t, a.Put([]int{0, 0}, []int{15, 15}, vals))
				must(t, b.Put([]int{0, 0}, []int{15, 15}, vals))
			}
			e.Sync()
			// Every rank accumulates into a patch it mostly does not own.
			row := (4 * e.Me()) % 16
			patch := make([]float64, 4*16)
			for i := range patch {
				patch[i] = float64(e.Me()+1) * 0.25
			}
			must(t, a.Acc([]int{row, 0}, []int{row + 3, 15}, patch, 2))
			e.Sync()
			d, err := Dot(a, b)
			must(t, err)
			n2, err := a.Norm2()
			must(t, err)
			if e.Me() == 0 {
				dot, norm = d, n2
			}
		})
		return dot, norm
	}
	dOn, nOn := workload(false)
	dOff, nOff := workload(true)
	if dOn != dOff || nOn != nOff {
		t.Errorf("GA results differ with shm on/off: dot %v vs %v, norm %v vs %v",
			dOn, dOff, nOn, nOff)
	}
	if dOn == 0 || nOn == 0 {
		t.Error("degenerate workload: zero dot/norm")
	}
}
