package ga

import (
	"fmt"
	"sort"
	"sync"
)

// Distribution describes the regular block decomposition of an array
// over a process grid: dimension d is split into grid[d] nearly equal
// blocks, and grid coordinates map to owner ranks in row-major order.
type Distribution struct {
	Dims []int   // array extents
	Grid []int   // process grid extents (product <= nprocs)
	cuts [][]int // per dim: block start indices, length grid[d]+1
}

// factorGrid chooses a process grid for nprocs processes over the
// given array dims: prime factors of nprocs are assigned greedily to
// the dimension with the largest per-block extent, never exceeding the
// dimension's size. Any unassignable factor is dropped (those
// processes own no data, which GA permits).
func factorGrid(nprocs int, dims []int) []int {
	grid := make([]int, len(dims))
	for d := range grid {
		grid[d] = 1
	}
	for _, f := range primeFactors(nprocs) {
		// Pick the dimension where blocks are currently largest and can
		// still be split by f.
		best, bestLen := -1, 0
		for d := range dims {
			blockLen := dims[d] / grid[d]
			if grid[d]*f <= dims[d] && blockLen >= bestLen {
				best, bestLen = d, blockLen
			}
		}
		if best < 0 {
			continue // cannot use this factor; some ranks stay empty
		}
		grid[best] *= f
	}
	return grid
}

// primeFactors returns n's prime factorization, largest first.
func primeFactors(n int) []int {
	var fs []int
	for f := 2; f*f <= n; f++ {
		for n%f == 0 {
			fs = append(fs, f)
			n /= f
		}
	}
	if n > 1 {
		fs = append(fs, n)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(fs)))
	return fs
}

// distCache shares Distribution records across the ranks of a job:
// the decomposition is a pure function of (dims, nprocs) and identical
// on every rank, so at large process counts one immutable record
// serves everyone instead of each rank holding its own O(grid) cut
// vectors (a 1-D array over 16k ranks costs 128 KB of cuts per rank
// otherwise).
var (
	distMu    sync.Mutex
	distCache = map[string]*Distribution{}
)

// newDistribution builds (or returns the cached) block decomposition.
func newDistribution(dims []int, nprocs int) *Distribution {
	key := fmt.Sprint(dims, nprocs)
	distMu.Lock()
	defer distMu.Unlock()
	if d, ok := distCache[key]; ok {
		return d
	}
	d := buildDistribution(dims, nprocs)
	distCache[key] = d
	return d
}

// buildDistribution computes the block decomposition.
func buildDistribution(dims []int, nprocs int) *Distribution {
	grid := factorGrid(nprocs, dims)
	d := &Distribution{Dims: append([]int(nil), dims...), Grid: grid}
	d.cuts = make([][]int, len(dims))
	for dim := range dims {
		g := grid[dim]
		cuts := make([]int, g+1)
		base, rem := dims[dim]/g, dims[dim]%g
		pos := 0
		for b := 0; b < g; b++ {
			cuts[b] = pos
			pos += base
			if b < rem {
				pos++
			}
		}
		cuts[g] = dims[dim]
		d.cuts[dim] = cuts
	}
	return d
}

// OwnerCount returns the number of processes that own data.
func (d *Distribution) OwnerCount() int {
	n := 1
	for _, g := range d.Grid {
		n *= g
	}
	return n
}

// coordsOf maps an owner index (0..OwnerCount-1) to grid coordinates
// in row-major order.
func (d *Distribution) coordsOf(owner int) []int {
	nd := len(d.Grid)
	c := make([]int, nd)
	for dim := nd - 1; dim >= 0; dim-- {
		c[dim] = owner % d.Grid[dim]
		owner /= d.Grid[dim]
	}
	return c
}

// ownerOf maps grid coordinates to the owner index.
func (d *Distribution) ownerOf(coords []int) int {
	o := 0
	for dim := 0; dim < len(d.Grid); dim++ {
		o = o*d.Grid[dim] + coords[dim]
	}
	return o
}

// Block returns the inclusive [lo, hi] index range owned by owner in
// each dimension; ok is false when the owner index is out of range or
// the block is empty.
func (d *Distribution) Block(owner int) (lo, hi []int, ok bool) {
	if owner < 0 || owner >= d.OwnerCount() {
		return nil, nil, false
	}
	c := d.coordsOf(owner)
	lo = make([]int, len(d.Dims))
	hi = make([]int, len(d.Dims))
	for dim := range d.Dims {
		lo[dim] = d.cuts[dim][c[dim]]
		hi[dim] = d.cuts[dim][c[dim]+1] - 1
		if hi[dim] < lo[dim] {
			return nil, nil, false
		}
	}
	return lo, hi, true
}

// BlockDims returns the extents of an owner's block.
func (d *Distribution) BlockDims(owner int) []int {
	lo, hi, ok := d.Block(owner)
	if !ok {
		return nil
	}
	out := make([]int, len(lo))
	for i := range lo {
		out[i] = hi[i] - lo[i] + 1
	}
	return out
}

// OwnerOfIndex returns the owner index holding the given element.
func (d *Distribution) OwnerOfIndex(idx []int) int {
	coords := make([]int, len(d.Dims))
	for dim := range d.Dims {
		coords[dim] = sort.SearchInts(d.cuts[dim][1:], idx[dim]+1)
	}
	return d.ownerOf(coords)
}

// Patch is the intersection of a requested range with one owner's
// block (inclusive bounds).
type Patch struct {
	Owner  int // owner index (not world rank)
	Lo, Hi []int
}

// Intersect returns the per-owner patches covering [lo, hi], in owner
// order — the fan-out of the paper's Figure 2.
func (d *Distribution) Intersect(lo, hi []int) []Patch {
	nd := len(d.Dims)
	// Per dimension, find the grid coordinate range touched.
	cLo := make([]int, nd)
	cHi := make([]int, nd)
	for dim := 0; dim < nd; dim++ {
		cLo[dim] = sort.SearchInts(d.cuts[dim][1:], lo[dim]+1)
		cHi[dim] = sort.SearchInts(d.cuts[dim][1:], hi[dim]+1)
	}
	var patches []Patch
	coords := append([]int(nil), cLo...)
	for {
		owner := d.ownerOf(coords)
		bLo, bHi, ok := d.Block(owner)
		if ok {
			p := Patch{Owner: owner, Lo: make([]int, nd), Hi: make([]int, nd)}
			for dim := 0; dim < nd; dim++ {
				p.Lo[dim] = max(lo[dim], bLo[dim])
				p.Hi[dim] = min(hi[dim], bHi[dim])
			}
			patches = append(patches, p)
		}
		// Odometer over the coordinate ranges.
		dim := nd - 1
		for ; dim >= 0; dim-- {
			coords[dim]++
			if coords[dim] <= cHi[dim] {
				break
			}
			coords[dim] = cLo[dim]
		}
		if dim < 0 {
			return patches
		}
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
