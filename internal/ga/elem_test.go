package ga

import (
	"math"
	"math/rand"
	"testing"
)

func TestGatherScatter(t *testing.T) {
	runGA(t, 4, func(t *testing.T, e *Env) {
		a, err := e.Create("gs", F64, []int{20, 20})
		must(t, err)
		if e.Me() == 1 {
			// Scatter to scattered subscripts across all owners.
			subs := [][]int{{0, 0}, {19, 19}, {3, 17}, {17, 3}, {10, 10}, {0, 19}}
			vals := []float64{1.5, -2, 3, 4.25, 5, -6}
			must(t, a.Scatter(subs, vals))
			// Gather them back in a different order.
			perm := [][]int{{10, 10}, {0, 0}, {0, 19}, {17, 3}, {3, 17}, {19, 19}}
			got := make([]float64, len(perm))
			must(t, a.Gather(perm, got))
			want := []float64{5, 1.5, -6, 4.25, 3, -2}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("gather[%d] = %v, want %v", i, got[i], want[i])
				}
			}
		}
		e.Sync()
		must(t, a.Destroy())
	})
}

func TestScatterAcc(t *testing.T) {
	runGA(t, 3, func(t *testing.T, e *Env) {
		a, err := e.Create("sacc", F64, []int{9, 9})
		must(t, err)
		subs := [][]int{{1, 1}, {8, 8}, {4, 4}}
		vals := []float64{1, 1, 1}
		// Every rank accumulates 2x ones at the same subscripts.
		must(t, a.ScatterAcc(subs, vals, 2))
		e.Sync()
		if e.Me() == 0 {
			got := make([]float64, 3)
			must(t, a.Gather(subs, got))
			for i, v := range got {
				if v != 6 { // 3 ranks x alpha 2
					t.Fatalf("scatter-acc elem %d = %v, want 6", i, v)
				}
			}
		}
		e.Sync()
		must(t, a.Destroy())
	})
}

func TestGatherErrors(t *testing.T) {
	runGA(t, 2, func(t *testing.T, e *Env) {
		a, err := e.Create("g", F64, []int{4, 4})
		must(t, err)
		if e.Me() == 0 {
			if err := a.Gather([][]int{{9, 9}}, make([]float64, 1)); err == nil {
				t.Error("out-of-range gather accepted")
			}
			if err := a.Gather([][]int{{0, 0}}, make([]float64, 2)); err == nil {
				t.Error("length mismatch accepted")
			}
		}
		e.Sync()
		must(t, a.Destroy())
	})
}

func TestScaleAddDotNorm(t *testing.T) {
	runGA(t, 4, func(t *testing.T, e *Env) {
		a, err := e.Create("a", F64, []int{10, 6})
		must(t, err)
		b, err := a.Duplicate("b")
		must(t, err)
		c, err := a.Duplicate("c")
		must(t, err)
		must(t, a.Fill(2))
		must(t, b.Fill(3))
		must(t, a.Scale(2)) // a = 4 everywhere
		must(t, Add(1, a, 2, b, c))
		// c = 4 + 6 = 10 everywhere.
		d, err := Dot(c, c)
		must(t, err)
		if want := 100.0 * 60; d != want {
			t.Errorf("dot = %v, want %v", d, want)
		}
		n, err := c.Norm2()
		must(t, err)
		if math.Abs(n-math.Sqrt(6000)) > 1e-9 {
			t.Errorf("norm = %v", n)
		}
		e.Sync()
		must(t, a.Destroy())
		must(t, b.Destroy())
		must(t, c.Destroy())
	})
}

func TestMaxElem(t *testing.T) {
	runGA(t, 4, func(t *testing.T, e *Env) {
		a, err := e.Create("m", F64, []int{12, 12})
		must(t, err)
		must(t, a.Fill(1))
		if e.Me() == 2 {
			must(t, a.Put([]int{7, 9}, []int{7, 9}, []float64{-42}))
		}
		e.Sync()
		v, idx, err := a.MaxElem()
		must(t, err)
		if v != 42 || idx[0] != 7 || idx[1] != 9 {
			t.Errorf("max elem = %v at %v, want 42 at [7 9]", v, idx)
		}
		e.Sync()
		must(t, a.Destroy())
	})
}

func TestDgemmAgainstSerial(t *testing.T) {
	const M, K, N = 12, 18, 9
	rnd := rand.New(rand.NewSource(11))
	av := make([]float64, M*K)
	bv := make([]float64, K*N)
	for i := range av {
		av[i] = rnd.Float64() - 0.5
	}
	for i := range bv {
		bv[i] = rnd.Float64() - 0.5
	}
	want := make([]float64, M*N)
	for i := 0; i < M; i++ {
		for k := 0; k < K; k++ {
			for j := 0; j < N; j++ {
				want[i*N+j] += av[i*K+k] * bv[k*N+j]
			}
		}
	}
	runGA(t, 4, func(t *testing.T, e *Env) {
		a, err := e.Create("A", F64, []int{M, K})
		must(t, err)
		b, err := e.Create("B", F64, []int{K, N})
		must(t, err)
		c, err := e.Create("C", F64, []int{M, N})
		must(t, err)
		if e.Me() == 0 {
			must(t, a.Put([]int{0, 0}, []int{M - 1, K - 1}, av))
			must(t, b.Put([]int{0, 0}, []int{K - 1, N - 1}, bv))
		}
		must(t, c.Fill(1)) // exercises beta
		must(t, Dgemm(2, a, b, 0.5, c, 7, nil))
		if e.Me() == 1 {
			got := make([]float64, M*N)
			must(t, c.Get([]int{0, 0}, []int{M - 1, N - 1}, got))
			for i := range got {
				expect := 2*want[i] + 0.5
				if math.Abs(got[i]-expect) > 1e-9 {
					t.Fatalf("C[%d] = %v, want %v", i, got[i], expect)
				}
			}
		}
		e.Sync()
		must(t, a.Destroy())
		must(t, b.Destroy())
		must(t, c.Destroy())
	})
}

func TestDgemmShapeErrors(t *testing.T) {
	runGA(t, 2, func(t *testing.T, e *Env) {
		a, _ := e.Create("A", F64, []int{4, 6})
		b, _ := e.Create("B", F64, []int{5, 3}) // K mismatch
		c, _ := e.Create("C", F64, []int{4, 3})
		if err := Dgemm(1, a, b, 0, c, 4, nil); err == nil {
			t.Error("Dgemm with K mismatch accepted")
		}
		e.Sync()
		must(t, a.Destroy())
		must(t, b.Destroy())
		must(t, c.Destroy())
	})
}

func TestTransposeLibrary(t *testing.T) {
	runGA(t, 4, func(t *testing.T, e *Env) {
		a, err := e.Create("A", F64, []int{10, 14})
		must(t, err)
		b, err := e.Create("B", F64, []int{14, 10})
		must(t, err)
		if e.Me() == 0 {
			vals := make([]float64, 10*14)
			for i := range vals {
				vals[i] = float64(i)
			}
			must(t, a.Put([]int{0, 0}, []int{9, 13}, vals))
		}
		must(t, Transpose(a, b))
		if e.Me() == 3 {
			got := make([]float64, 14*10)
			must(t, b.Get([]int{0, 0}, []int{13, 9}, got))
			for i := 0; i < 10; i++ {
				for j := 0; j < 14; j++ {
					if got[j*10+i] != float64(i*14+j) {
						t.Fatalf("B[%d][%d] wrong", j, i)
					}
				}
			}
		}
		e.Sync()
		must(t, a.Destroy())
		must(t, b.Destroy())
	})
}

func TestPutGetI64(t *testing.T) {
	runGA(t, 4, func(t *testing.T, e *Env) {
		a, err := e.Create("ints", I64, []int{8, 8})
		must(t, err)
		if e.Me() == 2 {
			vals := make([]int64, 64)
			for i := range vals {
				vals[i] = int64(i*i) - 31
			}
			must(t, a.PutI64([]int{0, 0}, []int{7, 7}, vals))
			out := make([]int64, 64)
			must(t, a.GetI64([]int{0, 0}, []int{7, 7}, out))
			for i := range out {
				if out[i] != vals[i] {
					t.Fatalf("i64 elem %d = %d, want %d", i, out[i], vals[i])
				}
			}
			if err := a.PutI64([]int{0, 0}, []int{0, 0}, []int64{1, 2}); err == nil {
				t.Error("length mismatch accepted")
			}
		}
		e.Sync()
		// ReadInc interoperates with PutI64 contents.
		if e.Me() == 1 {
			old, err := a.ReadInc([]int{3, 3}, 10)
			must(t, err)
			want := int64(27*27) - 31 // (3*8+3)^2 - 31
			if old != want {
				t.Errorf("ReadInc old = %d, want %d", old, want)
			}
		}
		e.Sync()
		must(t, a.Destroy())
	})
}
