package core

import (
	"testing"

	"repro/internal/harness"
)

func TestFacadeRunsBothStacks(t *testing.T) {
	for _, impl := range []Impl{ImplNative, ImplARMCIMPI} {
		impl := impl
		t.Run(string(impl), func(t *testing.T) {
			ran := 0
			_, err := Run(harness.TestPlatform(), 4, impl, DefaultOptions(), func(rt Runtime) {
				addrs, err := rt.Malloc(64)
				if err != nil {
					t.Error(err)
					return
				}
				if rt.Rank() == 0 {
					src := rt.MallocLocal(16)
					if err := rt.Put(src, addrs[1], 16); err != nil {
						t.Error(err)
					}
				}
				rt.Barrier()
				if err := rt.Free(addrs[rt.Rank()]); err != nil {
					t.Error(err)
				}
				ran++
			})
			if err != nil {
				t.Fatal(err)
			}
			if ran != 4 {
				t.Errorf("ran %d ranks", ran)
			}
		})
	}
}

func TestFacadeOptions(t *testing.T) {
	opt := DefaultOptions()
	if opt.StridedMethod != MethodDirect || opt.IOVMethod != MethodAuto {
		t.Errorf("defaults: %+v", opt)
	}
	for _, m := range []Method{MethodConservative, MethodBatched, MethodIOVDirect, MethodDirect, MethodAuto} {
		if m.String() == "" {
			t.Error("method without name")
		}
	}
	if _, err := harness.ParseImpl(string(ImplNative)); err != nil {
		t.Error(err)
	}
}

func TestFacadeDescriptors(t *testing.T) {
	s := &Strided{
		Src: Addr{Rank: 0, VA: 0x10}, Dst: Addr{Rank: 1, VA: 0x10},
		SrcStride: []int{16}, DstStride: []int{16}, Count: []int{8, 2},
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	g := s.ToGIOV()
	if g.Len() != 2 {
		t.Errorf("giov len %d", g.Len())
	}
	var giov GIOV = g
	if giov.TotalBytes() != 16 {
		t.Errorf("total %d", giov.TotalBytes())
	}
}
