// Package core is the front door to the paper's primary contribution:
// ARMCI-MPI, the implementation of the ARMCI one-sided runtime on MPI
// one-sided communication (internal/armcimpi), together with the two
// handles needed to use it — the ARMCI API surface (internal/armci) and
// the job harness (internal/harness) that assembles the simulated
// platform stack of Figure 1.
//
// The aliases below define the supported public API; the substrate
// packages (sim, fabric, mpi, native, ga, nwchem) are implementation
// detail that examples and benchmarks may also use directly.
package core

import (
	"repro/internal/armci"
	"repro/internal/armcimpi"
	"repro/internal/harness"
)

// Runtime is the ARMCI interface both implementations satisfy; GA-level
// code is oblivious to which one is underneath.
type Runtime = armci.Runtime

// Addr is an ARMCI global address <process id, address>.
type Addr = armci.Addr

// Strided is the Table I strided-transfer descriptor.
type Strided = armci.Strided

// GIOV is the generalized I/O vector descriptor (armci_giov_t).
type GIOV = armci.GIOV

// Options tunes the ARMCI-MPI runtime (noncontiguous methods, batch
// size, MPI-3 mode, staging).
type Options = armcimpi.Options

// Method selects a noncontiguous transfer strategy (SectionVI).
type Method = armcimpi.Method

// Noncontiguous transfer strategies.
const (
	MethodConservative = armcimpi.MethodConservative
	MethodBatched      = armcimpi.MethodBatched
	MethodIOVDirect    = armcimpi.MethodIOVDirect
	MethodDirect       = armcimpi.MethodDirect
	MethodAuto         = armcimpi.MethodAuto
)

// DefaultOptions returns the paper's default configuration.
func DefaultOptions() Options { return armcimpi.DefaultOptions() }

// Impl selects the ARMCI implementation under the GA stack.
type Impl = harness.Impl

// The two stacks of Figure 1.
const (
	ImplNative   = harness.ImplNative
	ImplARMCIMPI = harness.ImplARMCIMPI
)

// Job is a configured simulated run (engine + machine + runtimes).
type Job = harness.Job

// NewJob builds the simulation stack; Run executes a rank body on it.
var (
	NewJob = harness.NewJob
	Run    = harness.Run
)
