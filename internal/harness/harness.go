// Package harness assembles a complete simulated job: engine, fabric
// machine, MPI world, and one of the four ARMCI runtimes (native,
// ARMCI-MPI, data-server, or dartmpi), mirroring the paper's Figure 1
// software stacks. It is the entry point used by tests, benchmarks,
// examples, and the CLIs.
package harness

import (
	"fmt"

	"repro/internal/armci"
	"repro/internal/armcimpi"
	"repro/internal/dartmpi"
	"repro/internal/dataserver"
	"repro/internal/fabric"
	"repro/internal/mpi"
	"repro/internal/native"
	"repro/internal/obs"
	"repro/internal/platform"
	"repro/internal/sim"
)

// Impl selects the ARMCI implementation under the Global Arrays stack.
type Impl string

const (
	// ImplNative is the vendor-tuned baseline (Figure 1a).
	ImplNative Impl = "native"
	// ImplARMCIMPI is the paper's contribution (Figure 1b).
	ImplARMCIMPI Impl = "armci-mpi"
	// ImplDataServer is the prior two-sided approach the paper's
	// Related Work contrasts: a per-node data server over MPI
	// two-sided messaging (SectionIX).
	ImplDataServer Impl = "armci-ds"
	// ImplDartMPI is the locality-aware dual-window runtime in the
	// DART-MPI style: shared-memory windows per node, tiered routing,
	// and hierarchical leader staging over the armcimpi wire path.
	ImplDartMPI Impl = "dartmpi"
)

// ImplNames returns the valid implementation names in registry order
// (for CLI usage and error text).
func ImplNames() []string {
	return []string{string(ImplNative), string(ImplARMCIMPI), string(ImplDataServer), string(ImplDartMPI)}
}

// Sched selects the engine execution mode for every job the harness
// builds. The zero value (goroutine mode) is the default and the
// reference; cmd/armci-bench installs continuation mode from -sched.
// Callers that need a per-job override set Job.Eng.Mode before Run.
var Sched sim.Mode

// Shards is the host shard count requested for parallel-mode runs (set
// from cmd/armci-bench -shards). Full ARMCI stack jobs ignore it — see
// NewJobObs — but shard-confined sweeps (bench.ParallelSpeedup) honor
// it as their default shard count.
var Shards int

// ApplyShards configures eng for multi-shard parallel execution over
// nranks ranks of a machine with parameters par: a node-aligned rank
// partition (fabric.NodeAlignedPartition, so NICs, mailboxes, and shm
// windows never straddle a shard boundary) and the fabric's minimum
// cross-node latency as the conservative lookahead. It returns the
// effective shard count (clamped to the node count; 1 when eng is not
// in parallel mode or shards <= 1, in which case eng is untouched).
func ApplyShards(eng *sim.Engine, par fabric.Params, nranks, shards int) int {
	if eng.Mode != sim.ModeParallel || shards <= 1 {
		return 1
	}
	part, k := fabric.NodeAlignedPartition(par, nranks, shards)
	if k <= 1 {
		return 1
	}
	eng.Shards = k
	eng.Partition = part
	eng.Lookahead = par.MinCrossNodeLatency()
	return k
}

// ParseImpl validates an implementation name from a CLI flag.
func ParseImpl(s string) (Impl, error) {
	switch Impl(s) {
	case ImplNative, ImplARMCIMPI, ImplDataServer, ImplDartMPI:
		return Impl(s), nil
	default:
		return "", fmt.Errorf("harness: unknown ARMCI implementation %q (want native, armci-mpi, armci-ds, or dartmpi)", s)
	}
}

// Job is one configured simulated run.
type Job struct {
	Eng  *sim.Engine
	M    *fabric.Machine
	Plat *platform.Platform
	Impl Impl
	Opt  armcimpi.Options

	MpiWorld    *mpi.World
	NativeWorld *native.World
	AMWorld     *armcimpi.World
	DSWorld     *dataserver.World
	DartWorld   *dartmpi.World
}

// NewJob builds the simulation stack for nranks ranks of the platform.
func NewJob(plat *platform.Platform, nranks int, impl Impl, opt armcimpi.Options) (*Job, error) {
	return NewJobObs(plat, nranks, impl, opt, nil)
}

// NewJobObs is NewJob with an observability recorder attached: the
// recorder opens a new trace process for this job, becomes the engine's
// scheduling observer, and is wired into every layer's hook point
// (fabric link busy, MPI lock/epoch/op metrics, ARMCI staging and
// mutexes, data-server queueing). rec may be nil: observability off.
func NewJobObs(plat *platform.Platform, nranks int, impl Impl, opt armcimpi.Options, rec *obs.Recorder) (*Job, error) {
	par := plat.Params
	if impl == ImplDataServer && par.CoresPerNode > 1 {
		// The data server consumes a core per node (SectionIX): the
		// remaining ranks share proportionally less compute.
		par.Flops *= float64(par.CoresPerNode-1) / float64(par.CoresPerNode)
	}
	eng := sim.NewEngine()
	eng.Mode = Sched
	if Sched == sim.ModeParallel {
		// Full-stack jobs mutate cross-rank state synchronously at the
		// origin — NIC clocks of both endpoints, MPI lock queues, the
		// shared recorder — so they always run as one shard, where the
		// parallel engine executes the exact continuation-mode schedule.
		// Multi-shard execution is reserved for shard-confined workloads
		// built directly on sim+fabric (fabric.DeliverSharded; see
		// bench.ParallelSpeedup and ApplyShards).
		eng.Shards = 1
	}
	m, err := fabric.NewMachine(eng, par, nranks)
	if err != nil {
		return nil, err
	}
	j := &Job{Eng: eng, M: m, Plat: plat, Impl: impl, Opt: opt}
	j.MpiWorld = mpi.NewWorld(m, &plat.MPI)
	if opt.UseMPI3 {
		j.MpiWorld.EnableMPI3()
	}
	switch impl {
	case ImplNative:
		j.NativeWorld = native.NewWorld(m, &plat.Native)
	case ImplARMCIMPI:
		j.AMWorld = armcimpi.NewWorld(j.MpiWorld)
	case ImplDataServer:
		j.DSWorld = dataserver.NewWorld(m, &plat.Native)
	case ImplDartMPI:
		j.DartWorld = dartmpi.NewWorld(j.MpiWorld)
	default:
		return nil, fmt.Errorf("harness: unknown implementation %q", impl)
	}
	if rec != nil {
		rec.BeginJob(fmt.Sprintf("%s/%s/n=%d", plat.Name, impl, nranks), eng, nranks)
		eng.Observe(rec)
		m.Obs = rec
		j.MpiWorld.Obs = rec
		if j.DSWorld != nil {
			j.DSWorld.Obs = rec
		}
	}
	return j, nil
}

// Runtime builds the per-rank ARMCI runtime handle; call from inside a
// rank body.
func (j *Job) Runtime(p *sim.Proc) armci.Runtime {
	r := j.MpiWorld.Rank(p)
	switch j.Impl {
	case ImplNative:
		return native.New(j.NativeWorld, armci.MPIColl{R: r}, p)
	case ImplDataServer:
		return dataserver.New(j.DSWorld, armci.MPIColl{R: r}, p)
	case ImplDartMPI:
		return dartmpi.New(j.DartWorld, r, j.Opt)
	default:
		return armcimpi.New(j.AMWorld, r, j.Opt)
	}
}

// Run executes body on nranks ranks of the platform under the chosen
// implementation and returns the job for inspection (counters, final
// virtual time).
func Run(plat *platform.Platform, nranks int, impl Impl, opt armcimpi.Options, body func(rt armci.Runtime)) (*Job, error) {
	return RunObs(plat, nranks, impl, opt, nil, body)
}

// RunObs is Run with an observability recorder attached (may be nil).
func RunObs(plat *platform.Platform, nranks int, impl Impl, opt armcimpi.Options, rec *obs.Recorder, body func(rt armci.Runtime)) (*Job, error) {
	j, err := NewJobObs(plat, nranks, impl, opt, rec)
	if err != nil {
		return nil, err
	}
	if err := j.Eng.Run(nranks, func(p *sim.Proc) { body(j.Runtime(p)) }); err != nil {
		return nil, err
	}
	return j, nil
}

// TestPlatform returns a small, fast, fully featured platform for unit
// tests: low latencies keep virtual event counts small, and a nonzero
// pin cost exercises the registration model.
func TestPlatform() *platform.Platform {
	return &platform.Platform{
		System:       "test",
		Interconnect: "test-fabric",
		MPIVersion:   "sim",
		Params: fabric.Params{
			Name: "test", Nodes: 64, CoresPerNode: 2,
			LatencyNs: 1000, Bandwidth: 1e9, MsgOverhead: 100,
			LocalLatencyNs: 100, LocalBandwidth: 4e9,
			CopyRate: 4e9, Flops: 1e9,
			PageSize: 4096, PinPageNs: 0, BounceThreshold: 0,
			BounceRate: 1e9, UnpinnedRate: 0.5e9, AccumRate: 1e9,
			ShmCopyRate: 8e9,
		},
		Native: platform.Tuning{BandwidthFrac: 1, OpOverheadNs: 200, RmwRTTs: 1, PrepinAlloc: true},
		MPI:    platform.Tuning{BandwidthFrac: 0.9, OpOverheadNs: 400},
	}
}
