package harness

import (
	"errors"
	"testing"

	"repro/internal/armci"
	"repro/internal/armcimpi"
	"repro/internal/obs"
	"repro/internal/sim"
)

// TestDartMallocAttachFaultCleanup injects a failure into the
// node-window attach that follows the inner Malloc and asserts the
// error path releases the already-completed inner allocation: neither
// the dartmpi translation table nor the inner GMR table may grow, and
// the runtime must keep working once the fault clears.
func TestDartMallocAttachFaultCleanup(t *testing.T) {
	rec := obs.New(obs.Options{})
	j, err := NewJobObs(TestPlatform(), 4, ImplDartMPI, armcimpi.DefaultOptions(), rec)
	if err != nil {
		t.Fatal(err)
	}
	baseAllocs := j.DartWorld.NumAllocs()
	baseGMRs := j.DartWorld.Inner.NumGMRs()
	injected := errors.New("injected attach fault")
	j.DartWorld.SetAttachFault(func(bytes int) error { return injected })

	err = j.Eng.Run(4, func(p *sim.Proc) {
		rt := j.Runtime(p)
		if _, err := rt.Malloc(4096); !errors.Is(err, injected) {
			t.Errorf("rank %d: Malloc error = %v, want injected fault", rt.Rank(), err)
		}
		rt.Barrier()
		if rt.Rank() == 0 {
			if n := j.DartWorld.NumAllocs(); n != baseAllocs {
				t.Errorf("dart allocs after failed Malloc = %d, want %d", n, baseAllocs)
			}
			if n := j.DartWorld.Inner.NumGMRs(); n != baseGMRs {
				t.Errorf("inner GMRs after failed Malloc = %d, want %d (leak)", n, baseGMRs)
			}
			j.DartWorld.SetAttachFault(nil)
		}
		rt.Barrier()
		// The fault is cleared; a full cycle must still succeed.
		addrs, err := rt.Malloc(4096)
		must(t, err)
		rt.Barrier()
		must(t, rt.Free(addrs[rt.Rank()]))
	})
	if err != nil {
		t.Fatal(err)
	}
	if n := j.DartWorld.NumAllocs(); n != baseAllocs {
		t.Errorf("dart allocs at end = %d, want %d", n, baseAllocs)
	}
	if n := j.DartWorld.Inner.NumGMRs(); n != baseGMRs {
		t.Errorf("inner GMRs at end = %d, want %d", n, baseGMRs)
	}
}

// TestDartMallocGroupAttachFaultCleanup is the group-allocation twin:
// the injected attach failure must release the inner group GMR.
func TestDartMallocGroupAttachFaultCleanup(t *testing.T) {
	rec := obs.New(obs.Options{})
	j, err := NewJobObs(TestPlatform(), 6, ImplDartMPI, armcimpi.DefaultOptions(), rec)
	if err != nil {
		t.Fatal(err)
	}
	baseAllocs := j.DartWorld.NumAllocs()
	baseGMRs := j.DartWorld.Inner.NumGMRs()
	injected := errors.New("injected group attach fault")

	err = j.Eng.Run(6, func(p *sim.Proc) {
		rt := j.Runtime(p)
		g, err := rt.GroupCreateCollective([]int{1, 2, 4})
		must(t, err)
		if rt.Rank() == 0 {
			j.DartWorld.SetAttachFault(func(bytes int) error { return injected })
		}
		rt.Barrier()
		if g != nil {
			if _, err := rt.MallocGroup(g, 2048); !errors.Is(err, injected) {
				t.Errorf("rank %d: MallocGroup error = %v, want injected fault", rt.Rank(), err)
			}
		}
		rt.Barrier()
		if rt.Rank() == 0 {
			if n := j.DartWorld.NumAllocs(); n != baseAllocs {
				t.Errorf("dart allocs after failed MallocGroup = %d, want %d", n, baseAllocs)
			}
			if n := j.DartWorld.Inner.NumGMRs(); n != baseGMRs {
				t.Errorf("inner GMRs after failed MallocGroup = %d, want %d (leak)", n, baseGMRs)
			}
			j.DartWorld.SetAttachFault(nil)
		}
		rt.Barrier()
		if g != nil {
			addrs, err := rt.MallocGroup(g, 2048)
			must(t, err)
			must(t, rt.FreeGroup(g, addrs[g.RankOf(rt.Rank())]))
		}
		rt.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	if n := j.DartWorld.Inner.NumGMRs(); n != baseGMRs {
		t.Errorf("inner GMRs at end = %d, want %d", n, baseGMRs)
	}
}

// TestDartManyAllocsSpanIndex is the regression test for the sorted
// span index replacing the O(#allocs) scan in dartmpi.World.find: with
// dozens of live allocations of varied sizes, ops addressed into the
// middle of each one must resolve to the right allocation and offset
// on every locality tier, and out-of-order frees must keep the index
// consistent down to empty.
func TestDartManyAllocsSpanIndex(t *testing.T) {
	const nAlloc = 48
	rec := obs.New(obs.Options{})
	j, err := NewJobObs(TestPlatform(), 4, ImplDartMPI, armcimpi.DefaultOptions(), rec)
	if err != nil {
		t.Fatal(err)
	}

	err = j.Eng.Run(4, func(p *sim.Proc) {
		rt := j.Runtime(p)
		all := make([][]armci.Addr, nAlloc)
		for k := range all {
			addrs, err := rt.Malloc(96 + 32*(k%5))
			must(t, err)
			all[k] = addrs
		}
		rt.Barrier()
		if rt.Rank() == 0 {
			if n := j.DartWorld.NumAllocs(); n != nAlloc {
				t.Errorf("live allocs = %d, want %d", n, nAlloc)
			}
			src := rt.MallocLocal(64)
			dst := rt.MallocLocal(64)
			// Write a distinct pattern into the middle of every
			// allocation: rank 1 is same-node, ranks 2 and 3 remote on
			// the test platform's 2-core nodes, so the lookup is
			// exercised on every tier.
			for k := 0; k < nAlloc; k++ {
				target := 1 + k%3
				fill(t, rt, src, 64, func(i int) byte { return byte(k*7 + i) })
				must(t, rt.Put(src, all[k][target].Add(8*(k%4)), 64))
			}
			// Read back in reverse order; a wrong span resolution
			// returns another allocation's bytes.
			for k := nAlloc - 1; k >= 0; k-- {
				target := 1 + k%3
				must(t, rt.Get(all[k][target].Add(8*(k%4)), dst, 64))
				b, err := rt.LocalBytes(dst, 64)
				must(t, err)
				for i := range b {
					if b[i] != byte(k*7+i) {
						t.Fatalf("alloc %d byte %d = %d, want %d", k, i, b[i], byte(k*7+i))
					}
				}
			}
			must(t, rt.FreeLocal(src))
			must(t, rt.FreeLocal(dst))
		}
		rt.Barrier()
		// Free out of order — evens ascending, then odds descending —
		// so unregister removes from the middle of the span lists.
		for k := 0; k < nAlloc; k += 2 {
			must(t, rt.Free(all[k][rt.Rank()]))
		}
		for k := nAlloc - 1; k >= 1; k -= 2 {
			must(t, rt.Free(all[k][rt.Rank()]))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if n := j.DartWorld.NumAllocs(); n != 0 {
		t.Errorf("live allocs at end = %d, want 0", n)
	}
	if n := j.DartWorld.Inner.NumGMRs(); n != 0 {
		t.Errorf("inner GMRs at end = %d, want 0", n)
	}
}
