package harness

import (
	"encoding/binary"
	"math"
	"math/rand"
	"testing"

	"repro/internal/armci"
	"repro/internal/armcimpi"
)

// TestStacksComputeIdenticalResults drives a seeded pseudo-random mix
// of contiguous, strided, IOV, accumulate, and RMW operations and
// checks that all four stacks — native, ARMCI-MPI on MPI-2 epochs,
// ARMCI-MPI on the MPI-3 backend, and the two-sided data-server
// implementation — leave the global memory in an identical state. Operations are serialized by barriers between
// conflicting phases so the outcome is well-defined under ARMCI's
// location-consistency model.
func TestStacksComputeIdenticalResults(t *testing.T) {
	const (
		nranks = 6
		slice  = 2048
		rounds = 12
	)
	type variant struct {
		name string
		impl Impl
		opt  armcimpi.Options
	}
	variants := []variant{
		{"native", ImplNative, armcimpi.DefaultOptions()},
		{"armci-mpi", ImplARMCIMPI, armcimpi.DefaultOptions()},
		{"armci-mpi3", ImplARMCIMPI, mpi3Options()},
		{"armci-ds", ImplDataServer, armcimpi.DefaultOptions()},
	}
	var snapshots [][]byte
	for _, v := range variants {
		var final []byte
		_, err := Run(TestPlatform(), nranks, v.impl, v.opt, func(rt armci.Runtime) {
			addrs, err := rt.Malloc(slice)
			if err != nil {
				t.Error(err)
				return
			}
			local := rt.MallocLocal(slice)
			lb, err := rt.LocalBytes(local, slice)
			if err != nil {
				t.Error(err)
				return
			}
			// Per-rank deterministic stream; same across variants.
			rnd := rand.New(rand.NewSource(int64(1000 + rt.Rank())))
			for round := 0; round < rounds; round++ {
				// Each rank owns a disjoint 256-byte window of every
				// target slice, so concurrent ops never conflict.
				myOff := rt.Rank() * 256
				target := rnd.Intn(nranks)
				switch rnd.Intn(5) {
				case 0: // contiguous put
					n := 8 * (1 + rnd.Intn(16))
					for i := 0; i < n; i++ {
						lb[i] = byte(rnd.Intn(256))
					}
					if err := rt.Put(local, addrs[target].Add(myOff), n); err != nil {
						t.Error(err)
					}
				case 1: // strided put
					seg := 8 * (1 + rnd.Intn(3))
					cnt := 1 + rnd.Intn(4)
					for i := 0; i < seg*cnt; i++ {
						lb[i] = byte(rnd.Intn(256))
					}
					s := &armci.Strided{
						Src: local, Dst: addrs[target].Add(myOff),
						SrcStride: []int{seg}, DstStride: []int{seg * 2},
						Count: []int{seg, cnt},
					}
					if err := rt.PutS(s); err != nil {
						t.Error(err)
					}
				case 2: // accumulate (same-op, commutative: safe concurrently)
					for i := 0; i < 4; i++ {
						binary.LittleEndian.PutUint64(lb[8*i:], math.Float64bits(float64(rnd.Intn(7))))
					}
					if err := rt.Acc(armci.AccDbl, 1, local, addrs[target].Add(1536), 32); err != nil {
						t.Error(err)
					}
				case 3: // iov put into my window
					iov := armci.GIOV{
						Src:   []armci.Addr{local, local.Add(64)},
						Dst:   []armci.Addr{addrs[target].Add(myOff), addrs[target].Add(myOff + 128)},
						Bytes: 32,
					}
					for i := 0; i < 96; i++ {
						lb[i] = byte(rnd.Intn(256))
					}
					if err := rt.PutV([]armci.GIOV{iov}, target); err != nil {
						t.Error(err)
					}
				case 4: // rmw on a shared counter (order-independent sum)
					if _, err := rt.Rmw(armci.FetchAndAdd, addrs[0].Add(1984), int64(rnd.Intn(9))); err != nil {
						t.Error(err)
					}
				}
				rt.Barrier() // phase boundary: well-defined final state
			}
			// Rank 0 snapshots every slice.
			if rt.Rank() == 0 {
				final = make([]byte, 0, nranks*slice)
				buf := rt.MallocLocal(slice)
				for tgt := 0; tgt < nranks; tgt++ {
					if err := rt.Get(addrs[tgt], buf, slice); err != nil {
						t.Error(err)
					}
					bb, _ := rt.LocalBytes(buf, slice)
					final = append(final, bb...)
				}
			}
			rt.Barrier()
			if err := rt.Free(addrs[rt.Rank()]); err != nil {
				t.Error(err)
			}
		})
		if err != nil {
			t.Fatalf("%s: %v", v.name, err)
		}
		snapshots = append(snapshots, final)
	}
	for i := 1; i < len(snapshots); i++ {
		if len(snapshots[i]) != len(snapshots[0]) {
			t.Fatalf("%s snapshot length %d != %d", variants[i].name, len(snapshots[i]), len(snapshots[0]))
		}
		for k := range snapshots[i] {
			if snapshots[i][k] != snapshots[0][k] {
				t.Fatalf("stack %s diverges from %s at byte %d (%d vs %d)",
					variants[i].name, variants[0].name, k, snapshots[i][k], snapshots[0][k])
			}
		}
	}
}
