package harness

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/armci"
	"repro/internal/armcimpi"
)

// TestPlanEngineEquivalence differentially checks the unified transfer
// plans: a seeded pseudo-random mix of contiguous, strided, and IOV
// put/get/acc (including nonblocking issues completed via WaitAll) must
// leave the global memory byte-identical to the native baseline for
// every combination of {MPI-2, MPI-3} x {shm, NoShm} x transfer method,
// under both the armcimpi plan engine and the dartmpi locality tiers
// that route around (or through) it.
func TestPlanEngineEquivalence(t *testing.T) {
	const (
		nranks = 6
		slice  = 2048
		rounds = 8
	)
	baseline := planWorkloadSnapshot(t, "native", ImplNative, armcimpi.DefaultOptions(), nranks, slice, rounds)
	stridedMethods := []armcimpi.Method{
		armcimpi.MethodConservative, armcimpi.MethodBatched,
		armcimpi.MethodIOVDirect, armcimpi.MethodDirect,
	}
	iovMethods := []armcimpi.Method{
		armcimpi.MethodConservative, armcimpi.MethodBatched,
		armcimpi.MethodIOVDirect, armcimpi.MethodAuto,
	}
	for _, impl := range []Impl{ImplARMCIMPI, ImplDartMPI} {
		for _, mpi3 := range []bool{false, true} {
			for _, noShm := range []bool{false, true} {
				for i := range stridedMethods {
					opt := armcimpi.DefaultOptions()
					opt.UseMPI3 = mpi3
					opt.NoShm = noShm
					opt.StridedMethod = stridedMethods[i]
					opt.IOVMethod = iovMethods[i]
					name := fmt.Sprintf("%s/mpi3=%v/noshm=%v/%s+%s", impl, mpi3, noShm, stridedMethods[i], iovMethods[i])
					got := planWorkloadSnapshot(t, name, impl, opt, nranks, slice, rounds)
					if len(got) != len(baseline) {
						t.Fatalf("%s: snapshot length %d != native %d", name, len(got), len(baseline))
					}
					for k := range got {
						if got[k] != baseline[k] {
							t.Fatalf("%s diverges from native at byte %d (%d vs %d)", name, k, got[k], baseline[k])
						}
					}
				}
			}
		}
	}
}

// planWorkloadSnapshot runs the randomized workload on one stack and
// returns rank 0's snapshot of every slice. Each rank owns the
// disjoint 256-byte window [rank*256, rank*256+256) of every target
// slice, subdivided per operation family, so concurrent writers never
// conflict; shared areas (1536+) take only commutative accumulates.
func planWorkloadSnapshot(t *testing.T, name string, impl Impl, opt armcimpi.Options, nranks, slice, rounds int) []byte {
	t.Helper()
	var final []byte
	_, err := Run(TestPlatform(), nranks, impl, opt, func(rt armci.Runtime) {
		addrs, err := rt.Malloc(slice)
		if err != nil {
			t.Error(err)
			return
		}
		local := rt.MallocLocal(slice)
		lb, err := rt.LocalBytes(local, slice)
		if err != nil {
			t.Error(err)
			return
		}
		rnd := rand.New(rand.NewSource(int64(4000 + rt.Rank())))
		fill := func(n int) {
			for i := 0; i < n; i++ {
				lb[i] = byte(rnd.Intn(256))
			}
		}
		for round := 0; round < rounds; round++ {
			myOff := rt.Rank() * 256
			target := rnd.Intn(nranks)
			switch rnd.Intn(7) {
			case 0: // contiguous put at +0
				n := 8 * (1 + rnd.Intn(8))
				fill(n)
				if err := rt.Put(local, addrs[target].Add(myOff), n); err != nil {
					t.Error(err)
				}
			case 1: // strided put at +64
				seg := 8 * (1 + rnd.Intn(2))
				cnt := 1 + rnd.Intn(2)
				fill(seg * cnt)
				s := &armci.Strided{
					Src: local, Dst: addrs[target].Add(myOff + 64),
					SrcStride: []int{seg}, DstStride: []int{seg * 2},
					Count: []int{seg, cnt},
				}
				if err := rt.PutS(s); err != nil {
					t.Error(err)
				}
			case 2: // strided accumulate into the shared area at 1536
				for i := 0; i < 6; i++ {
					binary.LittleEndian.PutUint64(lb[8*i:], math.Float64bits(float64(rnd.Intn(5))))
				}
				s := &armci.Strided{
					Src: local, Dst: addrs[target].Add(1536),
					SrcStride: []int{16}, DstStride: []int{32},
					Count: []int{16, 3},
				}
				if err := rt.AccS(armci.AccDbl, float64(1+rnd.Intn(3)), s); err != nil {
					t.Error(err)
				}
			case 3: // iov put at +128
				fill(96)
				iov := armci.GIOV{
					Src:   []armci.Addr{local, local.Add(64)},
					Dst:   []armci.Addr{addrs[target].Add(myOff + 128), addrs[target].Add(myOff + 160)},
					Bytes: 32,
				}
				if err := rt.PutV([]armci.GIOV{iov}, target); err != nil {
					t.Error(err)
				}
			case 4: // iov accumulate into the shared area at 1664
				for i := 0; i < 4; i++ {
					binary.LittleEndian.PutUint64(lb[8*i:], math.Float64bits(float64(rnd.Intn(5))))
				}
				iov := armci.GIOV{
					Src:   []armci.Addr{local, local.Add(16)},
					Dst:   []armci.Addr{addrs[target].Add(1664), addrs[target].Add(1696)},
					Bytes: 16,
				}
				if err := rt.AccV(armci.AccDbl, 1, []armci.GIOV{iov}, target); err != nil {
					t.Error(err)
				}
			case 5: // strided get from my window, write-back at +192
				s := &armci.Strided{
					Src: addrs[target].Add(myOff), Dst: local,
					SrcStride: []int{16}, DstStride: []int{16},
					Count: []int{16, 2},
				}
				if err := rt.GetS(s); err != nil {
					t.Error(err)
				}
				back := rnd.Intn(nranks)
				if err := rt.Put(local, addrs[back].Add(myOff+192), 32); err != nil {
					t.Error(err)
				}
			case 6: // nonblocking contiguous put at +224, completed via WaitAll
				n := 8 * (1 + rnd.Intn(4))
				fill(n)
				h, err := rt.NbPut(local, addrs[target].Add(myOff+224), n)
				if err != nil {
					t.Error(err)
				} else {
					armci.WaitAll(h)
				}
			}
			rt.Barrier() // phase boundary: well-defined final state
		}
		if rt.Rank() == 0 {
			final = make([]byte, 0, nranks*slice)
			buf := rt.MallocLocal(slice)
			for tgt := 0; tgt < nranks; tgt++ {
				if err := rt.Get(addrs[tgt], buf, slice); err != nil {
					t.Error(err)
				}
				bb, _ := rt.LocalBytes(buf, slice)
				final = append(final, bb...)
			}
		}
		rt.Barrier()
		if err := rt.Free(addrs[rt.Rank()]); err != nil {
			t.Error(err)
		}
	})
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	return final
}
