package harness

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/armci"
	"repro/internal/armcimpi"
	"repro/internal/obs"
	"repro/internal/sim"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// routeProber is the diagnostic probe every engine-backed runtime
// exposes: armcimpi.Runtime directly, dartmpi.Runtime by promotion
// from the embedded engine. RouteOf consults the installed RoutePolicy
// without counting, so probing leaves the job's metrics untouched.
type routeProber interface {
	RouteOf(armcimpi.RouteRequest) armcimpi.RouteDecision
}

// TestRouteDecisionTable pins the full routing decision table of both
// engine-backed runtimes against a golden file: op class x shape x
// size x placement (self / same-node / remote) x ablation options.
// The probe runs on rank 1 — a non-leader core, so leader staging is
// eligible — of the test platform's 2-core nodes (rank 0 shares the
// node, rank 2 is one node over). Regenerate with
//
//	go test ./internal/harness -run TestRouteDecisionTable -update
func TestRouteDecisionTable(t *testing.T) {
	classes := []struct {
		c    armcimpi.OpClass
		name string
	}{
		{armcimpi.ClassPut, "put"},
		{armcimpi.ClassGet, "get"},
		{armcimpi.ClassAcc, "acc"},
	}
	shapes := []armcimpi.Shape{armcimpi.ShapeContig, armcimpi.ShapeStrided, armcimpi.ShapeIOV}
	sizes := []struct {
		n    int
		name string
	}{{1024, "1KiB"}, {64 * 1024, "64KiB"}}
	placements := []struct {
		target int
		name   string
	}{{1, "self"}, {0, "node"}, {2, "remote"}}
	optCases := []struct {
		name string
		mod  func(*armcimpi.Options)
	}{
		{"default", func(*armcimpi.Options) {}},
		{"noshm", func(o *armcimpi.Options) { o.NoShm = true }},
		{"noleaderstaging", func(o *armcimpi.Options) { o.NoLeaderStaging = true }},
	}

	var lines []string
	for _, impl := range []Impl{ImplARMCIMPI, ImplDartMPI} {
		for _, oc := range optCases {
			opt := armcimpi.DefaultOptions()
			oc.mod(&opt)
			j, err := NewJob(TestPlatform(), 4, impl, opt)
			if err != nil {
				t.Fatal(err)
			}
			var chunk []string
			err = j.Eng.Run(4, func(p *sim.Proc) {
				rt := j.Runtime(p)
				addrs, err := rt.Malloc(64 * 1024)
				must(t, err)
				local := rt.MallocLocal(64 * 1024)
				if rt.Rank() == 1 {
					pr, ok := rt.(routeProber)
					if !ok {
						t.Errorf("%s runtime does not expose RouteOf", impl)
						return
					}
					for _, cl := range classes {
						for _, sh := range shapes {
							for _, sz := range sizes {
								for _, pl := range placements {
									req := armcimpi.RouteRequest{
										Class: cl.c, Shape: sh,
										Target: pl.target, Bytes: sz.n,
									}
									if sh != armcimpi.ShapeIOV {
										req.Local = local
										req.Remote = addrs[pl.target]
									}
									d := pr.RouteOf(req)
									flags := ""
									if d.PerSeg {
										flags += " perseg"
									}
									if d.Direct {
										flags += " direct"
									}
									chunk = append(chunk, fmt.Sprintf(
										"%-9s %-15s %s %-7s %-5s %-6s -> %-10s method=%s%s",
										impl, oc.name, cl.name, sh, sz.name, pl.name,
										d.Route, d.Method, flags))
								}
							}
						}
					}
				}
				rt.Barrier()
				must(t, rt.FreeLocal(local))
				must(t, rt.Free(addrs[rt.Rank()]))
			})
			if err != nil {
				t.Fatal(err)
			}
			lines = append(lines, chunk...)
		}
	}

	got := strings.Join(lines, "\n") + "\n"
	golden := filepath.Join("testdata", "route_decisions.golden")
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if got != string(want) {
		gotL := strings.Split(got, "\n")
		wantL := strings.Split(string(want), "\n")
		n := 0
		for i := 0; i < len(gotL) && i < len(wantL); i++ {
			if gotL[i] != wantL[i] && n < 8 {
				t.Errorf("line %d:\n  got:  %s\n  want: %s", i+1, gotL[i], wantL[i])
				n++
			}
		}
		if len(gotL) != len(wantL) {
			t.Errorf("line count %d, want %d", len(gotL), len(wantL))
		}
		t.Fatalf("route decision table drifted from %s (rerun with -update after auditing)", golden)
	}
}

// TestRouteCountersSingleDecisionPoint asserts the route.* counters are
// emitted once per operation from the engine's single RoutePolicy call
// site, for both runtimes, and that the dart.* aliases stay coherent:
// the staged-decision count must equal the staging events the executor
// modeled (one staging hop per RouteStagedRMA decision).
func TestRouteCountersSingleDecisionPoint(t *testing.T) {
	rec, j := runDart(t, armcimpi.DefaultOptions())
	m := rec.Metrics()
	for _, c := range []string{obs.CRouteSelf, obs.CRouteNode, obs.CRouteRMA, obs.CRouteStaged} {
		if obs.Total(m.Counter(c)) == 0 {
			t.Errorf("dartmpi emitted no %s", c)
		}
	}
	if self, alias := obs.Total(m.Counter(obs.CRouteSelf)), obs.Total(m.Counter(obs.CDartSelf)); self != alias {
		t.Errorf("route.self.ops %d != dart.self.ops %d", self, alias)
	}
	if node, alias := obs.Total(m.Counter(obs.CRouteNode)), obs.Total(m.Counter(obs.CDartNode)); node != alias {
		t.Errorf("route.node.ops %d != dart.node.ops %d", node, alias)
	}
	rma := obs.Total(m.Counter(obs.CRouteRMA)) + obs.Total(m.Counter(obs.CRouteStaged))
	if alias := obs.Total(m.Counter(obs.CDartRemote)); rma != alias {
		t.Errorf("route.rma+staged ops %d != dart.remote.ops %d", rma, alias)
	}
	if staged, events := obs.Total(m.Counter(obs.CRouteStaged)), obs.Total(m.Counter(obs.CDartStaged)); staged != events {
		t.Errorf("route.staged.ops %d != dart.leader.staged %d", staged, events)
	}
	if staged := obs.Total(m.Counter(obs.CRouteStaged)); staged != j.DartWorld.Staged {
		t.Errorf("route.staged.ops %d != World.Staged %d", staged, j.DartWorld.Staged)
	}

	// armci-mpi routes through the same decision point: near decisions
	// are annotations (the shm fast path lives in the MPI layer), but
	// the counters still classify every operation.
	rec2 := obs.New(obs.Options{})
	j2, err := NewJobObs(TestPlatform(), 4, ImplARMCIMPI, armcimpi.DefaultOptions(), rec2)
	if err != nil {
		t.Fatal(err)
	}
	if err := j2.Eng.Run(4, func(p *sim.Proc) { dartWorkload(t, j2.Runtime(p)) }); err != nil {
		t.Fatal(err)
	}
	m2 := rec2.Metrics()
	for _, c := range []string{obs.CRouteSelf, obs.CRouteNode, obs.CRouteRMA} {
		if obs.Total(m2.Counter(c)) == 0 {
			t.Errorf("armci-mpi emitted no %s", c)
		}
	}
	if staged := obs.Total(m2.Counter(obs.CRouteStaged)); staged != 0 {
		t.Errorf("armci-mpi made %d staged-RMA decisions, want 0", staged)
	}
}

// TestDartAccPrescaleNoLeak drives scaled accumulates through every
// tier — self and same-node (the engine's node-epoch prescale), remote
// direct, and remote per-segment — and asserts the prescale
// temporaries and staging state leak nothing: the rank's address-space
// region count returns to its post-allocation baseline, and teardown
// empties both translation tables.
func TestDartAccPrescaleNoLeak(t *testing.T) {
	j, err := NewJob(TestPlatform(), 4, ImplDartMPI, armcimpi.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	err = j.Eng.Run(4, func(p *sim.Proc) {
		rt := j.Runtime(p)
		addrs, err := rt.Malloc(64 * 1024)
		must(t, err)
		local := rt.MallocLocal(32 * 1024)
		baseline := len(j.M.Space(rt.Rank()).Regions())
		if rt.Rank() == 1 {
			// Contiguous scaled accumulates on all three tiers (node-epoch
			// prescale for self and same-node, engine prescale for remote;
			// 16 KiB to the remote tier also exercises prescale under
			// leader staging).
			must(t, rt.Acc(armci.AccDbl, 2, local, addrs[1].Add(0), 4096))
			must(t, rt.Acc(armci.AccDbl, 2, local, addrs[0].Add(0), 4096))
			must(t, rt.Acc(armci.AccDbl, 2, local, addrs[2].Add(0), 16*1024))
			// A strided scaled accumulate against a near target re-enters
			// per segment (each segment prescales on the node tier).
			s := &armci.Strided{
				Src: local, Dst: addrs[0].Add(8192),
				SrcStride: []int{512}, DstStride: []int{512},
				Count: []int{256, 4},
			}
			must(t, rt.AccS(armci.AccDbl, 2, s))
			// And against the far target, where the wire plan prescales
			// per datatype.
			s2 := &armci.Strided{
				Src: local, Dst: addrs[2].Add(8192),
				SrcStride: []int{512}, DstStride: []int{512},
				Count: []int{256, 4},
			}
			must(t, rt.AccS(armci.AccDbl, 2, s2))
		}
		rt.Barrier()
		if got := len(j.M.Space(rt.Rank()).Regions()); got != baseline {
			t.Errorf("rank %d: %d regions after scaled accumulates, want %d (prescale temporary leaked)",
				rt.Rank(), got, baseline)
		}
		must(t, rt.FreeLocal(local))
		must(t, rt.Free(addrs[rt.Rank()]))
	})
	if err != nil {
		t.Fatal(err)
	}
	if n := j.DartWorld.NumAllocs(); n != 0 {
		t.Errorf("%d node-window allocations leaked", n)
	}
	if n := j.DartWorld.Inner.NumGMRs(); n != 0 {
		t.Errorf("%d GMRs leaked", n)
	}
}
