package harness

import (
	"encoding/binary"
	"math"
	"testing"

	"repro/internal/armci"
	"repro/internal/armcimpi"
	"repro/internal/sim"
)

// forBoth runs the same body under every ARMCI stack — native,
// ARMCI-MPI on MPI-2 epochs (the paper's shipping design), ARMCI-MPI
// on the MPI-3 lock-all backend (SectionVIII.B), the data server, and
// the locality-aware dartmpi runtime (with and without MPI-3) — the
// paper's central claim is that application code is oblivious to which
// runtime is underneath.
func forBoth(t *testing.T, nranks int, body func(t *testing.T, rt armci.Runtime)) {
	t.Helper()
	variants := []struct {
		name string
		impl Impl
		opt  armcimpi.Options
	}{
		{"native", ImplNative, armcimpi.DefaultOptions()},
		{"armci-mpi", ImplARMCIMPI, armcimpi.DefaultOptions()},
		{"armci-mpi3", ImplARMCIMPI, mpi3Options()},
		{"armci-ds", ImplDataServer, armcimpi.DefaultOptions()},
		{"dartmpi", ImplDartMPI, armcimpi.DefaultOptions()},
		{"dartmpi-mpi3", ImplDartMPI, mpi3Options()},
	}
	for _, v := range variants {
		v := v
		t.Run(v.name, func(t *testing.T) {
			_, err := Run(TestPlatform(), nranks, v.impl, v.opt,
				func(rt armci.Runtime) { body(t, rt) })
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

func mpi3Options() armcimpi.Options {
	opt := armcimpi.DefaultOptions()
	opt.UseMPI3 = true
	return opt
}

func must(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}

func fill(t *testing.T, rt armci.Runtime, addr armci.Addr, n int, f func(i int) byte) {
	t.Helper()
	b, err := rt.LocalBytes(addr, n)
	must(t, err)
	for i := range b {
		b[i] = f(i)
	}
}

func TestPutGetRoundTrip(t *testing.T) {
	forBoth(t, 4, func(t *testing.T, rt armci.Runtime) {
		addrs, err := rt.Malloc(256)
		must(t, err)
		if len(addrs) != 4 {
			t.Fatalf("addr vector length %d", len(addrs))
		}
		if rt.Rank() == 0 {
			src := rt.MallocLocal(64)
			fill(t, rt, src, 64, func(i int) byte { return byte(i + 1) })
			must(t, rt.Put(src, addrs[2].Add(16), 64))
			dst := rt.MallocLocal(64)
			must(t, rt.Get(addrs[2].Add(16), dst, 64))
			b, err := rt.LocalBytes(dst, 64)
			must(t, err)
			for i := range b {
				if b[i] != byte(i+1) {
					t.Fatalf("byte %d = %d, want %d", i, b[i], i+1)
				}
			}
			must(t, rt.FreeLocal(src))
			must(t, rt.FreeLocal(dst))
		}
		rt.Barrier()
		// The target verifies its own memory directly (via DLA).
		if rt.Rank() == 2 {
			b, err := rt.AccessBegin(addrs[2], 256)
			must(t, err)
			for i := 0; i < 64; i++ {
				if b[16+i] != byte(i+1) {
					t.Fatalf("target byte %d = %d", i, b[16+i])
				}
			}
			must(t, rt.AccessEnd(addrs[2]))
		}
		rt.Barrier()
		must(t, rt.Free(addrs[rt.Rank()]))
	})
}

func TestAccumulateWithScale(t *testing.T) {
	forBoth(t, 3, func(t *testing.T, rt armci.Runtime) {
		addrs, err := rt.Malloc(32)
		must(t, err)
		// Everyone accumulates [1,2,3,4]*scale(rank+1) into rank 0.
		src := rt.MallocLocal(32)
		b, err := rt.LocalBytes(src, 32)
		must(t, err)
		for i := 0; i < 4; i++ {
			binary.LittleEndian.PutUint64(b[8*i:], f64bits(float64(i+1)))
		}
		must(t, rt.Acc(armci.AccDbl, float64(rt.Rank()+1), src, addrs[0], 32))
		rt.Barrier()
		if rt.Rank() == 0 {
			mem, err := rt.AccessBegin(addrs[0], 32)
			must(t, err)
			// Sum of scales = 1+2+3 = 6.
			for i := 0; i < 4; i++ {
				got := f64frombits(binary.LittleEndian.Uint64(mem[8*i:]))
				want := 6 * float64(i+1)
				if got != want {
					t.Fatalf("elem %d = %v, want %v", i, got, want)
				}
			}
			must(t, rt.AccessEnd(addrs[0]))
		}
		rt.Barrier()
		must(t, rt.Free(addrs[rt.Rank()]))
	})
}

func TestStridedPutGet2D(t *testing.T) {
	forBoth(t, 2, func(t *testing.T, rt armci.Runtime) {
		addrs, err := rt.Malloc(1024)
		must(t, err)
		if rt.Rank() == 0 {
			// 4 rows of 8 bytes from a local array with row stride 10,
			// into a remote array with row stride 16.
			src := rt.MallocLocal(64)
			fill(t, rt, src, 64, func(i int) byte { return byte(i) })
			s := &armci.Strided{
				Src: src, Dst: addrs[1].Add(100),
				SrcStride: []int{10}, DstStride: []int{16},
				Count: []int{8, 4},
			}
			must(t, rt.PutS(s))
			// Read it back with a different local layout.
			dst := rt.MallocLocal(128)
			g := &armci.Strided{
				Src: addrs[1].Add(100), Dst: dst,
				SrcStride: []int{16}, DstStride: []int{32},
				Count: []int{8, 4},
			}
			must(t, rt.GetS(g))
			db, err := rt.LocalBytes(dst, 128)
			must(t, err)
			for row := 0; row < 4; row++ {
				for k := 0; k < 8; k++ {
					want := byte(row*10 + k)
					if db[row*32+k] != want {
						t.Fatalf("row %d byte %d = %d, want %d", row, k, db[row*32+k], want)
					}
				}
			}
		}
		rt.Barrier()
		if rt.Rank() == 1 {
			mem, err := rt.AccessBegin(addrs[1], 1024)
			must(t, err)
			for row := 0; row < 4; row++ {
				for k := 0; k < 8; k++ {
					if mem[100+row*16+k] != byte(row*10+k) {
						t.Fatalf("target row %d byte %d wrong", row, k)
					}
				}
			}
			must(t, rt.AccessEnd(addrs[1]))
		}
		rt.Barrier()
		must(t, rt.Free(addrs[rt.Rank()]))
	})
}

func TestStrided3D(t *testing.T) {
	forBoth(t, 2, func(t *testing.T, rt armci.Runtime) {
		addrs, err := rt.Malloc(4096)
		must(t, err)
		if rt.Rank() == 0 {
			src := rt.MallocLocal(1024)
			fill(t, rt, src, 1024, func(i int) byte { return byte(i % 251) })
			s := &armci.Strided{
				Src: src, Dst: addrs[1],
				SrcStride: []int{16, 96}, DstStride: []int{24, 128},
				Count: []int{8, 3, 2}, // 8B segments, 3 per plane, 2 planes
			}
			must(t, rt.PutS(s))
			dst := rt.MallocLocal(1024)
			gs := &armci.Strided{
				Src: addrs[1], Dst: dst,
				SrcStride: []int{24, 128}, DstStride: []int{16, 96},
				Count: []int{8, 3, 2},
			}
			must(t, rt.GetS(gs))
			sb, _ := rt.LocalBytes(src, 1024)
			db, _ := rt.LocalBytes(dst, 1024)
			s.Iterate(func(so, do int) {
				for k := 0; k < 8; k++ {
					if db[so+k] != sb[so+k] {
						t.Fatalf("3D mismatch at src offset %d+%d", so, k)
					}
				}
			})
		}
		rt.Barrier()
		must(t, rt.Free(addrs[rt.Rank()]))
	})
}

func TestStridedAccumulate(t *testing.T) {
	forBoth(t, 2, func(t *testing.T, rt armci.Runtime) {
		addrs, err := rt.Malloc(512)
		must(t, err)
		if rt.Rank() == 0 {
			src := rt.MallocLocal(256)
			b, _ := rt.LocalBytes(src, 256)
			for i := 0; i < 32; i++ {
				binary.LittleEndian.PutUint64(b[8*i:], f64bits(1))
			}
			s := &armci.Strided{
				Src: src, Dst: addrs[1],
				SrcStride: []int{64}, DstStride: []int{128},
				Count: []int{32, 3}, // 4 doubles per segment, 3 segments
			}
			must(t, rt.AccS(armci.AccDbl, 2.5, s))
			must(t, rt.AccS(armci.AccDbl, 0.5, s))
		}
		rt.Barrier()
		if rt.Rank() == 1 {
			mem, err := rt.AccessBegin(addrs[1], 512)
			must(t, err)
			for seg := 0; seg < 3; seg++ {
				for d := 0; d < 4; d++ {
					got := f64frombits(binary.LittleEndian.Uint64(mem[seg*128+8*d:]))
					if got != 3.0 {
						t.Fatalf("seg %d double %d = %v, want 3", seg, d, got)
					}
				}
			}
			must(t, rt.AccessEnd(addrs[1]))
		}
		rt.Barrier()
		must(t, rt.Free(addrs[rt.Rank()]))
	})
}

func TestIOVPutGet(t *testing.T) {
	forBoth(t, 2, func(t *testing.T, rt armci.Runtime) {
		addrs, err := rt.Malloc(1024)
		must(t, err)
		if rt.Rank() == 0 {
			src := rt.MallocLocal(256)
			fill(t, rt, src, 256, func(i int) byte { return byte(255 - i%256) })
			iov := armci.GIOV{
				Src:   []armci.Addr{src, src.Add(50), src.Add(120)},
				Dst:   []armci.Addr{addrs[1].Add(8), addrs[1].Add(200), addrs[1].Add(400)},
				Bytes: 16,
			}
			must(t, rt.PutV([]armci.GIOV{iov}, 1))
			dst := rt.MallocLocal(64)
			giov := armci.GIOV{
				Src:   []armci.Addr{addrs[1].Add(8), addrs[1].Add(200), addrs[1].Add(400)},
				Dst:   []armci.Addr{dst, dst.Add(16), dst.Add(32)},
				Bytes: 16,
			}
			must(t, rt.GetV([]armci.GIOV{giov}, 1))
			sb, _ := rt.LocalBytes(src, 256)
			db, _ := rt.LocalBytes(dst, 64)
			srcOffs := []int{0, 50, 120}
			for s := 0; s < 3; s++ {
				for k := 0; k < 16; k++ {
					if db[s*16+k] != sb[srcOffs[s]+k] {
						t.Fatalf("iov segment %d byte %d mismatch", s, k)
					}
				}
			}
		}
		rt.Barrier()
		must(t, rt.Free(addrs[rt.Rank()]))
	})
}

func TestRmwFetchAddAtomicity(t *testing.T) {
	const per = 4
	forBoth(t, 4, func(t *testing.T, rt armci.Runtime) {
		addrs, err := rt.Malloc(8)
		must(t, err)
		olds := map[int64]bool{}
		for i := 0; i < per; i++ {
			old, err := rt.Rmw(armci.FetchAndAdd, addrs[0], 1)
			must(t, err)
			if olds[old] {
				t.Errorf("rank %d observed old value %d twice", rt.Rank(), old)
			}
			olds[old] = true
		}
		rt.Barrier()
		if rt.Rank() == 0 {
			mem, err := rt.AccessBegin(addrs[0], 8)
			must(t, err)
			got := int64(binary.LittleEndian.Uint64(mem))
			if got != 4*per {
				t.Errorf("counter = %d, want %d", got, 4*per)
			}
			must(t, rt.AccessEnd(addrs[0]))
		}
		rt.Barrier()
		must(t, rt.Free(addrs[rt.Rank()]))
	})
}

func TestRmwSwap(t *testing.T) {
	forBoth(t, 2, func(t *testing.T, rt armci.Runtime) {
		addrs, err := rt.Malloc(8)
		must(t, err)
		if rt.Rank() == 1 {
			old, err := rt.Rmw(armci.Swap, addrs[0], 77)
			must(t, err)
			if old != 0 {
				t.Errorf("first swap old = %d", old)
			}
			old, err = rt.Rmw(armci.Swap, addrs[0], 99)
			must(t, err)
			if old != 77 {
				t.Errorf("second swap old = %d, want 77", old)
			}
		}
		rt.Barrier()
		must(t, rt.Free(addrs[rt.Rank()]))
	})
}

func TestMutexMutualExclusion(t *testing.T) {
	// Classic critical-section test: unprotected read-modify-write on a
	// shared location, serialized only by the mutex.
	forBoth(t, 4, func(t *testing.T, rt armci.Runtime) {
		addrs, err := rt.Malloc(8)
		must(t, err)
		mux, err := rt.CreateMutexes(1)
		must(t, err)
		scratch := rt.MallocLocal(8)
		for i := 0; i < 3; i++ {
			mux.Lock(0, 0)
			must(t, rt.Get(addrs[0], scratch, 8))
			b, _ := rt.LocalBytes(scratch, 8)
			v := int64(binary.LittleEndian.Uint64(b))
			rt.Proc().Elapse(5 * sim.Microsecond) // widen the race window
			binary.LittleEndian.PutUint64(b, uint64(v+1))
			must(t, rt.Put(scratch, addrs[0], 8))
			mux.Unlock(0, 0)
		}
		rt.Barrier()
		if rt.Rank() == 0 {
			mem, err := rt.AccessBegin(addrs[0], 8)
			must(t, err)
			got := int64(binary.LittleEndian.Uint64(mem))
			if got != 12 {
				t.Errorf("critical-section counter = %d, want 12", got)
			}
			must(t, rt.AccessEnd(addrs[0]))
		}
		rt.Barrier()
		must(t, mux.Destroy())
		must(t, rt.Free(addrs[rt.Rank()]))
	})
}

func TestFenceRemoteCompletion(t *testing.T) {
	forBoth(t, 2, func(t *testing.T, rt armci.Runtime) {
		addrs, err := rt.Malloc(8)
		must(t, err)
		if rt.Rank() == 0 {
			src := rt.MallocLocal(8)
			b, _ := rt.LocalBytes(src, 8)
			binary.LittleEndian.PutUint64(b, 42)
			must(t, rt.Put(src, addrs[1], 8))
			rt.Fence(1)
			// After the fence, the data must be remotely visible: check
			// via an independent get.
			chk := rt.MallocLocal(8)
			must(t, rt.Get(addrs[1], chk, 8))
			cb, _ := rt.LocalBytes(chk, 8)
			if binary.LittleEndian.Uint64(cb) != 42 {
				t.Error("data not remotely complete after Fence")
			}
		}
		rt.Barrier()
		must(t, rt.Free(addrs[rt.Rank()]))
	})
}

func TestGroupAllocationAndComm(t *testing.T) {
	forBoth(t, 6, func(t *testing.T, rt armci.Runtime) {
		members := []int{1, 2, 4}
		g, err := rt.GroupCreateCollective(members)
		must(t, err)
		in := g != nil
		if in {
			addrs, err := rt.MallocGroup(g, 64)
			must(t, err)
			if len(addrs) != 3 {
				t.Fatalf("group alloc vector length %d", len(addrs))
			}
			// Group rank 0 (world 1) writes to group rank 2 (world 4).
			if rt.Rank() == 1 {
				src := rt.MallocLocal(16)
				fill(t, rt, src, 16, func(i int) byte { return byte(i * 3) })
				// Communication uses absolute ids (SectionIV).
				if addrs[2].Rank != 4 {
					t.Fatalf("addr[2].Rank = %d, want absolute id 4", addrs[2].Rank)
				}
				must(t, rt.Put(src, addrs[2], 16))
			}
			if g.AbsoluteID(2) != 4 || g.RankOf(4) != 2 {
				t.Error("group translation wrong")
			}
			// Synchronize within the group only (via barrier over world
			// is fine for the test).
			rt.Barrier()
			if rt.Rank() == 4 {
				mem, err := rt.AccessBegin(addrs[2], 64)
				must(t, err)
				for i := 0; i < 16; i++ {
					if mem[i] != byte(i*3) {
						t.Fatalf("group put byte %d = %d", i, mem[i])
					}
				}
				must(t, rt.AccessEnd(addrs[2]))
			}
			rt.Barrier()
			must(t, rt.FreeGroup(g, addrs[g.RankOf(rt.Rank())]))
		} else {
			rt.Barrier()
			rt.Barrier()
		}
	})
}

func TestNoncollectiveGroupCreate(t *testing.T) {
	forBoth(t, 5, func(t *testing.T, rt armci.Runtime) {
		members := []int{0, 2, 3}
		in := false
		for _, m := range members {
			if m == rt.Rank() {
				in = true
			}
		}
		if in {
			g, err := rt.GroupCreate(members)
			must(t, err)
			if g.Size() != 3 {
				t.Errorf("group size %d", g.Size())
			}
			addrs, err := rt.MallocGroup(g, 32)
			must(t, err)
			if rt.Rank() == 0 {
				src := rt.MallocLocal(8)
				must(t, rt.Put(src, addrs[1], 8))
			}
			must(t, rt.FreeGroup(g, addrs[g.RankOf(rt.Rank())]))
		}
		rt.Barrier()
	})
}

func TestFreeWithZeroSizeSlices(t *testing.T) {
	// SectionV.B's leader-election case: some processes allocate zero
	// bytes, receive NULL, and pass NULL to free.
	forBoth(t, 4, func(t *testing.T, rt armci.Runtime) {
		size := 0
		if rt.Rank()%2 == 0 {
			size = 128
		}
		addrs, err := rt.Malloc(size)
		must(t, err)
		if rt.Rank()%2 == 1 && !addrs[rt.Rank()].Nil() {
			t.Error("zero-size alloc should yield NULL")
		}
		if rt.Rank() == 1 {
			// Odd rank can still access even ranks' slices.
			src := rt.MallocLocal(8)
			must(t, rt.Put(src, addrs[2], 8))
		}
		rt.Barrier()
		must(t, rt.Free(addrs[rt.Rank()]))
	})
}

func TestNonblockingOps(t *testing.T) {
	forBoth(t, 2, func(t *testing.T, rt armci.Runtime) {
		addrs, err := rt.Malloc(64)
		must(t, err)
		if rt.Rank() == 0 {
			src := rt.MallocLocal(64)
			fill(t, rt, src, 64, func(i int) byte { return byte(i ^ 0x5A) })
			h, err := rt.NbPut(src, addrs[1], 64)
			must(t, err)
			h.Wait()
			rt.Fence(1)
			dst := rt.MallocLocal(64)
			gh, err := rt.NbGet(addrs[1], dst, 64)
			must(t, err)
			gh.Wait()
			db, _ := rt.LocalBytes(dst, 64)
			for i := range db {
				if db[i] != byte(i^0x5A) {
					t.Fatalf("nb roundtrip byte %d", i)
				}
			}
		}
		rt.Barrier()
		must(t, rt.Free(addrs[rt.Rank()]))
	})
}

func TestAccessModePhases(t *testing.T) {
	forBoth(t, 3, func(t *testing.T, rt armci.Runtime) {
		addrs, err := rt.Malloc(64)
		must(t, err)
		// Fill rank 0's slice, then enter a read-only phase.
		if rt.Rank() == 0 {
			mem, err := rt.AccessBegin(addrs[0], 64)
			must(t, err)
			for i := range mem {
				mem[i] = byte(i)
			}
			must(t, rt.AccessEnd(addrs[0]))
		}
		must(t, rt.SetAccessMode(armci.ModeReadOnly, addrs[0]))
		dst := rt.MallocLocal(64)
		must(t, rt.Get(addrs[0], dst, 64))
		b, _ := rt.LocalBytes(dst, 64)
		for i := range b {
			if b[i] != byte(i) {
				t.Fatalf("read-only phase byte %d = %d", i, b[i])
			}
		}
		must(t, rt.SetAccessMode(armci.ModeConflicting, addrs[0]))
		rt.Barrier()
		must(t, rt.Free(addrs[rt.Rank()]))
	})
}

func TestErrorsSurface(t *testing.T) {
	forBoth(t, 2, func(t *testing.T, rt armci.Runtime) {
		addrs, err := rt.Malloc(16)
		must(t, err)
		src := rt.MallocLocal(64)
		if err := rt.Put(src, addrs[1], 64); err == nil {
			t.Error("put past allocation end accepted")
		}
		if err := rt.Put(src, armci.Addr{Rank: 1, VA: 0x9999999}, 8); err == nil {
			t.Error("put to unmapped address accepted")
		}
		if err := rt.Put(src, armci.Addr{}, 8); err == nil {
			t.Error("put to NULL accepted")
		}
		if _, err := rt.Rmw(armci.FetchAndAdd, armci.Addr{}, 1); err == nil {
			t.Error("rmw on NULL accepted")
		}
		rt.Barrier()
		must(t, rt.Free(addrs[rt.Rank()]))
	})
}

func TestManyRanksSmoke(t *testing.T) {
	forBoth(t, 32, func(t *testing.T, rt armci.Runtime) {
		addrs, err := rt.Malloc(64)
		must(t, err)
		next := (rt.Rank() + 1) % rt.Nprocs()
		src := rt.MallocLocal(64)
		fill(t, rt, src, 64, func(i int) byte { return byte(rt.Rank()) })
		must(t, rt.Put(src, addrs[next], 64))
		rt.Barrier()
		mem, err := rt.AccessBegin(addrs[rt.Rank()], 64)
		must(t, err)
		prev := (rt.Rank() - 1 + rt.Nprocs()) % rt.Nprocs()
		if mem[0] != byte(prev) || mem[63] != byte(prev) {
			t.Errorf("rank %d: got data from %d, want %d", rt.Rank(), mem[0], prev)
		}
		must(t, rt.AccessEnd(addrs[rt.Rank()]))
		rt.Barrier()
		must(t, rt.Free(addrs[rt.Rank()]))
	})
}

func TestParseImpl(t *testing.T) {
	if _, err := ParseImpl("native"); err != nil {
		t.Error(err)
	}
	if _, err := ParseImpl("armci-mpi"); err != nil {
		t.Error(err)
	}
	if _, err := ParseImpl("armci-ds"); err != nil {
		t.Error(err)
	}
	if _, err := ParseImpl("dartmpi"); err != nil {
		t.Error(err)
	}
	if _, err := ParseImpl("bogus"); err == nil {
		t.Error("bogus impl accepted")
	}
	for _, name := range ImplNames() {
		if _, err := ParseImpl(name); err != nil {
			t.Errorf("ImplNames entry %q rejected: %v", name, err)
		}
	}
}

func f64bits(f float64) uint64     { return math.Float64bits(f) }
func f64frombits(b uint64) float64 { return math.Float64frombits(b) }
