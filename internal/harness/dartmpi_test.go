package harness

import (
	"testing"

	"repro/internal/armci"
	"repro/internal/armcimpi"
	"repro/internal/obs"
	"repro/internal/sim"
)

// dartWorkload drives every locality tier of the dartmpi runtime: rank
// 0 moves data to itself (self tier), to rank 1 (same node on the test
// platform's 2-core nodes), and to rank 2 (remote node), with rank 1
// issuing a large cross-node put that qualifies for leader staging.
func dartWorkload(t *testing.T, rt armci.Runtime) {
	addrs, err := rt.Malloc(32 * 1024)
	must(t, err)
	local := rt.MallocLocal(16 * 1024)
	switch rt.Rank() {
	case 0:
		must(t, rt.Put(local, addrs[0].Add(64), 1024)) // self
		must(t, rt.Put(local, addrs[1].Add(64), 1024)) // same node
		must(t, rt.Put(local, addrs[2].Add(64), 1024)) // remote
		must(t, rt.Get(addrs[1].Add(64), local, 1024))
		must(t, rt.Acc(armci.AccDbl, 2, local, addrs[1].Add(2048), 512))
	case 1:
		// Large enough to stage, from a non-leader origin.
		must(t, rt.Put(local, addrs[2].Add(4096), 16*1024))
		must(t, rt.Get(addrs[3].Add(4096), local, 16*1024))
	}
	rt.Barrier()
	must(t, rt.Free(addrs[rt.Rank()]))
}

// runDart executes dartWorkload under dartmpi with the given options
// and returns the recorder and the job.
func runDart(t *testing.T, opt armcimpi.Options) (*obs.Recorder, *Job) {
	t.Helper()
	rec := obs.New(obs.Options{})
	j, err := NewJobObs(TestPlatform(), 4, ImplDartMPI, opt, rec)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Eng.Run(4, func(p *sim.Proc) { dartWorkload(t, j.Runtime(p)) }); err != nil {
		t.Fatal(err)
	}
	return rec, j
}

// TestDartNoShmForcesRMA asserts the NoShm ablation switch means the
// same thing under dartmpi as everywhere else: the same-node tier must
// collapse onto the RMA path, leaving rma.bytes.shm exactly zero, while
// the default configuration moves same-node traffic over shm.
func TestDartNoShmForcesRMA(t *testing.T) {
	opt := armcimpi.DefaultOptions()
	rec, j := runDart(t, opt)
	if shm := obs.Total(rec.Metrics().Counter(obs.CBytesShm)); shm == 0 {
		t.Error("default dartmpi moved no bytes over the shm path")
	}
	if j.DartWorld.NodeOps == 0 || j.DartWorld.SelfOps == 0 || j.DartWorld.RemoteOps == 0 {
		t.Errorf("expected all tiers exercised: self=%d node=%d remote=%d",
			j.DartWorld.SelfOps, j.DartWorld.NodeOps, j.DartWorld.RemoteOps)
	}

	opt.NoShm = true
	rec, j = runDart(t, opt)
	if shm := obs.Total(rec.Metrics().Counter(obs.CBytesShm)); shm != 0 {
		t.Errorf("rma.bytes.shm = %d under NoShm dartmpi, want 0", shm)
	}
	if j.DartWorld.SelfOps != 0 || j.DartWorld.NodeOps != 0 {
		t.Errorf("near tiers used under NoShm: self=%d node=%d",
			j.DartWorld.SelfOps, j.DartWorld.NodeOps)
	}
	if j.DartWorld.Staged != 0 {
		t.Errorf("leader staging ran under NoShm: %d", j.DartWorld.Staged)
	}
}

// TestDartLeaderStaging asserts the hierarchical path's threshold and
// ablation toggle: rank 1's 16 KiB cross-node transfers stage through
// its node leader by default, stop when NoLeaderStaging is set, and
// follow a custom StageThreshold.
func TestDartLeaderStaging(t *testing.T) {
	opt := armcimpi.DefaultOptions()
	rec, j := runDart(t, opt)
	if j.DartWorld.Staged == 0 {
		t.Error("no transfers staged through the node leader")
	}
	if got := obs.Total(rec.Metrics().Counter(obs.CDartStaged)); got != j.DartWorld.Staged {
		t.Errorf("dart.leader.staged counter %d != world counter %d", got, j.DartWorld.Staged)
	}
	if j.DartWorld.StagedBytes < 16*1024 {
		t.Errorf("staged bytes %d, want >= 16384", j.DartWorld.StagedBytes)
	}

	opt.NoLeaderStaging = true
	_, j = runDart(t, opt)
	if j.DartWorld.Staged != 0 {
		t.Errorf("staging ran with NoLeaderStaging: %d", j.DartWorld.Staged)
	}

	opt.NoLeaderStaging = false
	opt.StageThreshold = 64 * 1024 // above every transfer in the workload
	_, j = runDart(t, opt)
	if j.DartWorld.Staged != 0 {
		t.Errorf("staging ran below the threshold: %d", j.DartWorld.Staged)
	}
}
