package harness

import (
	"errors"
	"runtime"
	"testing"
	"time"

	"repro/internal/armcimpi"
	"repro/internal/platform"
	"repro/internal/sim"
)

// TestBigCommMetadataPaths drives the gather-at-root metadata branches
// that engage at mpi.BigCommThreshold (4096) ranks: communicator Dup
// via the identity split, window creation, the shared allocation
// address vector, scalar-broadcast mutex counts, and the dartmpi node
// window attach — then data movement and a full free cycle on top of
// the shared metadata. Runs under the continuation scheduler, which is
// also how the scale sweeps exercise these paths.
func TestBigCommMetadataPaths(t *testing.T) {
	const nranks = 4096
	plat := platform.Get(platform.CrayXT5)
	for _, impl := range []Impl{ImplARMCIMPI, ImplDartMPI} {
		t.Run(string(impl), func(t *testing.T) {
			opt := armcimpi.DefaultOptions()
			opt.UseMPI3 = true
			j, err := NewJob(plat, nranks, impl, opt)
			if err != nil {
				t.Fatal(err)
			}
			j.Eng.Mode = sim.ModeContinuation
			err = j.Eng.Run(nranks, func(p *sim.Proc) {
				rt := j.Runtime(p)
				addrs, err := rt.Malloc(512)
				must(t, err)
				if len(addrs) != nranks {
					t.Errorf("addr vector length %d, want %d", len(addrs), nranks)
				}
				if rt.Rank() == 0 {
					src := rt.MallocLocal(128)
					fill(t, rt, src, 128, func(i int) byte { return byte(i + 3) })
					// Same-node, remote, and far-remote targets.
					for _, target := range []int{1, 100, nranks - 1} {
						must(t, rt.Put(src, addrs[target].Add(32), 128))
					}
					dst := rt.MallocLocal(128)
					must(t, rt.Get(addrs[nranks-1].Add(32), dst, 128))
					b, err := rt.LocalBytes(dst, 128)
					must(t, err)
					for i := range b {
						if b[i] != byte(i+3) {
							t.Fatalf("byte %d = %d, want %d", i, b[i], i+3)
						}
					}
				}
				rt.Barrier()
				must(t, rt.Free(addrs[rt.Rank()]))
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestBigCommDrainPanicAfterMaxTime pins the drain path at
// BigCommThreshold scale: a 4096-rank job hits Engine.MaxTime while
// ranks are parked inside the gather-at-root metadata collectives, and
// one rank's deferred cleanup panics while the drain unwinds it. The
// run must still return — no hang, no leaked fibers — with exactly
// ErrTimeLimit, and the whole outcome must be byte-identical across
// repeated runs and across the continuation and (single-shard)
// parallel schedulers: once draining starts the engine never
// re-examines rank failures, so the late panic cannot perturb the
// reported error or the drain order.
func TestBigCommDrainPanicAfterMaxTime(t *testing.T) {
	const nranks = 4096
	plat := platform.Get(platform.CrayXT5)

	run := func(t *testing.T, mode sim.Mode) string {
		opt := armcimpi.DefaultOptions()
		opt.UseMPI3 = true
		j, err := NewJob(plat, nranks, ImplARMCIMPI, opt)
		if err != nil {
			t.Fatal(err)
		}
		j.Eng.Mode = mode
		// Small enough to fire while the 4096-rank metadata exchange
		// (window creation, address-vector gather/bcast) is in flight,
		// so most ranks drain out of collective parks.
		j.Eng.MaxTime = sim.FromSeconds(100e-6)
		err = j.Eng.Run(nranks, func(p *sim.Proc) {
			if p.ID() == 37 {
				// Runs during the drain unwinding, i.e. strictly after
				// the deadline: the engine must tolerate a panic from a
				// rank it is in the middle of tearing down.
				defer func() { panic("cleanup fault after deadline") }()
			}
			rt := j.Runtime(p)
			addrs, err := rt.Malloc(512)
			must(t, err)
			src := rt.MallocLocal(64)
			for i := 0; ; i++ {
				target := (rt.Rank() + 1 + i) % nranks
				must(t, rt.Put(src, addrs[target], 64))
				rt.Barrier()
			}
		})
		var tl *sim.ErrTimeLimit
		if !errors.As(err, &tl) {
			t.Fatalf("mode=%s: error %v, want *sim.ErrTimeLimit", mode, err)
		}
		return err.Error()
	}

	// settle waits for the drained fibers' goroutines to exit; the
	// count only ever returns to baseline if the drain reached every
	// started rank despite the mid-drain panic.
	settle := func(t *testing.T, baseline int) {
		deadline := time.Now().Add(10 * time.Second)
		for {
			runtime.GC()
			n := runtime.NumGoroutine()
			if n <= baseline+4 {
				return
			}
			if time.Now().After(deadline) {
				t.Fatalf("goroutines settled at %d, baseline %d: drained fibers leaked", n, baseline)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}

	errTexts := map[sim.Mode]string{}
	for _, mode := range []sim.Mode{sim.ModeContinuation, sim.ModeParallel} {
		t.Run(mode.String(), func(t *testing.T) {
			baseline := runtime.NumGoroutine()
			first := run(t, mode)
			second := run(t, mode)
			if first != second {
				t.Errorf("drain is nondeterministic: %q then %q", first, second)
			}
			settle(t, baseline)
			errTexts[mode] = first
		})
	}
	if a, b := errTexts[sim.ModeContinuation], errTexts[sim.ModeParallel]; a != "" && b != "" && a != b {
		t.Errorf("modes disagree on the time-limit error: continuation %q, parallel %q", a, b)
	}
}
