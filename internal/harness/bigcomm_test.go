package harness

import (
	"testing"

	"repro/internal/armcimpi"
	"repro/internal/platform"
	"repro/internal/sim"
)

// TestBigCommMetadataPaths drives the gather-at-root metadata branches
// that engage at mpi.BigCommThreshold (4096) ranks: communicator Dup
// via the identity split, window creation, the shared allocation
// address vector, scalar-broadcast mutex counts, and the dartmpi node
// window attach — then data movement and a full free cycle on top of
// the shared metadata. Runs under the continuation scheduler, which is
// also how the scale sweeps exercise these paths.
func TestBigCommMetadataPaths(t *testing.T) {
	const nranks = 4096
	plat := platform.Get(platform.CrayXT5)
	for _, impl := range []Impl{ImplARMCIMPI, ImplDartMPI} {
		t.Run(string(impl), func(t *testing.T) {
			opt := armcimpi.DefaultOptions()
			opt.UseMPI3 = true
			j, err := NewJob(plat, nranks, impl, opt)
			if err != nil {
				t.Fatal(err)
			}
			j.Eng.Mode = sim.ModeContinuation
			err = j.Eng.Run(nranks, func(p *sim.Proc) {
				rt := j.Runtime(p)
				addrs, err := rt.Malloc(512)
				must(t, err)
				if len(addrs) != nranks {
					t.Errorf("addr vector length %d, want %d", len(addrs), nranks)
				}
				if rt.Rank() == 0 {
					src := rt.MallocLocal(128)
					fill(t, rt, src, 128, func(i int) byte { return byte(i + 3) })
					// Same-node, remote, and far-remote targets.
					for _, target := range []int{1, 100, nranks - 1} {
						must(t, rt.Put(src, addrs[target].Add(32), 128))
					}
					dst := rt.MallocLocal(128)
					must(t, rt.Get(addrs[nranks-1].Add(32), dst, 128))
					b, err := rt.LocalBytes(dst, 128)
					must(t, err)
					for i := range b {
						if b[i] != byte(i+3) {
							t.Fatalf("byte %d = %d, want %d", i, b[i], i+3)
						}
					}
				}
				rt.Barrier()
				must(t, rt.Free(addrs[rt.Rank()]))
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}
