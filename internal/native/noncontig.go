package native

import (
	"fmt"

	"repro/internal/armci"
	"repro/internal/fabric"
	"repro/internal/sim"
)

// seg is one resolved contiguous piece of a noncontiguous transfer.
type seg struct {
	srcVA, dstVA int64
	sreg, dreg   *fabric.Region
	n            int
}

// resolveStrided expands a strided descriptor into segments, resolving
// regions once per side (a strided transfer stays within one region on
// each side).
func (r *Runtime) resolveStrided(s *armci.Strided) ([]seg, int, error) {
	if err := s.Validate(); err != nil {
		return nil, 0, err
	}
	sreg, err := r.region(s.Src, s.SrcSpan())
	if err != nil {
		return nil, 0, fmt.Errorf("native: strided src: %w", err)
	}
	dreg, err := r.region(s.Dst, s.DstSpan())
	if err != nil {
		return nil, 0, fmt.Errorf("native: strided dst: %w", err)
	}
	segs := make([]seg, 0, s.Segments())
	s.Iterate(func(so, do int) {
		segs = append(segs, seg{
			srcVA: s.Src.VA + int64(so), dstVA: s.Dst.VA + int64(do),
			sreg: sreg, dreg: dreg, n: s.SegBytes(),
		})
	})
	return segs, s.Segments(), nil
}

// resolveIOV expands IOV descriptors into segments.
func (r *Runtime) resolveIOV(iov []armci.GIOV, proc int, remoteIsSrc bool) ([]seg, error) {
	if err := armci.ValidateIOV(iov, proc, remoteIsSrc); err != nil {
		return nil, err
	}
	var segs []seg
	for gi := range iov {
		g := &iov[gi]
		for i := range g.Src {
			sreg, err := r.region(g.Src[i], g.Bytes)
			if err != nil {
				return nil, fmt.Errorf("native: iov src seg %d: %w", i, err)
			}
			dreg, err := r.region(g.Dst[i], g.Bytes)
			if err != nil {
				return nil, fmt.Errorf("native: iov dst seg %d: %w", i, err)
			}
			segs = append(segs, seg{
				srcVA: g.Src[i].VA, dstVA: g.Dst[i].VA,
				sreg: sreg, dreg: dreg, n: g.Bytes,
			})
		}
	}
	return segs, nil
}

// putSegs is the tuned native noncontiguous put/acc pipeline: one
// operation setup, per-segment descriptor cost, a single pipelined NIC
// occupancy for the full payload, segment scatter at arrival.
func (r *Runtime) putSegs(segs []seg, target int, accumulate bool, scale float64) error {
	if len(segs) == 0 {
		return nil
	}
	r.opCost()
	r.p.Elapse(sim.FromSeconds(float64(len(segs)) * segOverheadNs / 1e9))
	total := 0
	data := make([][]byte, len(segs))
	var local *fabric.Region
	for i, sg := range segs {
		total += sg.n
		data[i] = append([]byte(nil), sg.sreg.Bytes(sg.srcVA, sg.n)...)
		local = sg.sreg
	}
	m := r.w.M
	arrive := m.SendDataAsync(r.Rank(), target, total, fabric.XferOpt{Rate: r.rate(local)})
	done := arrive
	if accumulate {
		accRate := m.Par.AccumRate
		if r.w.Tun.AccumRate > 0 {
			accRate = r.w.Tun.AccumRate
		}
		start := arrive
		if b := r.w.agentBusy[target]; b > start {
			start = b
		}
		done = start + sim.FromSeconds(float64(total)/accRate)
		r.w.agentBusy[target] = done
	}
	segsCopy := segs
	m.Eng.At(done, func() {
		for i, sg := range segsCopy {
			dst := sg.dreg.Bytes(sg.dstVA, sg.n)
			if accumulate {
				cur := decodeF64(dst)
				inc := decodeF64(data[i])
				for k := range cur {
					cur[k] += scale * inc[k]
				}
				encodeF64(dst, cur)
			} else {
				copy(dst, data[i])
			}
		}
	})
	r.noteRemote(target, done)
	r.w.BytesMoved += int64(total)
	r.w.Segments += int64(len(segs))
	return nil
}

// getSegs is the native noncontiguous get pipeline.
func (r *Runtime) getSegs(segs []seg, target int) (armci.Handle, error) {
	if len(segs) == 0 {
		return newHandle(r, true), nil
	}
	r.opCost()
	r.p.Elapse(sim.FromSeconds(float64(len(segs)) * segOverheadNs / 1e9))
	total := 0
	var local *fabric.Region
	for _, sg := range segs {
		total += sg.n
		local = sg.dreg
	}
	m := r.w.M
	h := newHandle(r, false)
	me := r.Rank()
	rate := r.rate(local)
	segsCopy := segs
	req := m.SendDataAsync(me, target, 0, fabric.XferOpt{NoNIC: true})
	m.Eng.At(req, func() {
		data := make([][]byte, len(segsCopy))
		for i, sg := range segsCopy {
			data[i] = append([]byte(nil), sg.sreg.Bytes(sg.srcVA, sg.n)...)
		}
		back := m.SendDataAsync(target, me, total, fabric.XferOpt{Rate: rate})
		m.Eng.At(back, func() {
			for i, sg := range segsCopy {
				copy(sg.dreg.Bytes(sg.dstVA, sg.n), data[i])
			}
			h.complete()
		})
	})
	r.w.BytesMoved += int64(total)
	r.w.Segments += int64(len(segs))
	return h, nil
}

// PutS performs a blocking strided put (Table I notation).
func (r *Runtime) PutS(s *armci.Strided) error {
	segs, _, err := r.resolveStrided(s)
	if err != nil {
		return err
	}
	if s.Src.Rank != r.Rank() {
		return fmt.Errorf("native: PutS source on rank %d, not local", s.Src.Rank)
	}
	return r.putSegs(segs, s.Dst.Rank, false, 1)
}

// GetS performs a blocking strided get.
func (r *Runtime) GetS(s *armci.Strided) error {
	h, err := r.NbGetS(s)
	if err != nil {
		return err
	}
	h.Wait()
	return nil
}

// AccS performs a blocking strided accumulate (dst += scale*src).
func (r *Runtime) AccS(op armci.AccOp, scale float64, s *armci.Strided) error {
	segs, _, err := r.resolveStrided(s)
	if err != nil {
		return err
	}
	if s.SegBytes()%8 != 0 {
		return fmt.Errorf("native: AccS segment size %d not float64-aligned", s.SegBytes())
	}
	return r.putSegs(segs, s.Dst.Rank, true, scale)
}

// NbPutS is the nonblocking strided put.
func (r *Runtime) NbPutS(s *armci.Strided) (armci.Handle, error) {
	if err := r.PutS(s); err != nil {
		return nil, err
	}
	return newHandle(r, true), nil
}

// NbGetS is the nonblocking strided get.
func (r *Runtime) NbGetS(s *armci.Strided) (armci.Handle, error) {
	segs, _, err := r.resolveStrided(s)
	if err != nil {
		return nil, err
	}
	if s.Dst.Rank != r.Rank() {
		return nil, fmt.Errorf("native: GetS destination on rank %d, not local", s.Dst.Rank)
	}
	return r.getSegs(segs, s.Src.Rank)
}

// NbAccS is the nonblocking strided accumulate; the pipeline buffers
// the source at issue, so local completion is immediate.
func (r *Runtime) NbAccS(op armci.AccOp, scale float64, s *armci.Strided) (armci.Handle, error) {
	if err := r.AccS(op, scale, s); err != nil {
		return nil, err
	}
	return newHandle(r, true), nil
}

// PutV performs a generalized I/O vector put to proc.
func (r *Runtime) PutV(iov []armci.GIOV, proc int) error {
	segs, err := r.resolveIOV(iov, proc, false)
	if err != nil {
		return err
	}
	return r.putSegs(segs, proc, false, 1)
}

// GetV performs a generalized I/O vector get from proc.
func (r *Runtime) GetV(iov []armci.GIOV, proc int) error {
	segs, err := r.resolveIOV(iov, proc, true)
	if err != nil {
		return err
	}
	h, err := r.getSegs(segs, proc)
	if err != nil {
		return err
	}
	h.Wait()
	return nil
}

// AccV performs a generalized I/O vector accumulate to proc.
func (r *Runtime) AccV(op armci.AccOp, scale float64, iov []armci.GIOV, proc int) error {
	segs, err := r.resolveIOV(iov, proc, false)
	if err != nil {
		return err
	}
	for i := range iov {
		if iov[i].Bytes%8 != 0 {
			return fmt.Errorf("native: AccV segment size %d not float64-aligned", iov[i].Bytes)
		}
	}
	return r.putSegs(segs, proc, true, scale)
}

// NbPutV is the nonblocking I/O vector put (locally complete at issue).
func (r *Runtime) NbPutV(iov []armci.GIOV, proc int) (armci.Handle, error) {
	if err := r.PutV(iov, proc); err != nil {
		return nil, err
	}
	return newHandle(r, true), nil
}

// NbGetV is the nonblocking I/O vector get; Wait blocks until every
// segment has landed.
func (r *Runtime) NbGetV(iov []armci.GIOV, proc int) (armci.Handle, error) {
	segs, err := r.resolveIOV(iov, proc, true)
	if err != nil {
		return nil, err
	}
	return r.getSegs(segs, proc)
}

// NbAccV is the nonblocking I/O vector accumulate (locally complete at
// issue).
func (r *Runtime) NbAccV(op armci.AccOp, scale float64, iov []armci.GIOV, proc int) (armci.Handle, error) {
	if err := r.AccV(op, scale, iov, proc); err != nil {
		return nil, err
	}
	return newHandle(r, true), nil
}
