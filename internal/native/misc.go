package native

import (
	"encoding/binary"
	"fmt"
	"sort"

	"repro/internal/armci"
	"repro/internal/fabric"
	"repro/internal/sim"
)

// Fence blocks until all operations this process issued to proc have
// completed remotely.
func (r *Runtime) Fence(proc int) {
	r.w.M.SleepUntil(r.p, r.w.lastRemote[r.Rank()][proc])
}

// AllFence fences every target.
func (r *Runtime) AllFence() {
	var last sim.Time
	for _, t := range r.w.lastRemote[r.Rank()] {
		if t > last {
			last = t
		}
	}
	r.w.M.SleepUntil(r.p, last)
}

// Barrier fences all communication and synchronizes all processes.
func (r *Runtime) Barrier() {
	r.AllFence()
	r.coll.Barrier()
}

const amoProcessNs = 90 // NIC-side atomic execution

// Rmw performs an atomic read-modify-write using the NIC's native
// atomics: a single network round trip.
func (r *Runtime) Rmw(op armci.RmwOp, addr armci.Addr, operand int64) (int64, error) {
	if addr.Nil() {
		return 0, fmt.Errorf("native: Rmw on NULL address")
	}
	r.opCost()
	reg, err := r.region(addr, 8)
	if err != nil {
		return 0, err
	}
	m := r.w.M
	eng := m.Eng
	p := r.p
	me := r.Rank()
	var old int64
	done := false
	arrive := m.SendDataAsync(me, addr.Rank, 0, fabric.XferOpt{NoNIC: true})
	va := addr.VA
	eng.At(arrive, func() {
		start := eng.Now()
		if b := r.w.agentBusy[addr.Rank]; b > start {
			start = b
		}
		fin := start + sim.Time(amoProcessNs)
		r.w.agentBusy[addr.Rank] = fin
		eng.At(fin, func() {
			b := reg.Bytes(va, 8)
			old = int64(binary.LittleEndian.Uint64(b))
			switch op {
			case armci.FetchAndAdd:
				binary.LittleEndian.PutUint64(b, uint64(old+operand))
			case armci.Swap:
				binary.LittleEndian.PutUint64(b, uint64(operand))
			}
			back := m.SendDataAsync(addr.Rank, me, 0, fabric.XferOpt{NoNIC: true})
			eng.At(back, func() {
				done = true
				eng.Unpark(p)
			})
		})
	})
	for !done {
		p.Park("native.Rmw")
	}
	return old, nil
}

// mutexHost is the target-side state of one native mutex set.
type mutexHost struct {
	id     int
	counts []int // mutexes hosted per rank
	// state[rank][idx]
	held  map[[2]int]bool
	queue map[[2]int][]*mutexWaiter
}

type mutexWaiter struct {
	p   *sim.Proc
	got bool
	eng *sim.Engine
}

func (w *mutexWaiter) grant() {
	w.got = true
	w.eng.Unpark(w.p)
}

// mutexSet is the per-rank handle.
type mutexSet struct {
	r    *Runtime
	host *mutexHost
}

// CreateMutexes collectively creates n mutexes hosted on the calling
// process (native implementation: CHT-serviced queues at the host).
func (r *Runtime) CreateMutexes(n int) (armci.Mutexes, error) {
	if n < 0 {
		return nil, fmt.Errorf("native: CreateMutexes(%d)", n)
	}
	counts := r.coll.AllgatherI64([]int64{int64(n)})
	h := &mutexHost{
		id:     len(r.w.mutexes),
		counts: make([]int, len(counts)),
		held:   map[[2]int]bool{},
		queue:  map[[2]int][]*mutexWaiter{},
	}
	for i, c := range counts {
		h.counts[i] = int(c)
	}
	if r.Rank() == 0 {
		r.w.mutexes = append(r.w.mutexes, h)
	} else {
		// All ranks computed identical hosts; adopt rank 0's instance.
		h = nil
	}
	r.coll.Barrier()
	if h == nil {
		h = r.w.mutexes[len(r.w.mutexes)-1]
	}
	return &mutexSet{r: r, host: h}, nil
}

// Lock acquires mutex mtx hosted on proc, blocking in a host-side FIFO.
func (s *mutexSet) Lock(mtx, proc int) {
	r := s.r
	if mtx < 0 || mtx >= s.host.counts[proc] {
		panic(fmt.Sprintf("native: Lock(%d,%d): host has %d mutexes", mtx, proc, s.host.counts[proc]))
	}
	r.opCost()
	m := r.w.M
	eng := m.Eng
	key := [2]int{proc, mtx}
	w := &mutexWaiter{p: r.p, eng: eng}
	arrive := m.SendDataAsync(r.Rank(), proc, 0, fabric.XferOpt{NoNIC: true})
	me := r.Rank()
	eng.At(arrive, func() {
		if !s.host.held[key] {
			s.host.held[key] = true
			back := m.SendDataAsync(proc, me, 0, fabric.XferOpt{NoNIC: true})
			eng.At(back, w.grant)
		} else {
			s.host.queue[key] = append(s.host.queue[key], w)
		}
	})
	for !w.got {
		r.p.Park("native.MutexLock")
	}
}

// Unlock releases mutex mtx on proc, forwarding to the next waiter.
func (s *mutexSet) Unlock(mtx, proc int) {
	r := s.r
	r.opCost()
	m := r.w.M
	eng := m.Eng
	key := [2]int{proc, mtx}
	arrive := m.SendDataAsync(r.Rank(), proc, 0, fabric.XferOpt{NoNIC: true})
	eng.At(arrive, func() {
		q := s.host.queue[key]
		if len(q) == 0 {
			s.host.held[key] = false
			return
		}
		next := q[0]
		s.host.queue[key] = q[1:]
		// Lock stays held; ownership forwards to the next waiter.
		relAt := eng.Now()
		by := r.Rank()
		back := m.SendDataAsync(proc, next.p.ID(), 0, fabric.XferOpt{NoNIC: true})
		eng.At(back, func() {
			// Critical path: the waiter's lock wait ends because this
			// rank released the mutex at relAt.
			if c := m.Obs.Crit(); c != nil {
				c.WakeGrant(next.p.ID(), by, relAt)
			}
			next.grant()
		})
	})
}

// Destroy collectively frees the mutex set.
func (s *mutexSet) Destroy() error {
	s.r.coll.Barrier()
	for i, h := range s.r.w.mutexes {
		if h == s.host {
			if s.r.Rank() == 0 {
				s.r.w.mutexes = append(s.r.w.mutexes[:i], s.r.w.mutexes[i+1:]...)
			}
			return nil
		}
	}
	return nil
}

// AccessBegin grants direct load/store access to local global memory.
// Native ARMCI on cache-coherent platforms allows this without
// synchronization; the call exists for API parity with the DLA
// extension (SectionVIII.A).
func (r *Runtime) AccessBegin(addr armci.Addr, n int) ([]byte, error) {
	if addr.Rank != r.Rank() {
		return nil, fmt.Errorf("native: AccessBegin on remote address %v", addr)
	}
	reg, err := r.region(addr, n)
	if err != nil {
		return nil, err
	}
	r.dla[addr.VA] = true
	return reg.Bytes(addr.VA, n), nil
}

// AccessEnd completes a direct access section.
func (r *Runtime) AccessEnd(addr armci.Addr) error {
	if !r.dla[addr.VA] {
		return fmt.Errorf("native: AccessEnd without AccessBegin at %v", addr)
	}
	delete(r.dla, addr.VA)
	return nil
}

// SetAccessMode accepts the SectionVIII.A hint; the native runtime on
// cache-coherent hardware has nothing to relax, so it only synchronizes.
func (r *Runtime) SetAccessMode(mode armci.AccessMode, addr armci.Addr) error {
	r.AllFence()
	r.coll.Barrier()
	return nil
}

// GroupCreateCollective creates a processor group; all world processes
// call. Non-members receive nil.
func (r *Runtime) GroupCreateCollective(members []int) (*armci.Group, error) {
	ms := sortedUnique(members)
	impl := r.coll.GroupComm(ms, true)
	if impl == nil {
		return nil, nil
	}
	return &armci.Group{Ranks: ms, Impl: impl}, nil
}

// GroupCreate creates a processor group noncollectively: only members
// call (SectionIV's noncollective group creation).
func (r *Runtime) GroupCreate(members []int) (*armci.Group, error) {
	ms := sortedUnique(members)
	impl := r.coll.GroupComm(ms, false)
	return &armci.Group{Ranks: ms, Impl: impl}, nil
}

func sortedUnique(members []int) []int {
	ms := append([]int(nil), members...)
	sort.Ints(ms)
	out := ms[:0]
	for i, v := range ms {
		if i == 0 || v != ms[i-1] {
			out = append(out, v)
		}
	}
	return out
}

// LocalBytes exposes local buffer memory on the calling process.
func (r *Runtime) LocalBytes(addr armci.Addr, n int) ([]byte, error) {
	if addr.Rank != r.Rank() {
		return nil, fmt.Errorf("native: LocalBytes on remote address %v", addr)
	}
	reg, err := r.region(addr, n)
	if err != nil {
		return nil, err
	}
	return reg.Bytes(addr.VA, n), nil
}
