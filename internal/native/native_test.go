package native_test

import (
	"testing"

	"repro/internal/armci"
	"repro/internal/armcimpi"
	"repro/internal/harness"
	"repro/internal/sim"
)

// The tests live in package native_test (the harness imports native,
// so an internal test package would create an import cycle).

// runNative executes body on n ranks of the test platform under the
// native runtime.
func runNative(t *testing.T, n int, body func(rt armci.Runtime)) *harness.Job {
	t.Helper()
	j, err := harness.NewJob(harness.TestPlatform(), n, harness.ImplNative, armcimpi.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Eng.Run(n, func(p *sim.Proc) { body(j.Runtime(p)) }); err != nil {
		t.Fatal(err)
	}
	return j
}

func must(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}

func TestPutIsPipelinedUntilFence(t *testing.T) {
	// Native puts complete locally: issuing k large puts back to back
	// takes far less time than the fenced total, demonstrating the
	// pipelining that ARMCI-MPI's per-op epochs cannot do.
	runNative(t, 2, func(rt armci.Runtime) {
		addrs, err := rt.Malloc(8 << 20)
		must(t, err)
		if rt.Rank() == 0 {
			src := rt.MallocLocal(1 << 20)
			start := rt.Proc().Now()
			for i := 0; i < 8; i++ {
				must(t, rt.Put(src, addrs[1].Add(i<<20), 1<<20))
			}
			issued := rt.Proc().Now() - start
			rt.Fence(1)
			fenced := rt.Proc().Now() - start
			if issued*4 > fenced {
				t.Errorf("puts blocked at issue: issued=%v fenced=%v", issued, fenced)
			}
			if fenced < issued {
				t.Error("fence did not wait for remote completion")
			}
		}
		rt.Barrier()
		must(t, rt.Free(addrs[rt.Rank()]))
	})
}

func TestFenceOnlyWaitsForNamedTarget(t *testing.T) {
	runNative(t, 3, func(rt armci.Runtime) {
		addrs, err := rt.Malloc(4 << 20)
		must(t, err)
		if rt.Rank() == 0 {
			src := rt.MallocLocal(4 << 20)
			// Slow transfer to 1, nothing to 2: fencing 2 is free.
			must(t, rt.Put(src, addrs[1], 4<<20))
			before := rt.Proc().Now()
			rt.Fence(2)
			if rt.Proc().Now() != before {
				t.Error("fence of an idle target advanced time")
			}
			rt.Fence(1)
			if rt.Proc().Now() == before {
				t.Error("fence of the busy target was free")
			}
		}
		rt.Barrier()
		must(t, rt.Free(addrs[rt.Rank()]))
	})
}

func TestNbGetOverlapsCompute(t *testing.T) {
	runNative(t, 2, func(rt armci.Runtime) {
		addrs, err := rt.Malloc(4 << 20)
		must(t, err)
		if rt.Rank() == 0 {
			dst := rt.MallocLocal(4 << 20)
			// Time blocking get.
			start := rt.Proc().Now()
			must(t, rt.Get(addrs[1], dst, 4<<20))
			blocking := rt.Proc().Now() - start
			// Overlap the same get with equal-length compute.
			start = rt.Proc().Now()
			h, err := rt.NbGet(addrs[1], dst, 4<<20)
			must(t, err)
			rt.Proc().Elapse(blocking)
			h.Wait()
			overlapped := rt.Proc().Now() - start
			if overlapped > blocking+blocking/4 {
				t.Errorf("nbget did not overlap: blocking=%v overlapped=%v", blocking, overlapped)
			}
		}
		rt.Barrier()
		must(t, rt.Free(addrs[rt.Rank()]))
	})
}

func TestNativeStridedPipelineCost(t *testing.T) {
	// The tuned strided path sends one pipelined transfer: many small
	// segments must cost far less than per-segment round trips would.
	runNative(t, 2, func(rt armci.Runtime) {
		addrs, err := rt.Malloc(1 << 20)
		must(t, err)
		if rt.Rank() == 0 {
			local := rt.MallocLocal(1 << 19)
			s := &armci.Strided{
				Src: local, Dst: addrs[1],
				SrcStride: []int{64}, DstStride: []int{128},
				Count: []int{64, 512},
			}
			start := rt.Proc().Now()
			must(t, rt.PutS(s))
			rt.Fence(1)
			elapsed := rt.Proc().Now() - start
			// 512 segments x a 2.2us round trip would be >1.1ms; the
			// pipeline should be far below that.
			if elapsed > 600*sim.Microsecond {
				t.Errorf("strided pipeline took %v; looks like per-segment round trips", elapsed)
			}
		}
		rt.Barrier()
		must(t, rt.Free(addrs[rt.Rank()]))
	})
}

func TestAccumulateAgentSerializes(t *testing.T) {
	// Concurrent accumulates to one target are applied by a serial
	// agent: the total time grows with the contender count.
	timeFor := func(contenders int) sim.Time {
		j := runNative(t, contenders+1, func(rt armci.Runtime) {
			addrs, err := rt.Malloc(1 << 20)
			must(t, err)
			if rt.Rank() > 0 {
				src := rt.MallocLocal(1 << 20)
				must(t, rt.Acc(armci.AccDbl, 1, src, addrs[0], 1<<20))
				rt.Fence(0)
			}
			rt.Barrier()
			must(t, rt.Free(addrs[rt.Rank()]))
		})
		return j.Eng.Stats().FinalTime
	}
	if t1, t4 := timeFor(1), timeFor(4); float64(t4) < 2*float64(t1) {
		t.Errorf("4 concurrent accumulates (%v) should take >2x one (%v)", t4, t1)
	}
}

func TestRegionErrors(t *testing.T) {
	runNative(t, 2, func(rt armci.Runtime) {
		addrs, err := rt.Malloc(64)
		must(t, err)
		if rt.Rank() == 0 {
			remote := rt.MallocLocal(8) // actually local, used as bogus remote src
			if err := rt.Put(armci.Addr{Rank: 1, VA: remote.VA + 1<<30}, addrs[1], 8); err == nil {
				t.Error("put from remote-rank source address accepted")
			}
			if _, err := rt.LocalBytes(addrs[1], 8); err == nil {
				t.Error("LocalBytes of remote address accepted")
			}
			if err := rt.FreeLocal(addrs[1]); err == nil {
				t.Error("FreeLocal of remote address accepted")
			}
		}
		rt.Barrier()
		must(t, rt.Free(addrs[rt.Rank()]))
	})
}

func TestMutexFIFOUnderContention(t *testing.T) {
	const n = 5
	var order []int
	runNative(t, n, func(rt armci.Runtime) {
		mux, err := rt.CreateMutexes(1)
		must(t, err)
		// Stagger arrivals so the queue order is deterministic.
		rt.Proc().Elapse(sim.Time(rt.Rank()*10) * sim.Microsecond)
		mux.Lock(0, 2)
		order = append(order, rt.Rank())
		rt.Proc().Elapse(100 * sim.Microsecond)
		mux.Unlock(0, 2)
		rt.Barrier()
		must(t, mux.Destroy())
	})
	for i := 1; i < len(order); i++ {
		if order[i] < order[i-1] {
			t.Errorf("mutex grant order not FIFO: %v", order)
		}
	}
}

func TestGroupOpsNative(t *testing.T) {
	runNative(t, 6, func(rt armci.Runtime) {
		g, err := rt.GroupCreateCollective([]int{0, 2, 4})
		must(t, err)
		if g == nil {
			rt.Barrier()
			return
		}
		addrs, err := rt.MallocGroup(g, 128)
		must(t, err)
		if rt.Rank() == 4 {
			src := rt.MallocLocal(16)
			must(t, rt.Put(src, addrs[0], 16))
			rt.Fence(0)
		}
		must(t, rt.FreeGroup(g, addrs[g.RankOf(rt.Rank())]))
		rt.Barrier()
	})
}
