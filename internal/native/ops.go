package native

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/armci"
	"repro/internal/fabric"
	"repro/internal/sim"
)

// segOverheadNs is the tuned per-segment CPU cost of the native strided
// pipeline (descriptor chaining on the NIC).
const segOverheadNs = 120

// noteRemote records the remote-completion horizon of an operation to
// target for ARMCI_Fence.
func (r *Runtime) noteRemote(target int, at sim.Time) {
	if r.w.lastRemote[r.Rank()][target] < at {
		r.w.lastRemote[r.Rank()][target] = at
	}
}

// handle implements armci.Handle: done is set by the completion event.
type handle struct {
	r       *Runtime
	done    bool
	waiting bool
}

func newHandle(r *Runtime, done bool) *handle { return &handle{r: r, done: done} }

func (h *handle) complete() {
	h.done = true
	if h.waiting {
		h.waiting = false
		h.r.w.M.Eng.Unpark(h.r.p)
	}
}

// Wait blocks until the operation is locally complete.
func (h *handle) Wait() {
	for !h.done {
		h.waiting = true
		h.r.p.Park("native.Wait")
	}
}

// Test reports local completion without blocking.
func (h *handle) Test() bool { return h.done }

// Put copies n bytes from the local src to the global dst; blocking
// local completion (the data has left the source buffer).
func (r *Runtime) Put(src, dst armci.Addr, n int) error {
	if err := armci.CheckContig(src, dst, n); err != nil {
		return err
	}
	if src.Rank != r.Rank() {
		return fmt.Errorf("native: Put source %v is not local to rank %d", src, r.Rank())
	}
	r.opCost()
	sreg, err := r.region(src, n)
	if err != nil {
		return err
	}
	dreg, err := r.region(dst, n)
	if err != nil {
		return err
	}
	m := r.w.M
	data := append([]byte(nil), sreg.Bytes(src.VA, n)...)
	arrive := m.SendDataAsync(r.Rank(), dst.Rank, n, fabric.XferOpt{Rate: r.rate(sreg)})
	dstVA := dst.VA
	m.Eng.At(arrive, func() { copy(dreg.Bytes(dstVA, n), data) })
	r.noteRemote(dst.Rank, arrive)
	r.w.BytesMoved += int64(n)
	r.w.Segments++
	return nil
}

// Get copies n bytes from the global src into the local dst; blocking.
func (r *Runtime) Get(src, dst armci.Addr, n int) error {
	h, err := r.NbGet(src, dst, n)
	if err != nil {
		return err
	}
	h.Wait()
	return nil
}

// Acc applies dst += scale*src on float64 elements; blocking local
// completion, remote completion under Fence.
func (r *Runtime) Acc(op armci.AccOp, scale float64, src, dst armci.Addr, n int) error {
	if err := armci.CheckContig(src, dst, n); err != nil {
		return err
	}
	if n%8 != 0 {
		return fmt.Errorf("native: Acc size %d not a multiple of 8 (float64)", n)
	}
	r.opCost()
	sreg, err := r.region(src, n)
	if err != nil {
		return err
	}
	dreg, err := r.region(dst, n)
	if err != nil {
		return err
	}
	m := r.w.M
	vals := decodeF64(sreg.Bytes(src.VA, n))
	if scale != 1 {
		for i := range vals {
			vals[i] *= scale
		}
	}
	arrive := m.SendDataAsync(r.Rank(), dst.Rank, n, fabric.XferOpt{Rate: r.rate(sreg)})
	// The helper-thread/NIC agent applies the reduction serially.
	accRate := m.Par.AccumRate
	if r.w.Tun.AccumRate > 0 {
		accRate = r.w.Tun.AccumRate
	}
	start := arrive
	if b := r.w.agentBusy[dst.Rank]; b > start {
		start = b
	}
	done := start + sim.FromSeconds(float64(n)/accRate)
	r.w.agentBusy[dst.Rank] = done
	dstVA := dst.VA
	m.Eng.At(done, func() {
		cur := decodeF64(dreg.Bytes(dstVA, n))
		for i := range cur {
			cur[i] += vals[i]
		}
		encodeF64(dreg.Bytes(dstVA, n), cur)
	})
	r.noteRemote(dst.Rank, done)
	r.w.BytesMoved += int64(n)
	r.w.Segments++
	return nil
}

// NbPut issues a put and returns immediately; Wait gives local
// completion (immediate for the buffered native pipeline).
func (r *Runtime) NbPut(src, dst armci.Addr, n int) (armci.Handle, error) {
	if err := r.Put(src, dst, n); err != nil {
		return nil, err
	}
	return newHandle(r, true), nil
}

// NbGet issues a get; Wait blocks until the data has arrived in the
// local buffer.
func (r *Runtime) NbGet(src, dst armci.Addr, n int) (armci.Handle, error) {
	if err := armci.CheckContig(src, dst, n); err != nil {
		return nil, err
	}
	if dst.Rank != r.Rank() {
		return nil, fmt.Errorf("native: Get destination %v is not local to rank %d", dst, r.Rank())
	}
	r.opCost()
	sreg, err := r.region(src, n)
	if err != nil {
		return nil, err
	}
	dreg, err := r.region(dst, n)
	if err != nil {
		return nil, err
	}
	m := r.w.M
	h := newHandle(r, false)
	rate := r.rate(dreg)
	me := r.Rank()
	dstVA := dst.VA
	srcVA := src.VA
	req := m.SendDataAsync(me, src.Rank, 0, fabric.XferOpt{NoNIC: true})
	m.Eng.At(req, func() {
		data := append([]byte(nil), sreg.Bytes(srcVA, n)...)
		back := m.SendDataAsync(src.Rank, me, n, fabric.XferOpt{Rate: rate})
		m.Eng.At(back, func() {
			copy(dreg.Bytes(dstVA, n), data)
			h.complete()
		})
	})
	r.w.BytesMoved += int64(n)
	r.w.Segments++
	return h, nil
}

// NbAcc issues an accumulate; the native pipeline buffers the scaled
// source at issue, so local completion is immediate.
func (r *Runtime) NbAcc(op armci.AccOp, scale float64, src, dst armci.Addr, n int) (armci.Handle, error) {
	if err := r.Acc(op, scale, src, dst, n); err != nil {
		return nil, err
	}
	return newHandle(r, true), nil
}

func decodeF64(b []byte) []float64 {
	out := make([]float64, len(b)/8)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return out
}

func encodeF64(b []byte, vals []float64) {
	for i, v := range vals {
		binary.LittleEndian.PutUint64(b[8*i:], math.Float64bits(v))
	}
}
