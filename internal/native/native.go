// Package native implements the ARMCI Runtime interface directly on
// the simulated fabric's RDMA primitives, standing in for the
// vendor-tuned native ARMCI implementations the paper compares against
// (ARMCI-Native). Its structural advantages over ARMCI-MPI mirror the
// real ones: no lock round trips around one-sided operations, pre-pinned
// allocation pools, NIC-side atomics for read-modify-write, and a tuned
// per-segment strided pipeline. Its per-platform quality is set by
// platform.Tuning (e.g. the under-tuned Cray XE6 development port).
//
// As in the paper's Figure 1(a), MPI is present alongside native ARMCI:
// the runtime uses an MPI rank handle for process-management collectives
// (allocation exchange, barriers, groups), never for data movement.
package native

import (
	"fmt"

	"repro/internal/armci"
	"repro/internal/fabric"
	"repro/internal/platform"
	"repro/internal/sim"
)

// World is the shared state of the native ARMCI job.
type World struct {
	M   *fabric.Machine
	Tun *platform.Tuning

	allocs []*allocation
	nextID int

	// Per-target serialization point for accumulates and atomics (the
	// communication helper thread / NIC agent).
	agentBusy []sim.Time
	// Per-origin, per-target remote completion horizon for Fence.
	lastRemote [][]sim.Time

	mutexes []*mutexHost

	// Counters.
	Ops        int64
	Segments   int64
	BytesMoved int64
}

// allocation records one collective ARMCI_Malloc. Every member
// computes identical content from the allgathered metadata; the first
// member's copy is registered in the shared directory.
type allocation struct {
	id     int
	group  []int        // world ranks
	rankOf map[int]int  // world rank -> group rank
	addrs  []armci.Addr // per group rank (Nil for zero-size)
	sizes  []int        // per group rank
}

// NewWorld creates native ARMCI state for machine m with tuning tun.
func NewWorld(m *fabric.Machine, tun *platform.Tuning) *World {
	w := &World{M: m, Tun: tun, agentBusy: make([]sim.Time, m.NRanks)}
	w.lastRemote = make([][]sim.Time, m.NRanks)
	for i := range w.lastRemote {
		w.lastRemote[i] = make([]sim.Time, m.NRanks)
	}
	return w
}

// Runtime is one rank's native ARMCI handle. Collectives ride on the
// provided MPI rank (coll), as in the paper's native software stack.
type Runtime struct {
	w    *World
	coll Collective
	p    *sim.Proc

	dla map[int64]bool // open direct-local-access ranges (by VA)
}

// Collective is the subset of MPI the native runtime borrows for
// process management, satisfied by *mpi.Rank's CommWorld plus group
// helpers (see internal/armci/groups.go for the adapters).
type Collective interface {
	Barrier()
	AllgatherI64(vals []int64) []int64
	BcastI64(root int, vals []int64) []int64
	GroupComm(members []int, collective bool) interface{} // opaque comm for Group.Impl
	GroupAllgatherI64(g interface{}, vals []int64) []int64
	GroupBarrier(g interface{})
	GroupBcastI64(g interface{}, root int, vals []int64) []int64
}

// New creates the per-rank native runtime handle.
func New(w *World, coll Collective, p *sim.Proc) *Runtime {
	return &Runtime{w: w, coll: coll, p: p, dla: map[int64]bool{}}
}

var _ armci.Runtime = (*Runtime)(nil)

// Name identifies the implementation.
func (r *Runtime) Name() string { return "native" }

// Rank returns the calling world rank.
func (r *Runtime) Rank() int { return r.p.ID() }

// Nprocs returns the world size.
func (r *Runtime) Nprocs() int { return r.w.M.NRanks }

// Proc returns the simulation context.
func (r *Runtime) Proc() *sim.Proc { return r.p }

// opCost charges the native per-operation software overhead, including
// any scale penalty of under-tuned target agents.
func (r *Runtime) opCost() {
	over := r.w.Tun.OpOverheadNs
	if r.w.Tun.ScalePenaltyNs > 0 {
		over += r.w.Tun.ScalePenaltyNs * log2f(r.Nprocs())
	}
	r.p.Elapse(sim.FromSeconds(over / 1e9))
	r.w.Ops++
}

func log2f(n int) float64 {
	f := 0.0
	for n > 1 {
		f++
		n >>= 1
	}
	return f
}

// rate returns the achievable transfer rate for a local buffer: the
// pinned path at the tuned fraction of link bandwidth, or ARMCI's
// pipelined non-pinned path for memory ARMCI has not registered
// (Figure 5's "ARMCI-IB, MPI Touch" curve).
func (r *Runtime) rate(local *fabric.Region) float64 {
	full := r.w.M.Par.Bandwidth * r.w.Tun.BandwidthFrac
	if r.w.M.Par.PinPageNs <= 0 {
		return full
	}
	if local != nil && local.PinnedFor(fabric.DomainARMCI) {
		return full
	}
	if r.w.M.Par.UnpinnedRate < full {
		return r.w.M.Par.UnpinnedRate
	}
	return full
}

// region resolves a local address (on the calling rank) to its region.
func (r *Runtime) region(a armci.Addr, n int) (*fabric.Region, error) {
	reg := r.w.M.Space(a.Rank).Find(a.VA, n)
	if reg == nil {
		return nil, fmt.Errorf("native: address %v (+%d) not in any allocation", a, n)
	}
	return reg, nil
}

// Malloc collectively allocates globally accessible memory (world).
func (r *Runtime) Malloc(bytes int) ([]armci.Addr, error) {
	return r.mallocOn(nil, bytes)
}

// MallocGroup allocates over a group.
func (r *Runtime) MallocGroup(g *armci.Group, bytes int) ([]armci.Addr, error) {
	if g == nil {
		return nil, fmt.Errorf("native: MallocGroup with nil group")
	}
	return r.mallocOn(g, bytes)
}

func (r *Runtime) mallocOn(g *armci.Group, bytes int) ([]armci.Addr, error) {
	if bytes < 0 {
		return nil, fmt.Errorf("native: Malloc(%d): negative size", bytes)
	}
	var reg *fabric.Region
	var va int64
	if bytes > 0 {
		reg = r.w.M.Space(r.Rank()).Alloc(bytes, fabric.DomainARMCI, true)
		va = reg.VA
	}
	// Exchange base addresses (the all-to-all of SectionV.B).
	var vas []int64
	var members []int
	if g == nil {
		vas = r.coll.AllgatherI64([]int64{va, int64(bytes)})
		members = make([]int, r.Nprocs())
		for i := range members {
			members[i] = i
		}
	} else {
		vas = r.coll.GroupAllgatherI64(g.Impl, []int64{va, int64(bytes)})
		members = g.Ranks
	}
	a := &allocation{
		group:  members,
		rankOf: map[int]int{},
		addrs:  make([]armci.Addr, len(members)),
		sizes:  make([]int, len(members)),
	}
	for i, world := range members {
		a.rankOf[world] = i
		a.sizes[i] = int(vas[2*i+1])
		if vas[2*i+1] > 0 {
			a.addrs[i] = armci.Addr{Rank: world, VA: vas[2*i]}
		}
	}
	_ = reg
	// One rank registers the allocation in the shared directory (all
	// members computed identical content).
	if members[0] == r.Rank() {
		a.id = r.w.nextID
		r.w.nextID++
		r.w.allocs = append(r.w.allocs, a)
	}
	r.barrierOn(g)
	return append([]armci.Addr(nil), a.addrs...), nil
}

func (r *Runtime) barrierOn(g *armci.Group) {
	if g == nil {
		r.coll.Barrier()
	} else {
		r.coll.GroupBarrier(g.Impl)
	}
}

// findAlloc locates the shared allocation containing addr.
func (w *World) findAlloc(addr armci.Addr) *allocation {
	for _, a := range w.allocs {
		if gr, ok := a.rankOf[addr.Rank]; ok {
			base := a.addrs[gr]
			if !base.Nil() && addr.VA >= base.VA && addr.VA < base.VA+int64(a.sizes[gr]) {
				return a
			}
		}
	}
	return nil
}

// Free collectively releases an allocation (world).
func (r *Runtime) Free(addr armci.Addr) error { return r.freeOn(nil, addr) }

// FreeGroup releases a group allocation.
func (r *Runtime) FreeGroup(g *armci.Group, addr armci.Addr) error { return r.freeOn(g, addr) }

func (r *Runtime) freeOn(g *armci.Group, addr armci.Addr) error {
	// Leader election over (possibly NULL) addresses, as in SectionV.B.
	mine := int64(-1)
	if !addr.Nil() {
		mine = int64(r.Rank())
	}
	var leader int64
	var gathered []int64
	if g == nil {
		gathered = r.coll.AllgatherI64([]int64{mine, addr.VA})
	} else {
		gathered = r.coll.GroupAllgatherI64(g.Impl, []int64{mine, addr.VA})
	}
	var leaderVA int64
	leader = -1
	for i := 0; i < len(gathered)/2; i++ {
		if gathered[2*i] > leader {
			leader = gathered[2*i]
			leaderVA = gathered[2*i+1]
		}
	}
	if leader < 0 {
		return fmt.Errorf("native: Free: all processes passed NULL")
	}
	key := armci.Addr{Rank: int(leader), VA: leaderVA}
	a := r.w.findAlloc(key)
	if a == nil {
		return fmt.Errorf("native: Free(%v): unknown allocation", key)
	}
	// Release the local slice. The shared record is left intact until
	// the final barrier: other members may still be looking it up.
	gr := a.rankOf[r.Rank()]
	if a.sizes[gr] > 0 {
		if err := r.w.M.Space(r.Rank()).Free(a.addrs[gr].VA); err != nil {
			return err
		}
	}
	r.barrierOn(g)
	// Drop from the directory once (by the group's first member).
	if a.group[0] == r.Rank() {
		for i, e := range r.w.allocs {
			if e == a {
				r.w.allocs = append(r.w.allocs[:i], r.w.allocs[i+1:]...)
				break
			}
		}
	}
	return nil
}

// MallocLocal allocates from ARMCI's pre-pinned local pools.
func (r *Runtime) MallocLocal(bytes int) armci.Addr {
	reg := r.w.M.Space(r.Rank()).Alloc(bytes, fabric.DomainARMCI, true)
	return armci.Addr{Rank: r.Rank(), VA: reg.VA}
}

// FreeLocal releases local buffer memory.
func (r *Runtime) FreeLocal(addr armci.Addr) error {
	if addr.Rank != r.Rank() {
		return fmt.Errorf("native: FreeLocal of remote address %v", addr)
	}
	return r.w.M.Space(r.Rank()).Free(addr.VA)
}
