package bench

import (
	"fmt"
	"runtime"
	"testing"
)

// TestParallelSpeedupQuick: the sweep produces both series at every
// requested shard count with positive rates (virtual-result identity
// across shard counts is enforced inside ParallelSpeedup itself).
func TestParallelSpeedupQuick(t *testing.T) {
	cfg := QuickParallel()
	f, err := ParallelSpeedup(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, label := range []string{"scale-exchange (events/s)", "speedup"} {
		s := f.Get(label)
		if s == nil {
			t.Fatalf("series %q missing", label)
		}
		if len(s.X) != len(cfg.Shards) {
			t.Errorf("series %q sampled at %v, want one point per %v", label, s.X, cfg.Shards)
		}
		for i, y := range s.Y {
			if y <= 0 {
				t.Errorf("series %q sample %d = %v, want > 0", label, i, y)
			}
		}
	}
	if s := f.Get("speedup"); s.Y[0] != 1 {
		t.Errorf("speedup at first shard count = %v, want 1", s.Y[0])
	}
}

// TestParallelScaleRunDeterminism: the exchange produces identical
// engine statistics (events, parks, final virtual time) at every shard
// count — the bench-level restatement of the sim equivalence tests on
// a real fabric cost model.
func TestParallelScaleRunDeterminism(t *testing.T) {
	ref, _, err := ParallelScaleRun(504, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ref.Events == 0 || ref.FinalTime == 0 {
		t.Fatalf("degenerate reference stats %+v", ref)
	}
	for _, k := range []int{2, 4, 8} {
		st, _, err := ParallelScaleRun(504, 3, k)
		if err != nil {
			t.Fatalf("shards=%d: %v", k, err)
		}
		if st != ref {
			t.Errorf("shards=%d: stats %+v, want %+v", k, st, ref)
		}
	}
}

// TestParallelSpeedupTarget asserts the acceptance bar — >= 2.5x
// events/sec at 8 shards versus 1 on the 16k-rank sweep — on hosts
// with enough cores to express it.
func TestParallelSpeedupTarget(t *testing.T) {
	if testing.Short() {
		t.Skip("full 16k-rank sweep skipped in -short mode")
	}
	if runtime.NumCPU() < 8 {
		t.Skipf("needs >= 8 host cores to assert the 8-shard target, have %d", runtime.NumCPU())
	}
	f, err := ParallelSpeedup(DefaultParallel())
	if err != nil {
		t.Fatal(err)
	}
	s := f.Get("speedup")
	if s == nil {
		t.Fatal("speedup series missing")
	}
	at8, ok := s.At(8)
	if !ok {
		t.Fatalf("no 8-shard sample in %v", s.X)
	}
	if at8 < 2.5 {
		t.Errorf("speedup at 8 shards = %.2fx, want >= 2.5x", at8)
	}
}

// BenchmarkParallelShards is the CI race-smoke entry point for the
// sharded engine at the bench level: one quick-sized exchange per
// iteration at each shard count, under whatever GOMAXPROCS the CI
// matrix sets.
func BenchmarkParallelShards(b *testing.B) {
	cfg := QuickParallel()
	for _, k := range []int{1, 2, 8} {
		b.Run(fmt.Sprintf("shards=%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := ParallelScaleRun(cfg.Ranks, cfg.Rounds, k); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
