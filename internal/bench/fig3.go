package bench

import (
	"fmt"

	"repro/internal/armci"
	"repro/internal/harness"
	"repro/internal/obs"
	"repro/internal/platform"
)

// ContigOp names a contiguous operation under test.
type ContigOp string

const (
	OpGet ContigOp = "get"
	OpPut ContigOp = "put"
	OpAcc ContigOp = "acc"
)

// Fig3Config tunes the contiguous-bandwidth sweep.
type Fig3Config struct {
	MinExp, MaxExp int // transfer sizes 2^MinExp .. 2^MaxExp bytes
	Iters          int // measured repetitions per size

	// Obs, when non-nil, records per-rank metrics and trace spans for
	// every job in the sweep.
	Obs *obs.Recorder
}

// DefaultFig3 mirrors the paper's 2^0..2^25 sweep at a size that runs
// quickly; Quick shrinks it for tests.
func DefaultFig3() Fig3Config { return Fig3Config{MinExp: 0, MaxExp: 25, Iters: 4} }

// QuickFig3 is a reduced sweep for tests.
func QuickFig3() Fig3Config { return Fig3Config{MinExp: 3, MaxExp: 18, Iters: 2} }

// ContigBandwidth measures the bandwidth of one contiguous operation
// between two processes on different nodes, as in Figure 3: origin
// rank 0, target rank (one full node away).
func ContigBandwidth(plat *platform.Platform, impl harness.Impl, op ContigOp, cfg Fig3Config) (Series, error) {
	sizes := pow2s(cfg.MinExp, cfg.MaxExp)
	maxSize := sizes[len(sizes)-1]
	if op == OpAcc {
		// Accumulate needs float64-aligned sizes.
		var aligned []int
		for _, s := range sizes {
			if s >= 8 {
				aligned = append(aligned, s)
			}
		}
		sizes = aligned
	}
	series := Series{Label: fmt.Sprintf("%s (%s)", op, implShort(impl))}
	nranks := 2 * plat.CoresPerNode // origin and target on different nodes
	target := plat.CoresPerNode
	var bwErr error
	_, err := harness.RunObs(plat, nranks, impl, benchOptions(), cfg.Obs, func(rt armci.Runtime) {
		addrs, err := rt.Malloc(maxSize)
		if err != nil {
			bwErr = err
			return
		}
		local := rt.MallocLocal(maxSize)
		if rt.Rank() == 0 {
			for _, size := range sizes {
				// Warm up (registration, allocation paths), then fence so
				// pipelined native puts do not bleed into the timing.
				if err := doContig(rt, op, local, addrs[target], size); err != nil {
					bwErr = err
					return
				}
				rt.Fence(target)
				start := rt.Proc().Now()
				for i := 0; i < cfg.Iters; i++ {
					if err := doContig(rt, op, local, addrs[target], size); err != nil {
						bwErr = err
						return
					}
				}
				rt.Fence(target)
				elapsed := rt.Proc().Now() - start
				series.X = append(series.X, float64(size))
				series.Y = append(series.Y, bandwidth(int64(size)*int64(cfg.Iters), elapsed))
			}
		}
		rt.Barrier()
		if err := rt.Free(addrs[rt.Rank()]); err != nil {
			bwErr = err
		}
	})
	if err != nil {
		return series, err
	}
	return series, bwErr
}

func doContig(rt armci.Runtime, op ContigOp, local, remote armci.Addr, size int) error {
	switch op {
	case OpGet:
		return rt.Get(remote, local, size)
	case OpPut:
		return rt.Put(local, remote, size)
	case OpAcc:
		return rt.Acc(armci.AccDbl, 1.0, local, remote, size)
	default:
		return fmt.Errorf("bench: unknown op %q", op)
	}
}

func implShort(impl harness.Impl) string {
	switch impl {
	case harness.ImplNative:
		return "Nat."
	case harness.ImplDataServer:
		return "DS"
	case harness.ImplDartMPI:
		return "DART"
	default:
		return "MPI"
	}
}

// Fig3 regenerates one platform's panel of Figure 3: get/put/acc
// bandwidth for native ARMCI and ARMCI-MPI.
func Fig3(plat *platform.Platform, cfg Fig3Config) (*Figure, error) {
	fig := &Figure{
		Name:   "fig3-" + plat.Name,
		Title:  fmt.Sprintf("Contiguous ARMCI bandwidth, %s", plat.System),
		XLabel: "transfer size (bytes)",
		YLabel: "bandwidth (GB/s)",
	}
	impls := []harness.Impl{harness.ImplNative, harness.ImplARMCIMPI}
	for _, extra := range ExtraImpls {
		if extra != harness.ImplNative && extra != harness.ImplARMCIMPI {
			impls = append(impls, extra)
		}
	}
	for _, impl := range impls {
		for _, op := range []ContigOp{OpGet, OpPut, OpAcc} {
			s, err := ContigBandwidth(plat, impl, op, cfg)
			if err != nil {
				return nil, fmt.Errorf("bench: fig3 %s/%s/%s: %w", plat.Name, impl, op, err)
			}
			fig.Series = append(fig.Series, s)
		}
	}
	return fig, nil
}
