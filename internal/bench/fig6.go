package bench

import (
	"fmt"

	"repro/internal/ga"
	"repro/internal/harness"
	"repro/internal/mpi"
	"repro/internal/nwchem"
	"repro/internal/platform"
	"repro/internal/sim"
)

// Fig6Config tunes the NWChem scaling study. The paper's runs used up
// to 12288 physical cores; the simulation sweeps a scaled process
// range with a fixed (strong-scaling) problem whose task count and
// message sizes keep the communication-to-computation ratio in the
// regime that differentiates the runtimes.
type Fig6Config struct {
	Cores  []int         // simulated process counts
	Params nwchem.Params // fixed problem per platform sweep
	// FlopMult overrides Params.FlopMult per platform: the real
	// problem-per-core ratios differed across the paper's machines
	// (each platform ran at its own scale), which sets the
	// communication fraction that determines the CCSD gap.
	FlopMult map[string]float64
}

// ParamsFor returns the problem parameters for one platform.
func (c *Fig6Config) ParamsFor(plat *platform.Platform) nwchem.Params {
	p := c.Params
	if fm, ok := c.FlopMult[plat.Name]; ok {
		p.FlopMult = fm
	}
	return p
}

// DefaultFig6 uses a w5-shaped problem scaled to simulation size.
func DefaultFig6() Fig6Config {
	return Fig6Config{
		Cores:  []int{8, 16, 32, 64, 128},
		Params: nwchem.Params{NO: 6, NV: 48, Blk: 72, Iter: 1, Chunk: 4, FlopMult: 40},
		FlopMult: map[string]float64{
			platform.BlueGeneP: 120, // paper: "comparable ... maintains good scaling"
			platform.CrayXT5:   240, // paper: "only 15%-20% less for ARMCI-MPI"
		},
	}
}

// QuickFig6 is a reduced sweep for tests.
func QuickFig6() Fig6Config {
	return Fig6Config{
		Cores:  []int{4, 8, 16},
		Params: nwchem.Params{NO: 4, NV: 24, Blk: 36, Iter: 1, Chunk: 4, FlopMult: 40},
		FlopMult: map[string]float64{
			platform.BlueGeneP: 120,
			platform.CrayXT5:   240,
		},
	}
}

// NWChemPhase runs the CCSD or (T) phase of the proxy at one scale and
// returns the phase's virtual time (max over ranks).
func NWChemPhase(plat *platform.Platform, impl harness.Impl, cores int, p nwchem.Params, triples bool) (sim.Time, error) {
	j, err := harness.NewJob(plat, cores, impl, benchOptions())
	if err != nil {
		return 0, err
	}
	var phase sim.Time
	var runErr error
	err = j.Eng.Run(cores, func(pr *sim.Proc) {
		rt := j.Runtime(pr)
		env := ga.NewEnv(rt, j.MpiWorld.Rank(pr))
		sys, err := nwchem.Setup(env, j.M, p)
		if err != nil {
			runErr = err
			return
		}
		var res nwchem.Result
		if triples {
			res, err = sys.Triples()
		} else {
			res, err = sys.CCSD()
		}
		if err != nil {
			runErr = err
			return
		}
		// Phase time = max over ranks of the measured elapsed time.
		mx := env.GopF64(mpi.OpMax, []float64{res.Elapsed.Seconds()})
		if rt.Rank() == 0 {
			phase = sim.FromSeconds(mx[0])
		}
		if err := sys.Teardown(); err != nil {
			runErr = err
		}
	})
	if err != nil {
		return 0, err
	}
	return phase, runErr
}

// Fig6 regenerates one platform's panel of Figure 6: CCSD (and
// optionally (T)) time versus process count for both runtimes. Times
// are reported in virtual minutes, as in the paper's axes.
func Fig6(plat *platform.Platform, cfg Fig6Config, withTriples bool) (*Figure, error) {
	fig := &Figure{
		Name:   "fig6-" + plat.Name,
		Title:  "NWChem CCSD(T) proxy scaling, " + plat.System,
		XLabel: "number of processes",
		YLabel: "phase time (virtual minutes)",
	}
	for _, impl := range []harness.Impl{harness.ImplARMCIMPI, harness.ImplNative} {
		name := "ARMCI-MPI"
		if impl == harness.ImplNative {
			name = "ARMCI-Native"
		}
		for _, cores := range cfg.Cores {
			if cores > plat.MaxRanks() {
				continue
			}
			t, err := NWChemPhase(plat, impl, cores, cfg.ParamsFor(plat), false)
			if err != nil {
				return nil, fmt.Errorf("bench: fig6 %s/%s ccsd @%d: %w", plat.Name, impl, cores, err)
			}
			fig.Add(name+" CCSD", float64(cores), t.Seconds()/60)
			if withTriples {
				tt, err := NWChemPhase(plat, impl, cores, cfg.ParamsFor(plat), true)
				if err != nil {
					return nil, fmt.Errorf("bench: fig6 %s/%s (T) @%d: %w", plat.Name, impl, cores, err)
				}
				fig.Add(name+" (T)", float64(cores), tt.Seconds()/60)
			}
		}
	}
	return fig, nil
}

// nwchemParams is the proxy problem used by the MPI-3 backend ablation.
func nwchemParams() nwchem.Params {
	return nwchem.Params{NO: 4, NV: 24, Blk: 36, Iter: 1, Chunk: 4, FlopMult: 40}
}

// newGAEnv builds the per-rank GA environment for a job.
func newGAEnv(j *harness.Job, pr *sim.Proc) *ga.Env {
	return ga.NewEnv(j.Runtime(pr), j.MpiWorld.Rank(pr))
}

// nwchemSetup creates the proxy system on a job's machine.
func nwchemSetup(env *ga.Env, j *harness.Job, p nwchem.Params) (*nwchem.System, error) {
	return nwchem.Setup(env, j.M, p)
}
