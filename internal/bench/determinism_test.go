package bench

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/armcimpi"
	"repro/internal/harness"
	"repro/internal/obs"
)

// runObserved runs a small fixed bench configuration with a fresh
// trace-enabled recorder and returns the three machine-readable
// artifacts: the Chrome trace, the stats JSON, and the figure JSON.
func runObserved(t *testing.T) (trace, stats, figJSON []byte) {
	t.Helper()
	rec := obs.New(obs.Options{Trace: true})
	plat := harness.TestPlatform()
	fig := &Figure{Name: "det", Title: "determinism check", XLabel: "x", YLabel: "GB/s"}

	cfg := Fig3Config{MinExp: 3, MaxExp: 10, Iters: 2, Obs: rec}
	for _, op := range []ContigOp{OpGet, OpPut, OpAcc} {
		s, err := ContigBandwidth(plat, harness.ImplARMCIMPI, op, cfg)
		if err != nil {
			t.Fatalf("ContigBandwidth(%s): %v", op, err)
		}
		fig.Series = append(fig.Series, s)
	}
	// A data-server run exercises the per-node server trace lane, and a
	// strided run exercises the packed-bytes datatype path.
	dsCfg := Fig3Config{MinExp: 4, MaxExp: 8, Iters: 1, Obs: rec}
	s, err := ContigBandwidth(plat, harness.ImplDataServer, OpGet, dsCfg)
	if err != nil {
		t.Fatalf("ContigBandwidth(ds): %v", err)
	}
	fig.Series = append(fig.Series, s)
	sv := stridedVariant{label: "Direct", impl: harness.ImplARMCIMPI, method: armcimpi.MethodDirect}
	st, err := stridedBandwidthObs(plat, sv, OpPut, 16, []int{1, 2, 4}, 1, rec)
	if err != nil {
		t.Fatalf("stridedBandwidthObs: %v", err)
	}
	fig.Series = append(fig.Series, st)
	// The shm ablation covers the intra-node fast path (and its NoShm
	// baseline) in the same deterministic artifact set.
	shmCfg := ShmAblationConfig{MinExp: 3, MaxExp: 8, Iters: 1, SegBytes: 64, MaxSegs: 4, Obs: rec}
	shmFig, err := AblationShm(plat, shmCfg)
	if err != nil {
		t.Fatalf("AblationShm: %v", err)
	}
	fig.Series = append(fig.Series, shmFig.Series...)

	var tb, sb, fb bytes.Buffer
	if err := rec.WriteTrace(&tb); err != nil {
		t.Fatalf("WriteTrace: %v", err)
	}
	if err := rec.WriteStatsJSON(&sb); err != nil {
		t.Fatalf("WriteStatsJSON: %v", err)
	}
	if err := fig.WriteJSON(&fb); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	return tb.Bytes(), sb.Bytes(), fb.Bytes()
}

// TestObservedBenchIsByteDeterministic runs the same configuration
// twice with independent recorders and requires the trace, stats JSON,
// and figure JSON to be byte-identical — the property that makes the
// observability artifacts diffable across code changes.
func TestObservedBenchIsByteDeterministic(t *testing.T) {
	tr1, st1, fig1 := runObserved(t)
	tr2, st2, fig2 := runObserved(t)
	if !bytes.Equal(tr1, tr2) {
		t.Errorf("trace differs between identical runs (%d vs %d bytes)", len(tr1), len(tr2))
	}
	if !bytes.Equal(st1, st2) {
		t.Errorf("stats JSON differs between identical runs:\n%s\n---\n%s", st1, st2)
	}
	if !bytes.Equal(fig1, fig2) {
		t.Errorf("figure JSON differs between identical runs:\n%s\n---\n%s", fig1, fig2)
	}

	// The artifacts must also be valid JSON of the expected shape.
	var trace struct {
		TraceEvents []map[string]interface{} `json:"traceEvents"`
	}
	if err := json.Unmarshal(tr1, &trace); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if len(trace.TraceEvents) == 0 {
		t.Fatal("trace has no events")
	}
	// The sweep includes intra-node jobs: their shm fast-path spans must
	// show up in the trace.
	for _, span := range []string{"put.shm", "get.shm"} {
		if !bytes.Contains(tr1, []byte(span)) {
			t.Errorf("trace has no %q span; shm fast path not exercised", span)
		}
	}
	var stats map[string]interface{}
	if err := json.Unmarshal(st1, &stats); err != nil {
		t.Fatalf("stats is not valid JSON: %v", err)
	}
	var fig figureJSON
	if err := json.Unmarshal(fig1, &fig); err != nil {
		t.Fatalf("figure is not valid JSON: %v", err)
	}
	if len(fig.Series) != 17 {
		t.Errorf("figure has %d series, want 17 (5 base + 12 shm ablation)", len(fig.Series))
	}
}
