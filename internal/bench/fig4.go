package bench

import (
	"fmt"

	"repro/internal/armci"
	"repro/internal/armcimpi"
	"repro/internal/harness"
	"repro/internal/obs"
	"repro/internal/platform"
)

// Fig4Config tunes the strided-bandwidth sweep.
type Fig4Config struct {
	SegSizes []int // contiguous segment sizes (paper: 16 and 1024 bytes)
	MaxSegs  int   // segment counts 1..MaxSegs in powers of two
	Iters    int

	// Obs, when non-nil, records per-rank metrics and trace spans for
	// every job in the sweep.
	Obs *obs.Recorder
}

// DefaultFig4 mirrors the paper: 16 B and 1024 B segments, 1..1024
// segments.
func DefaultFig4() Fig4Config {
	return Fig4Config{SegSizes: []int{16, 1024}, MaxSegs: 1024, Iters: 3}
}

// QuickFig4 is a reduced sweep for tests.
func QuickFig4() Fig4Config {
	return Fig4Config{SegSizes: []int{16, 1024}, MaxSegs: 64, Iters: 2}
}

// stridedSeries names the method variants plotted in Figure 4.
type stridedVariant struct {
	label  string
	impl   harness.Impl
	method armcimpi.Method
}

func fig4Variants() []stridedVariant {
	return []stridedVariant{
		{"Native", harness.ImplNative, armcimpi.MethodDirect},
		{"Direct", harness.ImplARMCIMPI, armcimpi.MethodDirect},
		{"IOV-Direct", harness.ImplARMCIMPI, armcimpi.MethodIOVDirect},
		{"IOV-Batched", harness.ImplARMCIMPI, armcimpi.MethodBatched},
		{"IOV-Consrv", harness.ImplARMCIMPI, armcimpi.MethodConservative},
	}
}

// StridedBandwidth measures one variant's strided bandwidth for a
// fixed segment size over a range of segment counts. The transfer is a
// 2-D strided patch: contiguous segments of segBytes, remote stride
// 2x the segment (noncontiguous at the target), local buffer dense.
func StridedBandwidth(plat *platform.Platform, v stridedVariant, op ContigOp, segBytes int, counts []int, iters int) (Series, error) {
	return stridedBandwidthObs(plat, v, op, segBytes, counts, iters, nil)
}

func stridedBandwidthObs(plat *platform.Platform, v stridedVariant, op ContigOp, segBytes int, counts []int, iters int, rec *obs.Recorder) (Series, error) {
	opt := benchOptions()
	opt.StridedMethod = v.method
	series := Series{Label: v.label}
	maxSegs := counts[len(counts)-1]
	remoteStride := 2 * segBytes
	winBytes := maxSegs*remoteStride + segBytes
	nranks := 2 * plat.CoresPerNode
	target := plat.CoresPerNode
	var bwErr error
	_, err := harness.RunObs(plat, nranks, v.impl, opt, rec, func(rt armci.Runtime) {
		addrs, err := rt.Malloc(winBytes)
		if err != nil {
			bwErr = err
			return
		}
		local := rt.MallocLocal(maxSegs * segBytes)
		if rt.Rank() == 0 {
			for _, nseg := range counts {
				s := &armci.Strided{
					Src:       local,
					Dst:       addrs[target],
					SrcStride: []int{segBytes},
					DstStride: []int{remoteStride},
					Count:     []int{segBytes, nseg},
				}
				if op == OpGet {
					s.Src, s.Dst = addrs[target], local
					s.SrcStride, s.DstStride = []int{remoteStride}, []int{segBytes}
				}
				if err := doStrided(rt, op, s); err != nil {
					bwErr = err
					return
				}
				rt.Fence(target)
				start := rt.Proc().Now()
				for i := 0; i < iters; i++ {
					if err := doStrided(rt, op, s); err != nil {
						bwErr = err
						return
					}
				}
				rt.Fence(target)
				elapsed := rt.Proc().Now() - start
				payload := int64(segBytes) * int64(nseg) * int64(iters)
				series.X = append(series.X, float64(nseg))
				series.Y = append(series.Y, bandwidth(payload, elapsed))
			}
		}
		rt.Barrier()
		if err := rt.Free(addrs[rt.Rank()]); err != nil {
			bwErr = err
		}
	})
	if err != nil {
		return series, err
	}
	return series, bwErr
}

func doStrided(rt armci.Runtime, op ContigOp, s *armci.Strided) error {
	switch op {
	case OpGet:
		return rt.GetS(s)
	case OpPut:
		return rt.PutS(s)
	case OpAcc:
		return rt.AccS(armci.AccDbl, 1.0, s)
	default:
		return fmt.Errorf("bench: unknown op %q", op)
	}
}

// Fig4 regenerates one platform/segment-size/operation panel of
// Figure 4: bandwidth vs segment count for every transfer method.
func Fig4(plat *platform.Platform, op ContigOp, segBytes int, cfg Fig4Config) (*Figure, error) {
	var counts []int
	for c := 1; c <= cfg.MaxSegs; c *= 2 {
		counts = append(counts, c)
	}
	fig := &Figure{
		Name:   fmt.Sprintf("fig4-%s-%s-%dB", plat.Name, op, segBytes),
		Title:  fmt.Sprintf("Strided %s bandwidth, %s, %d-byte segments", op, plat.System, segBytes),
		XLabel: "number of contiguous segments",
		YLabel: "bandwidth (GB/s)",
	}
	for _, v := range fig4Variants() {
		s, err := stridedBandwidthObs(plat, v, op, segBytes, counts, cfg.Iters, cfg.Obs)
		if err != nil {
			return nil, fmt.Errorf("bench: fig4 %s/%s/%s: %w", plat.Name, v.label, op, err)
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}
