package bench

import (
	"testing"

	"repro/internal/platform"
)

func TestNbFanoutAggregationWins(t *testing.T) {
	ib := platform.Get(platform.InfiniBand)
	fig, err := AblationNbFanout(ib, QuickNbFanout())
	if err != nil {
		t.Fatal(err)
	}
	for _, op := range []string{"put", "get"} {
		nb := fig.Get(op + " (nonblocking)")
		bl := fig.Get(op + " (blocking)")
		if nb == nil || bl == nil {
			t.Fatalf("missing %s series", op)
		}
		if len(nb.Y) != len(bl.Y) {
			t.Fatalf("%s series lengths differ: %d vs %d", op, len(nb.Y), len(bl.Y))
		}
		// Acceptance: aggregation is strictly faster once the patch spans
		// several owners, and never more than marginally slower below that.
		for i := range nb.X {
			if nb.X[i] >= 4 && nb.Y[i] >= bl.Y[i] {
				t.Errorf("%s at %v owners: nonblocking %.3fus not faster than blocking %.3fus",
					op, nb.X[i], nb.Y[i], bl.Y[i])
			}
		}
	}
}

func BenchmarkAblationNbFanout(b *testing.B) {
	ib := platform.Get(platform.InfiniBand)
	cfg := QuickNbFanout()
	for i := 0; i < b.N; i++ {
		if _, err := AblationNbFanout(ib, cfg); err != nil {
			b.Fatal(err)
		}
	}
}
