package bench

import (
	"fmt"

	"repro/internal/armci"
	"repro/internal/harness"
	"repro/internal/obs"
	"repro/internal/platform"
)

// ShmAblationConfig tunes the intra-node shared-memory ablation sweep.
type ShmAblationConfig struct {
	MinExp, MaxExp int // contiguous transfer sizes 2^MinExp .. 2^MaxExp
	Iters          int
	SegBytes       int // strided segment size
	MaxSegs        int // strided segment counts 1..MaxSegs (powers of two)

	// Obs, when non-nil, records per-rank metrics and trace spans for
	// every job in the sweep.
	Obs *obs.Recorder
}

// DefaultShmAblation covers small messages through the bandwidth
// regime where the memcpy-rate gap dominates.
func DefaultShmAblation() ShmAblationConfig {
	return ShmAblationConfig{MinExp: 3, MaxExp: 22, Iters: 3, SegBytes: 1024, MaxSegs: 256}
}

// QuickShmAblation is a reduced sweep for tests.
func QuickShmAblation() ShmAblationConfig {
	return ShmAblationConfig{MinExp: 3, MaxExp: 16, Iters: 2, SegBytes: 256, MaxSegs: 16}
}

// shmVariant is one (placement, path) cell of the ablation: the target
// on the origin's node or one node away, with the shared-memory fast
// path enabled or forced off (plain MPI_Win_create windows).
type shmVariant struct {
	intra bool
	noShm bool
}

func (v shmVariant) label(kind string) string {
	place, path := "inter", "shm"
	if v.intra {
		place = "intra"
	}
	if v.noShm {
		path = "rma"
	}
	return fmt.Sprintf("%s %s (%s)", place, kind, path)
}

func (v shmVariant) target(plat *platform.Platform) int {
	if v.intra {
		return 1 // a second core of the origin's node
	}
	return plat.CoresPerNode
}

func shmVariants() []shmVariant {
	return []shmVariant{
		{intra: true, noShm: false},
		{intra: true, noShm: true},
		{intra: false, noShm: false},
		{intra: false, noShm: true},
	}
}

// shmContigBandwidth measures contiguous op bandwidth for one variant,
// mirroring the Figure 3 harness but with a selectable target rank and
// the NoShm ablation switch.
func shmContigBandwidth(plat *platform.Platform, op ContigOp, v shmVariant, cfg ShmAblationConfig) (Series, error) {
	sizes := pow2s(cfg.MinExp, cfg.MaxExp)
	maxSize := sizes[len(sizes)-1]
	series := Series{Label: v.label(string(op))}
	opt := benchOptions()
	opt.NoShm = v.noShm
	nranks := 2 * plat.CoresPerNode
	target := v.target(plat)
	var bwErr error
	_, err := harness.RunObs(plat, nranks, harness.ImplARMCIMPI, opt, cfg.Obs, func(rt armci.Runtime) {
		addrs, err := rt.Malloc(maxSize)
		if err != nil {
			bwErr = err
			return
		}
		local := rt.MallocLocal(maxSize)
		if rt.Rank() == 0 {
			for _, size := range sizes {
				if err := doContig(rt, op, local, addrs[target], size); err != nil {
					bwErr = err
					return
				}
				rt.Fence(target)
				start := rt.Proc().Now()
				for i := 0; i < cfg.Iters; i++ {
					if err := doContig(rt, op, local, addrs[target], size); err != nil {
						bwErr = err
						return
					}
				}
				rt.Fence(target)
				elapsed := rt.Proc().Now() - start
				series.X = append(series.X, float64(size))
				series.Y = append(series.Y, bandwidth(int64(size)*int64(cfg.Iters), elapsed))
			}
		}
		rt.Barrier()
		if err := rt.Free(addrs[rt.Rank()]); err != nil {
			bwErr = err
		}
	})
	if err != nil {
		return series, err
	}
	return series, bwErr
}

// shmStridedBandwidth measures strided put bandwidth for one variant
// over segment counts, exercising the datatype paths through the shm
// route (the Figure 4 harness with a selectable target).
func shmStridedBandwidth(plat *platform.Platform, v shmVariant, cfg ShmAblationConfig) (Series, error) {
	var counts []int
	for c := 1; c <= cfg.MaxSegs; c *= 2 {
		counts = append(counts, c)
	}
	opt := benchOptions()
	opt.NoShm = v.noShm
	series := Series{Label: v.label("puts")}
	segBytes := cfg.SegBytes
	maxSegs := counts[len(counts)-1]
	remoteStride := 2 * segBytes
	winBytes := maxSegs*remoteStride + segBytes
	nranks := 2 * plat.CoresPerNode
	target := v.target(plat)
	var bwErr error
	_, err := harness.RunObs(plat, nranks, harness.ImplARMCIMPI, opt, cfg.Obs, func(rt armci.Runtime) {
		addrs, err := rt.Malloc(winBytes)
		if err != nil {
			bwErr = err
			return
		}
		local := rt.MallocLocal(maxSegs * segBytes)
		if rt.Rank() == 0 {
			for _, nseg := range counts {
				s := &armci.Strided{
					Src:       local,
					Dst:       addrs[target],
					SrcStride: []int{segBytes},
					DstStride: []int{remoteStride},
					Count:     []int{segBytes, nseg},
				}
				if err := rt.PutS(s); err != nil {
					bwErr = err
					return
				}
				rt.Fence(target)
				start := rt.Proc().Now()
				for i := 0; i < cfg.Iters; i++ {
					if err := rt.PutS(s); err != nil {
						bwErr = err
						return
					}
				}
				rt.Fence(target)
				elapsed := rt.Proc().Now() - start
				payload := int64(segBytes) * int64(nseg) * int64(cfg.Iters)
				series.X = append(series.X, float64(nseg))
				series.Y = append(series.Y, bandwidth(payload, elapsed))
			}
		}
		rt.Barrier()
		if err := rt.Free(addrs[rt.Rank()]); err != nil {
			bwErr = err
		}
	})
	if err != nil {
		return series, err
	}
	return series, bwErr
}

// AblationShm regenerates the intra-node shared-memory ablation on one
// platform: contiguous put/get and strided put bandwidth for intra- and
// inter-node targets, with the shm fast path on and off. Inter-node
// pairs must coincide (the shm flavor changes nothing off-node); the
// intra-node gap is the win the fast path buys.
func AblationShm(plat *platform.Platform, cfg ShmAblationConfig) (*Figure, error) {
	fig := &Figure{
		Name:   "ablation-shm",
		Title:  fmt.Sprintf("Intra-node shared-memory ablation, %s", plat.System),
		XLabel: "transfer size (bytes) / segment count",
		YLabel: "bandwidth (GB/s)",
	}
	for _, op := range []ContigOp{OpPut, OpGet} {
		for _, v := range shmVariants() {
			s, err := shmContigBandwidth(plat, op, v, cfg)
			if err != nil {
				return nil, fmt.Errorf("bench: ablation-shm %s/%s: %w", plat.Name, s.Label, err)
			}
			fig.Series = append(fig.Series, s)
		}
	}
	for _, v := range shmVariants() {
		s, err := shmStridedBandwidth(plat, v, cfg)
		if err != nil {
			return nil, fmt.Errorf("bench: ablation-shm %s/%s: %w", plat.Name, s.Label, err)
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}
