package bench

import (
	"bytes"
	"testing"

	"repro/internal/harness"
	"repro/internal/nwchem"
	"repro/internal/platform"
	"repro/internal/sim"
)

// smokeScale is a miniature scale configuration for tests and the CI
// race smoke: the same two shapes and both runtimes, at a rank count
// small enough for the race detector.
func smokeScale() ScaleConfig {
	return ScaleConfig{
		Ranks:          []int{128},
		Params:         nwchem.Params{NO: 2, NV: 16, Blk: 16, Iter: 1, Chunk: 1, FlopMult: 40},
		FanoutOwners:   8,
		FanoutBlkElems: 64,
		FanoutIters:    2,
		Sched:          sim.ModeContinuation,
	}
}

// guardedFigureJSON regenerates every guarded quick figure — the four
// byte-compared BENCH artifacts plus a smoke-sized scale figure — under
// the given engine mode and returns each figure's JSON by name.
func guardedFigureJSON(t *testing.T, mode sim.Mode) map[string][]byte {
	t.Helper()
	prev := harness.Sched
	harness.Sched = mode
	defer func() { harness.Sched = prev }()
	out := map[string][]byte{}
	add := func(f *Figure, err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
		var b bytes.Buffer
		if err := f.WriteJSON(&b); err != nil {
			t.Fatal(err)
		}
		out[f.Name] = b.Bytes()
	}
	ib := platform.Get(platform.InfiniBand)
	add(Fig3(ib, QuickFig3()))
	add(AblationShm(ib, QuickShmAblation()))
	add(AblationNbFanout(ib, QuickNbFanout()))
	add(AblationLocality(ib, QuickLocalityAblation()))
	sc := smokeScale()
	sc.Sched = mode
	add(Scale(sc))
	return out
}

// diffFigureSets fails the test on any difference between two guarded
// figure sets generated under different engine modes.
func diffFigureSets(t *testing.T, aName, bName string, a, b map[string][]byte) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("figure sets differ: %d (%s) vs %d (%s)", len(a), aName, len(b), bName)
	}
	for name, ab := range a {
		bb, ok := b[name]
		if !ok {
			t.Errorf("figure %q missing from %s run", name, bName)
			continue
		}
		if !bytes.Equal(ab, bb) {
			t.Errorf("figure %q differs between modes:\n--- %s ---\n%s\n--- %s ---\n%s", name, aName, ab, bName, bb)
		}
	}
}

// TestModeEquivalenceGuardedFigures proves the continuation scheduler
// is observationally identical to the goroutine reference at the bench
// level: every guarded figure's JSON must be byte-identical across the
// two modes. This is what licenses generating BENCH_scale.json (and
// regenerating the other artifacts) in either mode.
func TestModeEquivalenceGuardedFigures(t *testing.T) {
	g := guardedFigureJSON(t, sim.ModeGoroutine)
	c := guardedFigureJSON(t, sim.ModeContinuation)
	diffFigureSets(t, "goroutine", "continuation", g, c)
}

// TestParallelEquivalence extends the guarantee to the parallel
// engine: every guarded figure regenerated under -sched parallel is
// byte-identical to the goroutine reference. Full-stack jobs run the
// parallel engine single-shard (the harness pins them — their layers
// mutate cross-rank state synchronously), so this pins the shard
// dispatcher, window plumbing, and drain paths against the reference
// schedule; multi-shard determinism is covered by the sim and fabric
// equivalence tests plus TestParallelScaleRunDeterminism.
func TestParallelEquivalence(t *testing.T) {
	g := guardedFigureJSON(t, sim.ModeGoroutine)
	p := guardedFigureJSON(t, sim.ModeParallel)
	diffFigureSets(t, "goroutine", "parallel", g, p)
}

// TestScaleSmokeSeries sanity-checks the scale figure's shape on the
// smoke config: both runtimes, both shapes, every requested rank count.
func TestScaleSmokeSeries(t *testing.T) {
	f, err := Scale(smokeScale())
	if err != nil {
		t.Fatal(err)
	}
	want := []string{
		"ARMCI-MPI CCSD", "ARMCI-MPI fanout put", "ARMCI-MPI fanout get",
		"dartmpi CCSD", "dartmpi fanout put", "dartmpi fanout get",
	}
	for _, label := range want {
		s := f.Get(label)
		if s == nil {
			t.Errorf("series %q missing", label)
			continue
		}
		if len(s.X) != 1 || s.X[0] != 128 {
			t.Errorf("series %q sampled at %v, want [128]", label, s.X)
		}
		if s.Y[0] <= 0 {
			t.Errorf("series %q value %v, want > 0", label, s.Y[0])
		}
	}
}

// BenchmarkScale is the CI race-smoke entry point: one smoke-sized
// scale sweep per iteration, driving the continuation scheduler, the
// CCSD proxy, and the fan-out shape under the race detector.
func BenchmarkScale(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Scale(smokeScale()); err != nil {
			b.Fatal(err)
		}
	}
}
