package bench

import (
	"testing"

	"repro/internal/platform"
)

func TestShmAblationSpeedup(t *testing.T) {
	ib := platform.Get(platform.InfiniBand)
	cfg := QuickShmAblation()
	cfg.MaxExp = 22 // reach the bandwidth regime
	fig, err := AblationShm(ib, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, op := range []string{"put", "get"} {
		shm := fig.Get("intra " + op + " (shm)")
		rma := fig.Get("intra " + op + " (rma)")
		if shm == nil || rma == nil {
			t.Fatalf("missing intra-node %s series", op)
		}
		// Acceptance: at large sizes the shared segment (18 GB/s memcpy)
		// beats the loopback RMA path by at least 5x on InfiniBand.
		last := len(shm.Y) - 1
		if ratio := shm.Y[last] / rma.Y[last]; ratio < 5 {
			t.Errorf("intra-node %s shm/rma bandwidth ratio %.2f at %v bytes, want >= 5",
				op, ratio, shm.X[last])
		}
		// The fast path must never lose at any size.
		for i := range shm.Y {
			if shm.Y[i] < rma.Y[i] {
				t.Errorf("intra-node %s: shm (%.4f) slower than rma (%.4f) at %v bytes",
					op, shm.Y[i], rma.Y[i], shm.X[i])
			}
		}
	}
}

func TestShmAblationInterNodeUnchanged(t *testing.T) {
	// The shared window flavor must not perturb cross-node transfers:
	// with an off-node target the on/off curves are identical, which is
	// what keeps the committed Figure 3 results byte-stable.
	ib := platform.Get(platform.InfiniBand)
	fig, err := AblationShm(ib, QuickShmAblation())
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range []string{"put", "get", "puts"} {
		on := fig.Get("inter " + kind + " (shm)")
		off := fig.Get("inter " + kind + " (rma)")
		if on == nil || off == nil {
			t.Fatalf("missing inter-node %s series", kind)
		}
		if len(on.Y) != len(off.Y) {
			t.Fatalf("inter-node %s series lengths differ", kind)
		}
		for i := range on.Y {
			if on.Y[i] != off.Y[i] {
				t.Errorf("inter-node %s differs with shm on/off at x=%v: %v vs %v",
					kind, on.X[i], on.Y[i], off.Y[i])
			}
		}
	}
}

func TestShmAblationStridedIntraGain(t *testing.T) {
	ib := platform.Get(platform.InfiniBand)
	fig, err := AblationShm(ib, QuickShmAblation())
	if err != nil {
		t.Fatal(err)
	}
	shm := fig.Get("intra puts (shm)")
	rma := fig.Get("intra puts (rma)")
	last := len(shm.Y) - 1
	if shm.Y[last] <= rma.Y[last] {
		t.Errorf("strided intra-node shm (%.4f) not faster than rma (%.4f)",
			shm.Y[last], rma.Y[last])
	}
}

func BenchmarkAblationShm(b *testing.B) {
	ib := platform.Get(platform.InfiniBand)
	cfg := QuickShmAblation()
	for i := 0; i < b.N; i++ {
		if _, err := AblationShm(ib, cfg); err != nil {
			b.Fatal(err)
		}
	}
}
