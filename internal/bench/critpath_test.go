package bench

import (
	"bytes"
	"testing"

	"repro/internal/armci"
	"repro/internal/armcimpi"
	"repro/internal/harness"
	"repro/internal/obs"
	"repro/internal/sim"
)

// critWorkload extends the mixed profiler workload with a contended
// mutex section, so the analyzed dependence graph includes lock-queue
// grant chains (the hopGrant edge kind) on every runtime.
func critWorkload(t *testing.T, rt armci.Runtime) {
	profWorkload(t, rt)
	mtx, err := rt.CreateMutexes(1)
	if err != nil {
		t.Errorf("CreateMutexes: %v", err)
		return
	}
	// All ranks contend for mutex (0, 0), so every unlock forwards the
	// grant to a queued waiter.
	mtx.Lock(0, 0)
	rt.Proc().Elapse(500)
	mtx.Unlock(0, 0)
	rt.Barrier()
	if err := mtx.Destroy(); err != nil {
		t.Errorf("Destroy: %v", err)
	}
}

// critRun executes critWorkload under impl/opt/mode with a
// critical-path recorder attached, returning the recorder and the
// engine's final virtual time.
func critRun(t *testing.T, impl harness.Impl, opt armcimpi.Options, mode sim.Mode) (*obs.Recorder, sim.Time) {
	t.Helper()
	rec := obs.New(obs.Options{CritPath: true})
	j, err := harness.NewJobObs(harness.TestPlatform(), 4, impl, opt, rec)
	if err != nil {
		t.Fatal(err)
	}
	j.Eng.Mode = mode
	if err := j.Eng.Run(4, func(p *sim.Proc) { critWorkload(t, j.Runtime(p)) }); err != nil {
		t.Fatal(err)
	}
	return rec, j.Eng.Stats().FinalTime
}

// TestCritPathInvariantMatrix pins the analyzer's central invariant on
// every runtime configuration under all three scheduler modes: the
// critical-path segment durations sum exactly to the job makespan, and
// the makespan is exactly the engine's end-to-end virtual time.
func TestCritPathInvariantMatrix(t *testing.T) {
	modes := []struct {
		name string
		mode sim.Mode
	}{
		{"goroutine", sim.ModeGoroutine},
		{"continuation", sim.ModeContinuation},
		{"parallel", sim.ModeParallel},
	}
	for _, cfg := range profConfigs() {
		for _, m := range modes {
			t.Run(cfg.name+"/"+m.name, func(t *testing.T) {
				rec, final := critRun(t, cfg.impl, cfg.opt, m.mode)
				jobs := rec.Crit().Jobs()
				if len(jobs) != 1 {
					t.Fatalf("expected 1 analyzed job, got %d", len(jobs))
				}
				jb := jobs[0]
				if jb.Makespan != final {
					t.Errorf("makespan %d ns != engine final time %d ns", jb.Makespan, final)
				}
				if jb.PathNs != jb.Makespan {
					t.Errorf("critical path sum %d ns != makespan %d ns (off by %d)",
						jb.PathNs, jb.Makespan, jb.PathNs-jb.Makespan)
				}
				if jb.Segments == 0 {
					t.Error("no critical-path segments recorded")
				}
			})
		}
	}
}

// TestCritPathSchedulerModesAgree requires the analyzed critical path —
// not just its sum — to be identical across the three scheduler modes:
// same report bytes, same JSON bytes. The schedulers execute the same
// virtual schedule, so the dependence graph and its longest path must
// not depend on how the host drives it.
func TestCritPathSchedulerModesAgree(t *testing.T) {
	build := func(mode sim.Mode) (report, js []byte) {
		rec, _ := critRun(t, harness.ImplARMCIMPI, armcimpi.DefaultOptions(), mode)
		var rb, jb bytes.Buffer
		if err := rec.Crit().WriteReport(&rb); err != nil {
			t.Fatalf("WriteReport: %v", err)
		}
		if err := rec.Crit().WriteJSON(&jb); err != nil {
			t.Fatalf("WriteJSON: %v", err)
		}
		return rb.Bytes(), jb.Bytes()
	}
	rGo, jGo := build(sim.ModeGoroutine)
	rCont, jCont := build(sim.ModeContinuation)
	rPar, jPar := build(sim.ModeParallel)
	if !bytes.Equal(rGo, rCont) {
		t.Errorf("goroutine and continuation reports differ:\n%s\n---\n%s", rGo, rCont)
	}
	if !bytes.Equal(rGo, rPar) {
		t.Errorf("goroutine and parallel reports differ:\n%s\n---\n%s", rGo, rPar)
	}
	if !bytes.Equal(jGo, jCont) || !bytes.Equal(jGo, jPar) {
		t.Error("critical-path JSON differs across scheduler modes")
	}
}

// TestCritPathReportDeterministic requires the text report and JSON
// export to be byte-identical across two independent runs — the
// property the CRIT_* CI artifact guard rests on — and the JSON to be
// newline-terminated.
func TestCritPathReportDeterministic(t *testing.T) {
	build := func() (report, js []byte) {
		rec, _ := critRun(t, harness.ImplARMCIMPI, armcimpi.DefaultOptions(), sim.ModeGoroutine)
		var rb, jb bytes.Buffer
		if err := rec.Crit().WriteReport(&rb); err != nil {
			t.Fatalf("WriteReport: %v", err)
		}
		if err := rec.Crit().WriteJSON(&jb); err != nil {
			t.Fatalf("WriteJSON: %v", err)
		}
		return rb.Bytes(), jb.Bytes()
	}
	r1, j1 := build()
	r2, j2 := build()
	if !bytes.Equal(r1, r2) {
		t.Errorf("text report differs between identical runs:\n%s\n---\n%s", r1, r2)
	}
	if !bytes.Equal(j1, j2) {
		t.Errorf("critical-path JSON differs between identical runs:\n%s\n---\n%s", j1, j2)
	}
	if len(j1) == 0 || j1[len(j1)-1] != '\n' {
		t.Error("critical-path JSON missing trailing newline")
	}
}

// TestCritPathShardedExact drives the multi-shard parallel engine with
// the sharded observability front at 1, 2, and 4 shards: the invariant
// must hold on the merged recorder at every shard count, and the
// analyzed critical path must be byte-identical across shard counts —
// the per-shard edge logs stitch back into the exact single-shard walk.
func TestCritPathShardedExact(t *testing.T) {
	var ref []byte
	var refFinal sim.Time
	for _, k := range []int{1, 2, 4} {
		rec, st, err := ParallelScaleRunObs(256, 2, k, obs.Options{CritPath: true})
		if err != nil {
			t.Fatalf("%d shards: %v", k, err)
		}
		jobs := rec.Crit().Jobs()
		if len(jobs) != 1 {
			t.Fatalf("%d shards: expected 1 analyzed job, got %d", k, len(jobs))
		}
		jb := jobs[0]
		if jb.Makespan != st.FinalTime {
			t.Errorf("%d shards: makespan %d ns != final time %d ns", k, jb.Makespan, st.FinalTime)
		}
		if jb.PathNs != jb.Makespan {
			t.Errorf("%d shards: path sum %d ns != makespan %d ns", k, jb.PathNs, jb.Makespan)
		}
		var jbuf bytes.Buffer
		if err := rec.Crit().WriteJSON(&jbuf); err != nil {
			t.Fatalf("%d shards: WriteJSON: %v", k, err)
		}
		if ref == nil {
			ref, refFinal = jbuf.Bytes(), st.FinalTime
			continue
		}
		if st.FinalTime != refFinal {
			t.Errorf("%d shards: final time %d ns != 1-shard %d ns", k, st.FinalTime, refFinal)
		}
		if !bytes.Equal(ref, jbuf.Bytes()) {
			t.Errorf("%d shards: critical-path JSON differs from the 1-shard analysis", k)
		}
	}
}

// TestCritPathDoesNotPerturbFigures runs a figure sweep with and
// without the critical-path recorder attached and requires
// byte-identical figure JSON: recording dependence edges is pure
// observation and must not move any virtual timestamp.
func TestCritPathDoesNotPerturbFigures(t *testing.T) {
	build := func(rec *obs.Recorder) []byte {
		cfg := Fig3Config{MinExp: 3, MaxExp: 10, Iters: 2, Obs: rec}
		fig := &Figure{Name: "crit-perturb", Title: "check", XLabel: "x", YLabel: "GB/s"}
		for _, op := range []ContigOp{OpGet, OpPut, OpAcc} {
			s, err := ContigBandwidth(harness.TestPlatform(), harness.ImplARMCIMPI, op, cfg)
			if err != nil {
				t.Fatalf("ContigBandwidth(%s): %v", op, err)
			}
			fig.Series = append(fig.Series, s)
		}
		var b bytes.Buffer
		if err := fig.WriteJSON(&b); err != nil {
			t.Fatal(err)
		}
		return b.Bytes()
	}
	plain := build(nil)
	observed := build(obs.New(obs.Options{CritPath: true}))
	if !bytes.Equal(plain, observed) {
		t.Errorf("figure JSON changed when the critical-path recorder was attached:\n%s\n---\n%s", plain, observed)
	}
}
