package bench

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/harness"
	"repro/internal/nwchem"
	"repro/internal/platform"
)

// These tests assert the qualitative claims of the paper's evaluation
// (SectionVII) — who wins, by roughly what factor, where crossovers
// fall — on reduced sweeps. EXPERIMENTS.md records the full-sweep
// numbers.

func bigTransfer(s Series) float64 { return s.Last() }

func TestFig3InfiniBandShapes(t *testing.T) {
	plat := platform.Get(platform.InfiniBand)
	cfg := Fig3Config{MinExp: 3, MaxExp: 22, Iters: 2}
	get := func(impl harness.Impl, op ContigOp) Series {
		s, err := ContigBandwidth(plat, impl, op, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	natGet := get(harness.ImplNative, OpGet)
	mpiGet := get(harness.ImplARMCIMPI, OpGet)
	natAcc := get(harness.ImplNative, OpAcc)
	mpiAcc := get(harness.ImplARMCIMPI, OpAcc)
	// "less than but comparable": native wins but MPI is the same order.
	if bigTransfer(mpiGet) >= bigTransfer(natGet) {
		t.Errorf("IB get: MPI (%.2f) should trail native (%.2f)", bigTransfer(mpiGet), bigTransfer(natGet))
	}
	if bigTransfer(mpiGet) < 0.4*bigTransfer(natGet) {
		t.Errorf("IB get: MPI (%.2f) should be comparable to native (%.2f)", bigTransfer(mpiGet), bigTransfer(natGet))
	}
	// "double-precision accumulate does not keep up ... more than 1.5
	// GB/sec" gap on the InfiniBand cluster.
	if gap := bigTransfer(natAcc) - bigTransfer(mpiAcc); gap < 1.5 {
		t.Errorf("IB acc: bandwidth gap %.2f GB/s, paper reports > 1.5", gap)
	}
	// Bandwidth grows with size.
	if natGet.Y[0] >= bigTransfer(natGet) {
		t.Error("IB native get bandwidth does not grow with transfer size")
	}
}

func TestFig3CrayXTShapes(t *testing.T) {
	plat := platform.Get(platform.CrayXT5)
	cfg := Fig3Config{MinExp: 3, MaxExp: 22, Iters: 2}
	nat, err := ContigBandwidth(plat, harness.ImplNative, OpGet, cfg)
	if err != nil {
		t.Fatal(err)
	}
	mpi, err := ContigBandwidth(plat, harness.ImplARMCIMPI, OpGet, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// "performance is comparable for messages up to 32 kB".
	at32k := func(s Series) float64 {
		v, _ := s.At(32768)
		return v
	}
	if r := at32k(mpi) / at32k(nat); r < 0.5 || r > 1.3 {
		t.Errorf("XT at 32kB: MPI/native ratio %.2f, want comparable", r)
	}
	// "beyond this point, MPI achieves half of the bandwidth".
	if r := bigTransfer(mpi) / bigTransfer(nat); r < 0.35 || r > 0.7 {
		t.Errorf("XT large: MPI/native ratio %.2f, want ~0.5", r)
	}
}

func TestFig3CrayXEShapes(t *testing.T) {
	plat := platform.Get(platform.CrayXE6)
	cfg := Fig3Config{MinExp: 3, MaxExp: 22, Iters: 2}
	run := func(impl harness.Impl, op ContigOp) Series {
		s, err := ContigBandwidth(plat, impl, op, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	natPut := run(harness.ImplNative, OpPut)
	mpiPut := run(harness.ImplARMCIMPI, OpPut)
	natAcc := run(harness.ImplNative, OpAcc)
	mpiAcc := run(harness.ImplARMCIMPI, OpAcc)
	// "ARMCI-MPI achieves twice the bandwidth of native ARMCI for put
	// and get on large messages".
	if r := bigTransfer(mpiPut) / bigTransfer(natPut); r < 1.6 || r > 2.6 {
		t.Errorf("XE large put: MPI/native ratio %.2f, want ~2", r)
	}
	// "a 25%% higher bandwidth for double precision accumulate".
	if r := bigTransfer(mpiAcc) / bigTransfer(natAcc); r < 1.1 || r > 1.5 {
		t.Errorf("XE large acc: MPI/native ratio %.2f, want ~1.25", r)
	}
}

func TestFig3BlueGeneShapes(t *testing.T) {
	plat := platform.Get(platform.BlueGeneP)
	cfg := Fig3Config{MinExp: 3, MaxExp: 22, Iters: 2}
	nat, err := ContigBandwidth(plat, harness.ImplNative, OpPut, cfg)
	if err != nil {
		t.Fatal(err)
	}
	mpi, err := ContigBandwidth(plat, harness.ImplARMCIMPI, OpPut, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// "less than but comparable".
	if r := bigTransfer(mpi) / bigTransfer(nat); r < 0.6 || r >= 1.0 {
		t.Errorf("BG/P put: MPI/native ratio %.2f, want slightly below 1", r)
	}
}

func TestFig4Shapes(t *testing.T) {
	counts := []int{1, 4, 16, 64, 256, 1024}
	variantBW := func(plat *platform.Platform, label string, op ContigOp, segBytes int) Series {
		for _, v := range fig4Variants() {
			if v.label == label {
				s, err := StridedBandwidth(plat, v, op, segBytes, counts, 2)
				if err != nil {
					t.Fatal(err)
				}
				return s
			}
		}
		t.Fatalf("no variant %q", label)
		return Series{}
	}
	t.Run("conservative-always-worst", func(t *testing.T) {
		plat := platform.Get(platform.InfiniBand)
		cons := variantBW(plat, "IOV-Consrv", OpPut, 1024)
		batched := variantBW(plat, "IOV-Batched", OpPut, 1024)
		direct := variantBW(plat, "Direct", OpPut, 1024)
		at := func(s Series, x float64) float64 { v, _ := s.At(x); return v }
		for _, x := range []float64{64, 256} {
			if at(cons, x) >= at(batched, x) || at(cons, x) >= at(direct, x) {
				t.Errorf("at %v segs: conservative (%.3f) not the slowest (batched %.3f, direct %.3f)",
					x, at(cons, x), at(batched, x), at(direct, x))
			}
		}
	})
	t.Run("bgp-direct-wins-small-segments", func(t *testing.T) {
		plat := platform.Get(platform.BlueGeneP)
		direct := variantBW(plat, "Direct", OpPut, 16)
		batched := variantBW(plat, "IOV-Batched", OpPut, 16)
		// "the direct strided method gives the best performance for
		// small segments as a result of ... data packing".
		if direct.Last() <= batched.Last() {
			t.Errorf("BG/P 16B segments: direct (%.4f) should beat batched (%.4f)", direct.Last(), batched.Last())
		}
	})
	t.Run("bgp-batched-competitive-large-segments", func(t *testing.T) {
		plat := platform.Get(platform.BlueGeneP)
		direct := variantBW(plat, "Direct", OpPut, 1024)
		batched := variantBW(plat, "IOV-Batched", OpPut, 1024)
		nat := variantBW(plat, "Native", OpPut, 1024)
		// "for larger segments ... the batched method ... gives
		// performance that is near that of the native ARMCI".
		if batched.Last() < 0.6*nat.Last() {
			t.Errorf("BG/P 1KB segments: batched (%.4f) should be near native (%.4f)", batched.Last(), nat.Last())
		}
		if batched.Last() <= direct.Last() {
			t.Errorf("BG/P 1KB segments: batched (%.4f) should beat direct (%.4f) — slow cores make packing costly",
				batched.Last(), direct.Last())
		}
	})
	t.Run("ib-batched-collapses-many-segments", func(t *testing.T) {
		plat := platform.Get(platform.InfiniBand)
		batched := variantBW(plat, "IOV-Batched", OpPut, 1024)
		// "For large numbers of segments on InfiniBand, performance of
		// the batched transfer method suffers severely" (MPICH2 queue
		// defect).
		peak := batched.Max()
		if batched.Last() > 0.6*peak {
			t.Errorf("IB batched at 1024 segs (%.3f) should collapse below peak (%.3f)", batched.Last(), peak)
		}
	})
	t.Run("xe-mpi-beats-native", func(t *testing.T) {
		plat := platform.Get(platform.CrayXE6)
		direct := variantBW(plat, "Direct", OpPut, 1024)
		nat := variantBW(plat, "Native", OpPut, 1024)
		if direct.Last() <= nat.Last() {
			t.Errorf("XE strided: direct (%.3f) should beat the under-tuned native (%.3f)", direct.Last(), nat.Last())
		}
	})
}

func TestFig5Shapes(t *testing.T) {
	fig, err := Fig5(QuickFig5())
	if err != nil {
		t.Fatal(err)
	}
	big := 1 << 18
	at := func(label string) float64 {
		s := fig.Get(label)
		if s == nil {
			t.Fatalf("missing series %q", label)
		}
		v, ok := s.At(float64(big))
		if !ok {
			t.Fatalf("series %q has no point at %d", label, big)
		}
		return v
	}
	armciBest := at("ARMCI-IB, ARMCI Alloc")
	mpiTouch := at("MPI, MPI Touch")
	armciMPIBuf := at("ARMCI-IB, MPI Touch")
	mpiCold := at("MPI, ARMCI Alloc")
	// Best case: ARMCI with its own pinned buffers.
	if armciBest <= mpiTouch || armciBest <= armciMPIBuf || armciBest <= mpiCold {
		t.Errorf("ARMCI+own-buffer (%.2f) should lead all curves (%.2f, %.2f, %.2f)",
			armciBest, mpiTouch, armciMPIBuf, mpiCold)
	}
	// ARMCI forced onto its non-pinned path loses significantly.
	if armciMPIBuf > 0.6*armciBest {
		t.Errorf("ARMCI with MPI buffer (%.2f) should show a significant gap from %.2f", armciMPIBuf, armciBest)
	}
	// Untouched buffers pay on-demand registration above the bounce
	// threshold: cold MPI curve trails touched MPI at large sizes.
	if mpiCold >= mpiTouch {
		t.Errorf("MPI cold buffer (%.2f) should trail touched (%.2f)", mpiCold, mpiTouch)
	}
	// Below the 8 KiB bounce threshold the cold path is serviceable
	// (bounce buffers): the cliff appears above the threshold.
	cold := fig.Get("MPI, ARMCI Alloc")
	r4k, _ := cold.At(4096)
	touched4k, _ := fig.Get("MPI, MPI Touch").At(4096)
	if r4k < 0.4*touched4k {
		t.Errorf("below bounce threshold, cold path (%.3f) should be close to touched (%.3f)", r4k, touched4k)
	}
}

func TestFig6Shapes(t *testing.T) {
	cfg := QuickFig6()
	phase := func(plat *platform.Platform, impl harness.Impl, cores int) float64 {
		tm, err := NWChemPhase(plat, impl, cores, cfg.Params, false)
		if err != nil {
			t.Fatal(err)
		}
		return tm.Seconds()
	}
	t.Run("ib-native-leads", func(t *testing.T) {
		plat := platform.Get(platform.InfiniBand)
		nat := phase(plat, harness.ImplNative, 16)
		mpi := phase(plat, harness.ImplARMCIMPI, 16)
		// "a performance gap of roughly 2x" on the aggressively tuned
		// InfiniBand native implementation.
		if r := mpi / nat; r < 1.15 || r > 3.5 {
			t.Errorf("IB CCSD: ARMCI-MPI/native time ratio %.2f, want >1 (paper ~2x)", r)
		}
	})
	t.Run("xe-mpi-leads", func(t *testing.T) {
		plat := platform.Get(platform.CrayXE6)
		nat := phase(plat, harness.ImplNative, 16)
		mpi := phase(plat, harness.ImplARMCIMPI, 16)
		// "ARMCI-MPI performs 30%% better than the currently available
		// native implementation".
		if mpi >= nat {
			t.Errorf("XE CCSD: ARMCI-MPI (%.3fs) should beat native (%.3fs)", mpi, nat)
		}
	})
	t.Run("strong-scaling", func(t *testing.T) {
		// A larger problem than the quick sweep: 8 IB cores are one
		// node, where the shm fast path makes the quick problem
		// communication-trivial — only a compute-bearing problem still
		// gains from the second node's cores (the small-node-count
		// shape change the shm path introduces in Figure 6).
		plat := platform.Get(platform.InfiniBand)
		p := nwchem.Params{NO: 6, NV: 32, Blk: 48, Iter: 1, Chunk: 4, FlopMult: 40}
		big := func(cores int) float64 {
			tm, err := NWChemPhase(plat, harness.ImplARMCIMPI, cores, p, false)
			if err != nil {
				t.Fatal(err)
			}
			return tm.Seconds()
		}
		t8 := big(8)
		t16 := big(16)
		if t16 >= t8 {
			t.Errorf("CCSD did not scale: %0.3fs at 8 -> %.3fs at 16", t8, t16)
		}
	})
}

func TestTable2Output(t *testing.T) {
	var buf bytes.Buffer
	Table2(&buf)
	out := buf.String()
	for _, want := range []string{"Intrepid", "Fusion", "Jaguar", "Hopper", "InfiniBand QDR", "Gemini", "MVAPICH2 1.6"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table II output missing %q", want)
		}
	}
}

func TestFigurePrintAndAccessors(t *testing.T) {
	fig := &Figure{Name: "t", Title: "test", XLabel: "x", YLabel: "y"}
	fig.Add("a", 1, 10)
	fig.Add("a", 2, 20)
	fig.Add("b", 1, 5)
	var buf bytes.Buffer
	fig.Print(&buf)
	out := buf.String()
	if !strings.Contains(out, "t — test") || !strings.Contains(out, "20") {
		t.Errorf("figure print malformed:\n%s", out)
	}
	if fig.Get("a").Last() != 20 || fig.Get("a").Max() != 20 {
		t.Error("series accessors wrong")
	}
	if fig.Get("missing") != nil {
		t.Error("missing series should be nil")
	}
	if v, ok := fig.Get("b").At(1); !ok || v != 5 {
		t.Error("At lookup wrong")
	}
}

func TestAblationRmwOrdering(t *testing.T) {
	plat := harness.TestPlatform()
	out, err := AblationRmw(plat, 6)
	if err != nil {
		t.Fatal(err)
	}
	// native atomic < mpi3 fetch-op < mpi2 mutex emulation.
	if !(out["native-atomic"] < out["mpi3-fetchop"] && out["mpi3-fetchop"] < out["mpi2-mutex"]) {
		t.Errorf("rmw latency ordering wrong: %v", out)
	}
}

func TestAblationAccessModes(t *testing.T) {
	plat := harness.TestPlatform()
	out, err := AblationAccessModes(plat, 4, 4, 1<<16)
	if err != nil {
		t.Fatal(err)
	}
	if out["read-only"] >= out["conflicting"] {
		t.Errorf("read-only mode (%v us) should beat conflicting (%v us)", out["read-only"], out["conflicting"])
	}
}

func TestAblationBatchSize(t *testing.T) {
	plat := platform.Get(platform.InfiniBand)
	out, err := AblationBatchSize(plat, 256, 64, []int{1, 8, 0}, 2)
	if err != nil {
		t.Fatal(err)
	}
	// B=1 degenerates toward conservative; unlimited amortizes best on
	// a healthy path of this length.
	if out[1] >= out[0] {
		t.Errorf("B=1 (%.3f) should be slower than unlimited (%.3f)", out[1], out[0])
	}
}

func TestAblationAsyncProgress(t *testing.T) {
	plat := platform.Get(platform.InfiniBand)
	out, err := AblationAsyncProgress(plat, 20000, 6)
	if err != nil {
		t.Fatal(err)
	}
	with, without := out["async-progress"], out["no-async-progress"]
	if without <= with {
		t.Errorf("disabling async progress (%v us) should cost more than enabling it (%v us)", without, with)
	}
	// Three target-side services per op (lock, data, unlock): expect
	// roughly 3x the added delay.
	if without-with < 40 {
		t.Errorf("progress delay barely visible: %v -> %v us", with, without)
	}
}

func TestAblationMPI3Backend(t *testing.T) {
	out, err := AblationMPI3Backend(platform.Get(platform.InfiniBand), 8)
	if err != nil {
		t.Fatal(err)
	}
	if out["mpi3-lockall"] >= out["mpi2-epochs"] {
		t.Errorf("MPI-3 backend (%v ms) should beat MPI-2 epochs (%v ms)", out["mpi3-lockall"], out["mpi2-epochs"])
	}
}

func TestAblationDataServer(t *testing.T) {
	plat := platform.Get(platform.InfiniBand)
	out, err := AblationDataServer(plat, 4, 3, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	// SectionIX: under concurrent large transfers the per-node server
	// serializes (staging copy + response injection on its CPU), while
	// the one-sided stacks hand the work to the RDMA hardware.
	if out["armci-ds"] >= out["native"] {
		t.Errorf("data server (%v GB/s) should trail native (%v GB/s) under contention", out["armci-ds"], out["native"])
	}
	if out["armci-ds"] >= out["armci-mpi"] {
		t.Errorf("data server (%v GB/s) should trail armci-mpi (%v GB/s) under contention", out["armci-ds"], out["armci-mpi"])
	}
	// And the consumed core + serialization cost CCSD time against
	// both one-sided stacks.
	if out["ccsd-armci-ds"] <= out["ccsd-native"] {
		t.Errorf("data-server CCSD (%v ms) should exceed native (%v ms)", out["ccsd-armci-ds"], out["ccsd-native"])
	}
}
