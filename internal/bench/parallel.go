package bench

// The parallel-speedup sweep measures the sharded engine's host-time
// scaling on the 16k-rank scale workload: a cross-node neighbor
// exchange on the Cray XT5 model driven through the shard-confined
// fabric delivery path (fabric.DeliverSharded), the workload class
// sim.ModeParallel can decompose across host cores. The same run is
// repeated at each shard count; virtual results (event and park
// totals, final virtual time) must be identical at every point — the
// sweep fails otherwise — so the figure doubles as a determinism check.
//
// Events/sec numbers are HOST time and machine dependent: like
// BENCH_wallclock.json, the exported BENCH_parallel-speedup.json is a
// trajectory seed, not a byte-guarded regression artifact. The guarded
// artifacts pin parallel-mode correctness instead (byte-identical
// figures across all three engine modes; see scale_test.go).

import (
	"fmt"
	"time"

	"repro/internal/fabric"
	"repro/internal/harness"
	"repro/internal/obs"
	"repro/internal/obs/critpath"
	"repro/internal/platform"
	"repro/internal/sim"
)

// ParallelConfig sizes the sharded-engine speedup sweep.
type ParallelConfig struct {
	Ranks  int   // simulated process count
	Rounds int   // exchange rounds per rank
	Shards []int // host shard counts swept, ascending, starting at 1
}

// DefaultParallel is the 16k-rank sweep behind the exported figure.
func DefaultParallel() ParallelConfig {
	return ParallelConfig{Ranks: 16384, Rounds: 4, Shards: []int{1, 2, 4, 8}}
}

// QuickParallel is a smoke-test sweep (used by CI under the race
// detector) that still exercises multi-shard execution.
func QuickParallel() ParallelConfig {
	return ParallelConfig{Ranks: 256, Rounds: 2, Shards: []int{1, 2}}
}

// ParallelScaleRun executes the scale exchange once: every rank trades
// rounds messages with the rank half the machine away (always
// cross-node on the XT5 model), computing between sends, over the
// shard-confined delivery path. It returns the engine statistics and
// the host duration of the run.
func ParallelScaleRun(nranks, rounds, shards int) (sim.Stats, time.Duration, error) {
	plat := platform.Get(platform.CrayXT5)
	par := plat.Params
	if nranks > par.MaxRanks() {
		return sim.Stats{}, 0, fmt.Errorf("bench: parallel scale run wants %d ranks, platform caps at %d", nranks, par.MaxRanks())
	}
	eng := sim.NewEngine()
	eng.Mode = sim.ModeParallel
	harness.ApplyShards(eng, par, nranks, shards)
	m, err := fabric.NewMachine(eng, par, nranks)
	if err != nil {
		return sim.Stats{}, 0, err
	}
	t0 := time.Now()
	err = eng.Run(nranks, scaleExchangeBody(m, nranks, rounds))
	d := time.Since(t0)
	if err != nil {
		return sim.Stats{}, 0, err
	}
	return eng.Stats(), d, nil
}

// scaleExchangeBody is the rank body of the scale exchange, shared by
// the plain and observed runs so both execute the identical schedule.
func scaleExchangeBody(m *fabric.Machine, nranks, rounds int) func(p *sim.Proc) {
	return func(p *sim.Proc) {
		r := p.ID()
		partner := (r + nranks/2) % nranks
		for i := 0; i < rounds; i++ {
			m.Compute(p, float64(2000+37*(r%101)+11*i))
			msg := &fabric.Msg{From: r, Kind: 1, Tag: i, Size: 1024 + 64*(r%17)}
			m.DeliverSharded(p, partner, msg, fabric.XferOpt{})
		}
		for got := 0; got < rounds; got++ {
			m.Recv(p, func(*fabric.Msg) bool { return true })
		}
	}
}

// ParallelScaleRunObs is ParallelScaleRun with the sharded
// observability front attached: each shard records into a private
// recorder bound to its own virtual clock, and the returned Recorder is
// the deterministic shard-order merge — including the exact critical
// path when opt.CritPath is set (dependence-edge references carry
// their shard id, so the merged walk is identical at every shard
// count). Used by tests that pin multi-shard critical-path exactness.
func ParallelScaleRunObs(nranks, rounds, shards int, opt obs.Options) (*obs.Recorder, sim.Stats, error) {
	plat := platform.Get(platform.CrayXT5)
	par := plat.Params
	if nranks > par.MaxRanks() {
		return nil, sim.Stats{}, fmt.Errorf("bench: parallel scale run wants %d ranks, platform caps at %d", nranks, par.MaxRanks())
	}
	eng := sim.NewEngine()
	eng.Mode = sim.ModeParallel
	k := harness.ApplyShards(eng, par, nranks, shards)
	m, err := fabric.NewMachine(eng, par, nranks)
	if err != nil {
		return nil, sim.Stats{}, err
	}
	sh := obs.NewSharded(opt, k)
	eng.ShardObservers = sh.Observers()
	m.CritFor = func(rank int) *critpath.Rec {
		return sh.Rec(eng.ShardOf(rank, nranks)).Crit()
	}
	sh.BeginJob(fmt.Sprintf("%s/scale-exchange/n=%d", plat.Name, nranks),
		func(s int) obs.Clock { return eng.ShardClock(s) }, nranks)
	if err := eng.Run(nranks, scaleExchangeBody(m, nranks, rounds)); err != nil {
		return nil, sim.Stats{}, err
	}
	return sh.Merge(), eng.Stats(), nil
}

// ParallelSpeedup runs the sweep and returns the figure: dispatched
// events per host second and the speedup relative to the first shard
// count, versus shard count. Any divergence in virtual results across
// shard counts is an error.
func ParallelSpeedup(cfg ParallelConfig) (*Figure, error) {
	fig := &Figure{
		Name:   "parallel-speedup",
		Title:  fmt.Sprintf("sharded engine speedup, %d-rank scale exchange (host time, machine dependent)", cfg.Ranks),
		XLabel: "shards",
		YLabel: "events/s | speedup vs 1 shard",
	}
	var ref sim.Stats
	var base float64
	for i, k := range cfg.Shards {
		st, d, err := ParallelScaleRun(cfg.Ranks, cfg.Rounds, k)
		if err != nil {
			return nil, fmt.Errorf("bench: parallel speedup @%d shards: %w", k, err)
		}
		if i == 0 {
			ref = st
		} else if st != ref {
			return nil, fmt.Errorf("bench: parallel sweep diverged at %d shards: %+v, want %+v", k, st, ref)
		}
		evps := float64(st.Events) / d.Seconds()
		if i == 0 {
			base = evps
		}
		fig.Add("scale-exchange (events/s)", float64(k), evps)
		fig.Add("speedup", float64(k), evps/base)
	}
	return fig, nil
}
