package bench

import (
	"bytes"
	"testing"

	"repro/internal/armci"
	"repro/internal/armcimpi"
	"repro/internal/harness"
	"repro/internal/obs"
	"repro/internal/obs/profile"
	"repro/internal/sim"
)

func must(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}

// profWorkload is a mixed ARMCI workload on 4 ranks of the test
// platform (2 cores/node, so ranks 0-1 and 2-3 share nodes): it
// exercises contiguous, strided, and vector transfers, nonblocking
// variants, and read-modify-write, over both intra-node (shm-eligible)
// and inter-node targets.
func profWorkload(t *testing.T, rt armci.Runtime) {
	me := rt.Rank()
	addrs, err := rt.Malloc(8192)
	if err != nil {
		t.Errorf("Malloc: %v", err)
		return
	}
	local := rt.MallocLocal(8192)
	if me == 0 {
		// Inter-node contiguous ops (rank 2 is on the other node).
		must(t, rt.Put(local, addrs[2], 2048))
		must(t, rt.Get(addrs[2], local, 1024))
		must(t, rt.Acc(armci.AccDbl, 2, local, addrs[2], 512))
		// Intra-node ops (rank 1 shares node 0).
		must(t, rt.Put(local, addrs[1], 2048))
		must(t, rt.Get(addrs[1], local, 1024))
		// Strided put to the far node: 8 segments of 64 bytes.
		s := &armci.Strided{
			Src: local, Dst: addrs[3],
			SrcStride: []int{64}, DstStride: []int{128},
			Count: []int{64, 8},
		}
		must(t, rt.PutS(s))
		s.Src, s.Dst = addrs[3], local
		must(t, rt.GetS(s))
		// Vector get from the near rank.
		iov := []armci.GIOV{{
			Src:   []armci.Addr{addrs[1], addrs[1].Add(512)},
			Dst:   []armci.Addr{local, local.Add(512)},
			Bytes: 256,
		}}
		must(t, rt.GetV(iov, 1))
	}
	if me == 3 {
		// Nonblocking fan-out from the far node.
		h1, err := rt.NbPut(local, addrs[0], 1024)
		must(t, err)
		h2, err := rt.NbGet(addrs[1], local, 1024)
		must(t, err)
		h1.Wait()
		h2.Wait()
		rt.AllFence()
	}
	rt.Barrier()
	// Every rank hammers one counter with atomic RMW.
	if _, err := rt.Rmw(armci.FetchAndAdd, addrs[0], int64(me+1)); err != nil {
		t.Errorf("Rmw: %v", err)
	}
	rt.Barrier()
	must(t, rt.Free(addrs[me]))
}

// profRun executes profWorkload under impl/opt with a profiling
// recorder attached and returns the recorder.
func profRun(t *testing.T, impl harness.Impl, opt armcimpi.Options) *obs.Recorder {
	t.Helper()
	rec := obs.New(obs.Options{Profile: true})
	j, err := harness.NewJobObs(harness.TestPlatform(), 4, impl, opt, rec)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Eng.Run(4, func(p *sim.Proc) { profWorkload(t, j.Runtime(p)) }); err != nil {
		t.Fatal(err)
	}
	return rec
}

// profConfigs enumerates the runtime configurations the profiler must
// hold its invariants on: the paper's MPI-2 design and the MPI-3
// extension, each with the shm fast path on and off, the two-sided
// data-server baseline, and the dartmpi locality runtime across shm
// on/off x leader-staging on/off (the staged configurations lower the
// threshold so the workload's cross-node transfers exercise the
// leader.queue/leader.copy phases).
func profConfigs() []struct {
	name string
	impl harness.Impl
	opt  armcimpi.Options
} {
	mpi2 := armcimpi.DefaultOptions()
	mpi2noshm := mpi2
	mpi2noshm.NoShm = true
	mpi3 := mpi2
	mpi3.UseMPI3 = true
	mpi3noshm := mpi3
	mpi3noshm.NoShm = true
	dart := armcimpi.DefaultOptions()
	dart.StageThreshold = 512
	dartNostage := armcimpi.DefaultOptions()
	dartNostage.NoLeaderStaging = true
	dartNoshm := dart
	dartNoshm.NoShm = true
	dartNoshmNostage := dartNostage
	dartNoshmNostage.NoShm = true
	return []struct {
		name string
		impl harness.Impl
		opt  armcimpi.Options
	}{
		{"mpi2-shm", harness.ImplARMCIMPI, mpi2},
		{"mpi2-noshm", harness.ImplARMCIMPI, mpi2noshm},
		{"mpi3-shm", harness.ImplARMCIMPI, mpi3},
		{"mpi3-noshm", harness.ImplARMCIMPI, mpi3noshm},
		{"dataserver", harness.ImplDataServer, armcimpi.DefaultOptions()},
		{"dart-shm-stage", harness.ImplDartMPI, dart},
		{"dart-shm-nostage", harness.ImplDartMPI, dartNostage},
		{"dart-noshm-stage", harness.ImplDartMPI, dartNoshm},
		{"dart-noshm-nostage", harness.ImplDartMPI, dartNoshmNostage},
	}
}

// TestProfilePhaseSumsMatchLatency asserts the profiler's central
// invariant: for every operation class, the per-phase virtual times
// (including the residual "other" bucket) sum exactly to the total
// attributed operation time, and the totals are nonzero for the ops
// the workload issued.
func TestProfilePhaseSumsMatchLatency(t *testing.T) {
	for _, cfg := range profConfigs() {
		t.Run(cfg.name, func(t *testing.T) {
			pr := profRun(t, cfg.impl, cfg.opt).Prof()
			sawOps := 0
			for op := profile.Op(0); op < profile.NumOps; op++ {
				var total, phases, calls int64
				for _, h := range pr.TotalHists(op) {
					total += h.SumNs
					calls += h.Count
				}
				for ph := profile.Phase(0); ph < profile.NumPhases; ph++ {
					for _, h := range pr.PhaseHists(op, ph) {
						phases += h.SumNs
					}
				}
				if calls > 0 {
					sawOps++
					if total <= 0 {
						t.Errorf("%s: %d calls but zero total time", op, calls)
					}
				}
				if phases != total {
					t.Errorf("%s: phase sum %d ns != total %d ns", op, phases, total)
				}
			}
			if sawOps < 5 {
				t.Errorf("only %d op classes recorded; workload should hit at least put/get/acc/puts/rmw", sawOps)
			}
		})
	}
}

// TestProfileLeaderPhasesAttributed pins the new leader.* phases to the
// hierarchical path: with staging on (low threshold) the workload's
// cross-node transfers from non-leader ranks must attribute leader.copy
// time, and with staging off the leader phases must stay empty.
func TestProfileLeaderPhasesAttributed(t *testing.T) {
	staged := armcimpi.DefaultOptions()
	staged.StageThreshold = 512
	pr := profRun(t, harness.ImplDartMPI, staged).Prof()
	var copyNs int64
	for op := profile.Op(0); op < profile.NumOps; op++ {
		for _, h := range pr.PhaseHists(op, profile.PhaseLeaderCopy) {
			copyNs += h.SumNs
		}
	}
	if copyNs == 0 {
		t.Error("staging enabled but no leader.copy time attributed")
	}

	nostage := armcimpi.DefaultOptions()
	nostage.NoLeaderStaging = true
	pr = profRun(t, harness.ImplDartMPI, nostage).Prof()
	for op := profile.Op(0); op < profile.NumOps; op++ {
		for _, ph := range []profile.Phase{profile.PhaseLeaderQueue, profile.PhaseLeaderCopy} {
			for _, h := range pr.PhaseHists(op, ph) {
				if h.SumNs != 0 {
					t.Errorf("%s/%s attributed %d ns with staging disabled", op, ph, h.SumNs)
				}
			}
		}
	}
}

// TestProfileTotalMatchesMeasuredLatency pins the attributed total of a
// single blocking operation to the caller's own virtual-time
// measurement around the call — the profiler must account for exactly
// the operation's latency, no more, no less.
func TestProfileTotalMatchesMeasuredLatency(t *testing.T) {
	rec := obs.New(obs.Options{Profile: true})
	j, err := harness.NewJobObs(harness.TestPlatform(), 4, harness.ImplARMCIMPI, armcimpi.DefaultOptions(), rec)
	if err != nil {
		t.Fatal(err)
	}
	var elapsed sim.Time
	if err := j.Eng.Run(4, func(p *sim.Proc) {
		rt := j.Runtime(p)
		addrs, err := rt.Malloc(4096)
		must(t, err)
		if rt.Rank() == 0 {
			local := rt.MallocLocal(4096)
			t0 := rt.Proc().Now()
			must(t, rt.Put(local, addrs[2], 4096)) // inter-node, blocking
			elapsed = rt.Proc().Now() - t0
		}
		rt.Barrier()
		must(t, rt.Free(addrs[rt.Rank()]))
	}); err != nil {
		t.Fatal(err)
	}
	hists := rec.Prof().TotalHists(profile.OpPut)
	if len(hists) == 0 || hists[0].Count != 1 {
		t.Fatalf("expected exactly one put on rank 0, got %+v", hists)
	}
	if got := sim.Time(hists[0].SumNs); got != elapsed {
		t.Errorf("attributed put time %d ns != measured latency %d ns", got, elapsed)
	}
}

// TestProfileCommMatrixConservation checks flow conservation on the
// communication matrix for every runtime configuration: each
// (src,dst,class,route) cell must have sent exactly what was received,
// and for the ARMCI-MPI runtimes the matrix data-op totals must equal
// the independently maintained rma.bytes.* counters.
func TestProfileCommMatrixConservation(t *testing.T) {
	for _, cfg := range profConfigs() {
		t.Run(cfg.name, func(t *testing.T) {
			rec := profRun(t, cfg.impl, cfg.opt)
			cells := rec.Prof().Cells()
			if len(cells) == 0 {
				t.Fatal("empty communication matrix")
			}
			var rmaBytes, shmBytes int64
			for _, c := range cells {
				if c.SentMsgs != c.RecvMsgs || c.SentBytes != c.RecvBytes {
					t.Errorf("cell %d->%d %s/%s: sent %d msgs/%d bytes, received %d msgs/%d bytes",
						c.Src, c.Dst, c.Class, c.Route, c.SentMsgs, c.SentBytes, c.RecvMsgs, c.RecvBytes)
				}
				if c.Class == profile.MsgAmo {
					continue // RMW payloads are not counted in rma.bytes.*
				}
				switch c.Route {
				case profile.RouteRMA:
					rmaBytes += c.SentBytes
				case profile.RouteShm:
					shmBytes += c.SentBytes
				}
			}
			if cfg.impl != harness.ImplARMCIMPI {
				return // the data server does not maintain rma.bytes.*
			}
			m := rec.Metrics()
			var wantRMA, wantShm int64
			for _, v := range m.Counter(obs.CBytesContig) {
				wantRMA += v
			}
			for _, v := range m.Counter(obs.CBytesPacked) {
				wantRMA += v
			}
			for _, v := range m.Counter(obs.CBytesShm) {
				wantShm += v
			}
			if rmaBytes != wantRMA {
				t.Errorf("matrix RMA bytes %d != rma.bytes.contig+packed %d", rmaBytes, wantRMA)
			}
			if shmBytes != wantShm {
				t.Errorf("matrix shm bytes %d != rma.bytes.shm %d", shmBytes, wantShm)
			}
		})
	}
}

// TestProfileReportDeterministic requires the text report and the JSON
// export to be byte-identical across two independent runs of the same
// configuration — the property the PROF_* CI artifact guard rests on.
func TestProfileReportDeterministic(t *testing.T) {
	build := func() (report, js []byte) {
		pr := profRun(t, harness.ImplARMCIMPI, armcimpi.DefaultOptions()).Prof()
		var rb, jb bytes.Buffer
		if err := pr.WriteReport(&rb); err != nil {
			t.Fatalf("WriteReport: %v", err)
		}
		if err := pr.WriteJSON(&jb); err != nil {
			t.Fatalf("WriteJSON: %v", err)
		}
		return rb.Bytes(), jb.Bytes()
	}
	r1, j1 := build()
	r2, j2 := build()
	if !bytes.Equal(r1, r2) {
		t.Errorf("text report differs between identical runs:\n%s\n---\n%s", r1, r2)
	}
	if !bytes.Equal(j1, j2) {
		t.Errorf("profile JSON differs between identical runs:\n%s\n---\n%s", j1, j2)
	}
	if len(j1) == 0 || j1[len(j1)-1] != '\n' {
		t.Error("profile JSON missing trailing newline")
	}
}

// TestProfileDoesNotPerturbFigures runs a figure sweep with and
// without the profiler attached and requires byte-identical figure
// JSON: attribution is pure observation and must not move any virtual
// timestamp.
func TestProfileDoesNotPerturbFigures(t *testing.T) {
	build := func(rec *obs.Recorder) []byte {
		cfg := Fig3Config{MinExp: 3, MaxExp: 10, Iters: 2, Obs: rec}
		fig := &Figure{Name: "prof-perturb", Title: "check", XLabel: "x", YLabel: "GB/s"}
		for _, op := range []ContigOp{OpGet, OpPut, OpAcc} {
			s, err := ContigBandwidth(harness.TestPlatform(), harness.ImplARMCIMPI, op, cfg)
			if err != nil {
				t.Fatalf("ContigBandwidth(%s): %v", op, err)
			}
			fig.Series = append(fig.Series, s)
		}
		var b bytes.Buffer
		if err := fig.WriteJSON(&b); err != nil {
			t.Fatal(err)
		}
		return b.Bytes()
	}
	plain := build(nil)
	profiled := build(obs.New(obs.Options{Profile: true}))
	if !bytes.Equal(plain, profiled) {
		t.Errorf("figure JSON changed when the profiler was attached:\n%s\n---\n%s", plain, profiled)
	}
}
