package bench

import (
	"fmt"

	"repro/internal/ga"
	"repro/internal/harness"
	"repro/internal/mpi"
	"repro/internal/nwchem"
	"repro/internal/obs"
	"repro/internal/platform"
	"repro/internal/sim"
)

// ScaleConfig tunes the large-rank scaling sweep: the CCSD(T)-proxy
// and GA fan-out shapes of Figures 5/6 pushed to thousands of ranks.
// Jobs this size are why the engine grew its continuation mode — a
// goroutine per rank is the default elsewhere, but at 16k ranks the
// resumable-step scheduler keeps the sweep inside a laptop-class
// memory budget, and the equivalence tests prove both modes produce
// byte-identical schedules.
type ScaleConfig struct {
	Ranks []int // simulated process counts, ascending

	// Params is the fixed CCSD proxy problem. The block size is chosen
	// so the task count stays at or above the largest rank count (every
	// rank draws work) without the task pool dwarfing it.
	Params nwchem.Params

	// Fan-out shape: rank 0 spans FanoutOwners owners with nonblocking
	// per-owner operations and one aggregated wait, FanoutBlkElems
	// float64 elements per owner, timed over FanoutIters iterations.
	FanoutOwners   int
	FanoutBlkElems int
	FanoutIters    int

	// Sched is the engine execution mode the sweep's jobs run under
	// (continuation by default; -sched overrides).
	Sched sim.Mode

	// Obs, when non-nil, records per-rank metrics for every job.
	Obs *obs.Recorder
}

// DefaultScale sweeps 4096-16384 ranks on the Cray XT5 model, the
// platform whose paper runs reached 12288 cores. MPI-3 is forced: the
// lock-all backend with fetch-op NXTVAL is the configuration that
// scales (SectionVIII.B); the MPI-2 mutex algorithm's O(nproc) lock
// epochs are exactly what these rank counts rule out.
func DefaultScale() ScaleConfig {
	return ScaleConfig{
		Ranks:          []int{4096, 8192, 16384},
		Params:         nwchem.Params{NO: 4, NV: 64, Blk: 32, Iter: 1, Chunk: 1, FlopMult: 40},
		FanoutOwners:   64,
		FanoutBlkElems: 512,
		FanoutIters:    2,
		Sched:          sim.ModeContinuation,
	}
}

// QuickScale is the reduced sweep behind the guarded artifact: one
// 4096-rank point with a coarser task tiling (one task per rank).
func QuickScale() ScaleConfig {
	return ScaleConfig{
		Ranks:          []int{4096},
		Params:         nwchem.Params{NO: 4, NV: 64, Blk: 64, Iter: 1, Chunk: 1, FlopMult: 40},
		FanoutOwners:   64,
		FanoutBlkElems: 512,
		FanoutIters:    2,
		Sched:          sim.ModeContinuation,
	}
}

// scaleCCSD runs the CCSD phase of the proxy at one scale and returns
// the phase time (max over ranks).
func scaleCCSD(plat *platform.Platform, impl harness.Impl, nranks int, cfg ScaleConfig) (sim.Time, error) {
	opt := benchOptions()
	opt.UseMPI3 = true
	j, err := harness.NewJobObs(plat, nranks, impl, opt, cfg.Obs)
	if err != nil {
		return 0, err
	}
	j.Eng.Mode = cfg.Sched
	var phase sim.Time
	var runErr error
	err = j.Eng.Run(nranks, func(pr *sim.Proc) {
		env := newGAEnv(j, pr)
		sys, err := nwchem.Setup(env, j.M, cfg.Params)
		if err != nil {
			runErr = err
			return
		}
		res, err := sys.CCSD()
		if err != nil {
			runErr = err
			return
		}
		mx := env.GopF64(mpi.OpMax, []float64{res.Elapsed.Seconds()})
		if env.Me() == 0 {
			phase = sim.FromSeconds(mx[0])
		}
		if err := sys.Teardown(); err != nil {
			runErr = err
		}
	})
	if err != nil {
		return 0, err
	}
	return phase, runErr
}

// scaleFanout measures the aggregated nonblocking GA fan-out (put to
// remote completion, and get) at one scale, returning per-operation
// latencies in microseconds. Only rank 0 issues operations — buffers
// exist on that rank alone, so per-rank memory stays flat in nranks.
func scaleFanout(plat *platform.Platform, impl harness.Impl, nranks int, cfg ScaleConfig) (putUs, getUs float64, err error) {
	opt := benchOptions()
	opt.UseMPI3 = true
	j, err := harness.NewJobObs(plat, nranks, impl, opt, cfg.Obs)
	if err != nil {
		return 0, 0, err
	}
	j.Eng.Mode = cfg.Sched
	k := cfg.FanoutOwners
	var runErr error
	err = j.Eng.Run(nranks, func(pr *sim.Proc) {
		env := newGAEnv(j, pr)
		a, err := env.Create("scale-fanout", ga.F64, []int{nranks * cfg.FanoutBlkElems})
		if err != nil {
			runErr = err
			return
		}
		rt := env.Rt
		env.Sync()
		if env.Me() == 0 {
			vals := make([]float64, k*cfg.FanoutBlkElems)
			// The patch starts at owner 1's block: every spanned owner is
			// a different process from the issuing rank.
			lo := []int{cfg.FanoutBlkElems}
			hi := []int{cfg.FanoutBlkElems*(1+k) - 1}
			if err := a.Put(lo, hi, vals); err != nil {
				runErr = err
				return
			}
			rt.AllFence()
			start := rt.Proc().Now()
			for i := 0; i < cfg.FanoutIters; i++ {
				if err := a.Put(lo, hi, vals); err != nil {
					runErr = err
					return
				}
				rt.AllFence()
			}
			putUs = perOpMicros(rt.Proc().Now()-start, cfg.FanoutIters)
			if err := a.Get(lo, hi, vals); err != nil {
				runErr = err
				return
			}
			start = rt.Proc().Now()
			for i := 0; i < cfg.FanoutIters; i++ {
				if err := a.Get(lo, hi, vals); err != nil {
					runErr = err
					return
				}
			}
			getUs = perOpMicros(rt.Proc().Now()-start, cfg.FanoutIters)
		}
		env.Sync()
		if err := a.Destroy(); err != nil {
			runErr = err
		}
	})
	if err != nil {
		return 0, 0, err
	}
	return putUs, getUs, runErr
}

// Scale regenerates the large-rank scaling figure on the Cray XT5
// model: CCSD proxy phase time and aggregated fan-out latency versus
// process count, for ARMCI-MPI and the locality-aware dartmpi runtime.
func Scale(cfg ScaleConfig) (*Figure, error) {
	plat := platform.Get(platform.CrayXT5)
	fig := &Figure{
		Name:   "scale",
		Title:  "Large-rank scaling (continuation scheduler), " + plat.System,
		XLabel: "number of processes",
		YLabel: "CCSD phase (virtual seconds) / fan-out latency (us per op)",
	}
	for _, impl := range []harness.Impl{harness.ImplARMCIMPI, harness.ImplDartMPI} {
		name := "ARMCI-MPI"
		if impl == harness.ImplDartMPI {
			name = "dartmpi"
		}
		for _, n := range cfg.Ranks {
			if n > plat.MaxRanks() {
				continue
			}
			t, err := scaleCCSD(plat, impl, n, cfg)
			if err != nil {
				return nil, fmt.Errorf("bench: scale %s ccsd @%d: %w", impl, n, err)
			}
			fig.Add(name+" CCSD", float64(n), t.Seconds())
			put, get, err := scaleFanout(plat, impl, n, cfg)
			if err != nil {
				return nil, fmt.Errorf("bench: scale %s fanout @%d: %w", impl, n, err)
			}
			fig.Add(name+" fanout put", float64(n), put)
			fig.Add(name+" fanout get", float64(n), get)
		}
	}
	return fig, nil
}
