package bench

import "repro/internal/armcimpi"

// Tweak, when non-nil, is applied to every runtime Options value the
// bench harnesses construct. cmd/armci-bench installs it to expose
// -batch, -strided-method, and -iov-method without threading flag
// plumbing through every figure. Figures that set ablation-specific
// fields (NoShm, UseMPI3, ...) do so after the hook runs, so a sweep's
// own axis always wins over the command-line override.
var Tweak func(*armcimpi.Options)

// benchOptions is DefaultOptions plus the process-wide Tweak hook.
func benchOptions() armcimpi.Options {
	opt := armcimpi.DefaultOptions()
	if Tweak != nil {
		Tweak(&opt)
	}
	return opt
}
