package bench

import (
	"repro/internal/armcimpi"
	"repro/internal/harness"
)

// Tweak, when non-nil, is applied to every runtime Options value the
// bench harnesses construct. cmd/armci-bench installs it to expose
// -batch, -strided-method, and -iov-method without threading flag
// plumbing through every figure. Figures that set ablation-specific
// fields (NoShm, UseMPI3, ...) do so after the hook runs, so a sweep's
// own axis always wins over the command-line override.
var Tweak func(*armcimpi.Options)

// ExtraImpls, when non-empty, adds these runtimes as extra series to
// the Figure 3 contiguous-bandwidth comparison (beyond the paper's
// native vs ARMCI-MPI pair). cmd/armci-bench installs it from the
// -runtime flag; duplicates of the built-in pair are skipped. Empty by
// default, so the guarded BENCH artifacts are unaffected.
var ExtraImpls []harness.Impl

// benchOptions is DefaultOptions plus the process-wide Tweak hook.
func benchOptions() armcimpi.Options {
	opt := armcimpi.DefaultOptions()
	if Tweak != nil {
		Tweak(&opt)
	}
	return opt
}
