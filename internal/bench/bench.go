// Package bench regenerates every table and figure of the paper's
// evaluation (SectionVII): contiguous bandwidth (Figure 3), strided
// bandwidth across transfer methods (Figure 4), the interoperability /
// registration study (Figure 5), NWChem CCSD(T) scaling (Figure 6),
// the platform table (Table II), and the ablations DESIGN.md calls out.
//
// All measurements are in deterministic virtual time, so results are
// exactly reproducible; absolute numbers are properties of the
// calibrated platform models, and the claims to compare against the
// paper are the shapes: orderings, crossovers, and rough ratios.
package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/sim"
)

// Series is one labelled curve: y(x) samples in ascending x.
type Series struct {
	Label string
	X     []float64
	Y     []float64
}

// Figure is a set of curves sharing an axis.
type Figure struct {
	Name   string // e.g. "fig3-bgp-get"
	Title  string
	XLabel string
	YLabel string
	Series []Series
}

// Add appends a sample to the named series, creating it on first use.
func (f *Figure) Add(label string, x, y float64) {
	for i := range f.Series {
		if f.Series[i].Label == label {
			f.Series[i].X = append(f.Series[i].X, x)
			f.Series[i].Y = append(f.Series[i].Y, y)
			return
		}
	}
	f.Series = append(f.Series, Series{Label: label, X: []float64{x}, Y: []float64{y}})
}

// Get returns the series with the given label, or nil.
func (f *Figure) Get(label string) *Series {
	for i := range f.Series {
		if f.Series[i].Label == label {
			return &f.Series[i]
		}
	}
	return nil
}

// Print writes the figure as aligned gnuplot-style columns: one x
// column followed by one column per series.
func (f *Figure) Print(w io.Writer) {
	fmt.Fprintf(w, "# %s — %s\n", f.Name, f.Title)
	fmt.Fprintf(w, "# x: %s, y: %s\n", f.XLabel, f.YLabel)
	// Collect the union of x values.
	xs := map[float64]bool{}
	for _, s := range f.Series {
		for _, x := range s.X {
			xs[x] = true
		}
	}
	xlist := make([]float64, 0, len(xs))
	for x := range xs {
		xlist = append(xlist, x)
	}
	sort.Float64s(xlist)
	// Header.
	fmt.Fprintf(w, "%-12s", "x")
	for _, s := range f.Series {
		fmt.Fprintf(w, " %-16s", strings.ReplaceAll(s.Label, " ", "_"))
	}
	fmt.Fprintln(w)
	for _, x := range xlist {
		fmt.Fprintf(w, "%-12g", x)
		for _, s := range f.Series {
			v, ok := s.At(x)
			if ok {
				fmt.Fprintf(w, " %-16.6g", v)
			} else {
				fmt.Fprintf(w, " %-16s", "-")
			}
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w)
}

// figureJSON is the machine-readable schema of a figure. Field order is
// fixed by the struct, and every value is derived from deterministic
// virtual-time measurements, so repeat runs produce byte-identical
// output.
type figureJSON struct {
	Name   string       `json:"name"`
	Title  string       `json:"title"`
	XLabel string       `json:"xlabel"`
	YLabel string       `json:"ylabel"`
	Series []seriesJSON `json:"series"`
}

type seriesJSON struct {
	Label string    `json:"label"`
	X     []float64 `json:"x"`
	Y     []float64 `json:"y"`
}

// WriteJSON writes the figure as deterministic machine-readable JSON.
func (f *Figure) WriteJSON(w io.Writer) error {
	out := figureJSON{Name: f.Name, Title: f.Title, XLabel: f.XLabel, YLabel: f.YLabel}
	for _, s := range f.Series {
		js := seriesJSON{Label: s.Label, X: s.X, Y: s.Y}
		if js.X == nil {
			js.X = []float64{}
		}
		if js.Y == nil {
			js.Y = []float64{}
		}
		out.Series = append(out.Series, js)
	}
	if out.Series == nil {
		out.Series = []seriesJSON{}
	}
	b, err := json.MarshalIndent(&out, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// WriteJSONFile writes the figure to dir/BENCH_<name>.json and returns
// the path written.
func (f *Figure) WriteJSONFile(dir string) (string, error) {
	path := filepath.Join(dir, "BENCH_"+f.Name+".json")
	fh, err := os.Create(path)
	if err != nil {
		return "", err
	}
	if err := f.WriteJSON(fh); err != nil {
		fh.Close()
		return "", err
	}
	return path, fh.Close()
}

// At returns the y value at exactly x.
func (s *Series) At(x float64) (float64, bool) {
	for i, xv := range s.X {
		if xv == x {
			return s.Y[i], true
		}
	}
	return 0, false
}

// Last returns the final sample of the series.
func (s *Series) Last() float64 {
	if len(s.Y) == 0 {
		return 0
	}
	return s.Y[len(s.Y)-1]
}

// Max returns the largest y value.
func (s *Series) Max() float64 {
	m := 0.0
	for _, y := range s.Y {
		if y > m {
			m = y
		}
	}
	return m
}

// bandwidth converts (bytes, duration) into GB/s.
func bandwidth(bytes int64, d sim.Time) float64 {
	if d <= 0 {
		return 0
	}
	return float64(bytes) / d.Seconds() / 1e9
}

// pow2s returns 2^lo .. 2^hi.
func pow2s(lo, hi int) []int {
	var out []int
	for e := lo; e <= hi; e++ {
		out = append(out, 1<<e)
	}
	return out
}
