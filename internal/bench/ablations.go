package bench

import (
	"fmt"
	"io"

	"repro/internal/armci"
	"repro/internal/armcimpi"
	"repro/internal/harness"
	"repro/internal/platform"
	"repro/internal/sim"
)

// Table2 writes the paper's Table II platform characteristics.
func Table2(w io.Writer) {
	fmt.Fprintln(w, "# Table II — experimental platforms and system characteristics")
	fmt.Fprintf(w, "%-28s %6s  %-6s %-6s %-15s %s\n",
		"System", "Nodes", "Cores", "Mem", "Interconnect", "MPI Version")
	for _, p := range platform.All() {
		fmt.Fprintln(w, p.TableII())
	}
	fmt.Fprintln(w)
}

// AblationRmw compares read-modify-write latency under the MPI-2
// mutex emulation (SectionV.D) against native NIC atomics and the
// MPI-3 fetch-and-op extension (SectionVIII.B). Returns mean latency
// in microseconds per variant.
func AblationRmw(plat *platform.Platform, iters int) (map[string]float64, error) {
	out := map[string]float64{}
	variants := []struct {
		name string
		impl harness.Impl
		mpi3 bool
	}{
		{"native-atomic", harness.ImplNative, false},
		{"mpi2-mutex", harness.ImplARMCIMPI, false},
		{"mpi3-fetchop", harness.ImplARMCIMPI, true},
	}
	for _, v := range variants {
		opt := benchOptions()
		opt.UseMPI3 = v.mpi3
		var lat sim.Time
		var runErr error
		_, err := harness.Run(plat, 2*plat.CoresPerNode, v.impl, opt, func(rt armci.Runtime) {
			addrs, err := rt.Malloc(8)
			if err != nil {
				runErr = err
				return
			}
			if rt.Rank() == plat.CoresPerNode { // remote rank hammers rank 0
				start := rt.Proc().Now()
				for i := 0; i < iters; i++ {
					if _, err := rt.Rmw(armci.FetchAndAdd, addrs[0], 1); err != nil {
						runErr = err
						return
					}
				}
				lat = (rt.Proc().Now() - start) / sim.Time(iters)
			}
			rt.Barrier()
			if err := rt.Free(addrs[rt.Rank()]); err != nil {
				runErr = err
			}
		})
		if err != nil {
			return nil, err
		}
		if runErr != nil {
			return nil, runErr
		}
		out[v.name] = lat.Micros()
	}
	return out, nil
}

// AblationAccessModes measures the SectionVIII.A access-mode
// extension: n processes repeatedly get from one target under the
// default conflicting mode (exclusive epochs, serialized) versus the
// read-only hint (shared epochs, concurrent). Returns total phase time
// in microseconds per mode.
func AblationAccessModes(plat *platform.Platform, readers, iters, size int) (map[string]float64, error) {
	out := map[string]float64{}
	for _, mode := range []armci.AccessMode{armci.ModeConflicting, armci.ModeReadOnly} {
		mode := mode
		var phase sim.Time
		var runErr error
		nranks := readers + 1
		j, err := harness.NewJob(plat, nranks, harness.ImplARMCIMPI, benchOptions())
		if err != nil {
			return nil, err
		}
		err = j.Eng.Run(nranks, func(p *sim.Proc) {
			rt := j.Runtime(p)
			addrs, err := rt.Malloc(size)
			if err != nil {
				runErr = err
				return
			}
			if mode != armci.ModeConflicting {
				if err := rt.SetAccessMode(mode, addrs[0]); err != nil {
					runErr = err
					return
				}
			}
			rt.Barrier()
			start := rt.Proc().Now()
			if rt.Rank() > 0 {
				local := rt.MallocLocal(size)
				for i := 0; i < iters; i++ {
					if err := rt.Get(addrs[0], local, size); err != nil {
						runErr = err
						return
					}
				}
			}
			rt.Barrier()
			if rt.Rank() == 0 {
				phase = rt.Proc().Now() - start
			}
			if err := rt.Free(addrs[rt.Rank()]); err != nil {
				runErr = err
			}
		})
		if err != nil {
			return nil, err
		}
		if runErr != nil {
			return nil, runErr
		}
		out[mode.String()] = phase.Micros()
	}
	return out, nil
}

// AblationStridedMethods reports strided put bandwidth (GB/s) per
// ARMCI-MPI method at a fixed shape, the per-method summary behind
// Figure 4's method choice (SectionVII.D picked batched on BG/P and
// direct elsewhere).
func AblationStridedMethods(plat *platform.Platform, segBytes, nsegs, iters int) (map[string]float64, error) {
	out := map[string]float64{}
	for _, v := range fig4Variants() {
		s, err := StridedBandwidth(plat, v, OpPut, segBytes, []int{nsegs}, iters)
		if err != nil {
			return nil, err
		}
		out[v.label] = s.Last()
	}
	return out, nil
}

// AblationBatchSize sweeps the batched method's B parameter
// (SectionVI.A: "issues up to B operations per epoch ... default 0,
// or unlimited"), showing the epoch-amortization tradeoff.
func AblationBatchSize(plat *platform.Platform, segBytes, nsegs int, batches []int, iters int) (map[int]float64, error) {
	out := map[int]float64{}
	for _, b := range batches {
		v := stridedVariant{label: fmt.Sprintf("B=%d", b), impl: harness.ImplARMCIMPI, method: armcimpi.MethodBatched}
		opt := benchOptions()
		opt.StridedMethod = armcimpi.MethodBatched
		opt.BatchSize = b
		series, err := stridedWithOptions(plat, opt, v.label, OpPut, segBytes, []int{nsegs}, iters)
		if err != nil {
			return nil, err
		}
		out[b] = series.Last()
	}
	return out, nil
}

// stridedWithOptions is StridedBandwidth with explicit runtime options.
func stridedWithOptions(plat *platform.Platform, opt armcimpi.Options, label string, op ContigOp, segBytes int, counts []int, iters int) (Series, error) {
	series := Series{Label: label}
	maxSegs := counts[len(counts)-1]
	remoteStride := 2 * segBytes
	winBytes := maxSegs*remoteStride + segBytes
	nranks := 2 * plat.CoresPerNode
	target := plat.CoresPerNode
	var bwErr error
	_, err := harness.Run(plat, nranks, harness.ImplARMCIMPI, opt, func(rt armci.Runtime) {
		addrs, err := rt.Malloc(winBytes)
		if err != nil {
			bwErr = err
			return
		}
		local := rt.MallocLocal(maxSegs * segBytes)
		if rt.Rank() == 0 {
			for _, nseg := range counts {
				s := &armci.Strided{
					Src: local, Dst: addrs[target],
					SrcStride: []int{segBytes}, DstStride: []int{remoteStride},
					Count: []int{segBytes, nseg},
				}
				start := rt.Proc().Now()
				for i := 0; i < iters; i++ {
					if err := doStrided(rt, op, s); err != nil {
						bwErr = err
						return
					}
				}
				elapsed := rt.Proc().Now() - start
				series.X = append(series.X, float64(nseg))
				series.Y = append(series.Y, bandwidth(int64(segBytes)*int64(nseg)*int64(iters), elapsed))
			}
		}
		rt.Barrier()
		if err := rt.Free(addrs[rt.Rank()]); err != nil {
			bwErr = err
		}
	})
	if err != nil {
		return series, err
	}
	return series, bwErr
}

// AblationAsyncProgress quantifies SectionV.F's asynchronous-progress
// requirement: the same contiguous put/get loop with the MPI library's
// async progress enabled (the standard's behaviour, which ARMCI-MPI
// relies on) versus a library that only makes progress when the target
// enters MPI, modeled as a mean service delay. Returns mean op latency
// in microseconds.
func AblationAsyncProgress(plat *platform.Platform, delayNs float64, iters int) (map[string]float64, error) {
	out := map[string]float64{}
	for _, mode := range []string{"async-progress", "no-async-progress"} {
		tuned := *plat // copy; adjust the MPI tuning
		if mode == "no-async-progress" {
			mpiTun := tuned.MPI
			mpiTun.NoProgressDelayNs = delayNs
			tuned.MPI = mpiTun
		}
		var lat sim.Time
		var runErr error
		_, err := harness.Run(&tuned, 2*plat.CoresPerNode, harness.ImplARMCIMPI,
			benchOptions(), func(rt armci.Runtime) {
				addrs, err := rt.Malloc(4096)
				if err != nil {
					runErr = err
					return
				}
				if rt.Rank() == plat.CoresPerNode {
					local := rt.MallocLocal(4096)
					start := rt.Proc().Now()
					for i := 0; i < iters; i++ {
						if err := rt.Put(local, addrs[0], 1024); err != nil {
							runErr = err
							return
						}
					}
					lat = (rt.Proc().Now() - start) / sim.Time(iters)
				}
				rt.Barrier()
				if err := rt.Free(addrs[rt.Rank()]); err != nil {
					runErr = err
				}
			})
		if err != nil {
			return nil, err
		}
		if runErr != nil {
			return nil, runErr
		}
		out[mode] = lat.Micros()
	}
	return out, nil
}

// AblationMPI3Backend compares the paper's MPI-2 design against the
// SectionVIII.B MPI-3 backend (lock-all/flush epochless mode, request
// operations, native atomics) on the CCSD proxy — the forward-looking
// experiment the paper's gap analysis motivates. Returns virtual phase
// milliseconds.
func AblationMPI3Backend(plat *platform.Platform, cores int) (map[string]float64, error) {
	out := map[string]float64{}
	p := nwchemParams()
	for _, mode := range []string{"mpi2-epochs", "mpi3-lockall"} {
		opt := benchOptions()
		opt.UseMPI3 = mode == "mpi3-lockall"
		j, err := harness.NewJob(plat, cores, harness.ImplARMCIMPI, opt)
		if err != nil {
			return nil, err
		}
		var phase sim.Time
		var runErr error
		err = j.Eng.Run(cores, func(pr *sim.Proc) {
			env := newGAEnv(j, pr)
			sys, err := nwchemSetup(env, j, p)
			if err != nil {
				runErr = err
				return
			}
			res, err := sys.CCSD()
			if err != nil {
				runErr = err
				return
			}
			if env.Me() == 0 {
				phase = res.Elapsed
			}
			if err := sys.Teardown(); err != nil {
				runErr = err
			}
		})
		if err != nil {
			return nil, err
		}
		if runErr != nil {
			return nil, runErr
		}
		out[mode] = phase.Seconds() * 1e3
	}
	return out, nil
}

// AblationDataServer reproduces the paper's Related Work comparison
// (SectionIX): ARMCI over a per-node two-sided data server versus
// ARMCI-MPI's one-sided RMA versus native. Reports (a) contiguous get
// bandwidth with several concurrent origins hammering one node — the
// data-server bottleneck — and (b) the CCSD proxy phase time including
// the consumed core. Values: GB/s and virtual ms respectively.
func AblationDataServer(plat *platform.Platform, origins, iters, size int) (map[string]float64, error) {
	out := map[string]float64{}
	for _, impl := range []harness.Impl{harness.ImplNative, harness.ImplARMCIMPI, harness.ImplDataServer} {
		nranks := origins*plat.CoresPerNode + 1
		if nranks > plat.MaxRanks() {
			nranks = plat.MaxRanks()
		}
		var total sim.Time
		var moved int64
		var runErr error
		_, err := harness.Run(plat, nranks, impl, benchOptions(), func(rt armci.Runtime) {
			addrs, err := rt.Malloc(size)
			if err != nil {
				runErr = err
				return
			}
			// One origin per remote node gets from rank 0 concurrently.
			isOrigin := rt.Rank() != 0 && rt.Rank()%plat.CoresPerNode == 0
			local := rt.MallocLocal(size)
			if isOrigin {
				// Warm up (registration caches) before timing.
				if err := rt.Get(addrs[0], local, size); err != nil {
					runErr = err
					return
				}
			}
			rt.Barrier()
			start := rt.Proc().Now()
			if isOrigin {
				for i := 0; i < iters; i++ {
					if err := rt.Get(addrs[0], local, size); err != nil {
						runErr = err
						return
					}
				}
				moved += int64(size) * int64(iters)
			}
			rt.Barrier()
			if rt.Rank() == 0 {
				total = rt.Proc().Now() - start
			}
			if err := rt.Free(addrs[rt.Rank()]); err != nil {
				runErr = err
			}
		})
		if err != nil {
			return nil, err
		}
		if runErr != nil {
			return nil, runErr
		}
		out[string(impl)] = bandwidth(moved, total)
	}
	// CCSD phase times.
	p := nwchemParams()
	for _, impl := range []harness.Impl{harness.ImplNative, harness.ImplARMCIMPI, harness.ImplDataServer} {
		tm, err := NWChemPhase(plat, impl, 16, p, false)
		if err != nil {
			return nil, err
		}
		out["ccsd-"+string(impl)] = tm.Seconds() * 1e3
	}
	return out, nil
}
