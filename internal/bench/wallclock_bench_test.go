package bench

import (
	"fmt"
	"testing"
)

// TestWallclockQuickFigure smoke-tests the host-time sweep: every
// series present with positive rates, including the scale-exchange
// events/sec dimension the parallel speedup figure baselines against.
func TestWallclockQuickFigure(t *testing.T) {
	f, err := Wallclock(QuickWallclock())
	if err != nil {
		t.Fatal(err)
	}
	want := []string{
		"contig-issue (ops/s)", "strided-issue (ops/s)", "iov-issue (ops/s)",
		"pack-subarray (MB/s)", "scheduler (events/s)", "scale-exchange (events/s)",
	}
	for _, label := range want {
		s := f.Get(label)
		if s == nil {
			t.Errorf("series %q missing", label)
			continue
		}
		for i, y := range s.Y {
			if y <= 0 {
				t.Errorf("series %q sample %d = %v, want > 0", label, i, y)
			}
		}
	}
	if s := f.Get("scale-exchange (events/s)"); s != nil {
		cfg := QuickWallclock()
		if len(s.X) != len(cfg.ScaleRanks) {
			t.Errorf("scale-exchange sampled at %v, want one point per %v", s.X, cfg.ScaleRanks)
		}
	}
}

// BenchmarkWallclockScaleEvents measures the host cost of the scale
// exchange single-shard — the events/sec trajectory of the sequential
// engine on the workload the parallel sweep decomposes.
func BenchmarkWallclockScaleEvents(b *testing.B) {
	for _, nranks := range []int{1024, 4096} {
		b.Run(fmt.Sprintf("ranks=%d", nranks), func(b *testing.B) {
			var events int64
			for i := 0; i < b.N; i++ {
				st, _, err := ParallelScaleRun(nranks, 2, 1)
				if err != nil {
					b.Fatal(err)
				}
				events = st.Events
			}
			b.ReportMetric(float64(events), "events/run")
		})
	}
}
