package bench

// The wall-clock suite measures the simulator's HOST cost, not the
// simulated machine: operation issue rates (complete armci op →
// GMR translation → datatype → epoch → sim event round trips per host
// second), derived-datatype pack/unpack throughput, and raw scheduler
// event dispatch rates at large rank counts. Virtual-time results are
// covered by the deterministic figures; this suite is the perf
// trajectory for the harness itself, bounding how far rank counts and
// message sizes can scale in real time.
//
// Numbers are host-machine dependent and NOT byte-deterministic; the
// exported results/BENCH_wallclock.json is a trajectory seed, not a
// guarded regression artifact.

import (
	"fmt"
	"time"

	"repro/internal/armci"
	"repro/internal/armcimpi"
	"repro/internal/harness"
	"repro/internal/mpi"
	"repro/internal/platform"
	"repro/internal/sim"
)

// WallclockContigIssue runs a two-rank ARMCI-MPI job in which rank 0
// issues nops blocking contiguous puts of the given size to rank 1,
// returning the issuing body's host duration.
func WallclockContigIssue(plat *platform.Platform, nops, bytes int) (time.Duration, error) {
	return issueJob(plat, nops, func(rt armci.Runtime, addrs []armci.Addr, local armci.Addr) error {
		return rt.Put(local, addrs[1], bytes)
	}, bytes)
}

// WallclockStridedIssue issues nops strided puts of nsegs segments of
// segBytes each (2-D descriptor, contiguous locally, strided remotely).
func WallclockStridedIssue(plat *platform.Platform, nops, nsegs, segBytes int) (time.Duration, error) {
	span := 2 * nsegs * segBytes
	return issueJob(plat, nops, func(rt armci.Runtime, addrs []armci.Addr, local armci.Addr) error {
		s := &armci.Strided{
			Src:       local,
			Dst:       addrs[1],
			SrcStride: []int{segBytes},
			DstStride: []int{2 * segBytes},
			Count:     []int{segBytes, nsegs},
		}
		return rt.PutS(s)
	}, span)
}

// WallclockIOVIssue issues nops generalized I/O vector puts of nsegs
// segments of segBytes each.
func WallclockIOVIssue(plat *platform.Platform, nops, nsegs, segBytes int) (time.Duration, error) {
	span := 2 * nsegs * segBytes
	return issueJob(plat, nops, func(rt armci.Runtime, addrs []armci.Addr, local armci.Addr) error {
		g := armci.GIOV{Bytes: segBytes}
		for i := 0; i < nsegs; i++ {
			g.Src = append(g.Src, armci.Addr{Rank: local.Rank, VA: local.VA + int64(i*segBytes)})
			g.Dst = append(g.Dst, armci.Addr{Rank: addrs[1].Rank, VA: addrs[1].VA + int64(2*i*segBytes)})
		}
		return rt.PutV([]armci.GIOV{g}, addrs[1].Rank)
	}, span)
}

// issueJob is the shared two-rank issue-rate skeleton: allocate a GMR
// and a local buffer, have rank 0 issue op nops times (timing only the
// issue loop), then free collectively. The shm fast path is disabled
// so the full RMA epoch path — the expensive one — is what is measured.
func issueJob(plat *platform.Platform, nops int, op func(rt armci.Runtime, addrs []armci.Addr, local armci.Addr) error, span int) (time.Duration, error) {
	var dur time.Duration
	opt := armcimpi.DefaultOptions()
	opt.NoShm = true
	_, err := harness.Run(plat, 2, harness.ImplARMCIMPI, opt, func(rt armci.Runtime) {
		addrs, err := rt.Malloc(span)
		if err != nil {
			panic(err)
		}
		local := rt.MallocLocal(span)
		rt.Barrier()
		if rt.Rank() == 0 {
			t0 := time.Now()
			for i := 0; i < nops; i++ {
				if err := op(rt, addrs, local); err != nil {
					panic(err)
				}
			}
			dur = time.Since(t0)
		}
		rt.Barrier()
		if err := rt.FreeLocal(local); err != nil {
			panic(err)
		}
		if err := rt.Free(addrs[rt.Rank()]); err != nil {
			panic(err)
		}
	})
	return dur, err
}

// WallclockEvents runs a pure scheduler workload: nranks ranks each
// advancing virtual time steps times with co-prime durations so wake
// events interleave. It returns the number of dispatched events and
// the host duration of the whole run.
func WallclockEvents(nranks, steps int) (int64, time.Duration, error) {
	e := sim.NewEngine()
	t0 := time.Now()
	err := e.Run(nranks, func(p *sim.Proc) {
		d := sim.Time(1 + p.ID()%13)
		for i := 0; i < steps; i++ {
			p.Elapse(d)
		}
	})
	return e.Stats().Events, time.Since(t0), err
}

// WallclockPackType builds the datatype exercised by the pack
// benchmarks: a 2-D subarray of nsegs rows of segBytes bytes inside a
// parent array twice as wide, the shape the direct strided method
// produces.
func WallclockPackType(nsegs, segBytes int) mpi.Datatype {
	return mpi.TypeSubarray(
		[]int{nsegs, 2 * segBytes},
		[]int{nsegs, segBytes},
		[]int{0, segBytes / 2},
		1,
	)
}

// WallclockPackRoundtrip runs iters pack+unpack round trips of t
// through the RMA layer's kernels and returns the host duration. The
// caller supplies the buffers so allocation is excluded.
func WallclockPackRoundtrip(t mpi.Datatype, src, dense []byte, iters int) time.Duration {
	t0 := time.Now()
	for i := 0; i < iters; i++ {
		mpi.PackInto(dense, t, src)
		mpi.Unpack(t, src, dense)
	}
	return time.Since(t0)
}

// WallclockConfig sizes the reduced sweep behind the exported figure.
type WallclockConfig struct {
	Ops        int // operations per issue-rate point
	PackIters  int // round trips per pack point
	EventSteps int // elapse steps per rank per events point

	// Scale-workload shape: the cross-node exchange of the parallel
	// sweep (ParallelScaleRun), measured single-shard here so the
	// speedup figure has a host-time baseline at the same rank counts.
	// The wall-clock dimension lives in this (non-guarded) figure so
	// BENCH_scale.json stays a byte-compared virtual-time artifact.
	ScaleRanks  []int // rank counts for the scale-events series
	ScaleRounds int   // exchange rounds per rank
}

// DefaultWallclock returns a configuration that completes in a few
// host seconds on commodity hardware.
func DefaultWallclock() WallclockConfig {
	return WallclockConfig{
		Ops: 400, PackIters: 4000, EventSteps: 400,
		ScaleRanks: []int{4096, 16384}, ScaleRounds: 4,
	}
}

// QuickWallclock returns a smoke-test configuration (used by CI under
// the race detector) that touches every measured path in well under a
// second.
func QuickWallclock() WallclockConfig {
	return WallclockConfig{
		Ops: 10, PackIters: 10, EventSteps: 10,
		ScaleRanks: []int{128}, ScaleRounds: 1,
	}
}

// Wallclock runs the reduced wall-clock sweep and returns it as a
// figure: issue rates in ops/s over payload or segment count, pack
// throughput in MB/s over segment count, and scheduler event rates in
// events/s over rank count.
func Wallclock(cfg WallclockConfig) (*Figure, error) {
	plat := harness.TestPlatform()
	fig := &Figure{
		Name:   "wallclock",
		Title:  "harness wall-clock cost (host time, machine dependent)",
		XLabel: "bytes | segments | ranks",
		YLabel: "ops/s | MB/s | events/s",
	}
	for _, bytes := range []int{8, 512, 8192} {
		d, err := WallclockContigIssue(plat, cfg.Ops, bytes)
		if err != nil {
			return nil, fmt.Errorf("wallclock contig(%d): %w", bytes, err)
		}
		fig.Add("contig-issue (ops/s)", float64(bytes), rate(cfg.Ops, d))
	}
	for _, nsegs := range []int{16, 64, 256} {
		d, err := WallclockStridedIssue(plat, cfg.Ops, nsegs, 64)
		if err != nil {
			return nil, fmt.Errorf("wallclock strided(%d): %w", nsegs, err)
		}
		fig.Add("strided-issue (ops/s)", float64(nsegs), rate(cfg.Ops, d))
		d, err = WallclockIOVIssue(plat, cfg.Ops, nsegs, 64)
		if err != nil {
			return nil, fmt.Errorf("wallclock iov(%d): %w", nsegs, err)
		}
		fig.Add("iov-issue (ops/s)", float64(nsegs), rate(cfg.Ops, d))
	}
	for _, nsegs := range []int{32, 256} {
		t := WallclockPackType(nsegs, 128)
		src := make([]byte, t.Span())
		dense := make([]byte, t.Size())
		d := WallclockPackRoundtrip(t, src, dense, cfg.PackIters)
		mb := float64(2*t.Size()*cfg.PackIters) / 1e6
		fig.Add("pack-subarray (MB/s)", float64(nsegs), mb/d.Seconds())
	}
	for _, nranks := range []int{64, 128, 256} {
		ev, d, err := WallclockEvents(nranks, cfg.EventSteps)
		if err != nil {
			return nil, fmt.Errorf("wallclock events(%d): %w", nranks, err)
		}
		fig.Add("scheduler (events/s)", float64(nranks), float64(ev)/d.Seconds())
	}
	for _, nranks := range cfg.ScaleRanks {
		st, d, err := ParallelScaleRun(nranks, cfg.ScaleRounds, 1)
		if err != nil {
			return nil, fmt.Errorf("wallclock scale-events(%d): %w", nranks, err)
		}
		fig.Add("scale-exchange (events/s)", float64(nranks), float64(st.Events)/d.Seconds())
	}
	return fig, nil
}

// rate converts (ops, duration) to operations per host second.
func rate(ops int, d time.Duration) float64 {
	if d <= 0 {
		return 0
	}
	return float64(ops) / d.Seconds()
}
