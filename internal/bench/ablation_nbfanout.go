package bench

import (
	"fmt"

	"repro/internal/ga"
	"repro/internal/harness"
	"repro/internal/platform"
	"repro/internal/sim"
)

// NbFanoutConfig tunes the GA fan-out aggregation ablation: a 1-D
// global array whose patches span a growing number of owning
// processes, accessed with the per-owner operations issued blocking
// versus nonblocking-with-one-WaitAll.
type NbFanoutConfig struct {
	Owners   []int // spanned owner counts, ascending
	BlkElems int   // float64 elements per owner block
	Iters    int
}

// DefaultNbFanout spans up to 16 owners with 32 KB per owner.
func DefaultNbFanout() NbFanoutConfig {
	return NbFanoutConfig{Owners: []int{1, 2, 4, 8, 16}, BlkElems: 4096, Iters: 3}
}

// QuickNbFanout keeps the full owner axis (the aggregation win is the
// claim under test) but shrinks blocks and iterations.
func QuickNbFanout() NbFanoutConfig {
	return NbFanoutConfig{Owners: []int{1, 2, 4, 8, 16}, BlkElems: 512, Iters: 2}
}

func (c NbFanoutConfig) maxOwners() int { return c.Owners[len(c.Owners)-1] }

// nbFanoutVariant measures GA Put and Get latency versus spanned owner
// count for one fan-out discipline. MPI-3 is required (under MPI-2 the
// nonblocking surface degenerates to blocking calls) and the shm fast
// path is disabled so every owner pays the RMA completion round trip —
// the cost the aggregated FlushAll amortizes.
func nbFanoutVariant(plat *platform.Platform, blocking bool, cfg NbFanoutConfig) (Series, Series, error) {
	label := "nonblocking"
	if blocking {
		label = "blocking"
	}
	put := Series{Label: "put (" + label + ")"}
	get := Series{Label: "get (" + label + ")"}
	opt := benchOptions()
	opt.UseMPI3 = true
	opt.NoShm = true
	nranks := cfg.maxOwners() + 1
	var runErr error
	j, err := harness.NewJob(plat, nranks, harness.ImplARMCIMPI, opt)
	if err != nil {
		return put, get, err
	}
	err = j.Eng.Run(nranks, func(pr *sim.Proc) {
		env := newGAEnv(j, pr)
		env.BlockingFanout = blocking
		a, err := env.Create("nbfanout", ga.F64, []int{nranks * cfg.BlkElems})
		if err != nil {
			runErr = err
			return
		}
		rt := env.Rt
		vals := make([]float64, cfg.maxOwners()*cfg.BlkElems)
		for _, k := range cfg.Owners {
			// The patch starts at owner 1's block, so every spanned owner
			// is remote to the issuing rank 0.
			lo := []int{cfg.BlkElems}
			hi := []int{cfg.BlkElems*(1+k) - 1}
			n := k * cfg.BlkElems
			env.Sync()
			if env.Me() == 0 {
				if err := a.Put(lo, hi, vals[:n]); err != nil {
					runErr = err
					return
				}
				rt.AllFence()
				start := rt.Proc().Now()
				for i := 0; i < cfg.Iters; i++ {
					if err := a.Put(lo, hi, vals[:n]); err != nil {
						runErr = err
						return
					}
					rt.AllFence()
				}
				put.X = append(put.X, float64(k))
				put.Y = append(put.Y, perOpMicros(rt.Proc().Now()-start, cfg.Iters))
				if err := a.Get(lo, hi, vals[:n]); err != nil {
					runErr = err
					return
				}
				start = rt.Proc().Now()
				for i := 0; i < cfg.Iters; i++ {
					if err := a.Get(lo, hi, vals[:n]); err != nil {
						runErr = err
						return
					}
				}
				get.X = append(get.X, float64(k))
				get.Y = append(get.Y, perOpMicros(rt.Proc().Now()-start, cfg.Iters))
			}
			env.Sync()
		}
		if err := a.Destroy(); err != nil {
			runErr = err
		}
	})
	if err != nil {
		return put, get, err
	}
	return put, get, runErr
}

// perOpMicros converts an iterated elapsed time to microseconds per
// operation.
func perOpMicros(d sim.Time, iters int) float64 {
	return d.Seconds() / float64(iters) * 1e6
}

// AblationNbFanout regenerates the GA fan-out aggregation ablation:
// per-operation latency of GA Put (to remote completion) and GA Get
// versus the number of owning processes the patch spans, with the
// per-owner operations issued blocking versus nonblocking + WaitAll.
// The blocking discipline pays a completion round trip (put) or a full
// transfer wait (get) per owner; aggregation overlaps them, so the gap
// must widen with the owner count.
func AblationNbFanout(plat *platform.Platform, cfg NbFanoutConfig) (*Figure, error) {
	fig := &Figure{
		Name:   "ablation-nbfanout",
		Title:  fmt.Sprintf("GA fan-out aggregation ablation, %s", plat.System),
		XLabel: "owning processes spanned",
		YLabel: "latency per operation (microseconds)",
	}
	for _, blocking := range []bool{true, false} {
		put, get, err := nbFanoutVariant(plat, blocking, cfg)
		if err != nil {
			return nil, fmt.Errorf("bench: ablation-nbfanout %s/%s: %w", plat.Name, put.Label, err)
		}
		fig.Series = append(fig.Series, put, get)
	}
	return fig, nil
}
