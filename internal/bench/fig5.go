package bench

import (
	"fmt"

	"repro/internal/armci"
	"repro/internal/fabric"
	"repro/internal/harness"
	"repro/internal/obs"
	"repro/internal/platform"
	"repro/internal/sim"
)

// Fig5Config tunes the interoperability sweep.
type Fig5Config struct {
	MinExp, MaxExp int
	Iters          int

	// Obs, when non-nil, records per-rank metrics and trace spans for
	// every job in the sweep.
	Obs *obs.Recorder
}

// DefaultFig5 mirrors the paper's 2^2..2^22 sweep.
func DefaultFig5() Fig5Config { return Fig5Config{MinExp: 2, MaxExp: 22, Iters: 3} }

// QuickFig5 is a reduced sweep for tests.
func QuickFig5() Fig5Config { return Fig5Config{MinExp: 4, MaxExp: 18, Iters: 2} }

// fig5Curve describes one of the four buffer/runtime pairings of
// Figure 5 (measured on the InfiniBand platform).
type fig5Curve struct {
	label string
	impl  harness.Impl
	// bufDomain is the allocator of the local buffer; prepinned applies
	// to that domain's allocations.
	bufDomain fabric.Domain
	prepinned bool
	// evict forces the buffer out of the runtime's registration cache
	// before every transfer, measuring the first-touch path ("MPI has
	// not touched the given buffer").
	evict bool
}

func fig5Curves() []fig5Curve {
	return []fig5Curve{
		{label: "ARMCI-IB, ARMCI Alloc", impl: harness.ImplNative, bufDomain: fabric.DomainARMCI, prepinned: true},
		{label: "MPI, MPI Touch", impl: harness.ImplARMCIMPI, bufDomain: fabric.DomainMPI},
		{label: "ARMCI-IB, MPI Touch", impl: harness.ImplNative, bufDomain: fabric.DomainMPI},
		{label: "MPI, ARMCI Alloc", impl: harness.ImplARMCIMPI, bufDomain: fabric.DomainARMCI, prepinned: true, evict: true},
	}
}

// InteropBandwidth measures contiguous get bandwidth with the local
// buffer allocated by a chosen runtime's allocator, reproducing the
// mismatched-registration effects of Figure 5.
func InteropBandwidth(plat *platform.Platform, c fig5Curve, cfg Fig5Config) (Series, error) {
	sizes := pow2s(cfg.MinExp, cfg.MaxExp)
	maxSize := sizes[len(sizes)-1]
	series := Series{Label: c.label}
	nranks := 2 * plat.CoresPerNode
	target := plat.CoresPerNode
	var bwErr error
	j, err := harness.NewJobObs(plat, nranks, c.impl, benchOptions(), cfg.Obs)
	if err != nil {
		return series, err
	}
	myDomain := fabric.DomainARMCI
	if c.impl == harness.ImplARMCIMPI {
		myDomain = fabric.DomainMPI
	}
	err = j.Eng.Run(nranks, func(p *sim.Proc) {
		rt := j.Runtime(p)
		addrs, err := rt.Malloc(maxSize)
		if err != nil {
			bwErr = err
			return
		}
		if rt.Rank() == 0 {
			// Allocate the local buffer from the requested allocator,
			// bypassing the runtime (this is the other runtime's memory).
			reg := j.M.Space(0).Alloc(maxSize, c.bufDomain, c.prepinned)
			local := armci.Addr{Rank: 0, VA: reg.VA}
			for _, size := range sizes {
				if !c.evict {
					// Touch once so on-demand registration is cached.
					if err := rt.Get(addrs[target], local, size); err != nil {
						bwErr = err
						return
					}
				}
				start := rt.Proc().Now()
				for i := 0; i < cfg.Iters; i++ {
					if c.evict {
						j.M.Unpin(reg, myDomain)
					}
					if err := rt.Get(addrs[target], local, size); err != nil {
						bwErr = err
						return
					}
				}
				elapsed := rt.Proc().Now() - start
				series.X = append(series.X, float64(size))
				series.Y = append(series.Y, bandwidth(int64(size)*int64(cfg.Iters), elapsed))
			}
		}
		rt.Barrier()
		if err := rt.Free(addrs[rt.Rank()]); err != nil {
			bwErr = err
		}
	})
	if err != nil {
		return series, err
	}
	return series, bwErr
}

// Fig5 regenerates Figure 5 on the InfiniBand platform: contiguous get
// bandwidth for the four buffer/runtime pairings.
func Fig5(cfg Fig5Config) (*Figure, error) {
	plat := platform.Get(platform.InfiniBand)
	fig := &Figure{
		Name:   "fig5-ib",
		Title:  "Interoperability: get bandwidth vs. local buffer allocator, " + plat.System,
		XLabel: "transfer size (bytes)",
		YLabel: "bandwidth (GB/s)",
	}
	for _, c := range fig5Curves() {
		s, err := InteropBandwidth(plat, c, cfg)
		if err != nil {
			return nil, fmt.Errorf("bench: fig5 %q: %w", c.label, err)
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}
