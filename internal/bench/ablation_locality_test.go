package bench

import (
	"testing"

	"repro/internal/platform"
)

// TestLocalityAblationSameNodeWin is the figure's acceptance criterion:
// for same-node targets the dartmpi tier classifier must beat the
// pure-RMA armci-mpi flavor at every size (it turns those transfers
// into shared-segment copies instead of loopback RMA).
func TestLocalityAblationSameNodeWin(t *testing.T) {
	ib := platform.Get(platform.InfiniBand)
	fig, err := AblationLocality(ib, QuickLocalityAblation())
	if err != nil {
		t.Fatal(err)
	}
	for _, op := range []string{"put", "get"} {
		dart := fig.Get("intra " + op + " (dartmpi)")
		rma := fig.Get("intra " + op + " (armci-mpi rma)")
		if dart == nil || rma == nil {
			t.Fatalf("missing intra-node %s series", op)
		}
		for i := range dart.Y {
			if dart.Y[i] <= rma.Y[i] {
				t.Errorf("intra-node %s: dartmpi (%.4f) not faster than armci-mpi rma (%.4f) at %v bytes",
					op, dart.Y[i], rma.Y[i], dart.X[i])
			}
		}
	}
}

// TestLocalityAblationStagingToggle asserts the hierarchical path's
// ablation switch actually changes the cross-node curves above the
// staging threshold: a non-leader origin's large transfers take a
// different route with staging on vs off, while below the threshold
// the pair coincides.
func TestLocalityAblationStagingToggle(t *testing.T) {
	ib := platform.Get(platform.InfiniBand)
	fig, err := AblationLocality(ib, QuickLocalityAblation())
	if err != nil {
		t.Fatal(err)
	}
	for _, op := range []string{"put", "get"} {
		on := fig.Get("inter " + op + " (dartmpi)")
		off := fig.Get("inter " + op + " (dartmpi nostage)")
		if on == nil || off == nil {
			t.Fatalf("missing inter-node %s series", op)
		}
		var diverged bool
		for i := range on.Y {
			if on.X[i] < 8192 && on.Y[i] != off.Y[i] {
				t.Errorf("inter-node %s: staging toggle changed a sub-threshold size %v (%v vs %v)",
					op, on.X[i], on.Y[i], off.Y[i])
			}
			if on.X[i] >= 8192 && on.Y[i] != off.Y[i] {
				diverged = true
			}
		}
		if !diverged {
			t.Errorf("inter-node %s: staging toggle changed nothing above the threshold", op)
		}
	}
}

// TestLocalityAblationDeterministic reruns the quick sweep and demands
// bit-identical output, which is what lets CI byte-compare the
// committed BENCH_ablation-locality.json artifact.
func TestLocalityAblationDeterministic(t *testing.T) {
	ib := platform.Get(platform.InfiniBand)
	a, err := AblationLocality(ib, QuickLocalityAblation())
	if err != nil {
		t.Fatal(err)
	}
	b, err := AblationLocality(ib, QuickLocalityAblation())
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Series) != len(b.Series) {
		t.Fatalf("series count differs: %d vs %d", len(a.Series), len(b.Series))
	}
	for i := range a.Series {
		sa, sb := a.Series[i], b.Series[i]
		if sa.Label != sb.Label || len(sa.Y) != len(sb.Y) {
			t.Fatalf("series %d shape differs", i)
		}
		for k := range sa.Y {
			if sa.X[k] != sb.X[k] || sa.Y[k] != sb.Y[k] {
				t.Errorf("%s: rerun diverges at point %d", sa.Label, k)
			}
		}
	}
}

func BenchmarkAblationLocality(b *testing.B) {
	ib := platform.Get(platform.InfiniBand)
	cfg := QuickLocalityAblation()
	for i := 0; i < b.N; i++ {
		if _, err := AblationLocality(ib, cfg); err != nil {
			b.Fatal(err)
		}
	}
}
