package bench

import (
	"fmt"

	"repro/internal/armci"
	"repro/internal/armcimpi"
	"repro/internal/harness"
	"repro/internal/obs"
	"repro/internal/platform"
)

// LocalityAblationConfig tunes the cross-runtime locality ablation.
type LocalityAblationConfig struct {
	MinExp, MaxExp int // contiguous transfer sizes 2^MinExp .. 2^MaxExp
	Iters          int

	// Obs, when non-nil, records per-rank metrics and trace spans for
	// every job in the sweep.
	Obs *obs.Recorder
}

// DefaultLocalityAblation spans small messages through the bandwidth
// regime, crossing the dartmpi leader-staging threshold (8 KiB)
// mid-sweep so the hierarchical knee is visible.
func DefaultLocalityAblation() LocalityAblationConfig {
	return LocalityAblationConfig{MinExp: 3, MaxExp: 22, Iters: 3}
}

// QuickLocalityAblation is a reduced sweep for tests and CI.
func QuickLocalityAblation() LocalityAblationConfig {
	return LocalityAblationConfig{MinExp: 3, MaxExp: 16, Iters: 2}
}

// locVariant is one runtime column of the ablation: an ARMCI
// implementation plus the option toggles that define its routing
// policy.
type locVariant struct {
	key   string // series label suffix
	impl  harness.Impl
	tweak func(*armcimpi.Options)
}

// locVariants returns the runtime columns in presentation order. The
// armci-mpi pair isolates the shm fast path; the dartmpi pair isolates
// leader staging on top of full locality tiering.
func locVariants() []locVariant {
	return []locVariant{
		{key: "native", impl: harness.ImplNative},
		{key: "armci-ds", impl: harness.ImplDataServer},
		{key: "armci-mpi shm", impl: harness.ImplARMCIMPI},
		{key: "armci-mpi rma", impl: harness.ImplARMCIMPI,
			tweak: func(o *armcimpi.Options) { o.NoShm = true }},
		{key: "dartmpi", impl: harness.ImplDartMPI},
		{key: "dartmpi nostage", impl: harness.ImplDartMPI,
			tweak: func(o *armcimpi.Options) { o.NoLeaderStaging = true }},
	}
}

// locContigBandwidth measures contiguous op bandwidth for one runtime
// variant and placement. The origin is rank 1 — a non-leader core — so
// dartmpi's hierarchical path must stage inter-node transfers through
// its node leader rather than short-circuiting at the origin.
func locContigBandwidth(plat *platform.Platform, op ContigOp, v locVariant, intra bool, cfg LocalityAblationConfig) (Series, error) {
	sizes := pow2s(cfg.MinExp, cfg.MaxExp)
	maxSize := sizes[len(sizes)-1]
	place, target := "inter", plat.CoresPerNode
	if intra {
		place, target = "intra", 0
	}
	series := Series{Label: fmt.Sprintf("%s %s (%s)", place, op, v.key)}
	opt := benchOptions()
	if v.tweak != nil {
		v.tweak(&opt)
	}
	nranks := 2 * plat.CoresPerNode
	var bwErr error
	_, err := harness.RunObs(plat, nranks, v.impl, opt, cfg.Obs, func(rt armci.Runtime) {
		addrs, err := rt.Malloc(maxSize)
		if err != nil {
			bwErr = err
			return
		}
		local := rt.MallocLocal(maxSize)
		if rt.Rank() == 1 {
			for _, size := range sizes {
				if err := doContig(rt, op, local, addrs[target], size); err != nil {
					bwErr = err
					return
				}
				rt.Fence(target)
				start := rt.Proc().Now()
				for i := 0; i < cfg.Iters; i++ {
					if err := doContig(rt, op, local, addrs[target], size); err != nil {
						bwErr = err
						return
					}
				}
				rt.Fence(target)
				elapsed := rt.Proc().Now() - start
				series.X = append(series.X, float64(size))
				series.Y = append(series.Y, bandwidth(int64(size)*int64(cfg.Iters), elapsed))
			}
		}
		rt.Barrier()
		if err := rt.Free(addrs[rt.Rank()]); err != nil {
			bwErr = err
		}
	})
	if err != nil {
		return series, err
	}
	return series, bwErr
}

// AblationLocality regenerates the locality-routing ablation on one
// platform: contiguous put/get bandwidth for a same-node and a
// cross-node target under all four runtimes, plus the armci-mpi NoShm
// and dartmpi NoLeaderStaging toggles. Same-node dartmpi must beat the
// pure-RMA armci-mpi flavor (the tier classifier turns those transfers
// into shared-segment copies); cross-node, the dartmpi pair brackets
// what leader staging costs or saves a non-leader origin.
func AblationLocality(plat *platform.Platform, cfg LocalityAblationConfig) (*Figure, error) {
	fig := &Figure{
		Name:   "ablation-locality",
		Title:  fmt.Sprintf("Locality-aware runtime ablation, %s", plat.System),
		XLabel: "transfer size (bytes)",
		YLabel: "bandwidth (GB/s)",
	}
	for _, op := range []ContigOp{OpPut, OpGet} {
		for _, intra := range []bool{true, false} {
			for _, v := range locVariants() {
				s, err := locContigBandwidth(plat, op, v, intra, cfg)
				if err != nil {
					return nil, fmt.Errorf("bench: ablation-locality %s/%s: %w", plat.Name, s.Label, err)
				}
				fig.Series = append(fig.Series, s)
			}
		}
	}
	return fig, nil
}
