// Package platform defines the four experimental platforms of the
// paper's Table II, with fabric hardware parameters and per-runtime
// tuning calibrated so that the published bandwidth and scaling curve
// shapes (Figures 3-6) are reproduced by the structural cost model.
//
// Hardware numbers are first-order public characteristics of the real
// machines (link bandwidths, latencies, core speeds); tuning factors
// encode the software-quality differences the paper reports (e.g. the
// aggressively tuned native ARMCI on InfiniBand, the under-tuned
// development-release native ARMCI on the Cray XE6 Gemini network, the
// MVAPICH2 batched-epoch queue slowdown).
package platform

import (
	"fmt"
	"sort"

	"repro/internal/fabric"
)

// Tuning captures software-stack efficiency of one runtime (native
// ARMCI or the MPI library) on one platform.
type Tuning struct {
	// BandwidthFrac is the fraction of the NIC link bandwidth the
	// runtime's large-transfer path achieves (1.0 = perfectly tuned).
	BandwidthFrac float64
	// LargeFrac, when nonzero, replaces BandwidthFrac for transfers of
	// at least LargeAt bytes — runtimes whose protocol switch is
	// poorly tuned lose bandwidth only beyond a message size (the
	// Cray XT5 MPI behaviour in Figure 3).
	LargeFrac float64
	LargeAt   int
	// OpOverheadNs is the per-operation software overhead at the origin
	// (descriptor setup, protocol selection).
	OpOverheadNs float64
	// AccumRate overrides the platform's target-side accumulate
	// processing rate (B/s); 0 means use the fabric default.
	AccumRate float64
	// QueueSlowdownNs, when nonzero, adds QueueSlowdownNs*k to the cost
	// of the k-th operation queued in a single epoch beyond
	// QueueThreshold ops. This models the MPICH2/MVAPICH2 performance
	// defect with long passive-mode epochs reported in SectionVII.A.
	QueueSlowdownNs float64
	QueueThreshold  int
	// ScalePenaltyNs adds ScalePenaltyNs*log2(nprocs) per remote
	// operation, modeling runtimes whose target-side agents degrade at
	// scale (the XE6 development-release native ARMCI).
	ScalePenaltyNs float64
	// RmwRTTs is the number of network round trips a single
	// read-modify-write costs (native NIC atomics: 1; mutex-based
	// emulation pays its own structural cost and ignores this).
	RmwRTTs int
	// PrepinAlloc reports whether the runtime's allocator returns
	// pre-registered memory (ARMCI's pinned pools do; MVAPICH2's
	// MPI_Alloc_mem does not — Figure 5 discussion).
	PrepinAlloc bool
	// NoProgressDelayNs models an MPI library run *without* asynchronous
	// progress (SectionV.F: some implementations make it a runtime
	// option because of its cost): every target-side action waits this
	// long, on average, for the target to enter the MPI library. 0 =
	// asynchronous progress enabled (the paper's requirement).
	NoProgressDelayNs float64
}

// Platform is one Table II machine: shared hardware parameters plus
// the two runtime tunings.
type Platform struct {
	fabric.Params
	System       string // machine name from Table II
	Interconnect string
	MPIVersion   string
	TableNodes   int // node count reported in Table II
	SocketsDesc  string

	Native Tuning // best-available native ARMCI
	MPI    Tuning // vendor MPI one-sided path
}

// Names of the four platforms, in Table II order.
const (
	BlueGeneP  = "bgp"
	InfiniBand = "ib"
	CrayXT5    = "xt5"
	CrayXE6    = "xe6"
)

var registry = map[string]*Platform{
	BlueGeneP: {
		System:       "IBM Blue Gene/P (Intrepid)",
		Interconnect: "3D Torus",
		MPIVersion:   "IBM MPI",
		TableNodes:   40960,
		SocketsDesc:  "1 x 4",
		Params: fabric.Params{
			Name:            BlueGeneP,
			Nodes:           1024,
			CoresPerNode:    4,
			LatencyNs:       2750, // 3D torus one-way
			Bandwidth:       425e6,
			MsgOverhead:     600,
			LocalLatencyNs:  350,
			LocalBandwidth:  2.0e9,
			CopyRate:        1.1e9, // 850 MHz PPC450: slow packing
			Flops:           3.4e9,
			PageSize:        4096,
			PinPageNs:       0, // BG/P DMA needs no per-page pinning
			BounceThreshold: 0,
			BounceRate:      1.1e9,
			UnpinnedRate:    300e6,
			AccumRate:       500e6,
			ShmCopyRate:     3.2e9, // node-local load/store, DDR2 on PPC450
		},
		Native: Tuning{BandwidthFrac: 0.92, OpOverheadNs: 700, RmwRTTs: 1, PrepinAlloc: true},
		MPI:    Tuning{BandwidthFrac: 0.85, OpOverheadNs: 1100, AccumRate: 420e6},
	},
	InfiniBand: {
		System:       "Cluster (Fusion)",
		Interconnect: "InfiniBand QDR",
		MPIVersion:   "MVAPICH2 1.6",
		TableNodes:   320,
		SocketsDesc:  "2 x 4",
		Params: fabric.Params{
			Name:            InfiniBand,
			Nodes:           320,
			CoresPerNode:    8,
			LatencyNs:       1400,
			Bandwidth:       3.4e9,
			MsgOverhead:     250,
			LocalLatencyNs:  120,
			LocalBandwidth:  6.0e9,
			CopyRate:        4.5e9,
			Flops:           10.6e9, // 2.66 GHz Xeon, 4 flops/cycle
			PageSize:        4096,
			PinPageNs:       220000, // on-demand ibv_reg_mr is expensive
			BounceThreshold: 8192,   // MVAPICH bounce-buffer threshold (paper SectionVII.B)
			BounceRate:      2.2e9,
			UnpinnedRate:    1.2e9, // ARMCI's pipelined non-pinned path
			AccumRate:       2.6e9,
			ShmCopyRate:     18e9, // intra-socket memcpy, DDR3 Nehalem
		},
		Native: Tuning{BandwidthFrac: 0.97, OpOverheadNs: 300, AccumRate: 8e9, RmwRTTs: 1, PrepinAlloc: true},
		MPI: Tuning{
			BandwidthFrac: 0.88, OpOverheadNs: 650, AccumRate: 0.85e9,
			QueueSlowdownNs: 8, QueueThreshold: 64,
		},
	},
	CrayXT5: {
		System:       "Cray XT5 (Jaguar PF)",
		Interconnect: "Seastar 2+",
		MPIVersion:   "Cray MPI",
		TableNodes:   18688,
		SocketsDesc:  "2 x 6",
		Params: fabric.Params{
			Name:            CrayXT5,
			Nodes:           2048,
			CoresPerNode:    12,
			LatencyNs:       5600,
			Bandwidth:       2.1e9,
			MsgOverhead:     400,
			LocalLatencyNs:  150,
			LocalBandwidth:  5.5e9,
			CopyRate:        4.0e9,
			Flops:           10.4e9,
			PageSize:        4096,
			PinPageNs:       0, // Portals: memory pre-registered at job launch
			BounceThreshold: 0,
			BounceRate:      4.0e9,
			UnpinnedRate:    1.0e9,
			AccumRate:       1.6e9,
			ShmCopyRate:     10e9, // Istanbul-socket memcpy
		},
		Native: Tuning{BandwidthFrac: 0.95, OpOverheadNs: 400, RmwRTTs: 1, PrepinAlloc: true},
		// Cray MPI's portals RMA path loses half the bandwidth on large
		// transfers (paper: "beyond 32 kB ... half of the bandwidth").
		MPI: Tuning{BandwidthFrac: 0.92, LargeFrac: 0.48, LargeAt: 1 << 16, OpOverheadNs: 700, AccumRate: 1.1e9},
	},
	CrayXE6: {
		System:       "Cray XE6 (Hopper II)",
		Interconnect: "Gemini",
		MPIVersion:   "Cray MPI",
		TableNodes:   6392,
		SocketsDesc:  "2 x 12",
		Params: fabric.Params{
			Name:            CrayXE6,
			Nodes:           1024,
			CoresPerNode:    24,
			LatencyNs:       1600,
			Bandwidth:       6.0e9,
			MsgOverhead:     300,
			LocalLatencyNs:  130,
			LocalBandwidth:  7.0e9,
			CopyRate:        4.8e9,
			Flops:           8.4e9,
			PageSize:        4096,
			PinPageNs:       0, // Gemini uGNI memory registered at startup here
			BounceThreshold: 0,
			BounceRate:      4.8e9,
			UnpinnedRate:    0.9e9,
			AccumRate:       1.05e9,
			ShmCopyRate:     12e9, // Magny-Cours-socket memcpy
		},
		// The native ARMCI port for Gemini was a development release:
		// it reaches only a quarter of the link bandwidth and its
		// target-side agent degrades with scale (Figure 6: CCSD worsens,
		// (T) flattens).
		Native: Tuning{
			BandwidthFrac: 0.26, OpOverheadNs: 900, AccumRate: 0.80e9,
			ScalePenaltyNs: 6000, RmwRTTs: 1, PrepinAlloc: true,
		},
		MPI: Tuning{BandwidthFrac: 0.52, OpOverheadNs: 500, AccumRate: 1.0e9},
	},
}

// Get returns the named platform. Valid names are the exported
// constants; Get panics on an unknown name (a programming error).
func Get(name string) *Platform {
	p, ok := registry[name]
	if !ok {
		panic(fmt.Sprintf("platform: unknown platform %q", name))
	}
	return p
}

// Lookup is Get with an error instead of a panic, for CLI use.
func Lookup(name string) (*Platform, error) {
	p, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("platform: unknown platform %q (have %v)", name, Names())
	}
	return p, nil
}

// Names lists the registered platform names in Table II order.
func Names() []string {
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	order := map[string]int{BlueGeneP: 0, InfiniBand: 1, CrayXT5: 2, CrayXE6: 3}
	sort.Slice(names, func(i, j int) bool { return order[names[i]] < order[names[j]] })
	return names
}

// All returns the platforms in Table II order.
func All() []*Platform {
	ps := make([]*Platform, 0, len(registry))
	for _, n := range Names() {
		ps = append(ps, registry[n])
	}
	return ps
}

// TableII formats the platform as its row in the paper's Table II.
func (p *Platform) TableII() string {
	mem := map[string]string{BlueGeneP: "2 GB", InfiniBand: "36 GB", CrayXT5: "16 GB", CrayXE6: "32 GB"}
	return fmt.Sprintf("%-28s %6d  %-6s %-6s %-15s %s",
		p.System, p.TableNodes, p.SocketsDesc, mem[p.Name], p.Interconnect, p.MPIVersion)
}

// EffBandwidth returns the large-transfer bandwidth (B/s) of the given
// tuning on this platform.
func (p *Platform) EffBandwidth(t *Tuning) float64 {
	return p.Bandwidth * t.BandwidthFrac
}
