package platform

import (
	"strings"
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	names := Names()
	want := []string{BlueGeneP, InfiniBand, CrayXT5, CrayXE6}
	if len(names) != len(want) {
		t.Fatalf("Names() = %v", names)
	}
	for i, n := range want {
		if names[i] != n {
			t.Errorf("Names()[%d] = %q, want %q (Table II order)", i, names[i], n)
		}
	}
	if len(All()) != 4 {
		t.Error("All() should return 4 platforms")
	}
}

func TestGetAndLookup(t *testing.T) {
	if Get(InfiniBand).System != "Cluster (Fusion)" {
		t.Error("Get(ib) wrong platform")
	}
	if _, err := Lookup("nope"); err == nil {
		t.Error("Lookup of unknown platform succeeded")
	}
	defer func() {
		if recover() == nil {
			t.Error("Get of unknown platform did not panic")
		}
	}()
	Get("nope")
}

func TestParamsValid(t *testing.T) {
	for _, p := range All() {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
		if p.MaxRanks() < 128 {
			t.Errorf("%s: MaxRanks %d too small for the scaling sweeps", p.Name, p.MaxRanks())
		}
		for _, tun := range []*Tuning{&p.Native, &p.MPI} {
			if tun.BandwidthFrac <= 0 || tun.BandwidthFrac > 1 {
				t.Errorf("%s: bandwidth fraction %v out of (0,1]", p.Name, tun.BandwidthFrac)
			}
			if tun.OpOverheadNs < 0 {
				t.Errorf("%s: negative op overhead", p.Name)
			}
		}
	}
}

func TestTableIIRows(t *testing.T) {
	rows := map[string][]string{
		BlueGeneP:  {"Intrepid", "40960", "3D Torus", "IBM MPI"},
		InfiniBand: {"Fusion", "320", "InfiniBand QDR", "MVAPICH2 1.6"},
		CrayXT5:    {"Jaguar PF", "18688", "Seastar 2+", "Cray MPI"},
		CrayXE6:    {"Hopper II", "6392", "Gemini", "Cray MPI"},
	}
	for name, wants := range rows {
		row := Get(name).TableII()
		for _, w := range wants {
			if !strings.Contains(row, w) {
				t.Errorf("%s Table II row %q missing %q", name, row, w)
			}
		}
	}
}

func TestPaperCalibrationInvariants(t *testing.T) {
	// The structural relations behind the figures.
	ib := Get(InfiniBand)
	if ib.PinPageNs <= 0 || ib.BounceThreshold != 8192 {
		t.Error("IB must model on-demand registration with an 8 KiB bounce threshold (Figure 5)")
	}
	if ib.MPI.QueueSlowdownNs <= 0 {
		t.Error("IB MPI must model the long-epoch queue defect (SectionVII.A)")
	}
	if ib.Native.PrepinAlloc != true || ib.MPI.PrepinAlloc != false {
		t.Error("IB: ARMCI pre-pins allocations, MVAPICH2 does not (Figure 5)")
	}
	xt := Get(CrayXT5)
	if xt.MPI.LargeFrac <= 0 || xt.MPI.LargeFrac > 0.6 {
		t.Error("XT MPI must lose ~half the bandwidth on large transfers (Figure 3)")
	}
	xe := Get(CrayXE6)
	if xe.Native.BandwidthFrac >= xe.MPI.BandwidthFrac {
		t.Error("XE native must be the under-tuned development release (Figure 3)")
	}
	if xe.Native.ScalePenaltyNs <= 0 {
		t.Error("XE native must degrade with scale (Figure 6)")
	}
	bgp := Get(BlueGeneP)
	if bgp.CopyRate > 2e9 {
		t.Error("BG/P packing must be slow (SectionVII.A: slow cores impede data packing)")
	}
	if e := ib.EffBandwidth(&ib.Native); e <= ib.EffBandwidth(&ib.MPI) {
		t.Error("IB native must out-bandwidth MPI")
	}
}
