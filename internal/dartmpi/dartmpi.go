// Package dartmpi is a locality-aware dual-window ARMCI runtime in the
// style of DART-MPI ("DART-MPI: An MPI-based Implementation of a PGAS
// Runtime System" and "Leveraging MPI-3 Shared-Memory Extensions for
// Efficient PGAS Runtime Systems"). Where armcimpi treats every target
// uniformly over MPI RMA, dartmpi allocates every ARMCI segment twice
// over: once through the armcimpi GMR layer (the inter-node RMA window,
// created with plain MPI_Win_create) and once as a node-local
// MPI_Win_allocate_shared window spanning the ranks of the caller's
// node. A translation table maps <rank, offset> to the right window,
// and a locality classifier picks a tier per operation:
//
//	self      - direct load/store on the caller's own memory
//	same-node - one shared-memory window epoch (lock, shm copy, unlock)
//	remote    - the engine's RMA transfer plans, large transfers
//	            staged through the node-leader rank (hierarchical
//	            put/get behind a per-node staging pipe)
//
// The runtime itself is the armcimpi transfer-plan engine: dartmpi
// embeds armcimpi.Runtime and contributes exactly two things — this
// file's dual-window allocation bookkeeping, and the RoutePolicy in
// policy.go that the engine consults once per operation. The engine's
// plan compiler and executor carry every tier out (self-copy and
// node-window epochs are plan kinds, leader staging is a plan
// prologue), so strided/IOV compilation, batching, conflict scanning,
// epochs, fences, mutexes, RMW, groups, and access modes are shared,
// not forked. The engine's own options have NoShm forced on, keeping
// the wire tier pure RMA; the user's NoShm lives in the policy, which
// collapses every decision onto that wire path.
package dartmpi

import (
	"fmt"
	"sort"

	"repro/internal/armci"
	"repro/internal/armcimpi"
	"repro/internal/fabric"
	"repro/internal/mpi"
)

// DefaultStageThreshold is the smallest remote transfer, in bytes,
// staged through the node leader when Options.StageThreshold is 0.
const DefaultStageThreshold = 8192

// World is the shared state of the dartmpi job: the node-window
// translation table plus the wrapped armcimpi world that owns the
// inter-node RMA windows.
type World struct {
	Mpi   *mpi.World
	Inner *armcimpi.World

	allocs []*alloc
	ids    map[int]*alloc
	nextID int

	// spans holds each world rank's allocations as a VA-sorted interval
	// list, mirroring the armcimpi GMR index: find resolves
	// <rank, address> in O(log #allocations) instead of scanning every
	// allocation on every near-tier classification.
	spans map[int][]dartSpan

	// testAttachFault, when set, is invoked at the top of attachNodeWin
	// and its error returned as if window creation failed — the
	// error-injection point for the Malloc cleanup tests. Tests must set
	// it so every rank of the collective fails alike.
	testAttachFault func(bytes int) error

	// Counters, updated by the policy's Count/Staged hooks from the
	// engine's single routing decision point.
	SelfOps     int64 // ops routed to the load-store tier
	NodeOps     int64 // ops routed to the same-node shm tier
	RemoteOps   int64 // ops routed to the inter-node RMA tier
	Staged      int64 // remote transfers staged through the node leader
	StagedBytes int64 // bytes copied through leader staging buffers
}

// alloc is one collective allocation's node-window record: the same
// membership metadata armcimpi keeps for its GMR, plus each member's
// handle of its node-local shared window.
type alloc struct {
	id       int
	group    []int        // world ranks (ascending)
	rankOf   map[int]int  // world rank -> group rank
	addrs    []armci.Addr // base address per group rank (Nil if size 0)
	sizes    []int
	nodeWins map[int]*mpi.Win // per-world-rank handle of its node window
}

// NewWorld creates dartmpi state on an MPI world. The inner armcimpi
// world shares the same MPI world, so collectives, observability, and
// the fabric are common to both layers.
func NewWorld(mw *mpi.World) *World {
	return &World{
		Mpi:   mw,
		Inner: armcimpi.NewWorld(mw),
		ids:   map[int]*alloc{},
	}
}

// dartSpan is one rank-local VA interval [lo, hi) of an allocation.
type dartSpan struct {
	lo, hi int64
	a      *alloc
	gr     int // the allocation's group rank on this world rank
}

// find locates the allocation fully containing [addr, addr+n) and
// returns its group rank for addr.Rank, by binary search over the
// rank's sorted interval list. Containment (not just base membership)
// is required, so the near tiers can never overrun a slice;
// out-of-range accesses fall through to the wire path, which reports
// them with the engine's usual diagnostics.
func (w *World) find(addr armci.Addr, n int) (*alloc, int, bool) {
	spans := w.spans[addr.Rank]
	i := sort.Search(len(spans), func(i int) bool { return spans[i].hi > addr.VA })
	if i < len(spans) && addr.VA >= spans[i].lo && addr.VA+int64(n) <= spans[i].hi {
		return spans[i].a, spans[i].gr, true
	}
	return nil, 0, false
}

// findByBase locates the allocation whose slice on key.Rank starts
// exactly at key.VA (the leader-election lookup during Free).
func (w *World) findByBase(key armci.Addr) *alloc {
	spans := w.spans[key.Rank]
	i := sort.Search(len(spans), func(i int) bool { return spans[i].lo >= key.VA })
	if i < len(spans) && spans[i].lo == key.VA {
		return spans[i].a
	}
	return nil
}

// register enters an allocation into the translation table and the
// span index.
func (w *World) register(a *alloc) {
	a.id = w.nextID
	w.nextID++
	w.allocs = append(w.allocs, a)
	w.ids[a.id] = a
	if w.spans == nil {
		w.spans = map[int][]dartSpan{}
	}
	for gr, world := range a.group {
		if a.sizes[gr] == 0 {
			continue
		}
		lo := a.addrs[gr].VA
		sp := dartSpan{lo: lo, hi: lo + int64(a.sizes[gr]), a: a, gr: gr}
		list := w.spans[world]
		i := sort.Search(len(list), func(i int) bool { return list[i].lo >= sp.lo })
		list = append(list, dartSpan{})
		copy(list[i+1:], list[i:])
		list[i] = sp
		w.spans[world] = list
	}
}

// unregister removes an allocation from the table and the span index.
func (w *World) unregister(a *alloc) {
	for i, e := range w.allocs {
		if e == a {
			w.allocs = append(w.allocs[:i], w.allocs[i+1:]...)
			break
		}
	}
	delete(w.ids, a.id)
	for gr, world := range a.group {
		if a.sizes[gr] == 0 {
			continue
		}
		list := w.spans[world]
		for i := range list {
			if list[i].a == a && list[i].gr == gr {
				w.spans[world] = append(list[:i], list[i+1:]...)
				break
			}
		}
	}
}

// NumAllocs returns the number of live node-window allocations
// (diagnostics and leak tests).
func (w *World) NumAllocs() int { return len(w.allocs) }

// SetAttachFault installs (or, with nil, clears) the error-injection
// hook invoked at the top of attachNodeWin. Test hook: the fault is
// shared world state, so every rank of a collective fails alike.
func (w *World) SetAttachFault(f func(bytes int) error) { w.testAttachFault = f }

// Runtime is one rank's dartmpi handle: the shared transfer-plan
// engine itself, steered by the dart routing policy. Every ARMCI
// operation — contiguous, strided, IOV, blocking, nonblocking — is the
// promoted engine method; only allocation (the dual-window pair) and
// the policy are dartmpi's own.
type Runtime struct {
	*armcimpi.Runtime

	W *World
	// Opt holds the user's options. The embedded engine runs with NoShm
	// forced on (the wire tier is pure RMA); the policy consults this
	// copy for the user's NoShm, NoLeaderStaging, and StageThreshold.
	Opt armcimpi.Options
}

// New creates the per-rank dartmpi runtime handle: the shared engine
// with NoShm forced on (dartmpi owns the shared-memory tiers) and the
// dart routing policy installed. Under the user's own NoShm the policy
// collapses every decision onto the wire path.
func New(w *World, r *mpi.Rank, opt armcimpi.Options) *Runtime {
	engineOpt := opt
	engineOpt.NoShm = true
	rt := &Runtime{Runtime: armcimpi.New(w.Inner, r, engineOpt), W: w, Opt: opt}
	rt.SetRoutePolicy(dartPolicy{rt})
	return rt
}

var _ armci.Runtime = (*Runtime)(nil)

// Name identifies the implementation.
func (r *Runtime) Name() string { return "dartmpi" }

// stageThreshold resolves the leader-staging cutoff.
func (r *Runtime) stageThreshold() int {
	if r.Opt.StageThreshold > 0 {
		return r.Opt.StageThreshold
	}
	return DefaultStageThreshold
}

// Malloc collectively allocates globally accessible memory: the inner
// GMR (inter-node RMA window) plus the node-local shared window. If
// the node-window attach fails, the already-completed inner allocation
// is released (collectively — attach errors are symmetric across the
// group) so the GMR table does not leak a window and its memory.
func (r *Runtime) Malloc(bytes int) ([]armci.Addr, error) {
	addrs, err := r.Runtime.Malloc(bytes)
	if err != nil {
		return nil, err
	}
	world := r.R.CommWorld()
	if err := r.attachNodeWin(world, world.GroupShared(), addrs[r.Rank()], bytes); err != nil {
		if ferr := r.Runtime.Free(addrs[r.Rank()]); ferr != nil {
			return nil, fmt.Errorf("%w (inner free during cleanup also failed: %v)", err, ferr)
		}
		return nil, err
	}
	return addrs, nil
}

// MallocGroup allocates over an ARMCI group, with the same error-path
// cleanup as Malloc.
func (r *Runtime) MallocGroup(g *armci.Group, bytes int) ([]armci.Addr, error) {
	addrs, err := r.Runtime.MallocGroup(g, bytes)
	if err != nil {
		return nil, err
	}
	mine := addrs[g.RankOf(r.Rank())]
	if err := r.attachNodeWin(armci.GroupCommOf(g), g.Ranks, mine, bytes); err != nil {
		if ferr := r.Runtime.FreeGroup(g, mine); ferr != nil {
			return nil, fmt.Errorf("%w (inner free during cleanup also failed: %v)", err, ferr)
		}
		return nil, err
	}
	return addrs, nil
}

// attachNodeWin creates the allocation's node-local shared window (the
// second half of the dual-window pair) and enters it into the
// translation table. Under NoShm the near tiers are disabled, so no
// node window is created and every access rides the wire path.
func (r *Runtime) attachNodeWin(comm *mpi.Comm, members []int, myAddr armci.Addr, bytes int) error {
	if r.Opt.NoShm {
		return nil
	}
	if r.W.testAttachFault != nil {
		if err := r.W.testAttachFault(bytes); err != nil {
			return err
		}
	}
	m := r.W.Mpi.M
	me := r.Rank()
	// Split the allocation's communicator by node; ranks of one node
	// form the shared window's group.
	nodeComm := comm.Split(m.NodeOf(me), comm.Rank())
	var reg *fabric.Region
	var va int64
	if bytes > 0 {
		// Expose the memory the inner Malloc just allocated through the
		// node window too (the dual-window pair shares one segment).
		reg = m.Space(me).Find(myAddr.VA, bytes)
		if reg == nil {
			return fmt.Errorf("dartmpi: inner allocation region not found on rank %d", me)
		}
		va = myAddr.VA
	}
	win, err := mpi.WinCreateShared(nodeComm, reg)
	if err != nil {
		return err
	}
	// Exchange base addresses over the full allocation group so every
	// member holds identical translation metadata. Small groups use the
	// symmetric allgather; large groups gather at rank 0, which builds
	// the shared record once (the table is shared via the ids map, so
	// no other rank ever needs the address vector).
	big := comm.Size() >= mpi.BigCommThreshold
	var id int
	if big {
		parts := comm.Gather(0, mpi.I64sToBytes([]int64{va, int64(bytes)}))
		if comm.Rank() == 0 {
			a := newAlloc(members, true)
			for i, p := range parts {
				v := mpi.BytesToI64s(p)
				a.sizes[i] = int(v[1])
				if a.sizes[i] > 0 {
					a.addrs[i] = armci.Addr{Rank: members[i], VA: v[0]}
				}
			}
			r.W.register(a)
			id = a.id
		}
	} else {
		vas := comm.AllgatherI64([]int64{va, int64(bytes)})
		if comm.Rank() == 0 {
			a := newAlloc(members, false)
			for i, world := range members {
				a.sizes[i] = int(vas[2*i+1])
				if a.sizes[i] > 0 {
					a.addrs[i] = armci.Addr{Rank: world, VA: vas[2*i]}
				}
			}
			r.W.register(a)
			id = a.id
		}
	}
	id = int(comm.BcastI64(0, []int64{int64(id)})[0])
	r.W.ids[id].nodeWins[me] = win
	comm.Barrier()
	return nil
}

// newAlloc builds an empty allocation record over members. When
// shareGroup is set the members slice is retained as-is (large groups
// pass the job-wide shared group slice); otherwise it is copied.
func newAlloc(members []int, shareGroup bool) *alloc {
	group := members
	if !shareGroup {
		group = append([]int(nil), members...)
	}
	a := &alloc{
		group:    group,
		rankOf:   map[int]int{},
		addrs:    make([]armci.Addr, len(members)),
		sizes:    make([]int, len(members)),
		nodeWins: map[int]*mpi.Win{},
	}
	for i, world := range members {
		a.rankOf[world] = i
	}
	return a
}

// Free collectively releases a world allocation.
func (r *Runtime) Free(addr armci.Addr) error {
	return r.freeOn(r.R.CommWorld(), addr, func() error { return r.Runtime.Free(addr) })
}

// FreeGroup releases a group allocation.
func (r *Runtime) FreeGroup(g *armci.Group, addr armci.Addr) error {
	if g == nil {
		return fmt.Errorf("dartmpi: FreeGroup with nil group")
	}
	return r.freeOn(armci.GroupCommOf(g), addr, func() error { return r.Runtime.FreeGroup(g, addr) })
}

// freeOn tears down the node window first (its group is a sub-set of
// the allocation's, and the inner Free releases the backing memory),
// then delegates. The leader election mirrors armcimpi's so members
// holding a Nil address still find the allocation.
func (r *Runtime) freeOn(comm *mpi.Comm, addr armci.Addr, innerFree func() error) error {
	if r.Opt.NoShm {
		return innerFree()
	}
	mine := int64(-1)
	if !addr.Nil() {
		mine = int64(r.Rank())
	}
	red := comm.AllreduceI64(mpi.OpMax, []int64{mine})
	leader := int(red[0])
	if leader < 0 {
		return fmt.Errorf("dartmpi: Free: all processes passed NULL")
	}
	var hdr []int64
	if r.Rank() == leader {
		hdr = []int64{addr.VA}
	} else {
		hdr = make([]int64, 1)
	}
	hdr = comm.BcastI64(comm.RankOfWorld(leader), hdr)
	key := armci.Addr{Rank: leader, VA: hdr[0]}
	a := r.W.findByBase(key)
	if a == nil {
		return fmt.Errorf("dartmpi: Free(%v): no allocation for leader address", key)
	}
	if win := a.nodeWins[r.Rank()]; win != nil {
		if err := win.Free(); err != nil {
			return err
		}
	}
	comm.Barrier()
	if comm.Rank() == 0 {
		r.W.unregister(a)
	}
	return innerFree()
}
