package dartmpi

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/armci"
	"repro/internal/fabric"
	"repro/internal/mpi"
	"repro/internal/obs"
	"repro/internal/obs/profile"
)

// tier is the locality class the classifier assigns to one access.
type tier int

const (
	tierRemote tier = iota // inter-node: the inner runtime's RMA plans
	tierSelf               // caller's own memory: direct load/store
	tierNode               // same node: shared-window epoch
)

// classify resolves the locality tier of a global access of n bytes at
// addr. Anything the node-window table cannot fully contain — foreign
// allocations, overruns, zero-size, non-members of the allocation's
// node window — rides the remote tier, whose inner runtime owns the
// error reporting. Under NoShm every access is remote, collapsing the
// runtime onto the pure-RMA path.
func (r *Runtime) classify(addr armci.Addr, n int) (tier, *alloc, int) {
	if r.Opt.NoShm || n <= 0 {
		return tierRemote, nil, 0
	}
	me := r.Rank()
	m := r.W.Mpi.M
	if addr.Rank != me && !m.SameNode(me, addr.Rank) {
		return tierRemote, nil, 0
	}
	a, gr, ok := r.W.find(addr, n)
	if !ok {
		return tierRemote, nil, 0
	}
	win := a.nodeWins[me]
	if win == nil || win.Comm().RankOfWorld(addr.Rank) < 0 {
		return tierRemote, nil, 0
	}
	if addr.Rank == me {
		return tierSelf, a, gr
	}
	return tierNode, a, gr
}

// count tallies one primitive operation's routing decision.
func (r *Runtime) count(t tier) {
	o := r.obsRec()
	switch t {
	case tierSelf:
		r.W.SelfOps++
		o.Inc(r.Rank(), obs.CDartSelf)
	case tierNode:
		r.W.NodeOps++
		o.Inc(r.Rank(), obs.CDartNode)
	default:
		r.W.RemoteOps++
		o.Inc(r.Rank(), obs.CDartRemote)
	}
}

// stage models the hierarchical path for one remote transfer: a
// non-leader origin copies the payload into its node leader's staging
// buffer (one shared-memory copy) and queues behind the per-node
// staging pipe before the wire transfer the inner runtime issues.
// Leaders and same-node targets bypass it, as do transfers under the
// threshold and both ablation switches.
func (r *Runtime) stage(target, n int) {
	if r.Opt.NoShm || r.Opt.NoLeaderStaging || n < r.stageThreshold() {
		return
	}
	m := r.W.Mpi.M
	me := r.Rank()
	if target < 0 || target >= m.NRanks || m.SameNode(me, target) {
		return
	}
	node := m.NodeOf(me)
	if me == node*m.Par.CoresPerNode {
		return // the leader sends directly
	}
	p := r.R.P
	pr := r.prof()
	t0 := p.Now()
	if b := r.W.leaderBusy[node]; b > t0 {
		m.SleepUntil(p, b)
		pr.PhaseAt(me, profile.PhaseLeaderQueue, t0, p.Now())
	}
	c0 := p.Now()
	m.ShmCopy(p, n)
	pr.PhaseAt(me, profile.PhaseLeaderCopy, c0, p.Now())
	r.W.leaderBusy[node] = p.Now()
	r.W.Staged++
	r.W.StagedBytes += int64(n)
	o := r.obsRec()
	o.Inc(me, obs.CDartStaged)
	o.Add(me, obs.CDartStagedBytes, int64(n))
}

// localRegion resolves an address on the calling rank to its region.
func (r *Runtime) localRegion(addr armci.Addr, n int) (*fabric.Region, error) {
	reg := r.W.Mpi.M.Space(r.Rank()).Find(addr.VA, n)
	if reg == nil {
		return nil, fmt.Errorf("dartmpi: local address %v (+%d) not in any allocation", addr, n)
	}
	return reg, nil
}

// selfCopy is the load-store tier: both sides live on the calling
// rank, so the transfer is one local memcpy.
func (r *Runtime) selfCopy(src, dst armci.Addr, n int) error {
	sreg, err := r.localRegion(src, n)
	if err != nil {
		return err
	}
	dreg, err := r.localRegion(dst, n)
	if err != nil {
		return err
	}
	r.W.Mpi.M.CopyLocal(r.R.P, n)
	copy(dreg.Bytes(dst.VA, n), sreg.Bytes(src.VA, n))
	return nil
}

// nodeWin resolves the node window and the target's window rank and
// displacement for a node-tier access (classify already proved
// membership and containment).
func (r *Runtime) nodeWin(a *alloc, gr int, addr armci.Addr) (*mpi.Win, int, int) {
	win := a.nodeWins[r.Rank()]
	return win, win.Comm().RankOfWorld(addr.Rank), int(addr.VA - a.addrs[gr].VA)
}

// nodePut is the same-node tier: one exclusive-lock epoch on the
// shared window, whose put degenerates to a shm segment copy.
func (r *Runtime) nodePut(src armci.Addr, a *alloc, gr int, dst armci.Addr, n int) error {
	sreg, err := r.localRegion(src, n)
	if err != nil {
		return err
	}
	win, gt, disp := r.nodeWin(a, gr, dst)
	if err := win.Lock(mpi.LockExclusive, gt); err != nil {
		return err
	}
	t := mpi.TypeContiguous(n)
	opErr := win.Put(mpi.LocalBuf{Region: sreg, Off: int(src.VA - sreg.VA), Type: t}, gt, disp, t)
	if err := win.Unlock(gt); err != nil && opErr == nil {
		opErr = err
	}
	return opErr
}

// nodeGet mirrors nodePut for the read direction.
func (r *Runtime) nodeGet(a *alloc, gr int, src, dst armci.Addr, n int) error {
	dreg, err := r.localRegion(dst, n)
	if err != nil {
		return err
	}
	win, gt, disp := r.nodeWin(a, gr, src)
	if err := win.Lock(mpi.LockExclusive, gt); err != nil {
		return err
	}
	t := mpi.TypeContiguous(n)
	opErr := win.Get(mpi.LocalBuf{Region: dreg, Off: int(dst.VA - dreg.VA), Type: t}, gt, disp, t)
	if err := win.Unlock(gt); err != nil && opErr == nil {
		opErr = err
	}
	return opErr
}

// nodeAcc accumulates through the shared window so same-node updates
// stay atomic with respect to each other. MPI accumulate has no scale
// argument; scale != 1 pre-scales into a temporary buffer first, as
// the inner runtime does.
func (r *Runtime) nodeAcc(scale float64, src armci.Addr, a *alloc, gr int, dst armci.Addr, n int) error {
	sreg, err := r.localRegion(src, n)
	if err != nil {
		return err
	}
	m := r.W.Mpi.M
	buf := mpi.LocalBuf{Region: sreg, Off: int(src.VA - sreg.VA)}
	if scale != 1 {
		tmp := r.R.AllocMem(n)
		m.CopyLocal(r.R.P, n)
		m.Compute(r.R.P, float64(n/8))
		vals := decodeF64(sreg.Bytes(src.VA, n))
		for i := range vals {
			vals[i] *= scale
		}
		encodeF64(tmp.Backing()[:n], vals)
		defer func() { _ = m.Space(r.Rank()).Free(tmp.VA) }()
		buf = mpi.LocalBuf{Region: tmp, Off: 0}
	}
	win, gt, disp := r.nodeWin(a, gr, dst)
	if err := win.Lock(mpi.LockExclusive, gt); err != nil {
		return err
	}
	t := mpi.TypeContiguous(n)
	buf.Type = t
	opErr := win.Accumulate(buf, mpi.OpSum, gt, disp, t)
	if err := win.Unlock(gt); err != nil && opErr == nil {
		opErr = err
	}
	return opErr
}

// Put copies n bytes from the local src to the global dst, routed by
// locality tier; every tier is both locally and remotely complete on
// return.
func (r *Runtime) Put(src, dst armci.Addr, n int) error {
	if pr := r.prof(); pr != nil {
		pr.Begin(r.Rank(), profile.OpPut)
		defer pr.End(r.Rank())
	}
	if err := armci.CheckContig(src, dst, n); err != nil {
		return err
	}
	if src.Rank == r.Rank() {
		switch t, a, gr := r.classify(dst, n); t {
		case tierSelf:
			r.count(tierSelf)
			return r.selfCopy(src, dst, n)
		case tierNode:
			r.count(tierNode)
			return r.nodePut(src, a, gr, dst, n)
		}
	}
	r.count(tierRemote)
	r.stage(dst.Rank, n)
	return r.inner.Put(src, dst, n)
}

// Get copies n bytes from the global src to the local dst.
func (r *Runtime) Get(src, dst armci.Addr, n int) error {
	if pr := r.prof(); pr != nil {
		pr.Begin(r.Rank(), profile.OpGet)
		defer pr.End(r.Rank())
	}
	if err := armci.CheckContig(src, dst, n); err != nil {
		return err
	}
	if dst.Rank == r.Rank() {
		switch t, a, gr := r.classify(src, n); t {
		case tierSelf:
			r.count(tierSelf)
			return r.selfCopy(src, dst, n)
		case tierNode:
			r.count(tierNode)
			return r.nodeGet(a, gr, src, dst, n)
		}
	}
	r.count(tierRemote)
	r.stage(src.Rank, n)
	return r.inner.Get(src, dst, n)
}

// Acc applies dst += scale*src elementwise on float64.
func (r *Runtime) Acc(op armci.AccOp, scale float64, src, dst armci.Addr, n int) error {
	if pr := r.prof(); pr != nil {
		pr.Begin(r.Rank(), profile.OpAcc)
		defer pr.End(r.Rank())
	}
	if err := armci.CheckContig(src, dst, n); err != nil {
		return err
	}
	if n%8 != 0 {
		return fmt.Errorf("dartmpi: Acc size %d not a multiple of 8 (float64)", n)
	}
	if src.Rank == r.Rank() {
		switch t, a, gr := r.classify(dst, n); t {
		case tierSelf, tierNode:
			r.count(t)
			return r.nodeAcc(scale, src, a, gr, dst, n)
		}
	}
	r.count(tierRemote)
	r.stage(dst.Rank, n)
	return r.inner.Acc(op, scale, src, dst, n)
}

func decodeF64(b []byte) []float64 {
	out := make([]float64, len(b)/8)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return out
}

func encodeF64(b []byte, vals []float64) {
	for i, v := range vals {
		binary.LittleEndian.PutUint64(b[8*i:], math.Float64bits(v))
	}
}
