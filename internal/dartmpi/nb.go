package dartmpi

import (
	"repro/internal/armci"
	"repro/internal/obs/profile"
)

// doneHandle is the handle of a near-tier nonblocking operation: the
// shared-memory tiers complete synchronously, so the blocking twin
// runs at issue and the handle is born complete (ARMCI permits
// immediate completion of nonblocking calls).
type doneHandle struct{}

func (doneHandle) Wait() {}

// Test reports local completion without blocking (armci.Tester).
func (doneHandle) Test() bool { return true }

// NbPut issues a nonblocking put: near tiers complete at issue, the
// remote tier delegates to the inner runtime's request machinery.
func (r *Runtime) NbPut(src, dst armci.Addr, n int) (armci.Handle, error) {
	if pr := r.prof(); pr != nil {
		pr.Begin(r.Rank(), profile.OpNbPut)
		defer pr.End(r.Rank())
	}
	if src.Rank == r.Rank() {
		if t, _, _ := r.classify(dst, n); t != tierRemote {
			if err := r.Put(src, dst, n); err != nil {
				return nil, err
			}
			return doneHandle{}, nil
		}
	}
	r.count(tierRemote)
	r.stage(dst.Rank, n)
	return r.inner.NbPut(src, dst, n)
}

// NbGet issues a nonblocking get.
func (r *Runtime) NbGet(src, dst armci.Addr, n int) (armci.Handle, error) {
	if pr := r.prof(); pr != nil {
		pr.Begin(r.Rank(), profile.OpNbGet)
		defer pr.End(r.Rank())
	}
	if dst.Rank == r.Rank() {
		if t, _, _ := r.classify(src, n); t != tierRemote {
			if err := r.Get(src, dst, n); err != nil {
				return nil, err
			}
			return doneHandle{}, nil
		}
	}
	r.count(tierRemote)
	r.stage(src.Rank, n)
	return r.inner.NbGet(src, dst, n)
}

// NbAcc issues a nonblocking accumulate.
func (r *Runtime) NbAcc(op armci.AccOp, scale float64, src, dst armci.Addr, n int) (armci.Handle, error) {
	if pr := r.prof(); pr != nil {
		pr.Begin(r.Rank(), profile.OpNbAcc)
		defer pr.End(r.Rank())
	}
	if src.Rank == r.Rank() {
		if t, _, _ := r.classify(dst, n); t != tierRemote {
			if err := r.Acc(op, scale, src, dst, n); err != nil {
				return nil, err
			}
			return doneHandle{}, nil
		}
	}
	r.count(tierRemote)
	r.stage(dst.Rank, n)
	return r.inner.NbAcc(op, scale, src, dst, n)
}

// NbPutS issues a nonblocking strided put.
func (r *Runtime) NbPutS(s *armci.Strided) (armci.Handle, error) {
	if pr := r.prof(); pr != nil {
		pr.Begin(r.Rank(), profile.OpNbPutS)
		defer pr.End(r.Rank())
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if s.Src.Rank == r.Rank() && r.nearRank(s.Dst.Rank) {
		if err := r.PutS(s); err != nil {
			return nil, err
		}
		return doneHandle{}, nil
	}
	r.stage(s.Dst.Rank, s.TotalBytes())
	return r.inner.NbPutS(s)
}

// NbGetS issues a nonblocking strided get.
func (r *Runtime) NbGetS(s *armci.Strided) (armci.Handle, error) {
	if pr := r.prof(); pr != nil {
		pr.Begin(r.Rank(), profile.OpNbGetS)
		defer pr.End(r.Rank())
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if s.Dst.Rank == r.Rank() && r.nearRank(s.Src.Rank) {
		if err := r.GetS(s); err != nil {
			return nil, err
		}
		return doneHandle{}, nil
	}
	r.stage(s.Src.Rank, s.TotalBytes())
	return r.inner.NbGetS(s)
}

// NbAccS issues a nonblocking strided accumulate.
func (r *Runtime) NbAccS(op armci.AccOp, scale float64, s *armci.Strided) (armci.Handle, error) {
	if pr := r.prof(); pr != nil {
		pr.Begin(r.Rank(), profile.OpNbAccS)
		defer pr.End(r.Rank())
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if s.Src.Rank == r.Rank() && r.nearRank(s.Dst.Rank) {
		if err := r.AccS(op, scale, s); err != nil {
			return nil, err
		}
		return doneHandle{}, nil
	}
	r.stage(s.Dst.Rank, s.TotalBytes())
	return r.inner.NbAccS(op, scale, s)
}

// NbPutV issues a nonblocking vector put.
func (r *Runtime) NbPutV(iov []armci.GIOV, proc int) (armci.Handle, error) {
	if pr := r.prof(); pr != nil {
		pr.Begin(r.Rank(), profile.OpNbPutV)
		defer pr.End(r.Rank())
	}
	if r.nearRank(proc) {
		if err := r.PutV(iov, proc); err != nil {
			return nil, err
		}
		return doneHandle{}, nil
	}
	r.stage(proc, iovBytes(iov))
	return r.inner.NbPutV(iov, proc)
}

// NbGetV issues a nonblocking vector get.
func (r *Runtime) NbGetV(iov []armci.GIOV, proc int) (armci.Handle, error) {
	if pr := r.prof(); pr != nil {
		pr.Begin(r.Rank(), profile.OpNbGetV)
		defer pr.End(r.Rank())
	}
	if r.nearRank(proc) {
		if err := r.GetV(iov, proc); err != nil {
			return nil, err
		}
		return doneHandle{}, nil
	}
	r.stage(proc, iovBytes(iov))
	return r.inner.NbGetV(iov, proc)
}

// NbAccV issues a nonblocking vector accumulate.
func (r *Runtime) NbAccV(op armci.AccOp, scale float64, iov []armci.GIOV, proc int) (armci.Handle, error) {
	if pr := r.prof(); pr != nil {
		pr.Begin(r.Rank(), profile.OpNbAccV)
		defer pr.End(r.Rank())
	}
	if r.nearRank(proc) {
		if err := r.AccV(op, scale, iov, proc); err != nil {
			return nil, err
		}
		return doneHandle{}, nil
	}
	r.stage(proc, iovBytes(iov))
	return r.inner.NbAccV(op, scale, iov, proc)
}
