package dartmpi

import (
	"repro/internal/armci"
)

// The synchronization, atomic, group, and access-mode surface
// delegates to the inner armcimpi runtime. The near tiers need no
// extra fencing: every self/same-node operation is remotely complete
// before it returns (the shm epoch's unlock waits for the copy), so
// the inner runtime's pending-operation tracking already covers
// everything Fence must complete.

// Fence ensures remote completion of prior operations to proc.
func (r *Runtime) Fence(proc int) { r.inner.Fence(proc) }

// AllFence fences every target.
func (r *Runtime) AllFence() { r.inner.AllFence() }

// Barrier synchronizes all processes and fences all communication.
func (r *Runtime) Barrier() { r.inner.Barrier() }

// Rmw performs an atomic read-modify-write on the int64 at addr,
// through the inner runtime's mutex-protected (MPI-2) or fetch-and-op
// (MPI-3) path — both windows expose the same memory, so atomics and
// near-tier transfers observe the same bytes.
func (r *Runtime) Rmw(op armci.RmwOp, addr armci.Addr, operand int64) (int64, error) {
	return r.inner.Rmw(op, addr, operand)
}

// CreateMutexes collectively creates n mutexes hosted on the caller.
func (r *Runtime) CreateMutexes(n int) (armci.Mutexes, error) {
	return r.inner.CreateMutexes(n)
}

// AccessBegin opens a direct-local-access section.
func (r *Runtime) AccessBegin(addr armci.Addr, n int) ([]byte, error) {
	return r.inner.AccessBegin(addr, n)
}

// AccessEnd closes a direct-local-access section.
func (r *Runtime) AccessEnd(addr armci.Addr) error { return r.inner.AccessEnd(addr) }

// SetAccessMode applies an access-mode hint to an allocation.
func (r *Runtime) SetAccessMode(mode armci.AccessMode, addr armci.Addr) error {
	return r.inner.SetAccessMode(mode, addr)
}

// GroupCreateCollective creates a group from world ranks.
func (r *Runtime) GroupCreateCollective(members []int) (*armci.Group, error) {
	return r.inner.GroupCreateCollective(members)
}

// GroupCreate creates a group noncollectively (members only).
func (r *Runtime) GroupCreate(members []int) (*armci.Group, error) {
	return r.inner.GroupCreate(members)
}
