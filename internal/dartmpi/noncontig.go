package dartmpi

import (
	"repro/internal/armci"
	"repro/internal/obs/profile"
)

// nearRank reports whether rank's memory is reachable through the
// near tiers (load/store or the node shared window).
func (r *Runtime) nearRank(rank int) bool {
	return !r.Opt.NoShm && (rank == r.Rank() || r.W.Mpi.M.SameNode(r.Rank(), rank))
}

// iovBytes sums a vector descriptor's payload.
func iovBytes(iov []armci.GIOV) int {
	n := 0
	for i := range iov {
		n += len(iov[i].Src) * iov[i].Bytes
	}
	return n
}

// Strided and IOV operations route whole descriptors: a near remote
// side re-enters the contiguous tier path per segment (each segment is
// one cheap shm epoch and re-classifies, so segments falling outside
// the node-window table still reach the inner runtime); a far remote
// side hands the descriptor wholesale to the inner transfer-plan
// engine, which keeps its batching, datatype, and conflict-scan
// machinery intact.

// PutS performs a strided put.
func (r *Runtime) PutS(s *armci.Strided) error {
	if pr := r.prof(); pr != nil {
		pr.Begin(r.Rank(), profile.OpPutS)
		defer pr.End(r.Rank())
	}
	if err := s.Validate(); err != nil {
		return err
	}
	if s.Src.Rank != r.Rank() || !r.nearRank(s.Dst.Rank) {
		r.stage(s.Dst.Rank, s.TotalBytes())
		return r.inner.PutS(s)
	}
	var err error
	s.Iterate(func(so, do int) {
		if err == nil {
			err = r.Put(s.Src.Add(so), s.Dst.Add(do), s.SegBytes())
		}
	})
	return err
}

// GetS performs a strided get.
func (r *Runtime) GetS(s *armci.Strided) error {
	if pr := r.prof(); pr != nil {
		pr.Begin(r.Rank(), profile.OpGetS)
		defer pr.End(r.Rank())
	}
	if err := s.Validate(); err != nil {
		return err
	}
	if s.Dst.Rank != r.Rank() || !r.nearRank(s.Src.Rank) {
		r.stage(s.Src.Rank, s.TotalBytes())
		return r.inner.GetS(s)
	}
	var err error
	s.Iterate(func(so, do int) {
		if err == nil {
			err = r.Get(s.Src.Add(so), s.Dst.Add(do), s.SegBytes())
		}
	})
	return err
}

// AccS performs a strided accumulate.
func (r *Runtime) AccS(op armci.AccOp, scale float64, s *armci.Strided) error {
	if pr := r.prof(); pr != nil {
		pr.Begin(r.Rank(), profile.OpAccS)
		defer pr.End(r.Rank())
	}
	if err := s.Validate(); err != nil {
		return err
	}
	if s.Src.Rank != r.Rank() || !r.nearRank(s.Dst.Rank) {
		r.stage(s.Dst.Rank, s.TotalBytes())
		return r.inner.AccS(op, scale, s)
	}
	var err error
	s.Iterate(func(so, do int) {
		if err == nil {
			err = r.Acc(op, scale, s.Src.Add(so), s.Dst.Add(do), s.SegBytes())
		}
	})
	return err
}

// PutV performs a generalized I/O vector put to proc.
func (r *Runtime) PutV(iov []armci.GIOV, proc int) error {
	if pr := r.prof(); pr != nil {
		pr.Begin(r.Rank(), profile.OpPutV)
		defer pr.End(r.Rank())
	}
	if err := armci.ValidateIOV(iov, proc, false); err != nil {
		return err
	}
	if !r.nearRank(proc) {
		r.stage(proc, iovBytes(iov))
		return r.inner.PutV(iov, proc)
	}
	for i := range iov {
		v := &iov[i]
		for j := range v.Src {
			if err := r.Put(v.Src[j], v.Dst[j], v.Bytes); err != nil {
				return err
			}
		}
	}
	return nil
}

// GetV performs a generalized I/O vector get from proc.
func (r *Runtime) GetV(iov []armci.GIOV, proc int) error {
	if pr := r.prof(); pr != nil {
		pr.Begin(r.Rank(), profile.OpGetV)
		defer pr.End(r.Rank())
	}
	if err := armci.ValidateIOV(iov, proc, true); err != nil {
		return err
	}
	if !r.nearRank(proc) {
		r.stage(proc, iovBytes(iov))
		return r.inner.GetV(iov, proc)
	}
	for i := range iov {
		v := &iov[i]
		for j := range v.Src {
			if err := r.Get(v.Src[j], v.Dst[j], v.Bytes); err != nil {
				return err
			}
		}
	}
	return nil
}

// AccV performs a generalized I/O vector accumulate to proc.
func (r *Runtime) AccV(op armci.AccOp, scale float64, iov []armci.GIOV, proc int) error {
	if pr := r.prof(); pr != nil {
		pr.Begin(r.Rank(), profile.OpAccV)
		defer pr.End(r.Rank())
	}
	if err := armci.ValidateIOV(iov, proc, false); err != nil {
		return err
	}
	if !r.nearRank(proc) {
		r.stage(proc, iovBytes(iov))
		return r.inner.AccV(op, scale, iov, proc)
	}
	for i := range iov {
		v := &iov[i]
		for j := range v.Src {
			if err := r.Acc(op, scale, v.Src[j], v.Dst[j], v.Bytes); err != nil {
				return err
			}
		}
	}
	return nil
}
