package dartmpi

import (
	"repro/internal/armcimpi"
	"repro/internal/obs"
)

// dartPolicy is dartmpi's RoutePolicy: the locality classifier the
// engine consults once per operation. It only answers routing
// questions — the engine's compiler and executor move all data — so
// every Decide path is pure: no fabric calls, no virtual time.
type dartPolicy struct{ r *Runtime }

var _ armcimpi.RoutePolicy = dartPolicy{}

// Decide routes one operation. Contiguous transfers classify against
// the node-window translation table and bind the matching window for
// direct execution (self-copy or node epoch). Strided and IOV
// descriptors route whole: a near target compiles to the per-segment
// plan, whose segments re-enter the engine and re-classify (so
// segments falling outside the table still reach the wire); a far
// target keeps the engine's configured method and, when large enough,
// stages through the node leader.
func (p dartPolicy) Decide(req armcimpi.RouteRequest) armcimpi.RouteDecision {
	r := p.r
	d := armcimpi.RouteDecision{Route: armcimpi.RouteRMA, Method: r.MethodFor(req.Shape)}
	me := r.Rank()
	m := r.W.Mpi.M
	near := !r.Opt.NoShm && req.Target >= 0 && req.Target < m.NRanks &&
		(req.Target == me || m.SameNode(me, req.Target))
	if req.Shape != armcimpi.ShapeContig {
		// The local side of a strided descriptor must be the caller for
		// the near tiers (IOV descriptors were already validated so).
		if near && (req.Shape == armcimpi.ShapeIOV || req.Local.Rank == me) {
			d.PerSeg = true
			d.Route = armcimpi.RouteNode
			if req.Target == me {
				d.Route = armcimpi.RouteSelf
			}
			return d
		}
		if p.staged(req.Target, req.Bytes) {
			d.Route = armcimpi.RouteStagedRMA
		}
		return d
	}
	if near && req.Bytes > 0 && req.Local.Rank == me {
		if a, gr, ok := r.W.find(req.Remote, req.Bytes); ok {
			if win := a.nodeWins[me]; win != nil {
				if wr := win.Comm().RankOfWorld(req.Remote.Rank); wr >= 0 {
					d.Direct = true
					d.Route = armcimpi.RouteNode
					if req.Remote.Rank == me {
						d.Route = armcimpi.RouteSelf
					}
					d.Node = armcimpi.NodeBinding{
						Win:  win,
						Rank: wr,
						Disp: int(req.Remote.VA - a.addrs[gr].VA),
					}
					return d
				}
			}
		}
	}
	if p.staged(req.Target, req.Bytes) {
		d.Route = armcimpi.RouteStagedRMA
	}
	return d
}

// staged reports whether a wire transfer to target is eligible for
// hierarchical leader staging: large enough, genuinely inter-node, and
// not issued by the node leader itself (the leader sends directly).
// Both ablation switches disable it.
func (p dartPolicy) staged(target, n int) bool {
	r := p.r
	if r.Opt.NoShm || r.Opt.NoLeaderStaging || n < r.stageThreshold() {
		return false
	}
	m := r.W.Mpi.M
	me := r.Rank()
	if target < 0 || target >= m.NRanks || m.SameNode(me, target) {
		return false
	}
	return me != m.NodeOf(me)*m.Par.CoresPerNode
}

// Count tallies one routed operation. The engine calls it from its
// single decision point: whole descriptors that re-enter per segment
// are not counted here — their segments are, individually.
func (p dartPolicy) Count(d armcimpi.RouteDecision) {
	w := p.r.W
	o := w.Mpi.Obs
	me := p.r.Rank()
	switch d.Route {
	case armcimpi.RouteSelf:
		w.SelfOps++
		o.Inc(me, obs.CDartSelf)
	case armcimpi.RouteNode:
		w.NodeOps++
		o.Inc(me, obs.CDartNode)
	default:
		w.RemoteOps++
		o.Inc(me, obs.CDartRemote)
	}
}

// Staged records one leader-staging event the executor modeled (the
// engine emits the dart.leader.* counters itself).
func (p dartPolicy) Staged(n int) {
	p.r.W.Staged++
	p.r.W.StagedBytes += int64(n)
}
