// Package dataserver implements ARMCI on MPI *two-sided* messaging —
// the prior approach the paper's Related Work (SectionIX) contrasts
// with ARMCI-MPI: "a data server process on each node ... maps shared
// memory that is shared with all processes on the node and services
// requests to read from and write to this data. However, this approach
// does not utilize MPI's one-sided functionality and has several
// overheads, including consumption of a core, bottlenecking on the
// data server, and two-sided messaging overheads such as tag matching."
//
// The model captures those three structural overheads:
//
//   - every remote access is a request/response exchange serviced by a
//     single serial agent per node (the data server), so concurrent
//     accesses to one node queue behind each other;
//   - the server stages data through its own memory (an extra copy at
//     the node's copy rate in each direction);
//   - each message pays a two-sided software overhead (tag matching,
//     envelope processing) on top of the fabric's per-message cost;
//   - the server consumes a core: the harness reduces the per-rank
//     compute rate by 1/cores-per-node when this backend is selected.
//
// Intra-node accesses go straight to shared memory, as the real
// implementation's node-local mapping allows.
package dataserver

import (
	"encoding/binary"
	"fmt"

	"repro/internal/armci"
	"repro/internal/fabric"
	"repro/internal/obs"
	"repro/internal/obs/profile"
	"repro/internal/platform"
	"repro/internal/sim"
)

// tagMatchNs is the two-sided software overhead per message at the
// server (tag matching, envelope processing).
const tagMatchNs = 450

// World is the shared state of the data-server ARMCI job.
type World struct {
	M   *fabric.Machine
	Tun *platform.Tuning

	allocs []*allocation
	nextID int

	// serverBusy[node] is the per-node data server's queue horizon —
	// the structural bottleneck.
	serverBusy []sim.Time
	// lastRemote[origin][target] tracks remote completion for Fence.
	lastRemote [][]sim.Time
	mutexes    []*mutexHost

	// Counters.
	Ops        int64
	Requests   int64
	ServerWait sim.Time // aggregate time requests spent queued at servers

	// Obs, when non-nil, receives per-rank request counters, queueing
	// delays, and server-lane trace spans. Nil-safe no-ops when off.
	Obs *obs.Recorder
}

type allocation struct {
	id     int
	group  []int
	rankOf map[int]int
	addrs  []armci.Addr
	sizes  []int
}

// NewWorld creates data-server ARMCI state.
func NewWorld(m *fabric.Machine, tun *platform.Tuning) *World {
	nodes := (m.NRanks + m.Par.CoresPerNode - 1) / m.Par.CoresPerNode
	w := &World{M: m, Tun: tun, serverBusy: make([]sim.Time, nodes)}
	w.lastRemote = make([][]sim.Time, m.NRanks)
	for i := range w.lastRemote {
		w.lastRemote[i] = make([]sim.Time, m.NRanks)
	}
	return w
}

// Runtime is one rank's data-server ARMCI handle.
type Runtime struct {
	w    *World
	coll Collective
	p    *sim.Proc
	dla  map[int64]bool
}

// Collective matches the bootstrap interface of the native runtime.
type Collective interface {
	Barrier()
	AllgatherI64(vals []int64) []int64
	BcastI64(root int, vals []int64) []int64
	GroupComm(members []int, collective bool) interface{}
	GroupAllgatherI64(g interface{}, vals []int64) []int64
	GroupBarrier(g interface{})
	GroupBcastI64(g interface{}, root int, vals []int64) []int64
}

// New creates the per-rank handle.
func New(w *World, coll Collective, p *sim.Proc) *Runtime {
	return &Runtime{w: w, coll: coll, p: p, dla: map[int64]bool{}}
}

var _ armci.Runtime = (*Runtime)(nil)

// Name identifies the implementation.
func (r *Runtime) Name() string { return "armci-ds" }

// Rank returns the calling world rank.
func (r *Runtime) Rank() int { return r.p.ID() }

// Nprocs returns the world size.
func (r *Runtime) Nprocs() int { return r.w.M.NRanks }

// Proc returns the simulation context.
func (r *Runtime) Proc() *sim.Proc { return r.p }

func (r *Runtime) opCost() {
	r.p.Elapse(sim.FromSeconds(r.w.Tun.OpOverheadNs / 1e9))
	r.w.Ops++
}

// serve schedules one request at the target node's data server: the
// server becomes available at max(arrive, busy), spends procNs plus
// copyBytes at the node's copy rate, and the completion time is
// returned. Accounts the structural queueing delay.
func (w *World) serve(node int, arrive sim.Time, copyBytes int, procNs float64) (start, done sim.Time) {
	start = arrive
	if w.serverBusy[node] > start {
		w.ServerWait += w.serverBusy[node] - start
		start = w.serverBusy[node]
	}
	busy := sim.FromSeconds((tagMatchNs+procNs)/1e9) + w.M.CopyTime(copyBytes)
	done = start + busy
	w.serverBusy[node] = done
	w.Requests++
	return start, done
}

// rate is the two-sided path's achievable link fraction.
func (r *Runtime) rate() float64 {
	return r.w.M.Par.Bandwidth * r.w.Tun.BandwidthFrac
}

// region resolves an address to its backing region.
func (r *Runtime) region(a armci.Addr, n int) (*fabric.Region, error) {
	reg := r.w.M.Space(a.Rank).Find(a.VA, n)
	if reg == nil {
		return nil, fmt.Errorf("armci-ds: address %v (+%d) not in any allocation", a, n)
	}
	return reg, nil
}

// noteRemote records remote completion for Fence.
func (r *Runtime) noteRemote(target int, at sim.Time) {
	if r.w.lastRemote[r.Rank()][target] < at {
		r.w.lastRemote[r.Rank()][target] = at
	}
}

// seg is one contiguous piece of a transfer.
type seg struct {
	srcVA, dstVA int64
	sreg, dreg   *fabric.Region
	n            int
}

// putSegs ships segments to the target's data server: one two-sided
// exchange carrying the whole payload, then the server copies each
// segment into place (server-side staging copy).
func (r *Runtime) putSegs(segs []seg, target int, accumulate bool, scale float64) error {
	if len(segs) == 0 {
		return nil
	}
	r.opCost()
	m := r.w.M
	total := 0
	data := make([][]byte, len(segs))
	for i, sg := range segs {
		total += sg.n
		data[i] = append([]byte(nil), sg.sreg.Bytes(sg.srcVA, sg.n)...)
	}
	node := m.NodeOf(target)
	me := r.Rank()
	pr := r.w.Obs.Prof()
	if m.SameNode(r.Rank(), target) && !accumulate {
		// Node-local shared memory: direct copy, no server involved.
		t0c := r.p.Now()
		m.CopyLocal(r.p, total)
		if pr != nil {
			pr.PhaseAt(me, profile.PhaseShmCopy, t0c, r.p.Now())
			pr.Send(me, target, profile.MsgPut, profile.RouteShm, total)
			pr.Recv(me, target, profile.MsgPut, profile.RouteShm, total)
		}
		for i, sg := range segs {
			copy(sg.dreg.Bytes(sg.dstVA, sg.n), data[i])
		}
		r.noteRemote(target, r.p.Now())
		return nil
	}
	arrive := m.SendDataAsync(r.Rank(), target, total, fabric.XferOpt{Rate: r.rate()})
	class := profile.MsgPut
	if accumulate {
		class = profile.MsgAcc
	}
	if pr != nil {
		base, xs, xa := m.LastXfer()
		pr.PhaseAt(me, profile.PhaseWireQueue, base, xs)
		pr.PhaseAt(me, profile.PhaseWire, xs, xa)
		pr.Send(me, target, class, profile.RouteDS, total)
	}
	procNs := 0.0
	copyBytes := total // staging copy out of the receive buffer
	if accumulate {
		procNs = float64(total) / r.accRate() * 1e9
	}
	start, done := r.w.serve(node, arrive, copyBytes, procNs)
	if pr != nil {
		pr.PhaseAt(me, profile.PhaseTargetQueue, arrive, start)
		pr.PhaseAt(me, profile.PhaseTargetProc, start, done)
	}
	o := r.w.Obs
	o.Inc(r.Rank(), obs.CDsRequests)
	o.AddTime(r.Rank(), obs.TDsWait, start-arrive)
	name := "put"
	if accumulate {
		name = "acc"
	}
	if o.Tracing() {
		o.SpanLane(obs.LaneServer(node), "ds", name, start, done,
			obs.A("origin", r.Rank()), obs.A("bytes", total))
	}
	segsCopy := segs
	m.Eng.At(done, func() {
		if pr != nil {
			pr.Recv(me, target, class, profile.RouteDS, total)
		}
		for i, sg := range segsCopy {
			dst := sg.dreg.Bytes(sg.dstVA, sg.n)
			if accumulate {
				cur := decodeF64(dst)
				inc := decodeF64(data[i])
				for k := range cur {
					cur[k] += scale * inc[k]
				}
				encodeF64(dst, cur)
			} else {
				copy(dst, data[i])
			}
		}
	})
	r.noteRemote(target, done)
	return nil
}

// getSegs requests segments from the target's data server.
func (r *Runtime) getSegs(segs []seg, target int) error {
	if len(segs) == 0 {
		return nil
	}
	r.opCost()
	m := r.w.M
	total := 0
	for _, sg := range segs {
		total += sg.n
	}
	pr := r.w.Obs.Prof()
	if m.SameNode(r.Rank(), target) {
		t0c := r.p.Now()
		m.CopyLocal(r.p, total)
		if pr != nil {
			pr.PhaseAt(r.Rank(), profile.PhaseShmCopy, t0c, r.p.Now())
			pr.Send(target, r.Rank(), profile.MsgGet, profile.RouteShm, total)
			pr.Recv(target, r.Rank(), profile.MsgGet, profile.RouteShm, total)
		}
		for _, sg := range segs {
			copy(sg.dreg.Bytes(sg.dstVA, sg.n), sg.sreg.Bytes(sg.srcVA, sg.n))
		}
		return nil
	}
	node := m.NodeOf(target)
	req := m.SendDataAsync(r.Rank(), target, 0, fabric.XferOpt{NoNIC: true})
	// Server gathers the segments (staging copy) and then *sends* them
	// back — unlike an RDMA engine, the two-sided server's CPU is busy
	// for the duration of the response injection too.
	start, served := r.w.serve(node, req, total, float64(total)/r.rate()*1e9)
	if pr != nil {
		pr.PhaseAt(r.Rank(), profile.PhaseTargetQueue, req, start)
		pr.PhaseAt(r.Rank(), profile.PhaseTargetProc, start, served)
	}
	o := r.w.Obs
	o.Inc(r.Rank(), obs.CDsRequests)
	o.AddTime(r.Rank(), obs.TDsWait, start-req)
	if o.Tracing() {
		o.SpanLane(obs.LaneServer(node), "ds", "get", start, served,
			obs.A("origin", r.Rank()), obs.A("bytes", total))
	}
	done := false
	p := r.p
	eng := m.Eng
	me := r.Rank()
	segsCopy := segs
	eng.At(served, func() {
		data := make([][]byte, len(segsCopy))
		for i, sg := range segsCopy {
			data[i] = append([]byte(nil), sg.sreg.Bytes(sg.srcVA, sg.n)...)
		}
		back := m.SendDataAsync(target, me, total, fabric.XferOpt{Rate: r.rate()})
		if pr != nil {
			base, xs, xa := m.LastXfer()
			pr.PhaseAt(me, profile.PhaseWireQueue, base, xs)
			pr.PhaseAt(me, profile.PhaseWire, xs, xa)
			pr.Send(target, me, profile.MsgGet, profile.RouteDS, total)
		}
		eng.At(back, func() {
			if pr != nil {
				pr.Recv(target, me, profile.MsgGet, profile.RouteDS, total)
			}
			for i, sg := range segsCopy {
				copy(sg.dreg.Bytes(sg.dstVA, sg.n), data[i])
			}
			done = true
			eng.Unpark(p)
		})
	})
	for !done {
		p.Park("armci-ds.Get")
	}
	return nil
}

func (r *Runtime) accRate() float64 {
	if r.w.Tun.AccumRate > 0 {
		return r.w.Tun.AccumRate
	}
	return r.w.M.Par.AccumRate
}

func decodeF64(b []byte) []float64 {
	out := make([]float64, len(b)/8)
	for i := range out {
		out[i] = f64frombits(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return out
}

func encodeF64(b []byte, vals []float64) {
	for i, v := range vals {
		binary.LittleEndian.PutUint64(b[8*i:], f64bits(v))
	}
}
