package dataserver

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"

	"repro/internal/armci"
	"repro/internal/fabric"
	"repro/internal/obs/profile"
	"repro/internal/sim"
)

// profBegin opens a profiler scope for one surface op; it returns the
// matching close func (or nil when profiling is off). The Nb* variants
// delegate to their blocking twins and are recorded as those.
func (r *Runtime) profBegin(op profile.Op) func() {
	pr := r.w.Obs.Prof()
	if pr == nil {
		return nil
	}
	rank := r.Rank()
	pr.Begin(rank, op)
	return func() { pr.End(rank) }
}

func f64bits(f float64) uint64     { return math.Float64bits(f) }
func f64frombits(b uint64) float64 { return math.Float64frombits(b) }

// Malloc collectively allocates globally accessible memory (world).
func (r *Runtime) Malloc(bytes int) ([]armci.Addr, error) { return r.mallocOn(nil, bytes) }

// MallocGroup allocates over a group.
func (r *Runtime) MallocGroup(g *armci.Group, bytes int) ([]armci.Addr, error) {
	if g == nil {
		return nil, fmt.Errorf("armci-ds: MallocGroup with nil group")
	}
	return r.mallocOn(g, bytes)
}

func (r *Runtime) mallocOn(g *armci.Group, bytes int) ([]armci.Addr, error) {
	if bytes < 0 {
		return nil, fmt.Errorf("armci-ds: Malloc(%d): negative size", bytes)
	}
	var va int64
	if bytes > 0 {
		// The server maps this memory into node-shared space; DomainNone
		// is appropriate — the data server, not the NIC, serves it.
		reg := r.w.M.Space(r.Rank()).Alloc(bytes, fabric.DomainNone, false)
		va = reg.VA
	}
	var vas []int64
	var members []int
	if g == nil {
		vas = r.coll.AllgatherI64([]int64{va, int64(bytes)})
		members = make([]int, r.Nprocs())
		for i := range members {
			members[i] = i
		}
	} else {
		vas = r.coll.GroupAllgatherI64(g.Impl, []int64{va, int64(bytes)})
		members = g.Ranks
	}
	a := &allocation{group: members, rankOf: map[int]int{},
		addrs: make([]armci.Addr, len(members)), sizes: make([]int, len(members))}
	for i, world := range members {
		a.rankOf[world] = i
		a.sizes[i] = int(vas[2*i+1])
		if a.sizes[i] > 0 {
			a.addrs[i] = armci.Addr{Rank: world, VA: vas[2*i]}
		}
	}
	if members[0] == r.Rank() {
		a.id = r.w.nextID
		r.w.nextID++
		r.w.allocs = append(r.w.allocs, a)
	}
	r.barrierOn(g)
	return append([]armci.Addr(nil), a.addrs...), nil
}

func (r *Runtime) barrierOn(g *armci.Group) {
	if g == nil {
		r.coll.Barrier()
	} else {
		r.coll.GroupBarrier(g.Impl)
	}
}

func (w *World) findAlloc(addr armci.Addr) *allocation {
	for _, a := range w.allocs {
		if gr, ok := a.rankOf[addr.Rank]; ok {
			base := a.addrs[gr]
			if !base.Nil() && addr.VA >= base.VA && addr.VA < base.VA+int64(a.sizes[gr]) {
				return a
			}
		}
	}
	return nil
}

// Free collectively releases a world allocation.
func (r *Runtime) Free(addr armci.Addr) error { return r.freeOn(nil, addr) }

// FreeGroup releases a group allocation.
func (r *Runtime) FreeGroup(g *armci.Group, addr armci.Addr) error { return r.freeOn(g, addr) }

func (r *Runtime) freeOn(g *armci.Group, addr armci.Addr) error {
	mine := int64(-1)
	if !addr.Nil() {
		mine = int64(r.Rank())
	}
	var gathered []int64
	if g == nil {
		gathered = r.coll.AllgatherI64([]int64{mine, addr.VA})
	} else {
		gathered = r.coll.GroupAllgatherI64(g.Impl, []int64{mine, addr.VA})
	}
	leader, leaderVA := int64(-1), int64(0)
	for i := 0; i < len(gathered)/2; i++ {
		if gathered[2*i] > leader {
			leader = gathered[2*i]
			leaderVA = gathered[2*i+1]
		}
	}
	if leader < 0 {
		return fmt.Errorf("armci-ds: Free: all processes passed NULL")
	}
	a := r.w.findAlloc(armci.Addr{Rank: int(leader), VA: leaderVA})
	if a == nil {
		return fmt.Errorf("armci-ds: Free: unknown allocation")
	}
	gr := a.rankOf[r.Rank()]
	if a.sizes[gr] > 0 {
		if err := r.w.M.Space(r.Rank()).Free(a.addrs[gr].VA); err != nil {
			return err
		}
	}
	r.barrierOn(g)
	if a.group[0] == r.Rank() {
		for i, e := range r.w.allocs {
			if e == a {
				r.w.allocs = append(r.w.allocs[:i], r.w.allocs[i+1:]...)
				break
			}
		}
	}
	return nil
}

// MallocLocal allocates plain local memory.
func (r *Runtime) MallocLocal(bytes int) armci.Addr {
	reg := r.w.M.Space(r.Rank()).Alloc(bytes, fabric.DomainNone, false)
	return armci.Addr{Rank: r.Rank(), VA: reg.VA}
}

// FreeLocal releases local memory.
func (r *Runtime) FreeLocal(addr armci.Addr) error {
	if addr.Rank != r.Rank() {
		return fmt.Errorf("armci-ds: FreeLocal of remote address %v", addr)
	}
	return r.w.M.Space(r.Rank()).Free(addr.VA)
}

// LocalBytes exposes local buffer memory.
func (r *Runtime) LocalBytes(addr armci.Addr, n int) ([]byte, error) {
	if addr.Rank != r.Rank() {
		return nil, fmt.Errorf("armci-ds: LocalBytes on remote address %v", addr)
	}
	reg, err := r.region(addr, n)
	if err != nil {
		return nil, err
	}
	return reg.Bytes(addr.VA, n), nil
}

// contigSegs builds the single-segment list for a contiguous transfer.
func (r *Runtime) contigSegs(src, dst armci.Addr, n int) ([]seg, error) {
	sreg, err := r.region(src, n)
	if err != nil {
		return nil, err
	}
	dreg, err := r.region(dst, n)
	if err != nil {
		return nil, err
	}
	return []seg{{srcVA: src.VA, dstVA: dst.VA, sreg: sreg, dreg: dreg, n: n}}, nil
}

// Put copies n bytes from the local src to the global dst.
func (r *Runtime) Put(src, dst armci.Addr, n int) error {
	if end := r.profBegin(profile.OpPut); end != nil {
		defer end()
	}
	if err := armci.CheckContig(src, dst, n); err != nil {
		return err
	}
	segs, err := r.contigSegs(src, dst, n)
	if err != nil {
		return err
	}
	return r.putSegs(segs, dst.Rank, false, 1)
}

// Get copies n bytes from the global src to the local dst.
func (r *Runtime) Get(src, dst armci.Addr, n int) error {
	if end := r.profBegin(profile.OpGet); end != nil {
		defer end()
	}
	if err := armci.CheckContig(src, dst, n); err != nil {
		return err
	}
	segs, err := r.contigSegs(src, dst, n)
	if err != nil {
		return err
	}
	return r.getSegs(segs, src.Rank)
}

// Acc applies dst += scale*src on float64 elements.
func (r *Runtime) Acc(op armci.AccOp, scale float64, src, dst armci.Addr, n int) error {
	if end := r.profBegin(profile.OpAcc); end != nil {
		defer end()
	}
	if err := armci.CheckContig(src, dst, n); err != nil {
		return err
	}
	if n%8 != 0 {
		return fmt.Errorf("armci-ds: Acc size %d not a multiple of 8", n)
	}
	segs, err := r.contigSegs(src, dst, n)
	if err != nil {
		return err
	}
	return r.putSegs(segs, dst.Rank, true, scale)
}

// resolveStrided expands a strided descriptor into segments.
func (r *Runtime) resolveStrided(s *armci.Strided) ([]seg, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	sreg, err := r.region(s.Src, s.SrcSpan())
	if err != nil {
		return nil, err
	}
	dreg, err := r.region(s.Dst, s.DstSpan())
	if err != nil {
		return nil, err
	}
	segs := make([]seg, 0, s.Segments())
	s.Iterate(func(so, do int) {
		segs = append(segs, seg{
			srcVA: s.Src.VA + int64(so), dstVA: s.Dst.VA + int64(do),
			sreg: sreg, dreg: dreg, n: s.SegBytes(),
		})
	})
	return segs, nil
}

// PutS performs a strided put (the whole descriptor in one exchange —
// the data server unpacks it, which is this design's noncontiguous
// advantage).
func (r *Runtime) PutS(s *armci.Strided) error {
	if end := r.profBegin(profile.OpPutS); end != nil {
		defer end()
	}
	segs, err := r.resolveStrided(s)
	if err != nil {
		return err
	}
	return r.putSegs(segs, s.Dst.Rank, false, 1)
}

// GetS performs a strided get.
func (r *Runtime) GetS(s *armci.Strided) error {
	if end := r.profBegin(profile.OpGetS); end != nil {
		defer end()
	}
	segs, err := r.resolveStrided(s)
	if err != nil {
		return err
	}
	return r.getSegs(segs, s.Src.Rank)
}

// AccS performs a strided accumulate.
func (r *Runtime) AccS(op armci.AccOp, scale float64, s *armci.Strided) error {
	if end := r.profBegin(profile.OpAccS); end != nil {
		defer end()
	}
	if s.SegBytes()%8 != 0 {
		return fmt.Errorf("armci-ds: AccS segment size %d not float64-aligned", s.SegBytes())
	}
	segs, err := r.resolveStrided(s)
	if err != nil {
		return err
	}
	return r.putSegs(segs, s.Dst.Rank, true, scale)
}

// resolveIOV expands IOV descriptors into segments.
func (r *Runtime) resolveIOV(iov []armci.GIOV, proc int, remoteIsSrc bool) ([]seg, error) {
	if err := armci.ValidateIOV(iov, proc, remoteIsSrc); err != nil {
		return nil, err
	}
	var segs []seg
	for gi := range iov {
		g := &iov[gi]
		for i := range g.Src {
			sreg, err := r.region(g.Src[i], g.Bytes)
			if err != nil {
				return nil, err
			}
			dreg, err := r.region(g.Dst[i], g.Bytes)
			if err != nil {
				return nil, err
			}
			segs = append(segs, seg{srcVA: g.Src[i].VA, dstVA: g.Dst[i].VA,
				sreg: sreg, dreg: dreg, n: g.Bytes})
		}
	}
	return segs, nil
}

// PutV performs a generalized I/O vector put.
func (r *Runtime) PutV(iov []armci.GIOV, proc int) error {
	if end := r.profBegin(profile.OpPutV); end != nil {
		defer end()
	}
	segs, err := r.resolveIOV(iov, proc, false)
	if err != nil {
		return err
	}
	return r.putSegs(segs, proc, false, 1)
}

// GetV performs a generalized I/O vector get.
func (r *Runtime) GetV(iov []armci.GIOV, proc int) error {
	if end := r.profBegin(profile.OpGetV); end != nil {
		defer end()
	}
	segs, err := r.resolveIOV(iov, proc, true)
	if err != nil {
		return err
	}
	return r.getSegs(segs, proc)
}

// AccV performs a generalized I/O vector accumulate.
func (r *Runtime) AccV(op armci.AccOp, scale float64, iov []armci.GIOV, proc int) error {
	if end := r.profBegin(profile.OpAccV); end != nil {
		defer end()
	}
	for i := range iov {
		if iov[i].Bytes%8 != 0 {
			return fmt.Errorf("armci-ds: AccV segment size %d not float64-aligned", iov[i].Bytes)
		}
	}
	segs, err := r.resolveIOV(iov, proc, false)
	if err != nil {
		return err
	}
	return r.putSegs(segs, proc, true, scale)
}

// completed is a trivially complete nonblocking handle: puts complete
// locally at issue, and the data server protocol makes gets blocking.
type completed struct{}

func (completed) Wait()      {}
func (completed) Test() bool { return true }

// NbPut issues a put; local completion is immediate (buffered send).
func (r *Runtime) NbPut(src, dst armci.Addr, n int) (armci.Handle, error) {
	if err := r.Put(src, dst, n); err != nil {
		return nil, err
	}
	return completed{}, nil
}

// NbGet issues a get; the two-sided protocol completes it eagerly.
func (r *Runtime) NbGet(src, dst armci.Addr, n int) (armci.Handle, error) {
	if err := r.Get(src, dst, n); err != nil {
		return nil, err
	}
	return completed{}, nil
}

// NbPutS issues a strided put.
func (r *Runtime) NbPutS(s *armci.Strided) (armci.Handle, error) {
	if err := r.PutS(s); err != nil {
		return nil, err
	}
	return completed{}, nil
}

// NbGetS issues a strided get.
func (r *Runtime) NbGetS(s *armci.Strided) (armci.Handle, error) {
	if err := r.GetS(s); err != nil {
		return nil, err
	}
	return completed{}, nil
}

// NbAcc issues an accumulate (buffered at issue, locally complete).
func (r *Runtime) NbAcc(op armci.AccOp, scale float64, src, dst armci.Addr, n int) (armci.Handle, error) {
	if err := r.Acc(op, scale, src, dst, n); err != nil {
		return nil, err
	}
	return completed{}, nil
}

// NbAccS issues a strided accumulate.
func (r *Runtime) NbAccS(op armci.AccOp, scale float64, s *armci.Strided) (armci.Handle, error) {
	if err := r.AccS(op, scale, s); err != nil {
		return nil, err
	}
	return completed{}, nil
}

// NbPutV issues an I/O vector put.
func (r *Runtime) NbPutV(iov []armci.GIOV, proc int) (armci.Handle, error) {
	if err := r.PutV(iov, proc); err != nil {
		return nil, err
	}
	return completed{}, nil
}

// NbGetV issues an I/O vector get (eagerly complete, two-sided).
func (r *Runtime) NbGetV(iov []armci.GIOV, proc int) (armci.Handle, error) {
	if err := r.GetV(iov, proc); err != nil {
		return nil, err
	}
	return completed{}, nil
}

// NbAccV issues an I/O vector accumulate.
func (r *Runtime) NbAccV(op armci.AccOp, scale float64, iov []armci.GIOV, proc int) (armci.Handle, error) {
	if err := r.AccV(op, scale, iov, proc); err != nil {
		return nil, err
	}
	return completed{}, nil
}

// Fence blocks until operations to proc are remotely complete.
func (r *Runtime) Fence(proc int) {
	r.w.M.SleepUntil(r.p, r.w.lastRemote[r.Rank()][proc])
}

// AllFence fences every target.
func (r *Runtime) AllFence() {
	var last sim.Time
	for _, t := range r.w.lastRemote[r.Rank()] {
		if t > last {
			last = t
		}
	}
	r.w.M.SleepUntil(r.p, last)
}

// Barrier fences and synchronizes all processes.
func (r *Runtime) Barrier() {
	r.AllFence()
	r.coll.Barrier()
}

// Rmw performs an atomic read-modify-write, served (and therefore
// trivially serialized) by the target's data server.
func (r *Runtime) Rmw(op armci.RmwOp, addr armci.Addr, operand int64) (int64, error) {
	if end := r.profBegin(profile.OpRmw); end != nil {
		defer end()
	}
	if addr.Nil() {
		return 0, fmt.Errorf("armci-ds: Rmw on NULL address")
	}
	r.opCost()
	reg, err := r.region(addr, 8)
	if err != nil {
		return 0, err
	}
	m := r.w.M
	eng := m.Eng
	p := r.p
	me := r.Rank()
	node := m.NodeOf(addr.Rank)
	arrive := m.SendDataAsync(me, addr.Rank, 0, fabric.XferOpt{NoNIC: true})
	start, served := r.w.serve(node, arrive, 8, 0)
	pr := r.w.Obs.Prof()
	if pr != nil {
		pr.PhaseAt(me, profile.PhaseTargetQueue, arrive, start)
		pr.PhaseAt(me, profile.PhaseTargetProc, start, served)
		pr.Send(me, addr.Rank, profile.MsgAmo, profile.RouteDS, 8)
	}
	var old int64
	done := false
	va := addr.VA
	eng.At(served, func() {
		if pr != nil {
			pr.Recv(me, addr.Rank, profile.MsgAmo, profile.RouteDS, 8)
		}
		b := reg.Bytes(va, 8)
		old = int64(binary.LittleEndian.Uint64(b))
		switch op {
		case armci.FetchAndAdd:
			binary.LittleEndian.PutUint64(b, uint64(old+operand))
		case armci.Swap:
			binary.LittleEndian.PutUint64(b, uint64(operand))
		}
		back := m.SendDataAsync(addr.Rank, me, 0, fabric.XferOpt{NoNIC: true})
		eng.At(back, func() {
			done = true
			eng.Unpark(p)
		})
	})
	for !done {
		p.Park("armci-ds.Rmw")
	}
	return old, nil
}

// mutexHost mirrors the native implementation's server-side queues;
// here the data server itself plays the arbiter.
type mutexHost struct {
	counts []int
	held   map[[2]int]bool
	queue  map[[2]int][]*mutexWaiter
}

type mutexWaiter struct {
	p   *sim.Proc
	got bool
	eng *sim.Engine
}

func (w *mutexWaiter) grant() {
	w.got = true
	w.eng.Unpark(w.p)
}

type mutexSet struct {
	r    *Runtime
	host *mutexHost
}

// CreateMutexes collectively creates n mutexes hosted on the caller.
func (r *Runtime) CreateMutexes(n int) (armci.Mutexes, error) {
	if n < 0 {
		return nil, fmt.Errorf("armci-ds: CreateMutexes(%d)", n)
	}
	counts := r.coll.AllgatherI64([]int64{int64(n)})
	h := &mutexHost{counts: make([]int, len(counts)),
		held: map[[2]int]bool{}, queue: map[[2]int][]*mutexWaiter{}}
	for i, c := range counts {
		h.counts[i] = int(c)
	}
	if r.Rank() == 0 {
		r.w.mutexes = append(r.w.mutexes, h)
	} else {
		h = nil
	}
	r.coll.Barrier()
	if h == nil {
		h = r.w.mutexes[len(r.w.mutexes)-1]
	}
	return &mutexSet{r: r, host: h}, nil
}

// Lock acquires mutex mtx hosted on proc.
func (s *mutexSet) Lock(mtx, proc int) {
	r := s.r
	if mtx < 0 || mtx >= s.host.counts[proc] {
		panic(fmt.Sprintf("armci-ds: Lock(%d,%d): invalid mutex", mtx, proc))
	}
	r.opCost()
	m := r.w.M
	eng := m.Eng
	key := [2]int{proc, mtx}
	w := &mutexWaiter{p: r.p, eng: eng}
	arrive := m.SendDataAsync(r.Rank(), proc, 0, fabric.XferOpt{NoNIC: true})
	_, served := r.w.serve(m.NodeOf(proc), arrive, 0, 0)
	me := r.Rank()
	eng.At(served, func() {
		if !s.host.held[key] {
			s.host.held[key] = true
			back := m.SendDataAsync(proc, me, 0, fabric.XferOpt{NoNIC: true})
			eng.At(back, w.grant)
		} else {
			s.host.queue[key] = append(s.host.queue[key], w)
		}
	})
	for !w.got {
		r.p.Park("armci-ds.MutexLock")
	}
}

// Unlock releases mutex mtx on proc.
func (s *mutexSet) Unlock(mtx, proc int) {
	r := s.r
	r.opCost()
	m := r.w.M
	eng := m.Eng
	key := [2]int{proc, mtx}
	arrive := m.SendDataAsync(r.Rank(), proc, 0, fabric.XferOpt{NoNIC: true})
	_, served := r.w.serve(m.NodeOf(proc), arrive, 0, 0)
	eng.At(served, func() {
		q := s.host.queue[key]
		if len(q) == 0 {
			s.host.held[key] = false
			return
		}
		next := q[0]
		s.host.queue[key] = q[1:]
		relAt := eng.Now()
		by := r.Rank()
		back := m.SendDataAsync(proc, next.p.ID(), 0, fabric.XferOpt{NoNIC: true})
		eng.At(back, func() {
			// Critical path: the waiter's lock wait ends because this
			// rank released the mutex at relAt.
			if c := m.Obs.Crit(); c != nil {
				c.WakeGrant(next.p.ID(), by, relAt)
			}
			next.grant()
		})
	})
}

// Destroy collectively frees the mutex set.
func (s *mutexSet) Destroy() error {
	s.r.coll.Barrier()
	return nil
}

// AccessBegin grants direct access (node-shared memory, coherent).
func (r *Runtime) AccessBegin(addr armci.Addr, n int) ([]byte, error) {
	if addr.Rank != r.Rank() {
		return nil, fmt.Errorf("armci-ds: AccessBegin on remote address %v", addr)
	}
	reg, err := r.region(addr, n)
	if err != nil {
		return nil, err
	}
	r.dla[addr.VA] = true
	return reg.Bytes(addr.VA, n), nil
}

// AccessEnd completes a direct access section.
func (r *Runtime) AccessEnd(addr armci.Addr) error {
	if !r.dla[addr.VA] {
		return fmt.Errorf("armci-ds: AccessEnd without AccessBegin at %v", addr)
	}
	delete(r.dla, addr.VA)
	return nil
}

// SetAccessMode accepts the hint; nothing to relax on this backend.
func (r *Runtime) SetAccessMode(mode armci.AccessMode, addr armci.Addr) error {
	r.AllFence()
	r.coll.Barrier()
	return nil
}

// GroupCreateCollective creates a processor group (all world ranks call).
func (r *Runtime) GroupCreateCollective(members []int) (*armci.Group, error) {
	ms := sortedUnique(members)
	impl := r.coll.GroupComm(ms, true)
	if impl == nil {
		return nil, nil
	}
	return &armci.Group{Ranks: ms, Impl: impl}, nil
}

// GroupCreate creates a group noncollectively (members only).
func (r *Runtime) GroupCreate(members []int) (*armci.Group, error) {
	ms := sortedUnique(members)
	impl := r.coll.GroupComm(ms, false)
	return &armci.Group{Ranks: ms, Impl: impl}, nil
}

func sortedUnique(members []int) []int {
	ms := append([]int(nil), members...)
	sort.Ints(ms)
	out := ms[:0]
	for i, v := range ms {
		if i == 0 || v != ms[i-1] {
			out = append(out, v)
		}
	}
	return out
}
