package dataserver_test

import (
	"testing"

	"repro/internal/armci"
	"repro/internal/armcimpi"
	"repro/internal/harness"
	"repro/internal/sim"
)

// The full API contract is exercised by internal/harness (runtime
// contract + cross-stack equivalence) and internal/ga; these tests
// check the backend's structural properties from SectionIX.

func runDS(t *testing.T, n int, body func(rt armci.Runtime)) *harness.Job {
	t.Helper()
	j, err := harness.NewJob(harness.TestPlatform(), n, harness.ImplDataServer, armcimpi.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Eng.Run(n, func(p *sim.Proc) { body(j.Runtime(p)) }); err != nil {
		t.Fatal(err)
	}
	return j
}

func must(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}

func TestServerSerializesConcurrentRequests(t *testing.T) {
	// Gets from several origins to one node must queue at its data
	// server: the world's ServerWait counter records the queueing.
	j := runDS(t, 6, func(rt armci.Runtime) {
		addrs, err := rt.Malloc(1 << 20)
		must(t, err)
		if rt.Rank() >= 2 { // ranks 2..5 are on other nodes (2 cores/node)
			local := rt.MallocLocal(1 << 20)
			must(t, rt.Get(addrs[0], local, 1<<20))
		}
		rt.Barrier()
		must(t, rt.Free(addrs[rt.Rank()]))
	})
	if j.DSWorld.ServerWait <= 0 {
		t.Errorf("concurrent gets produced no server queueing (wait=%v)", j.DSWorld.ServerWait)
	}
	if j.DSWorld.Requests == 0 {
		t.Error("no requests accounted")
	}
}

func TestConsumedCoreSlowsCompute(t *testing.T) {
	// The harness reduces per-rank flops by 1/cores when the data
	// server backend is selected (the consumed core, SectionIX).
	timeFor := func(impl harness.Impl) sim.Time {
		j, err := harness.NewJob(harness.TestPlatform(), 2, impl, armcimpi.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		if err := j.Eng.Run(2, func(p *sim.Proc) {
			j.M.Compute(p, 1e6)
		}); err != nil {
			t.Fatal(err)
		}
		return j.Eng.Stats().FinalTime
	}
	native := timeFor(harness.ImplNative)
	ds := timeFor(harness.ImplDataServer)
	// TestPlatform has 2 cores/node: the data server halves the rate.
	if ds < native*3/2 {
		t.Errorf("consumed core not modeled: native %v vs ds %v", native, ds)
	}
}

func TestIntraNodeBypassesServer(t *testing.T) {
	// Node-local accesses use shared memory directly: no requests.
	j := runDS(t, 2, func(rt armci.Runtime) { // ranks 0,1 share a node
		addrs, err := rt.Malloc(4096)
		must(t, err)
		if rt.Rank() == 0 {
			local := rt.MallocLocal(4096)
			must(t, rt.Put(local, addrs[1], 4096))
			must(t, rt.Get(addrs[1], local, 4096))
		}
		rt.Barrier()
		must(t, rt.Free(addrs[rt.Rank()]))
	})
	if j.DSWorld.Requests != 0 {
		t.Errorf("intra-node transfers went through the server (%d requests)", j.DSWorld.Requests)
	}
}

func TestRemoteRoundTripCorrectness(t *testing.T) {
	runDS(t, 4, func(rt armci.Runtime) {
		addrs, err := rt.Malloc(256)
		must(t, err)
		if rt.Rank() == 0 {
			src := rt.MallocLocal(64)
			b, _ := rt.LocalBytes(src, 64)
			for i := range b {
				b[i] = byte(200 - i)
			}
			must(t, rt.Put(src, addrs[3].Add(16), 64)) // rank 3 is on another node
			rt.Fence(3)
			dst := rt.MallocLocal(64)
			must(t, rt.Get(addrs[3].Add(16), dst, 64))
			db, _ := rt.LocalBytes(dst, 64)
			for i := range db {
				if db[i] != byte(200-i) {
					t.Fatalf("byte %d = %d", i, db[i])
				}
			}
		}
		rt.Barrier()
		must(t, rt.Free(addrs[rt.Rank()]))
	})
}
