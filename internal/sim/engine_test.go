package sim

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestElapseAdvancesClock(t *testing.T) {
	e := NewEngine()
	var end Time
	err := e.Run(1, func(p *Proc) {
		if p.Now() != 0 {
			t.Errorf("start time = %v, want 0", p.Now())
		}
		p.Elapse(1500)
		end = p.Now()
	})
	if err != nil {
		t.Fatal(err)
	}
	if end != 1500 {
		t.Errorf("after Elapse(1500): now = %v, want 1500", end)
	}
	if e.Stats().FinalTime != 1500 {
		t.Errorf("FinalTime = %v, want 1500", e.Stats().FinalTime)
	}
}

func TestElapseZeroOrNegativeIsNoop(t *testing.T) {
	e := NewEngine()
	err := e.Run(1, func(p *Proc) {
		p.Elapse(0)
		p.Elapse(-5)
		if p.Now() != 0 {
			t.Errorf("now = %v, want 0", p.Now())
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRanksRunConcurrentlyInVirtualTime(t *testing.T) {
	// Two ranks each elapse 100; total virtual time is 100, not 200.
	e := NewEngine()
	err := e.Run(2, func(p *Proc) {
		p.Elapse(100)
	})
	if err != nil {
		t.Fatal(err)
	}
	if e.Stats().FinalTime != 100 {
		t.Errorf("FinalTime = %v, want 100", e.Stats().FinalTime)
	}
}

func TestEventOrderingByTimeThenSeq(t *testing.T) {
	e := NewEngine()
	var order []int
	err := e.Run(1, func(p *Proc) {
		e.At(50, func() { order = append(order, 2) })
		e.At(10, func() { order = append(order, 1) })
		e.At(50, func() { order = append(order, 3) }) // same time: FIFO by seq
		p.Elapse(100)
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []int{1, 2, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("event order = %v, want %v", order, want)
		}
	}
}

func TestParkUnparkAcrossRanks(t *testing.T) {
	e := NewEngine()
	var procs [2]*Proc
	got := false
	err := e.Run(2, func(p *Proc) {
		procs[p.ID()] = p
		if p.ID() == 0 {
			p.Park("waiting for rank 1")
			got = true
		} else {
			p.Elapse(42)
			e.Unpark(procs[0])
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if !got {
		t.Error("rank 0 was never unparked")
	}
}

func TestDeadlockDetection(t *testing.T) {
	e := NewEngine()
	err := e.Run(2, func(p *Proc) {
		p.Park("never woken")
	})
	if err == nil {
		t.Fatal("expected deadlock error")
	}
	d, ok := err.(*Deadlock)
	if !ok {
		t.Fatalf("error type = %T, want *Deadlock", err)
	}
	if len(d.Waiting) != 2 {
		t.Errorf("waiting ranks = %d, want 2", len(d.Waiting))
	}
	if !strings.Contains(err.Error(), "never woken") {
		t.Errorf("deadlock message %q should name the park reason", err)
	}
}

func TestRankPanicIsReported(t *testing.T) {
	e := NewEngine()
	err := e.Run(2, func(p *Proc) {
		if p.ID() == 1 {
			panic("boom")
		}
		p.Elapse(10)
	})
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("err = %v, want rank panic mentioning boom", err)
	}
}

func TestRunRejectsNonPositiveN(t *testing.T) {
	if err := NewEngine().Run(0, func(*Proc) {}); err == nil {
		t.Error("Run(0) should fail")
	}
}

func TestDeterministicInterleaving(t *testing.T) {
	// The same program must produce the same event trace every run.
	run := func() []int {
		e := NewEngine()
		var trace []int
		err := e.Run(4, func(p *Proc) {
			for i := 0; i < 5; i++ {
				p.Elapse(Time(10 * (p.ID() + 1)))
				trace = append(trace, p.ID())
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return trace
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("traces diverge at %d: %v vs %v", i, a, b)
		}
	}
}

func TestManyRanks(t *testing.T) {
	e := NewEngine()
	n := 500
	count := 0
	err := e.Run(n, func(p *Proc) {
		p.Elapse(Time(p.ID() + 1))
		count++
	})
	if err != nil {
		t.Fatal(err)
	}
	if count != n {
		t.Errorf("ran %d bodies, want %d", count, n)
	}
	if e.Stats().FinalTime != Time(n) {
		t.Errorf("FinalTime = %v, want %d", e.Stats().FinalTime, n)
	}
}

func TestAtClampsPastTimes(t *testing.T) {
	e := NewEngine()
	err := e.Run(1, func(p *Proc) {
		p.Elapse(100)
		fired := Time(-1)
		e.At(50, func() { fired = e.Now() }) // in the past: clamp to now
		p.Elapse(1)
		if fired != 100 {
			t.Errorf("past event fired at %v, want 100", fired)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestFromSecondsRoundTrip(t *testing.T) {
	if err := quick.Check(func(us uint32) bool {
		s := float64(us) / 1e6 // up to ~4295 seconds
		tm := FromSeconds(s)
		if s > 0 && tm <= 0 {
			return false
		}
		// Round-trip error is at most 1ns.
		diff := tm.Seconds() - s
		return diff < 1e-9 && diff > -1e-9
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestFromSecondsNeverZeroForPositive(t *testing.T) {
	if got := FromSeconds(1e-12); got != 1 {
		t.Errorf("FromSeconds(1e-12) = %v, want 1", got)
	}
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		t    Time
		want string
	}{
		{5, "5ns"},
		{1500, "1.500us"},
		{2500000, "2.500ms"},
		{3 * Second, "3.000s"},
	}
	for _, c := range cases {
		if got := c.t.String(); got != c.want {
			t.Errorf("(%d).String() = %q, want %q", int64(c.t), got, c.want)
		}
	}
}

func TestUnparkRunnableIsIdempotent(t *testing.T) {
	e := NewEngine()
	var target *Proc
	err := e.Run(2, func(p *Proc) {
		if p.ID() == 0 {
			target = p
			p.Park("double wake")
		} else {
			p.Elapse(1)
			e.Unpark(target)
			e.Unpark(target) // second unpark of a runnable proc: no-op
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestStatsCounters(t *testing.T) {
	e := NewEngine()
	err := e.Run(2, func(p *Proc) {
		p.Elapse(10)
		p.Elapse(10)
	})
	if err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	if st.Parks != 4 {
		t.Errorf("Parks = %d, want 4", st.Parks)
	}
	if st.Events != 4 {
		t.Errorf("Events = %d, want 4", st.Events)
	}
}

func TestMaxTimeWatchdog(t *testing.T) {
	e := NewEngine()
	e.MaxTime = 1000
	err := e.Run(1, func(p *Proc) {
		for { // virtual livelock: keeps sleeping forever
			p.Elapse(100)
		}
	})
	if err == nil {
		t.Fatal("watchdog did not fire")
	}
	if _, ok := err.(*ErrTimeLimit); !ok {
		t.Fatalf("error type %T, want *ErrTimeLimit", err)
	}
}

func TestMaxTimeNotTriggeredByNormalRun(t *testing.T) {
	e := NewEngine()
	e.MaxTime = 1000
	if err := e.Run(2, func(p *Proc) { p.Elapse(500) }); err != nil {
		t.Fatal(err)
	}
}
