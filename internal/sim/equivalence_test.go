package sim

import (
	"fmt"
	"testing"
)

// traceObs records every scheduling callback with its virtual time, so
// two runs can be compared event-for-event.
type traceObs struct {
	log []string
}

func (o *traceObs) RankParked(rank int, why string, at Time) {
	o.log = append(o.log, fmt.Sprintf("park r%d %s @%d", rank, why, at))
}

func (o *traceObs) RankResumed(rank int, at Time) {
	o.log = append(o.log, fmt.Sprintf("resume r%d @%d", rank, at))
}

// schedWorkload is a program that exercises every scheduling pathway
// the engine has: inline-eligible elapses, elapses with events due
// before the wake, events that unpark other ranks mid-elapse (forcing
// the reserved-seq fallback), exact ties at the wake time, and explicit
// park/unpark handshakes. Each rank appends to a shared order log, so
// any divergence in rank interleaving shows up directly.
func schedWorkload(e *Engine, order *[]string) func(p *Proc) {
	procs := make([]*Proc, 4)
	return func(p *Proc) {
		procs[p.ID()] = p
		mark := func(tag string) {
			*order = append(*order, fmt.Sprintf("r%d %s @%d", p.ID(), tag, p.Now()))
		}
		switch p.ID() {
		case 0:
			// Plain elapses, plus a handler scheduled to fire strictly
			// inside the second elapse window.
			p.Elapse(10)
			mark("a")
			e.At(p.Now()+5, func() { *order = append(*order, "ev0") })
			p.Elapse(20)
			mark("b")
			// Handler at exactly the wake time: the wake was scheduled
			// first, so it must win the tie.
			e.At(p.Now()+7, func() { *order = append(*order, "ev-tie") })
			p.Elapse(7)
			mark("c")
		case 1:
			// Handshake: park until rank 2 unparks us mid-elapse.
			p.Elapse(3)
			mark("wait")
			p.Park("handshake")
			mark("woken")
			p.Elapse(50)
			mark("done")
		case 2:
			// Unpark rank 1 from an event handler that fires while some
			// other rank is elapsing — the inline path must fall back.
			e.At(15, func() { e.Unpark(procs[1]) })
			p.Elapse(40)
			mark("d")
		case 3:
			// Tight loop of short elapses to interleave with everyone.
			for i := 0; i < 8; i++ {
				p.Elapse(6)
			}
			mark("loop-done")
		}
	}
}

func runWorkload(t *testing.T, noInline bool) (Stats, []string, []string) {
	t.Helper()
	e := NewEngine()
	e.noInlineElapse = noInline
	obs := &traceObs{}
	e.Observe(obs)
	var order []string
	if err := e.Run(4, schedWorkload(e, &order)); err != nil {
		t.Fatalf("noInline=%v: %v", noInline, err)
	}
	return e.Stats(), order, obs.log
}

// TestInlineElapseEquivalence proves the inline Elapse fast path
// produces a schedule byte-identical to the plain park/unpark path:
// same rank interleaving, same virtual timestamps, same engine
// counters, and the same observer callback sequence.
func TestInlineElapseEquivalence(t *testing.T) {
	slowStats, slowOrder, slowObs := runWorkload(t, true)
	fastStats, fastOrder, fastObs := runWorkload(t, false)

	if slowStats != fastStats {
		t.Errorf("stats diverge: slow=%+v fast=%+v", slowStats, fastStats)
	}
	if len(slowOrder) != len(fastOrder) {
		t.Fatalf("order length: slow=%d fast=%d\nslow=%v\nfast=%v",
			len(slowOrder), len(fastOrder), slowOrder, fastOrder)
	}
	for i := range slowOrder {
		if slowOrder[i] != fastOrder[i] {
			t.Errorf("order[%d]: slow=%q fast=%q", i, slowOrder[i], fastOrder[i])
		}
	}
	if len(slowObs) != len(fastObs) {
		t.Fatalf("observer length: slow=%d fast=%d\nslow=%v\nfast=%v",
			len(slowObs), len(fastObs), slowObs, fastObs)
	}
	for i := range slowObs {
		if slowObs[i] != fastObs[i] {
			t.Errorf("observer[%d]: slow=%q fast=%q", i, slowObs[i], fastObs[i])
		}
	}
}

// TestInlineElapseEquivalenceManyRanks stresses the tie-break machinery
// with ranks whose elapse durations repeatedly collide at common
// multiples.
func TestInlineElapseEquivalenceManyRanks(t *testing.T) {
	run := func(noInline bool) (Stats, []string) {
		e := NewEngine()
		e.noInlineElapse = noInline
		var order []string
		err := e.Run(6, func(p *Proc) {
			for i := 0; i < 12; i++ {
				p.Elapse(Time(2 * (p.ID()%3 + 1)))
				order = append(order, fmt.Sprintf("r%d@%d", p.ID(), p.Now()))
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return e.Stats(), order
	}
	slowStats, slowOrder := run(true)
	fastStats, fastOrder := run(false)
	if slowStats != fastStats {
		t.Errorf("stats diverge: slow=%+v fast=%+v", slowStats, fastStats)
	}
	if len(slowOrder) != len(fastOrder) {
		t.Fatalf("order length: slow=%d fast=%d", len(slowOrder), len(fastOrder))
	}
	for i := range slowOrder {
		if slowOrder[i] != fastOrder[i] {
			t.Fatalf("order[%d]: slow=%q fast=%q", i, slowOrder[i], fastOrder[i])
		}
	}
}

// BenchmarkElapseSoloRank measures the inline fast path: one rank
// sleeping repeatedly with no competing events. The slow-path variant
// pays the park/unpark channel round-trip on every call.
func BenchmarkElapseSoloRank(b *testing.B) {
	for _, mode := range []struct {
		name     string
		noInline bool
	}{{"inline", false}, {"parked", true}} {
		b.Run(mode.name, func(b *testing.B) {
			b.ReportAllocs()
			e := NewEngine()
			e.noInlineElapse = mode.noInline
			if err := e.Run(1, func(p *Proc) {
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					p.Elapse(1)
				}
			}); err != nil {
				b.Fatal(err)
			}
		})
	}
}

// BenchmarkElapseTwoRanks measures the contended path: two ranks whose
// sleeps interleave, so every elapse wakes through the scheduler.
func BenchmarkElapseTwoRanks(b *testing.B) {
	b.ReportAllocs()
	e := NewEngine()
	if err := e.Run(2, func(p *Proc) {
		if p.ID() == 0 {
			b.ResetTimer()
		}
		for i := 0; i < b.N; i++ {
			p.Elapse(1)
		}
	}); err != nil {
		b.Fatal(err)
	}
}
