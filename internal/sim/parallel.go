// Parallel mode: conservative time-window execution of the simulator
// across host cores.
//
// Ranks are partitioned into shards. Each shard owns a private event
// heap, runnable FIFO, virtual clock, sequence counter, and a full
// continuation dispatcher (the exact machinery of ModeContinuation,
// instantiated per shard), and executes on its own worker flow. Shards
// synchronize through a window barrier run by the coordinator (the
// goroutine that called Run):
//
//	windowStart = min over shards of the earliest undispatched event
//	windowEnd   = windowStart + Lookahead
//
// Inside a window [start, end) every shard dispatches only events with
// at < end, so no shard's clock can pass end. A cross-shard event must
// therefore be scheduled at t >= the sender's windowEnd (any delay >=
// Lookahead guarantees this); it cannot land in the receiver's past,
// which is the classic conservative-PDES argument. Cross-shard events
// travel through per-shard-pair outboxes, are swapped by the
// coordinator at the barrier, and each receiving shard merges its
// inbox into its heap — sorted by (time, virtual send time, source
// shard, outbox sequence) — before the next window opens, so the merge
// order is a pure function of virtual time and the partition: repeat
// runs are byte-identical regardless of host scheduling.
//
// With a single shard windowEnd is unbounded and no event ever crosses
// a shard boundary, so the run is statement-for-statement
// ModeContinuation: same heap order, same sequence numbers, same
// Stats, same observer stream. That is the configuration the full
// communication stacks use (their layers mutate remote-rank state
// synchronously — NIC clocks, lock queues, window memory — which no
// partition can confine). Multi-shard runs require a shard-confined
// workload: ranks touch only their own shard's state, and all
// cross-shard interaction flows through AtRank with at least Lookahead
// of virtual delay. fabric's sharded delivery path provides exactly
// that contract for node-aligned partitions.
//
// Divergences from the sequential modes, by design:
//
//   - The sequential engine stops the instant global alive hits zero
//     and drops any still-scheduled events. A multi-shard run only
//     observes "all ranks done" at a window barrier, so events inside
//     the final window may still dispatch. Workloads that end quiescent
//     (every scheduled event consumed before the last rank exits) are
//     unaffected, and equivalence tests use such workloads.
//   - MaxTime aborts at the first clock crossing per shard; when
//     several shards cross in one window, the lowest shard id's error
//     wins (deterministically), where the sequential engine would have
//     reported the temporally first.
package sim

import (
	"fmt"
	"sort"
)

// xev is a cross-shard event in flight: a closure plus the ordering
// key it will be merged under at the receiving shard.
type xev struct {
	at   Time
	sent Time  // sending shard's clock at scheduling time
	seq  int64 // sending shard's outbox sequence
	src  int   // sending shard id
	fn   func()
}

// shardReport is what a shard hands the coordinator at a barrier.
type shardReport struct {
	id      int
	next    Time // earliest undispatched local event; MaxTime if none
	alive   int
	failure error
	outbox  [][]xev // ownership moves to the coordinator
}

type cmdKind int

const (
	cmdWindow cmdKind = iota // open the next window and keep dispatching
	cmdDrain                 // the run is over abnormally; unwind fibers
	cmdExit                  // the run is over normally; release the flow
)

// shardCmd is the coordinator's barrier response.
type shardCmd struct {
	kind      cmdKind
	windowEnd Time
	inbox     []xev // cross-shard arrivals to merge before dispatching
}

// shard is one partition's private engine state plus its barrier
// endpoints. Exactly one flow of control runs a shard's dispatcher at
// any instant (the same invariant ModeContinuation maintains globally),
// so none of these fields need locks; the barrier channels provide the
// happens-before edges between shard flows and the coordinator.
type shard struct {
	e    *Engine
	id   int
	solo bool // single-shard run: exact sequential semantics

	now    Time
	seq    int64
	events eventHeap
	procs  []*Proc // this shard's ranks, ascending rank id

	runq   []*Proc
	rqHead int
	rqLen  int

	alive      int
	lastFinish Time // clock when the shard's last rank finished
	stats      Stats
	obs        Observer
	failure    error

	chanPool    []chan struct{}
	drainCursor int

	// windowEnd is the exclusive bound on dispatchable event times in
	// the current window; MaxTime means unbounded.
	windowEnd Time

	outSeq int64
	outbox [][]xev // indexed by destination shard id

	cmd  chan shardCmd // coordinator -> shard barrier response
	done chan struct{} // shard -> coordinator: drain/exit handshake
}

func (sh *shard) at(t Time, fn func()) {
	if t < sh.now {
		t = sh.now
	}
	sh.seq++
	sh.events.push(event{at: t, seq: sh.seq, fn: fn})
}

func (sh *shard) atWake(t Time, p *Proc) {
	if t < sh.now {
		t = sh.now
	}
	sh.seq++
	sh.events.push(event{at: t, seq: sh.seq, wake: p})
}

func (sh *shard) pushRunnable(p *Proc) {
	i := sh.rqHead + sh.rqLen
	if i >= len(sh.runq) {
		i -= len(sh.runq)
	}
	sh.runq[i] = p
	sh.rqLen++
}

func (sh *shard) popRunnable() *Proc {
	p := sh.runq[sh.rqHead]
	sh.runq[sh.rqHead] = nil
	sh.rqHead++
	if sh.rqHead == len(sh.runq) {
		sh.rqHead = 0
	}
	sh.rqLen--
	return p
}

// elapse is Proc.Elapse on a shard: the same inline fast path as the
// sequential engine, with one extra guard — the wake must land inside
// the current window, else the rank parks and the wake event waits for
// a window that covers it.
func (sh *shard) elapse(p *Proc, d Time) {
	e := sh.e
	if e.draining {
		panic(drainSignal{})
	}
	due := sh.now + d
	if e.noInlineElapse || sh.rqLen > 0 || (e.MaxTime > 0 && due > e.MaxTime) || due >= sh.windowEnd {
		sh.atWake(due, p)
		sh.park(p, "elapse", false)
		return
	}
	// Reserve the wake's sequence number before dispatching, exactly
	// as the sequential inline path does.
	sh.seq++
	wakeSeq := sh.seq
	sh.stats.Parks++
	if sh.obs != nil {
		sh.obs.RankParked(p.id, "elapse", sh.now)
	}
	for {
		if len(sh.events) == 0 || sh.events[0].at > due ||
			(sh.events[0].at == due && sh.events[0].seq > wakeSeq) {
			sh.stats.Events++
			sh.now = due
			if sh.obs != nil {
				sh.obs.RankResumed(p.id, sh.now)
			}
			return
		}
		ev := sh.events.pop()
		if ev.at > sh.now {
			sh.now = ev.at
		}
		sh.stats.Events++
		if ev.wake != nil {
			e.Unpark(ev.wake)
		} else {
			ev.fn()
		}
		if sh.rqLen > 0 {
			sh.events.push(event{at: due, seq: wakeSeq, wake: p})
			sh.park(p, "elapse", true)
			return
		}
	}
}

// park is contPark on a shard: the parking rank executes the shard's
// dispatch loop, hands control to the next runnable flow, and blocks
// on its pooled wake slot.
func (sh *shard) park(p *Proc, why string, preCounted bool) {
	e := sh.e
	if e.draining {
		panic(drainSignal{})
	}
	p.state = stateParked
	p.why = why
	if !preCounted {
		sh.stats.Parks++
		if sh.obs != nil {
			sh.obs.RankParked(p.id, why, sh.now)
		}
	}
	if next := sh.advance(false); next != nil {
		panic("sim: internal: shard advance(false) returned a fresh proc")
	}
	<-p.wake
	if e.draining {
		panic(drainSignal{})
	}
	p.state = stateRunning
	p.why = ""
	if sh.obs != nil {
		sh.obs.RankResumed(p.id, sh.now)
	}
}

// advance is the shard's dispatch loop, mirroring Engine.advance. The
// extra exit is the window bound: when nothing is dispatchable below
// windowEnd, the current flow carries the shard into the barrier and
// resumes dispatching when the coordinator opens the next window.
func (sh *shard) advance(mayInline bool) *Proc {
	e := sh.e
	for {
		if e.draining {
			sh.drainNext()
			return nil
		}
		if sh.failure != nil {
			if sh.barrier() {
				continue
			}
			return nil
		}
		if sh.rqLen > 0 {
			p := sh.popRunnable()
			if p.started {
				p.wake <- struct{}{} // resume the parked fiber; never blocks (cap 1)
				return nil
			}
			if mayInline {
				return p
			}
			sh.spawnFiber(p)
			return nil
		}
		if sh.solo && sh.alive == 0 {
			// Exact sequential termination: remaining events are
			// dropped the instant the last rank finishes.
			if sh.barrier() {
				continue
			}
			return nil
		}
		if len(sh.events) == 0 || sh.events[0].at >= sh.windowEnd {
			if sh.barrier() {
				continue
			}
			return nil
		}
		ev := sh.events.pop()
		if ev.at > sh.now {
			sh.now = ev.at
		}
		if e.MaxTime > 0 && sh.now > e.MaxTime {
			sh.failure = &ErrTimeLimit{At: sh.now}
			continue
		}
		sh.stats.Events++
		if ev.wake != nil {
			e.Unpark(ev.wake)
		} else {
			ev.fn()
		}
	}
}

// barrier reports the shard's state to the coordinator and blocks the
// current flow until the coordinator answers. True means "keep
// dispatching" (a new window opened, or a drain was initiated and the
// loop top will pick it up); false releases the flow for good.
func (sh *shard) barrier() bool {
	next := MaxTime
	if len(sh.events) > 0 {
		next = sh.events[0].at
	}
	rep := shardReport{id: sh.id, next: next, alive: sh.alive, failure: sh.failure, outbox: sh.outbox}
	sh.outbox = make([][]xev, len(sh.outbox))
	sh.e.reports <- rep
	cmd := <-sh.cmd
	switch cmd.kind {
	case cmdWindow:
		sh.ingest(cmd.inbox)
		sh.windowEnd = cmd.windowEnd
		return true
	case cmdDrain:
		return true // e.draining is set; the loop top drains
	default: // cmdExit
		sh.done <- struct{}{}
		return false
	}
}

// ingest merges one window's cross-shard arrivals into the heap. The
// sort key (at, sent, src, seq) is a total order — seq is unique per
// source shard — so the merged sequence numbering is deterministic.
// Ordering by virtual send time first reproduces sequential creation
// order whenever the sending instants differ; only events scheduled at
// identical (at, sent) from different shards can tie, and those
// resolve by shard id.
func (sh *shard) ingest(inbox []xev) {
	if len(inbox) == 0 {
		return
	}
	sort.Slice(inbox, func(i, j int) bool {
		a, b := inbox[i], inbox[j]
		if a.at != b.at {
			return a.at < b.at
		}
		if a.sent != b.sent {
			return a.sent < b.sent
		}
		if a.src != b.src {
			return a.src < b.src
		}
		return a.seq < b.seq
	})
	for _, x := range inbox {
		sh.seq++
		sh.events.push(event{at: x.at, seq: sh.seq, fn: x.fn})
	}
}

// getChan / putChan / spawnFiber / fiberLoop / drainNext are the
// continuation-mode fiber machinery, per shard.

func (sh *shard) getChan() chan struct{} {
	if n := len(sh.chanPool); n > 0 {
		ch := sh.chanPool[n-1]
		sh.chanPool[n-1] = nil
		sh.chanPool = sh.chanPool[:n-1]
		return ch
	}
	return make(chan struct{}, 1)
}

func (sh *shard) putChan(ch chan struct{}) {
	sh.chanPool = append(sh.chanPool, ch)
}

func (sh *shard) spawnFiber(p *Proc) {
	p.started = true
	p.wake = sh.getChan()
	go sh.fiberLoop(p)
}

func (sh *shard) fiberLoop(p *Proc) {
	for {
		sh.e.runBody(p)
		ch := p.wake
		p.wake = nil
		sh.putChan(ch)
		next := sh.advance(true)
		if next == nil {
			return
		}
		next.started = true
		next.wake = sh.getChan()
		p = next
	}
}

// drainNext resumes the shard's next blocked fiber in rank order so it
// unwinds, or signals the coordinator when none remain. Drains of
// different shards never overlap: the coordinator walks shards in id
// order and waits for each handshake.
func (sh *shard) drainNext() {
	for sh.drainCursor < len(sh.procs) {
		p := sh.procs[sh.drainCursor]
		sh.drainCursor++
		if p.started && p.state != stateDone {
			p.wake <- struct{}{}
			return
		}
	}
	sh.done <- struct{}{}
}

// ShardClock is a per-shard virtual clock view, usable as an observer
// clock before, during, and after a parallel Run (it resolves lazily,
// so it can be constructed before the shards exist).
type ShardClock struct {
	e *Engine
	s int
}

// Now returns the shard's current virtual time (the engine's global
// clock until the parallel run materializes its shards).
func (c ShardClock) Now() Time {
	if c.s < len(c.e.shardSet) {
		return c.e.shardSet[c.s].now
	}
	return c.e.now
}

// ShardClock returns the clock view of shard s.
func (e *Engine) ShardClock(s int) ShardClock { return ShardClock{e: e, s: s} }

// ShardOf reports which shard rank i lands on under the engine's
// configuration (Shards/Partition), independent of whether the run has
// started. n is the rank count Run will be called with.
func (e *Engine) ShardOf(i, n int) int {
	k := e.shardCount(n)
	if e.Partition != nil {
		return e.Partition[i]
	}
	return i * k / n
}

// shardCount resolves the effective shard count for n ranks.
func (e *Engine) shardCount(n int) int {
	k := e.Shards
	if k <= 0 {
		k = 1
	}
	if k > n {
		k = n
	}
	return k
}

// runParallel is the ModeParallel driver: it materializes the shards,
// starts one worker flow per shard, then runs the window barrier until
// the simulation finishes, deadlocks, times out, or fails.
func (e *Engine) runParallel(n int) error {
	k := e.shardCount(n)
	if e.Partition != nil {
		if len(e.Partition) != n {
			return fmt.Errorf("sim: Partition has %d entries for %d ranks", len(e.Partition), n)
		}
		for i, s := range e.Partition {
			if s < 0 || s >= k {
				return fmt.Errorf("sim: Partition[%d] = %d outside [0, %d)", i, s, k)
			}
		}
	}
	if k > 1 {
		if e.Lookahead <= 0 {
			return fmt.Errorf("sim: ModeParallel with %d shards requires Lookahead > 0", k)
		}
		if e.obs != nil && e.ShardObservers == nil {
			return fmt.Errorf("sim: a single Observer would race across %d shards; use ShardObservers", k)
		}
		if len(e.events) > 0 {
			return fmt.Errorf("sim: events scheduled before a multi-shard Run have no home shard; use AtRank after Run starts")
		}
	}

	e.reports = make(chan shardReport, k)
	shards := make([]*shard, k)
	for s := range shards {
		sh := &shard{
			e:         e,
			id:        s,
			solo:      k == 1,
			windowEnd: MaxTime,
			outbox:    make([][]xev, k),
			cmd:       make(chan shardCmd, 1),
			done:      make(chan struct{}),
		}
		if k == 1 && e.obs != nil {
			sh.obs = e.obs
		} else if e.ShardObservers != nil {
			sh.obs = e.ShardObservers(s)
		}
		shards[s] = sh
	}
	if k == 1 && len(e.events) > 0 {
		// Events scheduled before Run keep their sequence numbers.
		shards[0].events = e.events
		shards[0].seq = e.seq
		e.events = nil
	}
	slab := make([]Proc, n)
	for i := range slab {
		p := &slab[i]
		p.id = i
		p.e = e
		p.sh = shards[e.ShardOf(i, n)]
		p.state = stateRunnable
		e.procs[i] = p
		p.sh.procs = append(p.sh.procs, p)
		p.sh.alive++
	}
	for _, sh := range shards {
		sh.runq = make([]*Proc, len(sh.procs))
		for _, p := range sh.procs {
			sh.pushRunnable(p)
		}
	}
	if k > 1 {
		// The first window starts at 0, where every rank begins.
		for _, sh := range shards {
			sh.windowEnd = e.Lookahead
		}
	}
	e.shardSet = shards

	for _, sh := range shards {
		sh := sh
		go func() {
			if next := sh.advance(false); next != nil {
				panic("sim: internal: shard seed returned a fresh proc")
			}
		}()
	}
	return e.coordinate(shards)
}

// coordinate runs the window barrier: collect one report per shard,
// merge outboxes, and decide — finish, drain, or open the next window
// at the global minimum next event time (window hopping: idle gaps are
// skipped in one step).
func (e *Engine) coordinate(shards []*shard) error {
	k := len(shards)
	reports := make([]shardReport, k)
	for {
		for i := 0; i < k; i++ {
			r := <-e.reports
			reports[r.id] = r
		}
		totalAlive := 0
		next := MaxTime
		var failure error
		inboxes := make([][]xev, k)
		for s := range reports {
			r := &reports[s]
			totalAlive += r.alive
			if failure == nil && r.failure != nil {
				failure = r.failure // lowest shard id wins, deterministically
			}
			if r.next < next {
				next = r.next
			}
			for d, evs := range r.outbox {
				if len(evs) == 0 {
					continue
				}
				inboxes[d] = append(inboxes[d], evs...)
				for i := range evs {
					if evs[i].at < next {
						next = evs[i].at
					}
				}
			}
		}
		switch {
		case failure != nil:
			return e.parDrain(shards, failure)
		case totalAlive == 0:
			var final Time
			for _, sh := range shards {
				if sh.lastFinish > final {
					final = sh.lastFinish
				}
			}
			for _, sh := range shards {
				sh.cmd <- shardCmd{kind: cmdExit}
				<-sh.done
			}
			e.mergeShardStats(shards)
			e.stats.FinalTime = final
			return nil
		case next == MaxTime:
			return e.parDrain(shards, e.parDeadlock(shards))
		case e.MaxTime > 0 && next > e.MaxTime:
			// The earliest event anywhere lies beyond the limit; the
			// sequential engine would dispatch it and abort at its
			// timestamp.
			return e.parDrain(shards, &ErrTimeLimit{At: next})
		}
		winEnd := MaxTime
		if k > 1 {
			winEnd = next + e.Lookahead
			if winEnd < next {
				winEnd = MaxTime // overflow clamp
			}
		}
		for s, sh := range shards {
			sh.cmd <- shardCmd{kind: cmdWindow, windowEnd: winEnd, inbox: inboxes[s]}
		}
	}
}

// parDrain ends an abnormal parallel run: shards drain one at a time,
// in shard id order, each unwinding its blocked fibers in rank order —
// so the full drain sequence is deterministic and every goroutine has
// exited when Run returns. FinalTime stays zero, matching the
// sequential modes' abnormal ends.
func (e *Engine) parDrain(shards []*shard, err error) error {
	e.draining = true
	e.drainErr = err
	for _, sh := range shards {
		sh.cmd <- shardCmd{kind: cmdDrain}
		<-sh.done
	}
	e.mergeShardStats(shards)
	return err
}

// parDeadlock builds the deadlock report for a parallel run: no shard
// has events, every living rank is parked. Time is the latest shard
// clock (for one shard, exactly the sequential report).
func (e *Engine) parDeadlock(shards []*shard) *Deadlock {
	var at Time
	for _, sh := range shards {
		if sh.now > at {
			at = sh.now
		}
	}
	d := &Deadlock{Time: at, Waiting: map[int]string{}}
	for _, p := range e.procs {
		if p.state == stateParked {
			d.Waiting[p.id] = p.why
		}
	}
	return d
}

// mergeShardStats folds per-shard counters into the engine's Stats.
// Every event is dispatched by exactly one shard and every park is
// counted by exactly one shard, so the sums equal the sequential
// counts for equivalent schedules.
func (e *Engine) mergeShardStats(shards []*shard) {
	for _, sh := range shards {
		e.stats.Events += sh.stats.Events
		e.stats.Parks += sh.stats.Parks
	}
}
