package sim

import (
	"errors"
	"fmt"
	"runtime"
	"strings"
	"testing"
)

// rankLogObs records scheduling callbacks keyed by rank, so per-rank
// observer streams can be compared across partitions (each shard owns
// one instance; maps are merged only after Run returns).
type rankLogObs struct {
	logs map[int][]string
}

func newRankLogObs() *rankLogObs { return &rankLogObs{logs: map[int][]string{}} }

func (o *rankLogObs) RankParked(rank int, why string, at Time) {
	o.logs[rank] = append(o.logs[rank], fmt.Sprintf("park %s @%d", why, at))
}

func (o *rankLogObs) RankResumed(rank int, at Time) {
	o.logs[rank] = append(o.logs[rank], fmt.Sprintf("resume @%d", at))
}

// confinedWorkload is a shard-confined message workload: every rank
// alternates compute elapses with messages to the rank halfway across
// the job, sent through AtRank with at least lat of virtual delay, and
// finishes only after receiving everything addressed to it — so the
// run ends quiescent and is schedule-equivalent under any node-aligned
// partition. All mutable state is per-rank and touched only by the
// owning rank's shard (message handlers run at the destination).
func confinedWorkload(e *Engine, n, rounds int, lat Time) func(*Proc) {
	procs := make([]*Proc, n)
	inbox := make([]int, n)
	waiting := make([]bool, n)
	return func(p *Proc) {
		r := p.ID()
		procs[r] = p
		partner := (r + n/2) % n
		for i := 0; i < rounds; i++ {
			p.Elapse(Time(101*(r%7+1) + 13*i))
			at := p.Now() + lat + Time(17*r+11*i)
			e.AtRank(at, r, partner, func() {
				inbox[partner]++
				if waiting[partner] {
					waiting[partner] = false
					e.Unpark(procs[partner])
				}
			})
		}
		for inbox[r] < rounds {
			waiting[r] = true
			p.Park("recv")
		}
	}
}

// runConfined executes confinedWorkload under the given mode and shard
// count and returns the engine stats plus the per-rank observer
// streams.
func runConfined(t *testing.T, mode Mode, shards int, lat Time, noInline bool) (Stats, map[int][]string) {
	t.Helper()
	const n, rounds = 16, 6
	e := NewEngine()
	e.Mode = mode
	e.noInlineElapse = noInline
	logs := map[int][]string{}
	if mode == ModeParallel && shards > 1 {
		e.Shards = shards
		e.Lookahead = lat
		per := make([]*rankLogObs, shards)
		for s := range per {
			per[s] = newRankLogObs()
		}
		e.ShardObservers = func(s int) Observer { return per[s] }
		defer func() {
			for _, o := range per {
				for r, l := range o.logs {
					logs[r] = l
				}
			}
		}()
	} else {
		o := newRankLogObs()
		e.Observe(o)
		defer func() {
			for r, l := range o.logs {
				logs[r] = l
			}
		}()
	}
	if err := e.Run(n, confinedWorkload(e, n, rounds, lat)); err != nil {
		t.Fatalf("mode=%v shards=%d: %v", mode, shards, err)
	}
	return e.Stats(), logs
}

// TestParallelEquivalence is the sim-level acceptance test for
// ModeParallel: for a shard-confined workload, engine counters, final
// time, and every rank's observer stream are identical across the
// goroutine reference, the continuation scheduler, and parallel runs
// at 1, 2, 4, and 8 shards — with and without the inline-Elapse fast
// path.
func TestParallelEquivalence(t *testing.T) {
	const lat = Time(4000)
	for _, noInline := range []bool{false, true} {
		name := "inline"
		if noInline {
			name = "noInline"
		}
		t.Run(name, func(t *testing.T) {
			refStats, refLogs := runConfined(t, ModeGoroutine, 0, lat, noInline)
			contStats, contLogs := runConfined(t, ModeContinuation, 0, lat, noInline)
			compareRankLogs(t, "continuation", refStats, contStats, refLogs, contLogs)
			for _, shards := range []int{1, 2, 4, 8} {
				parStats, parLogs := runConfined(t, ModeParallel, shards, lat, noInline)
				compareRankLogs(t, fmt.Sprintf("parallel-%d", shards), refStats, parStats, refLogs, parLogs)
			}
		})
	}
}

func compareRankLogs(t *testing.T, label string, refStats, gotStats Stats, ref, got map[int][]string) {
	t.Helper()
	if refStats != gotStats {
		t.Errorf("%s: stats diverge: ref=%+v got=%+v", label, refStats, gotStats)
	}
	if len(ref) != len(got) {
		t.Fatalf("%s: rank sets differ: %d vs %d", label, len(ref), len(got))
	}
	for r, rl := range ref {
		gl := got[r]
		if len(rl) != len(gl) {
			t.Errorf("%s: rank %d stream length %d vs %d\nref=%v\ngot=%v", label, r, len(rl), len(gl), rl, gl)
			continue
		}
		for i := range rl {
			if rl[i] != gl[i] {
				t.Errorf("%s: rank %d entry %d: ref=%q got=%q", label, r, i, rl[i], gl[i])
			}
		}
	}
}

// TestParallelDeterminism: two identical multi-shard runs produce
// identical stats and observer streams regardless of host scheduling.
func TestParallelDeterminism(t *testing.T) {
	s1, l1 := runConfined(t, ModeParallel, 4, 4000, false)
	s2, l2 := runConfined(t, ModeParallel, 4, 4000, false)
	compareRankLogs(t, "repeat", s1, s2, l1, l2)
}

// TestParallelSingleShardWorkload: the full scheduling workload from
// the continuation equivalence suite (At, Unpark from handlers, tie
// breaks) runs identically under single-shard parallel — the
// configuration the full communication stacks use.
func TestParallelSingleShardWorkload(t *testing.T) {
	for _, noInline := range []bool{false, true} {
		name := "inline"
		if noInline {
			name = "noInline"
		}
		t.Run(name, func(t *testing.T) {
			refStats, refOrder, refObs := runWorkloadMode(t, ModeGoroutine, noInline)
			parStats, parOrder, parObs := runWorkloadMode(t, ModeParallel, noInline)
			if refStats != parStats {
				t.Errorf("stats diverge: goroutine=%+v parallel=%+v", refStats, parStats)
			}
			if fmt.Sprint(refOrder) != fmt.Sprint(parOrder) {
				t.Errorf("order diverges:\nref=%v\npar=%v", refOrder, parOrder)
			}
			if fmt.Sprint(refObs) != fmt.Sprint(parObs) {
				t.Errorf("observer diverges:\nref=%v\npar=%v", refObs, parObs)
			}
		})
	}
}

// TestParallelLookaheadViolation: a cross-shard event scheduled closer
// than the window bound is a workload bug and must surface as a run
// error naming the violation.
func TestParallelLookaheadViolation(t *testing.T) {
	e := NewEngine()
	e.Mode = ModeParallel
	e.Shards = 2
	e.Lookahead = 1000
	err := e.Run(4, func(p *Proc) {
		if p.ID() == 0 {
			e.AtRank(p.Now()+1, 0, 3, func() {})
		}
		p.Elapse(10)
	})
	if err == nil || !strings.Contains(err.Error(), "lookahead") {
		t.Fatalf("want lookahead violation error, got %v", err)
	}
}

// TestParallelConfigErrors: invalid parallel configurations fail fast
// with descriptive errors instead of racing or hanging.
func TestParallelConfigErrors(t *testing.T) {
	body := func(p *Proc) {}
	t.Run("missing lookahead", func(t *testing.T) {
		e := NewEngine()
		e.Mode = ModeParallel
		e.Shards = 2
		if err := e.Run(4, body); err == nil || !strings.Contains(err.Error(), "Lookahead") {
			t.Fatalf("want Lookahead error, got %v", err)
		}
	})
	t.Run("bad partition length", func(t *testing.T) {
		e := NewEngine()
		e.Mode = ModeParallel
		e.Shards = 2
		e.Lookahead = 10
		e.Partition = []int{0, 1}
		if err := e.Run(4, body); err == nil || !strings.Contains(err.Error(), "Partition") {
			t.Fatalf("want Partition error, got %v", err)
		}
	})
	t.Run("partition out of range", func(t *testing.T) {
		e := NewEngine()
		e.Mode = ModeParallel
		e.Shards = 2
		e.Lookahead = 10
		e.Partition = []int{0, 1, 2, 0}
		if err := e.Run(4, body); err == nil || !strings.Contains(err.Error(), "Partition") {
			t.Fatalf("want Partition range error, got %v", err)
		}
	})
	t.Run("racy single observer", func(t *testing.T) {
		e := NewEngine()
		e.Mode = ModeParallel
		e.Shards = 2
		e.Lookahead = 10
		e.Observe(&traceObs{})
		if err := e.Run(4, body); err == nil || !strings.Contains(err.Error(), "ShardObservers") {
			t.Fatalf("want ShardObservers error, got %v", err)
		}
	})
}

// parallelEngine builds a 4-shard engine for the abnormal-end tests.
func parallelEngine() *Engine {
	e := NewEngine()
	e.Mode = ModeParallel
	e.Shards = 4
	e.Lookahead = 1000
	return e
}

// TestParallelDrainOnPanic: a rank panic on one shard drains every
// blocked fiber on every shard — deterministically, without leaking
// goroutines — before Run returns.
func TestParallelDrainOnPanic(t *testing.T) {
	before := runtime.NumGoroutine()
	for iter := 0; iter < 20; iter++ {
		e := parallelEngine()
		err := e.Run(16, func(p *Proc) {
			if p.ID() == 5 {
				p.Elapse(10)
				panic("kaboom")
			}
			p.Park("victim")
		})
		if err == nil || !strings.Contains(err.Error(), "kaboom") {
			t.Fatalf("iter %d: want panic error, got %v", iter, err)
		}
	}
	if after := settledGoroutines(before + 2); after > before+2 {
		t.Fatalf("goroutines leaked: before=%d after=%d", before, after)
	}
}

// TestParallelDeadlock: all ranks parked with no events anywhere is a
// global deadlock, reported with the full waiting set and drained
// cleanly.
func TestParallelDeadlock(t *testing.T) {
	before := runtime.NumGoroutine()
	for iter := 0; iter < 20; iter++ {
		e := parallelEngine()
		err := e.Run(16, func(p *Proc) {
			p.Park("forever")
		})
		var d *Deadlock
		if !errors.As(err, &d) {
			t.Fatalf("iter %d: want *Deadlock, got %v", iter, err)
		}
		if len(d.Waiting) != 16 {
			t.Fatalf("iter %d: want 16 waiting ranks, got %d", iter, len(d.Waiting))
		}
	}
	if after := settledGoroutines(before + 2); after > before+2 {
		t.Fatalf("goroutines leaked: before=%d after=%d", before, after)
	}
}

// TestParallelMaxTime: the virtual-time watchdog fires under parallel
// execution and drains all shards.
func TestParallelMaxTime(t *testing.T) {
	before := runtime.NumGoroutine()
	for iter := 0; iter < 20; iter++ {
		e := parallelEngine()
		e.MaxTime = 5000
		err := e.Run(16, func(p *Proc) {
			for {
				p.Elapse(300)
			}
		})
		var tl *ErrTimeLimit
		if !errors.As(err, &tl) {
			t.Fatalf("iter %d: want *ErrTimeLimit, got %v", iter, err)
		}
	}
	if after := settledGoroutines(before + 2); after > before+2 {
		t.Fatalf("goroutines leaked: before=%d after=%d", before, after)
	}
}

// TestParallelShardOf covers the default contiguous partition and the
// explicit override.
func TestParallelShardOf(t *testing.T) {
	e := NewEngine()
	e.Shards = 4
	want := []int{0, 0, 1, 1, 2, 2, 3, 3}
	for i, w := range want {
		if got := e.ShardOf(i, len(want)); got != w {
			t.Errorf("ShardOf(%d) = %d, want %d", i, got, w)
		}
	}
	e.Partition = []int{3, 2, 1, 0}
	for i, w := range e.Partition {
		if got := e.ShardOf(i, 4); got != w {
			t.Errorf("explicit ShardOf(%d) = %d, want %d", i, got, w)
		}
	}
}

// BenchmarkParallelShards drives the shard-confined workload across
// shard counts; under -race in CI this is the parallel-mode smoke.
func BenchmarkParallelShards(b *testing.B) {
	for _, shards := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("shards-%d", shards), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				e := NewEngine()
				e.Mode = ModeParallel
				e.Shards = shards
				e.Lookahead = 4000
				if err := e.Run(64, confinedWorkload(e, 64, 8, 4000)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
