// Package sim provides a deterministic discrete-event simulation engine
// in which "ranks" (processes of a simulated parallel machine) execute
// under a cooperative scheduler. Exactly one flow of control — the
// scheduler or a single rank — is active at any instant, so every run
// is bit-reproducible: virtual time advances only when the event heap is
// popped, and ties are broken by insertion sequence.
//
// Higher layers (fabric, MPI, ARMCI) are built from three primitives:
// Elapse (charge local virtual time), Park/Unpark (block a rank until a
// condition is signalled), and At (schedule a handler at a future virtual
// time). Handlers run under the dispatcher and must not block.
//
// The engine has two execution modes, selected by the Mode field:
//
//   - ModeGoroutine (the default and the reference): every rank gets its
//     own goroutine up front, and a central scheduler goroutine resumes
//     one rank at a time over a channel rendezvous. Each park costs two
//     hops (rank -> scheduler -> next rank).
//
//   - ModeContinuation: rank bodies run as resumable steps driven
//     directly by the event loop. There is no scheduler goroutine; the
//     dispatch loop (the captured continuation of the simulation) is
//     executed by whichever rank is parking or finishing, and control
//     transfers to the next runnable rank with a single wake. Fibers are
//     spawned lazily at first dispatch, a finishing fiber keeps executing
//     fresh rank bodies until one parks (run-to-completion batching), and
//     wake slots are pooled, so a job's live goroutine count is the
//     number of simultaneously parked ranks, not N. Proc records live in
//     one slab. This is the mode that holds 16k-rank sweeps.
//
//   - ModeParallel: ranks are partitioned into shards, each with its own
//     event heap, runnable FIFO, clock, and continuation dispatcher, and
//     the shards execute concurrently inside conservative time windows
//     bounded by a lookahead (see parallel.go). With one shard the mode
//     is exactly ModeContinuation — same heap, same sequence numbers,
//     byte-identical observables — which is how the full communication
//     stacks run under it; multiple shards require the workload to be
//     shard-confined (cross-shard interaction only through AtRank with
//     at least the configured Lookahead of delay).
//
// The sequential modes share the event heap, the runnable FIFO, and the
// sequence numbering, so they produce byte-identical schedules, Stats
// counters, and observer callback streams (see
// TestContinuationEquivalence and TestParallelEquivalence).
//
// The engine's own wall-clock cost is kept off the simulated results'
// critical path by three mechanisms: events are value-typed in the heap
// slice (the popped slots double as a free list, so scheduling allocates
// nothing once the heap has grown), pure time-advance wakeups carry the
// parked Proc instead of a closure, and Elapse takes an inline fast path
// that advances the clock without any channel ping-pong whenever no
// earlier event or runnable rank could interleave. The fast path
// consumes the same sequence number and counts the same Parks and
// Events as the slow path, so engine counters and every downstream
// virtual-time result are byte-identical whichever path runs.
package sim

import (
	"fmt"
	"math"
	"sort"
)

// Time is virtual time in nanoseconds.
type Time int64

// Common durations.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000
	Millisecond Time = 1000 * 1000
	Second      Time = 1000 * 1000 * 1000
)

// MaxTime is the largest representable virtual time.
const MaxTime Time = math.MaxInt64

// Seconds converts a virtual duration to floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / 1e9 }

// Micros converts a virtual duration to floating-point microseconds.
func (t Time) Micros() float64 { return float64(t) / 1e3 }

// FromSeconds converts floating-point seconds to a virtual duration,
// rounding to the nearest nanosecond and never rounding a positive
// duration down to zero.
func FromSeconds(s float64) Time {
	t := Time(s*1e9 + 0.5)
	if t <= 0 && s > 0 {
		t = 1
	}
	return t
}

// String formats the time in human units.
func (t Time) String() string {
	switch {
	case t >= Second:
		return fmt.Sprintf("%.3fs", t.Seconds())
	case t >= Millisecond:
		return fmt.Sprintf("%.3fms", float64(t)/1e6)
	case t >= Microsecond:
		return fmt.Sprintf("%.3fus", float64(t)/1e3)
	default:
		return fmt.Sprintf("%dns", int64(t))
	}
}

// Mode selects the engine's execution strategy. Both modes produce
// byte-identical virtual-time results; they differ only in host-side
// goroutine and memory footprint.
type Mode int

const (
	// ModeGoroutine runs one goroutine per rank under a central
	// scheduler goroutine. The default and the reference semantics.
	ModeGoroutine Mode = iota
	// ModeContinuation runs rank bodies as resumable steps dispatched
	// directly by the event loop: lazily spawned fibers, direct
	// handoff, pooled wake slots, slab-allocated Proc records.
	ModeContinuation
	// ModeParallel runs continuation dispatchers on per-shard worker
	// goroutines synchronized by a conservative time-window barrier;
	// see parallel.go and the Engine.Shards/Partition/Lookahead fields.
	ModeParallel
)

func (m Mode) String() string {
	switch m {
	case ModeGoroutine:
		return "goroutine"
	case ModeContinuation:
		return "continuation"
	case ModeParallel:
		return "parallel"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// ModeNames lists the valid ParseMode inputs, in declaration order.
func ModeNames() []string { return []string{"goroutine", "continuation", "parallel"} }

// ParseMode parses the String form of a Mode. The error enumerates the
// valid names so CLI surfaces can fail fast with a usable message.
func ParseMode(s string) (Mode, error) {
	for i, name := range ModeNames() {
		if s == name {
			return Mode(i), nil
		}
	}
	return 0, fmt.Errorf("sim: unknown scheduler mode %q (valid modes: goroutine, continuation, parallel)", s)
}

// event is one scheduled occurrence. Pure wakeups (Elapse) carry the
// parked proc in wake and no closure; handler events carry fn.
type event struct {
	at   Time
	seq  int64
	wake *Proc
	fn   func()
}

// eventHeap is a value-typed binary min-heap ordered by (at, seq).
// Events live inline in the slice: pushes reuse the capacity freed by
// pops, so steady-state scheduling performs no allocation.
type eventHeap []event

func (h eventHeap) less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h *eventHeap) push(ev event) {
	*h = append(*h, ev)
	// Sift up.
	s := *h
	i := len(s) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !s.less(i, parent) {
			break
		}
		s[i], s[parent] = s[parent], s[i]
		i = parent
	}
}

func (h *eventHeap) pop() event {
	s := *h
	top := s[0]
	n := len(s) - 1
	s[0] = s[n]
	s[n] = event{} // clear the vacated slot so fn/wake are collectable
	s = s[:n]
	*h = s
	// Sift down.
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && s.less(l, smallest) {
			smallest = l
		}
		if r < n && s.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			return top
		}
		s[i], s[smallest] = s[smallest], s[i]
		i = smallest
	}
}

type procState int

const (
	stateRunnable procState = iota
	stateRunning
	stateParked
	stateDone
)

// Proc is the execution context of one simulated rank. All Proc methods
// must be called from the flow of control running that rank's body.
type Proc struct {
	id      int
	e       *Engine
	sh      *shard // parallel mode: owning shard; nil in sequential modes
	state   procState
	started bool   // continuation mode: fiber exists (or body has run)
	why     string // what the proc is parked on, for deadlock reports
	wake    chan struct{}
}

// ID returns the rank's id in [0, N).
func (p *Proc) ID() int { return p.id }

// Engine returns the engine this proc belongs to.
func (p *Proc) Engine() *Engine { return p.e }

// Now returns the current virtual time: the global clock in the
// sequential modes, the owning shard's clock in parallel mode.
func (p *Proc) Now() Time {
	if p.sh != nil {
		return p.sh.now
	}
	return p.e.now
}

// Observer receives scheduling callbacks from the engine, giving
// observability layers access to the virtual clock at the moments
// ranks block and resume. Callbacks run under the cooperative
// scheduler (never concurrently) and must not block or re-enter the
// engine. Elapse's inline fast path still reports its virtual
// park/resume pair, so observers see the same sequence either way.
type Observer interface {
	// RankParked fires when a rank blocks; why is the park reason.
	RankParked(rank int, why string, at Time)
	// RankResumed fires when a previously parked rank resumes running.
	RankResumed(rank int, at Time)
}

// FinishObserver is an optional Observer extension: when the installed
// observer also implements it, RankFinished fires as each rank's body
// returns normally (never during an abnormal drain), carrying the
// rank's completion time — the job makespan is the maximum over ranks.
// In parallel mode the callback runs on the owning shard's worker
// against the shard's observer, like the other callbacks.
type FinishObserver interface {
	RankFinished(rank int, at Time)
}

// Engine runs a fixed set of ranks to completion under a virtual
// clock.
type Engine struct {
	now    Time
	seq    int64
	events eventHeap
	procs  []*Proc

	// Runnable ring buffer (FIFO). A proc appears at most once, so a
	// fixed capacity of len(procs) suffices and pushes never allocate.
	runq   []*Proc
	rqHead int
	rqLen  int

	alive     int
	schedWake chan struct{}
	failure   error // first panic captured from a rank body
	stats     Stats
	obs       Observer
	body      func(*Proc)

	// Continuation-mode state: the root's completion channel, the pool
	// of reusable wake slots, and the drain cursor.
	rootDone chan error
	chanPool []chan struct{}

	// draining is set when the run is ending abnormally (rank panic,
	// deadlock, or time limit): every remaining blocked rank is resumed
	// once, in rank order, and unwinds via a drainSignal panic so its
	// goroutine exits before Run returns.
	draining    bool
	drainErr    error
	drainCursor int

	// noInlineElapse disables Elapse's inline fast path; used by the
	// scheduler-equivalence test to prove both paths produce identical
	// schedules.
	noInlineElapse bool

	// Mode selects goroutine-per-rank or continuation dispatch. Set
	// before Run; both modes are byte-identical in every virtual-time
	// observable.
	Mode Mode

	// MaxTime, when nonzero, aborts Run with ErrTimeLimit once the
	// virtual clock passes it — a watchdog against virtual livelock
	// (event chains that never let the ranks finish).
	MaxTime Time

	// Shards, Partition, and Lookahead configure ModeParallel; the
	// sequential modes ignore them. Shards is the worker count (<=0
	// means 1; clamped to the rank count). Partition maps rank ->
	// shard in [0, Shards); nil means contiguous equal blocks.
	// Lookahead is the conservative window width: a cross-shard event
	// must be scheduled at least this far past the sending shard's
	// window start. Required > 0 when Shards > 1; the fabric's
	// MinCrossNodeLatency is the natural bound.
	Shards    int
	Partition []int
	Lookahead Time

	// ShardObservers, when set, supplies one Observer per shard for
	// multi-shard parallel runs (the single obs Observer would race).
	// Callbacks arrive shard-concurrently but rank-sequentially: one
	// shard never reports two ranks at once, and a given rank always
	// reports from its home shard.
	ShardObservers func(shard int) Observer

	// shardSet is the live shard array of a parallel run (nil in
	// sequential modes); it stays valid after Run so post-run Now()
	// reads resolve against the final shard clocks.
	shardSet []*shard
	reports  chan shardReport
}

// ErrTimeLimit is returned by Run when the virtual clock exceeds
// Engine.MaxTime.
type ErrTimeLimit struct{ At Time }

func (e *ErrTimeLimit) Error() string {
	return fmt.Sprintf("sim: virtual time limit exceeded at %v", e.At)
}

// Stats aggregates engine-level counters, useful in tests and benchmarks.
// Both Elapse paths maintain them identically: an inline time advance
// still counts one park and one dispatched event.
type Stats struct {
	Events    int64 // events dispatched
	Parks     int64 // times any rank parked
	FinalTime Time  // virtual time when Run returned
}

// NewEngine creates an empty engine at virtual time zero.
func NewEngine() *Engine {
	return &Engine{schedWake: make(chan struct{})}
}

// Now returns the current virtual time. It is safe to call from event
// handlers and rank bodies alike. In a multi-shard parallel run there
// is no global clock while shards execute, so Now panics there; use
// Proc.Now or ShardClock instead. A single-shard parallel run (the
// full-stack configuration) resolves to the one shard's clock.
func (e *Engine) Now() Time {
	if n := len(e.shardSet); n > 0 {
		if n == 1 {
			return e.shardSet[0].now
		}
		panic("sim: Engine.Now has no global value in a multi-shard parallel run; use Proc.Now or ShardClock")
	}
	return e.now
}

// Stats returns engine counters. Valid after Run has returned.
func (e *Engine) Stats() Stats { return e.stats }

// Observe installs a scheduling observer (nil to remove). Call before
// Run.
func (e *Engine) Observe(o Observer) { e.obs = o }

// At schedules fn to run at absolute virtual time t (clamped to now).
// It may be called from a rank body or from another handler. Handlers
// run under the dispatcher and must not block. In a multi-shard
// parallel run the target shard is ambiguous, so At panics there
// (schedule through AtRank); with one shard it resolves locally.
func (e *Engine) At(t Time, fn func()) {
	if n := len(e.shardSet); n > 0 {
		if e.draining {
			return // unwinding cleanup; the run is over
		}
		if n > 1 {
			panic("sim: Engine.At is ambiguous in a multi-shard parallel run; use AtRank")
		}
		e.shardSet[0].at(t, fn)
		return
	}
	if t < e.now {
		t = e.now
	}
	e.seq++
	e.events.push(event{at: t, seq: e.seq, fn: fn})
}

// After schedules fn to run d nanoseconds from now.
func (e *Engine) After(d Time, fn func()) { e.At(e.Now()+d, fn) }

// AtRank schedules fn at absolute virtual time t on behalf of rank
// from, to run where rank to's state lives. In the sequential modes —
// and whenever both ranks share a shard — it is exactly At. Across
// shards the event is appended to the sending shard's per-destination
// outbox and merged into the target heap at the next window boundary,
// ordered by (time, virtual send time, source shard, outbox sequence);
// t must be at least the sending shard's window end (guaranteed by any
// delay >= Lookahead), or AtRank panics with a lookahead violation.
// It must be called from a flow of control running on rank from's
// shard (from's rank body, or a handler scheduled to it).
func (e *Engine) AtRank(t Time, from, to int, fn func()) {
	if len(e.shardSet) == 0 {
		e.At(t, fn)
		return
	}
	if e.draining {
		return
	}
	src := e.procs[from].sh
	dst := e.procs[to].sh
	if src == dst {
		src.at(t, fn)
		return
	}
	if t < src.windowEnd {
		panic(fmt.Sprintf(
			"sim: cross-shard event violates lookahead: rank %d (shard %d) -> rank %d (shard %d) at %v, window ends %v",
			from, src.id, to, dst.id, t, src.windowEnd))
	}
	src.outSeq++
	src.outbox[dst.id] = append(src.outbox[dst.id],
		xev{at: t, sent: src.now, seq: src.outSeq, src: src.id, fn: fn})
}

// atWake schedules an unpark of p at absolute time t without building
// a closure.
func (e *Engine) atWake(t Time, p *Proc) {
	if t < e.now {
		t = e.now
	}
	e.seq++
	e.events.push(event{at: t, seq: e.seq, wake: p})
}

// drainSignal is the panic value used to unwind a blocked rank body
// when the run ends abnormally; the rank runner recognizes and
// swallows it.
type drainSignal struct{}

// Elapse charges d nanoseconds of virtual time to the calling rank:
// the rank blocks and resumes once the clock has advanced by d.
//
// When no other rank is runnable, Elapse runs inline instead of
// parking: it reserves the wake event's sequence number, dispatches any
// events due before the wake exactly as the scheduler loop would (same
// order, same clock updates, same counters), and advances the clock
// itself — eliminating the park/unpark channel ping-pong. If a
// dispatched event makes another rank runnable, that rank must run
// before this one resumes, so Elapse falls back to a real park whose
// wake event carries the reserved sequence number; every tie-break
// then resolves exactly as the parked path would. Which flow of
// control executes an event handler is invisible to the simulation, so
// the two paths are indistinguishable in every virtual-time observable.
func (p *Proc) Elapse(d Time) {
	if d <= 0 {
		return
	}
	if p.sh != nil {
		p.sh.elapse(p, d)
		return
	}
	e := p.e
	if e.draining {
		panic(drainSignal{})
	}
	due := e.now + d
	if e.noInlineElapse || e.rqLen > 0 || (e.MaxTime > 0 && due > e.MaxTime) {
		e.atWake(due, p)
		p.Park("elapse")
		return
	}
	// Reserve the wake event's sequence number before dispatching:
	// events run below may schedule new events, and a tie at due must
	// resolve in favor of this wake exactly as the parked path would.
	e.seq++
	wakeSeq := e.seq
	e.stats.Parks++
	if e.obs != nil {
		e.obs.RankParked(p.id, "elapse", e.now)
	}
	for {
		if len(e.events) == 0 || e.events[0].at > due ||
			(e.events[0].at == due && e.events[0].seq > wakeSeq) {
			// The wake event would be dispatched next: count it and
			// advance inline.
			e.stats.Events++
			e.now = due
			if e.obs != nil {
				e.obs.RankResumed(p.id, e.now)
			}
			return
		}
		// Dispatch the earlier event exactly as the scheduler loop would.
		ev := e.events.pop()
		if ev.at > e.now {
			e.now = ev.at
		}
		e.stats.Events++
		if ev.wake != nil {
			e.Unpark(ev.wake)
		} else {
			ev.fn()
		}
		if e.rqLen > 0 {
			e.events.push(event{at: due, seq: wakeSeq, wake: p})
			p.parkReserved("elapse")
			return
		}
	}
}

// parkReserved parks like Park but without re-counting the park or
// re-notifying the observer: Elapse's inline path has already done
// both.
func (p *Proc) parkReserved(why string) {
	e := p.e
	if e.Mode == ModeContinuation {
		p.contPark(why, true)
		return
	}
	p.state = stateParked
	p.why = why
	e.schedWake <- struct{}{}
	<-p.wake
	if e.draining {
		panic(drainSignal{})
	}
	p.state = stateRunning
	p.why = ""
	if e.obs != nil {
		e.obs.RankResumed(p.id, e.now)
	}
}

// Park blocks the calling rank until another component calls Unpark on
// it. The why string is reported if the simulation deadlocks.
func (p *Proc) Park(why string) {
	e := p.e
	if e.draining {
		panic(drainSignal{})
	}
	if p.sh != nil {
		p.sh.park(p, why, false)
		return
	}
	if e.Mode == ModeContinuation {
		p.contPark(why, false)
		return
	}
	p.state = stateParked
	p.why = why
	e.stats.Parks++
	if e.obs != nil {
		e.obs.RankParked(p.id, why, e.now)
	}
	e.schedWake <- struct{}{} // hand control to the scheduler
	<-p.wake                  // wait to be resumed
	if e.draining {
		panic(drainSignal{})
	}
	p.state = stateRunning
	p.why = ""
	if e.obs != nil {
		e.obs.RankResumed(p.id, e.now)
	}
}

// contPark is the continuation-mode park: the parking rank itself
// executes the dispatch loop (the simulation's continuation) and hands
// control directly to the next runnable flow, then blocks on its
// pooled wake slot until a wake event or Unpark resumes it. preCounted
// marks parks whose statistics and observer callback were already
// recorded by Elapse's inline path.
func (p *Proc) contPark(why string, preCounted bool) {
	e := p.e
	if e.draining {
		panic(drainSignal{})
	}
	p.state = stateParked
	p.why = why
	if !preCounted {
		e.stats.Parks++
		if e.obs != nil {
			e.obs.RankParked(p.id, why, e.now)
		}
	}
	if next := e.advance(false); next != nil {
		panic("sim: internal: advance(false) returned a fresh proc")
	}
	<-p.wake
	if e.draining {
		panic(drainSignal{})
	}
	p.state = stateRunning
	p.why = ""
	if e.obs != nil {
		e.obs.RankResumed(p.id, e.now)
	}
}

// Unpark marks a parked rank runnable. It may be called from event
// handlers or from the body of another (currently active) rank. Calling
// Unpark on a rank that is not parked or already runnable is a bug in
// the caller and panics, with one exception: unparking a rank that is
// already runnable is ignored, which lets multiple events wake the same
// waiter.
func (e *Engine) Unpark(p *Proc) {
	if e.draining {
		// Unwinding rank bodies may signal peers from their deferred
		// cleanup; the run is over, so wakes are dropped (every blocked
		// rank is resumed exactly once by the drain itself).
		return
	}
	switch p.state {
	case stateParked:
		p.state = stateRunnable
		if p.sh != nil {
			p.sh.pushRunnable(p)
		} else {
			e.pushRunnable(p)
		}
	case stateRunnable:
		// Already queued; nothing to do.
	case stateDone:
		panic(fmt.Sprintf("sim: unpark of finished rank %d", p.id))
	default:
		panic(fmt.Sprintf("sim: unpark of running rank %d", p.id))
	}
}

func (e *Engine) pushRunnable(p *Proc) {
	i := e.rqHead + e.rqLen
	if i >= len(e.runq) {
		i -= len(e.runq)
	}
	e.runq[i] = p
	e.rqLen++
}

func (e *Engine) popRunnable() *Proc {
	p := e.runq[e.rqHead]
	e.runq[e.rqHead] = nil
	e.rqHead++
	if e.rqHead == len(e.runq) {
		e.rqHead = 0
	}
	e.rqLen--
	return p
}

// Deadlock is returned (wrapped) by Run when every rank is parked and no
// events remain.
type Deadlock struct {
	Time    Time
	Waiting map[int]string // rank id -> park reason
}

func (d *Deadlock) Error() string {
	ids := make([]int, 0, len(d.Waiting))
	for id := range d.Waiting {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	s := fmt.Sprintf("sim: deadlock at t=%v:", d.Time)
	for _, id := range ids {
		s += fmt.Sprintf(" rank %d parked on %q;", id, d.Waiting[id])
	}
	return s
}

type rankPanic struct {
	rank int
	val  interface{}
}

func (r *rankPanic) Error() string {
	return fmt.Sprintf("sim: rank %d panicked: %v", r.rank, r.val)
}

// deadlockError builds the Deadlock report from the current park set.
func (e *Engine) deadlockError() *Deadlock {
	d := &Deadlock{Time: e.now, Waiting: map[int]string{}}
	for _, p := range e.procs {
		if p.state == stateParked {
			d.Waiting[p.id] = p.why
		}
	}
	return d
}

// Run creates n ranks and executes body(p) on each, returning once all
// ranks have finished. It returns an error if the simulation deadlocks
// or any rank body panics; in every case — success or failure — all
// rank goroutines have exited by the time Run returns (abnormal ends
// drain the blocked ranks deterministically, in rank order). Run may
// be called repeatedly on fresh engines but not concurrently on the
// same engine.
func (e *Engine) Run(n int, body func(p *Proc)) error {
	if n <= 0 {
		return fmt.Errorf("sim: Run needs n > 0, got %d", n)
	}
	e.body = body
	e.procs = make([]*Proc, n)
	if e.Mode == ModeParallel {
		return e.runParallel(n)
	}
	e.runq = make([]*Proc, n)
	e.alive = n
	if e.Mode == ModeContinuation {
		return e.runContinuation(n)
	}
	return e.runGoroutine(n)
}

// runGoroutine is the reference scheduler: one goroutine per rank,
// resumed by a central loop.
func (e *Engine) runGoroutine(n int) error {
	for i := 0; i < n; i++ {
		p := &Proc{id: i, e: e, state: stateRunnable, wake: make(chan struct{})}
		e.procs[i] = p
		e.pushRunnable(p)
	}
	for _, p := range e.procs {
		p := p
		go func() {
			defer func() {
				r := recover()
				if r != nil {
					if _, drained := r.(drainSignal); !drained && e.failure == nil {
						e.failure = &rankPanic{rank: p.id, val: r}
					}
				}
				p.state = stateDone
				e.alive--
				if r == nil && !e.draining {
					if f, ok := e.obs.(FinishObserver); ok {
						f.RankFinished(p.id, e.now)
					}
				}
				e.schedWake <- struct{}{}
			}()
			<-p.wake // wait for first dispatch
			if e.draining {
				return
			}
			p.state = stateRunning
			e.body(p)
		}()
	}
	// Scheduler loop: run ranks until none is runnable, then pop events.
	for {
		if e.failure != nil {
			return e.drainGoroutines(e.failure)
		}
		if e.rqLen > 0 {
			p := e.popRunnable()
			p.wake <- struct{}{}
			<-e.schedWake // rank parked or exited
			continue
		}
		if e.alive == 0 {
			e.stats.FinalTime = e.now
			return nil
		}
		if len(e.events) == 0 {
			return e.drainGoroutines(e.deadlockError())
		}
		ev := e.events.pop()
		if ev.at > e.now {
			e.now = ev.at
		}
		if e.MaxTime > 0 && e.now > e.MaxTime {
			return e.drainGoroutines(&ErrTimeLimit{At: e.now})
		}
		e.stats.Events++
		if ev.wake != nil {
			e.Unpark(ev.wake)
		} else {
			ev.fn()
		}
	}
}

// drainGoroutines ends an abnormal goroutine-mode run without leaking:
// every rank goroutine that has not finished is blocked on its wake
// channel (at first dispatch or inside Park), so each is resumed once,
// in rank order, unwinds via drainSignal, and signals the scheduler
// back before the next is woken. Engine statistics and observers see
// nothing: the drain happens after the run's last observable instant.
func (e *Engine) drainGoroutines(err error) error {
	e.draining = true
	e.drainErr = err
	for _, p := range e.procs {
		if p.state == stateDone {
			continue
		}
		p.wake <- struct{}{}
		<-e.schedWake
	}
	return err
}

// runContinuation is the continuation-mode driver: Proc records are
// slab-allocated, fibers are spawned lazily at first dispatch, and the
// root goroutine only seeds the dispatch loop and waits for the
// simulation's terminal handoff.
func (e *Engine) runContinuation(n int) error {
	e.rootDone = make(chan error, 1)
	slab := make([]Proc, n)
	for i := range slab {
		p := &slab[i]
		p.id = i
		p.e = e
		p.state = stateRunnable
		e.procs[i] = p
		e.pushRunnable(p)
	}
	// Hand control to the first dispatch; the run ends when some fiber
	// executes the terminal transfer on rootDone.
	if next := e.advance(false); next != nil {
		panic("sim: internal: advance(false) returned a fresh proc")
	}
	return <-e.rootDone
}

// advance is the continuation-mode dispatch loop, executed by whatever
// flow of control is giving up the simulation (a parking rank, a
// finished body's fiber, or the root at startup). It mirrors the
// goroutine scheduler loop statement for statement — same runnable
// FIFO, same event heap pops, same counter updates — and returns after
// handing control to exactly one successor. When the next runnable
// rank is fresh (no fiber yet) and the caller can run it on its own
// goroutine (mayInline), the proc is returned instead; otherwise a new
// fiber is spawned for it. A nil return means control went elsewhere.
func (e *Engine) advance(mayInline bool) *Proc {
	for {
		if e.draining {
			e.drainNext()
			return nil
		}
		if e.failure != nil {
			e.terminate(e.failure)
			return nil
		}
		if e.rqLen > 0 {
			p := e.popRunnable()
			if p.started {
				p.wake <- struct{}{} // resume the parked fiber; never blocks (cap 1)
				return nil
			}
			if mayInline {
				return p
			}
			e.spawnFiber(p)
			return nil
		}
		if e.alive == 0 {
			e.stats.FinalTime = e.now
			e.rootDone <- nil
			return nil
		}
		if len(e.events) == 0 {
			e.terminate(e.deadlockError())
			return nil
		}
		ev := e.events.pop()
		if ev.at > e.now {
			e.now = ev.at
		}
		if e.MaxTime > 0 && e.now > e.MaxTime {
			e.terminate(&ErrTimeLimit{At: e.now})
			return nil
		}
		e.stats.Events++
		if ev.wake != nil {
			e.Unpark(ev.wake)
		} else {
			ev.fn()
		}
	}
}

// getChan takes a wake slot from the pool (or makes one). Wake slots
// have capacity one so a handoff never blocks the sender; a slot is
// returned to the pool when its fiber's body finishes, so steady-state
// dispatch allocates nothing.
func (e *Engine) getChan() chan struct{} {
	if n := len(e.chanPool); n > 0 {
		ch := e.chanPool[n-1]
		e.chanPool[n-1] = nil
		e.chanPool = e.chanPool[:n-1]
		return ch
	}
	return make(chan struct{}, 1)
}

func (e *Engine) putChan(ch chan struct{}) {
	e.chanPool = append(e.chanPool, ch)
}

// spawnFiber starts the lazily created goroutine that will run p's
// body (and, after it finishes, any further fresh bodies the dispatch
// loop hands it).
func (e *Engine) spawnFiber(p *Proc) {
	p.started = true
	p.wake = e.getChan()
	go e.fiberLoop(p)
}

// fiberLoop runs rank bodies to completion on one goroutine: after a
// body finishes, the fiber itself drives the dispatch loop, and if the
// next dispatch is a fresh rank it runs that body in place instead of
// spawning — so phases where ranks finish back-to-back execute on a
// single goroutine.
func (e *Engine) fiberLoop(p *Proc) {
	for {
		e.runBody(p)
		ch := p.wake
		p.wake = nil
		e.putChan(ch) // before advance: the slot may serve the next spawn
		next := e.advance(true)
		if next == nil {
			return
		}
		next.started = true
		next.wake = e.getChan()
		p = next
	}
}

// runBody executes one rank body with the same recovery semantics as
// the goroutine-mode runner. In parallel mode the failure and alive
// bookkeeping is per shard: shards run concurrently, and the
// coordinator merges their outcomes deterministically at the barrier.
func (e *Engine) runBody(p *Proc) {
	defer func() {
		r := recover()
		if r != nil {
			if _, drained := r.(drainSignal); !drained {
				if sh := p.sh; sh != nil {
					if sh.failure == nil {
						sh.failure = &rankPanic{rank: p.id, val: r}
					}
				} else if e.failure == nil {
					e.failure = &rankPanic{rank: p.id, val: r}
				}
			}
		}
		p.state = stateDone
		if sh := p.sh; sh != nil {
			sh.alive--
			if sh.alive == 0 {
				sh.lastFinish = sh.now
			}
			if r == nil && !e.draining {
				if f, ok := sh.obs.(FinishObserver); ok {
					f.RankFinished(p.id, sh.now)
				}
			}
		} else {
			e.alive--
			if r == nil && !e.draining {
				if f, ok := e.obs.(FinishObserver); ok {
					f.RankFinished(p.id, e.now)
				}
			}
		}
	}()
	p.state = stateRunning
	e.body(p)
}

// terminate begins the abnormal end of a continuation-mode run: record
// the error, then resume each blocked fiber once (in rank order) so it
// unwinds and exits; the last drain step performs the terminal
// handoff to the root.
func (e *Engine) terminate(err error) {
	e.draining = true
	e.drainErr = err
	e.drainNext()
}

// drainNext resumes the next blocked fiber (parked, or runnable but
// not yet handed the token — both block on their wake slot) so it can
// unwind, or signals the root when none remain. Never-started ranks
// have no goroutine and need no draining. The cursor is monotonic:
// states cannot regress during a drain (Unpark is a no-op).
func (e *Engine) drainNext() {
	for e.drainCursor < len(e.procs) {
		p := e.procs[e.drainCursor]
		e.drainCursor++
		if p.started && p.state != stateDone {
			p.wake <- struct{}{}
			return
		}
	}
	e.rootDone <- e.drainErr
}

// Procs returns the engine's ranks; valid during and after Run.
func (e *Engine) Procs() []*Proc { return e.procs }
