// Package sim provides a deterministic discrete-event simulation engine
// in which "ranks" (processes of a simulated parallel machine) execute as
// goroutines under a cooperative scheduler. Exactly one goroutine — either
// the scheduler or a single rank — is active at any instant, so every run
// is bit-reproducible: virtual time advances only when the event heap is
// popped, and ties are broken by insertion sequence.
//
// Higher layers (fabric, MPI, ARMCI) are built from three primitives:
// Elapse (charge local virtual time), Park/Unpark (block a rank until a
// condition is signalled), and At (schedule a handler at a future virtual
// time). Handlers run in the scheduler goroutine and must not block.
package sim

import (
	"container/heap"
	"fmt"
	"math"
	"sort"
)

// Time is virtual time in nanoseconds.
type Time int64

// Common durations.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000
	Millisecond Time = 1000 * 1000
	Second      Time = 1000 * 1000 * 1000
)

// MaxTime is the largest representable virtual time.
const MaxTime Time = math.MaxInt64

// Seconds converts a virtual duration to floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / 1e9 }

// Micros converts a virtual duration to floating-point microseconds.
func (t Time) Micros() float64 { return float64(t) / 1e3 }

// FromSeconds converts floating-point seconds to a virtual duration,
// rounding to the nearest nanosecond and never rounding a positive
// duration down to zero.
func FromSeconds(s float64) Time {
	t := Time(s*1e9 + 0.5)
	if t <= 0 && s > 0 {
		t = 1
	}
	return t
}

// String formats the time in human units.
func (t Time) String() string {
	switch {
	case t >= Second:
		return fmt.Sprintf("%.3fs", t.Seconds())
	case t >= Millisecond:
		return fmt.Sprintf("%.3fms", float64(t)/1e6)
	case t >= Microsecond:
		return fmt.Sprintf("%.3fus", float64(t)/1e3)
	default:
		return fmt.Sprintf("%dns", int64(t))
	}
}

type event struct {
	at  Time
	seq int64
	fn  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

type procState int

const (
	stateRunnable procState = iota
	stateRunning
	stateParked
	stateDone
)

// Proc is the execution context of one simulated rank. All Proc methods
// must be called from the goroutine running that rank's body.
type Proc struct {
	id    int
	e     *Engine
	state procState
	why   string // what the proc is parked on, for deadlock reports
	wake  chan struct{}
}

// ID returns the rank's id in [0, N).
func (p *Proc) ID() int { return p.id }

// Engine returns the engine this proc belongs to.
func (p *Proc) Engine() *Engine { return p.e }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.e.now }

// Observer receives scheduling callbacks from the engine, giving
// observability layers access to the virtual clock at the moments
// ranks block and resume. Callbacks run under the cooperative
// scheduler (never concurrently) and must not block or re-enter the
// engine.
type Observer interface {
	// RankParked fires when a rank blocks; why is the park reason.
	RankParked(rank int, why string, at Time)
	// RankResumed fires when a previously parked rank resumes running.
	RankResumed(rank int, at Time)
}

// Engine runs a fixed set of rank goroutines to completion under a
// virtual clock.
type Engine struct {
	now       Time
	seq       int64
	events    eventHeap
	procs     []*Proc
	runnable  []*Proc // FIFO of procs ready to run
	alive     int
	schedWake chan struct{}
	failure   error // first panic captured from a rank body
	stats     Stats
	obs       Observer

	// MaxTime, when nonzero, aborts Run with ErrTimeLimit once the
	// virtual clock passes it — a watchdog against virtual livelock
	// (event chains that never let the ranks finish).
	MaxTime Time
}

// ErrTimeLimit is returned by Run when the virtual clock exceeds
// Engine.MaxTime.
type ErrTimeLimit struct{ At Time }

func (e *ErrTimeLimit) Error() string {
	return fmt.Sprintf("sim: virtual time limit exceeded at %v", e.At)
}

// Stats aggregates engine-level counters, useful in tests and benchmarks.
type Stats struct {
	Events    int64 // events dispatched
	Parks     int64 // times any rank parked
	FinalTime Time  // virtual time when Run returned
}

// NewEngine creates an empty engine at virtual time zero.
func NewEngine() *Engine {
	return &Engine{schedWake: make(chan struct{})}
}

// Now returns the current virtual time. It is safe to call from event
// handlers and rank bodies alike.
func (e *Engine) Now() Time { return e.now }

// Stats returns engine counters. Valid after Run has returned.
func (e *Engine) Stats() Stats { return e.stats }

// Observe installs a scheduling observer (nil to remove). Call before
// Run.
func (e *Engine) Observe(o Observer) { e.obs = o }

// At schedules fn to run at absolute virtual time t (clamped to now).
// It may be called from a rank body or from another handler. Handlers
// run in the scheduler goroutine and must not block.
func (e *Engine) At(t Time, fn func()) {
	if t < e.now {
		t = e.now
	}
	e.seq++
	heap.Push(&e.events, &event{at: t, seq: e.seq, fn: fn})
}

// After schedules fn to run d nanoseconds from now.
func (e *Engine) After(d Time, fn func()) { e.At(e.now+d, fn) }

// Elapse charges d nanoseconds of virtual time to the calling rank:
// the rank blocks and resumes once the clock has advanced by d.
func (p *Proc) Elapse(d Time) {
	if d <= 0 {
		return
	}
	e := p.e
	e.At(e.now+d, func() { e.Unpark(p) })
	p.Park("elapse")
}

// Park blocks the calling rank until another component calls Unpark on
// it. The why string is reported if the simulation deadlocks.
func (p *Proc) Park(why string) {
	e := p.e
	p.state = stateParked
	p.why = why
	e.stats.Parks++
	if e.obs != nil {
		e.obs.RankParked(p.id, why, e.now)
	}
	e.schedWake <- struct{}{} // hand control to the scheduler
	<-p.wake                  // wait to be resumed
	p.state = stateRunning
	p.why = ""
	if e.obs != nil {
		e.obs.RankResumed(p.id, e.now)
	}
}

// Unpark marks a parked rank runnable. It may be called from event
// handlers or from the body of another (currently active) rank. Calling
// Unpark on a rank that is not parked or already runnable is a bug in
// the caller and panics, with one exception: unparking a rank that is
// already runnable is ignored, which lets multiple events wake the same
// waiter.
func (e *Engine) Unpark(p *Proc) {
	switch p.state {
	case stateParked:
		p.state = stateRunnable
		e.runnable = append(e.runnable, p)
	case stateRunnable:
		// Already queued; nothing to do.
	case stateDone:
		panic(fmt.Sprintf("sim: unpark of finished rank %d", p.id))
	default:
		panic(fmt.Sprintf("sim: unpark of running rank %d", p.id))
	}
}

// Deadlock is returned (wrapped) by Run when every rank is parked and no
// events remain.
type Deadlock struct {
	Time    Time
	Waiting map[int]string // rank id -> park reason
}

func (d *Deadlock) Error() string {
	ids := make([]int, 0, len(d.Waiting))
	for id := range d.Waiting {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	s := fmt.Sprintf("sim: deadlock at t=%v:", d.Time)
	for _, id := range ids {
		s += fmt.Sprintf(" rank %d parked on %q;", id, d.Waiting[id])
	}
	return s
}

type rankPanic struct {
	rank int
	val  interface{}
}

func (r *rankPanic) Error() string {
	return fmt.Sprintf("sim: rank %d panicked: %v", r.rank, r.val)
}

// Run creates n ranks and executes body(p) on each, returning once all
// ranks have finished. It returns an error if the simulation deadlocks
// or any rank body panics. Run may be called repeatedly on fresh
// engines but not concurrently on the same engine.
func (e *Engine) Run(n int, body func(p *Proc)) error {
	if n <= 0 {
		return fmt.Errorf("sim: Run needs n > 0, got %d", n)
	}
	e.procs = make([]*Proc, n)
	e.alive = n
	for i := 0; i < n; i++ {
		p := &Proc{id: i, e: e, state: stateRunnable, wake: make(chan struct{})}
		e.procs[i] = p
		e.runnable = append(e.runnable, p)
	}
	for _, p := range e.procs {
		p := p
		go func() {
			defer func() {
				if r := recover(); r != nil {
					if e.failure == nil {
						e.failure = &rankPanic{rank: p.id, val: r}
					}
				}
				p.state = stateDone
				e.alive--
				e.schedWake <- struct{}{}
			}()
			<-p.wake // wait for first dispatch
			p.state = stateRunning
			body(p)
		}()
	}
	// Scheduler loop: run ranks until none is runnable, then pop events.
	for {
		if e.failure != nil {
			// Abandon: remaining goroutines stay parked; the engine is
			// single-use so this leaks only until test process exit.
			return e.failure
		}
		if len(e.runnable) > 0 {
			p := e.runnable[0]
			copy(e.runnable, e.runnable[1:])
			e.runnable = e.runnable[:len(e.runnable)-1]
			p.wake <- struct{}{}
			<-e.schedWake // rank parked or exited
			continue
		}
		if e.alive == 0 {
			e.stats.FinalTime = e.now
			return nil
		}
		if len(e.events) == 0 {
			d := &Deadlock{Time: e.now, Waiting: map[int]string{}}
			for _, p := range e.procs {
				if p.state == stateParked {
					d.Waiting[p.id] = p.why
				}
			}
			return d
		}
		ev := heap.Pop(&e.events).(*event)
		if ev.at > e.now {
			e.now = ev.at
		}
		if e.MaxTime > 0 && e.now > e.MaxTime {
			return &ErrTimeLimit{At: e.now}
		}
		e.stats.Events++
		ev.fn()
	}
}

// Procs returns the engine's ranks; valid during and after Run.
func (e *Engine) Procs() []*Proc { return e.procs }
