// Package sim provides a deterministic discrete-event simulation engine
// in which "ranks" (processes of a simulated parallel machine) execute as
// goroutines under a cooperative scheduler. Exactly one goroutine — either
// the scheduler or a single rank — is active at any instant, so every run
// is bit-reproducible: virtual time advances only when the event heap is
// popped, and ties are broken by insertion sequence.
//
// Higher layers (fabric, MPI, ARMCI) are built from three primitives:
// Elapse (charge local virtual time), Park/Unpark (block a rank until a
// condition is signalled), and At (schedule a handler at a future virtual
// time). Handlers run in the scheduler goroutine and must not block.
//
// The engine's own wall-clock cost is kept off the simulated results'
// critical path by three mechanisms: events are value-typed in the heap
// slice (the popped slots double as a free list, so scheduling allocates
// nothing once the heap has grown), pure time-advance wakeups carry the
// parked Proc instead of a closure, and Elapse takes an inline fast path
// that advances the clock without the park/unpark channel ping-pong
// whenever no earlier event or runnable rank could interleave. The fast
// path consumes the same sequence number and counts the same Parks and
// Events as the slow path, so engine counters and every downstream
// virtual-time result are byte-identical whichever path runs.
package sim

import (
	"fmt"
	"math"
	"sort"
)

// Time is virtual time in nanoseconds.
type Time int64

// Common durations.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000
	Millisecond Time = 1000 * 1000
	Second      Time = 1000 * 1000 * 1000
)

// MaxTime is the largest representable virtual time.
const MaxTime Time = math.MaxInt64

// Seconds converts a virtual duration to floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / 1e9 }

// Micros converts a virtual duration to floating-point microseconds.
func (t Time) Micros() float64 { return float64(t) / 1e3 }

// FromSeconds converts floating-point seconds to a virtual duration,
// rounding to the nearest nanosecond and never rounding a positive
// duration down to zero.
func FromSeconds(s float64) Time {
	t := Time(s*1e9 + 0.5)
	if t <= 0 && s > 0 {
		t = 1
	}
	return t
}

// String formats the time in human units.
func (t Time) String() string {
	switch {
	case t >= Second:
		return fmt.Sprintf("%.3fs", t.Seconds())
	case t >= Millisecond:
		return fmt.Sprintf("%.3fms", float64(t)/1e6)
	case t >= Microsecond:
		return fmt.Sprintf("%.3fus", float64(t)/1e3)
	default:
		return fmt.Sprintf("%dns", int64(t))
	}
}

// event is one scheduled occurrence. Pure wakeups (Elapse) carry the
// parked proc in wake and no closure; handler events carry fn.
type event struct {
	at   Time
	seq  int64
	wake *Proc
	fn   func()
}

// eventHeap is a value-typed binary min-heap ordered by (at, seq).
// Events live inline in the slice: pushes reuse the capacity freed by
// pops, so steady-state scheduling performs no allocation.
type eventHeap []event

func (h eventHeap) less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h *eventHeap) push(ev event) {
	*h = append(*h, ev)
	// Sift up.
	s := *h
	i := len(s) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !s.less(i, parent) {
			break
		}
		s[i], s[parent] = s[parent], s[i]
		i = parent
	}
}

func (h *eventHeap) pop() event {
	s := *h
	top := s[0]
	n := len(s) - 1
	s[0] = s[n]
	s[n] = event{} // clear the vacated slot so fn/wake are collectable
	s = s[:n]
	*h = s
	// Sift down.
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && s.less(l, smallest) {
			smallest = l
		}
		if r < n && s.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			return top
		}
		s[i], s[smallest] = s[smallest], s[i]
		i = smallest
	}
}

type procState int

const (
	stateRunnable procState = iota
	stateRunning
	stateParked
	stateDone
)

// Proc is the execution context of one simulated rank. All Proc methods
// must be called from the goroutine running that rank's body.
type Proc struct {
	id    int
	e     *Engine
	state procState
	why   string // what the proc is parked on, for deadlock reports
	wake  chan struct{}
}

// ID returns the rank's id in [0, N).
func (p *Proc) ID() int { return p.id }

// Engine returns the engine this proc belongs to.
func (p *Proc) Engine() *Engine { return p.e }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.e.now }

// Observer receives scheduling callbacks from the engine, giving
// observability layers access to the virtual clock at the moments
// ranks block and resume. Callbacks run under the cooperative
// scheduler (never concurrently) and must not block or re-enter the
// engine. Elapse's inline fast path still reports its virtual
// park/resume pair, so observers see the same sequence either way.
type Observer interface {
	// RankParked fires when a rank blocks; why is the park reason.
	RankParked(rank int, why string, at Time)
	// RankResumed fires when a previously parked rank resumes running.
	RankResumed(rank int, at Time)
}

// Engine runs a fixed set of rank goroutines to completion under a
// virtual clock.
type Engine struct {
	now    Time
	seq    int64
	events eventHeap
	procs  []*Proc

	// Runnable ring buffer (FIFO). A proc appears at most once, so a
	// fixed capacity of len(procs) suffices and pushes never allocate.
	runq   []*Proc
	rqHead int
	rqLen  int

	alive     int
	schedWake chan struct{}
	failure   error // first panic captured from a rank body
	stats     Stats
	obs       Observer

	// noInlineElapse disables Elapse's inline fast path; used by the
	// scheduler-equivalence test to prove both paths produce identical
	// schedules.
	noInlineElapse bool

	// MaxTime, when nonzero, aborts Run with ErrTimeLimit once the
	// virtual clock passes it — a watchdog against virtual livelock
	// (event chains that never let the ranks finish).
	MaxTime Time
}

// ErrTimeLimit is returned by Run when the virtual clock exceeds
// Engine.MaxTime.
type ErrTimeLimit struct{ At Time }

func (e *ErrTimeLimit) Error() string {
	return fmt.Sprintf("sim: virtual time limit exceeded at %v", e.At)
}

// Stats aggregates engine-level counters, useful in tests and benchmarks.
// Both Elapse paths maintain them identically: an inline time advance
// still counts one park and one dispatched event.
type Stats struct {
	Events    int64 // events dispatched
	Parks     int64 // times any rank parked
	FinalTime Time  // virtual time when Run returned
}

// NewEngine creates an empty engine at virtual time zero.
func NewEngine() *Engine {
	return &Engine{schedWake: make(chan struct{})}
}

// Now returns the current virtual time. It is safe to call from event
// handlers and rank bodies alike.
func (e *Engine) Now() Time { return e.now }

// Stats returns engine counters. Valid after Run has returned.
func (e *Engine) Stats() Stats { return e.stats }

// Observe installs a scheduling observer (nil to remove). Call before
// Run.
func (e *Engine) Observe(o Observer) { e.obs = o }

// At schedules fn to run at absolute virtual time t (clamped to now).
// It may be called from a rank body or from another handler. Handlers
// run in the scheduler goroutine and must not block.
func (e *Engine) At(t Time, fn func()) {
	if t < e.now {
		t = e.now
	}
	e.seq++
	e.events.push(event{at: t, seq: e.seq, fn: fn})
}

// After schedules fn to run d nanoseconds from now.
func (e *Engine) After(d Time, fn func()) { e.At(e.now+d, fn) }

// atWake schedules an unpark of p at absolute time t without building
// a closure.
func (e *Engine) atWake(t Time, p *Proc) {
	if t < e.now {
		t = e.now
	}
	e.seq++
	e.events.push(event{at: t, seq: e.seq, wake: p})
}

// Elapse charges d nanoseconds of virtual time to the calling rank:
// the rank blocks and resumes once the clock has advanced by d.
//
// When no other rank is runnable, Elapse runs inline instead of
// parking: it reserves the wake event's sequence number, dispatches any
// events due before the wake exactly as the scheduler loop would (same
// order, same clock updates, same counters), and advances the clock
// itself — eliminating the park/unpark channel ping-pong. If a
// dispatched event makes another rank runnable, that rank must run
// before this one resumes, so Elapse falls back to a real park whose
// wake event carries the reserved sequence number; every tie-break
// then resolves exactly as the parked path would. Which goroutine
// executes an event handler is invisible to the simulation, so the
// two paths are indistinguishable in every virtual-time observable.
func (p *Proc) Elapse(d Time) {
	if d <= 0 {
		return
	}
	e := p.e
	due := e.now + d
	if e.noInlineElapse || e.rqLen > 0 || (e.MaxTime > 0 && due > e.MaxTime) {
		e.atWake(due, p)
		p.Park("elapse")
		return
	}
	// Reserve the wake event's sequence number before dispatching:
	// events run below may schedule new events, and a tie at due must
	// resolve in favor of this wake exactly as the parked path would.
	e.seq++
	wakeSeq := e.seq
	e.stats.Parks++
	if e.obs != nil {
		e.obs.RankParked(p.id, "elapse", e.now)
	}
	for {
		if len(e.events) == 0 || e.events[0].at > due ||
			(e.events[0].at == due && e.events[0].seq > wakeSeq) {
			// The wake event would be dispatched next: count it and
			// advance inline.
			e.stats.Events++
			e.now = due
			if e.obs != nil {
				e.obs.RankResumed(p.id, e.now)
			}
			return
		}
		// Dispatch the earlier event exactly as the scheduler loop would.
		ev := e.events.pop()
		if ev.at > e.now {
			e.now = ev.at
		}
		e.stats.Events++
		if ev.wake != nil {
			e.Unpark(ev.wake)
		} else {
			ev.fn()
		}
		if e.rqLen > 0 {
			e.events.push(event{at: due, seq: wakeSeq, wake: p})
			p.parkReserved("elapse")
			return
		}
	}
}

// parkReserved parks like Park but without re-counting the park or
// re-notifying the observer: Elapse's inline path has already done
// both.
func (p *Proc) parkReserved(why string) {
	e := p.e
	p.state = stateParked
	p.why = why
	e.schedWake <- struct{}{}
	<-p.wake
	p.state = stateRunning
	p.why = ""
	if e.obs != nil {
		e.obs.RankResumed(p.id, e.now)
	}
}

// Park blocks the calling rank until another component calls Unpark on
// it. The why string is reported if the simulation deadlocks.
func (p *Proc) Park(why string) {
	e := p.e
	p.state = stateParked
	p.why = why
	e.stats.Parks++
	if e.obs != nil {
		e.obs.RankParked(p.id, why, e.now)
	}
	e.schedWake <- struct{}{} // hand control to the scheduler
	<-p.wake                  // wait to be resumed
	p.state = stateRunning
	p.why = ""
	if e.obs != nil {
		e.obs.RankResumed(p.id, e.now)
	}
}

// Unpark marks a parked rank runnable. It may be called from event
// handlers or from the body of another (currently active) rank. Calling
// Unpark on a rank that is not parked or already runnable is a bug in
// the caller and panics, with one exception: unparking a rank that is
// already runnable is ignored, which lets multiple events wake the same
// waiter.
func (e *Engine) Unpark(p *Proc) {
	switch p.state {
	case stateParked:
		p.state = stateRunnable
		e.pushRunnable(p)
	case stateRunnable:
		// Already queued; nothing to do.
	case stateDone:
		panic(fmt.Sprintf("sim: unpark of finished rank %d", p.id))
	default:
		panic(fmt.Sprintf("sim: unpark of running rank %d", p.id))
	}
}

func (e *Engine) pushRunnable(p *Proc) {
	i := e.rqHead + e.rqLen
	if i >= len(e.runq) {
		i -= len(e.runq)
	}
	e.runq[i] = p
	e.rqLen++
}

func (e *Engine) popRunnable() *Proc {
	p := e.runq[e.rqHead]
	e.runq[e.rqHead] = nil
	e.rqHead++
	if e.rqHead == len(e.runq) {
		e.rqHead = 0
	}
	e.rqLen--
	return p
}

// Deadlock is returned (wrapped) by Run when every rank is parked and no
// events remain.
type Deadlock struct {
	Time    Time
	Waiting map[int]string // rank id -> park reason
}

func (d *Deadlock) Error() string {
	ids := make([]int, 0, len(d.Waiting))
	for id := range d.Waiting {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	s := fmt.Sprintf("sim: deadlock at t=%v:", d.Time)
	for _, id := range ids {
		s += fmt.Sprintf(" rank %d parked on %q;", id, d.Waiting[id])
	}
	return s
}

type rankPanic struct {
	rank int
	val  interface{}
}

func (r *rankPanic) Error() string {
	return fmt.Sprintf("sim: rank %d panicked: %v", r.rank, r.val)
}

// Run creates n ranks and executes body(p) on each, returning once all
// ranks have finished. It returns an error if the simulation deadlocks
// or any rank body panics. Run may be called repeatedly on fresh
// engines but not concurrently on the same engine.
func (e *Engine) Run(n int, body func(p *Proc)) error {
	if n <= 0 {
		return fmt.Errorf("sim: Run needs n > 0, got %d", n)
	}
	e.procs = make([]*Proc, n)
	e.runq = make([]*Proc, n)
	e.alive = n
	for i := 0; i < n; i++ {
		p := &Proc{id: i, e: e, state: stateRunnable, wake: make(chan struct{})}
		e.procs[i] = p
		e.pushRunnable(p)
	}
	for _, p := range e.procs {
		p := p
		go func() {
			defer func() {
				if r := recover(); r != nil {
					if e.failure == nil {
						e.failure = &rankPanic{rank: p.id, val: r}
					}
				}
				p.state = stateDone
				e.alive--
				e.schedWake <- struct{}{}
			}()
			<-p.wake // wait for first dispatch
			p.state = stateRunning
			body(p)
		}()
	}
	// Scheduler loop: run ranks until none is runnable, then pop events.
	for {
		if e.failure != nil {
			// Abandon: remaining goroutines stay parked; the engine is
			// single-use so this leaks only until test process exit.
			return e.failure
		}
		if e.rqLen > 0 {
			p := e.popRunnable()
			p.wake <- struct{}{}
			<-e.schedWake // rank parked or exited
			continue
		}
		if e.alive == 0 {
			e.stats.FinalTime = e.now
			return nil
		}
		if len(e.events) == 0 {
			d := &Deadlock{Time: e.now, Waiting: map[int]string{}}
			for _, p := range e.procs {
				if p.state == stateParked {
					d.Waiting[p.id] = p.why
				}
			}
			return d
		}
		ev := e.events.pop()
		if ev.at > e.now {
			e.now = ev.at
		}
		if e.MaxTime > 0 && e.now > e.MaxTime {
			return &ErrTimeLimit{At: e.now}
		}
		e.stats.Events++
		if ev.wake != nil {
			e.Unpark(ev.wake)
		} else {
			ev.fn()
		}
	}
}

// Procs returns the engine's ranks; valid during and after Run.
func (e *Engine) Procs() []*Proc { return e.procs }
