package sim

import (
	"errors"
	"fmt"
	"runtime"
	"testing"
	"time"
)

func runWorkloadMode(t *testing.T, mode Mode, noInline bool) (Stats, []string, []string) {
	t.Helper()
	e := NewEngine()
	e.Mode = mode
	e.noInlineElapse = noInline
	obs := &traceObs{}
	e.Observe(obs)
	var order []string
	if err := e.Run(4, schedWorkload(e, &order)); err != nil {
		t.Fatalf("mode=%v noInline=%v: %v", mode, noInline, err)
	}
	return e.Stats(), order, obs.log
}

// TestContinuationEquivalence proves ModeContinuation produces a
// schedule byte-identical to the reference goroutine scheduler: same
// rank interleaving, same virtual timestamps, same engine counters,
// and the same observer callback sequence — with and without the
// inline-Elapse fast path.
func TestContinuationEquivalence(t *testing.T) {
	for _, noInline := range []bool{false, true} {
		name := "inline"
		if noInline {
			name = "noInline"
		}
		t.Run(name, func(t *testing.T) {
			refStats, refOrder, refObs := runWorkloadMode(t, ModeGoroutine, noInline)
			contStats, contOrder, contObs := runWorkloadMode(t, ModeContinuation, noInline)
			if refStats != contStats {
				t.Errorf("stats diverge: goroutine=%+v continuation=%+v", refStats, contStats)
			}
			if len(refOrder) != len(contOrder) {
				t.Fatalf("order length: goroutine=%d continuation=%d\nref=%v\ncont=%v",
					len(refOrder), len(contOrder), refOrder, contOrder)
			}
			for i := range refOrder {
				if refOrder[i] != contOrder[i] {
					t.Errorf("order[%d]: goroutine=%q continuation=%q", i, refOrder[i], contOrder[i])
				}
			}
			if len(refObs) != len(contObs) {
				t.Fatalf("observer length: goroutine=%d continuation=%d", len(refObs), len(contObs))
			}
			for i := range refObs {
				if refObs[i] != contObs[i] {
					t.Errorf("observer[%d]: goroutine=%q continuation=%q", i, refObs[i], contObs[i])
				}
			}
		})
	}
}

// TestContinuationEquivalenceManyRanks stresses tie-breaks with
// colliding elapse multiples across both modes.
func TestContinuationEquivalenceManyRanks(t *testing.T) {
	run := func(mode Mode) (Stats, []string) {
		e := NewEngine()
		e.Mode = mode
		var order []string
		err := e.Run(6, func(p *Proc) {
			for i := 0; i < 12; i++ {
				p.Elapse(Time(2 * (p.ID()%3 + 1)))
				order = append(order, fmt.Sprintf("r%d@%d", p.ID(), p.Now()))
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return e.Stats(), order
	}
	refStats, refOrder := run(ModeGoroutine)
	contStats, contOrder := run(ModeContinuation)
	if refStats != contStats {
		t.Errorf("stats diverge: goroutine=%+v continuation=%+v", refStats, contStats)
	}
	if len(refOrder) != len(contOrder) {
		t.Fatalf("order length: goroutine=%d continuation=%d", len(refOrder), len(contOrder))
	}
	for i := range refOrder {
		if refOrder[i] != contOrder[i] {
			t.Fatalf("order[%d]: goroutine=%q continuation=%q", i, refOrder[i], contOrder[i])
		}
	}
}

// TestContinuationDeadlockDetection: continuation mode reports the same
// Deadlock error as the reference scheduler.
func TestContinuationDeadlockDetection(t *testing.T) {
	e := NewEngine()
	e.Mode = ModeContinuation
	err := e.Run(2, func(p *Proc) {
		p.Elapse(5)
		p.Park("never-signalled")
	})
	var d *Deadlock
	if !errors.As(err, &d) {
		t.Fatalf("want *Deadlock, got %v", err)
	}
	if len(d.Waiting) != 2 {
		t.Fatalf("want 2 waiting ranks, got %v", d.Waiting)
	}
}

// TestContinuationRankPanic: a rank panic surfaces as the run error in
// continuation mode too.
func TestContinuationRankPanic(t *testing.T) {
	e := NewEngine()
	e.Mode = ModeContinuation
	err := e.Run(3, func(p *Proc) {
		p.Elapse(Time(p.ID() + 1))
		if p.ID() == 1 {
			panic("boom")
		}
		p.Park("stuck")
	})
	if err == nil || !contains(err.Error(), "boom") {
		t.Fatalf("want panic error containing boom, got %v", err)
	}
}

// TestContinuationMaxTime: the virtual-time watchdog fires identically.
func TestContinuationMaxTime(t *testing.T) {
	e := NewEngine()
	e.Mode = ModeContinuation
	e.MaxTime = 100
	err := e.Run(2, func(p *Proc) {
		for {
			p.Elapse(60)
		}
	})
	var tl *ErrTimeLimit
	if !errors.As(err, &tl) {
		t.Fatalf("want *ErrTimeLimit, got %v", err)
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// settledGoroutines waits for the runtime's goroutine count to drop to
// at most want, tolerating scheduling delay after Run returns.
func settledGoroutines(want int) int {
	var n int
	for i := 0; i < 100; i++ {
		n = runtime.NumGoroutine()
		if n <= want {
			return n
		}
		time.Sleep(time.Millisecond)
	}
	return n
}

// TestNoGoroutineLeakOnPanic: a rank panic with peers parked must not
// leak the parked ranks' goroutines — they are drained before Run
// returns, in both modes.
func TestNoGoroutineLeakOnPanic(t *testing.T) {
	for _, mode := range []Mode{ModeGoroutine, ModeContinuation, ModeParallel} {
		t.Run(mode.String(), func(t *testing.T) {
			before := runtime.NumGoroutine()
			for iter := 0; iter < 50; iter++ {
				e := NewEngine()
				e.Mode = mode
				err := e.Run(8, func(p *Proc) {
					if p.ID() == 3 {
						p.Elapse(10)
						panic("kaboom")
					}
					p.Park("victim")
				})
				if err == nil || !contains(err.Error(), "kaboom") {
					t.Fatalf("iter %d: want panic error, got %v", iter, err)
				}
			}
			if after := settledGoroutines(before + 2); after > before+2 {
				t.Fatalf("goroutines leaked: before=%d after=%d", before, after)
			}
		})
	}
}

// TestNoGoroutineLeakOnDeadlock: deadlocked runs drain every parked
// rank before returning.
func TestNoGoroutineLeakOnDeadlock(t *testing.T) {
	for _, mode := range []Mode{ModeGoroutine, ModeContinuation, ModeParallel} {
		t.Run(mode.String(), func(t *testing.T) {
			before := runtime.NumGoroutine()
			for iter := 0; iter < 50; iter++ {
				e := NewEngine()
				e.Mode = mode
				err := e.Run(8, func(p *Proc) {
					p.Park("forever")
				})
				var d *Deadlock
				if !errors.As(err, &d) {
					t.Fatalf("iter %d: want *Deadlock, got %v", iter, err)
				}
			}
			if after := settledGoroutines(before + 2); after > before+2 {
				t.Fatalf("goroutines leaked: before=%d after=%d", before, after)
			}
		})
	}
}

// TestNoGoroutineLeakOnMaxTime: time-limit aborts drain too.
func TestNoGoroutineLeakOnMaxTime(t *testing.T) {
	for _, mode := range []Mode{ModeGoroutine, ModeContinuation, ModeParallel} {
		t.Run(mode.String(), func(t *testing.T) {
			before := runtime.NumGoroutine()
			for iter := 0; iter < 50; iter++ {
				e := NewEngine()
				e.Mode = mode
				e.MaxTime = 50
				err := e.Run(4, func(p *Proc) {
					for {
						p.Elapse(30)
					}
				})
				var tl *ErrTimeLimit
				if !errors.As(err, &tl) {
					t.Fatalf("iter %d: want *ErrTimeLimit, got %v", iter, err)
				}
			}
			if after := settledGoroutines(before + 2); after > before+2 {
				t.Fatalf("goroutines leaked: before=%d after=%d", before, after)
			}
		})
	}
}

// TestContinuationFiberReuse: ranks that never park all execute on a
// bounded set of fibers — the run must not spawn one goroutine per
// rank when bodies run to completion back-to-back.
func TestContinuationFiberReuse(t *testing.T) {
	before := runtime.NumGoroutine()
	e := NewEngine()
	e.Mode = ModeContinuation
	peak := 0
	err := e.Run(10000, func(p *Proc) {
		if p.ID()%1000 == 0 {
			if n := runtime.NumGoroutine(); n > peak {
				peak = n
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if peak > before+10 {
		t.Fatalf("fiber reuse broken: %d goroutines live during a no-park run (baseline %d)", peak, before)
	}
}

// TestParseMode covers the CLI surface.
func TestParseMode(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Mode
		ok   bool
	}{
		{"goroutine", ModeGoroutine, true},
		{"continuation", ModeContinuation, true},
		{"parallel", ModeParallel, true},
		{"fiber", 0, false},
	} {
		got, err := ParseMode(tc.in)
		if tc.ok && (err != nil || got != tc.want) {
			t.Errorf("ParseMode(%q) = %v, %v; want %v", tc.in, got, err, tc.want)
		}
		if !tc.ok && err == nil {
			t.Errorf("ParseMode(%q): want error", tc.in)
		}
		if !tc.ok && err != nil {
			// The error must enumerate every valid mode name so CLI
			// surfaces can fail fast with a usable message.
			for _, name := range ModeNames() {
				if !contains(err.Error(), name) {
					t.Errorf("ParseMode(%q) error %q does not name mode %q", tc.in, err, name)
				}
			}
		}
	}
}

// BenchmarkModeManyRanks compares scheduler overhead per mode with a
// park-heavy interleaving workload.
func BenchmarkModeManyRanks(b *testing.B) {
	for _, mode := range []Mode{ModeGoroutine, ModeContinuation} {
		b.Run(mode.String(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				e := NewEngine()
				e.Mode = mode
				if err := e.Run(256, func(p *Proc) {
					for j := 0; j < 16; j++ {
						p.Elapse(Time(1 + p.ID()%7))
					}
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
