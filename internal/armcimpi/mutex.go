package armcimpi

import (
	"fmt"

	"repro/internal/armci"
	"repro/internal/fabric"
	"repro/internal/mpi"
	"repro/internal/obs"
	"repro/internal/obs/profile"
)

// Mutexes implements the ARMCI mutex API with the MPI RMA queueing
// mutex algorithm of Latham et al. (SectionV.D): each mutex is a byte
// vector B of length nproc on its host; a lock sets B[i]=1 and fetches
// all other entries in one exclusive epoch. If any other entry is set,
// the process is enqueued and blocks in a wildcard-source MPI receive,
// generating no network traffic while it waits. Unlock clears B[i],
// fetches the rest, and forwards the lock to the first waiter found in
// a circular scan starting at i+1 (fairness) with a zero-byte message.
type Mutexes struct {
	r       *Runtime
	comm    *mpi.Comm // dedicated communicator (notification isolation)
	win     *mpi.Win
	counts  []int // mutexes hosted per comm rank; nil when uniform
	uniform int   // count hosted by every rank, when counts is nil
	scratch *fabric.Region
}

// countFor returns the number of mutexes hosted by comm rank host.
func (m *Mutexes) countFor(host int) int {
	if m.counts == nil {
		return m.uniform
	}
	return m.counts[host]
}

// newMutexes collectively creates a mutex set over comm, with the
// caller hosting n mutexes.
func newMutexes(r *Runtime, parent *mpi.Comm, n int) (*Mutexes, error) {
	if n < 0 {
		return nil, fmt.Errorf("armcimpi: CreateMutexes(%d)", n)
	}
	comm := parent.Dup()
	m := &Mutexes{r: r, comm: comm, uniform: -1}
	if comm.Size() >= mpi.BigCommThreshold {
		// Gather the counts at rank 0; in the overwhelmingly common case
		// every rank hosts the same count (GMR mutex sets host exactly
		// one each), so a scalar broadcast replaces the N-entry count
		// vector every rank would otherwise hold.
		parts := comm.Gather(0, mpi.I64sToBytes([]int64{int64(n)}))
		var all []int64
		hdr := make([]int64, 1)
		if comm.Rank() == 0 {
			all = make([]int64, len(parts))
			hdr[0] = mpi.BytesToI64s(parts[0])[0]
			for i, p := range parts {
				all[i] = mpi.BytesToI64s(p)[0]
				if all[i] != hdr[0] {
					hdr[0] = -1
				}
			}
		}
		hdr = comm.BcastI64(0, hdr)
		if hdr[0] >= 0 {
			m.uniform = int(hdr[0])
		} else {
			all = comm.BcastI64(0, all)
			m.counts = make([]int, len(all))
			for i, c := range all {
				m.counts[i] = int(c)
			}
		}
	} else {
		counts64 := comm.AllgatherI64([]int64{int64(n)})
		m.counts = make([]int, len(counts64))
		for i, c := range counts64 {
			m.counts[i] = int(c)
		}
	}
	reg := r.R.AllocMem(n * comm.Size())
	win, err := r.winCreate(comm, reg)
	if err != nil {
		return nil, err
	}
	m.win = win
	m.scratch = r.R.AllocMem(comm.Size() + 1)
	return m, nil
}

// CreateMutexes collectively creates n mutexes hosted on the calling
// process over the world.
func (r *Runtime) CreateMutexes(n int) (armci.Mutexes, error) {
	return newMutexes(r, r.R.CommWorld(), n)
}

func (m *Mutexes) tag(host, mtx int) int { return host*4096 + mtx }

// epoch performs the algorithm's single exclusive access epoch at the
// host: write my byte and fetch all others. Returns the other entries
// (indexed by comm rank, with my own slot zeroed).
func (m *Mutexes) epoch(host, mtx int, myByte byte) ([]byte, error) {
	me := m.comm.Rank()
	n := m.comm.Size()
	base := mtx * n
	m.scratch.Backing()[0] = myByte
	if err := m.win.Lock(mpi.LockExclusive, host); err != nil {
		return nil, err
	}
	if err := m.win.Put(
		mpi.LocalBuf{Region: m.scratch, Off: 0, Type: mpi.TypeContiguous(1)},
		host, base+me, mpi.TypeContiguous(1)); err != nil {
		return nil, err
	}
	if me > 0 {
		if err := m.win.Get(
			mpi.LocalBuf{Region: m.scratch, Off: 1, Type: mpi.TypeContiguous(me)},
			host, base, mpi.TypeContiguous(me)); err != nil {
			return nil, err
		}
	}
	if rest := n - me - 1; rest > 0 {
		if err := m.win.Get(
			mpi.LocalBuf{Region: m.scratch, Off: 1 + me, Type: mpi.TypeContiguous(rest)},
			host, base+me+1, mpi.TypeContiguous(rest)); err != nil {
			return nil, err
		}
	}
	if err := m.win.Unlock(host); err != nil {
		return nil, err
	}
	others := make([]byte, n)
	copy(others[:me], m.scratch.Backing()[1:1+me])
	copy(others[me+1:], m.scratch.Backing()[1+me:n])
	return others, nil
}

// Lock acquires mutex mtx hosted on world rank proc.
func (m *Mutexes) Lock(mtx, proc int) {
	host := m.comm.RankOfWorld(proc)
	if host < 0 || mtx < 0 || mtx >= m.countFor(host) {
		panic(fmt.Sprintf("armcimpi: Lock(%d,%d): invalid mutex", mtx, proc))
	}
	t0 := m.r.R.P.Now()
	others, err := m.epoch(host, mtx, 1)
	if err != nil {
		panic(fmt.Sprintf("armcimpi: mutex lock epoch failed: %v", err))
	}
	queued := 0
	for _, b := range others {
		if b != 0 {
			queued++
		}
	}
	if queued > 0 {
		// Enqueued: wait locally for the lock to be forwarded.
		m.comm.Recv(mpi.AnySource, m.tag(host, mtx))
	}
	o := m.r.obs()
	rank := m.r.Rank()
	o.MaxGauge(rank, obs.GMutexQueue, int64(queued))
	o.AddTime(rank, obs.TMutexWait, m.r.R.P.Now()-t0)
	if pr := o.Prof(); pr != nil {
		pr.PhaseAt(rank, profile.PhaseLockWait, t0, m.r.R.P.Now())
	}
	if o.Tracing() {
		o.Span(rank, "armci", "mutex.lock", t0, m.r.R.P.Now(),
			obs.A("host", proc), obs.A("queued", queued))
	}
}

// Unlock releases mutex mtx on world rank proc, forwarding it to the
// next waiting process in circular order.
func (m *Mutexes) Unlock(mtx, proc int) {
	host := m.comm.RankOfWorld(proc)
	if host < 0 || mtx < 0 || mtx >= m.countFor(host) {
		panic(fmt.Sprintf("armcimpi: Unlock(%d,%d): invalid mutex", mtx, proc))
	}
	others, err := m.epoch(host, mtx, 0)
	if err != nil {
		panic(fmt.Sprintf("armcimpi: mutex unlock epoch failed: %v", err))
	}
	me := m.comm.Rank()
	n := m.comm.Size()
	// Scan from me+1 for fairness (SectionV.D).
	for k := 1; k < n; k++ {
		j := (me + k) % n
		if others[j] != 0 {
			m.comm.Send(j, m.tag(host, mtx), nil)
			return
		}
	}
}

// Destroy collectively frees the mutex set.
func (m *Mutexes) Destroy() error {
	if err := m.win.Free(); err != nil {
		return err
	}
	sp := m.r.W.Mpi.M.Space(m.r.Rank())
	if m.win.LocalRegion() != nil {
		if err := sp.Free(m.win.LocalRegion().VA); err != nil {
			return err
		}
	}
	return sp.Free(m.scratch.VA)
}
