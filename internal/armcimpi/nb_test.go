package armcimpi

import (
	"testing"

	"repro/internal/armci"
)

// TestNbHandleWaitIdempotent checks the nonblocking handle contract on
// the MPI-3 request path: Wait may be called repeatedly, Test reports
// completion after Wait, and WaitAll tolerates duplicate and nil
// handles — all without double-releasing the underlying views.
func TestNbHandleWaitIdempotent(t *testing.T) {
	opt := DefaultOptions()
	opt.UseMPI3 = true
	run(t, 2, opt, func(rt *Runtime) {
		addrs, err := rt.Malloc(512)
		must(t, err)
		local := rt.MallocLocal(512)
		lb, err := rt.LocalBytes(local, 512)
		must(t, err)
		if rt.Rank() == 0 {
			for i := range lb {
				lb[i] = byte(i % 251)
			}
			hp, err := rt.NbPut(local, addrs[1], 256)
			must(t, err)
			s := &armci.Strided{
				Src: local.Add(256), Dst: addrs[1].Add(256),
				SrcStride: []int{32}, DstStride: []int{64},
				Count: []int{32, 3},
			}
			hs, err := rt.NbPutS(s)
			must(t, err)
			armci.WaitAll(hp, hs, hp, nil, hs)
			hp.Wait()
			hs.Wait()
			if !hp.(armci.Tester).Test() || !hs.(armci.Tester).Test() {
				t.Error("Test false after Wait")
			}
			rt.AllFence()
		}
		rt.Barrier()
		if rt.Rank() == 0 {
			check := rt.MallocLocal(512)
			hg, err := rt.NbGet(addrs[1], check, 256)
			must(t, err)
			hg.Wait()
			hg.Wait()
			cb, err := rt.LocalBytes(check, 256)
			must(t, err)
			for i := range cb {
				if cb[i] != byte(i%251) {
					t.Fatalf("byte %d: got %d want %d", i, cb[i], byte(i%251))
				}
			}
		}
		rt.Barrier()
		must(t, rt.Free(addrs[rt.Rank()]))
	})
}

// TestNbMPI2CompletesImmediately checks the MPI-2 degradation: every
// nonblocking operation is complete before its handle is returned.
func TestNbMPI2CompletesImmediately(t *testing.T) {
	run(t, 2, DefaultOptions(), func(rt *Runtime) {
		addrs, err := rt.Malloc(256)
		must(t, err)
		local := rt.MallocLocal(256)
		if rt.Rank() == 0 {
			h, err := rt.NbAcc(armci.AccDbl, 2, local, addrs[1], 64)
			must(t, err)
			if !h.(armci.Tester).Test() {
				t.Error("MPI-2 nonblocking handle not complete on return")
			}
			iov := armci.GIOV{
				Src:   []armci.Addr{local},
				Dst:   []armci.Addr{addrs[1].Add(128)},
				Bytes: 32,
			}
			hv, err := rt.NbPutV([]armci.GIOV{iov}, 1)
			must(t, err)
			if !hv.(armci.Tester).Test() {
				t.Error("MPI-2 nonblocking IOV handle not complete on return")
			}
			armci.WaitAll(h, hv)
		}
		rt.Barrier()
		must(t, rt.Free(addrs[rt.Rank()]))
	})
}

// TestBatchedErrorReleasesEpoch drives the batched executor into a
// mid-epoch failure (the second segment's local address lies in no
// allocation, which only execution can detect) and checks the runtime
// stays usable: the open epoch must have been closed and the held view
// released, or the follow-up operations would deadlock on the window.
func TestBatchedErrorReleasesEpoch(t *testing.T) {
	opt := DefaultOptions()
	opt.IOVMethod = MethodBatched
	run(t, 2, opt, func(rt *Runtime) {
		addrs, err := rt.Malloc(512)
		must(t, err)
		local := rt.MallocLocal(512)
		if rt.Rank() == 0 {
			iov := armci.GIOV{
				Src:   []armci.Addr{local, local.Add(1 << 20)},
				Dst:   []armci.Addr{addrs[1], addrs[1].Add(64)},
				Bytes: 32,
			}
			if err := rt.PutV([]armci.GIOV{iov}, 1); err == nil {
				t.Error("PutV with an unallocated local segment did not fail")
			}
			// The window must be lockable again for every operation class.
			must(t, rt.Put(local, addrs[1].Add(128), 64))
			must(t, rt.Acc(armci.AccDbl, 3, local, addrs[1].Add(256), 64))
			must(t, rt.Get(addrs[1], local, 64))
		}
		rt.Barrier()
		must(t, rt.Free(addrs[rt.Rank()]))
	})
}

// TestSingleErrorReleasesEpoch does the same for the single-plan path:
// a strided direct transfer whose local side is unallocated fails at
// acquire, after which the target window must still be usable.
func TestSingleErrorReleasesEpoch(t *testing.T) {
	run(t, 2, DefaultOptions(), func(rt *Runtime) {
		addrs, err := rt.Malloc(512)
		must(t, err)
		local := rt.MallocLocal(512)
		if rt.Rank() == 0 {
			s := &armci.Strided{
				Src: local.Add(1 << 20), Dst: addrs[1],
				SrcStride: []int{32}, DstStride: []int{64},
				Count: []int{32, 2},
			}
			if err := rt.PutS(s); err == nil {
				t.Error("PutS with an unallocated local buffer did not fail")
			}
			must(t, rt.Put(local, addrs[1], 64))
		}
		rt.Barrier()
		must(t, rt.Free(addrs[rt.Rank()]))
	})
}
