package armcimpi

import (
	"repro/internal/armci"
	"repro/internal/mpi"
	"repro/internal/obs"
)

// The routing layer: locality is a first-class dimension of every
// compiled transfer plan, decided exactly once per operation by the
// runtime's RoutePolicy and stamped onto the plan the compilers in
// plan.go produce. The executor in exec.go carries the decision out —
// self-copy and node-window epochs are plan kinds, leader staging is a
// plan prologue — so a policy (armcimpi's observational default, or
// dartmpi's tiered classifier) only ever answers the question "which
// route, which method, staged or not?" and never moves data itself.

// Route is the locality class a policy assigns to one operation.
type Route int

const (
	// RouteRMA is the wire tier: the plan executes as passive-target
	// RMA epochs (or MPI-3 request ops) against the GMR window.
	RouteRMA Route = iota
	// RouteSelf is the load-store tier: both sides live on the calling
	// rank and the transfer is one local memcpy (accumulates keep a
	// window epoch for atomicity with same-node updates).
	RouteSelf
	// RouteNode is the same-node tier: one exclusive-lock epoch on the
	// policy's node-shared window, whose ops degenerate to shm copies.
	RouteNode
	// RouteStagedRMA is the hierarchical wire tier: the payload stages
	// through the node leader's buffer (queue + shm copy) before the
	// plan's RMA transfer is issued.
	RouteStagedRMA
)

func (r Route) String() string {
	switch r {
	case RouteRMA:
		return "rma"
	case RouteSelf:
		return "self"
	case RouteNode:
		return "node"
	case RouteStagedRMA:
		return "staged-rma"
	default:
		return "route?"
	}
}

// Shape is the surface form of the operation being routed.
type Shape int

const (
	ShapeContig Shape = iota
	ShapeStrided
	ShapeIOV
)

func (s Shape) String() string {
	switch s {
	case ShapeContig:
		return "contig"
	case ShapeStrided:
		return "strided"
	default:
		return "iov"
	}
}

// RouteRequest describes one operation to the policy.
type RouteRequest struct {
	Class OpClass
	Shape Shape
	// Local is the caller-side buffer (source for put/acc, destination
	// for get); Nil for IOV descriptors, whose local sides were already
	// validated against the calling rank.
	Local armci.Addr
	// Remote is the global address (contiguous operations only; Nil for
	// descriptor shapes, which route by Target alone).
	Remote armci.Addr
	// Target is the remote world rank.
	Target int
	// Bytes is the operation's total payload.
	Bytes int
}

// NodeBinding carries the near-tier window resolution a policy returns
// for RouteSelf and RouteNode decisions it wants executed directly.
type NodeBinding struct {
	Win  *mpi.Win // the node-shared window covering the remote address
	Rank int      // the target's rank in Win's communicator
	Disp int      // byte displacement of the remote address in its slice
}

// RouteDecision is the policy's answer: the route, the noncontiguous
// compile method for RMA routes, and how the engine should carry the
// decision out.
type RouteDecision struct {
	Route  Route
	Method Method
	// PerSeg marks a near-tier descriptor: the engine compiles it to a
	// per-segment plan whose segments re-enter the public contiguous
	// operations and are routed (and counted) individually, so segments
	// falling outside the policy's near window still reach the wire.
	PerSeg bool
	// Direct marks a near decision the engine executes natively
	// (self-copy or node-window epoch) using Node. Left false, a
	// RouteSelf/RouteNode decision is an annotation only and the plan
	// executes the ordinary epoch path (armcimpi's default policy: the
	// shm fast path lives inside the MPI layer).
	Direct bool
	Node   NodeBinding
}

// RoutePolicy decides the route and method for every operation the
// engine compiles. Decide must be pure with respect to virtual time
// (the decision itself costs nothing) and free of data movement.
type RoutePolicy interface {
	Decide(req RouteRequest) RouteDecision
	// Count tallies one routed operation; the engine calls it from the
	// single decision point (never for per-segment re-entries of an
	// already routed descriptor, and never for RouteOf probes).
	Count(dec RouteDecision)
	// Staged is the accounting callback the executor invokes after
	// modeling one leader-staging event of n bytes.
	Staged(n int)
}

// enginePolicy is armcimpi's built-in policy: method selection from
// Options, plus a rank-level locality annotation (self / node / rma).
// It never sets Direct — the engine's own shm fast path lives inside
// the MPI window layer, so near decisions still execute as epochs —
// and it never stages.
type enginePolicy struct{ r *Runtime }

func (p enginePolicy) Decide(req RouteRequest) RouteDecision {
	r := p.r
	d := RouteDecision{Route: RouteRMA, Method: r.MethodFor(req.Shape)}
	if r.Opt.NoShm {
		return d
	}
	me := r.Rank()
	switch {
	case req.Target == me:
		d.Route = RouteSelf
	case req.Target >= 0 && req.Target < r.W.Mpi.M.NRanks && r.W.Mpi.M.SameNode(me, req.Target):
		d.Route = RouteNode
	}
	return d
}

func (enginePolicy) Count(RouteDecision) {}
func (enginePolicy) Staged(int)          {}

// MethodFor resolves the configured noncontiguous method for a shape
// (contiguous transfers have no method choice and report direct).
// Exported so external policies pick methods from the same options the
// engine would.
func (r *Runtime) MethodFor(shape Shape) Method {
	switch shape {
	case ShapeStrided:
		return r.stridedMethod()
	case ShapeIOV:
		return r.Opt.IOVMethod
	default:
		return MethodDirect
	}
}

// SetRoutePolicy installs the runtime's routing policy (dartmpi plugs
// its tier classifier in here). A nil policy restores the default.
func (r *Runtime) SetRoutePolicy(p RoutePolicy) {
	if p == nil {
		p = enginePolicy{r}
	}
	r.policy = p
}

// RouteOf asks the policy how it would route a request, without
// counting it as an operation: the diagnostic probe behind the golden
// decision-table tests. Operation flow never calls this — the engine's
// one decision point is decide below.
func (r *Runtime) RouteOf(req RouteRequest) RouteDecision {
	return r.policy.Decide(req)
}

// routed pairs a decision with the request's payload size, for
// stamping onto compiled plans.
type routed struct {
	dec   RouteDecision
	bytes int
}

// decide is the engine's single routing call site: every operation's
// compile consults the policy exactly once here. Per-segment re-entries
// of an already routed conservative plan consume the pinned decision
// instead (execPerSeg sets it), so a descriptor is decided — and
// counted — once, not once per segment.
func (r *Runtime) decide(req RouteRequest) routed {
	if d := r.pinnedRoute; d != nil {
		r.pinnedRoute = nil
		return routed{dec: *d, bytes: req.Bytes}
	}
	d := r.policy.Decide(req)
	if !d.PerSeg {
		r.countRoute(d, req.Bytes)
		r.policy.Count(d)
	}
	return routed{dec: d, bytes: req.Bytes}
}

// countRoute emits the per-route op/byte counters from the decision
// point. Near-tier descriptors (PerSeg) are not counted here: their
// segments re-enter the engine and are decided individually.
func (r *Runtime) countRoute(d RouteDecision, bytes int) {
	o := r.obs()
	var ops, by string
	switch d.Route {
	case RouteSelf:
		ops, by = obs.CRouteSelf, obs.CRouteSelfBytes
	case RouteNode:
		ops, by = obs.CRouteNode, obs.CRouteNodeBytes
	case RouteStagedRMA:
		ops, by = obs.CRouteStaged, obs.CRouteStagedBytes
	default:
		ops, by = obs.CRouteRMA, obs.CRouteRMABytes
	}
	o.Inc(r.Rank(), ops)
	o.Add(r.Rank(), by, int64(bytes))
}
