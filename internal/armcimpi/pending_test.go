package armcimpi

import (
	"testing"

	"repro/internal/armci"
)

// checkPendingInvariants verifies the pending-tracking bookkeeping:
// every live map entry owns exactly the pendingOrder slot its idx
// names, tombstone accounting matches the nil slots, and no window
// appears twice.
func checkPendingInvariants(t *testing.T, rt *Runtime) {
	t.Helper()
	dead := 0
	for i, w := range rt.pendingOrder {
		if w == nil {
			dead++
			continue
		}
		ent := rt.pending[w]
		if ent == nil {
			t.Fatalf("pendingOrder[%d] has window with no map entry", i)
		}
		if ent.idx != i {
			t.Fatalf("pendingOrder[%d]: entry idx = %d", i, ent.idx)
		}
	}
	if dead != rt.pendingDead {
		t.Fatalf("pendingDead = %d, counted %d tombstones", rt.pendingDead, dead)
	}
	if live := len(rt.pendingOrder) - dead; live != len(rt.pending) {
		t.Fatalf("live slots %d, map entries %d", live, len(rt.pending))
	}
}

// TestDropPendingInterleavedFree is the regression test for the O(1)
// dropPending bookkeeping: many windows with outstanding nonblocking
// operations, freed and fenced in an interleaved order, must keep the
// pending index consistent through tombstoning and compaction — the
// old linear-scan removal had no idx/tombstone state to corrupt, so
// this exercises exactly the new machinery.
func TestDropPendingInterleavedFree(t *testing.T) {
	opt := DefaultOptions()
	opt.UseMPI3 = true
	run(t, 2, opt, func(rt *Runtime) {
		const nwin = 8
		const sz = 256
		var gmrs [nwin][]armci.Addr
		for i := 0; i < nwin; i++ {
			addrs, err := rt.Malloc(sz)
			must(t, err)
			gmrs[i] = addrs
		}
		local := rt.MallocLocal(sz)
		lb, err := rt.LocalBytes(local, sz)
		must(t, err)

		if rt.Rank() == 0 {
			for i := range lb {
				lb[i] = byte(i % 253)
			}
			// Outstanding ops on every window, issued in order.
			var hs []armci.Handle
			for i := 0; i < nwin; i++ {
				h, err := rt.NbPut(local, gmrs[i][1], sz)
				must(t, err)
				hs = append(hs, h)
			}
			armci.WaitAll(hs...)
			checkPendingInvariants(t, rt)
			if len(rt.pending) != nwin {
				t.Fatalf("pending windows = %d, want %d", len(rt.pending), nwin)
			}

			// Fence the target: every window drains, each drop is a
			// tombstone or triggers compaction.
			rt.Fence(1)
			checkPendingInvariants(t, rt)
			if len(rt.pending) != 0 {
				t.Fatalf("pending windows after fence = %d, want 0", len(rt.pending))
			}

			// Re-issue on an interleaved subset, then fence again so the
			// windows freed below have nothing outstanding.
			for _, i := range []int{1, 3, 5, 7, 0} {
				h, err := rt.NbPut(local, gmrs[i][1], sz)
				must(t, err)
				h.Wait()
			}
			checkPendingInvariants(t, rt)
			rt.Fence(1)
			checkPendingInvariants(t, rt)
		}
		rt.Barrier()

		// Free every other window (collective): dropPending runs on both
		// ranks, on rank 0 against a tombstone-bearing order slice.
		for _, i := range []int{0, 2, 4, 6} {
			must(t, rt.Free(gmrs[i][rt.Rank()]))
		}
		checkPendingInvariants(t, rt)

		if rt.Rank() == 0 {
			// The surviving windows must still work and keep consistent
			// bookkeeping through another issue/fence cycle.
			for _, i := range []int{7, 1, 5, 3} {
				h, err := rt.NbPut(local, gmrs[i][1], sz)
				must(t, err)
				h.Wait()
			}
			checkPendingInvariants(t, rt)
			rt.AllFence()
			checkPendingInvariants(t, rt)
			if len(rt.pending) != 0 || len(rt.pendingOrder) != 0 || rt.pendingDead != 0 {
				t.Fatalf("AllFence left pending=%d order=%d dead=%d",
					len(rt.pending), len(rt.pendingOrder), rt.pendingDead)
			}

			// Data check on one survivor.
			check := rt.MallocLocal(sz)
			must(t, rt.Get(gmrs[3][1], check, sz))
			cb, err := rt.LocalBytes(check, sz)
			must(t, err)
			for i := range cb {
				if cb[i] != byte(i%253) {
					t.Fatalf("byte %d: got %d want %d", i, cb[i], byte(i%253))
				}
			}
		}
		rt.Barrier()
		for _, i := range []int{1, 3, 5, 7} {
			must(t, rt.Free(gmrs[i][rt.Rank()]))
		}
	})
}

// TestPendingCompaction drives addPending across enough drop/add cycles
// that compactPending must run, and checks insertion order survives it.
func TestPendingCompaction(t *testing.T) {
	opt := DefaultOptions()
	opt.UseMPI3 = true
	run(t, 2, opt, func(rt *Runtime) {
		const nwin = 6
		const sz = 64
		var gmrs [nwin][]armci.Addr
		for i := 0; i < nwin; i++ {
			addrs, err := rt.Malloc(sz)
			must(t, err)
			gmrs[i] = addrs
		}
		local := rt.MallocLocal(sz)

		if rt.Rank() == 0 {
			for round := 0; round < 6; round++ {
				for i := 0; i < nwin; i++ {
					h, err := rt.NbPut(local, gmrs[i][1], sz)
					must(t, err)
					h.Wait()
				}
				checkPendingInvariants(t, rt)
				// Fence drains every window, tombstoning all slots; the
				// next round's addPending must compact rather than let
				// pendingOrder grow by nwin per round.
				rt.Fence(1)
				checkPendingInvariants(t, rt)
				if len(rt.pendingOrder) > 2*nwin {
					t.Fatalf("round %d: pendingOrder grew to %d (compaction not firing)",
						round, len(rt.pendingOrder))
				}
			}
		}
		rt.Barrier()
		for i := 0; i < nwin; i++ {
			must(t, rt.Free(gmrs[i][rt.Rank()]))
		}
	})
}
