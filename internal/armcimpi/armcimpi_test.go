package armcimpi

import (
	"encoding/binary"
	"fmt"
	"testing"

	"repro/internal/armci"
	"repro/internal/fabric"
	"repro/internal/mpi"
	"repro/internal/platform"
	"repro/internal/sim"
)

// run executes body on n ranks with the given options, returning the
// ARMCI-MPI world for counter checks.
func run(t *testing.T, n int, opt Options, body func(rt *Runtime)) *World {
	t.Helper()
	eng := sim.NewEngine()
	par := fabric.Params{
		Name: "test", Nodes: (n + 1) / 2, CoresPerNode: 2,
		LatencyNs: 1000, Bandwidth: 1e9, MsgOverhead: 100,
		LocalLatencyNs: 100, LocalBandwidth: 4e9,
		CopyRate: 4e9, Flops: 1e9,
		PageSize: 4096, PinPageNs: 0, BounceThreshold: 0,
		BounceRate: 1e9, UnpinnedRate: 0.5e9, AccumRate: 1e9,
		ShmCopyRate: 8e9,
	}
	m, err := fabric.NewMachine(eng, par, n)
	if err != nil {
		t.Fatal(err)
	}
	mw := mpi.NewWorld(m, &platform.Tuning{BandwidthFrac: 1, OpOverheadNs: 200})
	if opt.UseMPI3 {
		mw.EnableMPI3()
	}
	w := NewWorld(mw)
	if err := eng.Run(n, func(p *sim.Proc) {
		body(New(w, mw.Rank(p), opt))
	}); err != nil {
		t.Fatal(err)
	}
	return w
}

func must(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}

func TestStagingForGlobalLocalBuffers(t *testing.T) {
	// SectionV.E.1: when the local side of a transfer is itself global
	// memory, the data must be staged through a temporary buffer.
	w := run(t, 2, DefaultOptions(), func(rt *Runtime) {
		addrs, err := rt.Malloc(128)
		must(t, err)
		addrs2, err := rt.Malloc(128)
		must(t, err)
		if rt.Rank() == 0 {
			// Fill my slice of allocation 1 via DLA.
			mem, err := rt.AccessBegin(addrs[0], 128)
			must(t, err)
			for i := range mem {
				mem[i] = byte(i * 7)
			}
			must(t, rt.AccessEnd(addrs[0]))
			// Put FROM my global slice INTO the other allocation.
			must(t, rt.Put(addrs[0], addrs2[1], 128))
			// Get INTO my global slice.
			must(t, rt.Get(addrs2[1].Add(8), addrs[0].Add(8), 64))
		}
		rt.Barrier()
		if rt.Rank() == 1 {
			mem, err := rt.AccessBegin(addrs2[1], 128)
			must(t, err)
			for i := range mem {
				if mem[i] != byte(i*7) {
					t.Fatalf("staged put byte %d = %d", i, mem[i])
				}
			}
			must(t, rt.AccessEnd(addrs2[1]))
		}
		rt.Barrier()
		must(t, rt.Free(addrs[rt.Rank()]))
		must(t, rt.Free(addrs2[rt.Rank()]))
	})
	if w.Staged < 2 {
		t.Errorf("Staged = %d, want >= 2 (put and get both stage)", w.Staged)
	}
}

func TestNoStagingForPlainBuffers(t *testing.T) {
	w := run(t, 2, DefaultOptions(), func(rt *Runtime) {
		addrs, err := rt.Malloc(64)
		must(t, err)
		if rt.Rank() == 0 {
			src := rt.MallocLocal(64)
			must(t, rt.Put(src, addrs[1], 64))
		}
		rt.Barrier()
		must(t, rt.Free(addrs[rt.Rank()]))
	})
	if w.Staged != 0 {
		t.Errorf("Staged = %d for plain local buffers", w.Staged)
	}
}

// methodResult runs the same strided put/get under a strided method
// and returns the received bytes.
func stridedUnderMethod(t *testing.T, method Method) []byte {
	var got []byte
	opt := DefaultOptions()
	opt.StridedMethod = method
	run(t, 2, opt, func(rt *Runtime) {
		addrs, err := rt.Malloc(2048)
		must(t, err)
		if rt.Rank() == 0 {
			src := rt.MallocLocal(512)
			sb, _ := rt.LocalBytes(src, 512)
			for i := range sb {
				sb[i] = byte((i*13 + 5) % 251)
			}
			s := &armci.Strided{
				Src: src, Dst: addrs[1].Add(64),
				SrcStride: []int{32}, DstStride: []int{48},
				Count: []int{24, 10},
			}
			must(t, rt.PutS(s))
			dst := rt.MallocLocal(512)
			g := &armci.Strided{
				Src: addrs[1].Add(64), Dst: dst,
				SrcStride: []int{48}, DstStride: []int{24},
				Count: []int{24, 10},
			}
			must(t, rt.GetS(g))
			db, _ := rt.LocalBytes(dst, 512)
			got = append([]byte(nil), db[:240]...)
		}
		rt.Barrier()
		must(t, rt.Free(addrs[rt.Rank()]))
	})
	return got
}

func TestStridedMethodsAgree(t *testing.T) {
	ref := stridedUnderMethod(t, MethodConservative)
	for _, m := range []Method{MethodBatched, MethodIOVDirect, MethodDirect} {
		m := m
		t.Run(m.String(), func(t *testing.T) {
			got := stridedUnderMethod(t, m)
			if len(got) != len(ref) {
				t.Fatalf("length %d vs %d", len(got), len(ref))
			}
			for i := range got {
				if got[i] != ref[i] {
					t.Fatalf("method %v disagrees with conservative at byte %d", m, i)
				}
			}
		})
	}
}

func TestIOVMethodsAgree(t *testing.T) {
	for _, m := range []Method{MethodConservative, MethodBatched, MethodIOVDirect, MethodAuto} {
		m := m
		t.Run(m.String(), func(t *testing.T) {
			opt := DefaultOptions()
			opt.IOVMethod = m
			run(t, 2, opt, func(rt *Runtime) {
				addrs, err := rt.Malloc(1024)
				must(t, err)
				if rt.Rank() == 0 {
					src := rt.MallocLocal(256)
					sb, _ := rt.LocalBytes(src, 256)
					for i := range sb {
						sb[i] = byte(i)
					}
					iov := armci.GIOV{
						Src:   []armci.Addr{src, src.Add(32), src.Add(64), src.Add(200)},
						Dst:   []armci.Addr{addrs[1], addrs[1].Add(100), addrs[1].Add(300), addrs[1].Add(700)},
						Bytes: 24,
					}
					must(t, rt.PutV([]armci.GIOV{iov}, 1))
					dst := rt.MallocLocal(96)
					back := armci.GIOV{
						Src:   []armci.Addr{addrs[1], addrs[1].Add(100), addrs[1].Add(300)},
						Dst:   []armci.Addr{dst, dst.Add(32), dst.Add(64)},
						Bytes: 24,
					}
					must(t, rt.GetV([]armci.GIOV{back}, 1))
					db, _ := rt.LocalBytes(dst, 96)
					for s, off := range []int{0, 32, 64} {
						for k := 0; k < 24; k++ {
							if db[off+k] != byte(off+k) {
								t.Fatalf("seg %d byte %d = %d want %d", s, k, db[off+k], byte(off+k))
							}
						}
					}
				}
				rt.Barrier()
				must(t, rt.Free(addrs[rt.Rank()]))
			})
		})
	}
}

func TestAutoFallsBackOnOverlap(t *testing.T) {
	opt := DefaultOptions()
	opt.IOVMethod = MethodAuto
	w := run(t, 2, opt, func(rt *Runtime) {
		addrs, err := rt.Malloc(256)
		must(t, err)
		if rt.Rank() == 0 {
			src := rt.MallocLocal(64)
			// Overlapping destination segments: batched/direct would be
			// erroneous under MPI; auto must detect and go conservative.
			iov := armci.GIOV{
				Src:   []armci.Addr{src, src.Add(16)},
				Dst:   []armci.Addr{addrs[1], addrs[1].Add(8)},
				Bytes: 16,
			}
			must(t, rt.PutV([]armci.GIOV{iov}, 1))
		}
		rt.Barrier()
		must(t, rt.Free(addrs[rt.Rank()]))
	})
	if w.AutoScans == 0 || w.AutoFalls == 0 {
		t.Errorf("auto scan/fallback counters: %d/%d", w.AutoScans, w.AutoFalls)
	}
}

func TestAutoFallsBackAcrossGMRs(t *testing.T) {
	opt := DefaultOptions()
	opt.IOVMethod = MethodAuto
	w := run(t, 2, opt, func(rt *Runtime) {
		a1, err := rt.Malloc(64)
		must(t, err)
		a2, err := rt.Malloc(64)
		must(t, err)
		if rt.Rank() == 0 {
			src := rt.MallocLocal(32)
			iov := armci.GIOV{
				Src:   []armci.Addr{src, src.Add(16)},
				Dst:   []armci.Addr{a1[1], a2[1]}, // two different GMRs
				Bytes: 16,
			}
			must(t, rt.PutV([]armci.GIOV{iov}, 1))
		}
		rt.Barrier()
		must(t, rt.Free(a1[rt.Rank()]))
		must(t, rt.Free(a2[rt.Rank()]))
	})
	if w.AutoFalls == 0 {
		t.Error("cross-GMR IOV did not fall back to conservative")
	}
}

func TestBatchedRespectsBatchSize(t *testing.T) {
	opt := DefaultOptions()
	opt.IOVMethod = MethodBatched
	opt.BatchSize = 3
	run(t, 2, opt, func(rt *Runtime) {
		addrs, err := rt.Malloc(4096)
		must(t, err)
		if rt.Rank() == 0 {
			src := rt.MallocLocal(1024)
			sb, _ := rt.LocalBytes(src, 1024)
			for i := range sb {
				sb[i] = byte(i % 256)
			}
			var iov armci.GIOV
			iov.Bytes = 8
			for i := 0; i < 10; i++ { // 10 segments, batch size 3 -> 4 epochs
				iov.Src = append(iov.Src, src.Add(i*16))
				iov.Dst = append(iov.Dst, addrs[1].Add(i*32))
			}
			must(t, rt.PutV([]armci.GIOV{iov}, 1))
		}
		rt.Barrier()
		if rt.Rank() == 1 {
			mem, err := rt.AccessBegin(addrs[1], 4096)
			must(t, err)
			for i := 0; i < 10; i++ {
				for k := 0; k < 8; k++ {
					if mem[i*32+k] != byte((i*16+k)%256) {
						t.Fatalf("seg %d byte %d wrong", i, k)
					}
				}
			}
			must(t, rt.AccessEnd(addrs[1]))
		}
		rt.Barrier()
		must(t, rt.Free(addrs[rt.Rank()]))
	})
}

func TestRmwMPI3Mode(t *testing.T) {
	opt := DefaultOptions()
	opt.UseMPI3 = true
	run(t, 4, opt, func(rt *Runtime) {
		addrs, err := rt.Malloc(8)
		must(t, err)
		for i := 0; i < 3; i++ {
			_, err := rt.Rmw(armci.FetchAndAdd, addrs[0], 1)
			must(t, err)
		}
		rt.Barrier()
		if rt.Rank() == 0 {
			mem, err := rt.AccessBegin(addrs[0], 8)
			must(t, err)
			if got := int64(binary.LittleEndian.Uint64(mem)); got != 12 {
				t.Errorf("MPI-3 rmw counter = %d, want 12", got)
			}
			must(t, rt.AccessEnd(addrs[0]))
		}
		rt.Barrier()
		must(t, rt.Free(addrs[rt.Rank()]))
	})
}

func TestRmwMPI3FasterThanMutex(t *testing.T) {
	// Ablation (SectionVIII.B): MPI-3 fetch-and-op must beat the
	// mutex + two-epoch MPI-2 emulation.
	timeFor := func(mpi3 bool) sim.Time {
		opt := DefaultOptions()
		opt.UseMPI3 = mpi3
		var total sim.Time
		run(t, 2, opt, func(rt *Runtime) {
			addrs, err := rt.Malloc(8)
			must(t, err)
			if rt.Rank() == 1 {
				start := rt.Proc().Now()
				for i := 0; i < 10; i++ {
					_, err := rt.Rmw(armci.FetchAndAdd, addrs[0], 1)
					must(t, err)
				}
				total = rt.Proc().Now() - start
			}
			rt.Barrier()
			must(t, rt.Free(addrs[rt.Rank()]))
		})
		return total
	}
	t2, t3 := timeFor(false), timeFor(true)
	if t3 >= t2 {
		t.Errorf("MPI-3 rmw (%v) should be faster than mutex emulation (%v)", t3, t2)
	}
}

func TestDLAExcludesRemoteAccess(t *testing.T) {
	// While rank 1 holds direct local access, a remote put must wait.
	var putDone, dlaEnd sim.Time
	run(t, 2, DefaultOptions(), func(rt *Runtime) {
		addrs, err := rt.Malloc(64)
		must(t, err)
		if rt.Rank() == 1 {
			mem, err := rt.AccessBegin(addrs[1], 64)
			must(t, err)
			rt.Proc().Elapse(200 * sim.Microsecond)
			mem[0] = 9
			must(t, rt.AccessEnd(addrs[1]))
			dlaEnd = rt.Proc().Now()
		} else {
			rt.Proc().Elapse(50 * sim.Microsecond) // let rank 1 lock first
			src := rt.MallocLocal(8)
			must(t, rt.Put(src, addrs[1].Add(8), 8))
			putDone = rt.Proc().Now()
		}
		rt.Barrier()
		must(t, rt.Free(addrs[rt.Rank()]))
	})
	if putDone < dlaEnd {
		t.Errorf("remote put completed at %v, before DLA section ended at %v", putDone, dlaEnd)
	}
}

func TestAccessModeSelectsSharedLocks(t *testing.T) {
	// SectionVIII.A: in a read-only (or accumulate-only) phase the
	// runtime may use shared-lock epochs; in the default conflicting
	// mode every data epoch must be exclusive.
	sharedFor := func(mode armci.AccessMode, doAcc bool) (int64, int64) {
		var shared, excl int64
		run(t, 3, DefaultOptions(), func(rt *Runtime) {
			addrs, err := rt.Malloc(4096)
			must(t, err)
			if mode != armci.ModeConflicting {
				must(t, rt.SetAccessMode(mode, addrs[0]))
			}
			base := rt.W.Mpi.SharedEpochs
			baseEx := rt.W.Mpi.ExclEpochs
			if rt.Rank() > 0 {
				buf := rt.MallocLocal(4096)
				if doAcc {
					must(t, rt.Acc(armci.AccDbl, 1, buf, addrs[2], 4096))
				} else {
					must(t, rt.Get(addrs[2], buf, 4096))
				}
			}
			rt.Barrier()
			if rt.Rank() == 0 {
				shared = rt.W.Mpi.SharedEpochs - base
				excl = rt.W.Mpi.ExclEpochs - baseEx
			}
			must(t, rt.Free(addrs[rt.Rank()]))
		})
		return shared, excl
	}
	if shared, _ := sharedFor(armci.ModeReadOnly, false); shared < 2 {
		t.Errorf("read-only gets used %d shared epochs, want >= 2", shared)
	}
	if shared, excl := sharedFor(armci.ModeConflicting, false); shared != 0 || excl < 2 {
		t.Errorf("conflicting gets: shared=%d excl=%d, want 0 shared", shared, excl)
	}
	if shared, _ := sharedFor(armci.ModeAccOnly, true); shared < 2 {
		t.Errorf("acc-only accumulates used %d shared epochs, want >= 2", shared)
	}
}

func TestMutexesAcrossHosts(t *testing.T) {
	run(t, 4, DefaultOptions(), func(rt *Runtime) {
		mux, err := rt.CreateMutexes(2) // 2 mutexes on every rank
		must(t, err)
		// Everyone locks mutex 1 on every host in turn.
		for host := 0; host < rt.Nprocs(); host++ {
			mux.Lock(1, host)
			rt.Proc().Elapse(sim.Microsecond)
			mux.Unlock(1, host)
		}
		rt.Barrier()
		must(t, mux.Destroy())
	})
}

func TestMutexContention(t *testing.T) {
	// Heavy contention on a single mutex: every waiter must eventually
	// acquire (fairness prevents starvation).
	const n = 8
	acquired := make([]int, n)
	run(t, n, DefaultOptions(), func(rt *Runtime) {
		mux, err := rt.CreateMutexes(1)
		must(t, err)
		for i := 0; i < 5; i++ {
			mux.Lock(0, 3)
			acquired[rt.Rank()]++
			rt.Proc().Elapse(2 * sim.Microsecond)
			mux.Unlock(0, 3)
		}
		rt.Barrier()
		must(t, mux.Destroy())
	})
	for r, c := range acquired {
		if c != 5 {
			t.Errorf("rank %d acquired %d times, want 5", r, c)
		}
	}
}

func TestFenceIsNoOp(t *testing.T) {
	// SectionV.F: operations complete remotely before returning, so
	// Fence costs (virtually) nothing.
	run(t, 2, DefaultOptions(), func(rt *Runtime) {
		addrs, err := rt.Malloc(64)
		must(t, err)
		if rt.Rank() == 0 {
			src := rt.MallocLocal(64)
			must(t, rt.Put(src, addrs[1], 64))
			before := rt.Proc().Now()
			rt.Fence(1)
			rt.AllFence()
			if rt.Proc().Now() != before {
				t.Error("Fence advanced time; should be a no-op under ARMCI-MPI")
			}
		}
		rt.Barrier()
		must(t, rt.Free(addrs[rt.Rank()]))
	})
}

func TestMethodString(t *testing.T) {
	for m, want := range map[Method]string{
		MethodConservative: "conservative", MethodBatched: "batched",
		MethodIOVDirect: "iov-direct", MethodDirect: "direct", MethodAuto: "auto",
	} {
		if m.String() != want {
			t.Errorf("%d.String() = %q", int(m), m.String())
		}
	}
	if Method(42).String() == "" {
		t.Error("unknown method string empty")
	}
}

func TestGMRTranslationMultipleAllocations(t *testing.T) {
	run(t, 2, DefaultOptions(), func(rt *Runtime) {
		var allocs [][]armci.Addr
		for i := 0; i < 5; i++ {
			a, err := rt.Malloc(64 * (i + 1))
			must(t, err)
			allocs = append(allocs, a)
		}
		if rt.Rank() == 0 {
			src := rt.MallocLocal(32)
			sb, _ := rt.LocalBytes(src, 32)
			for i := range sb {
				sb[i] = 0xEE
			}
			// Address translation must pick the right GMR for each.
			for i, a := range allocs {
				must(t, rt.Put(src, a[1].Add(8*i), 32))
			}
		}
		rt.Barrier()
		if rt.Rank() == 1 {
			for i, a := range allocs {
				mem, err := rt.AccessBegin(a[1], 64*(i+1))
				must(t, err)
				if mem[8*i] != 0xEE || mem[8*i+31] != 0xEE {
					t.Fatalf("allocation %d data missing", i)
				}
				must(t, rt.AccessEnd(a[1]))
			}
		}
		rt.Barrier()
		for _, a := range allocs {
			must(t, rt.Free(a[rt.Rank()]))
		}
	})
}

func TestOpsOnFreedAllocationFail(t *testing.T) {
	run(t, 2, DefaultOptions(), func(rt *Runtime) {
		addrs, err := rt.Malloc(64)
		must(t, err)
		saved := addrs[1]
		must(t, rt.Free(addrs[rt.Rank()]))
		if rt.Rank() == 0 {
			src := rt.MallocLocal(8)
			if err := rt.Put(src, saved, 8); err == nil {
				t.Error("put to freed GMR accepted")
			}
		}
	})
}

var _ = fmt.Sprintf

func TestNoStagingModeOnCoherentSystems(t *testing.T) {
	// SectionV.E.1's last point: on coherent systems the global-buffer
	// management can be disabled for better performance. Data must stay
	// correct; the staging counter must stay zero.
	opt := DefaultOptions()
	opt.NoStaging = true
	w := run(t, 2, opt, func(rt *Runtime) {
		a1, err := rt.Malloc(128)
		must(t, err)
		a2, err := rt.Malloc(128)
		must(t, err)
		if rt.Rank() == 0 {
			mem, err := rt.AccessBegin(a1[0], 128)
			must(t, err)
			for i := range mem {
				mem[i] = byte(i + 3)
			}
			must(t, rt.AccessEnd(a1[0]))
			// Put directly from global memory without staging.
			must(t, rt.Put(a1[0], a2[1], 128))
		}
		rt.Barrier()
		if rt.Rank() == 1 {
			mem, err := rt.AccessBegin(a2[1], 128)
			must(t, err)
			for i := range mem {
				if mem[i] != byte(i+3) {
					t.Fatalf("no-staging put byte %d = %d", i, mem[i])
				}
			}
			must(t, rt.AccessEnd(a2[1]))
		}
		rt.Barrier()
		must(t, rt.Free(a1[rt.Rank()]))
		must(t, rt.Free(a2[rt.Rank()]))
	})
	if w.Staged != 0 {
		t.Errorf("NoStaging mode staged %d times", w.Staged)
	}
}

func TestLocationConsistency(t *testing.T) {
	// SectionIV.A/V.F: a process observes its own operations to a given
	// target in issue order. Because every ARMCI-MPI operation completes
	// within its own epoch, a later get must see the latest earlier put.
	run(t, 2, DefaultOptions(), func(rt *Runtime) {
		addrs, err := rt.Malloc(8)
		must(t, err)
		if rt.Rank() == 0 {
			src := rt.MallocLocal(8)
			b, _ := rt.LocalBytes(src, 8)
			for v := byte(1); v <= 5; v++ {
				b[0] = v
				must(t, rt.Put(src, addrs[1], 8))
				dst := rt.MallocLocal(8)
				must(t, rt.Get(addrs[1], dst, 8))
				db, _ := rt.LocalBytes(dst, 8)
				if db[0] != v {
					t.Fatalf("after put %d, get observed %d (location consistency violated)", v, db[0])
				}
				must(t, rt.FreeLocal(dst))
			}
		}
		rt.Barrier()
		must(t, rt.Free(addrs[rt.Rank()]))
	})
}

func TestDeterministicVirtualTime(t *testing.T) {
	// The same program must produce bit-identical virtual end times.
	elapsed := func() sim.Time {
		var final sim.Time
		run(t, 4, DefaultOptions(), func(rt *Runtime) {
			addrs, err := rt.Malloc(4096)
			must(t, err)
			src := rt.MallocLocal(4096)
			for i := 0; i < 5; i++ {
				target := (rt.Rank() + 1 + i) % rt.Nprocs()
				must(t, rt.Put(src, addrs[target], 512))
				_, err := rt.Rmw(armci.FetchAndAdd, addrs[0], 1)
				must(t, err)
			}
			rt.Barrier()
			must(t, rt.Free(addrs[rt.Rank()]))
			if rt.Proc().Now() > final {
				final = rt.Proc().Now()
			}
		})
		return final
	}
	a, b := elapsed(), elapsed()
	if a != b {
		t.Errorf("virtual time not deterministic: %v vs %v", a, b)
	}
}

func TestSemanticErrorSurfacedThroughMPIChecking(t *testing.T) {
	// ARMCI-MPI must never trip MPI-2's conflicting-access checking:
	// run a contention-heavy mix with checking enabled (the default)
	// and confirm no window error surfaces.
	w := run(t, 6, DefaultOptions(), func(rt *Runtime) {
		addrs, err := rt.Malloc(4096)
		must(t, err)
		src := rt.MallocLocal(4096)
		for i := 0; i < 4; i++ {
			t1 := (rt.Rank() + 1) % rt.Nprocs()
			t2 := (rt.Rank() + 2) % rt.Nprocs()
			must(t, rt.Put(src, addrs[t1].Add(8*rt.Rank()), 8))
			must(t, rt.Acc(armci.AccDbl, 1, src, addrs[t2], 64))
			must(t, rt.Get(addrs[t1], src, 32))
		}
		rt.Barrier()
		must(t, rt.Free(addrs[rt.Rank()]))
	})
	if !w.Mpi.Checked {
		t.Fatal("checking was not enabled")
	}
}

func TestMPI3NonblockingOverlap(t *testing.T) {
	// SectionVIII.B item 3: request-based operations allow overlap of
	// computation and communication — impossible under MPI-2 where
	// ARMCI-MPI's nonblocking calls complete eagerly.
	// The partner is rank 2 — a different node (two cores per node in
	// the test platform): the intra-node shared-memory path completes
	// gets synchronously, so only a cross-node transfer can overlap.
	overlapGain := func(mpi3 bool) float64 {
		opt := DefaultOptions()
		opt.UseMPI3 = mpi3
		var blocking, overlapped sim.Time
		run(t, 3, opt, func(rt *Runtime) {
			addrs, err := rt.Malloc(4 << 20)
			must(t, err)
			if rt.Rank() == 0 {
				dst := rt.MallocLocal(4 << 20)
				start := rt.Proc().Now()
				must(t, rt.Get(addrs[2], dst, 4<<20))
				blocking = rt.Proc().Now() - start
				start = rt.Proc().Now()
				h, err := rt.NbGet(addrs[2], dst, 4<<20)
				must(t, err)
				rt.Proc().Elapse(blocking) // compute while the get flies
				h.Wait()
				overlapped = rt.Proc().Now() - start
			}
			rt.Barrier()
			must(t, rt.Free(addrs[rt.Rank()]))
		})
		// Gain = how much of the communication hid behind compute.
		return float64(blocking+blocking) / float64(overlapped)
	}
	if g := overlapGain(true); g < 1.5 {
		t.Errorf("MPI-3 nbget overlap gain %.2f, want ~2 (communication hidden)", g)
	}
	if g := overlapGain(false); g > 1.2 {
		t.Errorf("MPI-2 nbget shows overlap gain %.2f; it must complete eagerly", g)
	}
}

func TestMPI3ContiguousFasterThanMPI2(t *testing.T) {
	// Lock-all + flush saves the per-op lock/unlock round trips.
	latency := func(mpi3 bool) sim.Time {
		opt := DefaultOptions()
		opt.UseMPI3 = mpi3
		var lat sim.Time
		run(t, 2, opt, func(rt *Runtime) {
			addrs, err := rt.Malloc(4096)
			must(t, err)
			if rt.Rank() == 0 {
				src := rt.MallocLocal(4096)
				start := rt.Proc().Now()
				for i := 0; i < 10; i++ {
					must(t, rt.Put(src, addrs[1], 1024))
				}
				lat = (rt.Proc().Now() - start) / 10
			}
			rt.Barrier()
			must(t, rt.Free(addrs[rt.Rank()]))
		})
		return lat
	}
	l2, l3 := latency(false), latency(true)
	if l3 >= l2 {
		t.Errorf("MPI-3 put latency (%v) should beat MPI-2 epochs (%v)", l3, l2)
	}
}

func TestMPI3DLAAndRmwInterleave(t *testing.T) {
	// Lock-all mode must coexist with direct local access and atomics
	// on the same window.
	opt := DefaultOptions()
	opt.UseMPI3 = true
	run(t, 2, opt, func(rt *Runtime) {
		addrs, err := rt.Malloc(64)
		must(t, err)
		if rt.Rank() == 0 {
			src := rt.MallocLocal(8)
			must(t, rt.Put(src, addrs[1], 8))
			_, err := rt.Rmw(armci.FetchAndAdd, addrs[1].Add(8), 5)
			must(t, err)
			mem, err := rt.AccessBegin(addrs[0], 64)
			must(t, err)
			mem[0] = 7
			must(t, rt.AccessEnd(addrs[0]))
			_, err = rt.Rmw(armci.FetchAndAdd, addrs[1].Add(8), 5)
			must(t, err)
		}
		rt.Barrier()
		if rt.Rank() == 1 {
			mem, err := rt.AccessBegin(addrs[1], 64)
			must(t, err)
			if got := int64(binary.LittleEndian.Uint64(mem[8:])); got != 10 {
				t.Errorf("counter = %d, want 10", got)
			}
			must(t, rt.AccessEnd(addrs[1]))
		}
		rt.Barrier()
		must(t, rt.Free(addrs[rt.Rank()]))
	})
}
