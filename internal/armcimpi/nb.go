package armcimpi

import (
	"fmt"

	"repro/internal/armci"
	"repro/internal/obs/profile"
)

// The complete nonblocking surface. Under MPI-2 there are no
// request-based RMA operations (SectionVIII.B), so every Nb operation
// completes before returning and hands back completedHandle. Under
// MPI-3 the operation compiles to the same plan as its blocking
// counterpart and execNb3 issues it as request-based operations whose
// local completion is deferred to Wait/Test and whose remote
// completion is deferred to Fence/AllFence — the overlap that makes
// per-owner fan-out aggregation (Figure 2) profitable.

// completedHandle is the handle for "nonblocking" operations that
// completed before returning (the MPI-2 path). The handle is only
// constructed after Unlock returns — a handle must never report
// completion while its epoch is still open.
type completedHandle struct{}

func (completedHandle) Wait()      {}
func (completedHandle) Test() bool { return true }

// failedHandle is returned alongside the error when an immediate-mode
// nonblocking operation fails. Callers that ignore the error and Wait
// (or Test) anyway must not silently proceed on garbage data, so both
// re-raise the failure.
type failedHandle struct{ err error }

func (h failedHandle) Wait() {
	panic(fmt.Sprintf("armcimpi: Wait on failed nonblocking operation: %v", h.err))
}

func (h failedHandle) Test() bool {
	panic(fmt.Sprintf("armcimpi: Test on failed nonblocking operation: %v", h.err))
}

// nbImmediate adapts a blocking call to the MPI-2 nonblocking surface.
func nbImmediate(err error) (armci.Handle, error) {
	if err != nil {
		return failedHandle{err: err}, err
	}
	return completedHandle{}, nil
}

// NbPut issues a put. Under MPI-2 the call completes before returning;
// under MPI-3 it issues an Rput whose remote completion is deferred to
// Fence, enabling communication/computation overlap.
func (r *Runtime) NbPut(src, dst armci.Addr, n int) (armci.Handle, error) {
	if pr := r.obs().Prof(); pr != nil {
		pr.Begin(r.Rank(), profile.OpNbPut)
		defer pr.End(r.Rank())
	}
	if !r.Opt.UseMPI3 {
		return nbImmediate(r.Put(src, dst, n))
	}
	if err := armci.CheckContig(src, dst, n); err != nil {
		return nil, err
	}
	rt := r.decide(RouteRequest{Class: ClassPut, Shape: ShapeContig, Local: src, Remote: dst, Target: dst.Rank, Bytes: n})
	p, err := r.compileContig(ClassPut, 1, src, dst, n, rt)
	if err != nil {
		return nil, err
	}
	return r.execNb3(p)
}

// NbGet issues a get; under MPI-2 it completes immediately, under
// MPI-3 the handle's Wait blocks until the data has landed.
func (r *Runtime) NbGet(src, dst armci.Addr, n int) (armci.Handle, error) {
	if pr := r.obs().Prof(); pr != nil {
		pr.Begin(r.Rank(), profile.OpNbGet)
		defer pr.End(r.Rank())
	}
	if !r.Opt.UseMPI3 {
		return nbImmediate(r.Get(src, dst, n))
	}
	if err := armci.CheckContig(src, dst, n); err != nil {
		return nil, err
	}
	rt := r.decide(RouteRequest{Class: ClassGet, Shape: ShapeContig, Local: dst, Remote: src, Target: src.Rank, Bytes: n})
	p, err := r.compileContig(ClassGet, 1, dst, src, n, rt)
	if err != nil {
		return nil, err
	}
	return r.execNb3(p)
}

// NbAcc issues an accumulate; under MPI-2 it completes immediately,
// under MPI-3 it issues an Raccumulate (prescaled when scale != 1)
// whose remote completion is deferred to Fence.
func (r *Runtime) NbAcc(op armci.AccOp, scale float64, src, dst armci.Addr, n int) (armci.Handle, error) {
	if pr := r.obs().Prof(); pr != nil {
		pr.Begin(r.Rank(), profile.OpNbAcc)
		defer pr.End(r.Rank())
	}
	if !r.Opt.UseMPI3 {
		return nbImmediate(r.Acc(op, scale, src, dst, n))
	}
	if err := armci.CheckContig(src, dst, n); err != nil {
		return nil, err
	}
	if n%8 != 0 {
		return nil, fmt.Errorf("armcimpi: NbAcc size %d not a multiple of 8 (float64)", n)
	}
	rt := r.decide(RouteRequest{Class: ClassAcc, Shape: ShapeContig, Local: src, Remote: dst, Target: dst.Rank, Bytes: n})
	p, err := r.compileContig(ClassAcc, scale, src, dst, n, rt)
	if err != nil {
		return nil, err
	}
	return r.execNb3(p)
}

// NbPutS issues a strided put through the configured strided method.
func (r *Runtime) NbPutS(s *armci.Strided) (armci.Handle, error) {
	return r.nbStrided(ClassPut, 1, s)
}

// NbGetS issues a strided get through the configured strided method.
func (r *Runtime) NbGetS(s *armci.Strided) (armci.Handle, error) {
	return r.nbStrided(ClassGet, 1, s)
}

// NbAccS issues a strided accumulate through the configured method.
func (r *Runtime) NbAccS(op armci.AccOp, scale float64, s *armci.Strided) (armci.Handle, error) {
	if s.SegBytes()%8 != 0 {
		return nil, fmt.Errorf("armcimpi: NbAccS segment size %d not float64-aligned", s.SegBytes())
	}
	return r.nbStrided(ClassAcc, scale, s)
}

func (r *Runtime) nbStrided(class OpClass, scale float64, s *armci.Strided) (armci.Handle, error) {
	if pr := r.obs().Prof(); pr != nil {
		pr.Begin(r.Rank(), profNbStridedOp[class])
		defer pr.End(r.Rank())
	}
	if !r.Opt.UseMPI3 {
		var err error
		switch class {
		case ClassPut:
			err = r.PutS(s)
		case ClassGet:
			err = r.GetS(s)
		default:
			err = r.AccS(armci.AccDbl, scale, s)
		}
		return nbImmediate(err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	local, remote := s.Src, s.Dst
	if class == ClassGet {
		local, remote = s.Dst, s.Src
	}
	rt := r.decide(RouteRequest{Class: class, Shape: ShapeStrided,
		Local: local, Remote: remote, Target: remote.Rank, Bytes: s.TotalBytes()})
	p, err := r.compileStrided(class, scale, s, rt)
	if err != nil {
		return nil, err
	}
	return r.execNb3(p)
}

// NbPutV issues a generalized I/O vector put to proc.
func (r *Runtime) NbPutV(iov []armci.GIOV, proc int) (armci.Handle, error) {
	return r.nbIOV(ClassPut, 1, iov, proc)
}

// NbGetV issues a generalized I/O vector get from proc.
func (r *Runtime) NbGetV(iov []armci.GIOV, proc int) (armci.Handle, error) {
	return r.nbIOV(ClassGet, 1, iov, proc)
}

// NbAccV issues a generalized I/O vector accumulate to proc.
func (r *Runtime) NbAccV(op armci.AccOp, scale float64, iov []armci.GIOV, proc int) (armci.Handle, error) {
	if err := checkAccIOV(iov); err != nil {
		return nil, err
	}
	return r.nbIOV(ClassAcc, scale, iov, proc)
}

func (r *Runtime) nbIOV(class OpClass, scale float64, iov []armci.GIOV, proc int) (armci.Handle, error) {
	if pr := r.obs().Prof(); pr != nil {
		pr.Begin(r.Rank(), profNbIOVOp[class])
		defer pr.End(r.Rank())
	}
	if !r.Opt.UseMPI3 {
		var err error
		switch class {
		case ClassPut:
			err = r.PutV(iov, proc)
		case ClassGet:
			err = r.GetV(iov, proc)
		default:
			err = r.AccV(armci.AccDbl, scale, iov, proc)
		}
		return nbImmediate(err)
	}
	rt := r.decide(RouteRequest{Class: class, Shape: ShapeIOV, Target: proc, Bytes: iovBytes(iov)})
	p, err := r.compileIOV(class, scale, iov, proc, rt)
	if err != nil {
		return nil, err
	}
	return r.execNb3(p)
}
