package armcimpi

import (
	"encoding/binary"
	"fmt"

	"repro/internal/armci"
	"repro/internal/mpi"
	"repro/internal/obs/profile"
)

// AccessBegin initiates direct load/store access to local data within
// a GMR — the paper's DLA extension (SectionV.E). An exclusive-mode
// epoch on the local window slice is held until AccessEnd, so remote
// accesses cannot observe or corrupt a partially updated private copy.
func (r *Runtime) AccessBegin(addr armci.Addr, n int) ([]byte, error) {
	if addr.Rank != r.Rank() {
		return nil, fmt.Errorf("armcimpi: AccessBegin on remote address %v", addr)
	}
	g, gr, _, ok := r.W.find(addr)
	if !ok {
		return nil, fmt.Errorf("armcimpi: AccessBegin: %v is not in any GMR", addr)
	}
	if _, open := r.dla[addr.VA]; open {
		return nil, fmt.Errorf("armcimpi: AccessBegin: %v already open", addr)
	}
	win := g.wins[r.Rank()]
	if r.Opt.UseMPI3 {
		// Lock-all stays open; quiesce this origin's pending operations
		// and rely on coherence for direct access (how later ARMCI-MPI
		// releases implement DLA on MPI-3).
		if err := r.ensureLockAll(win); err != nil {
			return nil, err
		}
		if err := win.FlushAll(); err != nil {
			return nil, err
		}
	} else if err := win.Lock(mpi.LockExclusive, gr); err != nil {
		return nil, err
	}
	r.dla[addr.VA] = dlaSection{g: g, n: n}
	reg := r.W.Mpi.M.Space(r.Rank()).Find(addr.VA, n)
	if reg == nil {
		return nil, fmt.Errorf("armcimpi: AccessBegin: %v(+%d) out of bounds", addr, n)
	}
	return reg.Bytes(addr.VA, n), nil
}

// AccessEnd completes a direct access section, releasing the exclusive
// self-lock (and with it, publishing the private copy).
func (r *Runtime) AccessEnd(addr armci.Addr) error {
	sec, open := r.dla[addr.VA]
	if !open {
		return fmt.Errorf("armcimpi: AccessEnd without AccessBegin at %v", addr)
	}
	delete(r.dla, addr.VA)
	if r.Opt.UseMPI3 {
		return nil // lock-all stays open; coherence publishes the stores
	}
	gr := sec.g.rankOf[r.Rank()]
	return sec.g.wins[r.Rank()].Unlock(gr)
}

// SetAccessMode installs the SectionVIII.A access-mode hint on the
// allocation containing addr. Collective over the GMR's group: all
// processes must agree on the phase change, and in-flight conflicting
// operations must be complete.
func (r *Runtime) SetAccessMode(mode armci.AccessMode, addr armci.Addr) error {
	g, _, _, ok := r.W.find(addr)
	if !ok {
		return fmt.Errorf("armcimpi: SetAccessMode: %v is not in any GMR", addr)
	}
	// Fence is free (SectionV.F); the barrier orders the phase change.
	r.Barrier()
	g.mode = mode
	r.Barrier()
	return nil
}

// Rmw performs an atomic read-modify-write. MPI 2.2 has no atomic
// fetch-and-op and a get+put pair conflicts within one epoch, so the
// operation takes the GMR's mutex and uses two epochs — read and write
// (SectionV.D). With UseMPI3, a single fetch-and-op inside one epoch
// is used instead (SectionVIII.B's extension).
func (r *Runtime) Rmw(op armci.RmwOp, addr armci.Addr, operand int64) (int64, error) {
	if pr := r.obs().Prof(); pr != nil {
		pr.Begin(r.Rank(), profile.OpRmw)
		defer pr.End(r.Rank())
	}
	if addr.Nil() {
		return 0, fmt.Errorf("armcimpi: Rmw on NULL address")
	}
	g, gr, disp, err := r.remote(addr, 8)
	if err != nil {
		return 0, err
	}
	win := g.wins[r.Rank()]
	if r.Opt.UseMPI3 {
		// SectionVIII.B: a single atomic fetch-and-op under lock-all —
		// no lock round trips, no mutex.
		if err := r.ensureLockAll(win); err != nil {
			return 0, err
		}
		var old int64
		switch op {
		case armci.FetchAndAdd:
			old, err = win.FetchAndOp(mpi.OpSum, operand, gr, disp)
		case armci.Swap:
			old, err = win.FetchAndOp(mpi.OpReplace, operand, gr, disp)
		default:
			err = fmt.Errorf("armcimpi: unknown RMW op %v", op)
		}
		if err != nil {
			return 0, err
		}
		return old, nil
	}
	// MPI-2 path: mutex + read epoch + write epoch.
	mux := g.mutex[r.Rank()]
	mux.Lock(0, addr.Rank)
	scratch := r.R.AllocMem(8)
	defer r.W.Mpi.M.Space(r.Rank()).Free(scratch.VA)
	if err := win.Lock(mpi.LockExclusive, gr); err != nil {
		return 0, err
	}
	if err := win.Get(mpi.LocalBuf{Region: scratch, Off: 0, Type: mpi.TypeContiguous(8)}, gr, disp, mpi.TypeContiguous(8)); err != nil {
		return 0, err
	}
	if err := win.Unlock(gr); err != nil {
		return 0, err
	}
	old := int64(binary.LittleEndian.Uint64(scratch.Backing()))
	var nv int64
	switch op {
	case armci.FetchAndAdd:
		nv = old + operand
	case armci.Swap:
		nv = operand
	default:
		return 0, fmt.Errorf("armcimpi: unknown RMW op %v", op)
	}
	binary.LittleEndian.PutUint64(scratch.Backing(), uint64(nv))
	if err := win.Lock(mpi.LockExclusive, gr); err != nil {
		return 0, err
	}
	if err := win.Put(mpi.LocalBuf{Region: scratch, Off: 0, Type: mpi.TypeContiguous(8)}, gr, disp, mpi.TypeContiguous(8)); err != nil {
		return 0, err
	}
	if err := win.Unlock(gr); err != nil {
		return 0, err
	}
	mux.Unlock(0, addr.Rank)
	return old, nil
}

// GroupCreateCollective creates an ARMCI processor group; all world
// processes call (non-members receive nil). Backed directly by an MPI
// communicator (SectionV.A).
func (r *Runtime) GroupCreateCollective(members []int) (*armci.Group, error) {
	ms := sortedUnique(members)
	impl := r.coll.GroupComm(ms, true)
	if impl == nil {
		return nil, nil
	}
	return &armci.Group{Ranks: ms, Impl: impl}, nil
}

// GroupCreate creates a group noncollectively — only members call —
// using the recursive intercommunicator creation and merging algorithm
// of the authors' prior work (SectionV.A).
func (r *Runtime) GroupCreate(members []int) (*armci.Group, error) {
	ms := sortedUnique(members)
	impl := r.coll.GroupComm(ms, false)
	return &armci.Group{Ranks: ms, Impl: impl}, nil
}

func sortedUnique(members []int) []int {
	ms := append([]int(nil), members...)
	for i := 1; i < len(ms); i++ {
		for j := i; j > 0 && ms[j] < ms[j-1]; j-- {
			ms[j], ms[j-1] = ms[j-1], ms[j]
		}
	}
	out := ms[:0]
	for i, v := range ms {
		if i == 0 || v != ms[i-1] {
			out = append(out, v)
		}
	}
	return out
}

// LocalBytes exposes local buffer memory on the calling process. For
// addresses inside a GMR the DLA calls must be used instead.
func (r *Runtime) LocalBytes(addr armci.Addr, n int) ([]byte, error) {
	if addr.Rank != r.Rank() {
		return nil, fmt.Errorf("armcimpi: LocalBytes on remote address %v", addr)
	}
	reg := r.W.Mpi.M.Space(r.Rank()).Find(addr.VA, n)
	if reg == nil {
		return nil, fmt.Errorf("armcimpi: LocalBytes: %v(+%d) not in any allocation", addr, n)
	}
	return reg.Bytes(addr.VA, n), nil
}
