// Package armcimpi is the paper's contribution: a complete
// implementation of the ARMCI runtime system on MPI one-sided
// communication (SectionV). The global memory region (GMR) layer
// translates between ARMCI's <process, address> global address space
// and MPI's <window, displacement> space, manages allocation and
// (leader-elected) free, and arbitrates access so MPI-2's conflicting-
// access rules are never violated: every operation runs inside its own
// exclusive-lock passive-target epoch unless an access-mode hint
// (SectionVIII.A) permits shared locks.
package armcimpi

import (
	"fmt"
	"sort"

	"repro/internal/armci"
	"repro/internal/conflicttree"
	"repro/internal/fabric"
	"repro/internal/mpi"
	"repro/internal/obs"
	"repro/internal/sim"
)

// Method selects a noncontiguous transfer strategy (SectionVI).
type Method int

const (
	// MethodConservative issues one operation per segment, each in its
	// own epoch; segments may span GMRs and overlap.
	MethodConservative Method = iota
	// MethodBatched issues up to BatchSize operations per epoch; all
	// segments must fall in one GMR and must not overlap.
	MethodBatched
	// MethodIOVDirect builds MPI indexed datatypes for source and
	// destination and issues a single operation.
	MethodIOVDirect
	// MethodDirect translates strided descriptors straight into MPI
	// subarray datatypes (strided operations only).
	MethodDirect
	// MethodAuto scans the descriptor with the conflict tree
	// (SectionVI.B) and picks the fast method when safe, falling back
	// to conservative otherwise.
	MethodAuto
)

func (m Method) String() string {
	switch m {
	case MethodConservative:
		return "conservative"
	case MethodBatched:
		return "batched"
	case MethodIOVDirect:
		return "iov-direct"
	case MethodDirect:
		return "direct"
	case MethodAuto:
		return "auto"
	default:
		return fmt.Sprintf("Method(%d)", int(m))
	}
}

// ParseMethod parses the String form of a Method ("conservative",
// "batched", "iov-direct", "direct", "auto").
func ParseMethod(s string) (Method, error) {
	for _, m := range []Method{MethodConservative, MethodBatched, MethodIOVDirect, MethodDirect, MethodAuto} {
		if s == m.String() {
			return m, nil
		}
	}
	return 0, fmt.Errorf("armcimpi: unknown method %q (want conservative, batched, iov-direct, direct, or auto)", s)
}

// Options tunes the ARMCI-MPI runtime.
type Options struct {
	// StridedMethod selects the strategy for PutS/GetS/AccS.
	// MethodDirect is the default (SectionVI.C).
	StridedMethod Method
	// IOVMethod selects the strategy for PutV/GetV/AccV.
	// MethodAuto is the default (SectionVI.B).
	IOVMethod Method
	// AutoFast is the method auto falls forward to when the conflict
	// scan finds no overlap (default MethodBatched).
	AutoFast Method
	// BatchSize bounds operations per epoch in the batched method;
	// 0 means unlimited (the paper's default B=0).
	BatchSize int
	// UseMPI3 switches read-modify-write to MPI-3 fetch-and-op and
	// enables lock-all-based ablations; requires the MPI world to have
	// MPI-3 enabled.
	UseMPI3 bool
	// NoStaging disables the global-buffer staging path (safe only on
	// coherent systems where the MPI implementation allows concurrent
	// access, SectionV.E.1).
	NoStaging bool
	// NoShm disables the intra-node shared-memory fast path: GMR and
	// mutex windows are created with plain MPI_Win_create instead of
	// the Win_allocate_shared flavor, forcing same-node traffic through
	// the RMA path (the ablation baseline). The dartmpi runtime honors
	// it too: its same-node tier collapses onto the RMA path so the
	// ablation switch means the same thing in every runtime.
	NoShm bool
	// NoLeaderStaging disables dartmpi's hierarchical put/get: large
	// remote transfers go straight to the wire instead of staging
	// through the node-leader rank (the locality-ablation toggle).
	// Ignored by the other runtimes.
	NoLeaderStaging bool
	// StageThreshold is the minimum remote transfer size, in bytes,
	// that dartmpi stages through the node leader; 0 selects the
	// default (8 KiB). Ignored by the other runtimes.
	StageThreshold int
}

// DefaultOptions returns the paper's default configuration.
func DefaultOptions() Options {
	return Options{StridedMethod: MethodDirect, IOVMethod: MethodAuto, AutoFast: MethodBatched}
}

// World is the shared state of the ARMCI-MPI job: the GMR translation
// table (SectionV.A).
type World struct {
	Mpi    *mpi.World
	gmrs   []*GMR
	nextID int

	// Translation indexes, maintained by register/unregister: ids maps
	// GMR id -> GMR, and spans holds each world rank's allocations as a
	// VA-sorted interval list, so find resolves <rank, address> in
	// O(log #allocations) instead of scanning every GMR. Intervals on
	// one rank are disjoint because each rank's allocator hands out
	// disjoint VA ranges.
	ids   map[int]*GMR
	spans map[int][]gmrSpan

	// leaderBusy is the staging-pipe horizon of each node's leader
	// rank: RouteStagedRMA plans queue behind it. Lazily sized by
	// execStage on first use, so jobs whose policy never stages pay
	// nothing.
	leaderBusy []sim.Time

	// Counters.
	Staged    int64 // global-buffer staging events (SectionV.E.1)
	AutoScans int64 // conflict-tree scans performed by MethodAuto
	AutoFalls int64 // scans that fell back to conservative
}

// gmrSpan is one rank-local VA interval [lo, hi) of a GMR.
type gmrSpan struct {
	lo, hi int64
	g      *GMR
	gr     int // the GMR's group (window) rank on this world rank
}

// NewWorld creates ARMCI-MPI state on an MPI world.
func NewWorld(mw *mpi.World) *World { return &World{Mpi: mw} }

// GMR is one global memory region: an ARMCI allocation backed by an
// MPI window (SectionV.B).
type GMR struct {
	id     int
	group  []int        // world ranks (ascending)
	rankOf map[int]int  // world rank -> group (window) rank
	addrs  []armci.Addr // base address per group rank (Nil if size 0)
	sizes  []int
	mode   armci.AccessMode

	wins  map[int]*mpi.Win // per-world-rank window handle
	mutex map[int]*Mutexes // per-world-rank handle of the RMW mutex set
}

// find locates the GMR containing the address and returns the window
// rank and byte displacement, by binary search over the rank's sorted
// interval list.
func (w *World) find(addr armci.Addr) (*GMR, int, int, bool) {
	spans := w.spans[addr.Rank]
	i := sort.Search(len(spans), func(i int) bool { return spans[i].hi > addr.VA })
	if i < len(spans) && addr.VA >= spans[i].lo {
		s := &spans[i]
		return s.g, s.gr, int(addr.VA - s.lo), true
	}
	return nil, 0, 0, false
}

// byID returns a registered GMR.
func (w *World) byID(id int) *GMR { return w.ids[id] }

// NumGMRs returns the number of live registered GMRs (test hook for
// leak assertions).
func (w *World) NumGMRs() int { return len(w.gmrs) }

// register enters a GMR into the translation table and both indexes.
func (w *World) register(g *GMR) {
	w.gmrs = append(w.gmrs, g)
	if w.ids == nil {
		w.ids = map[int]*GMR{}
		w.spans = map[int][]gmrSpan{}
	}
	w.ids[g.id] = g
	for gr, world := range g.group {
		if g.sizes[gr] == 0 {
			continue
		}
		lo := g.addrs[gr].VA
		sp := gmrSpan{lo: lo, hi: lo + int64(g.sizes[gr]), g: g, gr: gr}
		list := w.spans[world]
		i := sort.Search(len(list), func(i int) bool { return list[i].lo >= sp.lo })
		list = append(list, gmrSpan{})
		copy(list[i+1:], list[i:])
		list[i] = sp
		w.spans[world] = list
	}
}

// unregister removes a GMR from the table and both indexes.
func (w *World) unregister(g *GMR) {
	for i, e := range w.gmrs {
		if e == g {
			w.gmrs = append(w.gmrs[:i], w.gmrs[i+1:]...)
			break
		}
	}
	delete(w.ids, g.id)
	for gr, world := range g.group {
		if g.sizes[gr] == 0 {
			continue
		}
		list := w.spans[world]
		for i := range list {
			if list[i].g == g && list[i].gr == gr {
				w.spans[world] = append(list[:i], list[i+1:]...)
				break
			}
		}
	}
}

// Runtime is one rank's ARMCI-MPI handle.
type Runtime struct {
	W   *World
	R   *mpi.Rank
	Opt Options

	coll armci.MPIColl
	dla  map[int64]dlaSection // open direct-local-access sections by base VA

	// policy is the routing layer's decision maker (route.go); New
	// installs the engine default, SetRoutePolicy replaces it.
	// pinnedRoute, when non-nil, is consumed by the next decide call:
	// per-segment re-entries of an already routed conservative plan
	// keep the descriptor's decision instead of re-deciding (and
	// re-staging or re-counting).
	policy      RoutePolicy
	pinnedRoute *RouteDecision

	// Outstanding MPI-3 request ops, tracked per window and per target
	// (window rank) so Fence(proc) can flush just that target.
	// pendingOrder keeps deterministic iteration order; each entry
	// remembers its slot so dropPending is O(1) (dropped slots are
	// tombstoned to nil and compacted once they outnumber live ones).
	pending      map[*mpi.Win]*pendingOps
	pendingOrder []*mpi.Win
	pendingDead  int // tombstoned slots in pendingOrder

	// scan is the compiler's scratch conflict tree, Reset and reused
	// across descriptor scans so each scan is allocation-free once the
	// node pool has warmed up.
	scan conflicttree.Tree

	// dtMemo is a small ring of recently translated strided datatypes.
	// Applications overwhelmingly reissue transfers with the same
	// stride/count shape (different addresses), and reusing the Datatype
	// also reuses its flatten cache across operations. Datatypes are
	// immutable, so sharing one across plans is safe.
	dtMemo [4]dtEntry
	dtNext int
}

// dtEntry is one memoized stride/count -> Datatype translation.
type dtEntry struct {
	stride, count []int
	t             mpi.Datatype
}

// dlaSection is one open AccessBegin section.
type dlaSection struct {
	g *GMR
	n int
}

// New creates the per-rank ARMCI-MPI runtime handle.
func New(w *World, r *mpi.Rank, opt Options) *Runtime {
	rt := &Runtime{
		W: w, R: r, Opt: opt,
		coll:    armci.MPIColl{R: r},
		dla:     map[int64]dlaSection{},
		pending: map[*mpi.Win]*pendingOps{},
	}
	rt.policy = enginePolicy{rt}
	return rt
}

// pendingOps tracks one window's unfenced targets and its slot in
// pendingOrder.
type pendingOps struct {
	targets map[int]bool // window ranks with outstanding request ops
	idx     int          // this window's slot in pendingOrder
}

// addPending records an unfenced nonblocking op on win targeting the
// given window rank.
func (r *Runtime) addPending(win *mpi.Win, gr int) {
	ent := r.pending[win]
	if ent == nil {
		if r.pendingDead > len(r.pendingOrder)-r.pendingDead {
			r.compactPending()
		}
		ent = &pendingOps{targets: map[int]bool{}, idx: len(r.pendingOrder)}
		r.pending[win] = ent
		r.pendingOrder = append(r.pendingOrder, win)
	}
	ent.targets[gr] = true
}

// dropPending forgets all outstanding-op tracking for win: O(1), the
// window's pendingOrder slot is tombstoned rather than slice-deleted.
func (r *Runtime) dropPending(win *mpi.Win) {
	ent, ok := r.pending[win]
	if !ok {
		return
	}
	delete(r.pending, win)
	r.pendingOrder[ent.idx] = nil
	r.pendingDead++
}

// compactPending squeezes tombstones out of pendingOrder, preserving
// insertion order and refreshing each entry's slot.
func (r *Runtime) compactPending() {
	live := r.pendingOrder[:0]
	for _, w := range r.pendingOrder {
		if w != nil {
			r.pending[w].idx = len(live)
			live = append(live, w)
		}
	}
	for i := len(live); i < len(r.pendingOrder); i++ {
		r.pendingOrder[i] = nil
	}
	r.pendingOrder = live
	r.pendingDead = 0
}

// winCreate creates a GMR/mutex backing window, using the shared
// flavor (intra-node fast path) unless disabled.
func (r *Runtime) winCreate(comm *mpi.Comm, reg *fabric.Region) (*mpi.Win, error) {
	if r.Opt.NoShm {
		return mpi.WinCreate(comm, reg)
	}
	return mpi.WinCreateShared(comm, reg)
}

var _ armci.Runtime = (*Runtime)(nil)

// Name identifies the implementation.
func (r *Runtime) Name() string { return "armci-mpi" }

// obs returns the job's recorder; its methods are nil-safe no-ops when
// observability is off.
func (r *Runtime) obs() *obs.Recorder { return r.W.Mpi.Obs }

// Rank returns the calling world rank.
func (r *Runtime) Rank() int { return r.R.ID() }

// Nprocs returns the world size.
func (r *Runtime) Nprocs() int { return r.W.Mpi.N }

// Proc returns the simulation context.
func (r *Runtime) Proc() *sim.Proc { return r.R.P }

// Malloc collectively allocates globally accessible memory on the
// world and returns the base-address vector (SectionV.B).
func (r *Runtime) Malloc(bytes int) ([]armci.Addr, error) {
	return r.mallocOn(r.R.CommWorld(), r.R.CommWorld().GroupShared(), bytes)
}

// MallocGroup allocates over an ARMCI group.
func (r *Runtime) MallocGroup(g *armci.Group, bytes int) ([]armci.Addr, error) {
	if g == nil {
		return nil, fmt.Errorf("armcimpi: MallocGroup with nil group")
	}
	return r.mallocOn(armci.GroupCommOf(g), g.Ranks, bytes)
}

func (r *Runtime) mallocOn(comm *mpi.Comm, members []int, bytes int) ([]armci.Addr, error) {
	if bytes < 0 {
		return nil, fmt.Errorf("armcimpi: Malloc(%d): negative size", bytes)
	}
	if comm == nil {
		return nil, fmt.Errorf("armcimpi: Malloc without a communicator")
	}
	t0 := r.R.P.Now()
	var reg *fabric.Region
	var va int64
	if bytes > 0 {
		reg = r.R.AllocMem(bytes)
		va = reg.VA
	}
	// Create the MPI window over the group's communicator and exchange
	// base addresses (the all-to-all of SectionV.B).
	win, err := r.winCreate(comm, reg)
	if err != nil {
		return nil, err
	}
	// The group's first member enters the GMR into the translation
	// table; its id is broadcast so all members attach to one entry.
	// Base addresses travel by allgather on small groups (the
	// all-to-all of SectionV.B) and by gather-at-root on large ones, so
	// the N-entry address table is built once instead of on every
	// lock-stepped rank.
	big := comm.Size() >= mpi.BigCommThreshold
	var id int
	if big {
		parts := comm.Gather(0, mpi.I64sToBytes([]int64{va, int64(bytes)}))
		if comm.Rank() == 0 {
			g := newGMR(r.W, members, true)
			for i, p := range parts {
				v := mpi.BytesToI64s(p)
				g.sizes[i] = int(v[1])
				if g.sizes[i] > 0 {
					g.addrs[i] = armci.Addr{Rank: members[i], VA: v[0]}
				}
			}
			r.W.register(g)
			id = g.id
		}
		id = int(comm.BcastI64(0, []int64{int64(id)})[0])
	} else {
		vas := comm.AllgatherI64([]int64{va, int64(bytes)})
		if comm.Rank() == 0 {
			g := newGMR(r.W, members, false)
			for i, world := range members {
				g.sizes[i] = int(vas[2*i+1])
				if g.sizes[i] > 0 {
					g.addrs[i] = armci.Addr{Rank: world, VA: vas[2*i]}
				}
			}
			r.W.register(g)
			id = g.id
		}
		id = int(comm.BcastI64(0, []int64{int64(id)})[0])
	}
	g := r.W.byID(id)
	g.wins[r.Rank()] = win
	// The per-GMR mutex for read-modify-write (SectionV.D).
	mux, err := newMutexes(r, comm, 1)
	if err != nil {
		return nil, err
	}
	g.mutex[r.Rank()] = mux
	comm.Barrier()
	o := r.obs()
	o.Inc(r.Rank(), obs.CGmrAlloc)
	o.Add(r.Rank(), obs.CGmrBytes, int64(bytes))
	if o.Tracing() {
		o.Span(r.Rank(), "armci", "gmr.alloc", t0, r.R.P.Now(), obs.A("bytes", bytes), obs.A("id", id))
	}
	if big {
		// One shared address vector for the job; callers treat it as
		// read-only (a per-rank copy would be N² entries).
		return g.addrs, nil
	}
	return append([]armci.Addr(nil), g.addrs...), nil
}

// newGMR builds an empty GMR record over members. When shareGroup is
// set the members slice is retained as-is (large groups pass the
// job-wide shared group slice); otherwise it is copied.
func newGMR(w *World, members []int, shareGroup bool) *GMR {
	group := members
	if !shareGroup {
		group = append([]int(nil), members...)
	}
	g := &GMR{
		id:     w.nextID,
		group:  group,
		rankOf: map[int]int{},
		addrs:  make([]armci.Addr, len(members)),
		sizes:  make([]int, len(members)),
		wins:   map[int]*mpi.Win{},
		mutex:  map[int]*Mutexes{},
	}
	w.nextID++
	for i, world := range members {
		g.rankOf[world] = i
	}
	return g
}

// Free collectively releases a world allocation; processes with a
// zero-size slice pass the Nil address and learn the allocation via
// the leader-election protocol of SectionV.B.
func (r *Runtime) Free(addr armci.Addr) error {
	return r.freeOn(r.R.CommWorld(), addr)
}

// FreeGroup releases a group allocation.
func (r *Runtime) FreeGroup(g *armci.Group, addr armci.Addr) error {
	if g == nil {
		return fmt.Errorf("armcimpi: FreeGroup with nil group")
	}
	return r.freeOn(armci.GroupCommOf(g), addr)
}

func (r *Runtime) freeOn(comm *mpi.Comm, addr armci.Addr) error {
	// Leader election: processes with a non-NULL address put forth
	// their rank; the maximum wins and broadcasts its address.
	mine := int64(-1)
	if !addr.Nil() {
		mine = int64(r.Rank())
	}
	red := comm.AllreduceI64(mpi.OpMax, []int64{mine})
	leader := int(red[0])
	if leader < 0 {
		return fmt.Errorf("armcimpi: Free: all processes passed NULL")
	}
	var hdr []int64
	leaderComm := comm.RankOfWorld(leader)
	if r.Rank() == leader {
		hdr = []int64{addr.VA}
	} else {
		hdr = make([]int64, 1)
	}
	hdr = comm.BcastI64(leaderComm, hdr)
	key := armci.Addr{Rank: leader, VA: hdr[0]}
	g, _, _, ok := r.W.find(key)
	if !ok {
		return fmt.Errorf("armcimpi: Free(%v): no GMR for leader address", key)
	}
	// Destroy the RMW mutex and the window, then release local memory.
	if mux := g.mutex[r.Rank()]; mux != nil {
		if err := mux.Destroy(); err != nil {
			return err
		}
	}
	win := g.wins[r.Rank()]
	if err := r.ensureNoLockAll(win); err != nil {
		return err
	}
	r.dropPending(win)
	if err := win.Free(); err != nil {
		return err
	}
	gr := g.rankOf[r.Rank()]
	if g.sizes[gr] > 0 {
		if err := r.W.Mpi.M.Space(r.Rank()).Free(g.addrs[gr].VA); err != nil {
			return err
		}
	}
	comm.Barrier()
	if comm.Rank() == 0 {
		r.W.unregister(g)
	}
	r.obs().Inc(r.Rank(), obs.CGmrFree)
	return nil
}

// MallocLocal allocates local buffer memory via MPI_Alloc_mem, the
// only allocator ARMCI-MPI has (whether it is pre-registered depends
// on the MPI library; see Figure 5).
func (r *Runtime) MallocLocal(bytes int) armci.Addr {
	reg := r.R.AllocMem(bytes)
	return armci.Addr{Rank: r.Rank(), VA: reg.VA}
}

// FreeLocal releases local buffer memory.
func (r *Runtime) FreeLocal(addr armci.Addr) error {
	if addr.Rank != r.Rank() {
		return fmt.Errorf("armcimpi: FreeLocal of remote address %v", addr)
	}
	return r.W.Mpi.M.Space(r.Rank()).Free(addr.VA)
}
