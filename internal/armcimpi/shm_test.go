package armcimpi

import (
	"testing"

	"repro/internal/armci"
	"repro/internal/mpi"
	"repro/internal/sim"
)

// Two cores per node in the test fabric (see run): ranks 0 and 1 share
// a node, rank 2 is one node away.

func TestShmIntraNodePutGetCorrect(t *testing.T) {
	for _, noShm := range []bool{false, true} {
		opt := DefaultOptions()
		opt.NoShm = noShm
		run(t, 2, opt, func(rt *Runtime) {
			addrs, err := rt.Malloc(256)
			must(t, err)
			if rt.Rank() == 0 {
				src := rt.MallocLocal(256)
				mem, err := rt.LocalBytes(src, 256)
				must(t, err)
				for i := range mem {
					mem[i] = byte(i*3 + 1)
				}
				must(t, rt.Put(src, addrs[1], 256))
				dst := rt.MallocLocal(256)
				must(t, rt.Get(addrs[1], dst, 256))
				got, err := rt.LocalBytes(dst, 256)
				must(t, err)
				for i := range got {
					if got[i] != byte(i*3+1) {
						t.Fatalf("noShm=%v: byte %d = %d, want %d", noShm, i, got[i], byte(i*3+1))
					}
				}
			}
			rt.Barrier()
			must(t, rt.Free(addrs[rt.Rank()]))
		})
	}
}

func TestShmIntraNodeFasterThanRMA(t *testing.T) {
	elapsed := func(noShm bool) sim.Time {
		opt := DefaultOptions()
		opt.NoShm = noShm
		var d sim.Time
		run(t, 2, opt, func(rt *Runtime) {
			addrs, err := rt.Malloc(4 << 20)
			must(t, err)
			if rt.Rank() == 0 {
				src := rt.MallocLocal(4 << 20)
				must(t, rt.Put(src, addrs[1], 4<<20)) // warm up
				start := rt.Proc().Now()
				for i := 0; i < 4; i++ {
					must(t, rt.Put(src, addrs[1], 4<<20))
				}
				d = rt.Proc().Now() - start
			}
			rt.Barrier()
			must(t, rt.Free(addrs[rt.Rank()]))
		})
		return d
	}
	shm, rma := elapsed(false), elapsed(true)
	if shm >= rma {
		t.Errorf("intra-node put over shm (%v) not faster than RMA windows (%v)", shm, rma)
	}
}

func TestShmCrossNodeUnaffected(t *testing.T) {
	// Ranks 0 and 2 are on different nodes: the shared window flavor
	// must leave cross-node operation timing exactly as before.
	elapsed := func(noShm bool) sim.Time {
		opt := DefaultOptions()
		opt.NoShm = noShm
		var d sim.Time
		run(t, 3, opt, func(rt *Runtime) {
			addrs, err := rt.Malloc(1 << 20)
			must(t, err)
			if rt.Rank() == 0 {
				src := rt.MallocLocal(1 << 20)
				start := rt.Proc().Now()
				must(t, rt.Put(src, addrs[2], 1<<20))
				must(t, rt.Get(addrs[2], src, 1<<20))
				d = rt.Proc().Now() - start
			}
			rt.Barrier()
			must(t, rt.Free(addrs[rt.Rank()]))
		})
		return d
	}
	if shm, rma := elapsed(false), elapsed(true); shm != rma {
		t.Errorf("cross-node timing differs with shm on (%v) vs off (%v)", shm, rma)
	}
}

func TestShmRmwAndMutexIntraNode(t *testing.T) {
	// RMW through the shared segment: both the MPI-3 fetch-and-op fast
	// path and the MPI-2 mutex emulation must stay atomic when origin
	// and target share a node.
	for _, mpi3 := range []bool{false, true} {
		opt := DefaultOptions()
		opt.UseMPI3 = mpi3
		run(t, 2, opt, func(rt *Runtime) {
			addrs, err := rt.Malloc(8)
			must(t, err)
			for i := 0; i < 5; i++ {
				if _, err := rt.Rmw(armci.FetchAndAdd, addrs[0], 1); err != nil {
					t.Fatal(err)
				}
			}
			rt.Barrier()
			if rt.Rank() == 0 {
				old, err := rt.Rmw(armci.FetchAndAdd, addrs[0], 0)
				must(t, err)
				if old != 10 {
					t.Errorf("mpi3=%v: counter = %d, want 10", mpi3, old)
				}
			}
			rt.Barrier()
			must(t, rt.Free(addrs[rt.Rank()]))
		})
	}
}

func TestFencePerTargetCompletesOnlyThatTarget(t *testing.T) {
	// Fence(p) must flush outstanding operations to p only: fencing a
	// target with a small put pending must not wait out the multi-MB
	// transfer still in flight to a different target.
	opt := DefaultOptions()
	opt.UseMPI3 = true
	var fenceSmall, fenceBig sim.Time
	run(t, 6, opt, func(rt *Runtime) {
		addrs, err := rt.Malloc(4 << 20)
		must(t, err)
		if rt.Rank() == 0 {
			src := rt.MallocLocal(4 << 20)
			// Small put first: issued later it would queue behind the
			// 4 MB injection on the origin NIC.
			_, err := rt.NbPut(src, addrs[4], 64) // small, one node
			must(t, err)
			_, err = rt.NbPut(src, addrs[2], 4<<20) // big, another node
			must(t, err)
			start := rt.Proc().Now()
			rt.Fence(4)
			fenceSmall = rt.Proc().Now() - start
			start = rt.Proc().Now()
			rt.Fence(2)
			fenceBig = rt.Proc().Now() - start
		}
		rt.Barrier()
		must(t, rt.Free(addrs[rt.Rank()]))
	})
	if fenceSmall*4 >= fenceBig {
		t.Errorf("Fence(small target) took %v vs Fence(big target) %v; per-target fence should not complete the other target's transfer", fenceSmall, fenceBig)
	}
}

func TestFenceAfterAllTargetsFencedIsFree(t *testing.T) {
	opt := DefaultOptions()
	opt.UseMPI3 = true
	run(t, 4, opt, func(rt *Runtime) {
		addrs, err := rt.Malloc(1024)
		must(t, err)
		if rt.Rank() == 0 {
			src := rt.MallocLocal(1024)
			_, err := rt.NbPut(src, addrs[2], 1024)
			must(t, err)
			rt.Fence(2)
			before := rt.Proc().Now()
			rt.Fence(2) // nothing pending to 2 anymore
			rt.AllFence()
			if rt.Proc().Now() != before {
				t.Error("Fence with no pending operations advanced time")
			}
		}
		rt.Barrier()
		must(t, rt.Free(addrs[rt.Rank()]))
	})
}

func TestWaitOnFailedNonblockingOpPanics(t *testing.T) {
	run(t, 2, DefaultOptions(), func(rt *Runtime) {
		if rt.Rank() == 0 {
			src := rt.MallocLocal(64)
			bogus := armci.Addr{Rank: 1, VA: 0x7fffffff} // not in any GMR
			h, err := rt.NbPut(src, bogus, 64)
			if err == nil {
				t.Fatal("NbPut to a bogus address succeeded")
			}
			if h == nil {
				t.Fatal("NbPut returned a nil handle; Wait must surface the failure")
			}
			defer func() {
				if recover() == nil {
					t.Error("Wait on a failed nonblocking op did not panic")
				}
			}()
			h.Wait()
		}
	})
}

func TestIOVGetAliasedLocalDestinationsFallBack(t *testing.T) {
	// Two get segments landing in the same local bytes: the auto scan
	// must detect the destination alias and take the conservative path,
	// whose per-segment epochs apply in program order (second wins).
	opt := DefaultOptions()
	opt.IOVMethod = MethodAuto
	w := run(t, 3, opt, func(rt *Runtime) {
		addrs, err := rt.Malloc(256)
		must(t, err)
		if rt.Rank() == 0 {
			src := rt.MallocLocal(256)
			mem, err := rt.LocalBytes(src, 256)
			must(t, err)
			for i := range mem {
				mem[i] = byte(i)
			}
			must(t, rt.Put(src, addrs[2], 256))
			dst := rt.MallocLocal(64)
			iov := []armci.GIOV{{
				Src:   []armci.Addr{addrs[2], addrs[2].Add(128)},
				Dst:   []armci.Addr{dst, dst}, // aliased destination
				Bytes: 64,
			}}
			must(t, rt.GetV(iov, 2))
			got, err := rt.LocalBytes(dst, 64)
			must(t, err)
			for i := range got {
				if got[i] != byte(i+128) {
					t.Fatalf("byte %d = %d, want %d (second segment must win)", i, got[i], byte(i+128))
				}
			}
		}
		rt.Barrier()
		must(t, rt.Free(addrs[rt.Rank()]))
	})
	if w.AutoFalls == 0 {
		t.Error("auto scan did not fall back on aliased get destinations")
	}
}

func TestIOVGetOverlappingSourcesStayFast(t *testing.T) {
	// Overlapping get sources are read-read: no destination conflict,
	// so the auto scan must keep the fast method.
	opt := DefaultOptions()
	opt.IOVMethod = MethodAuto
	w := run(t, 3, opt, func(rt *Runtime) {
		addrs, err := rt.Malloc(256)
		must(t, err)
		if rt.Rank() == 0 {
			src := rt.MallocLocal(256)
			mem, err := rt.LocalBytes(src, 256)
			must(t, err)
			for i := range mem {
				mem[i] = byte(i ^ 0x5a)
			}
			must(t, rt.Put(src, addrs[2], 256))
			dst := rt.MallocLocal(128)
			iov := []armci.GIOV{{
				Src:   []armci.Addr{addrs[2], addrs[2]}, // same remote range
				Dst:   []armci.Addr{dst, dst.Add(64)},
				Bytes: 64,
			}}
			must(t, rt.GetV(iov, 2))
			got, err := rt.LocalBytes(dst, 128)
			must(t, err)
			for i := 0; i < 64; i++ {
				if got[i] != byte(i^0x5a) || got[i+64] != byte(i^0x5a) {
					t.Fatalf("byte %d: got %d/%d, want %d", i, got[i], got[i+64], byte(i^0x5a))
				}
			}
		}
		rt.Barrier()
		must(t, rt.Free(addrs[rt.Rank()]))
	})
	if w.AutoScans == 0 {
		t.Fatal("auto scan did not run")
	}
	if w.AutoFalls != 0 {
		t.Error("auto scan fell back on overlapping get sources (read-read is safe)")
	}
}

func TestIOVBatchedAliasedGetDestinationsSerialize(t *testing.T) {
	// The batched method, selected directly (no auto scan), must also
	// refuse to batch gets with aliased destinations.
	opt := DefaultOptions()
	opt.IOVMethod = MethodBatched
	run(t, 3, opt, func(rt *Runtime) {
		addrs, err := rt.Malloc(256)
		must(t, err)
		if rt.Rank() == 0 {
			src := rt.MallocLocal(256)
			mem, err := rt.LocalBytes(src, 256)
			must(t, err)
			for i := range mem {
				mem[i] = byte(255 - i)
			}
			must(t, rt.Put(src, addrs[2], 256))
			dst := rt.MallocLocal(64)
			iov := []armci.GIOV{{
				Src:   []armci.Addr{addrs[2], addrs[2].Add(128)},
				Dst:   []armci.Addr{dst, dst},
				Bytes: 64,
			}}
			must(t, rt.GetV(iov, 2))
			got, err := rt.LocalBytes(dst, 64)
			must(t, err)
			for i := range got {
				if got[i] != byte(255-(i+128)) {
					t.Fatalf("byte %d = %d, want %d (second segment must win)", i, got[i], byte(255-(i+128)))
				}
			}
		}
		rt.Barrier()
		must(t, rt.Free(addrs[rt.Rank()]))
	})
}

func TestAccSourceInsideOpenDLASection(t *testing.T) {
	// SectionV.E: an accumulate whose source lies inside an open
	// AccessBegin section of the same GMR. The DLA section already holds
	// the exclusive self-lock, so the staging copy must not take it
	// again (re-locking deadlocks behind the open section).
	run(t, 2, DefaultOptions(), func(rt *Runtime) {
		g1, err := rt.Malloc(128)
		must(t, err)
		g2, err := rt.Malloc(128)
		must(t, err)
		if rt.Rank() == 0 {
			mem, err := rt.AccessBegin(g1[0], 128)
			must(t, err)
			vals := mpi.BytesToF64s(mem)
			for i := range vals {
				vals[i] = float64(i + 1)
			}
			copy(mem, mpi.F64sToBytes(vals))
			// Source overlaps the open section; scale forces the
			// prescale staging path too.
			must(t, rt.Acc(armci.AccDbl, 3, g1[0], g2[1], 128))
			must(t, rt.AccessEnd(g1[0]))
		}
		rt.Barrier()
		if rt.Rank() == 1 {
			mem, err := rt.AccessBegin(g2[1], 128)
			must(t, err)
			vals := mpi.BytesToF64s(mem)
			for i, v := range vals {
				if want := 3 * float64(i+1); v != want {
					t.Fatalf("element %d = %v, want %v", i, v, want)
				}
			}
			must(t, rt.AccessEnd(g2[1]))
		}
		rt.Barrier()
		must(t, rt.Free(g1[rt.Rank()]))
		must(t, rt.Free(g2[rt.Rank()]))
	})
}

func TestGetIntoOpenDLASection(t *testing.T) {
	// A get landing inside an open DLA section: the staged write-back
	// must reuse the section's lock instead of re-acquiring it, and the
	// data must be visible through the section's mapping immediately.
	run(t, 2, DefaultOptions(), func(rt *Runtime) {
		g1, err := rt.Malloc(128)
		must(t, err)
		g2, err := rt.Malloc(128)
		must(t, err)
		if rt.Rank() == 1 {
			mem, err := rt.AccessBegin(g2[1], 128)
			must(t, err)
			for i := range mem {
				mem[i] = byte(i * 5)
			}
			must(t, rt.AccessEnd(g2[1]))
		}
		rt.Barrier()
		if rt.Rank() == 0 {
			mem, err := rt.AccessBegin(g1[0], 128)
			must(t, err)
			must(t, rt.Get(g2[1], g1[0], 128))
			for i := range mem {
				if mem[i] != byte(i*5) {
					t.Fatalf("byte %d = %d, want %d after get into DLA section", i, mem[i], byte(i*5))
				}
			}
			must(t, rt.AccessEnd(g1[0]))
		}
		rt.Barrier()
		must(t, rt.Free(g1[rt.Rank()]))
		must(t, rt.Free(g2[rt.Rank()]))
	})
}
