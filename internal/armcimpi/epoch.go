package armcimpi

import (
	"repro/internal/mpi"
)

// epochCtl abstracts the two access-epoch disciplines:
//
//   - MPI-2 (the paper's shipping design): every operation inside its
//     own shared/exclusive lock epoch — Lock, op, Unlock.
//   - MPI-3 (SectionVIII.B, the design the paper's gaps motivated and
//     later ARMCI-MPI releases adopted): windows held in lock-all mode,
//     request-based operations, per-target flush for remote completion;
//     conflicting accesses are undefined rather than erroneous, and on
//     coherent systems no staging or exclusive locking is needed.
type epochCtl struct {
	r     *Runtime
	g     *GMR
	gr    int
	win   *mpi.Win
	class OpClass
	mpi3  bool
}

// beginEpoch opens the access discipline for one target.
func (r *Runtime) beginEpoch(g *GMR, gr int, class OpClass) (*epochCtl, error) {
	win := g.wins[r.Rank()]
	e := &epochCtl{r: r, g: g, gr: gr, win: win, class: class, mpi3: r.Opt.UseMPI3}
	if e.mpi3 {
		return e, r.ensureLockAll(win)
	}
	return e, win.Lock(lockType(g, class), gr)
}

// ensureLockAll opens (once per window handle) the MPI-3 lock-all mode.
func (r *Runtime) ensureLockAll(win *mpi.Win) error {
	if win.LockedAll() {
		return nil
	}
	return win.LockAll()
}

// put issues one put within the epoch.
func (e *epochCtl) put(buf mpi.LocalBuf, disp int, t mpi.Datatype) error {
	if e.mpi3 {
		req, err := e.win.RPut(buf, e.gr, disp, t)
		if err != nil {
			return err
		}
		req.Wait()
		return nil
	}
	return e.win.Put(buf, e.gr, disp, t)
}

// get issues one get within the epoch.
func (e *epochCtl) get(buf mpi.LocalBuf, disp int, t mpi.Datatype) error {
	if e.mpi3 {
		req, err := e.win.RGet(buf, e.gr, disp, t)
		if err != nil {
			return err
		}
		req.Wait()
		return nil
	}
	return e.win.Get(buf, e.gr, disp, t)
}

// acc issues one accumulate within the epoch.
func (e *epochCtl) acc(buf mpi.LocalBuf, disp int, t mpi.Datatype) error {
	if e.mpi3 {
		req, err := e.win.RAccumulate(buf, mpi.OpSum, e.gr, disp, t)
		if err != nil {
			return err
		}
		req.Wait()
		return nil
	}
	return e.win.Accumulate(buf, mpi.OpSum, e.gr, disp, t)
}

// end closes the epoch: Unlock (MPI-2, local+remote completion) or a
// per-target flush (MPI-3; gets already completed at Wait).
func (e *epochCtl) end() error {
	if e.mpi3 {
		if e.class == ClassGet {
			return nil
		}
		return e.win.Flush(e.gr)
	}
	return e.win.Unlock(e.gr)
}

// ensureNoLockAll closes lock-all before operations that need the
// window quiesced (window free).
func (r *Runtime) ensureNoLockAll(win *mpi.Win) error {
	if win.LockedAll() {
		return win.UnlockAll()
	}
	return nil
}
