package armcimpi

import (
	"fmt"

	"repro/internal/armci"
	"repro/internal/fabric"
	"repro/internal/mpi"
	"repro/internal/obs"
	"repro/internal/obs/profile"
	"repro/internal/sim"
)

// The plan executor: the one place that carries out compiled transfer
// plans. It owns staging and deadlock avoidance (via acquireLocal /
// release), prescale temporaries, epoch and flush management per
// backend (via epochCtl), batching, and completion tracking, for both
// blocking execution (execute) and the MPI-3 request-based nonblocking
// path (execNb3).

// execState tracks the resources one blocking plan execution holds so
// they are torn down exactly once — on success through finish, and on
// a mid-sequence failure through abort.
type execState struct {
	r     *Runtime
	e     *epochCtl
	views []localView
	wb    []bool
	temps []*fabric.Region
}

func (st *execState) addView(v localView, writeBack bool) {
	st.views = append(st.views, v)
	st.wb = append(st.wb, writeBack)
}

func (st *execState) addTemp(t *fabric.Region) { st.temps = append(st.temps, t) }

// issue dispatches one operation into the open epoch.
func (st *execState) issue(class OpClass, buf mpi.LocalBuf, disp int, rtype mpi.Datatype) error {
	switch class {
	case ClassPut:
		return st.e.put(buf, disp, rtype)
	case ClassGet:
		return st.e.get(buf, disp, rtype)
	default:
		return st.e.acc(buf, disp, rtype)
	}
}

// finish releases everything on the success path: prescale temporaries
// first, then local views (staged gets copy their data back under a
// self-lock).
func (st *execState) finish() error {
	sp := st.r.W.Mpi.M.Space(st.r.Rank())
	for _, t := range st.temps {
		if err := sp.Free(t.VA); err != nil {
			return err
		}
	}
	st.temps = nil
	for i := range st.views {
		if err := st.r.release(&st.views[i], st.wb[i]); err != nil {
			return err
		}
	}
	st.views, st.wb = nil, nil
	return nil
}

// abort cleans up after a mid-sequence failure: close any open epoch
// so the target window is not left locked, free temporaries, and drop
// held views without write-back (their contents are not trustworthy).
func (st *execState) abort() {
	if st.e != nil {
		_ = st.e.end()
		st.e = nil
	}
	sp := st.r.W.Mpi.M.Space(st.r.Rank())
	for _, t := range st.temps {
		_ = sp.Free(t.VA)
	}
	st.temps = nil
	for i := range st.views {
		_ = st.r.release(&st.views[i], false)
	}
	st.views, st.wb = nil, nil
}

// execute carries out a compiled plan with blocking semantics: the
// operation is locally (and, epoch discipline permitting, remotely)
// complete on return. Leader-staged plans model the hierarchical hop
// first — the staging copy happens before the wire transfer is issued.
func (r *Runtime) execute(p *plan) error {
	if p.dec.Route == RouteStagedRMA {
		r.execStage(p.stageBytes)
	}
	r.obs().Inc(r.Rank(), obs.CPlanExec)
	switch p.kind {
	case planBatched:
		return r.execBatched(p)
	case planPerSeg:
		return r.execPerSeg(p)
	case planNear:
		return r.execNear(p)
	default:
		return r.execSingle(p)
	}
}

// execStage models the hierarchical path for one leader-staged remote
// transfer: a non-leader origin copies the payload into its node
// leader's staging buffer (one shared-memory copy) and queues behind
// the per-node staging pipe before the wire transfer. Eligibility
// (threshold, leader and same-node bypass, ablation switches) was
// decided by the policy; the executor only models the cost and
// reports the event back through the policy's Staged hook.
func (r *Runtime) execStage(n int) {
	m := r.W.Mpi.M
	me := r.Rank()
	node := m.NodeOf(me)
	if r.W.leaderBusy == nil {
		cpn := m.Par.CoresPerNode
		r.W.leaderBusy = make([]sim.Time, (m.NRanks+cpn-1)/cpn)
	}
	p := r.R.P
	pr := r.obs().Prof()
	t0 := p.Now()
	if b := r.W.leaderBusy[node]; b > t0 {
		m.SleepUntil(p, b)
		pr.PhaseAt(me, profile.PhaseLeaderQueue, t0, p.Now())
	}
	c0 := p.Now()
	m.ShmCopy(p, n)
	pr.PhaseAt(me, profile.PhaseLeaderCopy, c0, p.Now())
	r.W.leaderBusy[node] = p.Now()
	r.policy.Staged(n)
	o := r.obs()
	o.Inc(me, obs.CDartStaged)
	o.Add(me, obs.CDartStagedBytes, int64(n))
}

// execNear carries out a directly bound near-tier plan: RouteSelf
// put/get is one local memcpy; RouteSelf accumulate and every
// RouteNode operation run one exclusive-lock epoch on the decision's
// node-shared window (self accumulates keep the epoch so same-node
// updates stay atomic with respect to each other).
func (r *Runtime) execNear(p *plan) error {
	if p.dec.Route == RouteSelf && p.class != ClassAcc {
		return r.execSelfCopy(p)
	}
	return r.execNodeEpoch(p)
}

// nearRegion resolves an address on the calling rank to its region
// (near plans bypass acquireLocal: the policy proved containment on
// the remote side, and near tiers never stage the local side).
func (r *Runtime) nearRegion(addr armci.Addr, n int) (*fabric.Region, error) {
	reg := r.W.Mpi.M.Space(r.Rank()).Find(addr.VA, n)
	if reg == nil {
		return nil, fmt.Errorf("armcimpi: local address %v (+%d) not in any allocation", addr, n)
	}
	return reg, nil
}

// execSelfCopy is the load-store tier: both sides live on the calling
// rank, so the transfer is one local memcpy.
func (r *Runtime) execSelfCopy(p *plan) error {
	src, dst := p.local, p.raddr
	if p.class == ClassGet {
		src, dst = p.raddr, p.local
	}
	sreg, err := r.nearRegion(src, p.span)
	if err != nil {
		return err
	}
	dreg, err := r.nearRegion(dst, p.span)
	if err != nil {
		return err
	}
	r.W.Mpi.M.CopyLocal(r.R.P, p.span)
	copy(dreg.Bytes(dst.VA, p.span), sreg.Bytes(src.VA, p.span))
	return nil
}

// execNodeEpoch is the same-node tier: one exclusive-lock epoch on the
// decision's node-shared window, whose ops degenerate to shm segment
// copies. Scaled accumulates share the engine's prescale-temporary
// path; the temporary is freed after the epoch closes.
func (r *Runtime) execNodeEpoch(p *plan) error {
	reg, err := r.nearRegion(p.local, p.span)
	if err != nil {
		return err
	}
	t := mpi.TypeContiguous(p.span)
	buf := mpi.LocalBuf{Region: reg, Off: int(p.local.VA - reg.VA), Type: t}
	var tmp *fabric.Region
	if p.class == ClassAcc && p.scale != 1 {
		v := localView{reg: reg, base: reg.VA}
		if tmp, err = r.prescale(&v, p.local.VA, t, p.scale); err != nil {
			return err
		}
		buf = mpi.LocalBuf{Region: tmp, Off: 0, Type: t}
		defer func() { _ = r.W.Mpi.M.Space(r.Rank()).Free(tmp.VA) }()
	}
	win, gt, disp := p.dec.Node.Win, p.dec.Node.Rank, p.dec.Node.Disp
	if err := win.Lock(mpi.LockExclusive, gt); err != nil {
		return err
	}
	var opErr error
	switch p.class {
	case ClassPut:
		opErr = win.Put(buf, gt, disp, t)
	case ClassGet:
		opErr = win.Get(buf, gt, disp, t)
	default:
		opErr = win.Accumulate(buf, mpi.OpSum, gt, disp, t)
	}
	if err := win.Unlock(gt); err != nil && opErr == nil {
		opErr = err
	}
	return opErr
}

// execSingle issues one datatype-described operation in one epoch.
func (r *Runtime) execSingle(p *plan) (err error) {
	st := &execState{r: r}
	defer func() {
		if err != nil {
			st.abort()
		}
	}()
	v, err := r.acquireLocal(p.local, p.span)
	if err != nil {
		return err
	}
	st.addView(v, p.class == ClassGet)
	buf := v.buf(p.local.VA, p.ltype)
	if p.class == ClassAcc && p.scale != 1 {
		var scaled *fabric.Region
		if scaled, err = r.prescale(&v, p.local.VA, p.ltype, p.scale); err != nil {
			return err
		}
		st.addTemp(scaled)
		buf = mpi.LocalBuf{Region: scaled, Off: 0, Type: mpi.TypeContiguous(p.ltype.Size())}
	}
	e, err := r.beginEpoch(p.g, p.gr, p.class)
	if err != nil {
		return err
	}
	st.e = e
	if err = st.issue(p.class, buf, p.disp, p.rtype); err != nil {
		return err
	}
	if err = st.e.end(); err != nil {
		return err
	}
	st.e = nil
	r.obs().Add(r.Rank(), obs.CPlanSegs, 1)
	return st.finish()
}

// execBatched issues up to p.batch contiguous operations per epoch
// against one GMR. Batched local buffers are never staged (the
// compiler routed global-buffer sources to the conservative plan), so
// holding all views until finish is free — but the discipline keeps
// the release invariant uniform across plan kinds.
func (r *Runtime) execBatched(p *plan) (err error) {
	st := &execState{r: r}
	defer func() {
		if err != nil {
			st.abort()
		}
	}()
	b := p.batch
	if b <= 0 {
		b = len(p.segs)
	}
	for start := 0; start < len(p.segs); start += b {
		end := start + b
		if end > len(p.segs) {
			end = len(p.segs)
		}
		var e *epochCtl
		if e, err = r.beginEpoch(p.g, p.gr, p.class); err != nil {
			return err
		}
		st.e = e
		for _, sg := range p.segs[start:end] {
			var v localView
			if v, err = r.acquireLocal(sg.local, sg.n); err != nil {
				return err
			}
			st.addView(v, p.class == ClassGet)
			buf := v.buf(sg.local.VA, mpi.TypeContiguous(sg.n))
			if p.class == ClassAcc && p.scale != 1 {
				var scaled *fabric.Region
				if scaled, err = r.prescale(&v, sg.local.VA, mpi.TypeContiguous(sg.n), p.scale); err != nil {
					return err
				}
				st.addTemp(scaled)
				buf = mpi.LocalBuf{Region: scaled, Off: 0, Type: mpi.TypeContiguous(sg.n)}
			}
			if err = st.issue(p.class, buf, sg.disp, mpi.TypeContiguous(sg.n)); err != nil {
				return err
			}
		}
		if err = st.e.end(); err != nil {
			return err
		}
		st.e = nil
	}
	r.obs().Add(r.Rank(), obs.CPlanSegs, int64(len(p.segs)))
	return st.finish()
}

// execPerSeg re-enters the engine once per segment through the public
// contiguous operations, giving each segment its own epoch (and its
// own per-segment span check). Near-tier descriptors (dec.PerSeg) are
// re-routed — and counted — segment by segment, so segments falling
// outside the policy's near window still reach the wire; conservative
// wire descriptors instead pin their already counted RMA decision so
// re-entry neither re-counts nor re-stages.
func (r *Runtime) execPerSeg(p *plan) error {
	pin := !p.dec.PerSeg
	if pin {
		defer func() { r.pinnedRoute = nil }()
	}
	for _, sg := range p.csegs {
		if pin {
			r.pinnedRoute = &RouteDecision{Route: RouteRMA, Method: p.dec.Method}
		}
		var err error
		switch p.class {
		case ClassPut:
			err = r.Put(sg.local, sg.remote, sg.n)
		case ClassGet:
			err = r.Get(sg.remote, sg.local, sg.n)
		case ClassAcc:
			err = r.Acc(armci.AccDbl, p.scale, sg.local, sg.remote, sg.n)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// nbHandle tracks a set of MPI-3 request-based operations plus the
// local resources (views, prescale temporaries) they hold. Wait and
// Test are idempotent: the first completion settles the handle and
// later calls return immediately.
type nbHandle struct {
	r     *Runtime
	reqs  []*mpi.RMAReq
	views []localView
	wb    []bool
	temps []*fabric.Region
	done  bool
}

func (h *nbHandle) Wait() {
	if h.done {
		return
	}
	mpi.WaitAllRMA(h.reqs)
	h.settle()
}

func (h *nbHandle) Test() bool {
	if h.done {
		return true
	}
	if !mpi.TestAllRMA(h.reqs) {
		return false
	}
	h.settle()
	return true
}

// settle releases the handle's resources exactly once, after every
// request has completed locally. Wait has no error return, so cleanup
// failures (a corrupted allocator) are programming errors and panic.
func (h *nbHandle) settle() {
	h.done = true
	h.r.obs().Add(h.r.Rank(), obs.CNbDone, int64(len(h.reqs)))
	sp := h.r.W.Mpi.M.Space(h.r.Rank())
	for _, t := range h.temps {
		if err := sp.Free(t.VA); err != nil {
			panic(fmt.Sprintf("armcimpi: nonblocking cleanup failed: %v", err))
		}
	}
	for i := range h.views {
		if err := h.r.release(&h.views[i], h.wb[i]); err != nil {
			panic(fmt.Sprintf("armcimpi: nonblocking cleanup failed: %v", err))
		}
	}
	h.reqs, h.views, h.wb, h.temps = nil, nil, nil, nil
}

// execNb3 issues a compiled plan as MPI-3 request-based operations and
// returns a handle tracking completion of the whole set. Under MPI-3
// local buffers are never staged and lock-all replaces per-op epochs,
// so every wire plan kind flattens to a stream of R-operations.
// Near-tier plans have no request form — they complete eagerly via the
// blocking executor and return an already-completed handle — and
// leader-staged plans model the staging hop before any request issues.
func (r *Runtime) execNb3(p *plan) (armci.Handle, error) {
	if p.kind == planNear || p.dec.PerSeg {
		if err := r.execute(p); err != nil {
			return nil, err
		}
		return completedHandle{}, nil
	}
	if p.dec.Route == RouteStagedRMA {
		r.execStage(p.stageBytes)
	}
	h := &nbHandle{r: r}
	if err := r.issueNb3(p, h); err != nil {
		// Requests already in flight cannot be recalled: complete them
		// and release everything the handle holds before reporting.
		h.Wait()
		return nil, err
	}
	r.obs().Add(r.Rank(), obs.CNbIssued, int64(len(h.reqs)))
	return h, nil
}

func (r *Runtime) issueNb3(p *plan, h *nbHandle) error {
	switch p.kind {
	case planSingle:
		return r.issueOneNb3(h, p, p.local, p.span, p.ltype, p.disp, p.rtype)
	case planBatched:
		for _, sg := range p.segs {
			t := mpi.TypeContiguous(sg.n)
			if err := r.issueOneNb3(h, p, sg.local, sg.n, t, sg.disp, t); err != nil {
				return err
			}
		}
		return nil
	case planPerSeg:
		// Only conservative wire descriptors reach here (near per-seg
		// plans took the eager path in execNb3): each segment inherits
		// the descriptor's already counted RMA decision.
		for _, sg := range p.csegs {
			rt := routed{dec: RouteDecision{Route: RouteRMA, Method: p.dec.Method}, bytes: sg.n}
			sub, err := r.compileContig(p.class, p.scale, sg.local, sg.remote, sg.n, rt)
			if err != nil {
				return err
			}
			if err := r.issueNb3(sub, h); err != nil {
				return err
			}
		}
		return nil
	}
	return fmt.Errorf("armcimpi: unknown plan kind %d", p.kind)
}

// issueOneNb3 issues a single request-based operation for one local
// view against the plan's GMR, recording the resources on the handle.
func (r *Runtime) issueOneNb3(h *nbHandle, p *plan, local armci.Addr, span int, ltype mpi.Datatype, disp int, rtype mpi.Datatype) error {
	v, err := r.acquireLocal(local, span)
	if err != nil {
		return err
	}
	h.views = append(h.views, v)
	h.wb = append(h.wb, p.class == ClassGet)
	buf := v.buf(local.VA, ltype)
	if p.class == ClassAcc && p.scale != 1 {
		scaled, err := r.prescale(&v, local.VA, ltype, p.scale)
		if err != nil {
			return err
		}
		h.temps = append(h.temps, scaled)
		buf = mpi.LocalBuf{Region: scaled, Off: 0, Type: mpi.TypeContiguous(ltype.Size())}
	}
	win := p.g.wins[r.Rank()]
	if err := r.ensureLockAll(win); err != nil {
		return err
	}
	var req *mpi.RMAReq
	switch p.class {
	case ClassPut:
		req, err = win.RPut(buf, p.gr, disp, rtype)
	case ClassGet:
		req, err = win.RGet(buf, p.gr, disp, rtype)
	default:
		req, err = win.RAccumulate(buf, mpi.OpSum, p.gr, disp, rtype)
	}
	if err != nil {
		return err
	}
	if p.class != ClassGet {
		// Puts and accumulates complete remotely at Fence/AllFence.
		r.addPending(win, p.gr)
	}
	h.reqs = append(h.reqs, req)
	return nil
}
