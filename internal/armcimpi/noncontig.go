package armcimpi

import (
	"fmt"

	"repro/internal/armci"
	"repro/internal/fabric"
	"repro/internal/mpi"
	"repro/internal/obs"
	"repro/internal/obs/profile"
)

// Profiler op classification per surface shape, indexed by OpClass.
var (
	profStridedOp   = [3]profile.Op{ClassGet: profile.OpGetS, ClassPut: profile.OpPutS, ClassAcc: profile.OpAccS}
	profIOVOp       = [3]profile.Op{ClassGet: profile.OpGetV, ClassPut: profile.OpPutV, ClassAcc: profile.OpAccV}
	profNbStridedOp = [3]profile.Op{ClassGet: profile.OpNbGetS, ClassPut: profile.OpNbPutS, ClassAcc: profile.OpNbAccS}
	profNbIOVOp     = [3]profile.Op{ClassGet: profile.OpNbGetV, ClassPut: profile.OpNbPutV, ClassAcc: profile.OpNbAccV}
)

// stridedMethod resolves the configured strided strategy.
func (r *Runtime) stridedMethod() Method {
	switch r.Opt.StridedMethod {
	case MethodDirect, MethodIOVDirect, MethodBatched, MethodConservative:
		return r.Opt.StridedMethod
	case MethodAuto:
		return MethodDirect // strided descriptors cannot self-overlap
	default:
		return MethodDirect
	}
}

// PutS performs a strided put using the configured method.
func (r *Runtime) PutS(s *armci.Strided) error { return r.strided(ClassPut, 1, s) }

// GetS performs a strided get using the configured method.
func (r *Runtime) GetS(s *armci.Strided) error { return r.strided(ClassGet, 1, s) }

// AccS performs a strided accumulate (dst += scale*src).
func (r *Runtime) AccS(op armci.AccOp, scale float64, s *armci.Strided) error {
	if s.SegBytes()%8 != 0 {
		return fmt.Errorf("armcimpi: AccS segment size %d not float64-aligned", s.SegBytes())
	}
	return r.strided(ClassAcc, scale, s)
}

func (r *Runtime) strided(class OpClass, scale float64, s *armci.Strided) error {
	if err := s.Validate(); err != nil {
		return err
	}
	t0 := r.R.P.Now()
	if pr := r.obs().Prof(); pr != nil {
		pr.Begin(r.Rank(), profStridedOp[class])
		defer pr.End(r.Rank())
	}
	local, remote := s.Src, s.Dst
	if class == ClassGet {
		local, remote = s.Dst, s.Src
	}
	rt := r.decide(RouteRequest{Class: class, Shape: ShapeStrided,
		Local: local, Remote: remote, Target: remote.Rank, Bytes: s.TotalBytes()})
	p, err := r.compileStrided(class, scale, s, rt)
	if err != nil {
		return err
	}
	if err := r.execute(p); err != nil {
		return err
	}
	name := "puts"
	switch class {
	case ClassGet:
		name = "gets"
	case ClassAcc:
		name = "accs"
	}
	if o := r.obs(); o.Tracing() {
		o.Span(r.Rank(), "armci", name, t0, r.R.P.Now(),
			obs.A("method", rt.dec.Method.String()), obs.A("seg", s.SegBytes()))
	}
	return nil
}

// stridedTypeCached is stridedType behind the runtime's small memo
// ring: repeated transfers with the same stride/count shape get the
// same Datatype back, so its flatten cache survives across operations.
func (r *Runtime) stridedTypeCached(stride, count []int) mpi.Datatype {
	for i := range r.dtMemo {
		e := &r.dtMemo[i]
		if e.t != nil && eqInts(e.stride, stride) && eqInts(e.count, count) {
			return e.t
		}
	}
	t := stridedType(stride, count)
	r.dtMemo[r.dtNext] = dtEntry{
		stride: append([]int(nil), stride...),
		count:  append([]int(nil), count...),
		t:      t,
	}
	r.dtNext = (r.dtNext + 1) % len(r.dtMemo)
	return t
}

func eqInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// stridedType builds the MPI datatype for one side of a strided
// transfer: the SectionVI.C subarray translation when strides nest
// evenly, an indexed type otherwise.
func stridedType(stride, count []int) mpi.Datatype {
	if sizes, subsizes, starts, ok := subarrayFor(stride, count); ok {
		return mpi.TypeSubarray(sizes, subsizes, starts, 1)
	}
	// Fallback: enumerate segments (Algorithm 1) into an indexed type.
	sl := len(count) - 1
	segs := 1
	for _, c := range count[1:] {
		segs *= c
	}
	offs := make([]int, 0, segs)
	lens := make([]int, 0, segs)
	idx := make([]int, sl)
	for done := false; !done; {
		off := 0
		for i := 0; i < sl; i++ {
			off += stride[i] * idx[i]
		}
		offs = append(offs, off)
		lens = append(lens, count[0])
		done = true
		for i := 0; i < sl; i++ {
			idx[i]++
			if idx[i] < count[i+1] {
				done = false
				break
			}
			idx[i] = 0
		}
	}
	return mpi.TypeIndexed(offs, lens)
}

func subarrayFor(stride, count []int) (sizes, subsizes, starts []int, ok bool) {
	s := armci.Strided{SrcStride: stride, DstStride: stride, Count: count}
	return s.SrcSubarray()
}

// prescale produces a dense buffer holding scale*src for an arbitrary
// origin datatype.
func (r *Runtime) prescale(v *localView, baseVA int64, t mpi.Datatype, scale float64) (*fabric.Region, error) {
	n := t.Size()
	out := r.R.AllocMem(n)
	m := r.W.Mpi.M
	m.CopyLocal(r.R.P, n)
	m.Compute(r.R.P, float64(n/8))
	src := v.reg.Bytes(v.reg.VA+(baseVA-v.base), t.Span())
	// Pack through the flatten cache, scaling the decoded copy in place
	// before re-encoding into the dense output.
	pos := 0
	for _, s := range mpi.Flatten(t).Segs {
		vals := mpi.BytesToF64s(src[s.Off : s.Off+s.N])
		for i, x := range vals {
			vals[i] = x * scale
		}
		copy(out.Backing()[pos:pos+s.N], mpi.F64sToBytes(vals))
		pos += s.N
	}
	return out, nil
}

// PutV performs a generalized I/O vector put to proc.
func (r *Runtime) PutV(iov []armci.GIOV, proc int) error {
	return r.iov(ClassPut, 1, iov, proc)
}

// GetV performs a generalized I/O vector get from proc.
func (r *Runtime) GetV(iov []armci.GIOV, proc int) error {
	return r.iov(ClassGet, 1, iov, proc)
}

// AccV performs a generalized I/O vector accumulate to proc.
func (r *Runtime) AccV(op armci.AccOp, scale float64, iov []armci.GIOV, proc int) error {
	if err := checkAccIOV(iov); err != nil {
		return err
	}
	return r.iov(ClassAcc, scale, iov, proc)
}

// iovBytes is the total payload of a generalized I/O vector.
func iovBytes(iov []armci.GIOV) int {
	n := 0
	for i := range iov {
		n += len(iov[i].Src) * iov[i].Bytes
	}
	return n
}

func checkAccIOV(iov []armci.GIOV) error {
	for i := range iov {
		if iov[i].Bytes%8 != 0 {
			return fmt.Errorf("armcimpi: AccV segment size %d not float64-aligned", iov[i].Bytes)
		}
	}
	return nil
}

// iovSeg is one segment with local/remote orientation resolved.
type iovSeg struct {
	local, remote armci.Addr
	n             int
}

func orient(iov []armci.GIOV, class OpClass) []iovSeg {
	var segs []iovSeg
	for gi := range iov {
		g := &iov[gi]
		for i := range g.Src {
			s := iovSeg{local: g.Src[i], remote: g.Dst[i], n: g.Bytes}
			if class == ClassGet {
				s.local, s.remote = g.Dst[i], g.Src[i]
			}
			segs = append(segs, s)
		}
	}
	return segs
}

// iov compiles and executes an IOV operation with the routed method
// (SectionVI.A).
func (r *Runtime) iov(class OpClass, scale float64, iov []armci.GIOV, proc int) error {
	if pr := r.obs().Prof(); pr != nil {
		pr.Begin(r.Rank(), profIOVOp[class])
		defer pr.End(r.Rank())
	}
	rt := r.decide(RouteRequest{Class: class, Shape: ShapeIOV, Target: proc, Bytes: iovBytes(iov)})
	p, err := r.compileIOV(class, scale, iov, proc, rt)
	if err != nil {
		return err
	}
	return r.execute(p)
}
