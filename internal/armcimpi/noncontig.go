package armcimpi

import (
	"fmt"

	"repro/internal/armci"
	"repro/internal/conflicttree"
	"repro/internal/fabric"
	"repro/internal/mpi"
	"repro/internal/obs"
)

// stridedMethod resolves the configured strided strategy.
func (r *Runtime) stridedMethod() Method {
	switch r.Opt.StridedMethod {
	case MethodDirect, MethodIOVDirect, MethodBatched, MethodConservative:
		return r.Opt.StridedMethod
	case MethodAuto:
		return MethodDirect // strided descriptors cannot self-overlap
	default:
		return MethodDirect
	}
}

// PutS performs a strided put using the configured method.
func (r *Runtime) PutS(s *armci.Strided) error { return r.strided(classPut, 1, s) }

// GetS performs a strided get using the configured method.
func (r *Runtime) GetS(s *armci.Strided) error { return r.strided(classGet, 1, s) }

// AccS performs a strided accumulate (dst += scale*src).
func (r *Runtime) AccS(op armci.AccOp, scale float64, s *armci.Strided) error {
	if s.SegBytes()%8 != 0 {
		return fmt.Errorf("armcimpi: AccS segment size %d not float64-aligned", s.SegBytes())
	}
	return r.strided(classAcc, scale, s)
}

func (r *Runtime) strided(class opClass, scale float64, s *armci.Strided) error {
	if err := s.Validate(); err != nil {
		return err
	}
	t0 := r.R.P.Now()
	method := r.stridedMethod()
	var err error
	if method == MethodDirect {
		err = r.stridedDirect(class, scale, s)
	} else {
		g := s.ToGIOV()
		proc := s.Dst.Rank
		if class == classGet {
			proc = s.Src.Rank
		}
		err = r.iov(class, scale, []armci.GIOV{g}, proc, method)
	}
	if err != nil {
		return err
	}
	name := "puts"
	switch class {
	case classGet:
		name = "gets"
	case classAcc:
		name = "accs"
	}
	r.obs().Span(r.Rank(), "armci", name, t0, r.R.P.Now(),
		obs.A("method", method.String()), obs.A("seg", s.SegBytes()))
	return nil
}

// stridedDirect translates the strided descriptor straight into MPI
// subarray datatypes (SectionVI.C) and issues one operation in one
// epoch; MPI may then optimize the transfer (pack/unpack or otherwise).
func (r *Runtime) stridedDirect(class opClass, scale float64, s *armci.Strided) error {
	localAddr, remoteAddr := s.Src, s.Dst
	localStride, remoteStride := s.SrcStride, s.DstStride
	localSpan, remoteSpan := s.SrcSpan(), s.DstSpan()
	if class == classGet {
		localAddr, remoteAddr = s.Dst, s.Src
		localStride, remoteStride = s.DstStride, s.SrcStride
		localSpan, remoteSpan = s.DstSpan(), s.SrcSpan()
	}
	g, gr, disp, err := r.remote(remoteAddr, remoteSpan)
	if err != nil {
		return err
	}
	v, err := r.acquireLocal(localAddr, localSpan)
	if err != nil {
		return err
	}
	ltype := stridedType(localStride, s.Count)
	rtype := stridedType(remoteStride, s.Count)
	buf := v.buf(localAddr.VA, ltype)

	// Accumulate with a scale factor requires pre-scaling into a dense
	// temporary (SectionVI.C + MPI's missing scale argument).
	var scaled *fabric.Region
	if class == classAcc && scale != 1 {
		scaled, err = r.prescale(v, localAddr.VA, ltype, scale)
		if err != nil {
			return err
		}
		buf = mpi.LocalBuf{Region: scaled, Off: 0, Type: mpi.TypeContiguous(ltype.Size())}
	}
	e, err := r.beginEpoch(g, gr, class)
	if err != nil {
		return err
	}
	switch class {
	case classPut:
		err = e.put(buf, disp, rtype)
	case classGet:
		err = e.get(buf, disp, rtype)
	case classAcc:
		err = e.acc(buf, disp, rtype)
	}
	if err != nil {
		return err
	}
	if err := e.end(); err != nil {
		return err
	}
	if scaled != nil {
		if err := r.W.Mpi.M.Space(r.Rank()).Free(scaled.VA); err != nil {
			return err
		}
	}
	return r.release(v, class == classGet)
}

// stridedType builds the MPI datatype for one side of a strided
// transfer: the SectionVI.C subarray translation when strides nest
// evenly, an indexed type otherwise.
func stridedType(stride, count []int) mpi.Datatype {
	if sizes, subsizes, starts, ok := subarrayFor(stride, count); ok {
		return mpi.TypeSubarray(sizes, subsizes, starts, 1)
	}
	// Fallback: enumerate segments (Algorithm 1) into an indexed type.
	sl := len(count) - 1
	segs := 1
	for _, c := range count[1:] {
		segs *= c
	}
	offs := make([]int, 0, segs)
	lens := make([]int, 0, segs)
	idx := make([]int, sl)
	for done := false; !done; {
		off := 0
		for i := 0; i < sl; i++ {
			off += stride[i] * idx[i]
		}
		offs = append(offs, off)
		lens = append(lens, count[0])
		done = true
		for i := 0; i < sl; i++ {
			idx[i]++
			if idx[i] < count[i+1] {
				done = false
				break
			}
			idx[i] = 0
		}
	}
	return mpi.TypeIndexed(offs, lens)
}

func subarrayFor(stride, count []int) (sizes, subsizes, starts []int, ok bool) {
	s := armci.Strided{SrcStride: stride, DstStride: stride, Count: count}
	return s.SrcSubarray()
}

// prescale produces a dense buffer holding scale*src for an arbitrary
// origin datatype.
func (r *Runtime) prescale(v *localView, baseVA int64, t mpi.Datatype, scale float64) (*fabric.Region, error) {
	n := t.Size()
	out := r.R.AllocMem(n)
	m := r.W.Mpi.M
	m.CopyLocal(r.R.P, n)
	m.Compute(r.R.P, float64(n/8))
	src := v.reg.Bytes(v.reg.VA+(baseVA-v.base), t.Span())
	pos := 0
	t.Segments(func(off, ln int) {
		vals := mpi.BytesToF64s(src[off : off+ln])
		sc := make([]float64, len(vals))
		for i, x := range vals {
			sc[i] = x * scale
		}
		copy(out.Data[pos:pos+ln], mpi.F64sToBytes(sc))
		pos += ln
	})
	return out, nil
}

// PutV performs a generalized I/O vector put to proc.
func (r *Runtime) PutV(iov []armci.GIOV, proc int) error {
	return r.iov(classPut, 1, iov, proc, r.Opt.IOVMethod)
}

// GetV performs a generalized I/O vector get from proc.
func (r *Runtime) GetV(iov []armci.GIOV, proc int) error {
	return r.iov(classGet, 1, iov, proc, r.Opt.IOVMethod)
}

// AccV performs a generalized I/O vector accumulate to proc.
func (r *Runtime) AccV(op armci.AccOp, scale float64, iov []armci.GIOV, proc int) error {
	for i := range iov {
		if iov[i].Bytes%8 != 0 {
			return fmt.Errorf("armcimpi: AccV segment size %d not float64-aligned", iov[i].Bytes)
		}
	}
	return r.iov(classAcc, scale, iov, proc, r.Opt.IOVMethod)
}

// iovSeg is one segment with local/remote orientation resolved.
type iovSeg struct {
	local, remote armci.Addr
	n             int
}

func orient(iov []armci.GIOV, class opClass) []iovSeg {
	var segs []iovSeg
	for gi := range iov {
		g := &iov[gi]
		for i := range g.Src {
			s := iovSeg{local: g.Src[i], remote: g.Dst[i], n: g.Bytes}
			if class == classGet {
				s.local, s.remote = g.Dst[i], g.Src[i]
			}
			segs = append(segs, s)
		}
	}
	return segs
}

// iov dispatches an IOV operation to the selected method (SectionVI.A).
func (r *Runtime) iov(class opClass, scale float64, iov []armci.GIOV, proc int, method Method) error {
	if err := armci.ValidateIOV(iov, proc, class == classGet); err != nil {
		return err
	}
	segs := orient(iov, class)
	if len(segs) == 0 {
		return nil
	}
	switch method {
	case MethodConservative:
		return r.iovConservative(class, scale, segs)
	case MethodBatched:
		return r.iovBatched(class, scale, segs, proc)
	case MethodIOVDirect, MethodDirect:
		return r.iovDirect(class, scale, segs, proc)
	case MethodAuto:
		return r.iovAuto(class, scale, segs, proc)
	default:
		return fmt.Errorf("armcimpi: unknown IOV method %v", method)
	}
}

// iovAuto scans the descriptor with the conflict tree (SectionVI.B):
// if all remote segments fall in one GMR and the destination segments
// do not overlap, the fast method is safe; otherwise fall back to
// conservative. The overlap check runs on the destination side — the
// remote side for put and accumulate, the local side for get: two
// segments writing the same bytes within one epoch may land in either
// order, whereas overlapping get sources are read-read and harmless.
func (r *Runtime) iovAuto(class opClass, scale float64, segs []iovSeg, proc int) error {
	r.W.AutoScans++
	safe := true
	var tree conflicttree.Tree
	var g0 *GMR
	for _, sg := range segs {
		g, _, _, ok := r.W.find(sg.remote)
		if !ok {
			safe = false
			break
		}
		if g0 == nil {
			g0 = g
		} else if g != g0 {
			safe = false // segments correspond to different GMRs
			break
		}
		dst := sg.remote.VA
		if class == classGet {
			dst = sg.local.VA
		}
		if !tree.Insert(dst, dst+int64(sg.n)) {
			safe = false // overlapping destination segments
			break
		}
	}
	if !safe {
		r.W.AutoFalls++
		return r.iovConservative(class, scale, segs)
	}
	fast := r.Opt.AutoFast
	if fast != MethodBatched && fast != MethodIOVDirect {
		fast = MethodBatched
	}
	if fast == MethodBatched {
		return r.iovBatched(class, scale, segs, proc)
	}
	return r.iovDirect(class, scale, segs, proc)
}

// iovConservative issues one operation per segment, each in its own
// epoch; segments may overlap and span GMRs.
func (r *Runtime) iovConservative(class opClass, scale float64, segs []iovSeg) error {
	for _, sg := range segs {
		var err error
		switch class {
		case classPut:
			err = r.Put(sg.local, sg.remote, sg.n)
		case classGet:
			err = r.Get(sg.remote, sg.local, sg.n)
		case classAcc:
			err = r.Acc(armci.AccDbl, scale, sg.local, sg.remote, sg.n)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// iovBatched issues up to BatchSize contiguous operations per epoch;
// all remote segments must fall in one GMR and not overlap, or MPI
// reports an error (SectionVI.B's motivation). Local buffers living in
// global space force the conservative path (staging cannot be done
// while the remote epoch is open).
func (r *Runtime) iovBatched(class opClass, scale float64, segs []iovSeg, proc int) error {
	for _, sg := range segs {
		if _, _, _, inGMR := r.W.find(sg.local); inGMR && !r.Opt.NoStaging {
			return r.iovConservative(class, scale, segs)
		}
	}
	if class == classGet {
		// Gets land in local destinations: aliased destinations within
		// one epoch would be written in arbitrary order, so serialize
		// them through the per-segment path.
		var tree conflicttree.Tree
		for _, sg := range segs {
			if !tree.Insert(sg.local.VA, sg.local.VA+int64(sg.n)) {
				return r.iovConservative(class, scale, segs)
			}
		}
	}
	g, gr, _, err := r.remoteGMR(segs[0].remote)
	if err != nil {
		return err
	}
	b := r.Opt.BatchSize
	if b <= 0 {
		b = len(segs)
	}
	base := g.addrs[gr]
	var temps []*fabric.Region
	for start := 0; start < len(segs); start += b {
		end := start + b
		if end > len(segs) {
			end = len(segs)
		}
		e, err := r.beginEpoch(g, gr, class)
		if err != nil {
			return err
		}
		for _, sg := range segs[start:end] {
			v, err := r.acquireLocal(sg.local, sg.n)
			if err != nil {
				return err
			}
			disp := int(sg.remote.VA - base.VA)
			buf := v.buf(sg.local.VA, mpi.TypeContiguous(sg.n))
			if class == classAcc && scale != 1 {
				scaled, err := r.prescale(v, sg.local.VA, mpi.TypeContiguous(sg.n), scale)
				if err != nil {
					return err
				}
				temps = append(temps, scaled)
				buf = mpi.LocalBuf{Region: scaled, Off: 0, Type: mpi.TypeContiguous(sg.n)}
			}
			switch class {
			case classPut:
				err = e.put(buf, disp, mpi.TypeContiguous(sg.n))
			case classGet:
				err = e.get(buf, disp, mpi.TypeContiguous(sg.n))
			case classAcc:
				err = e.acc(buf, disp, mpi.TypeContiguous(sg.n))
			}
			if err != nil {
				return err
			}
		}
		if err := e.end(); err != nil {
			return err
		}
	}
	sp := r.W.Mpi.M.Space(r.Rank())
	for _, t := range temps {
		if err := sp.Free(t.VA); err != nil {
			return err
		}
	}
	return nil
}

// iovDirect builds one MPI indexed datatype per side and issues a
// single operation, letting MPI choose pack/unpack or batching
// (SectionVI.A's direct method).
func (r *Runtime) iovDirect(class opClass, scale float64, segs []iovSeg, proc int) error {
	g, gr, _, err := r.remoteGMR(segs[0].remote)
	if err != nil {
		return err
	}
	base := g.addrs[gr]
	// Local side: offsets relative to the lowest local address.
	localBase := segs[0].local.VA
	for _, sg := range segs {
		if sg.local.VA < localBase {
			localBase = sg.local.VA
		}
	}
	localSpan := 0
	lOffs := make([]int, len(segs))
	lLens := make([]int, len(segs))
	rOffs := make([]int, len(segs))
	rLens := make([]int, len(segs))
	for i, sg := range segs {
		lOffs[i] = int(sg.local.VA - localBase)
		lLens[i] = sg.n
		if lOffs[i]+sg.n > localSpan {
			localSpan = lOffs[i] + sg.n
		}
		rOffs[i] = int(sg.remote.VA - base.VA)
		rLens[i] = sg.n
	}
	ltype := mpi.TypeIndexed(lOffs, lLens)
	rtype := mpi.TypeIndexed(rOffs, rLens)
	v, err := r.acquireLocal(armci.Addr{Rank: r.Rank(), VA: localBase}, localSpan)
	if err != nil {
		return err
	}
	buf := v.buf(localBase, ltype)
	var scaled *fabric.Region
	if class == classAcc && scale != 1 {
		scaled, err = r.prescale(v, localBase, ltype, scale)
		if err != nil {
			return err
		}
		buf = mpi.LocalBuf{Region: scaled, Off: 0, Type: mpi.TypeContiguous(ltype.Size())}
	}
	e, err := r.beginEpoch(g, gr, class)
	if err != nil {
		return err
	}
	switch class {
	case classPut:
		err = e.put(buf, 0, rtype)
	case classGet:
		err = e.get(buf, 0, rtype)
	case classAcc:
		err = e.acc(buf, 0, rtype)
	}
	if err != nil {
		return err
	}
	if err := e.end(); err != nil {
		return err
	}
	if scaled != nil {
		if err := r.W.Mpi.M.Space(r.Rank()).Free(scaled.VA); err != nil {
			return err
		}
	}
	return r.release(v, class == classGet)
}

// remoteGMR resolves a remote address to its GMR without a span check
// (per-segment checks happen via window bounds).
func (r *Runtime) remoteGMR(addr armci.Addr) (*GMR, int, int, error) {
	g, gr, disp, ok := r.W.find(addr)
	if !ok {
		return nil, 0, 0, fmt.Errorf("armcimpi: %v is not in any GMR", addr)
	}
	return g, gr, disp, nil
}
