package armcimpi

import (
	"fmt"

	"repro/internal/armci"
	"repro/internal/fabric"
	"repro/internal/mpi"
	"repro/internal/obs"
)

type opClass int

const (
	classGet opClass = iota
	classPut
	classAcc
)

// lockType selects the epoch's lock mode for an operation against a
// GMR: exclusive by default (SectionV.C), shared when the access-mode
// hint guarantees the operation mix cannot conflict (SectionVIII.A).
func lockType(g *GMR, class opClass) mpi.LockType {
	switch {
	case g.mode == armci.ModeReadOnly && class == classGet:
		return mpi.LockShared
	case g.mode == armci.ModeAccOnly && class == classAcc:
		return mpi.LockShared
	default:
		return mpi.LockExclusive
	}
}

// localView resolves the local side of an operation. If the local
// buffer lies inside a GMR (a "global buffer", SectionV.E.1), the data
// is staged through a temporary buffer: locking both the local and the
// remote window would either double-lock one window (forbidden) or
// risk deadlock through circular lock dependences, so the exclusive
// self-lock is taken and released before the remote epoch begins.
type localView struct {
	reg *fabric.Region
	// base is the VA that maps to offset 0 of reg: the region's own VA
	// for an unstaged view, or the original buffer's VA for a staged
	// one (the temp region mirrors the span starting there).
	base   int64
	staged bool
	// dlaOwned marks a staged span that lies inside an open AccessBegin
	// section: the exclusive self-lock is already held by the DLA
	// section, so the staging copies must not (and safely need not)
	// take it again.
	dlaOwned bool
	orig     armci.Addr
	span     int
	g        *GMR
	myRank   int // my rank in g's window
}

// dlaCovers reports whether [va, va+span) lies entirely inside an open
// AccessBegin section of the same GMR. Any-match over the open
// sections, so map iteration order does not matter.
func (r *Runtime) dlaCovers(g *GMR, va int64, span int) bool {
	for secVA, sec := range r.dla {
		if sec.g == g && va >= secVA && va+int64(span) <= secVA+int64(sec.n) {
			return true
		}
	}
	return false
}

// acquireLocal prepares [addr, addr+span) for use as the local side.
// The returned view's reg/base replace the original region/address.
func (r *Runtime) acquireLocal(addr armci.Addr, span int) (*localView, error) {
	if addr.Rank != r.Rank() {
		return nil, fmt.Errorf("armcimpi: local buffer %v is not on rank %d", addr, r.Rank())
	}
	m := r.W.Mpi.M
	reg := m.Space(r.Rank()).Find(addr.VA, span)
	if reg == nil {
		return nil, fmt.Errorf("armcimpi: local address %v (+%d) not in any allocation", addr, span)
	}
	g, gr, _, inGMR := r.W.find(addr)
	// MPI-3 mode needs no staging: lock-all relaxes conflicting access
	// from erroneous to undefined, and the coherent-platform assumption
	// (SectionV.E.1) makes direct use safe.
	if !inGMR || r.Opt.NoStaging || r.Opt.UseMPI3 {
		return &localView{reg: reg, base: reg.VA}, nil
	}
	// Stage: copy the span out under an exclusive self-lock. If the span
	// lies inside an open DLA section, that section already holds the
	// exclusive self-lock — re-locking would deadlock behind ourselves,
	// so copy directly under the section's protection instead.
	t0 := r.R.P.Now()
	tmp := r.R.AllocMem(span)
	win := g.wins[r.Rank()]
	owned := r.dlaCovers(g, addr.VA, span)
	if !owned {
		if err := win.Lock(mpi.LockExclusive, gr); err != nil {
			return nil, err
		}
	}
	m.CopyLocal(r.R.P, span)
	copy(tmp.Data, reg.Bytes(addr.VA, span))
	if !owned {
		if err := win.Unlock(gr); err != nil {
			return nil, err
		}
	}
	r.W.Staged++
	o := r.obs()
	o.Inc(r.Rank(), obs.CStaged)
	o.Span(r.Rank(), "armci", "stage", t0, r.R.P.Now(), obs.A("bytes", span))
	return &localView{reg: tmp, base: addr.VA, staged: true, dlaOwned: owned, orig: addr, span: span, g: g, myRank: gr}, nil
}

// release finishes with a local view; when writeBack is set (get
// operations) the staged data is copied back under a self-lock.
func (r *Runtime) release(v *localView, writeBack bool) error {
	if !v.staged {
		return nil
	}
	m := r.W.Mpi.M
	if writeBack {
		win := v.g.wins[r.Rank()]
		if !v.dlaOwned {
			if err := win.Lock(mpi.LockExclusive, v.myRank); err != nil {
				return err
			}
		}
		m.CopyLocal(r.R.P, v.span)
		orig := m.Space(r.Rank()).Find(v.orig.VA, v.span)
		copy(orig.Bytes(v.orig.VA, v.span), v.reg.Data[:v.span])
		if !v.dlaOwned {
			if err := win.Unlock(v.myRank); err != nil {
				return err
			}
		}
	}
	return r.W.Mpi.M.Space(r.Rank()).Free(v.reg.VA)
}

// buf builds the MPI origin buffer for the given local VA within the
// view.
func (v *localView) buf(va int64, t mpi.Datatype) mpi.LocalBuf {
	return mpi.LocalBuf{Region: v.reg, Off: int(va - v.base), Type: t}
}

// remote resolves a global address to (GMR, window rank, displacement).
func (r *Runtime) remote(addr armci.Addr, n int) (*GMR, int, int, error) {
	g, gr, disp, ok := r.W.find(addr)
	if !ok {
		return nil, 0, 0, fmt.Errorf("armcimpi: %v is not in any GMR", addr)
	}
	if disp+n > g.sizes[gr] {
		return nil, 0, 0, fmt.Errorf("armcimpi: access %v(+%d) overruns GMR slice of %d bytes",
			addr, n, g.sizes[gr])
	}
	return g, gr, disp, nil
}

// Put copies n bytes from the local src to the global dst. Because
// each operation completes within its own epoch, the call is both
// locally and remotely complete on return (SectionV.F).
func (r *Runtime) Put(src, dst armci.Addr, n int) error {
	t0 := r.R.P.Now()
	if err := armci.CheckContig(src, dst, n); err != nil {
		return err
	}
	g, gr, disp, err := r.remote(dst, n)
	if err != nil {
		return err
	}
	v, err := r.acquireLocal(src, n)
	if err != nil {
		return err
	}
	e, err := r.beginEpoch(g, gr, classPut)
	if err != nil {
		return err
	}
	if err := e.put(v.buf(src.VA, mpi.TypeContiguous(n)), disp, mpi.TypeContiguous(n)); err != nil {
		return err
	}
	if err := e.end(); err != nil {
		return err
	}
	if err := r.release(v, false); err != nil {
		return err
	}
	r.obs().Span(r.Rank(), "armci", "put", t0, r.R.P.Now(), obs.A("to", dst.Rank), obs.A("bytes", n))
	return nil
}

// Get copies n bytes from the global src to the local dst; the data is
// available on return.
func (r *Runtime) Get(src, dst armci.Addr, n int) error {
	t0 := r.R.P.Now()
	if err := armci.CheckContig(src, dst, n); err != nil {
		return err
	}
	g, gr, disp, err := r.remote(src, n)
	if err != nil {
		return err
	}
	v, err := r.acquireLocal(dst, n)
	if err != nil {
		return err
	}
	e, err := r.beginEpoch(g, gr, classGet)
	if err != nil {
		return err
	}
	if err := e.get(v.buf(dst.VA, mpi.TypeContiguous(n)), disp, mpi.TypeContiguous(n)); err != nil {
		return err
	}
	if err := e.end(); err != nil {
		return err
	}
	if err := r.release(v, true); err != nil {
		return err
	}
	r.obs().Span(r.Rank(), "armci", "get", t0, r.R.P.Now(), obs.A("from", src.Rank), obs.A("bytes", n))
	return nil
}

// Acc applies dst += scale*src elementwise on float64. ARMCI-MPI
// pre-scales into a temporary buffer (MPI accumulate has no scale
// argument) and issues MPI_Accumulate with MPI_SUM.
func (r *Runtime) Acc(op armci.AccOp, scale float64, src, dst armci.Addr, n int) error {
	t0 := r.R.P.Now()
	if err := armci.CheckContig(src, dst, n); err != nil {
		return err
	}
	if n%8 != 0 {
		return fmt.Errorf("armcimpi: Acc size %d not a multiple of 8 (float64)", n)
	}
	g, gr, disp, err := r.remote(dst, n)
	if err != nil {
		return err
	}
	v, err := r.acquireLocal(src, n)
	if err != nil {
		return err
	}
	buf := v.buf(src.VA, mpi.TypeContiguous(n))
	var scaled *fabric.Region
	if scale != 1 {
		scaled = r.R.AllocMem(n)
		m := r.W.Mpi.M
		m.CopyLocal(r.R.P, n)
		m.Compute(r.R.P, float64(n/8))
		vals := mpi.BytesToF64s(v.reg.Bytes(v.reg.VA+(src.VA-v.base), n))
		out := make([]float64, len(vals))
		for i, x := range vals {
			out[i] = x * scale
		}
		copy(scaled.Data, mpi.F64sToBytes(out))
		buf = mpi.LocalBuf{Region: scaled, Off: 0, Type: mpi.TypeContiguous(n)}
	}
	e, err := r.beginEpoch(g, gr, classAcc)
	if err != nil {
		return err
	}
	if err := e.acc(buf, disp, mpi.TypeContiguous(n)); err != nil {
		return err
	}
	if err := e.end(); err != nil {
		return err
	}
	if scaled != nil {
		if err := r.W.Mpi.M.Space(r.Rank()).Free(scaled.VA); err != nil {
			return err
		}
	}
	if err := r.release(v, false); err != nil {
		return err
	}
	r.obs().Span(r.Rank(), "armci", "acc", t0, r.R.P.Now(), obs.A("to", dst.Rank), obs.A("bytes", n))
	return nil
}

// completedHandle is the handle for "nonblocking" operations: MPI-2
// has no request-based RMA (SectionVIII.B), so ARMCI-MPI's nonblocking
// operations complete before returning. The handle is only constructed
// after Unlock returns — a handle must never report completion while
// its epoch is still open.
type completedHandle struct{}

func (completedHandle) Wait() {}

// failedHandle is returned alongside the error when an immediate-mode
// nonblocking operation fails. Callers that ignore the error and Wait
// anyway must not silently proceed on garbage data, so Wait re-raises
// the failure.
type failedHandle struct{ err error }

func (h failedHandle) Wait() {
	panic(fmt.Sprintf("armcimpi: Wait on failed nonblocking operation: %v", h.err))
}

// NbPut issues a put. Under MPI-2 there are no request-based RMA
// operations (SectionVIII.B), so the call completes before returning;
// under MPI-3 it issues an Rput whose remote completion is deferred to
// Fence, enabling communication/computation overlap.
func (r *Runtime) NbPut(src, dst armci.Addr, n int) (armci.Handle, error) {
	if !r.Opt.UseMPI3 {
		if err := r.Put(src, dst, n); err != nil {
			return failedHandle{err: err}, err
		}
		return completedHandle{}, nil
	}
	if err := armci.CheckContig(src, dst, n); err != nil {
		return nil, err
	}
	g, gr, disp, err := r.remote(dst, n)
	if err != nil {
		return nil, err
	}
	v, err := r.acquireLocal(src, n)
	if err != nil {
		return nil, err
	}
	win := g.wins[r.Rank()]
	if err := r.ensureLockAll(win); err != nil {
		return nil, err
	}
	req, err := win.RPut(v.buf(src.VA, mpi.TypeContiguous(n)), gr, disp, mpi.TypeContiguous(n))
	if err != nil {
		return nil, err
	}
	r.addPending(win, gr)
	return nb3Handle{req: req}, nil
}

// NbGet issues a get; under MPI-2 it completes immediately, under
// MPI-3 the handle's Wait blocks until the data has landed.
func (r *Runtime) NbGet(src, dst armci.Addr, n int) (armci.Handle, error) {
	if !r.Opt.UseMPI3 {
		if err := r.Get(src, dst, n); err != nil {
			return failedHandle{err: err}, err
		}
		return completedHandle{}, nil
	}
	if err := armci.CheckContig(src, dst, n); err != nil {
		return nil, err
	}
	g, gr, disp, err := r.remote(src, n)
	if err != nil {
		return nil, err
	}
	v, err := r.acquireLocal(dst, n)
	if err != nil {
		return nil, err
	}
	win := g.wins[r.Rank()]
	if err := r.ensureLockAll(win); err != nil {
		return nil, err
	}
	req, err := win.RGet(v.buf(dst.VA, mpi.TypeContiguous(n)), gr, disp, mpi.TypeContiguous(n))
	if err != nil {
		return nil, err
	}
	return nb3Handle{req: req}, nil
}

// NbPutS issues a strided put. Under MPI-2 the call completes before
// returning (no request-based RMA, SectionVIII.B); under MPI-3 it
// issues a request-based Rput with derived datatypes on both sides,
// mirroring the contiguous NbPut, so the transfer genuinely overlaps
// with computation until Wait or Fence.
func (r *Runtime) NbPutS(s *armci.Strided) (armci.Handle, error) {
	if !r.Opt.UseMPI3 {
		if err := r.PutS(s); err != nil {
			return failedHandle{err: err}, err
		}
		return completedHandle{}, nil
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	g, gr, disp, err := r.remote(s.Dst, s.DstSpan())
	if err != nil {
		return nil, err
	}
	v, err := r.acquireLocal(s.Src, s.SrcSpan())
	if err != nil {
		return nil, err
	}
	ltype := stridedType(s.SrcStride, s.Count)
	rtype := stridedType(s.DstStride, s.Count)
	win := g.wins[r.Rank()]
	if err := r.ensureLockAll(win); err != nil {
		return nil, err
	}
	req, err := win.RPut(v.buf(s.Src.VA, ltype), gr, disp, rtype)
	if err != nil {
		return nil, err
	}
	r.addPending(win, gr)
	return nb3Handle{req: req}, nil
}

// NbGetS issues a strided get. Under MPI-2 it completes immediately;
// under MPI-3 it issues a request-based Rget with derived datatypes and
// the handle's Wait blocks until the strided data has landed.
func (r *Runtime) NbGetS(s *armci.Strided) (armci.Handle, error) {
	if !r.Opt.UseMPI3 {
		if err := r.GetS(s); err != nil {
			return failedHandle{err: err}, err
		}
		return completedHandle{}, nil
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	g, gr, disp, err := r.remote(s.Src, s.SrcSpan())
	if err != nil {
		return nil, err
	}
	v, err := r.acquireLocal(s.Dst, s.DstSpan())
	if err != nil {
		return nil, err
	}
	ltype := stridedType(s.DstStride, s.Count)
	rtype := stridedType(s.SrcStride, s.Count)
	win := g.wins[r.Rank()]
	if err := r.ensureLockAll(win); err != nil {
		return nil, err
	}
	req, err := win.RGet(v.buf(s.Dst.VA, ltype), gr, disp, rtype)
	if err != nil {
		return nil, err
	}
	return nb3Handle{req: req}, nil
}

// Fence ensures remote completion of prior operations to proc. Under
// MPI-2 it is a no-op — every operation completes within its own epoch
// (SectionV.F). Under MPI-3 it flushes only the windows with pending
// request-based operations targeting proc: a per-target flush, not a
// FlushAll, so fencing one target does not pay for (or complete) the
// outstanding traffic to every other target.
func (r *Runtime) Fence(proc int) {
	if !r.Opt.UseMPI3 || len(r.pending) == 0 {
		return
	}
	for _, win := range append([]*mpi.Win(nil), r.pendingOrder...) {
		targets := r.pending[win]
		gr := win.Comm().RankOfWorld(proc)
		if targets == nil || gr < 0 || !targets[gr] {
			continue
		}
		if err := win.Flush(gr); err != nil {
			panic(fmt.Sprintf("armcimpi: fence flush failed: %v", err))
		}
		delete(targets, gr)
		if len(targets) == 0 {
			r.dropPending(win)
		}
	}
}

// AllFence fences every target.
func (r *Runtime) AllFence() {
	if !r.Opt.UseMPI3 || len(r.pending) == 0 {
		return
	}
	for _, win := range append([]*mpi.Win(nil), r.pendingOrder...) {
		if err := win.FlushAll(); err != nil {
			panic(fmt.Sprintf("armcimpi: fence flush failed: %v", err))
		}
	}
	r.pending = map[*mpi.Win]map[int]bool{}
	r.pendingOrder = nil
}

// Barrier synchronizes all processes (communication is already fenced).
func (r *Runtime) Barrier() { r.R.CommWorld().Barrier() }
