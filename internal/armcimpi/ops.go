package armcimpi

import (
	"fmt"

	"repro/internal/armci"
	"repro/internal/fabric"
	"repro/internal/mpi"
	"repro/internal/obs"
	"repro/internal/obs/profile"
)

type OpClass int

const (
	ClassGet OpClass = iota
	ClassPut
	ClassAcc
)

// lockType selects the epoch's lock mode for an operation against a
// GMR: exclusive by default (SectionV.C), shared when the access-mode
// hint guarantees the operation mix cannot conflict (SectionVIII.A).
func lockType(g *GMR, class OpClass) mpi.LockType {
	switch {
	case g.mode == armci.ModeReadOnly && class == ClassGet:
		return mpi.LockShared
	case g.mode == armci.ModeAccOnly && class == ClassAcc:
		return mpi.LockShared
	default:
		return mpi.LockExclusive
	}
}

// localView resolves the local side of an operation. If the local
// buffer lies inside a GMR (a "global buffer", SectionV.E.1), the data
// is staged through a temporary buffer: locking both the local and the
// remote window would either double-lock one window (forbidden) or
// risk deadlock through circular lock dependences, so the exclusive
// self-lock is taken and released before the remote epoch begins.
type localView struct {
	reg *fabric.Region
	// base is the VA that maps to offset 0 of reg: the region's own VA
	// for an unstaged view, or the original buffer's VA for a staged
	// one (the temp region mirrors the span starting there).
	base   int64
	staged bool
	// dlaOwned marks a staged span that lies inside an open AccessBegin
	// section: the exclusive self-lock is already held by the DLA
	// section, so the staging copies must not (and safely need not)
	// take it again.
	dlaOwned bool
	orig     armci.Addr
	span     int
	g        *GMR
	myRank   int // my rank in g's window
}

// dlaCovers reports whether [va, va+span) lies entirely inside an open
// AccessBegin section of the same GMR. Any-match over the open
// sections, so map iteration order does not matter.
func (r *Runtime) dlaCovers(g *GMR, va int64, span int) bool {
	for secVA, sec := range r.dla {
		if sec.g == g && va >= secVA && va+int64(span) <= secVA+int64(sec.n) {
			return true
		}
	}
	return false
}

// acquireLocal prepares [addr, addr+span) for use as the local side.
// The returned view's reg/base replace the original region/address.
// The view is returned by value so the common unstaged case stays off
// the heap.
func (r *Runtime) acquireLocal(addr armci.Addr, span int) (localView, error) {
	if addr.Rank != r.Rank() {
		return localView{}, fmt.Errorf("armcimpi: local buffer %v is not on rank %d", addr, r.Rank())
	}
	m := r.W.Mpi.M
	reg := m.Space(r.Rank()).Find(addr.VA, span)
	if reg == nil {
		return localView{}, fmt.Errorf("armcimpi: local address %v (+%d) not in any allocation", addr, span)
	}
	g, gr, _, inGMR := r.W.find(addr)
	// MPI-3 mode needs no staging: lock-all relaxes conflicting access
	// from erroneous to undefined, and the coherent-platform assumption
	// (SectionV.E.1) makes direct use safe.
	if !inGMR || r.Opt.NoStaging || r.Opt.UseMPI3 {
		return localView{reg: reg, base: reg.VA}, nil
	}
	// Stage: copy the span out under an exclusive self-lock. If the span
	// lies inside an open DLA section, that section already holds the
	// exclusive self-lock — re-locking would deadlock behind ourselves,
	// so copy directly under the section's protection instead.
	t0 := r.R.P.Now()
	tmp := r.R.AllocMem(span)
	win := g.wins[r.Rank()]
	owned := r.dlaCovers(g, addr.VA, span)
	if !owned {
		if err := win.Lock(mpi.LockExclusive, gr); err != nil {
			return localView{}, err
		}
	}
	m.CopyLocal(r.R.P, span)
	copy(tmp.Backing(), reg.Bytes(addr.VA, span))
	if !owned {
		if err := win.Unlock(gr); err != nil {
			return localView{}, err
		}
	}
	r.W.Staged++
	o := r.obs()
	o.Inc(r.Rank(), obs.CStaged)
	if o.Tracing() {
		o.Span(r.Rank(), "armci", "stage", t0, r.R.P.Now(), obs.A("bytes", span))
	}
	return localView{reg: tmp, base: addr.VA, staged: true, dlaOwned: owned, orig: addr, span: span, g: g, myRank: gr}, nil
}

// release finishes with a local view; when writeBack is set (get
// operations) the staged data is copied back under a self-lock.
func (r *Runtime) release(v *localView, writeBack bool) error {
	if !v.staged {
		return nil
	}
	m := r.W.Mpi.M
	if writeBack {
		win := v.g.wins[r.Rank()]
		if !v.dlaOwned {
			if err := win.Lock(mpi.LockExclusive, v.myRank); err != nil {
				return err
			}
		}
		m.CopyLocal(r.R.P, v.span)
		orig := m.Space(r.Rank()).Find(v.orig.VA, v.span)
		copy(orig.Bytes(v.orig.VA, v.span), v.reg.Backing()[:v.span])
		if !v.dlaOwned {
			if err := win.Unlock(v.myRank); err != nil {
				return err
			}
		}
	}
	return r.W.Mpi.M.Space(r.Rank()).Free(v.reg.VA)
}

// buf builds the MPI origin buffer for the given local VA within the
// view.
func (v *localView) buf(va int64, t mpi.Datatype) mpi.LocalBuf {
	return mpi.LocalBuf{Region: v.reg, Off: int(va - v.base), Type: t}
}

// remote resolves a global address to (GMR, window rank, displacement).
func (r *Runtime) remote(addr armci.Addr, n int) (*GMR, int, int, error) {
	g, gr, disp, ok := r.W.find(addr)
	if !ok {
		return nil, 0, 0, fmt.Errorf("armcimpi: %v is not in any GMR", addr)
	}
	if disp+n > g.sizes[gr] {
		return nil, 0, 0, fmt.Errorf("armcimpi: access %v(+%d) overruns GMR slice of %d bytes",
			addr, n, g.sizes[gr])
	}
	return g, gr, disp, nil
}

// Put copies n bytes from the local src to the global dst. Because
// each operation completes within its own epoch, the call is both
// locally and remotely complete on return (SectionV.F).
func (r *Runtime) Put(src, dst armci.Addr, n int) error {
	t0 := r.R.P.Now()
	if pr := r.obs().Prof(); pr != nil {
		pr.Begin(r.Rank(), profile.OpPut)
		defer pr.End(r.Rank())
	}
	if err := armci.CheckContig(src, dst, n); err != nil {
		return err
	}
	rt := r.decide(RouteRequest{Class: ClassPut, Shape: ShapeContig, Local: src, Remote: dst, Target: dst.Rank, Bytes: n})
	p, err := r.compileContig(ClassPut, 1, src, dst, n, rt)
	if err != nil {
		return err
	}
	if err := r.execute(p); err != nil {
		return err
	}
	if o := r.obs(); o.Tracing() {
		o.Span(r.Rank(), "armci", "put", t0, r.R.P.Now(), obs.A("to", dst.Rank), obs.A("bytes", n))
	}
	return nil
}

// Get copies n bytes from the global src to the local dst; the data is
// available on return.
func (r *Runtime) Get(src, dst armci.Addr, n int) error {
	t0 := r.R.P.Now()
	if pr := r.obs().Prof(); pr != nil {
		pr.Begin(r.Rank(), profile.OpGet)
		defer pr.End(r.Rank())
	}
	if err := armci.CheckContig(src, dst, n); err != nil {
		return err
	}
	rt := r.decide(RouteRequest{Class: ClassGet, Shape: ShapeContig, Local: dst, Remote: src, Target: src.Rank, Bytes: n})
	p, err := r.compileContig(ClassGet, 1, dst, src, n, rt)
	if err != nil {
		return err
	}
	if err := r.execute(p); err != nil {
		return err
	}
	if o := r.obs(); o.Tracing() {
		o.Span(r.Rank(), "armci", "get", t0, r.R.P.Now(), obs.A("from", src.Rank), obs.A("bytes", n))
	}
	return nil
}

// Acc applies dst += scale*src elementwise on float64. ARMCI-MPI
// pre-scales into a temporary buffer (MPI accumulate has no scale
// argument) and issues MPI_Accumulate with MPI_SUM.
func (r *Runtime) Acc(op armci.AccOp, scale float64, src, dst armci.Addr, n int) error {
	t0 := r.R.P.Now()
	if pr := r.obs().Prof(); pr != nil {
		pr.Begin(r.Rank(), profile.OpAcc)
		defer pr.End(r.Rank())
	}
	if err := armci.CheckContig(src, dst, n); err != nil {
		return err
	}
	if n%8 != 0 {
		return fmt.Errorf("armcimpi: Acc size %d not a multiple of 8 (float64)", n)
	}
	rt := r.decide(RouteRequest{Class: ClassAcc, Shape: ShapeContig, Local: src, Remote: dst, Target: dst.Rank, Bytes: n})
	p, err := r.compileContig(ClassAcc, scale, src, dst, n, rt)
	if err != nil {
		return err
	}
	if err := r.execute(p); err != nil {
		return err
	}
	if o := r.obs(); o.Tracing() {
		o.Span(r.Rank(), "armci", "acc", t0, r.R.P.Now(), obs.A("to", dst.Rank), obs.A("bytes", n))
	}
	return nil
}

// Fence ensures remote completion of prior operations to proc. Under
// MPI-2 it is a no-op — every operation completes within its own epoch
// (SectionV.F). Under MPI-3 it flushes only the windows with pending
// request-based operations targeting proc: a per-target flush, not a
// FlushAll, so fencing one target does not pay for (or complete) the
// outstanding traffic to every other target.
func (r *Runtime) Fence(proc int) {
	if !r.Opt.UseMPI3 || len(r.pending) == 0 {
		return
	}
	for _, win := range append([]*mpi.Win(nil), r.pendingOrder...) {
		if win == nil {
			continue // tombstoned by an earlier dropPending
		}
		ent := r.pending[win]
		gr := win.Comm().RankOfWorld(proc)
		if ent == nil || gr < 0 || !ent.targets[gr] {
			continue
		}
		if err := win.Flush(gr); err != nil {
			panic(fmt.Sprintf("armcimpi: fence flush failed: %v", err))
		}
		delete(ent.targets, gr)
		if len(ent.targets) == 0 {
			r.dropPending(win)
		}
	}
}

// AllFence fences every target.
func (r *Runtime) AllFence() {
	if !r.Opt.UseMPI3 || len(r.pending) == 0 {
		return
	}
	for _, win := range r.pendingOrder {
		if win == nil {
			continue
		}
		if err := win.FlushAll(); err != nil {
			panic(fmt.Sprintf("armcimpi: fence flush failed: %v", err))
		}
	}
	r.pending = map[*mpi.Win]*pendingOps{}
	r.pendingOrder = nil
	r.pendingDead = 0
}

// Barrier synchronizes all processes. Outstanding nonblocking
// operations are fenced first so the barrier provides the usual
// "all prior communication is remotely complete" guarantee; with
// nothing pending (always the case under MPI-2, where every operation
// completes in its own epoch) the fence is free.
func (r *Runtime) Barrier() {
	r.AllFence()
	r.R.CommWorld().Barrier()
}
