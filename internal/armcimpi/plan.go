package armcimpi

import (
	"fmt"

	"repro/internal/armci"
	"repro/internal/mpi"
)

// The transfer-plan engine. Every ARMCI data-movement operation —
// contiguous, strided, and generalized I/O vector; put, get, and
// accumulate; blocking and nonblocking — compiles to one plan
// descriptor and is carried out by the single executor in exec.go.
// The compilers in this file own method selection (SectionVI),
// GMR resolution, and the conflict-tree safety scan; the executor
// owns staging, deadlock avoidance, prescale temporaries, epoch and
// flush management per backend, batching, and completion tracking.

// planKind selects the executor strategy for a compiled plan.
type planKind int

const (
	// planSingle issues one datatype-described operation in one epoch:
	// contiguous transfers, the direct strided translation
	// (SectionVI.C), and the IOV-direct indexed-datatype method.
	planSingle planKind = iota
	// planBatched issues up to batch contiguous operations per epoch
	// against one GMR (SectionVI.B).
	planBatched
	// planPerSeg re-enters the engine once per contiguous segment,
	// each in its own epoch; segments may overlap and span GMRs
	// (the conservative method, and near-tier descriptors whose
	// segments are routed individually).
	planPerSeg
	// planNear executes a contiguous transfer on a near tier the
	// policy bound directly: a local memcpy (RouteSelf put/get) or one
	// exclusive-lock epoch on the decision's node-shared window.
	planNear
)

// planSeg is one contiguous piece of a batched plan, its displacement
// already resolved against the target's window slice.
type planSeg struct {
	local armci.Addr
	disp  int
	n     int
}

// contigSeg is one unresolved segment of a conservative plan; the
// remote side keeps the full global address because conservative
// segments may fall in different GMRs.
type contigSeg struct {
	local, remote armci.Addr
	n             int
}

// plan is the compiled descriptor of one ARMCI operation.
type plan struct {
	class OpClass
	scale float64
	kind  planKind

	// The routing decision the policy made for this operation, and the
	// payload size behind it (execStage's staging model runs on the
	// whole descriptor, not per segment). planNear also keeps the
	// remote global address in raddr, since near execution resolves
	// regions directly instead of through a GMR.
	dec        RouteDecision
	stageBytes int
	raddr      armci.Addr

	// Target GMR (planSingle and planBatched; conservative segments
	// resolve their own).
	g  *GMR
	gr int

	// planSingle: one local view [local, local+span) described by
	// ltype, one remote region at disp described by rtype.
	local armci.Addr
	span  int
	ltype mpi.Datatype
	rtype mpi.Datatype
	disp  int

	// planBatched.
	segs  []planSeg
	batch int

	// planPerSeg.
	csegs []contigSeg
}

// nsegs reports how many MPI-level segments the plan will issue (for
// the issue/aggregation counters).
func (p *plan) nsegs() int {
	switch p.kind {
	case planBatched:
		return len(p.segs)
	case planPerSeg:
		return len(p.csegs)
	default:
		return 1
	}
}

// compileContig builds the plan for a contiguous transfer. The caller
// has already validated the request (CheckContig and, for accumulate,
// float64 alignment) and routed it. Direct near decisions become
// planNear; everything else resolves against the GMR as before.
func (r *Runtime) compileContig(class OpClass, scale float64, local, remote armci.Addr, n int, rt routed) (*plan, error) {
	if rt.dec.Direct {
		return &plan{
			class: class, scale: scale, kind: planNear,
			local: local, span: n, raddr: remote, dec: rt.dec,
		}, nil
	}
	g, gr, disp, err := r.remote(remote, n)
	if err != nil {
		return nil, err
	}
	t := mpi.TypeContiguous(n)
	return &plan{
		class: class, scale: scale, kind: planSingle,
		g: g, gr: gr, local: local, span: n, ltype: t, rtype: t, disp: disp,
		dec: rt.dec, stageBytes: rt.bytes,
	}, nil
}

// compileStrided builds the plan for a strided transfer using the
// routed method: the direct subarray translation (SectionVI.C), the
// IOV engine over the descriptor's segment expansion, or — for a
// near-tier descriptor — one contiguous segment per stride iteration,
// each re-entering the engine to be routed individually.
func (r *Runtime) compileStrided(class OpClass, scale float64, s *armci.Strided, rt routed) (*plan, error) {
	if rt.dec.PerSeg {
		seg := s.SegBytes()
		csegs := make([]contigSeg, 0, s.TotalBytes()/max(seg, 1))
		s.Iterate(func(so, do int) {
			c := contigSeg{local: s.Src.Add(so), remote: s.Dst.Add(do), n: seg}
			if class == ClassGet {
				c.local, c.remote = s.Dst.Add(do), s.Src.Add(so)
			}
			csegs = append(csegs, c)
		})
		return &plan{class: class, scale: scale, kind: planPerSeg, csegs: csegs, dec: rt.dec}, nil
	}
	if rt.dec.Method != MethodDirect {
		g := s.ToGIOV()
		proc := s.Dst.Rank
		if class == ClassGet {
			proc = s.Src.Rank
		}
		return r.compileIOV(class, scale, []armci.GIOV{g}, proc, rt)
	}
	localAddr, remoteAddr := s.Src, s.Dst
	localStride, remoteStride := s.SrcStride, s.DstStride
	localSpan, remoteSpan := s.SrcSpan(), s.DstSpan()
	if class == ClassGet {
		localAddr, remoteAddr = s.Dst, s.Src
		localStride, remoteStride = s.DstStride, s.SrcStride
		localSpan, remoteSpan = s.DstSpan(), s.SrcSpan()
	}
	g, gr, disp, err := r.remote(remoteAddr, remoteSpan)
	if err != nil {
		return nil, err
	}
	return &plan{
		class: class, scale: scale, kind: planSingle, g: g, gr: gr,
		local: localAddr, span: localSpan,
		ltype: r.stridedTypeCached(localStride, s.Count),
		rtype: r.stridedTypeCached(remoteStride, s.Count),
		disp:  disp,
		dec:   rt.dec, stageBytes: rt.bytes,
	}, nil
}

// compileIOV builds the plan for a generalized I/O vector transfer
// with the routed method (SectionVI.A). Near-tier descriptors compile
// to the per-segment plan regardless of method: each segment re-enters
// the engine and is routed on its own.
func (r *Runtime) compileIOV(class OpClass, scale float64, iov []armci.GIOV, proc int, rt routed) (*plan, error) {
	if err := armci.ValidateIOV(iov, proc, class == ClassGet); err != nil {
		return nil, err
	}
	segs := orient(iov, class)
	if len(segs) == 0 {
		return &plan{class: class, scale: scale, kind: planPerSeg, dec: rt.dec}, nil
	}
	p, err := func() (*plan, error) {
		if rt.dec.PerSeg {
			return r.compileConservative(class, scale, segs), nil
		}
		switch rt.dec.Method {
		case MethodConservative:
			return r.compileConservative(class, scale, segs), nil
		case MethodBatched:
			return r.compileBatched(class, scale, segs)
		case MethodIOVDirect, MethodDirect:
			return r.compileIOVDirect(class, scale, segs)
		case MethodAuto:
			return r.compileAuto(class, scale, segs)
		default:
			return nil, fmt.Errorf("armcimpi: unknown IOV method %v", rt.dec.Method)
		}
	}()
	if err != nil {
		return nil, err
	}
	p.dec, p.stageBytes = rt.dec, rt.bytes
	return p, nil
}

// compileAuto scans the descriptor with the conflict tree
// (SectionVI.B): if all remote segments fall in one GMR and the
// destination segments do not overlap, the fast method is safe;
// otherwise fall back to conservative. The overlap check runs on the
// destination side — the remote side for put and accumulate, the local
// side for get: two segments writing the same bytes within one epoch
// may land in either order, whereas overlapping get sources are
// read-read and harmless.
func (r *Runtime) compileAuto(class OpClass, scale float64, segs []iovSeg) (*plan, error) {
	r.W.AutoScans++
	safe := true
	tree := &r.scan
	tree.Reset()
	var g0 *GMR
	for _, sg := range segs {
		g, _, _, ok := r.W.find(sg.remote)
		if !ok {
			safe = false
			break
		}
		if g0 == nil {
			g0 = g
		} else if g != g0 {
			safe = false // segments correspond to different GMRs
			break
		}
		dst := sg.remote.VA
		if class == ClassGet {
			dst = sg.local.VA
		}
		if !tree.Insert(dst, dst+int64(sg.n)) {
			safe = false // overlapping destination segments
			break
		}
	}
	if !safe {
		r.W.AutoFalls++
		return r.compileConservative(class, scale, segs), nil
	}
	fast := r.Opt.AutoFast
	if fast != MethodBatched && fast != MethodIOVDirect {
		fast = MethodBatched
	}
	if fast == MethodBatched {
		return r.compileBatched(class, scale, segs)
	}
	return r.compileIOVDirect(class, scale, segs)
}

// compileConservative plans one contiguous operation per segment, each
// in its own epoch; segments may overlap and span GMRs.
func (r *Runtime) compileConservative(class OpClass, scale float64, segs []iovSeg) *plan {
	csegs := make([]contigSeg, len(segs))
	for i, sg := range segs {
		csegs[i] = contigSeg{local: sg.local, remote: sg.remote, n: sg.n}
	}
	return &plan{class: class, scale: scale, kind: planPerSeg, csegs: csegs}
}

// compileBatched plans up to BatchSize contiguous operations per
// epoch; all remote segments must fall in one GMR and not overlap, or
// MPI reports an error (SectionVI.B's motivation). Local buffers
// living in global space force the conservative plan (staging cannot
// be done while the remote epoch is open).
func (r *Runtime) compileBatched(class OpClass, scale float64, segs []iovSeg) (*plan, error) {
	for _, sg := range segs {
		if _, _, _, inGMR := r.W.find(sg.local); inGMR && !r.Opt.NoStaging {
			return r.compileConservative(class, scale, segs), nil
		}
	}
	if class == ClassGet {
		// Gets land in local destinations: aliased destinations within
		// one epoch would be written in arbitrary order, so serialize
		// them through the per-segment plan.
		tree := &r.scan
		tree.Reset()
		for _, sg := range segs {
			if !tree.Insert(sg.local.VA, sg.local.VA+int64(sg.n)) {
				return r.compileConservative(class, scale, segs), nil
			}
		}
	}
	g, gr, _, err := r.remoteGMR(segs[0].remote)
	if err != nil {
		return nil, err
	}
	base := g.addrs[gr]
	ps := make([]planSeg, len(segs))
	for i, sg := range segs {
		ps[i] = planSeg{local: sg.local, disp: int(sg.remote.VA - base.VA), n: sg.n}
	}
	return &plan{
		class: class, scale: scale, kind: planBatched,
		g: g, gr: gr, segs: ps, batch: r.Opt.BatchSize,
	}, nil
}

// compileIOVDirect plans one MPI indexed datatype per side and a
// single operation, letting MPI choose pack/unpack or batching
// (SectionVI.A's direct method).
func (r *Runtime) compileIOVDirect(class OpClass, scale float64, segs []iovSeg) (*plan, error) {
	g, gr, _, err := r.remoteGMR(segs[0].remote)
	if err != nil {
		return nil, err
	}
	base := g.addrs[gr]
	// Local side: offsets relative to the lowest local address.
	localBase := segs[0].local.VA
	for _, sg := range segs {
		if sg.local.VA < localBase {
			localBase = sg.local.VA
		}
	}
	localSpan := 0
	lOffs := make([]int, len(segs))
	lLens := make([]int, len(segs))
	rOffs := make([]int, len(segs))
	rLens := make([]int, len(segs))
	for i, sg := range segs {
		lOffs[i] = int(sg.local.VA - localBase)
		lLens[i] = sg.n
		if lOffs[i]+sg.n > localSpan {
			localSpan = lOffs[i] + sg.n
		}
		rOffs[i] = int(sg.remote.VA - base.VA)
		rLens[i] = sg.n
	}
	return &plan{
		class: class, scale: scale, kind: planSingle, g: g, gr: gr,
		local: armci.Addr{Rank: r.Rank(), VA: localBase}, span: localSpan,
		ltype: mpi.TypeIndexed(lOffs, lLens),
		rtype: mpi.TypeIndexed(rOffs, rLens),
		disp:  0,
	}, nil
}

// remoteGMR resolves a remote address to its GMR without a span check
// (per-segment checks happen via window bounds).
func (r *Runtime) remoteGMR(addr armci.Addr) (*GMR, int, int, error) {
	g, gr, disp, ok := r.W.find(addr)
	if !ok {
		return nil, 0, 0, fmt.Errorf("armcimpi: %v is not in any GMR", addr)
	}
	return g, gr, disp, nil
}
