package conflicttree

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestInsertDisjoint(t *testing.T) {
	var tr Tree
	for _, r := range [][2]int64{{0, 10}, {10, 20}, {30, 40}, {20, 30}} {
		if !tr.Insert(r[0], r[1]) {
			t.Fatalf("disjoint insert [%d,%d) rejected", r[0], r[1])
		}
	}
	if tr.Size() != 4 {
		t.Errorf("size = %d", tr.Size())
	}
}

func TestInsertOverlapRejected(t *testing.T) {
	var tr Tree
	tr.Insert(10, 20)
	cases := [][2]int64{
		{10, 20},           // identical
		{5, 11},            // overlaps low end
		{19, 25},           // overlaps high end
		{12, 18},           // contained
		{5, 25},            // encloses
		{0, math.MaxInt64}, // encloses everything
	}
	for _, c := range cases {
		if tr.Insert(c[0], c[1]) {
			t.Errorf("overlapping insert [%d,%d) accepted", c[0], c[1])
		}
	}
	if tr.Size() != 1 {
		t.Errorf("failed inserts changed the tree: size = %d", tr.Size())
	}
}

func TestEmptyAndInvertedRangesRejected(t *testing.T) {
	var tr Tree
	if tr.Insert(5, 5) || tr.Insert(7, 3) {
		t.Error("degenerate ranges accepted")
	}
}

func TestAdjacentRangesAllowed(t *testing.T) {
	var tr Tree
	if !tr.Insert(0, 8) || !tr.Insert(8, 16) {
		t.Error("touching half-open ranges should not conflict")
	}
}

func TestConflictsQuery(t *testing.T) {
	var tr Tree
	tr.Insert(100, 200)
	tr.Insert(300, 400)
	if tr.Conflicts(200, 300) {
		t.Error("gap reported as conflict")
	}
	if !tr.Conflicts(150, 160) || !tr.Conflicts(399, 500) {
		t.Error("overlap missed")
	}
	if tr.Conflicts(50, 50) {
		t.Error("empty range conflicts")
	}
}

func TestWalkInOrder(t *testing.T) {
	var tr Tree
	for _, lo := range []int64{50, 10, 90, 30, 70} {
		tr.Insert(lo, lo+5)
	}
	var prev int64 = -1
	tr.Walk(func(lo, hi int64) {
		if lo <= prev {
			t.Errorf("walk out of order at %d", lo)
		}
		prev = lo
	})
}

func TestAVLBalanceUnderSequentialInsert(t *testing.T) {
	var tr Tree
	n := 1 << 12
	for i := 0; i < n; i++ {
		if !tr.Insert(int64(i*10), int64(i*10+5)) {
			t.Fatalf("insert %d failed", i)
		}
	}
	// A balanced tree of 4096 nodes has height <= 1.44*log2(n) ~ 18.
	if h := tr.Height(); h > 20 {
		t.Errorf("height = %d after sequential inserts; AVL balancing broken", h)
	}
}

func TestPropertyMatchesNaiveChecker(t *testing.T) {
	// Property: the tree accepts exactly the ranges a naive O(N^2)
	// checker would accept, processed in the same order.
	type rg struct{ lo, hi int64 }
	check := func(seed int64, count uint8) bool {
		rnd := rand.New(rand.NewSource(seed))
		n := int(count%60) + 1
		var accepted []rg
		var tr Tree
		for i := 0; i < n; i++ {
			lo := int64(rnd.Intn(500))
			hi := lo + int64(rnd.Intn(30)) + 1
			naiveOK := true
			for _, a := range accepted {
				if lo < a.hi && a.lo < hi {
					naiveOK = false
					break
				}
			}
			treeOK := tr.Insert(lo, hi)
			if naiveOK != treeOK {
				return false
			}
			if naiveOK {
				accepted = append(accepted, rg{lo, hi})
			}
		}
		return tr.Size() == len(accepted)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPropertyHeightLogarithmic(t *testing.T) {
	check := func(seed int64) bool {
		rnd := rand.New(rand.NewSource(seed))
		var tr Tree
		for i := 0; i < 1000; i++ {
			lo := int64(rnd.Intn(1 << 20))
			tr.Insert(lo, lo+1)
		}
		if tr.Size() < 10 {
			return true
		}
		maxH := int(1.45*math.Log2(float64(tr.Size()))) + 2
		return tr.Height() <= maxH
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func BenchmarkTreeInsertDisjoint(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var tr Tree
		for j := int64(0); j < 1024; j++ {
			tr.Insert(j*16, j*16+16)
		}
	}
}

func BenchmarkNaiveInsertDisjoint(b *testing.B) {
	// The O(N^2) scan the paper's tree replaces.
	type rg struct{ lo, hi int64 }
	for i := 0; i < b.N; i++ {
		var acc []rg
		for j := int64(0); j < 1024; j++ {
			lo, hi := j*16, j*16+16
			ok := true
			for _, a := range acc {
				if lo < a.hi && a.lo < hi {
					ok = false
					break
				}
			}
			if ok {
				acc = append(acc, rg{lo, hi})
			}
		}
	}
}
