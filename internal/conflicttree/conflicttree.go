// Package conflicttree implements the paper's O(N log N) IOV overlap
// detector (SectionVI.B): a self-balancing (AVL) binary tree of
// disjoint address ranges with a merged check-and-insert operation.
// Inserting a range that overlaps an existing one fails and leaves the
// tree unchanged, signalling that the conservative transfer method
// must be used.
//
// The structure differs from an interval tree (CLRS) in that it only
// ever stores non-overlapping ranges and answers a single yes/no
// conflict question, which is all the IOV checker needs.
package conflicttree

// Tree is a set of disjoint half-open byte ranges [lo, hi).
// The zero value is an empty tree ready to use. A tree can be emptied
// with Reset, which recycles its nodes: callers that scan many
// descriptors (the IOV compiler) reuse one tree instead of allocating
// a node per range per scan.
type Tree struct {
	root *node
	size int
	free []*node // nodes recycled by Reset, available to Insert
}

type node struct {
	lo, hi      int64
	left, right *node
	height      int
}

func height(n *node) int {
	if n == nil {
		return 0
	}
	return n.height
}

func (n *node) update() {
	hl, hr := height(n.left), height(n.right)
	if hl > hr {
		n.height = hl + 1
	} else {
		n.height = hr + 1
	}
}

func (n *node) balance() int { return height(n.left) - height(n.right) }

func rotateRight(y *node) *node {
	x := y.left
	y.left = x.right
	x.right = y
	y.update()
	x.update()
	return x
}

func rotateLeft(x *node) *node {
	y := x.right
	x.right = y.left
	y.left = x
	x.update()
	y.update()
	return y
}

func rebalance(n *node) *node {
	n.update()
	switch b := n.balance(); {
	case b > 1:
		if n.left.balance() < 0 {
			n.left = rotateLeft(n.left)
		}
		return rotateRight(n)
	case b < -1:
		if n.right.balance() > 0 {
			n.right = rotateRight(n.right)
		}
		return rotateLeft(n)
	}
	return n
}

// Size returns the number of stored ranges.
func (t *Tree) Size() int { return t.size }

// Reset empties the tree, recycling every node for reuse by later
// Inserts.
func (t *Tree) Reset() {
	var rec func(n *node)
	rec = func(n *node) {
		if n == nil {
			return
		}
		rec(n.left)
		rec(n.right)
		n.left, n.right = nil, nil
		t.free = append(t.free, n)
	}
	rec(t.root)
	t.root = nil
	t.size = 0
}

// alloc takes a recycled node if one is available.
func (t *Tree) alloc(lo, hi int64) *node {
	if k := len(t.free); k > 0 {
		n := t.free[k-1]
		t.free = t.free[:k-1]
		*n = node{lo: lo, hi: hi, height: 1}
		return n
	}
	return &node{lo: lo, hi: hi, height: 1}
}

// Insert attempts to add [lo, hi). It returns false — leaving the tree
// unchanged — if the range is empty, inverted, or overlaps any stored
// range; the check and the insertion are a single traversal.
func (t *Tree) Insert(lo, hi int64) bool {
	if lo >= hi {
		return false
	}
	root, ok := t.insert(t.root, lo, hi)
	if !ok {
		return false
	}
	t.root = root
	t.size++
	return true
}

func (t *Tree) insert(n *node, lo, hi int64) (*node, bool) {
	if n == nil {
		return t.alloc(lo, hi), true
	}
	switch {
	case hi <= n.lo:
		child, ok := t.insert(n.left, lo, hi)
		if !ok {
			return nil, false
		}
		n.left = child
	case lo >= n.hi:
		child, ok := t.insert(n.right, lo, hi)
		if !ok {
			return nil, false
		}
		n.right = child
	default:
		// lo or hi falls inside [n.lo, n.hi), or the new range encloses
		// it: a conflict must be reported here — because the tree is
		// ordered on disjoint ranges, an overlapping stored range cannot
		// hide in a subtree we would not visit.
		return nil, false
	}
	return rebalance(n), true
}

// Conflicts reports whether [lo, hi) overlaps any stored range, without
// inserting. Empty ranges never conflict.
func (t *Tree) Conflicts(lo, hi int64) bool {
	if lo >= hi {
		return false
	}
	n := t.root
	for n != nil {
		switch {
		case hi <= n.lo:
			n = n.left
		case lo >= n.hi:
			n = n.right
		default:
			return true
		}
	}
	return false
}

// Height returns the tree height (for balance tests).
func (t *Tree) Height() int { return height(t.root) }

// Walk visits stored ranges in ascending order.
func (t *Tree) Walk(fn func(lo, hi int64)) {
	var rec func(n *node)
	rec = func(n *node) {
		if n == nil {
			return
		}
		rec(n.left)
		fn(n.lo, n.hi)
		rec(n.right)
	}
	rec(t.root)
}
