package nwchem

import (
	"fmt"

	"repro/internal/mpi"
)

// Triples runs the perturbative (T) proxy. The (T) correction is
// O(no^3 nv^4): for each occupied triple (i<=j<=k) and each virtual
// block, amplitudes and integrals are fetched one-sidedly and a large
// local contraction is performed; the result is a scalar energy
// contribution, so the phase is get- and compute-dominated with no
// accumulate traffic — matching SectionVII.D's description of the
// expensive (T) calculation. Tasks are drawn from the NXTVAL counter.
func (s *System) Triples() (Result, error) {
	p := s.P
	nb := p.nblocks()
	ntrip := p.NO * (p.NO + 1) * (p.NO + 2) / 6 // i<=j<=k triples
	ntasks := ntrip * nb
	var res Result
	start := s.Env.Rt.Proc().Now()
	if err := s.resetCounter(); err != nil {
		return res, err
	}
	local := 0.0
	oo := p.oo()
	for {
		tc, err := s.nextTasks()
		if err != nil {
			return res, err
		}
		if tc >= int64(ntasks) {
			break
		}
		tcEnd := tc + s.P.chunk()
		if tcEnd > int64(ntasks) {
			tcEnd = int64(ntasks)
		}
		for t := tc; t < tcEnd; t++ {
			ab := int(t) % nb
			abLo, abHi := p.blockRange(ab)
			nab := abHi - abLo + 1
			// Fetch the amplitude panel and two integral panels this triple
			// needs (three one-sided gets, as TCE's (T) loops issue).
			t2 := make([]float64, oo*nab)
			if err := s.T2.Get([]int{0, abLo}, []int{oo - 1, abHi}, t2); err != nil {
				return res, fmt.Errorf("nwchem: (T) task %d: %w", t, err)
			}
			v1 := make([]float64, nab*min(nab, p.vv()))
			if err := s.V.Get([]int{abLo, 0}, []int{abHi, min(nab, p.vv()) - 1}, v1); err != nil {
				return res, err
			}
			v2 := make([]float64, nab)
			if err := s.V.Get([]int{abLo, abLo}, []int{abLo, abHi}, v2); err != nil {
				return res, err
			}
			// The triples contraction is ~no x more work per byte than the
			// CCSD ladder: charge 2 * no^3 * nab^2 flops.
			flops := 2.0 * float64(p.NO*p.NO*p.NO) * float64(nab) * float64(nab) * p.flopMult()
			s.M.Compute(s.Env.Rt.Proc(), flops)
			res.Flops += flops
			if p.Numeric {
				acc := 0.0
				for i := 0; i < len(t2); i += 7 {
					acc += t2[i]
				}
				for i := 0; i < len(v1); i += 11 {
					acc -= 0.5 * v1[i]
				}
				local += acc / float64(ntasks)
			}
			res.Tasks++
		}
	}
	s.Env.Sync()
	sum := s.Env.GopF64(mpi.OpSum, []float64{local})
	res.Energy = sum[0]
	res.Elapsed = s.Env.Rt.Proc().Now() - start
	return res, nil
}
