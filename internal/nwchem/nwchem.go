// Package nwchem implements a computational-chemistry proxy
// application reproducing the communication structure of NWChem's
// CCSD(T) coupled-cluster kernels over Global Arrays (paper SectionII.A
// and SectionVII.C/D): block-sparse tensor contractions expressed as
// get -> local DGEMM -> accumulate over distributed arrays, with
// dynamic load balancing through the shared NXTVAL counter
// (GA_Read_inc), and a get- and compute-dominated perturbative triples
// phase.
//
// The chemistry is synthetic — deterministic pseudo-amplitudes instead
// of molecular integrals — but the runtime-visible behaviour (message
// sizes, operation mix, counter contention, flop/byte ratios as
// functions of no and nv) follows the CCSD(T) cost model
// O(no^2 nv^4) for CCSD iterations and O(no^3 nv^4) for (T).
package nwchem

import (
	"fmt"

	"repro/internal/fabric"
	"repro/internal/ga"
	"repro/internal/sim"
)

// Params sizes the calculation. The paper's w5 system has NO=20,
// NV=435 (SectionVII.C); tests and simulations use scaled versions
// with the same shape.
type Params struct {
	NO   int // correlated occupied orbitals
	NV   int // virtual orbitals
	Blk  int // column-block size of the ab/cd superindex tiling
	Iter int // CCSD iterations
	// Chunk is the number of tasks claimed per NXTVAL draw (real
	// NWChem's tasks are coarse enough that counter traffic is
	// amortized; chunking models that granularity). 0 or 1 = one task
	// per draw.
	Chunk int
	// FlopMult scales the virtual flops charged per contraction
	// without changing the data movement, standing in for the much
	// larger per-task arithmetic of the real CCSD(T) kernels relative
	// to the scaled-down array sizes the simulation can hold. 0 = 1.
	FlopMult float64
	// Numeric computes the contractions for real so results can be
	// verified against a serial reference; benchmarks leave it false
	// and only charge virtual flops (the data still moves).
	Numeric bool
}

// W5Scaled returns parameters shaped like the paper's water-pentamer
// benchmark, scaled down by the given factor (1 = full w5: no=20,
// nv=435 — far too large to simulate; typical scales are 8-16).
func W5Scaled(scale int) Params {
	if scale < 1 {
		scale = 1
	}
	no := 20 / min(scale, 5)
	if no < 2 {
		no = 2
	}
	nv := 435 / scale
	if nv < 8 {
		nv = 8
	}
	blk := nv * nv / 8
	if blk < 16 {
		blk = 16
	}
	return Params{NO: no, NV: nv, Blk: blk, Iter: 2}
}

// Validate reports the first problem with the parameters.
func (p *Params) Validate() error {
	switch {
	case p.NO < 1 || p.NV < 1:
		return fmt.Errorf("nwchem: need NO,NV >= 1 (got %d,%d)", p.NO, p.NV)
	case p.Blk < 1:
		return fmt.Errorf("nwchem: block size %d", p.Blk)
	case p.Iter < 1:
		return fmt.Errorf("nwchem: iterations %d", p.Iter)
	}
	return nil
}

// dims of the matricized tensors.
func (p *Params) oo() int { return p.NO * p.NO }
func (p *Params) vv() int { return p.NV * p.NV }

// nblocks returns the number of column blocks of the vv superindex.
func (p *Params) nblocks() int { return (p.vv() + p.Blk - 1) / p.Blk }

// blockRange returns the inclusive column range of block b.
func (p *Params) blockRange(b int) (lo, hi int) {
	lo = b * p.Blk
	hi = lo + p.Blk - 1
	if hi >= p.vv() {
		hi = p.vv() - 1
	}
	return lo, hi
}

// Result reports one phase's outcome.
type Result struct {
	Energy  float64  // synthetic correlation-energy functional
	Tasks   int      // tasks this process executed (load balance)
	Flops   float64  // virtual flops this process charged
	Elapsed sim.Time // virtual wall time of the phase (max over ranks is taken by the caller)
}

// amplitude is the synthetic initial guess: a smooth deterministic
// function of the global indices, so every rank fills its own block
// without communication and a serial reference can recompute it.
func amplitude(row, col int) float64 {
	x := float64((row*31+col*17)%97) / 97.0
	return 0.05 + 0.9*x*x - 0.4*x
}

// integral is the synthetic two-electron integral matrix V[cd,ab].
func integral(row, col int) float64 {
	x := float64((row*13+col*29)%89) / 89.0
	return 0.3 - x*0.6 + 0.1*x*x
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// fillMatrix initializes a 2-D global array from f(row, col), each
// rank writing its own block through direct local access.
func fillMatrix(a *ga.Array, f func(r, c int) float64) error {
	blk, err := a.Access()
	if err != nil {
		return nil // ranks without a block have nothing to fill
	}
	d := blk.Dims()
	for i := 0; i < d[0]; i++ {
		for j := 0; j < d[1]; j++ {
			blk.SetF64(f(blk.Lo[0]+i, blk.Lo[1]+j), i, j)
		}
	}
	return blk.Release()
}

// System bundles the global arrays of one CCSD(T) calculation.
type System struct {
	P   Params
	Env *ga.Env
	M   *fabric.Machine

	T2      *ga.Array // amplitudes, (no*no) x (nv*nv)
	V       *ga.Array // integrals, (nv*nv) x (nv*nv)
	R       *ga.Array // residual, (no*no) x (nv*nv)
	Counter *ga.Array // NXTVAL dynamic load-balancing counter
}

// Setup collectively creates and initializes the arrays.
func Setup(e *ga.Env, m *fabric.Machine, p Params) (*System, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	s := &System{P: p, Env: e, M: m}
	var err error
	if s.T2, err = e.Create("t2", ga.F64, []int{p.oo(), p.vv()}); err != nil {
		return nil, err
	}
	if s.V, err = e.Create("v2", ga.F64, []int{p.vv(), p.vv()}); err != nil {
		return nil, err
	}
	if s.R, err = e.Create("resid", ga.F64, []int{p.oo(), p.vv()}); err != nil {
		return nil, err
	}
	if s.Counter, err = e.Create("nxtval", ga.I64, []int{1}); err != nil {
		return nil, err
	}
	if err := fillMatrix(s.T2, amplitude); err != nil {
		return nil, err
	}
	if err := fillMatrix(s.V, integral); err != nil {
		return nil, err
	}
	e.Sync()
	return s, nil
}

// Teardown collectively destroys the arrays.
func (s *System) Teardown() error {
	for _, a := range []*ga.Array{s.T2, s.V, s.R, s.Counter} {
		if err := a.Destroy(); err != nil {
			return err
		}
	}
	return nil
}

// chunk returns the task-claim granularity.
func (p *Params) chunk() int64 {
	if p.Chunk < 1 {
		return 1
	}
	return int64(p.Chunk)
}

// flopMult returns the arithmetic-intensity multiplier.
func (p *Params) flopMult() float64 {
	if p.FlopMult <= 0 {
		return 1
	}
	return p.FlopMult
}

// nextTasks draws a chunk of task ids [t, t+chunk) from the NXTVAL
// counter.
func (s *System) nextTasks() (int64, error) {
	return s.Counter.ReadInc([]int{0}, s.P.chunk())
}

// resetCounter collectively rewinds the NXTVAL counter.
func (s *System) resetCounter() error {
	return s.Counter.FillI64(0)
}
