package nwchem

import (
	"math"
	"testing"

	"repro/internal/armcimpi"
	"repro/internal/ga"
	"repro/internal/harness"
	"repro/internal/sim"
)

// runProxy executes the proxy on n ranks under the given implementation
// and returns the rank-0 result plus the final virtual time.
func runProxy(t *testing.T, n int, impl harness.Impl, p Params, triples bool) (Result, sim.Time) {
	t.Helper()
	j, err := harness.NewJob(harness.TestPlatform(), n, impl, armcimpi.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	var out Result
	totalTasks := 0
	err = j.Eng.Run(n, func(pr *sim.Proc) {
		rt := j.Runtime(pr)
		env := ga.NewEnv(rt, j.MpiWorld.Rank(pr))
		sys, err := Setup(env, j.M, p)
		if err != nil {
			t.Error(err)
			return
		}
		var res Result
		if triples {
			res, err = sys.Triples()
		} else {
			res, err = sys.CCSD()
		}
		if err != nil {
			t.Error(err)
			return
		}
		totalTasks += res.Tasks
		if rt.Rank() == 0 {
			out = res
		}
		if err := sys.Teardown(); err != nil {
			t.Error(err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	out.Tasks = totalTasks
	return out, j.Eng.Stats().FinalTime
}

// serialReference computes R = T2 * V and the energy functional
// directly.
func serialReference(p Params) float64 {
	oo, vv := p.oo(), p.vv()
	t2 := make([]float64, oo*vv)
	v := make([]float64, vv*vv)
	for i := 0; i < oo; i++ {
		for j := 0; j < vv; j++ {
			t2[i*vv+j] = amplitude(i, j)
		}
	}
	for i := 0; i < vv; i++ {
		for j := 0; j < vv; j++ {
			v[i*vv+j] = integral(i, j)
		}
	}
	r := make([]float64, oo*vv)
	for i := 0; i < oo; i++ {
		for k := 0; k < vv; k++ {
			a := t2[i*vv+k]
			for j := 0; j < vv; j++ {
				r[i*vv+j] += a * v[k*vv+j]
			}
		}
	}
	e := 0.0
	for i := range r {
		e += t2[i] * r[i]
	}
	return e
}

func TestCCSDMatchesSerialReference(t *testing.T) {
	p := Params{NO: 3, NV: 6, Blk: 10, Iter: 1, Numeric: true}
	want := serialReference(p)
	for _, impl := range []harness.Impl{harness.ImplNative, harness.ImplARMCIMPI} {
		impl := impl
		t.Run(string(impl), func(t *testing.T) {
			res, _ := runProxy(t, 4, impl, p, false)
			if math.Abs(res.Energy-want) > 1e-9*math.Abs(want)+1e-12 {
				t.Errorf("energy = %.12g, serial reference %.12g", res.Energy, want)
			}
		})
	}
}

func TestCCSDIterationIdempotent(t *testing.T) {
	// R is zeroed per iteration, so 3 iterations give the same energy
	// as 1.
	p1 := Params{NO: 2, NV: 4, Blk: 8, Iter: 1, Numeric: true}
	p3 := p1
	p3.Iter = 3
	r1, _ := runProxy(t, 2, harness.ImplARMCIMPI, p1, false)
	r3, _ := runProxy(t, 2, harness.ImplARMCIMPI, p3, false)
	if math.Abs(r1.Energy-r3.Energy) > 1e-9 {
		t.Errorf("energy changed across iterations: %v vs %v", r1.Energy, r3.Energy)
	}
}

func TestAllTasksExecutedExactlyOnce(t *testing.T) {
	p := Params{NO: 2, NV: 8, Blk: 16, Iter: 2}
	res, _ := runProxy(t, 4, harness.ImplARMCIMPI, p, false)
	nb := p.nblocks()
	want := nb * nb * p.Iter
	if res.Tasks != want {
		t.Errorf("executed %d tasks, want %d", res.Tasks, want)
	}
}

func TestTriplesTasksAndEnergyConsistency(t *testing.T) {
	p := Params{NO: 3, NV: 6, Blk: 12, Iter: 1, Numeric: true}
	var energies []float64
	for _, impl := range []harness.Impl{harness.ImplNative, harness.ImplARMCIMPI} {
		res, _ := runProxy(t, 3, impl, p, true)
		ntrip := p.NO * (p.NO + 1) * (p.NO + 2) / 6
		if want := ntrip * p.nblocks(); res.Tasks != want {
			t.Errorf("%s: (T) executed %d tasks, want %d", impl, res.Tasks, want)
		}
		energies = append(energies, res.Energy)
	}
	if math.Abs(energies[0]-energies[1]) > 1e-9 {
		t.Errorf("(T) energy differs across runtimes: %v vs %v", energies[0], energies[1])
	}
}

func TestMoreRanksFasterVirtualTime(t *testing.T) {
	// The proxy must exhibit strong scaling in virtual time. The problem
	// carries real per-task flops: a compute-free run is communication
	// bound, and two ranks sharing a node (all traffic on the shm fast
	// path) then beat any larger cross-node job.
	p := Params{NO: 4, NV: 16, Blk: 32, Iter: 1, FlopMult: 40}
	_, t2 := runProxy(t, 2, harness.ImplARMCIMPI, p, false)
	_, t8 := runProxy(t, 8, harness.ImplARMCIMPI, p, false)
	if t8 >= t2 {
		t.Errorf("8 ranks (%v) not faster than 2 ranks (%v)", t8, t2)
	}
}

func TestW5ScaledShapes(t *testing.T) {
	p := W5Scaled(16)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.NO < 2 || p.NV < 8 {
		t.Errorf("scaled params degenerate: %+v", p)
	}
	full := W5Scaled(1)
	if full.NO != 20 || full.NV != 435 {
		t.Errorf("unscaled w5 = %+v, want no=20 nv=435", full)
	}
}

func TestParamsValidate(t *testing.T) {
	bad := []Params{
		{NO: 0, NV: 4, Blk: 4, Iter: 1},
		{NO: 2, NV: 0, Blk: 4, Iter: 1},
		{NO: 2, NV: 4, Blk: 0, Iter: 1},
		{NO: 2, NV: 4, Blk: 4, Iter: 0},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d accepted: %+v", i, p)
		}
	}
}

func TestLoadBalanceSpreadsTasks(t *testing.T) {
	// With enough tasks, the NXTVAL counter spreads work across ranks:
	// no rank should execute everything.
	p := Params{NO: 4, NV: 12, Blk: 16, Iter: 1}
	j, err := harness.NewJob(harness.TestPlatform(), 4, harness.ImplARMCIMPI, armcimpi.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	perRank := make([]int, 4)
	err = j.Eng.Run(4, func(pr *sim.Proc) {
		rt := j.Runtime(pr)
		env := ga.NewEnv(rt, j.MpiWorld.Rank(pr))
		sys, err := Setup(env, j.M, p)
		if err != nil {
			t.Error(err)
			return
		}
		res, err := sys.CCSD()
		if err != nil {
			t.Error(err)
			return
		}
		perRank[rt.Rank()] = res.Tasks
		if err := sys.Teardown(); err != nil {
			t.Error(err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	busiest := 0
	for _, c := range perRank {
		total += c
		if c > busiest {
			busiest = c
		}
	}
	if total == 0 {
		t.Fatal("no tasks ran")
	}
	if busiest == total && total > 8 {
		t.Errorf("one rank executed all %d tasks; load balancing broken (%v)", total, perRank)
	}
}
