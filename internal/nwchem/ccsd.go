package nwchem

import "fmt"

// CCSD runs the iterative CCSD proxy: in each iteration the residual
// R[ij,ab] = sum_cd T2[ij,cd] * V[cd,ab] is evaluated as a dynamically
// load-balanced tiled contraction — the particle-particle ladder term
// that dominates CCSD's O(no^2 nv^4) cost. Each task (cd-block,
// ab-block) performs:
//
//	get T2[:, cd]  ->  get V[cd, ab]  ->  local DGEMM  ->  acc R[:, ab]
//
// which is exactly the get/compute/accumulate pattern the paper's
// evaluation stresses, and the task queue is drained via the shared
// NXTVAL counter (GA_Read_inc). Collective; returns per-rank results.
func (s *System) CCSD() (Result, error) {
	p := s.P
	nb := p.nblocks()
	ntasks := nb * nb
	var res Result
	start := s.Env.Rt.Proc().Now()
	for it := 0; it < p.Iter; it++ {
		if err := s.resetCounter(); err != nil {
			return res, err
		}
		if err := s.R.Zero(); err != nil {
			return res, err
		}
		for {
			t, err := s.nextTasks()
			if err != nil {
				return res, err
			}
			if t >= int64(ntasks) {
				break
			}
			for k := t; k < t+s.P.chunk() && k < int64(ntasks); k++ {
				if err := s.ccsdTask(int(k), &res); err != nil {
					return res, fmt.Errorf("nwchem: ccsd task %d: %w", k, err)
				}
			}
		}
		s.Env.Sync()
	}
	// Synthetic energy functional: E = sum_ij,ab T2[ij,ab]*R[ij,ab],
	// evaluated over the local block and reduced.
	e, err := s.energy()
	if err != nil {
		return res, err
	}
	res.Energy = e
	res.Elapsed = s.Env.Rt.Proc().Now() - start
	return res, nil
}

// ccsdTask executes one (cd-block, ab-block) contraction tile.
func (s *System) ccsdTask(task int, res *Result) error {
	p := s.P
	nb := p.nblocks()
	cd, ab := task/nb, task%nb
	cdLo, cdHi := p.blockRange(cd)
	abLo, abHi := p.blockRange(ab)
	ncd := cdHi - cdLo + 1
	nab := abHi - abLo + 1
	oo := p.oo()

	// Get T2[:, cdLo:cdHi] and V[cdLo:cdHi, abLo:abHi].
	t2 := make([]float64, oo*ncd)
	if err := s.T2.Get([]int{0, cdLo}, []int{oo - 1, cdHi}, t2); err != nil {
		return err
	}
	v := make([]float64, ncd*nab)
	if err := s.V.Get([]int{cdLo, abLo}, []int{cdHi, abHi}, v); err != nil {
		return err
	}
	// Local DGEMM: r = t2 (oo x ncd) * v (ncd x nab).
	flops := 2.0 * float64(oo) * float64(ncd) * float64(nab) * p.flopMult()
	s.M.Compute(s.Env.Rt.Proc(), flops)
	res.Flops += flops
	r := make([]float64, oo*nab)
	if p.Numeric {
		for i := 0; i < oo; i++ {
			for k := 0; k < ncd; k++ {
				a := t2[i*ncd+k]
				if a == 0 {
					continue
				}
				row := v[k*nab:]
				out := r[i*nab:]
				for j := 0; j < nab; j++ {
					out[j] += a * row[j]
				}
			}
		}
	}
	// Accumulate into the residual.
	if err := s.R.Acc([]int{0, abLo}, []int{oo - 1, abHi}, r, 1.0); err != nil {
		return err
	}
	res.Tasks++
	return nil
}

// energy evaluates the synthetic correlation functional
// sum(T2 .* R) over the local R block, reduced across all ranks.
func (s *System) energy() (float64, error) {
	local := 0.0
	blk, err := s.R.Access()
	if err == nil {
		d := blk.Dims()
		t2 := make([]float64, d[0]*d[1])
		// Direct access to R plus a get of the matching T2 patch.
		if err := blk.Release(); err != nil {
			return 0, err
		}
		lo := blk.Lo
		hi := blk.Hi
		rvals := make([]float64, d[0]*d[1])
		if err := s.R.Get(lo, hi, rvals); err != nil {
			return 0, err
		}
		if err := s.T2.Get(lo, hi, t2); err != nil {
			return 0, err
		}
		for i := range rvals {
			local += t2[i] * rvals[i]
		}
	}
	sum := s.Env.GopF64(0, []float64{local})
	return sum[0], nil
}
