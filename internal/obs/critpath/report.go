package critpath

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"repro/internal/obs/profile"
	"repro/internal/sim"
)

// errWriter folds the error handling of a report's many prints.
type errWriter struct {
	w   io.Writer
	err error
}

func (e *errWriter) printf(format string, args ...any) {
	if e.err != nil {
		return
	}
	_, e.err = fmt.Fprintf(e.w, format, args...)
}

func pct(part, whole sim.Time) float64 {
	if whole == 0 {
		return 0
	}
	return 100 * float64(part) / float64(whole)
}

// tables derives the report's sorted views from the aggregate.
type tables struct {
	total    sim.Time
	byPhase  [numPhases]sim.Time
	flat     [profile.NumPhases]sim.Time
	flatTot  sim.Time
	byOp     map[uint8]sim.Time
	byNic    map[int32]sim.Time
	byRank   map[int32]sim.Time
	chainKys []chainKey
}

func (r *Rec) tables() *tables {
	t := &tables{
		byOp:   map[uint8]sim.Time{},
		byNic:  map[int32]sim.Time{},
		byRank: map[int32]sim.Time{},
	}
	for _, j := range r.agg.jobs {
		t.total += j.Makespan
	}
	for k, ns := range r.agg.cells {
		if int(k.ph) < numPhases {
			t.byPhase[k.ph] += ns
		}
		t.byOp[k.op] += ns
		t.byNic[k.nic] += ns
		t.byRank[k.rank] += ns
	}
	for op := profile.Op(0); op < profile.NumOps; op++ {
		for ph := profile.Phase(0); ph < profile.NumPhases; ph++ {
			for _, h := range r.flat.PhaseHists(op, ph) {
				t.flat[ph] += sim.Time(h.SumNs)
			}
		}
	}
	for _, f := range t.flat {
		t.flatTot += f
	}
	t.chainKys = make([]chainKey, 0, len(r.agg.chains))
	for k := range r.agg.chains {
		t.chainKys = append(t.chainKys, k)
	}
	sort.Slice(t.chainKys, func(i, j int) bool {
		a, b := t.chainKys[i], t.chainKys[j]
		av, bv := r.agg.chains[a].ns, r.agg.chains[b].ns
		if av != bv {
			return av > bv
		}
		if a.why != b.why {
			return a.why < b.why
		}
		return a.from < b.from
	})
	return t
}

func sortedI32(m map[int32]sim.Time) []int32 {
	ks := make([]int32, 0, len(m))
	for k := range m {
		if m[k] != 0 {
			ks = append(ks, k)
		}
	}
	sort.Slice(ks, func(i, j int) bool { return ks[i] < ks[j] })
	return ks
}

// WriteReport writes the mpiP-style critical-path report: per-job
// invariants, per-phase critical share contrasted against the flat
// profiler share, critical time by operation, the top wait chains with
// the releasing rank named, and critical time by NIC and by rank. The
// current job is flushed first.
func (r *Rec) WriteReport(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.Flush()
	t := r.tables()
	e := &errWriter{w: w}

	e.printf("armci-crit: critical-path report (virtual time)\n")
	e.printf("jobs analyzed: %d   total critical time: %d ns (== sum of job makespans)\n\n",
		len(r.agg.jobs), t.total)

	e.printf("per-job invariant (path sum == makespan):\n")
	e.printf("  %-44s %14s %14s %6s %6s\n", "job", "makespan_ns", "path_ns", "segs", "start")
	for _, j := range r.agg.jobs {
		mark := ""
		if j.PathNs != j.Makespan {
			mark = "  VIOLATED"
		}
		e.printf("  %-44s %14d %14d %6d %6d%s\n",
			j.Label, j.Makespan, j.PathNs, j.Segments, j.Start, mark)
	}

	e.printf("\ncritical time by phase (vs flat profiler attribution):\n")
	e.printf("  %-14s %14s %7s %14s %7s\n", "phase", "crit_ns", "crit%", "flat_ns", "flat%")
	for ph := 0; ph < numPhases; ph++ {
		var flat sim.Time
		if ph < int(profile.NumPhases) {
			flat = t.flat[ph]
		}
		if t.byPhase[ph] == 0 && flat == 0 {
			continue
		}
		e.printf("  %-14s %14d %6.2f%% %14d %6.2f%%\n",
			PhaseName(uint8(ph)), t.byPhase[ph], pct(t.byPhase[ph], t.total),
			flat, pct(flat, t.flatTot))
	}

	e.printf("\ncritical time by operation:\n")
	e.printf("  %-8s %14s %7s\n", "op", "crit_ns", "crit%")
	for op := uint8(0); op <= opNone; op++ {
		if ns := t.byOp[op]; ns != 0 {
			e.printf("  %-8s %14d %6.2f%%\n", OpName(op), ns, pct(ns, t.total))
		}
	}

	e.printf("\ntop wait chains (critical waits by park reason x releasing rank):\n")
	e.printf("  %-24s %8s %8s %14s %7s\n", "why", "by-rank", "count", "wait_ns", "crit%")
	for i, k := range t.chainKys {
		if i >= 20 {
			e.printf("  ... %d more\n", len(t.chainKys)-i)
			break
		}
		v := r.agg.chains[k]
		by := fmt.Sprintf("%d", k.from)
		if k.from < 0 {
			by = "local"
		}
		e.printf("  %-24s %8s %8d %14d %6.2f%%\n", k.why, by, v.count, v.ns, pct(v.ns, t.total))
	}

	e.printf("\ncritical time by NIC:\n")
	e.printf("  %-6s %14s %7s\n", "nic", "crit_ns", "crit%")
	for _, nic := range sortedI32(t.byNic) {
		name := fmt.Sprintf("%d", nic)
		if nic < 0 {
			name = "-"
		}
		e.printf("  %-6s %14d %6.2f%%\n", name, t.byNic[nic], pct(t.byNic[nic], t.total))
	}

	e.printf("\ncritical time by rank (top 10):\n")
	e.printf("  %-6s %14s %7s\n", "rank", "crit_ns", "crit%")
	ranks := sortedI32(t.byRank)
	sort.SliceStable(ranks, func(i, j int) bool { return t.byRank[ranks[i]] > t.byRank[ranks[j]] })
	for i, rank := range ranks {
		if i >= 10 {
			e.printf("  ... %d more\n", len(ranks)-i)
			break
		}
		e.printf("  %-6d %14d %6.2f%%\n", rank, t.byRank[rank], pct(t.byRank[rank], t.total))
	}
	return e.err
}

// --- JSON artifact ---------------------------------------------------

type jobJSON struct {
	Label      string `json:"label"`
	MakespanNs int64  `json:"makespan_ns"`
	PathNs     int64  `json:"path_ns"`
	Segments   int    `json:"segments"`
	StartRank  int    `json:"start_rank"`
}

type phaseJSON struct {
	Phase  string `json:"phase"`
	CritNs int64  `json:"crit_ns"`
	FlatNs int64  `json:"flat_ns"`
}

type opJSON struct {
	Op     string `json:"op"`
	CritNs int64  `json:"crit_ns"`
}

type nicJSON struct {
	Nic    int   `json:"nic"`
	CritNs int64 `json:"crit_ns"`
}

type rankJSON struct {
	Rank   int   `json:"rank"`
	CritNs int64 `json:"crit_ns"`
}

type chainJSON struct {
	Why    string `json:"why"`
	From   int    `json:"from"`
	Count  int64  `json:"count"`
	WaitNs int64  `json:"wait_ns"`
}

type critDoc struct {
	Schema  string      `json:"schema"`
	TotalNs int64       `json:"total_ns"`
	Jobs    []jobJSON   `json:"jobs"`
	Phases  []phaseJSON `json:"phases"`
	Ops     []opJSON    `json:"ops"`
	Nics    []nicJSON   `json:"nics"`
	Ranks   []rankJSON  `json:"ranks"`
	Chains  []chainJSON `json:"chains"`
}

// WriteJSON writes the deterministic CRIT artifact: virtual-time
// attribution only (no hop references, no host times), with every
// table in a fixed sort order, so repeated runs — at any shard count —
// produce byte-identical files. The current job is flushed first.
func (r *Rec) WriteJSON(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.Flush()
	t := r.tables()
	doc := critDoc{
		Schema:  "armci-crit/1",
		TotalNs: int64(t.total),
		Jobs:    []jobJSON{},
		Phases:  []phaseJSON{},
		Ops:     []opJSON{},
		Nics:    []nicJSON{},
		Ranks:   []rankJSON{},
		Chains:  []chainJSON{},
	}
	for _, j := range r.agg.jobs {
		doc.Jobs = append(doc.Jobs, jobJSON{Label: j.Label,
			MakespanNs: int64(j.Makespan), PathNs: int64(j.PathNs),
			Segments: j.Segments, StartRank: j.Start})
	}
	for ph := 0; ph < numPhases; ph++ {
		var flat sim.Time
		if ph < int(profile.NumPhases) {
			flat = t.flat[ph]
		}
		if t.byPhase[ph] == 0 && flat == 0 {
			continue
		}
		doc.Phases = append(doc.Phases, phaseJSON{Phase: PhaseName(uint8(ph)),
			CritNs: int64(t.byPhase[ph]), FlatNs: int64(flat)})
	}
	for op := uint8(0); op <= opNone; op++ {
		if ns := t.byOp[op]; ns != 0 {
			doc.Ops = append(doc.Ops, opJSON{Op: OpName(op), CritNs: int64(ns)})
		}
	}
	for _, nic := range sortedI32(t.byNic) {
		doc.Nics = append(doc.Nics, nicJSON{Nic: int(nic), CritNs: int64(t.byNic[nic])})
	}
	for _, rank := range sortedI32(t.byRank) {
		doc.Ranks = append(doc.Ranks, rankJSON{Rank: int(rank), CritNs: int64(t.byRank[rank])})
	}
	for _, k := range t.chainKys {
		v := r.agg.chains[k]
		doc.Chains = append(doc.Chains, chainJSON{Why: k.why, From: int(k.from),
			Count: v.count, WaitNs: int64(v.ns)})
	}
	b, err := json.MarshalIndent(&doc, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}
