package critpath

import (
	"repro/internal/obs/profile"
	"repro/internal/sim"
)

// Job is one analyzed job's invariant record: the walk's segment
// durations (PathNs) must sum exactly to the makespan.
type Job struct {
	Label    string
	Makespan sim.Time
	PathNs   sim.Time
	Segments int
	Start    int // rank the walk started from (last to finish)
}

// cellKey is one attribution cell of the critical path:
// rank × operation × extended phase × NIC.
type cellKey struct {
	rank int32
	op   uint8
	ph   uint8
	nic  int32
}

// chainKey aggregates critical wait intervals by park reason and the
// rank at the other end of the releasing edge (-1: rank-local wait).
type chainKey struct {
	why  string
	from int32
}

type chainVal struct {
	count int64
	ns    sim.Time
}

// agg accumulates analyzed jobs.
type agg struct {
	jobs   []Job
	cells  map[cellKey]sim.Time
	chains map[chainKey]chainVal
}

func newAgg() agg {
	return agg{cells: map[cellKey]sim.Time{}, chains: map[chainKey]chainVal{}}
}

// merge folds o into a (additive everywhere; job records concatenate).
func (a *agg) merge(o *agg) {
	a.jobs = append(a.jobs, o.jobs...)
	for k, v := range o.cells {
		a.cells[k] += v
	}
	for k, v := range o.chains {
		c := a.chains[k]
		c.count += v.count
		c.ns += v.ns
		a.chains[k] = c
	}
}

// view is one job's complete log set: per-rank waits, activities, and
// finish times, plus the hop tables of every shard (index = shard id)
// for Ref resolution.
type view struct {
	label  string
	waits  [][]wait
	acts   [][]act
	scopes [][]span
	fins   []sim.Time
	tabs   [][]hop
}

func (v *view) resolve(ref Ref) (hop, bool) {
	shard := int(ref >> refIdxBits)
	idx := int(ref&(1<<refIdxBits-1)) - 1
	if shard >= len(v.tabs) || idx < 0 || idx >= len(v.tabs[shard]) {
		return hop{}, false
	}
	return v.tabs[shard][idx], true
}

// walker is the backward critical-path walk state.
type walker struct {
	v   *view
	agg *agg

	wi []int // per-rank wait cursor: index one past the next candidate
	ai []int // per-rank activity cursor, same convention
	si []int // per-rank scope cursor, same convention

	path sim.Time
	segs int
}

// analyze computes the critical path of one job and folds its
// attribution into agg. The walk starts at the last rank to finish
// (smallest id on ties) and moves the time frontier from the makespan
// back to zero; every step emits segments exactly tiling the interval
// it consumes, so the emitted durations sum to the makespan.
func analyze(v view, out *agg) {
	start, makespan := -1, sim.Time(-1)
	for rank, f := range v.fins {
		if f > makespan {
			start, makespan = rank, f
		}
	}
	if start < 0 {
		return // no rank finished: nothing recorded
	}
	// Close any wait left open (a drained or deadlocked rank) at that
	// rank's own finish horizon so the logs stay well-formed.
	for rank := range v.waits {
		if ws := v.waits[rank]; len(ws) > 0 && ws[len(ws)-1].end < 0 {
			f := v.fins[rank]
			if f < ws[len(ws)-1].start {
				f = ws[len(ws)-1].start
			}
			ws[len(ws)-1].end = f
			ws[len(ws)-1].cause = 0
		}
	}
	w := &walker{v: &v, agg: out,
		wi: make([]int, len(v.waits)), ai: make([]int, len(v.waits)),
		si: make([]int, len(v.waits))}
	for rank := range v.waits {
		w.wi[rank] = len(v.waits[rank])
		w.ai[rank] = len(v.acts[rank])
		w.si[rank] = len(v.scopes[rank])
	}

	rank, t := start, makespan
	for t > 0 {
		wt := w.popWait(rank, t)
		if wt == nil {
			// No wait before t: the rank computed straight through.
			w.emitRange(rank, 0, t, false, "", -1)
			t = 0
			break
		}
		if wt.end <= t {
			// Activity between the wait's end and the frontier.
			w.emitRange(rank, wt.end, t, false, "", -1)
			t = wt.end
			if h, ok := v.resolve(wt.cause); ok {
				rank, t = w.unwind(h, rank, t, wt.why)
			} else {
				// Rank-local wait (self-completion, elapse-like).
				w.emitRange(rank, wt.start, t, true, wt.why, -1)
				t = wt.start
			}
		} else {
			// Frontier landed mid-wait: the jump target was itself
			// blocked when it released us. Attribute up to the wait's
			// start; its own cause explains a later instant, not this
			// one, so the walk stays on this rank.
			from := -1
			if h, ok := v.resolve(wt.cause); ok {
				from = h.from
			}
			w.emitRange(rank, wt.start, t, true, wt.why, from)
			t = wt.start
		}
	}

	out.jobs = append(out.jobs, Job{
		Label:    v.label,
		Makespan: makespan,
		PathNs:   w.path,
		Segments: w.segs,
		Start:    start,
	})
}

// popWait returns rank's latest wait starting strictly before t and
// consumes it. The frontier is globally non-increasing, so the
// per-rank descending cursor never has to back up.
func (w *walker) popWait(rank int, t sim.Time) *wait {
	if rank >= len(w.wi) {
		return nil
	}
	ws := w.v.waits[rank]
	i := w.wi[rank]
	for i > 0 && ws[i-1].start >= t {
		i--
	}
	if i == 0 {
		w.wi[rank] = 0
		return nil
	}
	w.wi[rank] = i - 1
	return &ws[i-1]
}

// unwind follows a dependence edge chain backward from the wait that
// ended at t on rank, emitting the wire and handler segments of each
// hop, and returns the rank and time the walk continues from.
func (w *walker) unwind(h hop, rank int, t sim.Time, why string) (int, sim.Time) {
	if h.kind == hopGrant {
		// Lock grant: the whole wait is bound by the releasing rank.
		s := clamp(h.sent, 0, t)
		w.emitRange(rank, s, t, true, why, h.from)
		if h.from < 0 {
			return rank, s // direct grant: stay local
		}
		return h.from, s
	}
	cur := t
	for {
		arr := clamp(h.arr, 0, cur)
		xfer := clamp(h.xfer, 0, arr)
		sent := clamp(h.sent, 0, xfer)
		// [arr, cur): delivery-to-release residual on the waiting rank
		// (and, on chained hops, the handler time of the hop above).
		w.emitRange(rank, arr, cur, true, why, h.from)
		// Wire segments belong to the sender: serialization and
		// propagation, then the time queued behind the link. An
		// arbitration hop is pure queueing behind the destination NIC.
		wirePh := uint8(profile.PhaseWire)
		if h.kind == hopArb {
			wirePh = uint8(profile.PhaseWireQueue)
		}
		w.emit(rank2(h.from), xfer, arr, opNone, wirePh, h.nicS)
		w.emit(rank2(h.from), sent, xfer, opNone, uint8(profile.PhaseWireQueue), h.nicS)
		rank, cur = h.from, sent
		prev, ok := w.v.resolve(h.prev)
		if !ok {
			return rank, cur
		}
		h = prev
	}
}

func rank2(r int) int {
	if r < 0 {
		return -1
	}
	return r
}

func clamp(x, lo, hi sim.Time) sim.Time {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// emitRange attributes [lo, hi) on rank through the activity log:
// covered parts keep their recorded (op, phase); gaps become "local"
// execution or, inside a wait, "blocked" time credited to the wait
// chain (why, from).
func (w *walker) emitRange(rank int, lo, hi sim.Time, blocked bool, why string, from int) {
	if hi <= lo {
		return
	}
	if blocked {
		ck := chainKey{why: why, from: int32(from)}
		c := w.agg.chains[ck]
		c.count++
		c.ns += hi - lo
		w.agg.chains[ck] = c
	}
	var acts []act
	i := 0
	if rank >= 0 && rank < len(w.ai) {
		acts = w.v.acts[rank]
		i = w.ai[rank]
	}
	for i > 0 && acts[i-1].start >= hi {
		i--
	}
	end := hi
	for i > 0 && acts[i-1].end > lo {
		ac := acts[i-1]
		s, e := ac.start, ac.end
		if s < lo {
			s = lo
		}
		if e > end {
			e = end
		}
		if e < end {
			w.gap(rank, e, end, blocked)
		}
		w.emit(rank, s, e, ac.op, ac.ph, -1)
		end = s
		if ac.start < lo {
			// The activity extends below this range; a later, lower
			// range on this rank may still need its remainder.
			break
		}
		i--
	}
	if end > lo {
		w.gap(rank, lo, end, blocked)
	}
	if rank >= 0 && rank < len(w.ai) {
		w.ai[rank] = i
	}
}

// gap attributes an interval no activity covered: "local" execution
// (or "blocked" inside a wait), labeled with the operation scope that
// contained it when the scope log has one.
func (w *walker) gap(rank int, lo, hi sim.Time, blocked bool) {
	ph := phLocal
	if blocked {
		ph = phBlocked
	}
	var ss []span
	i := 0
	if rank >= 0 && rank < len(w.si) {
		ss = w.v.scopes[rank]
		i = w.si[rank]
	}
	for i > 0 && ss[i-1].start >= hi {
		i--
	}
	end := hi
	for i > 0 && ss[i-1].end > lo {
		sp := ss[i-1]
		s, e := sp.start, sp.end
		if s < lo {
			s = lo
		}
		if e > end {
			e = end
		}
		if e < end {
			w.emit(rank, e, end, opNone, ph, -1)
		}
		w.emit(rank, s, e, sp.op, ph, -1)
		end = s
		if sp.start < lo {
			// The scope extends below this range; a later, lower range
			// on this rank may still need its remainder.
			break
		}
		i--
	}
	if end > lo {
		w.emit(rank, lo, end, opNone, ph, -1)
	}
	if rank >= 0 && rank < len(w.si) {
		w.si[rank] = i
	}
}

// emit records one critical-path segment. Every nanosecond of the
// makespan flows through here exactly once.
func (w *walker) emit(rank int, lo, hi sim.Time, op, ph uint8, nic int) {
	if hi <= lo {
		return
	}
	w.agg.cells[cellKey{rank: int32(rank), op: op, ph: ph, nic: int32(nic)}] += hi - lo
	w.path += hi - lo
	w.segs++
}
