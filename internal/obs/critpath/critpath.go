// Package critpath is the critical-path and wait-chain analyzer: a
// happens-before recorder over the simulator's deterministic virtual
// time plus an exact longest-path engine that attributes every
// nanosecond of a job's makespan to the dependence chain that actually
// bounds it.
//
// The recorder collects three per-job logs, all in virtual time:
//
//   - per-rank wait intervals (from the scheduler's park/resume
//     observer), each carrying the dependence edge that released it —
//     the delivered fabric message or the lock-queue grant;
//   - per-rank activity intervals: the profiler's raw phase
//     attributions (forwarded through profile.Sink before the scope
//     and cursor gating), clamped to a per-rank monotone cursor so
//     they form a sorted, non-overlapping cover of on-CPU time;
//   - a hop table of dependence edges: fabric message
//     send→queue→wire→delivery records (Deliver and DeliverSharded),
//     destination NIC arbitration extensions, and lock/mutex grant
//     edges, chained through an ambient provenance reference when a
//     message is sent from inside another message's delivery handler
//     (rendezvous, data-server service, leader staging).
//
// When a job closes, analyze walks backward from the last rank to
// finish: activity before a wait is attributed via the activity log,
// each wait jumps through its releasing edge — unwinding chained hops
// into wire.queue / wire.xfer segments on the sending rank — and the
// walk continues on the rank at the other end of the edge. Every step
// emits segments that exactly tile the frontier interval it consumes,
// so the segment durations telescope: their sum equals the job
// makespan by construction, the invariant the tests pin.
//
// Like the rest of internal/obs, every recording method is nil-safe (a
// nil *Rec no-ops at the cost of one branch) and warmed record paths
// allocate nothing. Multi-shard parallel runs give each shard a
// private Rec (obs.Sharded wires this); Merge stitches the per-shard
// logs back into one exact view, with hop references resolving across
// shards through the shard id packed into every reference.
package critpath

import (
	"repro/internal/obs/profile"
	"repro/internal/sim"
)

// Clock supplies the current virtual time; obs.Recorder's job clocks
// satisfy it.
type Clock interface {
	Now() sim.Time
}

// Ref identifies a recorded dependence edge: shard id in the high
// bits, 1-based hop index in the low 40. Zero means "no edge".
type Ref uint64

const refIdxBits = 40

func (r *Rec) pack(idx int) Ref {
	return Ref(r.shard)<<refIdxBits | Ref(idx+1)
}

// Edge kinds in the hop table.
const (
	hopMsg   uint8 = iota // fabric message: sent → queue end → delivery
	hopArb                // destination NIC arbitration delay (sharded)
	hopGrant              // lock/mutex queue grant by a releasing rank
)

// hop is one dependence edge.
type hop struct {
	kind uint8
	from int      // sending rank (msg/arb) or releasing rank (grant)
	sent sim.Time // injection time at the origin / release time
	xfer sim.Time // msg: wire-serialization start (queue end)
	arr  sim.Time // delivery time at the destination
	nicS int      // origin NIC node, -1 if none (same-node)
	nicD int      // destination NIC node, -1 if none
	prev Ref      // provenance: the edge whose handler sent this one
}

// wait is one recorded park interval on a rank. end < 0 while open.
type wait struct {
	start, end sim.Time
	why        string
	cause      Ref
}

// act is one activity interval: a raw profiler phase attribution after
// the per-rank cursor clamp.
type act struct {
	start, end sim.Time
	op         uint8 // profile.Op, or opNone
	ph         uint8 // profile.Phase
}

// span is one completed operation scope on a rank. Scopes are
// sequential per rank, so each log is sorted and non-overlapping; the
// walk uses it to label time no phase attribution covered with the
// operation that contained it.
type span struct {
	start, end sim.Time
	op         uint8
}

// opNone labels segments with no open operation scope.
const opNone = uint8(profile.NumOps)

// Pseudo-phases appended after profile's phase space for segments the
// profiler did not cover.
const (
	// phLocal is on-CPU execution not attributed to any phase.
	phLocal = uint8(profile.NumPhases)
	// phBlocked is wait time not covered by any phase attribution.
	phBlocked = uint8(profile.NumPhases) + 1

	// numPhases is the extended phase count.
	numPhases = int(profile.NumPhases) + 2
)

// PhaseName names an extended phase (profile phases plus the local and
// blocked pseudo-phases).
func PhaseName(ph uint8) string {
	switch {
	case ph < uint8(profile.NumPhases):
		return profile.Phase(ph).String()
	case ph == phLocal:
		return "local"
	case ph == phBlocked:
		return "blocked"
	}
	return "?"
}

// OpName names an operation, with opNone rendered as "-".
func OpName(op uint8) string {
	if op == opNone {
		return "-"
	}
	return profile.Op(op).String()
}

// Rec records one shard's dependence edges and per-rank logs. The
// cooperative scheduler (or the shard worker, in parallel mode)
// guarantees single-threaded access.
type Rec struct {
	shard int
	clock Clock
	label string
	open  bool // a job is being recorded

	waits  [][]wait
	acts   [][]act
	scopes [][]span
	cursor []sim.Time // per-rank activity clamp
	cause  []Ref      // pending wake cause, consumed by Resumed
	fins   []sim.Time // per-rank finish time, -1 until finished
	hops   []hop

	ambient Ref // provenance of the running delivery handler, if any

	// partial marks a per-shard sub-recorder: its logs cover only its
	// own ranks, so BeginJob never analyzes locally — Merge builds the
	// global view instead.
	partial bool

	flat *profile.Profiler // flat-attribution source for the report
	agg  agg               // closed-job aggregate
}

// New creates a recorder for a single-shard (sequential or solo
// parallel) run. flat, when non-nil, supplies the flat profiler
// aggregation the report contrasts critical shares against.
func New(flat *profile.Profiler) *Rec {
	return &Rec{flat: flat, agg: newAgg()}
}

// NewShard creates shard's private sub-recorder for a multi-shard
// parallel run. Its logs are partial (its own ranks only); Merge
// combines the shards into an analyzable whole.
func NewShard(shard int, flat *profile.Profiler) *Rec {
	r := New(flat)
	r.shard = shard
	r.partial = true
	return r
}

// BeginJob opens a new job: any previously recorded job is analyzed
// into the aggregate first (on partial shard recorders the analysis is
// deferred to Merge), then the per-job logs reset. label names the job
// in the per-job invariant table.
func (r *Rec) BeginJob(label string, clock Clock) {
	if r == nil {
		return
	}
	r.Flush()
	r.clock = clock
	r.label = label
	r.open = true
}

// Flush analyzes the currently recorded job, if any, folding its
// critical path into the aggregate and resetting the per-job logs.
// The report writers call it implicitly.
func (r *Rec) Flush() {
	if r == nil || !r.open {
		return
	}
	r.open = false
	if !r.partial {
		v := view{
			label:  r.label,
			waits:  r.waits,
			acts:   r.acts,
			scopes: r.scopes,
			fins:   r.fins,
			tabs:   [][]hop{r.hops},
		}
		analyze(v, &r.agg)
	}
	r.reset()
}

// reset clears the per-job logs, keeping backing arrays for reuse.
func (r *Rec) reset() {
	for i := range r.waits {
		r.waits[i] = r.waits[i][:0]
	}
	for i := range r.acts {
		r.acts[i] = r.acts[i][:0]
	}
	for i := range r.scopes {
		r.scopes[i] = r.scopes[i][:0]
	}
	for i := range r.cursor {
		r.cursor[i] = 0
	}
	for i := range r.cause {
		r.cause[i] = 0
	}
	for i := range r.fins {
		r.fins[i] = -1
	}
	r.hops = r.hops[:0]
	r.ambient = 0
}

// growRank materializes per-rank state up to rank (appended records
// are zeroed even when the backing arrays are reused), so idle ranks
// of a large job cost nothing.
func (r *Rec) growRank(rank int) {
	for len(r.waits) <= rank {
		r.waits = append(r.waits, nil)
		r.acts = append(r.acts, nil)
		r.scopes = append(r.scopes, nil)
		r.cursor = append(r.cursor, 0)
		r.cause = append(r.cause, 0)
		r.fins = append(r.fins, -1)
	}
}

// --- scheduler hooks (forwarded by obs.Recorder) ---------------------

// Parked records the start of a wait on rank. Any stale pending cause
// is cleared: causes name the edge that ends this wait, not an
// earlier one.
func (r *Rec) Parked(rank int, why string, at sim.Time) {
	if r == nil || rank < 0 {
		return
	}
	r.growRank(rank)
	r.cause[rank] = 0
	r.waits[rank] = append(r.waits[rank], wait{start: at, end: -1, why: why})
}

// Resumed closes rank's open wait, attaching the pending wake cause
// (if a dependence hook named one).
func (r *Rec) Resumed(rank int, at sim.Time) {
	if r == nil || rank < 0 || rank >= len(r.waits) {
		return
	}
	ws := r.waits[rank]
	if n := len(ws); n > 0 && ws[n-1].end < 0 {
		ws[n-1].end = at
		ws[n-1].cause = r.cause[rank]
	}
	r.cause[rank] = 0
}

// Finished records rank's completion time (sim.FinishObserver via
// obs.Recorder). The job makespan is the maximum over ranks.
func (r *Rec) Finished(rank int, at sim.Time) {
	if r == nil || rank < 0 {
		return
	}
	r.growRank(rank)
	if at > r.fins[rank] {
		r.fins[rank] = at
	}
}

// --- dependence edges ------------------------------------------------

// MsgHop records a fabric message edge: injected at sent by from,
// started serializing at xfer (the wire-queue end), delivered at arr.
// prev chains the provenance of a message sent from inside a delivery
// handler. Returns the reference the message carries to its
// destination.
func (r *Rec) MsgHop(from int, sent, xfer, arr sim.Time, nicS, nicD int, prev Ref) Ref {
	if r == nil {
		return 0
	}
	r.hops = append(r.hops, hop{kind: hopMsg, from: from,
		sent: sent, xfer: xfer, arr: arr, nicS: nicS, nicD: nicD, prev: prev})
	return r.pack(len(r.hops) - 1)
}

// ArbHop extends a message edge with a destination-NIC arbitration
// delay (the sharded delivery path re-queues behind the destination
// link): the message was due at sent but landed at arr.
func (r *Rec) ArbHop(from int, sent, arr sim.Time, nicD int, prev Ref) Ref {
	if r == nil {
		return 0
	}
	r.hops = append(r.hops, hop{kind: hopArb, from: from,
		sent: sent, xfer: sent, arr: arr, nicS: nicD, nicD: nicD, prev: prev})
	return r.pack(len(r.hops) - 1)
}

// WakeCause names the edge that is about to release rank's open wait.
// The first cause wins: a rank woken by one arrival stays attributed
// to it even if later deliveries pile on before it runs.
func (r *Rec) WakeCause(rank int, cause Ref) {
	if r == nil || rank < 0 || cause == 0 {
		return
	}
	r.growRank(rank)
	if r.cause[rank] == 0 {
		r.cause[rank] = cause
	}
}

// WakeGrant records a lock/mutex grant edge — rank's wait ends because
// releasing rank by released the resource at sent — and names it as
// the pending wake cause. by < 0 (an uncontended direct grant) records
// a local edge the walk treats as rank-local wait.
func (r *Rec) WakeGrant(rank, by int, sent sim.Time) {
	if r == nil || rank < 0 {
		return
	}
	r.growRank(rank)
	if r.cause[rank] != 0 {
		return
	}
	r.hops = append(r.hops, hop{kind: hopGrant, from: by, sent: sent})
	r.cause[rank] = r.pack(len(r.hops) - 1)
}

// WakeAmbient names the running delivery handler's provenance as
// rank's wake cause (a handler that explicitly unparks a waiter, e.g.
// the rendezvous sender released by the clear-to-send arrival).
func (r *Rec) WakeAmbient(rank int) {
	if r == nil {
		return
	}
	r.WakeCause(rank, r.ambient)
}

// Ambient returns the provenance of the running delivery handler.
func (r *Rec) Ambient() Ref {
	if r == nil {
		return 0
	}
	return r.ambient
}

// SetAmbient installs the provenance of a delivery handler about to
// run, returning the previous value for restoration.
func (r *Rec) SetAmbient(ref Ref) (prev Ref) {
	if r == nil {
		return 0
	}
	prev = r.ambient
	r.ambient = ref
	return prev
}

// --- profiler sink ---------------------------------------------------

// RawPhase implements profile.Sink: every raw phase attribution, with
// the open operation (or profile.NumOps when none), before the
// profiler's scope and cursor gating. The per-rank cursor clamp keeps
// the activity log sorted and non-overlapping.
func (r *Rec) RawPhase(rank int, op profile.Op, ph profile.Phase, start, end sim.Time) {
	if r == nil || rank < 0 || !r.open {
		return
	}
	r.growRank(rank)
	if start < r.cursor[rank] {
		start = r.cursor[rank]
	}
	if end <= start {
		return
	}
	r.cursor[rank] = end
	r.acts[rank] = append(r.acts[rank], act{start: start, end: end, op: uint8(op), ph: uint8(ph)})
}

// RawScope implements the scope half of profile.Sink: one completed
// operation scope on rank. Scopes close in increasing end order and
// never overlap, so the log stays sorted without clamping.
func (r *Rec) RawScope(rank int, op profile.Op, start, end sim.Time) {
	if r == nil || rank < 0 || !r.open || end <= start {
		return
	}
	r.growRank(rank)
	r.scopes[rank] = append(r.scopes[rank], span{start: start, end: end, op: uint8(op)})
}

// --- shard merge -----------------------------------------------------

// Merge stitches the per-shard sub-recorders of a parallel run into
// one analyzable recorder, in shard id order. Each rank lives on
// exactly one shard, so the per-rank logs are disjoint and their union
// is exact; hop references resolve across shards through the shard id
// packed into every Ref. The current (un-analyzed) job of the shards
// is analyzed here as one global job; flat supplies the merged
// profiler for the report. Call it only after the run has completed.
func Merge(shards []*Rec, flat *profile.Profiler) *Rec {
	out := New(flat)
	if len(shards) == 0 || shards[0] == nil {
		return out
	}
	v := view{label: shards[0].label, tabs: make([][]hop, len(shards))}
	for i, s := range shards {
		v.tabs[i] = s.hops
		for rank := range s.waits {
			for len(v.waits) <= rank {
				v.waits = append(v.waits, nil)
				v.acts = append(v.acts, nil)
				v.scopes = append(v.scopes, nil)
				v.fins = append(v.fins, -1)
			}
			if len(s.waits[rank]) > 0 {
				v.waits[rank] = s.waits[rank]
			}
			if len(s.acts[rank]) > 0 {
				v.acts[rank] = s.acts[rank]
			}
			if len(s.scopes[rank]) > 0 {
				v.scopes[rank] = s.scopes[rank]
			}
			if s.fins[rank] > v.fins[rank] {
				v.fins[rank] = s.fins[rank]
			}
		}
		// Closed-job aggregates of the shards (normally empty: sharded
		// fronts record one job per run) carry over additively.
		out.agg.merge(&s.agg)
		s.open = false
	}
	analyze(v, &out.agg)
	return out
}

// Jobs returns the per-job invariant records analyzed so far,
// flushing the current job first.
func (r *Rec) Jobs() []Job {
	if r == nil {
		return nil
	}
	r.Flush()
	return r.agg.jobs
}
