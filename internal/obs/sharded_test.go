package obs

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/obs/profile"
	"repro/internal/sim"
)

const (
	shNRanks    = 8
	shRounds    = 5
	shLookahead = sim.Time(1000)
)

// shardedWorkload is a shard-confined exchange (cross-shard effects
// only through AtRank at >= Lookahead) instrumented through rec, which
// maps a rank to the recorder its shard owns: counters, time metrics,
// histograms, gauges, spans, instants, profiler scopes, per-node link
// telemetry (rank r lives on node r/2), and parks via the engine
// observer hookup the caller installs.
func shardedWorkload(e *sim.Engine, rec func(r int) *Recorder) func(*sim.Proc) {
	inbox := make([]int, shNRanks)
	waiting := make([]*sim.Proc, shNRanks)
	return func(p *sim.Proc) {
		r := p.ID()
		partner := (r + shNRanks/2) % shNRanks
		for i := 0; i < shRounds; i++ {
			o := rec(r)
			pr := o.Prof()
			start := p.Now()
			pr.Begin(r, profile.OpPut)
			p.Elapse(sim.Time(200 + 31*r + 7*i))
			pr.PhaseAt(r, profile.PhaseWire, start, p.Now())
			pr.Send(r, partner, profile.MsgPut, profile.RouteRMA, 64+r)
			pr.End(r)
			o.Inc(r, "test.sends")
			o.AddTime(r, "test.busy", p.Now()-start)
			o.Observe(r, "test.step", p.Now()-start)
			o.MaxGauge(r, "test.round", int64(i+1))
			o.LinkBusy(r/2, sim.Time(50+r))
			o.Span(r, "test", "step", start, p.Now())
			at := p.Now() + shLookahead + sim.Time(13*r+5*i)
			e.AtRank(at, r, partner, func() {
				d := rec(partner)
				d.Inc(partner, "test.arrivals")
				d.Instant(partner, "net", "arrive", at)
				inbox[partner]++
				if w := waiting[partner]; w != nil {
					waiting[partner] = nil
					e.Unpark(w)
				}
			})
		}
		for inbox[r] < shRounds {
			waiting[r] = p
			p.Park("recv")
		}
	}
}

// runShardedSeq drives the workload sequentially with one Recorder.
func runShardedSeq(t *testing.T) *Recorder {
	t.Helper()
	e := sim.NewEngine()
	e.Mode = sim.ModeGoroutine
	r := New(Options{Trace: true, Profile: true})
	r.BeginJob("sharded-test", e, shNRanks)
	e.Observe(r)
	if err := e.Run(shNRanks, shardedWorkload(e, func(int) *Recorder { return r })); err != nil {
		t.Fatal(err)
	}
	return r
}

// runShardedPar drives the workload under ModeParallel with k shards,
// each with its private recorder, and returns the merged view.
func runShardedPar(t *testing.T, k int) *Recorder {
	t.Helper()
	e := sim.NewEngine()
	e.Mode = sim.ModeParallel
	e.Shards = k
	e.Lookahead = shLookahead
	s := NewSharded(Options{Trace: true, Profile: true}, k)
	e.ShardObservers = s.Observers()
	s.BeginJob("sharded-test", func(i int) Clock { return e.ShardClock(i) }, shNRanks)
	rec := func(r int) *Recorder { return s.Rec(e.ShardOf(r, shNRanks)) }
	if err := e.Run(shNRanks, shardedWorkload(e, rec)); err != nil {
		t.Fatal(err)
	}
	return s.Merge()
}

func diffI64(t *testing.T, what string, got, want []int64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d, want %d", what, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("%s[%d] = %d, want %d", what, i, got[i], want[i])
		}
	}
}

func diffTime(t *testing.T, what string, got, want []sim.Time) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d, want %d", what, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("%s[%d] = %v, want %v", what, i, got[i], want[i])
		}
	}
}

// TestShardedMergeEqualsSequential: the merged per-shard registries of
// a multi-shard run are the exact union a sequential run produces —
// counters, time metrics, histograms, gauges, link telemetry, park
// accounting, and profiler attribution all agree rank for rank.
func TestShardedMergeEqualsSequential(t *testing.T) {
	ref := runShardedSeq(t)
	for _, k := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("shards=%d", k), func(t *testing.T) {
			got := runShardedPar(t, k)
			gm, rm := got.Metrics(), ref.Metrics()
			for _, name := range []string{"test.sends", "test.arrivals"} {
				diffI64(t, name, gm.Counter(name), rm.Counter(name))
			}
			diffTime(t, "test.busy", gm.TimeOf("test.busy"), rm.TimeOf("test.busy"))
			diffTime(t, "sched.park:recv", gm.TimeOf("sched.park:recv"), rm.TimeOf("sched.park:recv"))
			diffI64(t, "test.round", gm.Gauge("test.round"), rm.Gauge("test.round"))
			diffTime(t, "links", gm.Links(), rm.Links())
			gh, rh := gm.HistOf("test.step"), rm.HistOf("test.step")
			if len(gh) != len(rh) {
				t.Fatalf("hist ranks %d, want %d", len(gh), len(rh))
			}
			for i := range rh {
				if *gh[i] != *rh[i] {
					t.Errorf("hist[%d] = %+v, want %+v", i, gh[i], rh[i])
				}
			}
			gp, rp := got.Prof(), ref.Prof()
			gt, rt := gp.TotalHists(profile.OpPut), rp.TotalHists(profile.OpPut)
			if len(gt) != len(rt) {
				t.Fatalf("profile totals ranks %d, want %d", len(gt), len(rt))
			}
			for i := range rt {
				if gt[i] != rt[i] {
					t.Errorf("profile total[%d] = %+v, want %+v", i, gt[i], rt[i])
				}
			}
			gc, rc := gp.Cells(), rp.Cells()
			if len(gc) != len(rc) {
				t.Fatalf("profile cells %d, want %d", len(gc), len(rc))
			}
			for i := range rc {
				if gc[i] != rc[i] {
					t.Errorf("profile cell[%d] = %+v, want %+v", i, gc[i], rc[i])
				}
			}
		})
	}
}

// TestShardedTraceDeterministic: two identical multi-shard runs export
// byte-identical traces (per-shard buffers flushed in shard order),
// and job metadata appears exactly once in the merged stream.
func TestShardedTraceDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	if err := runShardedPar(t, 4).WriteTrace(&a); err != nil {
		t.Fatal(err)
	}
	if err := runShardedPar(t, 4).WriteTrace(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("merged trace differs between identical runs")
	}
	if n := bytes.Count(a.Bytes(), []byte(`"process_name"`)); n != 1 {
		t.Fatalf("process_name metadata appears %d times, want 1", n)
	}
	if a.Len() < 1000 {
		t.Fatalf("suspiciously small trace: %d bytes", a.Len())
	}
}

// TestShardedStatsJSON: the merged recorder feeds the standard report
// writers and its stats export is byte-stable across runs.
func TestShardedStatsJSON(t *testing.T) {
	var a, b bytes.Buffer
	if err := runShardedPar(t, 2).WriteStatsJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := runShardedPar(t, 2).WriteStatsJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("merged stats JSON differs between identical runs")
	}
}
