package obs

import (
	"math/bits"

	"repro/internal/sim"
)

// Metric names used by the instrumented layers. Counters count events
// or bytes; "time" metrics accumulate virtual nanoseconds.
const (
	// MPI RMA layer (internal/mpi).
	COpsPut         = "rma.put.ops"         // puts issued
	COpsGet         = "rma.get.ops"         // gets issued
	COpsAcc         = "rma.acc.ops"         // accumulates issued
	COpsAmo         = "rma.amo.ops"         // fetch-and-op / compare-and-swap
	CBytesContig    = "rma.bytes.contig"    // payload bytes moved with contiguous datatypes
	CBytesPacked    = "rma.bytes.packed"    // payload bytes moved through datatype pack paths
	CBytesShm       = "rma.bytes.shm"       // payload bytes moved through the intra-node shm path
	CShmCopies      = "shm.copy"            // shared-memory segment copies (no NIC, no registration)
	CEpochs         = "epoch.count"         // passive-target epochs opened
	CEpochFlush     = "epoch.flush"         // MPI-3 flush / flush-all calls
	CPackBytes      = "dt.pack.bytes"       // bytes packed from noncontiguous origin layouts
	TLockWaitShared = "lock.wait.shared"    // time from lock request to grant (shared)
	TLockWaitExcl   = "lock.wait.exclusive" // time from lock request to grant (exclusive)
	TPack           = "dt.pack.time"        // origin-side datatype pack time
	HLockWait       = "lock.wait"           // lock-acquire wait histogram (all lock types)

	// ARMCI-MPI layer (internal/armcimpi).
	CGmrAlloc   = "gmr.alloc"         // GMR allocations (Malloc/MallocGroup)
	CGmrBytes   = "gmr.bytes"         // bytes exposed in GMRs
	CGmrFree    = "gmr.free"          // GMR frees
	CStaged     = "armci.staged"      // global-buffer staging events
	CPlanExec   = "plan.exec"         // transfer plans executed
	CPlanSegs   = "plan.segs"         // MPI-level segments issued by plans
	CNbIssued   = "nb.issued"         // request-based nonblocking operations issued
	CNbDone     = "nb.done"           // request-based operations completed at Wait/Test
	TMutexWait  = "mutex.wait"        // RMW mutex acquisition wait
	GMutexQueue = "mutex.queue.depth" // max waiters seen behind a mutex

	// Fabric (internal/fabric).
	CFabMsgs  = "fab.msgs"  // messages injected by the rank
	CFabBytes = "fab.bytes" // bytes injected by the rank

	// Data server (internal/dataserver).
	CDsRequests = "ds.requests" // requests sent to remote data servers
	TDsWait     = "ds.wait"     // time requests spent queued at servers

	// Transfer-plan routing layer (internal/armcimpi route.go): one
	// op/byte pair per route, emitted from the engine's single
	// RoutePolicy decision point. Per-segment re-entries of an already
	// routed descriptor inherit the descriptor's decision and are not
	// re-counted.
	CRouteSelf        = "route.self.ops"     // decisions routed to the load-store tier
	CRouteSelfBytes   = "route.self.bytes"   // payload bytes behind those decisions
	CRouteNode        = "route.node.ops"     // decisions routed to the same-node shm tier
	CRouteNodeBytes   = "route.node.bytes"   // payload bytes behind those decisions
	CRouteRMA         = "route.rma.ops"      // decisions routed to the wire RMA tier
	CRouteRMABytes    = "route.rma.bytes"    // payload bytes behind those decisions
	CRouteStaged      = "route.staged.ops"   // decisions routed to leader-staged RMA
	CRouteStagedBytes = "route.staged.bytes" // payload bytes behind those decisions

	// Locality-aware runtime (internal/dartmpi). The dart.* names are
	// kept as aliases of the route.* counters for dartmpi jobs (artifact
	// compatibility with PR 6); dart.leader.* counts staging events the
	// executor actually modeled, route.staged.* counts the decisions.
	CDartSelf        = "dart.self.ops"      // ops routed to the load-store tier
	CDartNode        = "dart.node.ops"      // ops routed to the same-node shm tier
	CDartRemote      = "dart.remote.ops"    // ops routed to the inter-node RMA tier
	CDartStaged      = "dart.leader.staged" // remote transfers staged through the node leader
	CDartStagedBytes = "dart.leader.bytes"  // bytes copied through leader staging buffers
)

// histBuckets is the bucket count of the log2 latency histograms:
// bucket i holds durations in [2^(i-1), 2^i) ns, bucket 0 holds zero.
const histBuckets = 48

// Hist is one log2 latency histogram.
type Hist struct {
	Count   int64
	SumNs   int64
	Buckets [histBuckets]int64
}

func (h *Hist) observe(d sim.Time) {
	if d < 0 {
		d = 0
	}
	b := bits.Len64(uint64(d))
	if b >= histBuckets {
		b = histBuckets - 1
	}
	h.Count++
	h.SumNs += int64(d)
	h.Buckets[b]++
}

// Metrics is the per-rank registry. Ranks are dense small integers;
// slices grow on demand so one registry can span jobs of different
// sizes (indices above a job's size simply stay zero).
type Metrics struct {
	counters map[string][]int64    // event / byte counters
	times    map[string][]sim.Time // accumulated virtual durations
	gauges   map[string][]int64    // high-water marks
	hists    map[string][]*Hist    // latency histograms
	links    []sim.Time            // per-node NIC busy time
}

// NewMetrics creates an empty registry.
func NewMetrics() *Metrics {
	return &Metrics{
		counters: map[string][]int64{},
		times:    map[string][]sim.Time{},
		gauges:   map[string][]int64{},
		hists:    map[string][]*Hist{},
	}
}

func growI64(s []int64, n int) []int64 {
	for len(s) <= n {
		s = append(s, 0)
	}
	return s
}

func growTime(s []sim.Time, n int) []sim.Time {
	for len(s) <= n {
		s = append(s, 0)
	}
	return s
}

// Add adds v to the named counter of one rank.
func (m *Metrics) Add(rank int, name string, v int64) {
	if m == nil || rank < 0 {
		return
	}
	s := growI64(m.counters[name], rank)
	s[rank] += v
	m.counters[name] = s
}

// AddTime accumulates a virtual duration for one rank.
func (m *Metrics) AddTime(rank int, name string, d sim.Time) {
	if m == nil || rank < 0 {
		return
	}
	s := growTime(m.times[name], rank)
	s[rank] += d
	m.times[name] = s
}

// Observe records a duration in the named histogram of one rank.
func (m *Metrics) Observe(rank int, name string, d sim.Time) {
	if m == nil || rank < 0 {
		return
	}
	hs := m.hists[name]
	for len(hs) <= rank {
		hs = append(hs, &Hist{})
	}
	m.hists[name] = hs
	hs[rank].observe(d)
}

// MaxGauge raises the named high-water mark of one rank to v.
func (m *Metrics) MaxGauge(rank int, name string, v int64) {
	if m == nil || rank < 0 {
		return
	}
	s := growI64(m.gauges[name], rank)
	if v > s[rank] {
		s[rank] = v
	}
	m.gauges[name] = s
}

// LinkBusy accumulates NIC occupancy for one node.
func (m *Metrics) LinkBusy(node int, d sim.Time) {
	if m == nil || node < 0 {
		return
	}
	m.links = growTime(m.links, node)
	m.links[node] += d
}

// Merge folds o's statistics into m: counters, times, histogram cells,
// and link busy time add; gauges take the maximum. The per-shard
// registries of a parallel run hold disjoint rank (and, node-aligned,
// node) index sets, so merging them yields exactly the union registry a
// sequential run would have produced. Map iteration order does not
// matter — addition and max are commutative — so the merged content is
// deterministic.
func (m *Metrics) Merge(o *Metrics) {
	if m == nil || o == nil {
		return
	}
	for name, vals := range o.counters {
		s := growI64(m.counters[name], len(vals)-1)
		for i, v := range vals {
			s[i] += v
		}
		m.counters[name] = s
	}
	for name, vals := range o.times {
		s := growTime(m.times[name], len(vals)-1)
		for i, v := range vals {
			s[i] += v
		}
		m.times[name] = s
	}
	for name, vals := range o.gauges {
		s := growI64(m.gauges[name], len(vals)-1)
		for i, v := range vals {
			if v > s[i] {
				s[i] = v
			}
		}
		m.gauges[name] = s
	}
	for name, hs := range o.hists {
		dst := m.hists[name]
		for len(dst) < len(hs) {
			dst = append(dst, &Hist{})
		}
		m.hists[name] = dst
		for i, h := range hs {
			dst[i].Count += h.Count
			dst[i].SumNs += h.SumNs
			for b := range h.Buckets {
				dst[i].Buckets[b] += h.Buckets[b]
			}
		}
	}
	m.links = growTime(m.links, len(o.links)-1)
	for i, v := range o.links {
		m.links[i] += v
	}
}

// Counter returns the per-rank values of a counter (nil if unused).
func (m *Metrics) Counter(name string) []int64 {
	if m == nil {
		return nil
	}
	return m.counters[name]
}

// TimeOf returns the per-rank values of a time metric (nil if unused).
func (m *Metrics) TimeOf(name string) []sim.Time {
	if m == nil {
		return nil
	}
	return m.times[name]
}

// Gauge returns the per-rank values of a gauge (nil if unused).
func (m *Metrics) Gauge(name string) []int64 {
	if m == nil {
		return nil
	}
	return m.gauges[name]
}

// HistOf returns the per-rank histograms of a name (nil if unused).
func (m *Metrics) HistOf(name string) []*Hist {
	if m == nil {
		return nil
	}
	return m.hists[name]
}

// Links returns per-node NIC busy time.
func (m *Metrics) Links() []sim.Time {
	if m == nil {
		return nil
	}
	return m.links
}

// Total sums a counter across ranks.
func Total(vals []int64) int64 {
	var t int64
	for _, v := range vals {
		t += v
	}
	return t
}

// TotalTime sums a time metric across ranks.
func TotalTime(vals []sim.Time) sim.Time {
	var t sim.Time
	for _, v := range vals {
		t += v
	}
	return t
}
