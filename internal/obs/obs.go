// Package obs is the runtime observability subsystem: a per-rank
// metrics registry (counters, virtual-time accumulators, max gauges,
// and log2 latency histograms) plus an event tracer that records span
// events stamped with the simulator's virtual clock and exports Chrome
// trace_event JSON (viewable in chrome://tracing or Perfetto).
//
// Because the clock is the discrete-event engine's deterministic
// virtual time, every export is byte-identical across runs of the same
// configuration: traces and stats double as diffable regression
// artifacts.
//
// All Recorder methods are nil-safe no-ops, so instrumented hot paths
// in fabric/mpi/armcimpi/dataserver cost a single nil check when
// observability is off. A Recorder may span several simulated jobs
// (e.g. one benchmark sweep): each BeginJob opens a new trace process
// (pid) whose virtual clock restarts at zero.
package obs

import (
	"repro/internal/obs/critpath"
	"repro/internal/obs/profile"
	"repro/internal/sim"
)

// Clock supplies the current virtual time; *sim.Engine satisfies it.
type Clock interface {
	Now() sim.Time
}

// Recorder collects metrics and trace events for one or more simulated
// jobs. The cooperative scheduler guarantees single-threaded access.
type Recorder struct {
	clock  Clock
	m      *Metrics
	tr     *Tracer
	prof   *profile.Profiler
	crit   *critpath.Rec
	pid    int    // current job id (trace "process")
	job    string // current job label
	nranks int

	// Park accounting (sim.Observer): start time and reason per rank.
	parkAt  []sim.Time
	parkWhy []string

	// parkNames interns the metric and span names derived from park
	// reasons ("sched.park:<why>" / "park:<why>"), so the hot
	// RankResumed path does not re-concatenate strings on every park.
	// Park reasons form a small fixed vocabulary, so the map stays tiny.
	parkNames map[string]parkName
}

type parkName struct{ metric, span string }

func (r *Recorder) parkName(why string) parkName {
	if n, ok := r.parkNames[why]; ok {
		return n
	}
	if r.parkNames == nil {
		r.parkNames = make(map[string]parkName)
	}
	n := parkName{metric: "sched.park:" + why, span: "park:" + why}
	r.parkNames[why] = n
	return n
}

// Options configures a Recorder.
type Options struct {
	// Trace enables span collection. Metrics are always collected.
	Trace bool
	// Profile enables the phase-attribution profiler.
	Profile bool
	// CritPath enables the critical-path recorder. It needs the
	// profiler's raw phase stream, so the profiler is created too
	// (its report stays opt-in via Profile).
	CritPath bool
}

// New creates an empty Recorder. The clock is bound per job by
// BeginJob; until then, time-stamped calls are dropped.
func New(opt Options) *Recorder {
	r := &Recorder{m: NewMetrics()}
	if opt.Trace {
		r.tr = NewTracer()
	}
	if opt.Profile || opt.CritPath {
		r.prof = profile.New()
	}
	if opt.CritPath {
		r.crit = critpath.New(r.prof)
		r.prof.SetSink(r.crit)
	}
	return r
}

// Enabled reports whether the recorder is live (non-nil).
func (r *Recorder) Enabled() bool { return r != nil }

// Tracing reports whether span collection is on.
func (r *Recorder) Tracing() bool { return r != nil && r.tr != nil }

// Metrics returns the registry; nil on a nil recorder.
func (r *Recorder) Metrics() *Metrics {
	if r == nil {
		return nil
	}
	return r.m
}

// Prof returns the phase-attribution profiler, or nil when profiling
// is off (or the recorder itself is nil). Hook sites capture it once
// per operation: pr := o.Prof(); if pr != nil { ... }.
func (r *Recorder) Prof() *profile.Profiler {
	if r == nil {
		return nil
	}
	return r.prof
}

// Crit returns the critical-path recorder, or nil when critical-path
// analysis is off (or the recorder itself is nil). Hook sites capture
// it per call: c := o.Crit(); if c != nil { ... }.
func (r *Recorder) Crit() *critpath.Rec {
	if r == nil {
		return nil
	}
	return r.crit
}

// BeginJob opens a new trace process for one simulated job: label
// names it (shown in the trace viewer), clock is the job engine's
// virtual clock, and nranks sizes the per-rank lanes. Metrics from
// successive jobs accumulate into the same registry.
func (r *Recorder) BeginJob(label string, clock Clock, nranks int) {
	r.beginJob(label, clock, nranks, true)
}

// beginJob is BeginJob with control over trace metadata emission: the
// sub-recorders of a Sharded front suppress it on all shards but the
// first, so the merged trace names the process and rank lanes once.
func (r *Recorder) beginJob(label string, clock Clock, nranks int, meta bool) {
	if r == nil {
		return
	}
	r.pid++
	r.job = label
	r.clock = clock
	r.nranks = nranks
	// Park state is materialized lazily as ranks first park (appended
	// records are zeroed even when the backing arrays are reused), so
	// idle ranks of a large job cost nothing.
	r.parkAt = r.parkAt[:0]
	r.parkWhy = r.parkWhy[:0]
	if r.tr != nil && meta {
		r.tr.meta(r.pid, label, nranks)
	}
	r.prof.BeginJob(clock, nranks)
	r.crit.BeginJob(label, clock)
}

// now returns the current virtual time, or zero with no bound clock.
func (r *Recorder) now() sim.Time {
	if r.clock == nil {
		return 0
	}
	return r.clock.Now()
}

// Job returns the current job label.
func (r *Recorder) Job() string {
	if r == nil {
		return ""
	}
	return r.job
}

// --- metrics facade (nil-safe) -------------------------------------

// Inc adds 1 to a per-rank counter.
func (r *Recorder) Inc(rank int, name string) { r.Add(rank, name, 1) }

// Add adds v to a per-rank counter.
func (r *Recorder) Add(rank int, name string, v int64) {
	if r == nil {
		return
	}
	r.m.Add(rank, name, v)
}

// AddTime accumulates a virtual duration into a per-rank time counter.
func (r *Recorder) AddTime(rank int, name string, d sim.Time) {
	if r == nil {
		return
	}
	r.m.AddTime(rank, name, d)
}

// Observe records a virtual duration into a per-rank log2 histogram.
func (r *Recorder) Observe(rank int, name string, d sim.Time) {
	if r == nil {
		return
	}
	r.m.Observe(rank, name, d)
}

// MaxGauge raises a per-rank high-water-mark gauge to v.
func (r *Recorder) MaxGauge(rank int, name string, v int64) {
	if r == nil {
		return
	}
	r.m.MaxGauge(rank, name, v)
}

// LinkBusy accumulates NIC link occupancy for one node.
func (r *Recorder) LinkBusy(node int, d sim.Time) {
	if r == nil {
		return
	}
	r.m.LinkBusy(node, d)
}

// --- tracing facade (nil-safe) --------------------------------------

// Span records a complete [start, end) span on a rank's lane. Args are
// optional key/value pairs rendered in insertion order.
func (r *Recorder) Span(rank int, cat, name string, start, end sim.Time, args ...Arg) {
	if r == nil || r.tr == nil {
		return
	}
	r.tr.span(r.pid, rank, cat, name, start, end, args)
}

// SpanLane records a span on an auxiliary lane (e.g. a data server or
// NIC agent) that is not a rank. Lane ids from Lane* helpers.
func (r *Recorder) SpanLane(lane int, cat, name string, start, end sim.Time, args ...Arg) {
	if r == nil || r.tr == nil {
		return
	}
	r.tr.span(r.pid, lane, cat, name, start, end, args)
}

// Instant records a zero-duration marker on a rank's lane.
func (r *Recorder) Instant(rank int, cat, name string, at sim.Time, args ...Arg) {
	if r == nil || r.tr == nil {
		return
	}
	r.tr.instant(r.pid, rank, cat, name, at, args)
}

// LaneServer returns the trace lane for node n's data server / target
// agent, kept clear of rank lanes.
func LaneServer(node int) int { return serverLaneBase + node }

// LaneNIC returns the trace lane for node n's fabric link, kept clear
// of both rank and server lanes.
func LaneNIC(node int) int { return nicLaneBase + node }

const (
	serverLaneBase = 1 << 16
	nicLaneBase    = 2 << 16
)

// --- sim.Observer ----------------------------------------------------

// RankParked implements sim.Observer: a rank blocked on a condition.
// Pure time passage ("elapse") is not a wait and is not recorded.
func (r *Recorder) RankParked(rank int, why string, at sim.Time) {
	if r == nil || why == "elapse" || rank < 0 {
		return
	}
	for len(r.parkAt) <= rank {
		r.parkAt = append(r.parkAt, 0)
		r.parkWhy = append(r.parkWhy, "")
	}
	r.parkAt[rank] = at
	r.parkWhy[rank] = why
	r.crit.Parked(rank, why, at)
}

// RankResumed implements sim.Observer: the parked rank was released.
func (r *Recorder) RankResumed(rank int, at sim.Time) {
	if r == nil || rank >= len(r.parkAt) {
		return
	}
	why := r.parkWhy[rank]
	if why == "" {
		return
	}
	r.parkWhy[rank] = ""
	n := r.parkName(why)
	r.m.AddTime(rank, n.metric, at-r.parkAt[rank])
	if r.tr != nil {
		r.tr.span(r.pid, rank, "sched", n.span, r.parkAt[rank], at, nil)
	}
	r.crit.Resumed(rank, at)
}

// RankFinished implements sim.FinishObserver: rank's body returned.
// The critical-path analyzer starts its walk from the last finisher.
func (r *Recorder) RankFinished(rank int, at sim.Time) {
	if r == nil {
		return
	}
	r.crit.Finished(rank, at)
}
