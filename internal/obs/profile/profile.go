// Package profile is the phase-attribution profiler: it decomposes
// every ARMCI operation into virtual-time phases (lock/epoch wait,
// datatype pack, shared-memory copy, wire queueing and transfer,
// target-side queueing and processing) and aggregates them into
// log-bucketed histograms per (operation x phase x rank), a rank x rank
// communication matrix split by message class and route, and per-link
// utilization statistics.
//
// Attribution is critical-path style: each rank carries one open
// operation scope with a monotonic cursor; an interval [start, end) is
// credited only for the part past the cursor, so overlapping phases
// (e.g. a pack that proceeds while an earlier segment is on the wire)
// are never double-counted. At scope end the residual between the
// operation's measured latency and the attributed phases is credited to
// the "other" phase, so phase times always sum exactly to the
// operation's total — the invariant the report and its tests rely on.
// Nonblocking operations whose wire intervals extend past their issue
// return are clamped the other way: their total is the phase sum.
//
// Like the rest of internal/obs, recording runs in deterministic
// virtual time, every method is nil-safe (a nil *Profiler no-ops), and
// warmed record paths allocate nothing.
package profile

import (
	"repro/internal/sim"
)

// Clock supplies the current virtual time; obs.Recorder's job clocks
// satisfy it.
type Clock interface {
	Now() sim.Time
}

// Phase is one attributed slice of an operation's latency.
type Phase uint8

const (
	// PhaseLockWait is time from a lock/mutex request to its grant.
	PhaseLockWait Phase = iota
	// PhaseEpochWait is time spent in Unlock/Flush/FlushAll waiting for
	// remote completion of the epoch's operations.
	PhaseEpochWait
	// PhasePack is origin- or target-side datatype pack/unpack time.
	PhasePack
	// PhaseShmCopy is intra-node shared-segment copy time.
	PhaseShmCopy
	// PhaseWireQueue is time a message waited for a busy NIC link.
	PhaseWireQueue
	// PhaseWire is serialization plus propagation on the fabric.
	PhaseWire
	// PhaseTargetQueue is queueing behind the target-side agent
	// (accumulate engine, AMO unit, or data server).
	PhaseTargetQueue
	// PhaseTargetProc is target-side processing (reduction application,
	// atomic execution, data-server service).
	PhaseTargetProc
	// PhaseLeaderQueue is time a hierarchically staged transfer waited
	// for its node leader's staging pipe (dartmpi).
	PhaseLeaderQueue
	// PhaseLeaderCopy is the shared-memory copy into the node leader's
	// staging buffer ahead of the wire transfer (dartmpi).
	PhaseLeaderCopy
	// PhaseOther is the residual: software overheads, control-message
	// round trips, and progress delays not claimed by another phase.
	PhaseOther

	// NumPhases is the phase count; keep it last.
	NumPhases
)

var phaseNames = [NumPhases]string{
	"lock.wait", "epoch.wait", "dt.pack", "shm.copy",
	"wire.queue", "wire.xfer", "target.queue", "target.proc",
	"leader.queue", "leader.copy", "other",
}

func (ph Phase) String() string {
	if ph < NumPhases {
		return phaseNames[ph]
	}
	return "?"
}

// Op classifies the ARMCI surface operation being attributed.
type Op uint8

const (
	OpPut Op = iota
	OpGet
	OpAcc
	OpPutS
	OpGetS
	OpAccS
	OpPutV
	OpGetV
	OpAccV
	OpRmw
	OpNbPut
	OpNbGet
	OpNbAcc
	OpNbPutS
	OpNbGetS
	OpNbAccS
	OpNbPutV
	OpNbGetV
	OpNbAccV

	// NumOps is the operation count; keep it last.
	NumOps
)

var opNames = [NumOps]string{
	"put", "get", "acc", "puts", "gets", "accs", "putv", "getv", "accv",
	"rmw", "nbput", "nbget", "nbacc", "nbputs", "nbgets", "nbaccs",
	"nbputv", "nbgetv", "nbaccv",
}

func (op Op) String() string {
	if op < NumOps {
		return opNames[op]
	}
	return "?"
}

// MsgClass classifies a communication-matrix entry's payload.
type MsgClass uint8

const (
	MsgPut MsgClass = iota
	MsgGet
	MsgAcc
	MsgAmo

	// NumMsgClasses is the class count; keep it last.
	NumMsgClasses
)

var msgClassNames = [NumMsgClasses]string{"put", "get", "acc", "amo"}

func (c MsgClass) String() string {
	if c < NumMsgClasses {
		return msgClassNames[c]
	}
	return "?"
}

// Route classifies how the payload moved.
type Route uint8

const (
	// RouteRMA is the one-sided fabric path (MPI RMA over the NIC).
	RouteRMA Route = iota
	// RouteShm is the intra-node shared-memory path.
	RouteShm
	// RouteDS is the two-sided data-server path.
	RouteDS

	// NumRoutes is the route count; keep it last.
	NumRoutes
)

var routeNames = [NumRoutes]string{"rma", "shm", "ds"}

func (r Route) String() string {
	if r < NumRoutes {
		return routeNames[r]
	}
	return "?"
}

// histBuckets mirrors the obs metrics histograms: bucket b holds
// durations in [2^(b-1), 2^b) ns, bucket 0 holds zero.
const histBuckets = 48

// Hist is one log2 virtual-time histogram.
type Hist struct {
	Count   int64
	SumNs   int64
	Buckets [histBuckets]int64
}

func (h *Hist) observe(d sim.Time) {
	if d < 0 {
		d = 0
	}
	b := bitLen(uint64(d))
	if b >= histBuckets {
		b = histBuckets - 1
	}
	h.Count++
	h.SumNs += int64(d)
	h.Buckets[b]++
}

// bitLen is bits.Len64 without the import (keeps the package's only
// dependency the sim clock).
func bitLen(x uint64) int {
	n := 0
	for x != 0 {
		x >>= 1
		n++
	}
	return n
}

// scope is one rank's open operation. Nested Begin calls (a public op
// re-entered through the per-segment execution path, or a nonblocking
// delegate falling through to its blocking twin) fold into the outer
// scope via depth counting.
type scope struct {
	open   bool
	depth  int32
	op     Op
	begin  sim.Time
	cursor sim.Time
	phases [NumPhases]sim.Time
}

// Cell is one communication-matrix entry: traffic from Src to Dst of
// one message class over one route, tallied independently at the send
// site (origin issue) and the receive site (target-side apply), so the
// two sides cross-check each other.
type Cell struct {
	Src, Dst  int
	Class     MsgClass
	Route     Route
	SentMsgs  int64
	SentBytes int64
	RecvMsgs  int64
	RecvBytes int64
}

// LinkStat is one node's NIC utilization record.
type LinkStat struct {
	Msgs       int64
	Bytes      int64
	Busy       sim.Time // serialization occupancy
	Queued     sim.Time // time messages waited for the link
	MaxBacklog sim.Time // deepest queue horizon seen (freeAt - now)
}

// Sink receives every raw phase attribution before the profiler's own
// scope and cursor gating: the interval exactly as the hook reported
// it, with the rank's open operation (or NumOps when no scope is
// open). It also receives each operation scope as it closes, so the
// consumer can attribute otherwise-uncovered time to the operation
// that contained it. The critical-path recorder consumes this stream —
// its activity log needs the event-context attributions (epoch waits,
// target-side service) that the profiler's sealed-scope rule drops.
type Sink interface {
	RawPhase(rank int, op Op, ph Phase, start, end sim.Time)
	RawScope(rank int, op Op, start, end sim.Time)
}

// Profiler aggregates phase attributions across one or more simulated
// jobs. The cooperative scheduler guarantees single-threaded access.
type Profiler struct {
	clock  Clock
	scopes []scope
	sink   Sink

	hists  [NumOps][NumPhases][]Hist // per-rank phase histograms
	totals [NumOps][]Hist            // per-rank whole-op histograms

	matrix map[uint64]*Cell
	links  []LinkStat
}

// New creates an empty profiler. The clock is bound per job by
// BeginJob; until then, recording calls are dropped.
func New() *Profiler {
	return &Profiler{matrix: map[uint64]*Cell{}}
}

// BeginJob binds the profiler to a new job's clock. Statistics
// accumulate across jobs; open scopes are discarded (each job's
// virtual clock restarts at zero). Per-rank scope records are
// materialized lazily on first use — idle ranks of a large job cost
// nothing — so nranks is only a hint and may be zero.
func (p *Profiler) BeginJob(clock Clock, nranks int) {
	if p == nil {
		return
	}
	p.clock = clock
	p.scopes = p.scopes[:0]
}

// scopeAt returns rank's scope record, growing the vector on demand
// (appended records are zeroed even when the backing array is reused).
func (p *Profiler) scopeAt(rank int) *scope {
	for len(p.scopes) <= rank {
		p.scopes = append(p.scopes, scope{})
	}
	return &p.scopes[rank]
}

// Begin opens (or nests into) rank's operation scope.
func (p *Profiler) Begin(rank int, op Op) {
	if p == nil || rank < 0 || p.clock == nil {
		return
	}
	sc := p.scopeAt(rank)
	if sc.open {
		sc.depth++
		return
	}
	now := p.clock.Now()
	*sc = scope{open: true, op: op, begin: now, cursor: now}
}

// End closes rank's operation scope (or unwinds one nesting level) and
// commits the attribution. The residual between the measured latency
// and the attributed phases goes to PhaseOther; a negative residual
// (nonblocking issue whose wire intervals extend past the return)
// clamps the total to the phase sum, so phase times always sum exactly
// to the recorded total.
func (p *Profiler) End(rank int) {
	if p == nil || rank < 0 || rank >= len(p.scopes) {
		return
	}
	sc := &p.scopes[rank]
	if !sc.open {
		return
	}
	if sc.depth > 0 {
		sc.depth--
		return
	}
	sc.open = false
	now := p.clock.Now()
	if p.sink != nil {
		p.sink.RawScope(rank, sc.op, sc.begin, now)
	}
	total := now - sc.begin
	var sum sim.Time
	for ph := Phase(0); ph < NumPhases; ph++ {
		sum += sc.phases[ph]
	}
	if residual := total - sum; residual >= 0 {
		sc.phases[PhaseOther] += residual
	} else {
		total = sum
	}
	for ph := Phase(0); ph < NumPhases; ph++ {
		if t := sc.phases[ph]; t > 0 {
			p.histAt(sc.op, ph, rank).observe(t)
		}
	}
	p.totalAt(sc.op, rank).observe(total)
}

// PhaseAt attributes [start, end) of rank's open operation to phase
// ph. Only the part past the scope's cursor is credited (earlier
// attributions own the overlap); with no open scope the interval is
// dropped — late event-context attributions against an already sealed
// nonblocking scope must not leak into the next operation. The raw
// interval is forwarded to the sink, if any, before either gate.
func (p *Profiler) PhaseAt(rank int, ph Phase, start, end sim.Time) {
	if p == nil || rank < 0 {
		return
	}
	var sc *scope
	if rank < len(p.scopes) {
		sc = &p.scopes[rank]
	}
	if p.sink != nil {
		op := NumOps
		if sc != nil && sc.open {
			op = sc.op
		}
		p.sink.RawPhase(rank, op, ph, start, end)
	}
	if sc == nil || !sc.open {
		return
	}
	if start < sc.cursor {
		start = sc.cursor
	}
	if end > sc.cursor {
		sc.cursor = end
	}
	if end > start {
		sc.phases[ph] += end - start
	}
}

// SetSink installs (or, with nil, removes) the raw-attribution sink.
func (p *Profiler) SetSink(s Sink) {
	if p == nil {
		return
	}
	p.sink = s
}

// InScope reports whether rank has an open operation scope (used by
// hooks whose work is only worth doing when it will be attributed).
func (p *Profiler) InScope(rank int) bool {
	return p != nil && rank >= 0 && rank < len(p.scopes) && p.scopes[rank].open
}

func (p *Profiler) histAt(op Op, ph Phase, rank int) *Hist {
	hs := p.hists[op][ph]
	for len(hs) <= rank {
		hs = append(hs, Hist{})
	}
	p.hists[op][ph] = hs
	return &hs[rank]
}

func (p *Profiler) totalAt(op Op, rank int) *Hist {
	hs := p.totals[op]
	for len(hs) <= rank {
		hs = append(hs, Hist{})
	}
	p.totals[op] = hs
	return &hs[rank]
}

// --- communication matrix -------------------------------------------

// matrix keys pack (src, dst, class, route) into one integer; ranks
// stay well under 2^30.
func matKey(src, dst int, c MsgClass, r Route) uint64 {
	return uint64(src)<<34 | uint64(dst)<<4 | uint64(c)<<2 | uint64(r)
}

func (p *Profiler) cell(src, dst int, c MsgClass, r Route) *Cell {
	k := matKey(src, dst, c, r)
	cl := p.matrix[k]
	if cl == nil {
		cl = &Cell{Src: src, Dst: dst, Class: c, Route: r}
		p.matrix[k] = cl
	}
	return cl
}

// Send records bytes leaving src for dst, tallied at the origin's
// issue site.
func (p *Profiler) Send(src, dst int, c MsgClass, r Route, bytes int) {
	if p == nil || src < 0 || dst < 0 {
		return
	}
	cl := p.cell(src, dst, c, r)
	cl.SentMsgs++
	cl.SentBytes += int64(bytes)
}

// Recv records bytes landing at dst from src, tallied at the
// target-side apply/arrival site.
func (p *Profiler) Recv(src, dst int, c MsgClass, r Route, bytes int) {
	if p == nil || src < 0 || dst < 0 {
		return
	}
	cl := p.cell(src, dst, c, r)
	cl.RecvMsgs++
	cl.RecvBytes += int64(bytes)
}

// Cells returns the communication matrix sorted by (src, dst, class,
// route).
func (p *Profiler) Cells() []Cell {
	if p == nil {
		return nil
	}
	keys := make([]uint64, 0, len(p.matrix))
	for k := range p.matrix {
		keys = append(keys, k)
	}
	sortU64(keys)
	out := make([]Cell, len(keys))
	for i, k := range keys {
		out[i] = *p.matrix[k]
	}
	return out
}

func sortU64(s []uint64) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// --- link telemetry --------------------------------------------------

// Link records one message's NIC accounting at a node: bytes moved,
// time queued behind the link, serialization occupancy, and the queue
// horizon depth after this message.
func (p *Profiler) Link(node int, bytes int, queued, busy, backlog sim.Time) {
	if p == nil || node < 0 {
		return
	}
	for len(p.links) <= node {
		p.links = append(p.links, LinkStat{})
	}
	ls := &p.links[node]
	ls.Msgs++
	ls.Bytes += int64(bytes)
	if queued > 0 {
		ls.Queued += queued
	}
	ls.Busy += busy
	if backlog > ls.MaxBacklog {
		ls.MaxBacklog = backlog
	}
}

// LinkStats returns per-node NIC utilization records.
func (p *Profiler) LinkStats() []LinkStat {
	if p == nil {
		return nil
	}
	return p.links
}

// --- shard merging ---------------------------------------------------

// Merge folds o's accumulated statistics into p: histogram cells,
// matrix tallies, and link counters add; MaxBacklog takes the maximum.
// The per-shard profilers of a parallel run record disjoint rank and
// node index sets, so the merged profiler equals what a sequential run
// would have accumulated. Addition is commutative, so the result does
// not depend on map iteration order. Open scopes in o (there are none
// after a completed run) are not carried over.
func (p *Profiler) Merge(o *Profiler) {
	if p == nil || o == nil {
		return
	}
	for op := Op(0); op < NumOps; op++ {
		for ph := Phase(0); ph < NumPhases; ph++ {
			p.hists[op][ph] = mergeHists(p.hists[op][ph], o.hists[op][ph])
		}
		p.totals[op] = mergeHists(p.totals[op], o.totals[op])
	}
	for k, c := range o.matrix {
		dst := p.matrix[k]
		if dst == nil {
			dst = &Cell{Src: c.Src, Dst: c.Dst, Class: c.Class, Route: c.Route}
			p.matrix[k] = dst
		}
		dst.SentMsgs += c.SentMsgs
		dst.SentBytes += c.SentBytes
		dst.RecvMsgs += c.RecvMsgs
		dst.RecvBytes += c.RecvBytes
	}
	for len(p.links) < len(o.links) {
		p.links = append(p.links, LinkStat{})
	}
	for i, ls := range o.links {
		d := &p.links[i]
		d.Msgs += ls.Msgs
		d.Bytes += ls.Bytes
		d.Busy += ls.Busy
		d.Queued += ls.Queued
		if ls.MaxBacklog > d.MaxBacklog {
			d.MaxBacklog = ls.MaxBacklog
		}
	}
}

func mergeHists(dst, src []Hist) []Hist {
	for len(dst) < len(src) {
		dst = append(dst, Hist{})
	}
	for i := range src {
		dst[i].Count += src[i].Count
		dst[i].SumNs += src[i].SumNs
		for b := range src[i].Buckets {
			dst[i].Buckets[b] += src[i].Buckets[b]
		}
	}
	return dst
}

// --- accessors for tests and reports --------------------------------

// TotalHists returns op's per-rank whole-operation histograms (nil if
// the op never completed).
func (p *Profiler) TotalHists(op Op) []Hist {
	if p == nil || op >= NumOps {
		return nil
	}
	return p.totals[op]
}

// PhaseHists returns op's per-rank histograms for one phase (nil if
// never attributed).
func (p *Profiler) PhaseHists(op Op, ph Phase) []Hist {
	if p == nil || op >= NumOps || ph >= NumPhases {
		return nil
	}
	return p.hists[op][ph]
}
