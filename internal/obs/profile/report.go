package profile

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"repro/internal/sim"
)

// aggHist sums a per-rank histogram slice into one histogram.
func aggHist(hs []Hist) Hist {
	var out Hist
	for i := range hs {
		out.Count += hs[i].Count
		out.SumNs += hs[i].SumNs
		for b := range hs[i].Buckets {
			out.Buckets[b] += hs[i].Buckets[b]
		}
	}
	return out
}

// opAgg is one op's cross-rank aggregate used by both emitters.
type opAgg struct {
	op     Op
	total  Hist
	phases [NumPhases]Hist
}

// aggregate returns per-op aggregates in enum order, skipping ops that
// never completed — the deterministic iteration order both the text
// report and the JSON rely on.
func (p *Profiler) aggregate() []opAgg {
	var out []opAgg
	for op := Op(0); op < NumOps; op++ {
		a := opAgg{op: op, total: aggHist(p.totals[op])}
		if a.total.Count == 0 {
			continue
		}
		for ph := Phase(0); ph < NumPhases; ph++ {
			a.phases[ph] = aggHist(p.hists[op][ph])
		}
		out = append(out, a)
	}
	return out
}

// --- text report -----------------------------------------------------

// WriteReport renders the mpiP-style text report: top ops by aggregate
// virtual time, per-op phase breakdown percentages, hottest rank
// pairs, and per-link utilization. Output is byte-deterministic: every
// section iterates sorted data with explicit tie-breaks.
func (p *Profiler) WriteReport(w io.Writer) error {
	if p == nil {
		return nil
	}
	aggs := p.aggregate()
	// Top ops by aggregate time, ties broken by enum order (stable
	// sort over the enum-ordered slice).
	sort.SliceStable(aggs, func(i, j int) bool {
		return aggs[i].total.SumNs > aggs[j].total.SumNs
	})

	var grand int64
	for _, a := range aggs {
		grand += a.total.SumNs
	}

	bw := &errWriter{w: w}
	bw.printf("armci-prof: phase-attribution report (virtual time)\n")
	bw.printf("---------------------------------------------------\n\n")

	bw.printf("Top operations by aggregate time\n")
	bw.printf("  %-8s %12s %16s %14s %8s\n", "op", "calls", "time(ns)", "mean(ns)", "% total")
	for _, a := range aggs {
		mean := int64(0)
		if a.total.Count > 0 {
			mean = a.total.SumNs / a.total.Count
		}
		bw.printf("  %-8s %12d %16d %14d %7.2f%%\n",
			a.op, a.total.Count, a.total.SumNs, mean, pct(a.total.SumNs, grand))
	}
	bw.printf("\n")

	bw.printf("Phase breakdown per operation (%% of op time)\n")
	bw.printf("  %-8s", "op")
	for ph := Phase(0); ph < NumPhases; ph++ {
		bw.printf(" %12s", ph)
	}
	bw.printf("\n")
	for _, a := range aggs {
		bw.printf("  %-8s", a.op)
		for ph := Phase(0); ph < NumPhases; ph++ {
			bw.printf(" %11.2f%%", pct(a.phases[ph].SumNs, a.total.SumNs))
		}
		bw.printf("\n")
	}
	bw.printf("\n")

	cells := p.Cells()
	if len(cells) > 0 {
		// Hottest pairs by sent bytes; ties keep (src,dst,class,route)
		// key order from Cells().
		sort.SliceStable(cells, func(i, j int) bool {
			return cells[i].SentBytes > cells[j].SentBytes
		})
		n := len(cells)
		if n > 20 {
			n = 20
		}
		bw.printf("Hottest pairs by bytes sent (top %d of %d)\n", n, len(cells))
		bw.printf("  %4s %4s %-5s %-5s %10s %14s %10s %14s\n",
			"src", "dst", "class", "route", "s.msgs", "s.bytes", "r.msgs", "r.bytes")
		for _, c := range cells[:n] {
			bw.printf("  %4d %4d %-5s %-5s %10d %14d %10d %14d\n",
				c.Src, c.Dst, c.Class, c.Route, c.SentMsgs, c.SentBytes, c.RecvMsgs, c.RecvBytes)
		}
		bw.printf("\n")
	}

	links := p.links
	hasLinks := false
	for i := range links {
		if links[i].Msgs > 0 {
			hasLinks = true
			break
		}
	}
	if hasLinks {
		bw.printf("Link utilization (per node NIC)\n")
		bw.printf("  %4s %10s %14s %14s %14s %14s\n",
			"node", "msgs", "bytes", "busy(ns)", "queued(ns)", "maxbacklog")
		for node := range links {
			ls := &links[node]
			if ls.Msgs == 0 {
				continue
			}
			bw.printf("  %4d %10d %14d %14d %14d %14d\n",
				node, ls.Msgs, ls.Bytes, int64(ls.Busy), int64(ls.Queued), int64(ls.MaxBacklog))
		}
		bw.printf("\n")
	}
	return bw.err
}

func pct(part, whole int64) float64 {
	if whole == 0 {
		return 0
	}
	return 100 * float64(part) / float64(whole)
}

type errWriter struct {
	w   io.Writer
	err error
}

func (e *errWriter) printf(format string, args ...any) {
	if e.err != nil {
		return
	}
	_, e.err = fmt.Fprintf(e.w, format, args...)
}

// --- JSON ------------------------------------------------------------

// The JSON mirrors obs/report.go conventions: fixed struct field
// order, integers only, sparse [bucket, count] histogram pairs, and
// fully sorted iteration so repeat runs are byte-identical.

type profHistJSON struct {
	Count   int64      `json:"count"`
	SumNs   int64      `json:"sum_ns"`
	Buckets [][2]int64 `json:"buckets,omitempty"`
}

func toHistJSON(h Hist) profHistJSON {
	out := profHistJSON{Count: h.Count, SumNs: h.SumNs}
	for b, c := range h.Buckets {
		if c != 0 {
			out.Buckets = append(out.Buckets, [2]int64{int64(b), c})
		}
	}
	return out
}

type profPhaseJSON struct {
	Phase string       `json:"phase"`
	Hist  profHistJSON `json:"hist"`
}

type profOpJSON struct {
	Op     string          `json:"op"`
	Total  profHistJSON    `json:"total"`
	Phases []profPhaseJSON `json:"phases"`
}

type profCellJSON struct {
	Src       int    `json:"src"`
	Dst       int    `json:"dst"`
	Class     string `json:"class"`
	Route     string `json:"route"`
	SentMsgs  int64  `json:"sent_msgs"`
	SentBytes int64  `json:"sent_bytes"`
	RecvMsgs  int64  `json:"recv_msgs"`
	RecvBytes int64  `json:"recv_bytes"`
}

type profLinkJSON struct {
	Node         int   `json:"node"`
	Msgs         int64 `json:"msgs"`
	Bytes        int64 `json:"bytes"`
	BusyNs       int64 `json:"busy_ns"`
	QueuedNs     int64 `json:"queued_ns"`
	MaxBacklogNs int64 `json:"max_backlog_ns"`
}

type profJSON struct {
	Schema string         `json:"schema"`
	Ops    []profOpJSON   `json:"ops"`
	Matrix []profCellJSON `json:"matrix"`
	Links  []profLinkJSON `json:"links"`
}

// WriteJSON emits the deterministic machine-readable profile: ops in
// enum order (empties skipped), phases in enum order (empties
// skipped), the comm matrix key-sorted, links by node id.
func (p *Profiler) WriteJSON(w io.Writer) error {
	if p == nil {
		return nil
	}
	doc := profJSON{Schema: "armci-prof/1"}
	for _, a := range p.aggregate() {
		oj := profOpJSON{Op: a.op.String(), Total: toHistJSON(a.total)}
		for ph := Phase(0); ph < NumPhases; ph++ {
			if a.phases[ph].Count == 0 {
				continue
			}
			oj.Phases = append(oj.Phases, profPhaseJSON{
				Phase: ph.String(), Hist: toHistJSON(a.phases[ph]),
			})
		}
		doc.Ops = append(doc.Ops, oj)
	}
	for _, c := range p.Cells() {
		doc.Matrix = append(doc.Matrix, profCellJSON{
			Src: c.Src, Dst: c.Dst,
			Class: c.Class.String(), Route: c.Route.String(),
			SentMsgs: c.SentMsgs, SentBytes: c.SentBytes,
			RecvMsgs: c.RecvMsgs, RecvBytes: c.RecvBytes,
		})
	}
	for node := range p.links {
		ls := &p.links[node]
		if ls.Msgs == 0 {
			continue
		}
		doc.Links = append(doc.Links, profLinkJSON{
			Node: node, Msgs: ls.Msgs, Bytes: ls.Bytes,
			BusyNs:       int64(ls.Busy),
			QueuedNs:     int64(ls.Queued),
			MaxBacklogNs: int64(ls.MaxBacklog),
		})
	}
	buf, err := json.MarshalIndent(&doc, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	_, err = w.Write(buf)
	return err
}

// TotalTime returns the aggregate attributed time for op across all
// ranks (0 if the op never completed) — convenience for tests.
func (p *Profiler) TotalTime(op Op) sim.Time {
	if p == nil || op >= NumOps {
		return 0
	}
	return sim.Time(aggHist(p.totals[op]).SumNs)
}
