package obs

import (
	"repro/internal/obs/critpath"
	"repro/internal/obs/profile"
	"repro/internal/sim"
)

// Sharded is the observability front for a multi-shard parallel run
// (sim.ModeParallel with Shards > 1). A single Recorder relies on the
// cooperative scheduler for single-threaded access, which a sharded
// engine no longer guarantees: shard workers run concurrently within a
// time window. Sharded therefore gives each shard a private Recorder —
// its own metrics registry, trace buffer, and profiler — bound to that
// shard's virtual clock, so no observability state is ever shared
// between workers. When the run finishes, Merge flattens the buffers
// in shard order.
//
// The merge is deterministic and, for everything per-rank indexed,
// exact: a rank lives on exactly one shard, so the per-rank series of
// different shards are disjoint and their sum is the union registry a
// sequential run would have built. Under a node-aligned partition the
// same holds for per-node link telemetry. The merged trace is each
// shard's (deterministic) event stream concatenated in shard id order —
// stable across runs, though events of different shards appear grouped
// by shard rather than interleaved by timestamp (trace viewers sort by
// timestamp on load).
type Sharded struct {
	recs []*Recorder
}

// NewSharded creates one private Recorder per shard, all with the same
// options.
func NewSharded(opt Options, shards int) *Sharded {
	if shards < 1 {
		shards = 1
	}
	s := &Sharded{recs: make([]*Recorder, shards)}
	for i := range s.recs {
		s.recs[i] = New(opt)
		if opt.CritPath {
			// Re-key the critical-path recorder with the shard id so
			// dependence-edge references resolve across shards after
			// the merge; a shard recorder's logs are partial, so it
			// defers analysis to Merge.
			s.recs[i].crit = critpath.NewShard(i, s.recs[i].prof)
			s.recs[i].prof.SetSink(s.recs[i].crit)
		}
	}
	return s
}

// Shards returns the shard count.
func (s *Sharded) Shards() int { return len(s.recs) }

// Rec returns shard i's private Recorder. Every recording a rank makes
// must go through the recorder of the shard that owns the rank.
func (s *Sharded) Rec(i int) *Recorder { return s.recs[i] }

// Observers adapts the front to sim.Engine.ShardObservers, giving each
// shard its recorder as the shard-local scheduler observer.
func (s *Sharded) Observers() func(int) sim.Observer {
	return func(i int) sim.Observer { return s.recs[i] }
}

// BeginJob opens a job on every sub-recorder; clock supplies each
// shard's virtual clock (typically sim.Engine.ShardClock). Trace
// metadata — process and rank lane names — is emitted by shard 0 only,
// so the merged trace names each lane exactly once.
func (s *Sharded) BeginJob(label string, clock func(shard int) Clock, nranks int) {
	for i, r := range s.recs {
		r.beginJob(label, clock(i), nranks, i == 0)
	}
}

// Merge flattens the per-shard buffers, in shard id order, into a
// fresh Recorder ready for WriteTrace, WriteStats, and the profile
// report writers. Call it only after sim.Engine.Run has returned (or
// between windows, when no shard worker is executing).
func (s *Sharded) Merge() *Recorder {
	r0 := s.recs[0]
	out := &Recorder{
		m:      NewMetrics(),
		pid:    r0.pid,
		job:    r0.job,
		clock:  r0.clock,
		nranks: r0.nranks,
	}
	if r0.tr != nil {
		out.tr = NewTracer()
	}
	if r0.prof != nil {
		out.prof = profile.New()
	}
	for _, r := range s.recs {
		out.m.Merge(r.m)
		if out.tr != nil && r.tr != nil {
			out.tr.events = append(out.tr.events, r.tr.events...)
		}
		out.prof.Merge(r.prof)
	}
	if r0.crit != nil {
		crits := make([]*critpath.Rec, len(s.recs))
		for i, r := range s.recs {
			crits[i] = r.crit
		}
		// The shard logs are disjoint per rank and edge references
		// carry their shard id, so the stitched recorder analyzes the
		// run exactly as a single-shard recorder would have.
		out.crit = critpath.Merge(crits, out.prof)
	}
	return out
}
