package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"repro/internal/sim"
)

// statsJSON is the machine-readable stats schema. encoding/json sorts
// map keys, so marshalling is byte-deterministic.
type statsJSON struct {
	Counters   map[string][]int64    `json:"counters"`
	TimesNs    map[string][]int64    `json:"times_ns"`
	Gauges     map[string][]int64    `json:"gauges,omitempty"`
	Histograms map[string][]histJSON `json:"histograms,omitempty"`
	LinkBusyNs []int64               `json:"link_busy_ns,omitempty"`
}

// histJSON serializes one rank's histogram; buckets list only nonzero
// entries as [bucket, count], where bucket b covers [2^(b-1), 2^b) ns.
type histJSON struct {
	Count   int64      `json:"count"`
	SumNs   int64      `json:"sum_ns"`
	Buckets [][2]int64 `json:"buckets"`
}

// StatsJSON renders the registry as deterministic JSON.
func (m *Metrics) StatsJSON() ([]byte, error) {
	s := statsJSON{
		Counters: map[string][]int64{},
		TimesNs:  map[string][]int64{},
	}
	if m != nil {
		for name, vals := range m.counters {
			s.Counters[name] = vals
		}
		for name, vals := range m.times {
			ns := make([]int64, len(vals))
			for i, v := range vals {
				ns[i] = int64(v)
			}
			s.TimesNs[name] = ns
		}
		if len(m.gauges) > 0 {
			s.Gauges = map[string][]int64{}
			for name, vals := range m.gauges {
				s.Gauges[name] = vals
			}
		}
		if len(m.hists) > 0 {
			s.Histograms = map[string][]histJSON{}
			for name, hs := range m.hists {
				out := make([]histJSON, len(hs))
				for i, h := range hs {
					hj := histJSON{Count: h.Count, SumNs: h.SumNs, Buckets: [][2]int64{}}
					for b, c := range h.Buckets {
						if c != 0 {
							hj.Buckets = append(hj.Buckets, [2]int64{int64(b), c})
						}
					}
					out[i] = hj
				}
				s.Histograms[name] = out
			}
		}
		if len(m.links) > 0 {
			s.LinkBusyNs = make([]int64, len(m.links))
			for i, v := range m.links {
				s.LinkBusyNs[i] = int64(v)
			}
		}
	}
	return json.MarshalIndent(&s, "", "  ")
}

// WriteStatsJSON writes the registry as deterministic JSON.
func (r *Recorder) WriteStatsJSON(w io.Writer) error {
	b, err := r.Metrics().StatsJSON()
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// nranks returns the widest per-rank vector in the registry.
func (m *Metrics) nranks() int {
	n := 0
	if m == nil {
		return 0
	}
	for _, v := range m.counters {
		if len(v) > n {
			n = len(v)
		}
	}
	for _, v := range m.times {
		if len(v) > n {
			n = len(v)
		}
	}
	for _, v := range m.gauges {
		if len(v) > n {
			n = len(v)
		}
	}
	return n
}

func at64(s []int64, i int) int64 {
	if i < len(s) {
		return s[i]
	}
	return 0
}

func atTime(s []sim.Time, i int) sim.Time {
	if i < len(s) {
		return s[i]
	}
	return 0
}

// WriteStats writes a human-readable report: a per-rank summary table
// of the headline metrics (lock wait, bytes contiguous vs packed,
// epoch flushes), then every counter, time, and gauge in sorted order,
// and per-node link busy time.
func (r *Recorder) WriteStats(w io.Writer) {
	r.Metrics().WriteStats(w)
}

// WriteStats writes the registry's human-readable report; see
// Recorder.WriteStats.
func (m *Metrics) WriteStats(w io.Writer) {
	n := m.nranks()
	fmt.Fprintf(w, "# obs stats — per-rank summary\n")
	if n == 0 {
		fmt.Fprintf(w, "# (no metrics recorded)\n")
		return
	}
	fmt.Fprintf(w, "%-5s %14s %14s %14s %14s %12s %10s %10s %10s %10s\n",
		"rank", "lockwait.sh(us)", "lockwait.ex(us)", "bytes.contig", "bytes.packed",
		"epoch.flush", "epochs", "puts", "gets", "accs")
	for i := 0; i < n; i++ {
		fmt.Fprintf(w, "%-5d %14.3f %14.3f %14d %14d %12d %10d %10d %10d %10d\n",
			i,
			atTime(m.times[TLockWaitShared], i).Micros(),
			atTime(m.times[TLockWaitExcl], i).Micros(),
			at64(m.counters[CBytesContig], i),
			at64(m.counters[CBytesPacked], i),
			at64(m.counters[CEpochFlush], i),
			at64(m.counters[CEpochs], i),
			at64(m.counters[COpsPut], i),
			at64(m.counters[COpsGet], i),
			at64(m.counters[COpsAcc], i))
	}

	fmt.Fprintf(w, "\n# counters (per-rank, then total)\n")
	for _, name := range sortedKeysI64(m.counters) {
		vals := m.counters[name]
		fmt.Fprintf(w, "%-24s total=%-12d", name, Total(vals))
		writeI64Row(w, vals)
	}
	fmt.Fprintf(w, "\n# virtual-time metrics (us per rank, then total)\n")
	for _, name := range sortedKeysTime(m.times) {
		vals := m.times[name]
		fmt.Fprintf(w, "%-24s total=%-12.3f", name, TotalTime(vals).Micros())
		for _, v := range vals {
			fmt.Fprintf(w, " %.3f", v.Micros())
		}
		fmt.Fprintln(w)
	}
	if len(m.gauges) > 0 {
		fmt.Fprintf(w, "\n# high-water gauges (per-rank)\n")
		for _, name := range sortedKeysI64(m.gauges) {
			fmt.Fprintf(w, "%-24s", name)
			writeI64Row(w, m.gauges[name])
		}
	}
	if len(m.hists) > 0 {
		fmt.Fprintf(w, "\n# latency histograms (aggregated across ranks; bucket b: [2^(b-1), 2^b) ns)\n")
		names := make([]string, 0, len(m.hists))
		for name := range m.hists {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			var agg Hist
			for _, h := range m.hists[name] {
				agg.Count += h.Count
				agg.SumNs += h.SumNs
				for b, c := range h.Buckets {
					agg.Buckets[b] += c
				}
			}
			mean := 0.0
			if agg.Count > 0 {
				mean = float64(agg.SumNs) / float64(agg.Count) / 1e3
			}
			fmt.Fprintf(w, "%-24s count=%-8d mean=%.3fus buckets:", name, agg.Count, mean)
			for b, c := range agg.Buckets {
				if c != 0 {
					fmt.Fprintf(w, " %d:%d", b, c)
				}
			}
			fmt.Fprintln(w)
		}
	}
	if len(m.links) > 0 {
		fmt.Fprintf(w, "\n# NIC link busy time (us per node)\n")
		for i, v := range m.links {
			fmt.Fprintf(w, "node %-4d %.3f\n", i, v.Micros())
		}
	}
}

func writeI64Row(w io.Writer, vals []int64) {
	for _, v := range vals {
		fmt.Fprintf(w, " %d", v)
	}
	fmt.Fprintln(w)
}

func sortedKeysI64(m map[string][]int64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func sortedKeysTime(m map[string][]sim.Time) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
