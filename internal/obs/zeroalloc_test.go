package obs

import (
	"testing"

	"repro/internal/obs/critpath"
	"repro/internal/obs/profile"
	"repro/internal/sim"
)

type fixedClock sim.Time

func (c fixedClock) Now() sim.Time { return sim.Time(c) }

// TestDisabledRecorderAllocatesNothing pins the disabled-observability
// cost to zero heap allocations: every facade method on a nil Recorder
// must return before building anything. Hot paths call these guards on
// every operation, so a single alloc here would dominate wall-clock
// profiles.
func TestDisabledRecorderAllocatesNothing(t *testing.T) {
	var r *Recorder // disabled: nil recorder
	allocs := testing.AllocsPerRun(1000, func() {
		r.Inc(0, "c")
		r.Add(0, "c", 3)
		r.AddTime(0, "t", 5)
		r.Observe(0, "h", 7)
		r.MaxGauge(0, "g", 9)
		r.LinkBusy(0, 11)
		r.Span(0, "cat", "name", 0, 1)
		r.SpanLane(1, "cat", "name", 0, 1)
		r.Instant(0, "cat", "name", 2)
		r.RankParked(0, "recv", 0)
		r.RankResumed(0, 1)
		_ = r.Enabled()
		_ = r.Tracing()
	})
	if allocs != 0 {
		t.Errorf("nil recorder allocated %.1f per run, want 0", allocs)
	}
}

// TestDisabledProfilerAllocatesNothing pins the disabled-profiler cost
// to zero heap allocations: a nil *profile.Profiler is what every hook
// site holds when -profile is off, and each method must return before
// touching any state.
func TestDisabledProfilerAllocatesNothing(t *testing.T) {
	r := New(Options{}) // no Profile: Prof() returns nil
	pr := r.Prof()
	if pr != nil {
		t.Fatal("recorder without Options.Profile returned a profiler")
	}
	allocs := testing.AllocsPerRun(1000, func() {
		pr.Begin(0, profile.OpPut)
		pr.PhaseAt(0, profile.PhaseWire, 0, 5)
		pr.Send(0, 1, profile.MsgPut, profile.RouteRMA, 64)
		pr.Recv(0, 1, profile.MsgPut, profile.RouteRMA, 64)
		pr.Link(0, 64, 1, 2, 3)
		pr.End(0)
		_ = pr.InScope(0)
	})
	if allocs != 0 {
		t.Errorf("nil profiler allocated %.1f per run, want 0", allocs)
	}
}

// TestProfilerRecordPathAllocatesNothing pins the enabled profiler's
// steady-state record cycle to zero allocations once its lazily-grown
// tables are warm. Histograms, matrix cells, and link stats allocate on
// first touch only; every subsequent operation must be free.
func TestProfilerRecordPathAllocatesNothing(t *testing.T) {
	r := New(Options{Profile: true})
	r.BeginJob("job", fixedClock(0), 4)
	pr := r.Prof()
	if pr == nil {
		t.Fatal("recorder with Options.Profile returned nil profiler")
	}
	// Warm every table the cycle touches.
	pr.Begin(1, profile.OpGet)
	pr.PhaseAt(1, profile.PhaseLockWait, 0, 5)
	pr.PhaseAt(1, profile.PhaseWire, 5, 9)
	pr.Send(1, 2, profile.MsgGet, profile.RouteRMA, 128)
	pr.Recv(1, 2, profile.MsgGet, profile.RouteRMA, 128)
	pr.Link(0, 128, 1, 2, 3)
	pr.End(1)
	allocs := testing.AllocsPerRun(1000, func() {
		pr.Begin(1, profile.OpGet)
		pr.PhaseAt(1, profile.PhaseLockWait, 0, 5)
		pr.PhaseAt(1, profile.PhaseWire, 5, 9)
		pr.Send(1, 2, profile.MsgGet, profile.RouteRMA, 128)
		pr.Recv(1, 2, profile.MsgGet, profile.RouteRMA, 128)
		pr.Link(0, 128, 1, 2, 3)
		pr.End(1)
	})
	if allocs != 0 {
		t.Errorf("warm profiler record cycle allocated %.1f per run, want 0", allocs)
	}
}

// TestDisabledCritPathAllocatesNothing pins the disabled critical-path
// cost to zero heap allocations: a nil *critpath.Rec is what every
// dependence-edge hook site holds when -critpath is off (fabric
// delivery, lock grants, park/resume forwarding), and each method must
// return before touching any state.
func TestDisabledCritPathAllocatesNothing(t *testing.T) {
	r := New(Options{}) // no CritPath: Crit() returns nil
	c := r.Crit()
	if c != nil {
		t.Fatal("recorder without Options.CritPath returned a critpath recorder")
	}
	allocs := testing.AllocsPerRun(1000, func() {
		c.Parked(0, "recv", 0)
		c.Resumed(0, 5)
		c.Finished(0, 9)
		_ = c.MsgHop(0, 1, 2, 3, 0, 1, 0)
		_ = c.ArbHop(0, 1, 2, 1, 0)
		c.WakeCause(0, 7)
		c.WakeGrant(0, 1, 3)
		c.WakeAmbient(0)
		_ = c.Ambient()
		_ = c.SetAmbient(0)
		c.RawPhase(0, profile.OpPut, profile.PhaseWire, 0, 5)
		c.RawScope(0, profile.OpPut, 0, 5)
	})
	if allocs != 0 {
		t.Errorf("nil critpath recorder allocated %.1f per run, want 0", allocs)
	}
}

// TestCritPathClosedJobDropsRecords pins the closed-recorder edge
// paths: after the job is flushed (r.open false), phase and scope
// forwarding must drop their records without growing any log, so
// late attributions cannot corrupt the next job's analysis.
func TestCritPathClosedJobDropsRecords(t *testing.T) {
	r := New(Options{CritPath: true})
	c := r.Crit()
	if c == nil {
		t.Fatal("recorder with Options.CritPath returned nil critpath recorder")
	}
	// No BeginJob yet: the recorder is closed.
	allocs := testing.AllocsPerRun(1000, func() {
		c.RawPhase(0, profile.OpPut, profile.PhaseWire, 0, 5)
		c.RawScope(0, profile.OpPut, 0, 5)
	})
	if allocs != 0 {
		t.Errorf("closed critpath recorder allocated %.1f per run, want 0", allocs)
	}
}

// TestCritPathWarmRecordCycleBounded pins the enabled recorder's
// steady-state record cycle once the per-rank logs are warm: the logs
// append into reused backing arrays, so a full
// park/hop/wake/resume/phase cycle must stay allocation-free after
// BeginJob reset reuses the arrays grown by an earlier job.
func TestCritPathWarmRecordCycleBounded(t *testing.T) {
	r := New(Options{CritPath: true})
	r.BeginJob("warm", fixedClock(0), 4)
	c := r.Crit()
	var refs [16]critpath.Ref
	cycle := func() {
		for i := range refs {
			c.Parked(1, "recv", sim.Time(i))
			ref := c.MsgHop(0, sim.Time(i), sim.Time(i+1), sim.Time(i+2), 0, 1, 0)
			c.WakeCause(1, ref)
			c.Resumed(1, sim.Time(i+3))
			c.RawPhase(1, profile.OpGet, profile.PhaseWire, sim.Time(i), sim.Time(i+3))
			c.RawScope(1, profile.OpGet, sim.Time(i), sim.Time(i+3))
			refs[i] = ref
		}
	}
	cycle() // grow the logs once
	// A new job reuses the grown arrays; the same cycle must then be
	// free except for amortized slice growth, which the first pass
	// already paid.
	r.BeginJob("warm2", fixedClock(0), 4)
	cycle()
	r.BeginJob("warm3", fixedClock(0), 4)
	allocs := testing.AllocsPerRun(100, func() {
		cycle()
		// Reset the per-job logs without analyzing (analysis allocates
		// its aggregate, which is a per-job cost, not a per-record one).
		r.BeginJob("warm3", fixedClock(0), 4)
	})
	// The analyze/flush in BeginJob builds per-job records; allow that
	// bounded per-job cost but not per-record growth (16 records/run).
	if allocs > 8 {
		t.Errorf("warm critpath record cycle allocated %.1f per run, want <= 8 (bounded per-job, zero per-record)", allocs)
	}
}

// TestElapseParkAllocatesNothing pins the live recorder's handling of
// the scheduler's synthetic "elapse" parks (which it must ignore) to
// zero allocations: the sim engine reports one such pair per Elapse,
// so this path runs millions of times per benchmark.
func TestElapseParkAllocatesNothing(t *testing.T) {
	r := New(Options{})
	r.BeginJob("job", fixedClock(0), 4)
	allocs := testing.AllocsPerRun(1000, func() {
		r.RankParked(1, "elapse", 10)
		r.RankResumed(1, 20)
	})
	if allocs != 0 {
		t.Errorf("elapse park/resume allocated %.1f per run, want 0", allocs)
	}
}

// TestParkNameInterning checks that repeated parks on the same reason
// reuse the interned metric/span names instead of re-concatenating.
func TestParkNameInterning(t *testing.T) {
	r := New(Options{})
	r.BeginJob("job", fixedClock(0), 2)
	// Warm the intern table.
	r.RankParked(0, "recv", 0)
	r.RankResumed(0, 5)
	allocs := testing.AllocsPerRun(1000, func() {
		r.RankParked(0, "recv", 10)
		r.RankResumed(0, 20)
	})
	// AddTime on an existing counter and an interned name must not
	// allocate.
	if allocs != 0 {
		t.Errorf("interned park/resume allocated %.1f per run, want 0", allocs)
	}
	if got := r.parkName("recv").metric; got != "sched.park:recv" {
		t.Errorf("interned metric = %q, want sched.park:recv", got)
	}
	if got := r.parkName("recv").span; got != "park:recv" {
		t.Errorf("interned span = %q, want park:recv", got)
	}
}

// BenchmarkParkResume measures the live park-accounting path with
// metrics only (the common -stats configuration).
func BenchmarkParkResume(b *testing.B) {
	r := New(Options{})
	r.BeginJob("bench", fixedClock(0), 8)
	r.RankParked(0, "recv", 0) // warm the intern table and counter
	r.RankResumed(0, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.RankParked(0, "recv", sim.Time(i))
		r.RankResumed(0, sim.Time(i+1))
	}
}
