package obs

import (
	"testing"

	"repro/internal/sim"
)

type fixedClock sim.Time

func (c fixedClock) Now() sim.Time { return sim.Time(c) }

// TestDisabledRecorderAllocatesNothing pins the disabled-observability
// cost to zero heap allocations: every facade method on a nil Recorder
// must return before building anything. Hot paths call these guards on
// every operation, so a single alloc here would dominate wall-clock
// profiles.
func TestDisabledRecorderAllocatesNothing(t *testing.T) {
	var r *Recorder // disabled: nil recorder
	allocs := testing.AllocsPerRun(1000, func() {
		r.Inc(0, "c")
		r.Add(0, "c", 3)
		r.AddTime(0, "t", 5)
		r.Observe(0, "h", 7)
		r.MaxGauge(0, "g", 9)
		r.LinkBusy(0, 11)
		r.Span(0, "cat", "name", 0, 1)
		r.SpanLane(1, "cat", "name", 0, 1)
		r.Instant(0, "cat", "name", 2)
		r.RankParked(0, "recv", 0)
		r.RankResumed(0, 1)
		_ = r.Enabled()
		_ = r.Tracing()
	})
	if allocs != 0 {
		t.Errorf("nil recorder allocated %.1f per run, want 0", allocs)
	}
}

// TestElapseParkAllocatesNothing pins the live recorder's handling of
// the scheduler's synthetic "elapse" parks (which it must ignore) to
// zero allocations: the sim engine reports one such pair per Elapse,
// so this path runs millions of times per benchmark.
func TestElapseParkAllocatesNothing(t *testing.T) {
	r := New(Options{})
	r.BeginJob("job", fixedClock(0), 4)
	allocs := testing.AllocsPerRun(1000, func() {
		r.RankParked(1, "elapse", 10)
		r.RankResumed(1, 20)
	})
	if allocs != 0 {
		t.Errorf("elapse park/resume allocated %.1f per run, want 0", allocs)
	}
}

// TestParkNameInterning checks that repeated parks on the same reason
// reuse the interned metric/span names instead of re-concatenating.
func TestParkNameInterning(t *testing.T) {
	r := New(Options{})
	r.BeginJob("job", fixedClock(0), 2)
	// Warm the intern table.
	r.RankParked(0, "recv", 0)
	r.RankResumed(0, 5)
	allocs := testing.AllocsPerRun(1000, func() {
		r.RankParked(0, "recv", 10)
		r.RankResumed(0, 20)
	})
	// AddTime on an existing counter and an interned name must not
	// allocate.
	if allocs != 0 {
		t.Errorf("interned park/resume allocated %.1f per run, want 0", allocs)
	}
	if got := r.parkName("recv").metric; got != "sched.park:recv" {
		t.Errorf("interned metric = %q, want sched.park:recv", got)
	}
	if got := r.parkName("recv").span; got != "park:recv" {
		t.Errorf("interned span = %q, want park:recv", got)
	}
}

// BenchmarkParkResume measures the live park-accounting path with
// metrics only (the common -stats configuration).
func BenchmarkParkResume(b *testing.B) {
	r := New(Options{})
	r.BeginJob("bench", fixedClock(0), 8)
	r.RankParked(0, "recv", 0) // warm the intern table and counter
	r.RankResumed(0, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.RankParked(0, "recv", sim.Time(i))
		r.RankResumed(0, sim.Time(i+1))
	}
}
