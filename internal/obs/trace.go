package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strconv"

	"repro/internal/sim"
)

// Arg is one key/value annotation on a trace event. Values may be
// string, int, int64, float64, or bool; anything else is rendered via
// fmt.Sprint. Args keep insertion order so exports are byte-stable.
type Arg struct {
	Key string
	Val interface{}
}

// A is shorthand for constructing an Arg.
func A(key string, val interface{}) Arg { return Arg{Key: key, Val: val} }

type traceEvent struct {
	name  string
	cat   string
	ph    byte // 'X' complete, 'i' instant, 'M' metadata
	tsNs  int64
	durNs int64
	pid   int
	tid   int
	args  []Arg
}

// Tracer buffers trace events in insertion order. The simulation is
// deterministic, so insertion order — and therefore the exported byte
// stream — is too.
type Tracer struct {
	events []traceEvent

	// named tracks auxiliary lanes (servers, NICs) already given
	// thread_name/thread_sort_index metadata, keyed pid<<32|tid. Rank
	// lanes are named eagerly in meta; auxiliary lanes lazily on first
	// span, since which nodes host servers or carry traffic is only
	// known once the job runs.
	named map[int64]bool
}

// NewTracer creates an empty tracer.
func NewTracer() *Tracer { return &Tracer{} }

func (t *Tracer) span(pid, tid int, cat, name string, start, end sim.Time, args []Arg) {
	if end < start {
		end = start
	}
	if tid >= serverLaneBase {
		t.nameAux(pid, tid)
	}
	t.events = append(t.events, traceEvent{
		name: name, cat: cat, ph: 'X',
		tsNs: int64(start), durNs: int64(end - start),
		pid: pid, tid: tid, args: args,
	})
}

// nameAux emits naming + ordering metadata for an auxiliary lane the
// first time it is used within a job, so Perfetto renders "server
// node N" / "nic node N" rows grouped after the rank rows instead of
// anonymous numeric tids.
func (t *Tracer) nameAux(pid, tid int) {
	key := int64(pid)<<32 | int64(tid)
	if t.named[key] {
		return
	}
	if t.named == nil {
		t.named = make(map[int64]bool)
	}
	t.named[key] = true
	var name string
	var sort int
	if tid >= nicLaneBase {
		node := tid - nicLaneBase
		name = fmt.Sprintf("nic node %d", node)
		sort = 200000 + node
	} else {
		node := tid - serverLaneBase
		name = fmt.Sprintf("server node %d", node)
		sort = 100000 + node
	}
	t.events = append(t.events,
		traceEvent{
			name: "thread_name", ph: 'M', pid: pid, tid: tid,
			args: []Arg{{Key: "name", Val: name}},
		},
		traceEvent{
			name: "thread_sort_index", ph: 'M', pid: pid, tid: tid,
			args: []Arg{{Key: "sort_index", Val: sort}},
		})
}

func (t *Tracer) instant(pid, tid int, cat, name string, at sim.Time, args []Arg) {
	t.events = append(t.events, traceEvent{
		name: name, cat: cat, ph: 'i',
		tsNs: int64(at), pid: pid, tid: tid, args: args,
	})
}

// meta emits process and thread naming metadata for a new job.
func (t *Tracer) meta(pid int, label string, nranks int) {
	t.events = append(t.events, traceEvent{
		name: "process_name", ph: 'M', pid: pid,
		args: []Arg{{Key: "name", Val: label}},
	})
	for i := 0; i < nranks; i++ {
		t.events = append(t.events,
			traceEvent{
				name: "thread_name", ph: 'M', pid: pid, tid: i,
				args: []Arg{{Key: "name", Val: fmt.Sprintf("rank %d", i)}},
			},
			traceEvent{
				name: "thread_sort_index", ph: 'M', pid: pid, tid: i,
				args: []Arg{{Key: "sort_index", Val: i}},
			})
	}
}

// Len reports the number of buffered events.
func (t *Tracer) Len() int { return len(t.events) }

// WriteTrace exports the buffered events as Chrome trace_event JSON
// (the "JSON object format"), loadable in chrome://tracing and
// Perfetto. Timestamps are virtual microseconds with nanosecond
// precision. Output is byte-deterministic for a deterministic run.
func (r *Recorder) WriteTrace(w io.Writer) error {
	if r == nil || r.tr == nil {
		_, err := io.WriteString(w, `{"traceEvents":[],"displayTimeUnit":"ms"}`+"\n")
		return err
	}
	return r.tr.Write(w)
}

// Write exports the tracer's events; see Recorder.WriteTrace.
func (t *Tracer) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	bw.WriteString(`{"traceEvents":[` + "\n")
	for i := range t.events {
		if i > 0 {
			bw.WriteString(",\n")
		}
		writeEvent(bw, &t.events[i])
	}
	bw.WriteString("\n],\"displayTimeUnit\":\"ms\"}\n")
	return bw.Flush()
}

// writeEvent renders one event with a fixed field order so output is
// byte-stable; encoding/json is used only for string escaping.
func writeEvent(bw *bufio.Writer, e *traceEvent) {
	bw.WriteString(`{"name":`)
	bw.Write(jsonString(e.name))
	if e.cat != "" {
		bw.WriteString(`,"cat":`)
		bw.Write(jsonString(e.cat))
	}
	bw.WriteString(`,"ph":"`)
	bw.WriteByte(e.ph)
	bw.WriteByte('"')
	if e.ph != 'M' {
		bw.WriteString(`,"ts":`)
		bw.WriteString(formatUs(e.tsNs))
		if e.ph == 'X' {
			bw.WriteString(`,"dur":`)
			bw.WriteString(formatUs(e.durNs))
		}
		if e.ph == 'i' {
			bw.WriteString(`,"s":"t"`)
		}
	}
	bw.WriteString(`,"pid":`)
	bw.WriteString(strconv.Itoa(e.pid))
	bw.WriteString(`,"tid":`)
	bw.WriteString(strconv.Itoa(e.tid))
	if len(e.args) > 0 {
		bw.WriteString(`,"args":{`)
		for i, a := range e.args {
			if i > 0 {
				bw.WriteByte(',')
			}
			bw.Write(jsonString(a.Key))
			bw.WriteByte(':')
			bw.Write(jsonValue(a.Val))
		}
		bw.WriteByte('}')
	}
	bw.WriteByte('}')
}

// formatUs renders nanoseconds as decimal microseconds with no
// floating-point round trip: "1234" ns -> "1.234".
func formatUs(ns int64) string {
	neg := ""
	if ns < 0 {
		neg, ns = "-", -ns
	}
	if ns%1000 == 0 {
		return neg + strconv.FormatInt(ns/1000, 10)
	}
	frac := strconv.FormatInt(ns%1000, 10)
	for len(frac) < 3 {
		frac = "0" + frac
	}
	for frac[len(frac)-1] == '0' {
		frac = frac[:len(frac)-1]
	}
	return neg + strconv.FormatInt(ns/1000, 10) + "." + frac
}

func jsonString(s string) []byte {
	b, err := json.Marshal(s)
	if err != nil {
		return []byte(`"?"`)
	}
	return b
}

func jsonValue(v interface{}) []byte {
	switch x := v.(type) {
	case string:
		return jsonString(x)
	case int:
		return []byte(strconv.Itoa(x))
	case int64:
		return []byte(strconv.FormatInt(x, 10))
	case bool:
		return []byte(strconv.FormatBool(x))
	case float64:
		return []byte(strconv.FormatFloat(x, 'g', -1, 64))
	case sim.Time:
		return []byte(strconv.FormatInt(int64(x), 10))
	default:
		return jsonString(fmt.Sprint(v))
	}
}
