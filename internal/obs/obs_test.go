package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/sim"
)

type fakeClock struct{ t sim.Time }

func (c *fakeClock) Now() sim.Time { return c.t }

func TestNilRecorderIsSafe(t *testing.T) {
	var r *Recorder
	r.BeginJob("x", &fakeClock{}, 4)
	r.Inc(0, COpsPut)
	r.Add(1, CBytesContig, 64)
	r.AddTime(0, TLockWaitExcl, 10)
	r.Observe(0, HLockWait, 10)
	r.MaxGauge(0, GMutexQueue, 3)
	r.LinkBusy(0, 5)
	r.Span(0, "rma", "put", 0, 10)
	r.SpanLane(LaneServer(0), "ds", "serve", 0, 10)
	r.Instant(0, "m", "mark", 5)
	r.RankParked(0, "x", 1)
	r.RankResumed(0, 2)
	if r.Enabled() || r.Tracing() {
		t.Fatal("nil recorder reports enabled")
	}
	var buf bytes.Buffer
	if err := r.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "traceEvents") {
		t.Fatalf("nil trace output: %q", buf.String())
	}
}

func TestMetricsAccumulate(t *testing.T) {
	r := New(Options{})
	r.BeginJob("job", &fakeClock{}, 2)
	r.Inc(0, COpsPut)
	r.Inc(0, COpsPut)
	r.Add(1, COpsPut, 3)
	r.AddTime(1, TLockWaitShared, 2500)
	r.Observe(0, HLockWait, 1023)
	r.Observe(0, HLockWait, 1024)
	r.MaxGauge(0, GMutexQueue, 2)
	r.MaxGauge(0, GMutexQueue, 1)

	m := r.Metrics()
	if got := m.Counter(COpsPut); got[0] != 2 || got[1] != 3 {
		t.Errorf("counter = %v", got)
	}
	if got := m.TimeOf(TLockWaitShared); got[1] != 2500 {
		t.Errorf("time = %v", got)
	}
	if got := m.Gauge(GMutexQueue); got[0] != 2 {
		t.Errorf("gauge = %v", got)
	}
	h := m.HistOf(HLockWait)[0]
	if h.Count != 2 || h.SumNs != 2047 {
		t.Errorf("hist = %+v", h)
	}
	// 1023 has bit length 10, 1024 has bit length 11.
	if h.Buckets[10] != 1 || h.Buckets[11] != 1 {
		t.Errorf("hist buckets = %v", h.Buckets)
	}
}

func TestTraceExportIsValidJSONAndDeterministic(t *testing.T) {
	build := func() []byte {
		r := New(Options{Trace: true})
		c := &fakeClock{}
		r.BeginJob("job-a", c, 2)
		r.Span(0, "rma", "put", 100, 1600, A("target", 1), A("bytes", 64))
		r.Span(1, "mpi", "lock(exclusive)", 0, 2500)
		r.Instant(0, "epoch", "flush", 3000)
		r.RankParked(1, "mpi.WinLock", 100)
		r.RankResumed(1, 900)
		r.BeginJob("job-b", c, 1)
		r.Span(0, "rma", "get", 0, 333)
		var buf bytes.Buffer
		if err := r.WriteTrace(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := build(), build()
	if !bytes.Equal(a, b) {
		t.Fatal("trace export is not byte-deterministic")
	}
	var doc struct {
		TraceEvents []map[string]interface{} `json:"traceEvents"`
	}
	if err := json.Unmarshal(a, &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v\n%s", err, a)
	}
	// 5 metadata (job-a proc + name and sort_index per rank) + 3
	// spans/instants + 1 park span + 3 metadata (job-b) + 1 span.
	if len(doc.TraceEvents) != 13 {
		t.Fatalf("event count = %d", len(doc.TraceEvents))
	}
	// Spot-check the chrome fields of the first real span.
	var put map[string]interface{}
	for _, e := range doc.TraceEvents {
		if e["name"] == "put" {
			put = e
		}
	}
	if put == nil {
		t.Fatal("no put span")
	}
	if put["ph"] != "X" || put["ts"] != 0.1 || put["dur"] != 1.5 {
		t.Errorf("put span fields = %v", put)
	}
	if args := put["args"].(map[string]interface{}); args["bytes"] != 64.0 {
		t.Errorf("args = %v", args)
	}
}

func TestParkAccounting(t *testing.T) {
	r := New(Options{})
	r.BeginJob("job", &fakeClock{}, 2)
	r.RankParked(0, "mpi.WinLock", 100)
	r.RankResumed(0, 700)
	r.RankParked(0, "elapse", 700) // pure time passage: ignored
	r.RankResumed(0, 900)
	got := r.Metrics().TimeOf("sched.park:mpi.WinLock")
	if len(got) == 0 || got[0] != 600 {
		t.Errorf("park time = %v", got)
	}
}

func TestStatsJSONDeterministic(t *testing.T) {
	build := func() []byte {
		r := New(Options{})
		r.BeginJob("job", &fakeClock{}, 2)
		r.Add(0, CBytesContig, 100)
		r.Add(1, CBytesPacked, 50)
		r.AddTime(0, TLockWaitExcl, 12345)
		r.Observe(1, HLockWait, 777)
		r.MaxGauge(0, GMutexQueue, 4)
		r.LinkBusy(1, 999)
		var buf bytes.Buffer
		if err := r.WriteStatsJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := build(), build()
	if !bytes.Equal(a, b) {
		t.Fatal("stats JSON is not byte-deterministic")
	}
	var doc map[string]interface{}
	if err := json.Unmarshal(a, &doc); err != nil {
		t.Fatalf("stats JSON invalid: %v", err)
	}
	if _, ok := doc["counters"]; !ok {
		t.Error("missing counters")
	}
}

func TestFormatUs(t *testing.T) {
	cases := map[int64]string{
		0:       "0",
		1:       "0.001",
		999:     "0.999",
		1000:    "1",
		1500:    "1.5",
		1234567: "1234.567",
		-2500:   "-2.5",
	}
	for ns, want := range cases {
		if got := formatUs(ns); got != want {
			t.Errorf("formatUs(%d) = %q, want %q", ns, got, want)
		}
	}
}

func TestStatsTextReport(t *testing.T) {
	r := New(Options{})
	r.BeginJob("job", &fakeClock{}, 2)
	r.AddTime(0, TLockWaitShared, 1500)
	r.AddTime(1, TLockWaitExcl, 2500)
	r.Add(0, CBytesContig, 4096)
	r.Add(0, CBytesPacked, 128)
	r.Add(1, CEpochFlush, 3)
	var buf bytes.Buffer
	r.WriteStats(&buf)
	out := buf.String()
	for _, want := range []string{"rank", CBytesContig[:3], "4096", "128", "lock.wait.shared", "epoch.flush"} {
		if !strings.Contains(out, want) {
			t.Errorf("stats report missing %q:\n%s", want, out)
		}
	}
}
