package fabric

import (
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func testParams() Params {
	return Params{
		Name: "test", Nodes: 4, CoresPerNode: 2,
		LatencyNs: 1000, Bandwidth: 1e9, MsgOverhead: 100,
		LocalLatencyNs: 100, LocalBandwidth: 4e9,
		CopyRate: 4e9, Flops: 1e9,
		PageSize: 4096, PinPageNs: 1000, BounceThreshold: 8192,
		BounceRate: 1e9, UnpinnedRate: 0.5e9, AccumRate: 1e9,
	}
}

func newTestMachine(t *testing.T, nranks int) (*sim.Engine, *Machine) {
	t.Helper()
	eng := sim.NewEngine()
	m, err := NewMachine(eng, testParams(), nranks)
	if err != nil {
		t.Fatal(err)
	}
	return eng, m
}

func TestValidateRejectsBadParams(t *testing.T) {
	cases := []func(*Params){
		func(p *Params) { p.Nodes = 0 },
		func(p *Params) { p.CoresPerNode = 0 },
		func(p *Params) { p.Bandwidth = 0 },
		func(p *Params) { p.CopyRate = 0 },
		func(p *Params) { p.PageSize = 0 },
		func(p *Params) { p.AccumRate = 0 },
	}
	for i, mut := range cases {
		p := testParams()
		mut(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted bad params", i)
		}
	}
	p := testParams()
	if err := p.Validate(); err != nil {
		t.Errorf("good params rejected: %v", err)
	}
}

func TestNewMachineRejectsBadRankCounts(t *testing.T) {
	eng := sim.NewEngine()
	if _, err := NewMachine(eng, testParams(), 0); err == nil {
		t.Error("0 ranks accepted")
	}
	if _, err := NewMachine(eng, testParams(), 9); err == nil {
		t.Error("9 ranks on a 4x2 machine accepted")
	}
}

func TestNodeMapping(t *testing.T) {
	_, m := newTestMachine(t, 8)
	if m.NodeOf(0) != 0 || m.NodeOf(1) != 0 || m.NodeOf(2) != 1 {
		t.Errorf("NodeOf mapping wrong: %d %d %d", m.NodeOf(0), m.NodeOf(1), m.NodeOf(2))
	}
	if !m.SameNode(0, 1) || m.SameNode(1, 2) {
		t.Error("SameNode wrong")
	}
}

func TestDeliverAndRecv(t *testing.T) {
	eng, m := newTestMachine(t, 4)
	var gotFrom, gotTag int
	err := eng.Run(4, func(p *sim.Proc) {
		switch p.ID() {
		case 0:
			m.Deliver(3, &Msg{From: 0, Kind: 7, Tag: 42, Size: 100}, XferOpt{})
		case 3:
			msg := m.Recv(p, func(msg *Msg) bool { return msg.Kind == 7 })
			gotFrom, gotTag = msg.From, msg.Tag
			if msg.Arrived <= 0 {
				t.Error("message arrived at time 0; transfer cost missing")
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if gotFrom != 0 || gotTag != 42 {
		t.Errorf("got from=%d tag=%d, want 0, 42", gotFrom, gotTag)
	}
}

func TestRecvBlocksUntilMatch(t *testing.T) {
	eng, m := newTestMachine(t, 2)
	err := eng.Run(2, func(p *sim.Proc) {
		if p.ID() == 0 {
			p.Elapse(50_000)
			m.Deliver(1, &Msg{From: 0, Tag: 1}, XferOpt{})
		} else {
			msg := m.Recv(p, func(msg *Msg) bool { return msg.Tag == 1 })
			if p.Now() < 50_000 {
				t.Errorf("recv returned at %v, before the send at 50us", p.Now())
			}
			if msg.From != 0 {
				t.Errorf("msg.From = %d", msg.From)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRecvMatchesInArrivalOrder(t *testing.T) {
	eng, m := newTestMachine(t, 2)
	err := eng.Run(2, func(p *sim.Proc) {
		if p.ID() == 0 {
			m.Deliver(1, &Msg{From: 0, Tag: 1, Payload: "first"}, XferOpt{})
			p.Elapse(10_000)
			m.Deliver(1, &Msg{From: 0, Tag: 1, Payload: "second"}, XferOpt{})
		} else {
			p.Elapse(100_000) // both queued by now
			a := m.Recv(p, func(msg *Msg) bool { return msg.Tag == 1 })
			b := m.Recv(p, func(msg *Msg) bool { return msg.Tag == 1 })
			if a.Payload != "first" || b.Payload != "second" {
				t.Errorf("order: got %v then %v", a.Payload, b.Payload)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTryRecv(t *testing.T) {
	eng, m := newTestMachine(t, 2)
	err := eng.Run(2, func(p *sim.Proc) {
		if p.ID() == 0 {
			m.Deliver(1, &Msg{From: 0, Tag: 9}, XferOpt{})
		} else {
			if _, ok := m.TryRecv(p, func(msg *Msg) bool { return msg.Tag == 9 }); ok {
				t.Error("TryRecv matched before delivery")
			}
			p.Elapse(100_000)
			if _, ok := m.TryRecv(p, func(msg *Msg) bool { return msg.Tag == 9 }); !ok {
				t.Error("TryRecv missed a queued message")
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBandwidthDominatesLargeTransfers(t *testing.T) {
	eng, m := newTestMachine(t, 4)
	// 100 MB at 1 GB/s should take ~0.1s of virtual time.
	err := eng.Run(4, func(p *sim.Proc) {
		if p.ID() == 0 {
			start := p.Now()
			m.SendData(p, 2, 100<<20, XferOpt{})
			elapsed := (p.Now() - start).Seconds()
			if elapsed < 0.09 || elapsed > 0.15 {
				t.Errorf("100MB at 1GB/s took %.3fs, want ~0.105s", elapsed)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestNICOccupancySerializesTransfers(t *testing.T) {
	eng, m := newTestMachine(t, 6)
	// Ranks 0 and 2 (different nodes) both send 10MB to rank 4's node.
	// The destination NIC serializes: total time ~2x one transfer.
	var tEach, tBoth sim.Time
	err := eng.Run(6, func(p *sim.Proc) {
		if p.ID() == 0 {
			m.SendData(p, 4, 10<<20, XferOpt{})
			tEach = p.Now()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	eng2 := sim.NewEngine()
	m2, _ := NewMachine(eng2, testParams(), 6)
	err = eng2.Run(6, func(p *sim.Proc) {
		if p.ID() == 0 || p.ID() == 2 {
			m2.SendData(p, 4, 10<<20, XferOpt{})
			if p.Now() > tBoth {
				tBoth = p.Now()
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if float64(tBoth) < 1.8*float64(tEach) {
		t.Errorf("two senders to one NIC finished at %v, want >= 1.8x single-sender %v", tBoth, tEach)
	}
}

func TestIntraNodeFasterThanInterNode(t *testing.T) {
	eng, m := newTestMachine(t, 4)
	err := eng.Run(4, func(p *sim.Proc) {
		if p.ID() != 0 {
			return
		}
		start := p.Now()
		m.SendData(p, 1, 1<<20, XferOpt{}) // same node
		local := p.Now() - start
		start = p.Now()
		m.SendData(p, 2, 1<<20, XferOpt{}) // other node
		remote := p.Now() - start
		if local >= remote {
			t.Errorf("intra-node (%v) should beat inter-node (%v)", local, remote)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestComputeChargesFlops(t *testing.T) {
	eng, m := newTestMachine(t, 1)
	err := eng.Run(1, func(p *sim.Proc) {
		m.Compute(p, 1e9) // 1 Gflop at 1 Gflop/s = 1s
		if got := p.Now().Seconds(); got < 0.99 || got > 1.01 {
			t.Errorf("1e9 flops took %.3fs, want 1s", got)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAddrSpaceAllocFindFree(t *testing.T) {
	_, m := newTestMachine(t, 2)
	s := m.Space(0)
	r1 := s.Alloc(100, DomainARMCI, true)
	r2 := s.Alloc(200, DomainMPI, false)
	if r1.VA == 0 || r2.VA == 0 {
		t.Fatal("allocated at NULL")
	}
	if r1.VA+int64(r1.Len) > r2.VA {
		t.Fatal("regions overlap")
	}
	if got := s.Find(r1.VA+10, 5); got != r1 {
		t.Errorf("Find inside r1 = %v", got)
	}
	if got := s.Find(r2.VA, 200); got != r2 {
		t.Errorf("Find r2 = %v", got)
	}
	if got := s.Find(r2.VA, 201); got != nil {
		t.Errorf("Find past r2 end should be nil, got %v", got)
	}
	if err := s.Free(r1.VA); err != nil {
		t.Fatal(err)
	}
	if got := s.Find(r1.VA, 1); got != nil {
		t.Error("freed region still findable")
	}
	if err := s.Free(r1.VA); err == nil {
		t.Error("double free not detected")
	}
}

func TestAddrSpaceZeroLengthAllocsDistinct(t *testing.T) {
	_, m := newTestMachine(t, 1)
	s := m.Space(0)
	a := s.Alloc(0, DomainNone, false)
	b := s.Alloc(0, DomainNone, false)
	if a.VA == b.VA {
		t.Error("zero-length allocations share an address")
	}
}

func TestRegionBytesAndBoundsPanic(t *testing.T) {
	_, m := newTestMachine(t, 1)
	r := m.Space(0).Alloc(64, DomainNone, false)
	b := r.Bytes(r.VA+8, 8)
	b[0] = 0xAB
	if r.Backing()[8] != 0xAB {
		t.Error("Bytes does not alias region data")
	}
	defer func() {
		if recover() == nil {
			t.Error("out-of-bounds Bytes did not panic")
		}
	}()
	r.Bytes(r.VA+60, 8)
}

func TestPinCostAndCaching(t *testing.T) {
	_, m := newTestMachine(t, 1)
	r := m.Space(0).Alloc(3*4096+100, DomainNone, false)
	c1 := m.PinCost(r, DomainMPI)
	if c1 <= 0 {
		t.Fatal("first pin should cost time")
	}
	if want := sim.FromSeconds(4 * 1000 / 1e9); c1 != want {
		t.Errorf("pin cost = %v, want %v (4 pages)", c1, want)
	}
	if c2 := m.PinCost(r, DomainMPI); c2 != 0 {
		t.Errorf("second pin cost = %v, want 0 (cached)", c2)
	}
	if c3 := m.PinCost(r, DomainARMCI); c3 <= 0 {
		t.Error("other domain should pay its own registration")
	}
}

func TestPrepinnedRegionsFreeForOwnDomain(t *testing.T) {
	_, m := newTestMachine(t, 1)
	r := m.Space(0).Alloc(1<<20, DomainARMCI, true)
	if !r.PinnedFor(DomainARMCI) {
		t.Error("prepinned region not pinned for its domain")
	}
	if r.PinnedFor(DomainMPI) {
		t.Error("prepinned region should not be pinned for the other domain")
	}
	if c := m.PinCost(r, DomainARMCI); c != 0 {
		t.Errorf("own-domain pin cost = %v, want 0", c)
	}
}

func TestAddrArithmetic(t *testing.T) {
	a := Addr{Rank: 3, VA: 0x1000}
	if b := a.Add(16); b.VA != 0x1010 || b.Rank != 3 {
		t.Errorf("Add: %v", b)
	}
	if d := a.Add(16).Sub(a); d != 16 {
		t.Errorf("Sub = %d", d)
	}
	if !(Addr{}).Nil() || a.Nil() {
		t.Error("Nil() wrong")
	}
}

func TestAddrSubAcrossRanksPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("cross-rank Sub did not panic")
		}
	}()
	Addr{Rank: 0, VA: 10}.Sub(Addr{Rank: 1, VA: 5})
}

func TestFindPropertyAllocatedAlwaysFound(t *testing.T) {
	_, m := newTestMachine(t, 1)
	s := m.Space(0)
	if err := quick.Check(func(sizes []uint16) bool {
		var regs []*Region
		for _, sz := range sizes {
			regs = append(regs, s.Alloc(int(sz), DomainNone, false))
		}
		for _, r := range regs {
			if r.Len > 0 && s.Find(r.VA, r.Len) != r {
				return false
			}
			if r.Len > 1 && s.Find(r.VA+int64(r.Len/2), 1) != r {
				return false
			}
		}
		for _, r := range regs {
			if s.Free(r.VA) != nil {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestRoundTripTime(t *testing.T) {
	_, m := newTestMachine(t, 4)
	inter := m.RoundTripTime(0, 2)
	intra := m.RoundTripTime(0, 1)
	if intra >= inter {
		t.Errorf("intra-node RTT %v should beat inter-node %v", intra, inter)
	}
	if want := sim.FromSeconds(2 * (1000 + 100) / 1e9); inter != want {
		t.Errorf("inter RTT = %v, want %v", inter, want)
	}
}
