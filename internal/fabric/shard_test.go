package fabric

import (
	"fmt"
	"testing"

	"repro/internal/sim"
)

func TestMinCrossNodeLatencyIsALowerBound(t *testing.T) {
	par := testParams()
	bound := par.MinCrossNodeLatency()
	if bound <= 0 {
		t.Fatalf("bound %v not positive", bound)
	}
	// Every cross-node delivery — any size, any extra overhead — must
	// arrive at least bound after the send decision, or conservative
	// windows would mis-order events.
	eng := sim.NewEngine()
	m, err := NewMachine(eng, par, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Run(8, func(p *sim.Proc) {
		if p.ID() != 0 {
			return
		}
		for _, n := range []int{0, 1, 7, 4096, 1 << 20} {
			for _, ov := range []float64{0, 1, 250.7} {
				now := p.Now()
				arrive := m.DeliverSharded(p, 7, &Msg{From: 0, Size: n}, XferOpt{Overhead: ov})
				if arrive < now+bound {
					t.Errorf("size %d overhead %v: arrive %v < now %v + bound %v", n, ov, arrive, now, bound)
				}
				p.Elapse(1)
			}
		}
	}); err != nil {
		t.Fatal(err)
	}
}

func TestNodeAlignedPartition(t *testing.T) {
	par := testParams() // 4 nodes x 2 cores
	for _, tc := range []struct {
		nranks, shards int
		wantShards     int
	}{
		{8, 1, 1}, {8, 2, 2}, {8, 4, 4}, {8, 8, 4}, {8, 0, 1}, {6, 2, 2},
	} {
		part, k := NodeAlignedPartition(par, tc.nranks, tc.shards)
		if k != tc.wantShards {
			t.Errorf("nranks=%d shards=%d: effective %d, want %d", tc.nranks, tc.shards, k, tc.wantShards)
		}
		if len(part) != tc.nranks {
			t.Fatalf("partition length %d, want %d", len(part), tc.nranks)
		}
		seen := map[int]int{} // node -> shard
		prev := 0
		for r, s := range part {
			if s < 0 || s >= k {
				t.Fatalf("rank %d -> shard %d outside [0,%d)", r, s, k)
			}
			if s < prev {
				t.Fatalf("partition not monotone at rank %d", r)
			}
			prev = s
			node := r / par.CoresPerNode
			if have, ok := seen[node]; ok && have != s {
				t.Fatalf("node %d split across shards %d and %d", node, have, s)
			}
			seen[node] = s
		}
		if k == tc.shards && tc.shards > 1 {
			used := map[int]bool{}
			for _, s := range part {
				used[s] = true
			}
			if len(used) != k {
				t.Errorf("nranks=%d shards=%d: only %d shards used", tc.nranks, tc.shards, len(used))
			}
		}
	}
}

// trafficRun drives a small cross-node exchange over DeliverSharded
// under the given mode/shard count and returns each rank's message
// arrival log plus the final virtual time.
func trafficRun(t *testing.T, mode sim.Mode, shards int) ([]string, sim.Time) {
	t.Helper()
	par := testParams()
	eng := sim.NewEngine()
	eng.Mode = mode
	if mode == sim.ModeParallel && shards > 1 {
		part, k := NodeAlignedPartition(par, 8, shards)
		eng.Shards = k
		eng.Partition = part
		eng.Lookahead = par.MinCrossNodeLatency()
	}
	m, err := NewMachine(eng, par, 8)
	if err != nil {
		t.Fatal(err)
	}
	const rounds = 5
	logs := make([][]string, 8)
	if err := eng.Run(8, func(p *sim.Proc) {
		r := p.ID()
		partner := (r + 4) % 8 // two nodes away: always cross-node
		for i := 0; i < rounds; i++ {
			m.Compute(p, float64(500+97*r+13*i))
			m.DeliverSharded(p, partner, &Msg{From: r, Kind: 1, Tag: i, Size: 256 + 32*r}, XferOpt{})
		}
		for got := 0; got < rounds; got++ {
			msg := m.Recv(p, func(*Msg) bool { return true })
			logs[r] = append(logs[r], fmt.Sprintf("from %d tag %d size %d @%d", msg.From, msg.Tag, msg.Size, msg.Arrived))
		}
	}); err != nil {
		t.Fatal(err)
	}
	var flat []string
	for r, l := range logs {
		for _, s := range l {
			flat = append(flat, fmt.Sprintf("r%d: %s", r, s))
		}
	}
	msgs, bytes := m.ShardedTraffic()
	if msgs != 8*rounds || bytes <= 0 {
		t.Fatalf("mode=%v shards=%d: traffic counters %d msgs %d bytes", mode, shards, msgs, bytes)
	}
	return flat, eng.Stats().FinalTime
}

// TestDeliverShardedEquivalence: the sharded delivery path produces
// identical per-rank arrival streams and final time under the
// goroutine reference, the continuation scheduler, and multi-shard
// parallel execution with a node-aligned partition.
func TestDeliverShardedEquivalence(t *testing.T) {
	refLog, refFinal := trafficRun(t, sim.ModeGoroutine, 0)
	for _, tc := range []struct {
		mode   sim.Mode
		shards int
	}{
		{sim.ModeContinuation, 0}, {sim.ModeParallel, 2}, {sim.ModeParallel, 4},
	} {
		log, final := trafficRun(t, tc.mode, tc.shards)
		if final != refFinal {
			t.Errorf("mode=%v shards=%d: final time %v, want %v", tc.mode, tc.shards, final, refFinal)
		}
		if len(log) != len(refLog) {
			t.Fatalf("mode=%v shards=%d: %d log entries, want %d", tc.mode, tc.shards, len(log), len(refLog))
		}
		for i := range refLog {
			if log[i] != refLog[i] {
				t.Errorf("mode=%v shards=%d: entry %d = %q, want %q", tc.mode, tc.shards, i, log[i], refLog[i])
			}
		}
	}
}

// TestDeliverShardedIntraNode: same-node sharded delivery stays on the
// local path (cheap, no NIC) and still matches waiters.
func TestDeliverShardedIntraNode(t *testing.T) {
	eng, m := newTestMachine(t, 8)
	var arrived sim.Time
	if err := eng.Run(8, func(p *sim.Proc) {
		switch p.ID() {
		case 0:
			m.DeliverSharded(p, 1, &Msg{From: 0, Size: 64}, XferOpt{})
		case 1:
			msg := m.Recv(p, func(*Msg) bool { return true })
			arrived = msg.Arrived
		}
	}); err != nil {
		t.Fatal(err)
	}
	bound := m.Par.MinCrossNodeLatency()
	if arrived <= 0 || arrived >= bound {
		t.Fatalf("intra-node arrival %v; want (0, %v)", arrived, bound)
	}
}
