package fabric

import (
	"fmt"
	"sort"

	"repro/internal/sim"
)

// Addr is a global address in the simulated machine: a rank and a
// virtual address within that rank's address space. This mirrors
// ARMCI's <process id, address> global address form.
type Addr struct {
	Rank int
	VA   int64
}

// Nil reports whether the address is the null address.
func (a Addr) Nil() bool { return a.VA == 0 }

// Add offsets the address by n bytes.
func (a Addr) Add(n int) Addr { return Addr{Rank: a.Rank, VA: a.VA + int64(n)} }

// Sub returns the byte distance a-b; both must be on the same rank.
func (a Addr) Sub(b Addr) int {
	if a.Rank != b.Rank {
		panic("fabric: Addr.Sub across ranks")
	}
	return int(a.VA - b.VA)
}

func (a Addr) String() string { return fmt.Sprintf("<%d,0x%x>", a.Rank, a.VA) }

// Domain identifies a registration domain — a runtime system that pins
// memory with the (simulated) network device. The paper's Figure 5
// hinges on ARMCI and MPI each maintaining separate registration state.
type Domain int

const (
	DomainNone  Domain = iota // plain allocation, not pre-pinned anywhere
	DomainARMCI               // allocated/pinned by the native ARMCI runtime
	DomainMPI                 // allocated/pinned by the MPI runtime
)

func (d Domain) String() string {
	switch d {
	case DomainARMCI:
		return "ARMCI"
	case DomainMPI:
		return "MPI"
	default:
		return "none"
	}
}

// Region is an allocated range of a rank's address space with backing
// storage. Data is addressed relative to VA and is materialized lazily
// on first access: a region that is allocated but never touched (mutex
// byte vectors, scratch buffers of idle ranks) costs no host memory,
// which is what lets 16k-rank jobs fit. Access the storage through
// Bytes or Backing, never the Data field directly — it is nil until
// the first touch.
type Region struct {
	Rank int
	VA   int64
	Len  int
	Data []byte

	// AllocDomain is the runtime whose allocator produced the region
	// (DomainNone for plain make()-style buffers).
	AllocDomain Domain
	// prepinned regions were registered at allocation time by their
	// allocating domain (e.g. ARMCI's pre-pinned pools).
	prepinned bool
	// pinned tracks which domains have on-demand registered the region.
	pinned map[Domain]bool
}

// Contains reports whether [va, va+n) falls inside the region.
func (r *Region) Contains(va int64, n int) bool {
	return va >= r.VA && va+int64(n) <= r.VA+int64(r.Len)
}

// Bytes returns the backing slice for [va, va+n), materializing the
// region's storage on first touch.
func (r *Region) Bytes(va int64, n int) []byte {
	if !r.Contains(va, n) {
		panic(fmt.Sprintf("fabric: access [0x%x,+%d) outside region [0x%x,+%d) on rank %d",
			va, n, r.VA, r.Len, r.Rank))
	}
	if r.Data == nil && r.Len > 0 {
		r.Data = make([]byte, r.Len)
	}
	off := va - r.VA
	return r.Data[off : off+int64(n)]
}

// Backing returns the region's full backing slice, materializing it on
// first touch. Freshly materialized storage is zeroed, exactly as an
// eager allocation would be.
func (r *Region) Backing() []byte {
	if r.Data == nil && r.Len > 0 {
		r.Data = make([]byte, r.Len)
	}
	return r.Data
}

// PinnedFor reports whether the region is usable for direct DMA by the
// given domain without further registration.
func (r *Region) PinnedFor(d Domain) bool {
	if r.prepinned && r.AllocDomain == d {
		return true
	}
	return r.pinned[d]
}

// AddrSpace is one rank's virtual address space: a bump allocator over
// non-overlapping regions with binary-search lookup. VA 0 is reserved
// as NULL.
type AddrSpace struct {
	rank    int
	next    int64
	regions []*Region // sorted by VA
}

const addrSpaceBase = 0x1000

func newAddrSpace(rank int) *AddrSpace {
	return &AddrSpace{rank: rank, next: addrSpaceBase}
}

// Alloc carves a new region of n bytes (n >= 0; a zero-length region
// still receives a distinct address so frees can be matched).
func (s *AddrSpace) Alloc(n int, d Domain, prepinned bool) *Region {
	if n < 0 {
		panic("fabric: Alloc with negative size")
	}
	r := &Region{
		Rank:        s.rank,
		VA:          s.next,
		Len:         n,
		AllocDomain: d,
		prepinned:   prepinned,
		pinned:      map[Domain]bool{},
	}
	// Round the next base to a page-ish boundary to keep regions
	// disjoint even for zero-length allocations.
	adv := int64(n)
	if adv < 64 {
		adv = 64
	}
	s.next += adv + 64
	s.regions = append(s.regions, r)
	return r
}

// Free releases a region. The address must be a region base.
func (s *AddrSpace) Free(va int64) error {
	for i, r := range s.regions {
		if r.VA == va {
			s.regions = append(s.regions[:i], s.regions[i+1:]...)
			return nil
		}
	}
	return fmt.Errorf("fabric: Free of unknown region 0x%x on rank %d", va, s.rank)
}

// Find returns the region containing [va, va+n), or nil.
func (s *AddrSpace) Find(va int64, n int) *Region {
	i := sort.Search(len(s.regions), func(i int) bool {
		return s.regions[i].VA+int64(s.regions[i].Len) > va
	})
	// Regions are appended in VA order (bump allocator) but Free can
	// leave the slice still sorted, so binary search is valid.
	if i < len(s.regions) && s.regions[i].Contains(va, n) {
		return s.regions[i]
	}
	return nil
}

// Regions returns the rank's live regions in VA order.
func (s *AddrSpace) Regions() []*Region { return s.regions }

// Unpin evicts region r from domain d's registration cache, so the
// next use pays the on-demand registration cost again (used by the
// Figure 5 interoperability benchmark to measure the first-touch
// path). Pre-pinned regions of d's own allocator cannot be evicted.
func (m *Machine) Unpin(r *Region, d Domain) {
	delete(r.pinned, d)
}

// PinCost returns the registration cost for domain d to use region r
// for the byte range [va, va+n), and marks the pages registered. The
// cost is zero when the region is pre-pinned for d or already
// registered. Registration is modeled at region granularity (a region
// is the unit ARMCI/MPI hand to the device), with cost proportional to
// the page count of the whole region, as on-demand registration caches
// do.
func (m *Machine) PinCost(r *Region, d Domain) sim.Time {
	if r.PinnedFor(d) {
		return 0
	}
	pages := (r.Len + m.Par.PageSize - 1) / m.Par.PageSize
	if pages < 1 {
		pages = 1
	}
	r.pinned[d] = true
	m.PagesPinned += int64(pages)
	return sim.FromSeconds(float64(pages) * m.Par.PinPageNs / 1e9)
}
